// §1 resilience experiment: node failures under MDC. The stream is coded as
// d descriptions, one per interior-disjoint tree; a viewer with q of d
// descriptions plays at quality q/d. Sweeps the failure fraction and
// compares against the single-tree baseline, where any failed ancestor
// means a black screen. (Seeded; averages over 20 failure sets per cell.)
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/multitree/greedy.hpp"
#include "src/multitree/resilience.hpp"
#include "src/util/prng.hpp"
#include "src/util/table.hpp"

int main() {
  using namespace streamcast;
  using namespace streamcast::multitree;
  bench::banner("§1 resilience + MDC",
                "graceful degradation of d descriptions vs single-tree "
                "all-or-nothing");

  const int trials = 20;
  util::Table table({"N", "d", "failed %", "scheme", "full quality %",
                     "degraded %", "starved %", "mean quality"});
  util::Prng rng(20260706);
  for (const sim::NodeKey n : {121, 1000}) {
    for (const int d : {2, 3, 4}) {
      const Forest f = build_greedy(n, d);
      for (const int fail_pct : {1, 5, 10, 20}) {
        const auto failures =
            std::max<sim::NodeKey>(1, n * fail_pct / 100);
        ResilienceSummary multi_total{};
        ResilienceSummary single_total{};
        double multi_quality = 0;
        double single_quality = 0;
        for (int t = 0; t < trials; ++t) {
          const auto failed = random_failures(n, failures, rng);
          const auto multi = summarize_resilience(
              descriptions_received(f, failed), failed, d);
          const auto single = summarize_resilience(
              single_tree_reception(n, d, failed), failed, 1);
          multi_total.live += multi.live;
          multi_total.fully_served += multi.fully_served;
          multi_total.degraded += multi.degraded;
          multi_total.starved += multi.starved;
          multi_quality += multi.mean_quality;
          single_total.live += single.live;
          single_total.fully_served += single.fully_served;
          single_total.degraded += single.degraded;
          single_total.starved += single.starved;
          single_quality += single.mean_quality;
        }
        const auto pct = [&](sim::NodeKey part, sim::NodeKey whole) {
          return util::cell(100.0 * static_cast<double>(part) /
                                static_cast<double>(whole),
                            1);
        };
        table.add_row({util::cell(n), util::cell(d), util::cell(fail_pct),
                       "multi-tree+MDC",
                       pct(multi_total.fully_served, multi_total.live),
                       pct(multi_total.degraded, multi_total.live),
                       pct(multi_total.starved, multi_total.live),
                       util::cell(multi_quality / trials, 3)});
        table.add_row({util::cell(n), util::cell(d), util::cell(fail_pct),
                       "single tree",
                       pct(single_total.fully_served, single_total.live),
                       "-", pct(single_total.starved, single_total.live),
                       util::cell(single_quality / trials, 3)});
      }
    }
  }
  table.print(std::cout);

  std::cout
      << "\nReading: mean quality is roughly *conserved* across the designs "
         "(total forwarding responsibility is the same either way) — the "
         "multi-tree's gain is in the outage distribution. Interior-"
         "disjointness caps one failure's damage at one description per "
         "viewer, so complete starvation needs all d ancestor paths cut: at "
         "a 5% failure rate the single tree blacks out ~14-15% of viewers "
         "while multi-tree+MDC blacks out well under 2%, degrading the "
         "rest to (d-1)/d quality instead — §1's point (ii) against "
         "end-system multicast, made precise.\n";
  return 0;
}
