// Microbenchmarks (google-benchmark): construction and scheduling
// throughput of every overlay builder — the systems cost of running the
// paper's algorithms at scale.
#include <benchmark/benchmark.h>

#include "src/core/streamcast.hpp"

namespace {

using namespace streamcast;

void BM_BuildGreedy(benchmark::State& state) {
  const auto n = static_cast<sim::NodeKey>(state.range(0));
  const int d = static_cast<int>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(multitree::build_greedy(n, d));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BuildGreedy)
    ->Args({1000, 2})
    ->Args({1000, 4})
    ->Args({10000, 2})
    ->Args({100000, 3});

void BM_BuildStructured(benchmark::State& state) {
  const auto n = static_cast<sim::NodeKey>(state.range(0));
  const int d = static_cast<int>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(multitree::build_structured(n, d));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BuildStructured)
    ->Args({1000, 2})
    ->Args({10000, 2})
    ->Args({100000, 3});

void BM_ClosedFormDelays(benchmark::State& state) {
  const auto n = static_cast<sim::NodeKey>(state.range(0));
  const multitree::Forest f = multitree::build_greedy(n, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(multitree::closed_form_delays(f));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ClosedFormDelays)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_ValidateForest(benchmark::State& state) {
  const auto n = static_cast<sim::NodeKey>(state.range(0));
  const multitree::Forest f = multitree::build_greedy(n, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(multitree::validate_forest(f));
  }
}
BENCHMARK(BM_ValidateForest)->Arg(1000)->Arg(10000);

void BM_DecomposeChain(benchmark::State& state) {
  const auto n = static_cast<sim::NodeKey>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hypercube::decompose_chain(n));
  }
}
BENCHMARK(BM_DecomposeChain)->Arg(1000)->Arg(1000000);

void BM_EngineSlotMultiTree(benchmark::State& state) {
  // Cost of simulating one slot (transmissions + deliveries) at size N.
  const auto n = static_cast<sim::NodeKey>(state.range(0));
  const multitree::Forest f = multitree::build_greedy(n, 2);
  for (auto _ : state) {
    state.PauseTiming();
    net::UniformCluster topo(n, 2);
    multitree::MultiTreeProtocol proto(f);
    sim::Engine engine(topo, proto);
    state.ResumeTiming();
    engine.run_until(64);
  }
  state.SetItemsProcessed(state.iterations() * 64 * n);
}
BENCHMARK(BM_EngineSlotMultiTree)->Arg(100)->Arg(1000)->Arg(10000);

void BM_EngineSlotHypercube(benchmark::State& state) {
  const auto n = static_cast<sim::NodeKey>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    net::UniformCluster topo(n, 1);
    hypercube::HypercubeProtocol proto({hypercube::decompose_chain(n)});
    sim::Engine engine(topo, proto);
    state.ResumeTiming();
    engine.run_until(64);
  }
  state.SetItemsProcessed(state.iterations() * 64 * n);
}
BENCHMARK(BM_EngineSlotHypercube)->Arg(100)->Arg(1000)->Arg(10000);

void BM_ChurnOp(benchmark::State& state) {
  const auto n = static_cast<sim::NodeKey>(state.range(0));
  multitree::ChurnForest cf(n, 2, multitree::ChurnPolicy::kLazy);
  for (auto _ : state) {
    const auto p = cf.add();
    cf.remove(p);
  }
}
BENCHMARK(BM_ChurnOp)->Arg(100)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
