// Theorem 3: lower bound on average playback delay,
//   [ d^h (d+1)(h-1) - d^2(h-2) - d(d+1)/2 ] / [ N(d-1) ],
// stated for complete trees. Measured average (closed form of the exact
// schedule, simulation-verified by the test suite) vs the bound.
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/multitree/analysis.hpp"
#include "src/multitree/greedy.hpp"
#include "src/multitree/schedule.hpp"
#include "src/multitree/structured.hpp"
#include "src/util/ints.hpp"
#include "src/util/table.hpp"

int main() {
  using namespace streamcast;
  bench::banner("Theorem 3",
                "average playback delay vs the complete-tree lower bound");

  util::Table table({"d", "h", "N", "lower bound", "avg (greedy)",
                     "avg (structured)", "bound holds", "bound/measured"});
  bool all_ok = true;
  for (const int d : {2, 3, 4, 5}) {
    for (int h = 1; h <= (d == 2 ? 8 : d == 3 ? 6 : 5); ++h) {
      const auto n =
          static_cast<sim::NodeKey>(util::complete_dary_size(d, h));
      if (n > 4000) break;
      const double bound = multitree::average_delay_lower_bound(n, d);
      const double greedy =
          multitree::closed_form_average_delay(multitree::build_greedy(n, d));
      const double structured = multitree::closed_form_average_delay(
          multitree::build_structured(n, d));
      const bool ok = greedy + 1e-9 >= bound && structured + 1e-9 >= bound;
      all_ok = all_ok && ok;
      table.add_row({util::cell(d), util::cell(h), util::cell(n),
                     util::cell(bound, 2), util::cell(greedy, 2),
                     util::cell(structured, 2), ok ? "yes" : "NO",
                     util::cell(bound / greedy, 3)});
    }
  }
  table.print(std::cout);
  std::cout << "\nThe bound is asymptotically tight: its ratio to the "
               "measured average approaches 1 as h grows (most receivers "
               "sit in the last tree level, whose average delay the "
               "symmetric-counting argument of Lemma 1 captures exactly).\n"
            << (all_ok ? "lower bound holds everywhere.\n"
                       : "BOUND VIOLATION above.\n");
  return all_ok ? 0 : 1;
}
