// Appendix churn under a *realistic* workload: Poisson arrivals with
// exponential session lifetimes (the P2P measurement-study standard),
// streamed live through the dynamic protocol. Replicated over 5 seeds per
// cell; reports mean +- sd of maintenance moves and playback hiccups.
//
// Three competitors per cell: the structural-id multi-tree under eager and
// lazy maintenance, and the Zhu-Hajek dynamic forest (scheme #8,
// "adaptive"), whose local join/leave/swap rules never relabel — churn
// costs re-parent moves and promote swaps instead of relabels/rebuilds.
#include <cmath>
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/dyntree/protocol.hpp"
#include "src/dyntree/qos.hpp"
#include "src/metrics/summary.hpp"
#include "src/multitree/analysis.hpp"
#include "src/multitree/churn.hpp"
#include "src/multitree/dynamic.hpp"
#include "src/net/topology.hpp"
#include "src/sim/engine.hpp"
#include "src/util/table.hpp"
#include "src/workload/churn_trace.hpp"

namespace {

using namespace streamcast;
using namespace streamcast::multitree;

struct Outcome {
  double moves = 0;
  double hiccups = 0;
  double loss_rate = 0;
  sim::NodeKey final_n = 0;
};

Outcome run_trace(const workload::TraceConfig& cfg, int d,
                  ChurnPolicy policy) {
  const auto trace = workload::generate_churn_trace(cfg);
  // Capacity bound: initial + all arrivals.
  NodeKey capacity = cfg.initial_n;
  for (const auto& e : trace) capacity += e.arrival ? 1 : 0;
  capacity = std::max<NodeKey>(capacity + 1, 8);

  ChurnForest churn(cfg.initial_n, d, policy);
  DynamicMultiTreeProtocol proto(churn);
  net::UniformCluster topo(capacity, d);
  // Per-id duplicate tracking is not meaningful under churn: a shrink+grow
  // resets a structural id's state, so an "old" packet may legitimately be
  // re-delivered to the id's new occupant (the per-peer tracker counts
  // those as late_or_duplicate). Capacity checks stay on.
  sim::Engine engine(topo, proto,
                     sim::EngineOptions{.forbid_duplicates = false});
  const sim::Slot margin = worst_delay_bound(capacity, d) + 2 * d;
  PeerQosTracker tracker(churn, proto, margin);
  engine.add_observer(tracker);

  // Map trace peer labels -> live ChurnForest peers.
  std::map<std::int64_t, PeerId> live;
  for (NodeKey id = 1; id <= cfg.initial_n; ++id) {
    live[id - 1] = churn.peer_at(id);
    tracker.peer_seated(churn.peer_at(id), 0);
  }
  for (const auto& e : trace) {
    engine.run_until(e.slot);
    if (e.arrival) {
      const PeerId p = churn.add();
      live[e.peer] = p;
      tracker.peer_seated(p, e.slot);
      proto.resync(e.slot);
    } else {
      const auto it = live.find(e.peer);
      if (it == live.end()) continue;
      if (churn.n() <= 2) continue;  // keep the overlay alive
      tracker.peer_left(it->second, e.slot);
      churn.remove(it->second);
      live.erase(it);
      proto.resync(e.slot);
    }
  }
  const sim::Slot end = cfg.horizon + margin + 100;
  engine.run_until(end);
  tracker.finish(end);

  Outcome o;
  o.moves = static_cast<double>(churn.stats().total_moves());
  o.hiccups = static_cast<double>(tracker.total_hiccups());
  const double played = static_cast<double>(tracker.total_played());
  o.loss_rate = o.hiccups / std::max(1.0, played + o.hiccups);
  o.final_n = churn.n();
  return o;
}

/// Same trace, streamed through the dynamic-trees scheme. Maintenance cost
/// = reattaches + promote swaps + rebalance moves (the forest never
/// relabels); hiccups from the same PlaybackBuffer accounting, seated at
/// the live edge. The engine gets capacity for every key the run will ever
/// grant (keys are permanent and never reused).
///
/// With `backfill` the scheme exercises its churn_backfill capability
/// (scheme registry): the NACK recovery policy wraps the protocol as a
/// repair channel, its aged-gap sweep NACKing from the source any receive
/// gap older than the startup margin. That is exactly the displacement
/// window a re-parented subtree skips under the live-edge rule, so the
/// moved peers get their history back instead of paying permanent hiccups.
/// Joiners are seated at the live edge (no pre-join debt) and departed
/// keys are retired past the stream end so the sweep never repairs ghosts.
Outcome run_trace_dyntree(const workload::TraceConfig& cfg, int d,
                          bool backfill) {
  const auto trace = workload::generate_churn_trace(cfg);
  NodeKey capacity = cfg.initial_n;
  for (const auto& e : trace) capacity += e.arrival ? 1 : 0;
  capacity = std::max<NodeKey>(capacity + 1, 8);

  dyntree::DynamicTreesProtocol proto(
      dyntree::DynamicForest(d, cfg.seed * 31 + 7));
  net::UniformCluster topo(capacity, d, 1, d);
  const sim::Slot margin = worst_delay_bound(capacity, d) + 2 * d;
  const sim::Slot end = cfg.horizon + margin + 100;

  loss::RecoveryOptions ropts;
  ropts.policy = "nack";
  // The sweep may only fire on gaps no natural delivery will ever fill, so
  // the timeout must exceed the forest's inter-substream arrival skew
  // (depth spread plus queueing, a few multiples of d) — but it must stay
  // well under the playback margin, or every backfilled packet lands after
  // its due slot and repairs only add congestion.
  ropts.gap_timeout = 4 * d + 4;
  // Tags partition the dyntree stream by tree; repairs must carry a tag no
  // live delivery uses (the trees are 0..d-1, parity would be -1) so a
  // pending backfill never holds the live substreams back.
  ropts.sweep_tag = -2;
  // A gap older than the playback margin is past its due slot at every
  // peer: abandon it instead of flooding the overlay with useless repairs.
  ropts.repair_horizon = margin;
  loss::RecoveryProtocol recovery(topo, proto, ropts);
  sim::Protocol& top = backfill ? static_cast<sim::Protocol&>(recovery)
                                : static_cast<sim::Protocol&>(proto);
  sim::Engine engine(topo, top);
  dyntree::PeerQosTracker tracker(proto, margin);
  if (backfill) {
    engine.add_observer(recovery);
    recovery.add_observer(tracker);  // post-repair stream
  } else {
    engine.add_observer(tracker);
  }

  std::map<std::int64_t, NodeKey> live;
  for (NodeKey i = 0; i < cfg.initial_n; ++i) {
    const NodeKey key = proto.join();
    live[i] = key;
    tracker.peer_seated(key, 0);
  }
  proto.forest().rebalance();
  for (const auto& e : trace) {
    engine.run_until(e.slot);
    if (e.arrival) {
      const NodeKey key = proto.join();
      live[e.peer] = key;
      tracker.peer_seated(key, e.slot);
      if (backfill) recovery.seat(key, proto.live_edge(e.slot));
    } else {
      const auto it = live.find(e.peer);
      if (it == live.end()) continue;
      if (proto.forest().peers() <= 2) continue;  // keep the overlay alive
      tracker.peer_left(it->second, e.slot);
      proto.leave(it->second);
      if (backfill) recovery.seat(it->second, end + 1);
      live.erase(it);
    }
    proto.forest().rebalance();
  }
  engine.run_until(end);
  tracker.finish(end);

  Outcome o;
  const auto& stats = proto.forest().stats();
  o.moves = static_cast<double>(stats.reattach_moves + stats.promote_swaps +
                                stats.balance_moves);
  o.hiccups = static_cast<double>(tracker.total_hiccups());
  const double played = static_cast<double>(tracker.total_played());
  o.loss_rate = o.hiccups / std::max(1.0, played + o.hiccups);
  o.final_n = proto.forest().peers();
  return o;
}

std::string mean_sd(const std::vector<double>& v) {
  double mean = 0;
  for (const double x : v) mean += x;
  mean /= static_cast<double>(v.size());
  double var = 0;
  for (const double x : v) var += (x - mean) * (x - mean);
  var /= static_cast<double>(v.size());
  return util::cell(mean, 1) + " +- " + util::cell(std::sqrt(var), 1);
}

}  // namespace

int main() {
  bench::banner("Appendix churn, realistic workload",
                "Poisson arrivals / exponential lifetimes, live stream, "
                "5 seeds per cell");

  util::Table table({"N0", "d", "lifetime", "policy", "moves",
                     "hiccups", "loss rate (mean)"});
  bool ok = true;
  std::vector<std::string> shrink_lines;
  for (const int d : {2, 3}) {
    for (const double lifetime : {200.0, 800.0}) {
      // -1 = the dynamic-trees forest, -2 = the same forest with the NACK
      // backfill channel; 0/1 = eager/lazy structural-id trees.
      double lazy_loss = 0;
      double adaptive_loss = 0;
      double backfill_loss = 0;
      for (const int competitor : {0, 1, -1, -2}) {
        std::vector<double> moves;
        std::vector<double> hiccups;
        double loss = 0;
        for (std::uint64_t seed = 1; seed <= 5; ++seed) {
          const workload::TraceConfig cfg{.arrival_rate = 0.05,
                                          .mean_lifetime = lifetime,
                                          .horizon = 1500,
                                          .initial_n = 60,
                                          .seed = seed * 17};
          const Outcome o =
              competitor < 0
                  ? run_trace_dyntree(cfg, d, competitor == -2)
                  : run_trace(cfg, d,
                              competitor == 0 ? ChurnPolicy::kEager
                                              : ChurnPolicy::kLazy);
          moves.push_back(o.moves);
          hiccups.push_back(o.hiccups);
          loss += o.loss_rate;
        }
        const double mean_loss = loss / 5.0;
        if (competitor == 1) lazy_loss = mean_loss;
        if (competitor == -1) adaptive_loss = mean_loss;
        if (competitor == -2) backfill_loss = mean_loss;
        table.add_row({"60", util::cell(d), util::cell(lifetime, 0),
                       competitor == -2  ? "adaptive+backfill"
                       : competitor == -1 ? "adaptive"
                       : competitor == 0  ? "eager"
                                          : "lazy",
                       mean_sd(moves), mean_sd(hiccups),
                       util::cell(loss / 5.0, 4)});
      }
      // The E35 playback-loss gap: how far the adaptive forest's loss sits
      // above the lazy relabeling tree, and how much of that gap the
      // backfill channel closes.
      const double gap = adaptive_loss - lazy_loss;
      const double left = backfill_loss - lazy_loss;
      const double shrink = gap > 0 ? (gap - left) / gap * 100.0 : 0.0;
      shrink_lines.push_back("d=" + util::cell(d) +
                             " lifetime=" + util::cell(lifetime, 0) +
                             ": gap " + util::cell(gap, 4) + " -> " +
                             util::cell(left, 4) + " (" +
                             util::cell(shrink, 1) + "% shrink)");
      if (backfill_loss >= adaptive_loss) {
        std::cerr << "FAIL: backfill did not reduce the adaptive forest's "
                     "playback loss at d="
                  << d << " lifetime=" << lifetime << " (" << backfill_loss
                  << " vs " << adaptive_loss << ")\n";
        ok = false;
      }
    }
  }
  table.print(std::cout);

  std::cout << "\nE35 playback-loss gap vs the lazy relabeling tree, "
               "before and after the NACK backfill channel:\n";
  for (const std::string& line : shrink_lines) {
    std::cout << "  " << line << "\n";
  }

  std::cout
      << "\nReading: under memoryless churn (rather than the adversarial "
         "boundary workload) the lazy policy's advantage persists — fewer "
         "restructurings, ~40-50% fewer moves, fewer lost packets. Longer "
         "lifetimes grow the swarm (arrivals outpace departures), making "
         "each boundary restructuring proportionally more expensive — "
         "maintenance cost tracks swarm size times event rate. Loss stays "
         "in the low percents at this aggressive event rate (one event "
         "every ~13 slots): the swap-based maintenance the paper sketches "
         "is viable for live streaming. The adaptive row is the Zhu-Hajek "
         "dynamic forest (scheme #8): never relabeling means each event "
         "touches only the seats it orphans or swaps, so it posts the "
         "fewest maintenance moves of the three. The continuity cost is "
         "real, though: a re-parented peer re-enters each substream at the "
         "live edge with no backfill (DESIGN.md §12), so every upward move "
         "permanently skips the displacement window for the whole moved "
         "subtree — playback loss lands an order of magnitude above the "
         "relabeling trees and grows with session lifetime (larger swarms, "
         "deeper subtrees, wider windows). The relabeling trees resync "
         "through the session protocol; matching them would take a "
         "repair/backfill channel on top of the live-edge rule — which is "
         "what the adaptive+backfill row adds: the scheme's churn_backfill "
         "capability wraps the forest in the NACK recovery policy, whose "
         "aged-gap sweep backfills each moved subtree's displacement window "
         "from the source, closing a measured share of the playback-loss "
         "gap at the cost of repair traffic.\n";
  return ok ? 0 : 1;
}
