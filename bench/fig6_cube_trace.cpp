// Figure 6: detailed per-node trace of the O(1)-buffer scheme with N = 7 —
// for three consecutive steady-state slots, each node's consumed packet,
// transmitted packet, and transmission target.
#include <iostream>
#include <map>

#include "bench/bench_util.hpp"
#include "src/hypercube/arbitrary.hpp"
#include "src/hypercube/protocol.hpp"
#include "src/net/topology.hpp"
#include "src/sim/engine.hpp"
#include "src/sim/trace.hpp"
#include "src/util/table.hpp"

namespace {

using namespace streamcast;

class TraceObserver final : public sim::DeliveryObserver {
 public:
  explicit TraceObserver(sim::Trace& trace) : trace_(trace) {}
  void on_delivery(const sim::Delivery& d) override { trace_.record(d); }

 private:
  sim::Trace& trace_;
};

}  // namespace

int main() {
  bench::banner("Figure 6",
                "per-slot consume/send table of the O(1)-buffer scheme, "
                "N = 7 (k = 3)");

  const sim::NodeKey n = 7;
  const int k = 3;
  net::UniformCluster topo(n, 1);
  hypercube::HypercubeProtocol proto({hypercube::decompose_chain(n)});
  sim::Engine engine(topo, proto);
  sim::Trace trace;
  TraceObserver observer(trace);
  engine.add_observer(observer);
  engine.run_until(16);

  for (sim::Slot t = 9; t <= 11; ++t) {
    std::cout << "slot " << t << "  (pairing dimension " << t % k
              << "; every node consumes packet " << t - k << "):\n";
    util::Table table({"node", "sends packet", "to"});
    std::map<sim::NodeKey, const sim::Delivery*> by_sender;
    for (const auto& d : trace.sent_in(t)) {
      by_sender[d.tx.from] = &d;
    }
    for (sim::NodeKey v = 0; v <= n; ++v) {
      const auto it = by_sender.find(v);
      std::string who = v == 0 ? "S" : "N" + std::to_string(v);
      if (it == by_sender.end()) {
        table.add_row({who, "-", "-"});
      } else {
        table.add_row({who, util::cell(it->second->tx.packet),
                       "N" + std::to_string(it->second->tx.to)});
      }
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "The node paired with S each slot receives the fresh packet "
               "and sends nothing in-cube — the spare capacity §3.2 feeds "
               "to the next hypercube for arbitrary N.\n";
  return 0;
}
