// The paper's title, as one picture: the tradeoff between playback delay
// and buffer space. Every scheme/parameter combination is one measured
// (worst delay, worst buffer) point; the frontier shows what each unit of
// buffer buys in startup delay — and that no scheme dominates both axes
// (chain: minimal buffer, hopeless delay; multi-tree: best delay at
// arbitrary N, O(d log N) buffer; hypercube: 2-packet buffer, delay between
// log N and log^2 N; neighbors are the third, hidden axis).
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/core/session.hpp"
#include "src/util/table.hpp"

int main() {
  using namespace streamcast;
  bench::banner("Delay / buffer tradeoff (the paper's title)",
                "measured (worst delay, worst buffer, neighbors) per scheme");

  for (const sim::NodeKey n : {255, 1000, 4000}) {
    std::cout << "N = " << n << ":\n";
    util::Table table({"scheme", "d", "worst delay", "worst buffer",
                       "max neighbors", "delay*buffer"});
    struct Cell {
      core::Scheme scheme;
      int d;
    };
    std::vector<Cell> cells;
    for (const int d : {2, 3, 4, 5}) {
      cells.push_back({core::Scheme::kMultiTreeGreedy, d});
    }
    cells.push_back({core::Scheme::kHypercube, 1});
    for (const int d : {2, 4}) {
      cells.push_back({core::Scheme::kHypercubeGrouped, d});
    }
    cells.push_back({core::Scheme::kChain, 1});
    for (const Cell& cell : cells) {
      const auto r = core::StreamingSession(core::SessionConfig{
                         .scheme = cell.scheme, .n = n, .d = cell.d})
                         .run();
      table.add_row(
          {r.scheme, util::cell(cell.d), util::cell(r.worst_delay),
           util::cell(r.max_buffer), util::cell(r.max_neighbors),
           util::cell(static_cast<std::int64_t>(r.worst_delay) *
                      static_cast<std::int64_t>(r.max_buffer))});
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  std::cout
      << "Reading: the frontier is real — pushing buffers down to O(1) "
         "(hypercube) costs either special N or a log-factor in delay; "
         "pushing delay to O(d log N) for arbitrary N (multi-tree) costs "
         "O(d log N) buffers. The delay*buffer product separates the "
         "designed schemes (hundreds) from the naive chain (hundreds of "
         "thousands). Within the multi-tree family, degree 2-3 minimizes "
         "both axes simultaneously — §2.3's conclusion from yet another "
         "angle.\n";
  return 0;
}
