// The paper's title, as one picture: the tradeoff between playback delay
// and buffer space. Every scheme/parameter combination is one measured
// (worst delay, worst buffer) point; the frontier shows what each unit of
// buffer buys in startup delay — and that no scheme dominates both axes
// (chain: minimal buffer, hopeless delay; multi-tree: best delay at
// arbitrary N, O(d log N) buffer; hypercube: 2-packet buffer, delay between
// log N and log^2 N; neighbors are the third, hidden axis).
//
// All (N, scheme, d) points run as one sweep on the deterministic parallel
// runner: results come back in submission order, so the printed frontier is
// identical at any thread count. The scheme list comes from the registry:
// every registered scheme appears, swept over d in {2..5} when its
// degree_sweep capability says d is meaningful, else pinned at d = 1 —
// adding scheme #7 adds its frontier points without touching this file.
#include <cstddef>
#include <iostream>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/core/session.hpp"
#include "src/run/sweep.hpp"
#include "src/scheme/registry.hpp"
#include "src/util/table.hpp"

int main() {
  using namespace streamcast;
  bench::banner("Delay / buffer tradeoff (the paper's title)",
                "measured (worst delay, worst buffer, neighbors) per scheme");

  std::vector<core::SessionConfig> tasks;
  std::size_t cells_per_n = 0;
  for (const sim::NodeKey n : {255, 1000, 4000}) {
    cells_per_n = 0;
    for (const scheme::Descriptor& desc : scheme::all()) {
      const std::vector<int> degrees =
          desc.caps.degree_sweep ? std::vector<int>{2, 3, 4, 5}
                                 : std::vector<int>{1};
      for (const int d : degrees) {
        tasks.push_back({.scheme = desc.id, .n = n, .d = d});
        ++cells_per_n;
      }
    }
  }
  const auto results = run::run_sweep(tasks);
  run::require_all(results);

  std::size_t next = 0;
  for (const sim::NodeKey n : {255, 1000, 4000}) {
    std::cout << "N = " << n << ":\n";
    util::Table table({"scheme", "d", "worst delay", "worst buffer",
                       "max neighbors", "delay*buffer"});
    for (std::size_t cell = 0; cell < cells_per_n; ++cell, ++next) {
      const core::QosReport& r = results[next].qos;
      table.add_row(
          {r.scheme, util::cell(tasks[next].d), util::cell(r.worst_delay),
           util::cell(r.max_buffer), util::cell(r.max_neighbors),
           util::cell(static_cast<std::int64_t>(r.worst_delay) *
                      static_cast<std::int64_t>(r.max_buffer))});
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  std::cout
      << "Reading: the frontier is real — pushing buffers down to O(1) "
         "(hypercube) costs either special N or a log-factor in delay; "
         "pushing delay to O(d log N) for arbitrary N (multi-tree) costs "
         "O(d log N) buffers. The delay*buffer product separates the "
         "designed schemes (hundreds) from the naive chain (hundreds of "
         "thousands). Within the multi-tree family, degree 2-3 minimizes "
         "both axes simultaneously — §2.3's conclusion from yet another "
         "angle.\n";
  return 0;
}
