// "Not fully connected networks" (appendix), end to end: find two
// interior-disjoint trees on random graphs with the heuristic, then
// actually stream over them and measure the price of generality — the
// per-node uplink the trees demand and the resulting delays, versus the
// complete-graph multi-tree at the same N.
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/core/session.hpp"
#include "src/graph/idt_heuristic.hpp"
#include "src/graph/stream.hpp"
#include "src/metrics/delay.hpp"
#include "src/sim/engine.hpp"
#include "src/util/prng.hpp"
#include "src/util/table.hpp"

namespace {

using namespace streamcast;
using namespace streamcast::graph;

Graph random_connected(Vertex n, double p, util::Prng& rng) {
  Graph g(n);
  for (Vertex a = 0; a < n; ++a) {
    for (Vertex b = a + 1; b < n; ++b) {
      if (rng.chance(p)) g.add_edge(a, b);
    }
  }
  for (Vertex v = 1; v < n; ++v) {
    if (g.neighbors(v).empty()) g.add_edge(0, v);
  }
  return g;
}

}  // namespace

int main() {
  bench::banner("Appendix: streaming on arbitrary graphs",
                "two interior-disjoint trees (heuristic) driven end to end");

  const int trials = 25;
  util::Table table({"|V|", "edge prob", "trees found", "worst delay (avg)",
                     "max uplink (avg)", "uplink = 1 (complete-graph ideal)"});
  util::Prng rng(515);
  for (const Vertex n : {16, 32, 48}) {
    for (const double p : {0.2, 0.4, 0.7}) {
      int found = 0;
      double delay_sum = 0;
      double uplink_sum = 0;
      int unit_uplink = 0;
      for (int t = 0; t < trials; ++t) {
        const Graph g = random_connected(n, p, rng);
        const auto trees = greedy_two_idt(g, 0);
        if (!trees) continue;
        ++found;
        TwoTreeStreamTopology topo(g, 0, *trees);
        TwoTreeStreamProtocol proto(g, 0, *trees);
        sim::Engine engine(topo, proto);
        metrics::DelayRecorder rec(g.size(), 16);
        engine.add_observer(rec);
        engine.run_until(400);
        sim::Slot worst = 0;
        for (Vertex v = 1; v < g.size(); ++v) {
          worst = std::max(worst, *rec.playback_delay(v));
        }
        delay_sum += static_cast<double>(worst);
        uplink_sum += topo.max_required_uplink();
        unit_uplink += topo.max_required_uplink() == 1;
      }
      table.add_row(
          {util::cell(n), util::cell(p, 1),
           util::cell(found) + "/" + util::cell(trials),
           found ? util::cell(delay_sum / found, 1) : std::string("-"),
           found ? util::cell(uplink_sum / found, 2) : std::string("-"),
           util::cell(unit_uplink)});
    }
  }
  table.print(std::cout);

  // Reference: the complete-graph multi-tree at N = 48, d = 2.
  const auto mt = core::StreamingSession(core::SessionConfig{
                      .scheme = core::Scheme::kMultiTreeGreedy,
                      .n = 47,
                      .d = 2})
                      .run();
  std::cout << "\ncomplete-graph reference (multi-tree, N = 47, d = 2): "
               "worst delay "
            << mt.worst_delay << ", uplink exactly 1 for every node.\n"
            << "Reading: on sparse general graphs interior-disjoint pairs "
               "cost real over-provisioning — minimal CDS interiors have "
               "high fan-out, so a few nodes need several times the stream "
               "rate in uplink (the §1 argument against single trees, "
               "resurfacing). Density buys both existence and, eventually, "
               "flatter trees; the complete graph of §2 is the limit where "
               "uplink 1 suffices for everyone.\n";
  return 0;
}
