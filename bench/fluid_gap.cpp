// Related-work experiment: the paper's constructive, packet-level schemes
// vs the fluid-flow lower bounds of Liu et al. (SIGMETRICS 2008) that §1
// cites for contrast. Measures how close each scheme gets to the snowball
// minimum delay — and shows Proposition 1 is optimal: at N = 2^k - 1 the
// hypercube scheme meets the fluid bound with equality.
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/core/session.hpp"
#include "src/fluid/bounds.hpp"
#include "src/util/table.hpp"

int main() {
  using namespace streamcast;
  bench::banner("Fluid-flow gap (related work [12])",
                "measured delays vs the snowball lower bounds");

  util::Table table({"N", "scheme", "d", "worst (elapsed)", "fluid min",
                     "unicast-src min", "gap x", "avg (elapsed)",
                     "fluid avg min"});
  for (const sim::NodeKey n : {63, 255, 1023, 100, 500, 2000}) {
    struct Row {
      core::Scheme scheme;
      int d;
    };
    for (const Row r : {Row{core::Scheme::kMultiTreeGreedy, 2},
                        Row{core::Scheme::kMultiTreeGreedy, 3},
                        Row{core::Scheme::kHypercube, 1},
                        Row{core::Scheme::kChain, 1}}) {
      const auto q = core::StreamingSession(core::SessionConfig{
                         .scheme = r.scheme, .n = n, .d = r.d})
                         .run();
      // Our reports are start-slot indices; elapsed = +1 (DESIGN.md §3).
      const auto elapsed = q.worst_delay + 1;
      const auto fluid_min = fluid::min_worst_delay(n, r.d);
      table.add_row(
          {util::cell(n), q.scheme, util::cell(r.d), util::cell(elapsed),
           util::cell(fluid_min),
           util::cell(fluid::min_worst_delay_unicast_source(n)),
           util::cell(static_cast<double>(elapsed) /
                          static_cast<double>(fluid_min),
                      2),
           util::cell(q.average_delay + 1.0, 2),
           util::cell(fluid::min_average_delay(n, r.d), 2)});
    }
  }
  table.print(std::cout);

  std::cout
      << "\nReading: at special N = 2^k-1 the hypercube scheme meets the "
         "unicast-source snowball minimum ceil(log2 N)+1 with equality — "
         "Proposition 1 is optimal for sources that emit each packet once. "
         "The multi-tree pays about d/log2(d) over the fluid bound (the "
         "price of O(d) neighbors and strict round-robin); the hypercube "
         "chain at arbitrary N pays an extra log factor; the chain baseline "
         "is off by N/log(N). Liu et al.'s bounds assume neither interior-"
         "disjointness nor bounded source capacity — the \"different "
         "assumptions\" contrast §1 draws.\n";
  return 0;
}
