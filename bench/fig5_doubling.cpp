// Figure 5: one time slot of the O(1)-buffer hypercube scheme with
// N = 2^3 - 1 = 7 nodes — the number of nodes holding packet i doubles
// every slot until the whole cube has it, at which point it is consumed.
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/hypercube/arbitrary.hpp"
#include "src/hypercube/protocol.hpp"
#include "src/hypercube/special.hpp"
#include "src/metrics/delay.hpp"
#include "src/net/topology.hpp"
#include "src/sim/engine.hpp"
#include "src/util/table.hpp"

int main() {
  using namespace streamcast;
  bench::banner("Figure 5",
                "holder counts per packet around one slot, N = 7 (k = 3)");

  const sim::NodeKey n = 7;
  const int k = 3;
  net::UniformCluster topo(n, 1);
  hypercube::HypercubeProtocol proto({hypercube::decompose_chain(n)});
  sim::Engine engine(topo, proto);
  const sim::PacketId window = 16;
  metrics::DelayRecorder rec(n + 1, window);
  engine.add_observer(rec);
  engine.run_until(window + k + 2);

  const auto holders_at = [&](sim::PacketId m, sim::Slot t) {
    std::int64_t count = 0;
    for (sim::NodeKey x = 1; x <= n; ++x) {
      const sim::Slot a = rec.arrival(x, m);
      if (a != metrics::kNeverArrived && a <= t) ++count;
    }
    return count;
  };

  // The paper's slot X: take X = 7 (steady state; packets 1..8 alive, the
  // source injecting packet 8 — matching the figure's labels with our
  // 0-based ids shifted by one).
  const sim::Slot x_slot = 7;
  util::Table table({"packet", "holders @ start of slot X",
                     "holders @ end of slot X", "expected (doubling)",
                     "consumed at end of slot"});
  bool ok = true;
  for (sim::PacketId m = x_slot - k; m <= x_slot; ++m) {
    const std::int64_t before = holders_at(m, x_slot - 1);
    const std::int64_t after = holders_at(m, x_slot);
    const std::int64_t expected = hypercube::expected_holders(k, m, x_slot);
    ok = ok && after == expected;
    table.add_row({util::cell(m), util::cell(before), util::cell(after),
                   util::cell(expected),
                   m + k == x_slot ? "yes (all 7 have it)" : "no"});
  }
  table.print(std::cout);
  std::cout << "\nEach slot every pair exchanges along one cube dimension: "
               "holder sets double, the oldest packet completes and is "
               "consumed, and the source injects one new packet.\n"
            << (ok ? "doubling invariant holds.\n" : "INVARIANT VIOLATED\n");
  return ok ? 0 : 1;
}
