// Appendix follow-up: since Two Interior-Disjoint Trees is NP-complete on
// arbitrary graphs, how well does a polynomial greedy-CDS heuristic do?
// Exact-vs-heuristic success rates on small random graphs, and heuristic
// success rate alone on graphs beyond the exact solver's reach.
#include <chrono>
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/graph/idt_heuristic.hpp"
#include "src/graph/idt_solver.hpp"
#include "src/util/prng.hpp"
#include "src/util/table.hpp"

namespace {

using namespace streamcast;
using namespace streamcast::graph;

Graph random_graph(Vertex n, double p, util::Prng& rng) {
  Graph g(n);
  for (Vertex a = 0; a < n; ++a) {
    for (Vertex b = a + 1; b < n; ++b) {
      if (rng.chance(p)) g.add_edge(a, b);
    }
  }
  for (Vertex v = 1; v < n; ++v) {
    if (g.neighbors(v).empty()) g.add_edge(0, v);
  }
  return g;
}

}  // namespace

int main() {
  bench::banner("NP-completeness follow-up",
                "greedy-CDS heuristic vs exact IDT solver on random graphs");

  const int trials = 120;
  util::Table small({"|V|", "edge prob", "solvable (exact)",
                     "found (heuristic)", "recall %", "false positives"});
  util::Prng rng(808);
  for (const Vertex n : {8, 12}) {
    for (const double p : {0.2, 0.35, 0.5, 0.7}) {
      int solvable = 0;
      int found = 0;
      int false_pos = 0;
      for (int t = 0; t < trials; ++t) {
        const Graph g = random_graph(n, p, rng);
        const bool exact = two_interior_disjoint_trees(g, 0).has_value();
        const bool heuristic = greedy_two_idt(g, 0).has_value();
        solvable += exact;
        found += heuristic && exact;
        false_pos += heuristic && !exact;
      }
      small.add_row({util::cell(n), util::cell(p, 2), util::cell(solvable),
                     util::cell(found),
                     solvable ? util::cell(100.0 * found / solvable, 1)
                              : std::string("-"),
                     util::cell(false_pos)});
    }
  }
  small.print(std::cout);

  std::cout << "\nBeyond the exact solver (heuristic only, 40 graphs each):\n";
  util::Table big({"|V|", "edge prob", "heuristic success %", "avg us/graph"});
  for (const Vertex n : {30, 48, 60}) {
    for (const double p : {0.15, 0.3, 0.5}) {
      int ok = 0;
      std::int64_t total_us = 0;
      for (int t = 0; t < 40; ++t) {
        const Graph g = random_graph(n, p, rng);
        const auto t0 = std::chrono::steady_clock::now();
        const auto witness = greedy_two_idt(g, 0);
        total_us += std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
        if (witness &&
            is_interior_disjoint_pair(g, 0, witness->tree_a,
                                      witness->tree_b)) {
          ++ok;
        }
      }
      big.add_row({util::cell(n), util::cell(p, 2),
                   util::cell(100.0 * ok / 40.0, 1),
                   util::cell(total_us / 40)});
    }
  }
  big.print(std::cout);

  std::cout << "\nReading: the heuristic is sound (zero false positives by "
               "construction — every witness is machine-verified) and finds "
               "the large majority of solvable instances; denser graphs are "
               "easier, exactly as the CDS intuition predicts. On graphs "
               "far beyond the exact solver's 2^(V-1) reach it answers in "
               "microseconds — a practical overlay-planning primitive the "
               "NP-completeness result says cannot be both fast and "
               "complete.\n";
  return 0;
}
