// Figure 7: the hypercube communication pattern for 7 nodes plus the
// source — which vertex pairs exchange packets in each slot class.
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/hypercube/cube.hpp"
#include "src/util/table.hpp"

int main() {
  using namespace streamcast;
  bench::banner("Figure 7", "hypercube pairing pattern, node IDs 0-7 (k = 3)");

  const int k = 3;
  for (int j = 0; j < k; ++j) {
    std::cout << "slots t with t mod " << k << " = " << j
              << "  (dimension " << j << ", bit " << (j + 1)
              << " from the right):\n  ";
    for (const auto& [a, b] : hypercube::pairs_along(k, j)) {
      std::cout << "(" << a << " <-> " << b << ") ";
    }
    std::cout << "\n\n";
  }

  util::Table table({"node", "binary", "neighbors (one per dimension)"});
  for (hypercube::Vertex v = 0; v < 8; ++v) {
    std::string bits;
    for (int b = k - 1; b >= 0; --b) bits += ((v >> b) & 1) ? '1' : '0';
    std::string nb;
    for (int j = 0; j < k; ++j) {
      nb += std::to_string(hypercube::partner(v, j)) + " ";
    }
    table.add_row({util::cell(static_cast<std::int64_t>(v)),
                   "(" + bits + ")_2", nb});
  }
  table.print(std::cout);
  std::cout << "\nEvery node communicates with exactly k = 3 others — the "
               "O(log N) neighbor bound of Propositions 1-2.\n";
  return 0;
}
