// Ablation: the lazy policy's vacancy slack. How long may shrinking be
// deferred? The safe limit is d vacancies — one more and vacant ids reach
// the interior pool {1..dI}, where a vacant forwarder starves its entire
// subtree for as long as the deferral lasts. This experiment (which is how
// the d-cap was discovered; see churn.hpp) streams live through identical
// churn at increasing slack and watches hiccups explode past slack = d.
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/multitree/analysis.hpp"
#include "src/multitree/churn.hpp"
#include "src/multitree/dynamic.hpp"
#include "src/net/topology.hpp"
#include "src/sim/engine.hpp"
#include "src/util/prng.hpp"
#include "src/util/table.hpp"

namespace {

using namespace streamcast;
using namespace streamcast::multitree;

struct Outcome {
  std::int64_t moves = 0;
  std::int64_t rebuilds = 0;
  std::int64_t hiccups = 0;
};

Outcome run(int d, int slack, std::uint64_t seed) {
  const sim::NodeKey n0 = 60;
  const sim::NodeKey capacity = 4 * n0;
  ChurnForest churn(n0, d, ChurnPolicy::kLazy, slack);
  DynamicMultiTreeProtocol proto(churn);
  net::UniformCluster topo(capacity, d);
  sim::Engine engine(topo, proto,
                     sim::EngineOptions{.forbid_duplicates = false});
  const sim::Slot margin = worst_delay_bound(capacity, d) + 2 * d;
  PeerQosTracker tracker(churn, proto, margin);
  engine.add_observer(tracker);
  for (sim::NodeKey id = 1; id <= n0; ++id) {
    tracker.peer_seated(churn.peer_at(id), 0);
  }

  util::Prng rng(seed);
  sim::Slot now = 0;
  for (int e = 0; e < 80; ++e) {
    now += 30;
    engine.run_until(now);
    // Departure-heavy mix keeps vacancies accumulating.
    if (churn.n() > 5 && rng.chance(0.65)) {
      const auto id = static_cast<sim::NodeKey>(
          1 + rng.below(static_cast<std::uint64_t>(churn.n())));
      const PeerId victim = churn.peer_at(id);
      tracker.peer_left(victim, now);
      churn.remove(victim);
    } else {
      tracker.peer_seated(churn.add(), now);
    }
    proto.resync(now);
  }
  const sim::Slot end = now + margin + 200;
  engine.run_until(end);
  tracker.finish(end);
  return Outcome{churn.stats().total_moves(), churn.stats().rebuilds,
                 tracker.total_hiccups()};
}

}  // namespace

int main() {
  bench::banner("Ablation: lazy vacancy slack",
                "hiccups vs deferred-shrink slack (safe limit is d)");

  util::Table table({"d", "slack", "safe?", "rebuilds", "moves", "hiccups"});
  for (const int d : {2, 3}) {
    for (const int slack : {d, 2 * d, 4 * d}) {
      const Outcome o = run(d, slack, /*seed=*/4242);
      table.add_row({util::cell(d), util::cell(slack),
                     slack <= d ? "yes" : "NO (interior vacancies)",
                     util::cell(o.rebuilds), util::cell(o.moves),
                     util::cell(o.hiccups)});
    }
  }
  table.print(std::cout);

  std::cout
      << "\nReading: raising the slack past d does buy fewer "
         "restructurings/moves — and pays for them in starvation: a vacant "
         "interior id forwards nothing, so its whole subtree hiccups for "
         "every deferred slot. The deferral knob is only free while vacant "
         "ids stay leaves, i.e. up to exactly d — the maintenance "
         "invariant the lazy policy ships with.\n";
  return 0;
}
