// Figure 4: worst-case startup delay vs number of nodes (N up to 2000) for
// tree degrees 2, 3, 4, 5 — the paper's only simulation plot.
//
// Series are produced from the exact per-node schedule (closed form of the
// round-robin transmission, §2.2.3), which the test suite verifies against
// full engine simulations packet by packet; a handful of grid points are
// re-simulated here as a live cross-check. Expected shape (and the paper's
// conclusion): staircase log_d(N) growth, degrees 2 and 3 nearly tied and
// below degrees 4 and 5 everywhere.
//
// The cross-check simulations — the expensive part of this bench — run one
// StreamingSession per grid point on the deterministic parallel sweep
// runner (the registry + RunPipeline reproduce the schedule the hand-rolled
// engine wiring used to, a contract locked by scheme_registry_test).
#include <iostream>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/core/session.hpp"
#include "src/multitree/analysis.hpp"
#include "src/multitree/greedy.hpp"
#include "src/multitree/schedule.hpp"
#include "src/run/sweep.hpp"
#include "src/util/table.hpp"

namespace {

using namespace streamcast;

}  // namespace

int main() {
  bench::banner("Figure 4",
                "worst-case startup delay (# time slots) vs number of nodes");

  util::Table table({"N", "degree 2", "degree 3", "degree 4", "degree 5"});
  for (sim::NodeKey n = 50; n <= 2000; n += 50) {
    std::vector<std::string> row{util::cell(n)};
    for (int d = 2; d <= 5; ++d) {
      const multitree::Forest f = multitree::build_greedy(n, d);
      row.push_back(util::cell(multitree::closed_form_worst_delay(f)));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::cout << "\nEngine cross-check at sampled grid points "
               "(closed form == simulated):\n";
  util::Table check({"N", "d", "closed form", "simulated"});
  bool all_match = true;
  struct GridPoint {
    sim::NodeKey n;
    int d;
  };
  std::vector<GridPoint> grid;
  for (const sim::NodeKey n : {100, 650, 1300, 2000}) {
    for (const int d : {2, 5}) {
      grid.push_back({n, d});
    }
  }
  std::vector<core::SessionConfig> tasks;
  for (const GridPoint& p : grid) {
    tasks.push_back({.scheme = core::Scheme::kMultiTreeGreedy,
                     .n = p.n,
                     .d = p.d});
  }
  const auto results = run::run_sweep(tasks);
  run::require_all(results);
  std::vector<sim::Slot> simulated(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    simulated[i] = results[i].qos.worst_delay;
  }
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const multitree::Forest f =
        multitree::build_greedy(grid[i].n, grid[i].d);
    const sim::Slot closed = multitree::closed_form_worst_delay(f);
    all_match = all_match && closed == simulated[i];
    check.add_row({util::cell(grid[i].n), util::cell(grid[i].d),
                   util::cell(closed), util::cell(simulated[i])});
  }
  check.print(std::cout);
  std::cout << (all_match ? "\nall cross-checks match.\n"
                          : "\nMISMATCH — see rows above.\n");

  // The paper's reading of the figure: degrees 2 and 3 are close and
  // dominate higher degrees.
  int deg23_wins = 0;
  int points = 0;
  for (sim::NodeKey n = 50; n <= 2000; n += 50) {
    ++points;
    sim::Slot best23 = 1 << 30;
    sim::Slot best45 = 1 << 30;
    for (const int d : {2, 3}) {
      best23 = std::min(best23, multitree::closed_form_worst_delay(
                                    multitree::build_greedy(n, d)));
    }
    for (const int d : {4, 5}) {
      best45 = std::min(best45, multitree::closed_form_worst_delay(
                                    multitree::build_greedy(n, d)));
    }
    if (best23 <= best45) ++deg23_wins;
  }
  std::cout << "grid points where min(deg 2, deg 3) <= min(deg 4, deg 5): "
            << deg23_wins << "/" << points
            << "  (paper: low degrees dominate)\n";
  return all_match ? 0 : 1;
}
