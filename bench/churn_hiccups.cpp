// Appendix churn QoS experiment (the paper's second omitted simulation):
// actual playback hiccups under mid-stream churn. The multi-tree overlay
// keeps streaming while peers join and leave; every viewer runs a playback
// buffer and each due packet missing in its slot is one hiccup. Compares
// eager vs lazy maintenance across churn intensities.
#include <iostream>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/multitree/analysis.hpp"
#include "src/multitree/churn.hpp"
#include "src/multitree/dynamic.hpp"
#include "src/net/topology.hpp"
#include "src/sim/engine.hpp"
#include "src/util/prng.hpp"
#include "src/util/table.hpp"

namespace {

using namespace streamcast;
using namespace streamcast::multitree;

struct Outcome {
  std::int64_t hiccups = 0;
  std::int64_t played = 0;
  std::size_t affected_peers = 0;
  std::size_t peers = 0;
  std::int64_t moves = 0;
};

Outcome run(NodeKey n0, int d, ChurnPolicy policy, int events,
            sim::Slot inter_event_gap, std::uint64_t seed) {
  const NodeKey capacity = 4 * n0;
  ChurnForest churn(n0, d, policy);
  DynamicMultiTreeProtocol proto(churn);
  net::UniformCluster topo(capacity, d);
  sim::Engine engine(topo, proto);
  const sim::Slot margin = worst_delay_bound(capacity, d) + 2 * d;
  PeerQosTracker tracker(churn, proto, margin);
  engine.add_observer(tracker);
  for (NodeKey id = 1; id <= n0; ++id) {
    tracker.peer_seated(churn.peer_at(id), 0);
  }

  util::Prng rng(seed);
  sim::Slot now = 0;
  for (int e = 0; e < events; ++e) {
    now += inter_event_gap;
    engine.run_until(now);
    if (churn.n() > 3 && rng.chance(0.5)) {
      const auto id = static_cast<NodeKey>(
          1 + rng.below(static_cast<std::uint64_t>(churn.n())));
      const PeerId victim = churn.peer_at(id);
      tracker.peer_left(victim, now);
      churn.remove(victim);
    } else {
      const PeerId p = churn.add();
      tracker.peer_seated(p, now);
    }
    proto.resync(now);
  }
  // Quiet tail: let the overlay settle, then close the books.
  const sim::Slot end = now + margin + 200;
  engine.run_until(end);
  tracker.finish(end);
  return Outcome{tracker.total_hiccups(), tracker.total_played(),
                 tracker.peers_with_hiccups(), tracker.peers_tracked(),
                 churn.stats().total_moves()};
}

}  // namespace

int main() {
  bench::banner("Appendix churn QoS (omitted simulation)",
                "playback hiccups under mid-stream churn, eager vs lazy");

  util::Table table({"N0", "d", "gap (slots)", "policy", "events", "moves",
                     "hiccups", "hiccups/event", "affected peers",
                     "played", "loss rate"});
  const int events = 60;
  for (const int d : {2, 3}) {
    for (const NodeKey n0 : {50, 200}) {
      for (const sim::Slot gap : {20, 80}) {
        for (const auto policy : {ChurnPolicy::kEager, ChurnPolicy::kLazy}) {
          const Outcome o = run(n0, d, policy, events, gap, /*seed=*/31337);
          table.add_row(
              {util::cell(n0), util::cell(d), util::cell(gap),
               policy == ChurnPolicy::kEager ? "eager" : "lazy",
               util::cell(events), util::cell(o.moves),
               util::cell(o.hiccups),
               util::cell(static_cast<double>(o.hiccups) / events, 2),
               util::cell(o.affected_peers) + "/" + util::cell(o.peers),
               util::cell(o.played),
               util::cell(static_cast<double>(o.hiccups) /
                              static_cast<double>(o.played + o.hiccups),
                          4)});
        }
      }
    }
  }
  table.print(std::cout);

  std::cout
      << "\nReading: hiccups track maintenance moves — a moved peer misses "
         "the rounds between its old and new position streams (the paper's "
         "\"lose data delivered before they were moved up / wait longer "
         "because moved down\"). Lazy maintenance, with fewer boundary "
         "restructurings, loses fewer packets at identical churn; loss "
         "rates stay well below 1% of played packets either way, and "
         "streaming never stalls (engine capacity checks hold throughout "
         "the mutations).\n";
  return 0;
}
