// BENCH_scale — million-node closed-form replay and scale-stack harness.
//
// Runs the structured multi-tree scheme (d = 3, kPreRecorded) over an
// N = 10^3 .. 10^6 curve. At every point the closed-form replay
// (scale::replay_structured via StreamingSession) is timed best-of-kReps;
// at points small enough to simulate (N <= kPumpMaxN) the per-slot pump is
// also run — with the exact recorder stack below the sketch threshold and
// the scale recorder stack above it, exercising both families — and its
// serialized QosReport must be byte-identical to the replay's.
//
// Emits a JSON report (argv[1], default ./BENCH_scale.json) with a "curve"
// array of per-N stats, which tools/bench_compare.py diffs against the
// checked-in baseline in CI.
//
// Exit is nonzero if any pump mismatch occurs, if a run exceeds its
// declared memory budget, or if the largest-N replay takes longer than
// kMaxReplaySeconds (the "single-digit seconds at N = 10^6" contract).
//
// --max-n=K truncates the curve (CI smoke runs --max-n=100000 to stay
// inside its wall-clock limit; the committed baseline covers the full
// curve).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/core/streamcast.hpp"

namespace streamcast {
namespace {

using core::Scheme;
using core::SessionConfig;

constexpr sim::NodeKey kCurve[] = {1'000, 10'000, 100'000, 1'000'000};
constexpr int kDegree = 3;
/// Largest N the per-slot pump verifies against the replay. 10^5 keeps the
/// check above the default sketch threshold (50k), so the scale recorder
/// stack is byte-checked too, not just the exact one.
constexpr sim::NodeKey kPumpMaxN = 100'000;
constexpr int kReps = 3;
constexpr double kMaxReplaySeconds = 10.0;

struct Point {
  sim::NodeKey n = 0;
  double replay_s = 0;
  double pump_s = 0;
  bool pump_checked = false;
  bool pump_match = true;
  bool scale_stack = false;
  std::size_t bytes_peak = 0;
  std::size_t budget_bytes = 0;
  core::ScaleRunResult replay;
};

SessionConfig base_config(sim::NodeKey n) {
  return {.scheme = Scheme::kMultiTreeStructured, .n = n, .d = kDegree};
}

Point measure(sim::NodeKey n) {
  Point p;
  p.n = n;

  // Replay timing: force the closed-form path at every N.
  SessionConfig replay_cfg = base_config(n);
  replay_cfg.scale.replay_threshold = 1;
  p.replay_s = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < kReps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    core::ScaleRunResult result = core::StreamingSession(replay_cfg).run_scale();
    const auto stop = std::chrono::steady_clock::now();
    p.replay_s = std::min(
        p.replay_s, std::chrono::duration<double>(stop - start).count());
    p.replay = std::move(result);
  }
  p.bytes_peak = p.replay.summary.bytes_peak;
  p.budget_bytes = p.replay.summary.budget_bytes;

  // Pump check: simulate every slot with the default recorder stack (exact
  // below the sketch threshold, scale above it) and compare bytes.
  if (n <= kPumpMaxN) {
    SessionConfig pump_cfg = base_config(n);
    pump_cfg.scale.allow_replay = false;
    p.scale_stack = pump_cfg.scale.sketch_threshold > 0 &&
                    n + 1 >= pump_cfg.scale.sketch_threshold;
    const auto start = std::chrono::steady_clock::now();
    const core::QosReport pump = core::StreamingSession(pump_cfg).run();
    const auto stop = std::chrono::steady_clock::now();
    p.pump_s = std::chrono::duration<double>(stop - start).count();
    p.pump_checked = true;
    p.pump_match = core::serialize(pump) == core::serialize(p.replay.qos);
    if (!p.pump_match) {
      std::cerr << "MISMATCH at n=" << n << "\n  pump  : "
                << core::serialize(pump)
                << "  replay: " << core::serialize(p.replay.qos);
    }
  }
  return p;
}

void emit_point(std::ostream& os, const Point& p) {
  const double nodes_per_sec = static_cast<double>(p.n) / p.replay_s;
  os << "    {\"n\": " << p.n << ", \"d\": " << kDegree
     << ", \"replay_s\": " << p.replay_s
     << ", \"replay_nodes_per_sec\": " << nodes_per_sec
     << ", \"pump_checked\": " << (p.pump_checked ? "true" : "false")
     << ", \"pump_s\": " << p.pump_s
     << ", \"scale_stack\": " << (p.scale_stack ? "true" : "false")
     << ", \"bytes_peak\": " << p.bytes_peak
     << ", \"worst_delay\": " << p.replay.qos.worst_delay
     << ", \"max_buffer\": " << p.replay.qos.max_buffer
     << ", \"transmissions\": " << p.replay.qos.transmissions
     << ", \"delay_p99\": " << p.replay.summary.delay.p99
     << ", \"buffer_p99\": " << p.replay.summary.buffer.p99 << "}";
}

}  // namespace
}  // namespace streamcast

int main(int argc, char** argv) {
  using namespace streamcast;
  bench::banner("BENCH_scale",
                "closed-form replay + scale recorder stack at N up to 10^6");

  std::string out_path = "BENCH_scale.json";
  sim::NodeKey max_n = std::numeric_limits<sim::NodeKey>::max();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--max-n=", 0) == 0) {
      max_n = static_cast<sim::NodeKey>(std::stoll(arg.substr(8)));
    } else {
      out_path = arg;
    }
  }

  std::vector<Point> points;
  bool all_match = true;
  bool within_budget = true;
  for (const sim::NodeKey n : kCurve) {
    if (n > max_n) continue;
    Point p = measure(n);
    all_match = all_match && p.pump_match;
    within_budget = within_budget && p.bytes_peak <= p.budget_bytes;
    std::cout << "n=" << p.n << "  replay " << p.replay_s << " s ("
              << static_cast<double>(p.n) / p.replay_s << " nodes/s)";
    if (p.pump_checked) {
      std::cout << "  pump " << p.pump_s << " s ["
                << (p.scale_stack ? "scale" : "exact") << " stack] "
                << (p.pump_match ? "match" : "MISMATCH");
    }
    std::cout << "  peak " << p.bytes_peak << " B\n";
    points.push_back(std::move(p));
  }
  if (points.empty()) {
    std::cerr << "--max-n excluded every curve point\n";
    return 2;
  }

  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  const Point& top = points.back();

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"bench\": \"scale\",\n"
      << "  \"hardware_threads\": " << hardware << ",\n"
      << "  \"max_n\": " << top.n << ",\n"
      << "  \"max_n_replay_s\": " << top.replay_s << ",\n"
      << "  \"byte_identical\": " << (all_match ? "true" : "false") << ",\n"
      << "  \"within_budget\": " << (within_budget ? "true" : "false")
      << ",\n"
      << "  \"curve\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    emit_point(out, points[i]);
    out << (i + 1 < points.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  out.close();
  std::cout << "\nwrote " << out_path << "\n";

  if (!all_match) {
    std::cerr << "FAIL: closed-form replay does not byte-match the pump\n";
    return 1;
  }
  if (!within_budget) {
    std::cerr << "FAIL: a run exceeded its declared memory budget\n";
    return 1;
  }
  if (top.replay_s > kMaxReplaySeconds) {
    std::cerr << "FAIL: replay at n=" << top.n << " took " << top.replay_s
              << " s > " << kMaxReplaySeconds << " s\n";
    return 1;
  }
  return 0;
}
