// Propositions 1-2 and Theorem 4: hypercube-scheme QoS across N — worst
// delay (k at special N, O(log^2 N) for the chain), O(1) buffers, O(log N)
// neighbors, and average delay <= 2*log2(N).
#include <cmath>
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/core/session.hpp"
#include "src/hypercube/analysis.hpp"
#include "src/util/table.hpp"

int main() {
  using namespace streamcast;
  bench::banner("Propositions 1-2 & Theorem 4",
                "hypercube QoS across N: delay, buffers, neighbors, and the "
                "2*log2(N) average bound");

  util::Table table({"N", "special?", "segments", "worst delay",
                     "avg delay", "2*log2(N)", "buffer", "neighbors",
                     "neighbor bound"});
  bool all_ok = true;
  for (const sim::NodeKey n : {3, 7, 15, 31, 63, 127, 255, 511, 1023, 2047,
                               5, 12, 20, 45, 100, 300, 777, 1500, 3000}) {
    const auto r = core::StreamingSession(core::SessionConfig{
                       .scheme = core::Scheme::kHypercube, .n = n, .d = 1})
                       .run();
    const double bound = hypercube::theorem4_bound(n);
    const auto segments = hypercube::decompose_chain(n).size();
    const bool ok = r.average_delay <= bound + 1e-9 && r.max_buffer <= 2 &&
                    r.max_neighbors <=
                        static_cast<std::size_t>(hypercube::neighbor_bound(n));
    all_ok = all_ok && ok;
    table.add_row({util::cell(n),
                   hypercube::is_special_n(n) ? "yes" : "no",
                   util::cell(segments), util::cell(r.worst_delay),
                   util::cell(r.average_delay, 2), util::cell(bound, 2),
                   util::cell(r.max_buffer), util::cell(r.max_neighbors),
                   util::cell(hypercube::neighbor_bound(n))});
  }
  table.print(std::cout);

  std::cout << "\nd-group variant (source capacity d): bounds scale with "
               "N/d (§3.2):\n";
  util::Table grouped({"N", "d", "worst delay", "avg delay",
                       "2*log2(ceil(N/d))"});
  for (const sim::NodeKey n : {100, 500, 2000}) {
    for (const int d : {2, 3, 4}) {
      const auto r = core::StreamingSession(
                         core::SessionConfig{
                             .scheme = core::Scheme::kHypercubeGrouped,
                             .n = n,
                             .d = d})
                         .run();
      grouped.add_row(
          {util::cell(n), util::cell(d), util::cell(r.worst_delay),
           util::cell(r.average_delay, 2),
           util::cell(2.0 * std::log2(std::ceil(static_cast<double>(n) / d)),
                      2)});
    }
  }
  grouped.print(std::cout);

  std::cout << (all_ok ? "\nall bounds hold: avg <= 2 log2 N, buffer <= 2, "
                         "neighbors within the closed-form O(log N) bound.\n"
                       : "\nBOUND VIOLATION above.\n");
  return all_ok ? 0 : 1;
}
