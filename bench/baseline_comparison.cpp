// §1 motivation, realized: the chain and single-tree strawmen against the
// paper's two schemes. Shows why the paper rejects both baselines — the
// chain's O(N) delay, and the single tree's d-times receiver upload with
// (1-1/d) of all upload capacity idle at the leaves.
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/baseline/single_tree.hpp"
#include "src/core/session.hpp"
#include "src/util/table.hpp"

int main() {
  using namespace streamcast;
  bench::banner("§1 baselines",
                "chain and single-tree strawmen vs multi-tree and hypercube");

  util::Table table({"scheme", "N", "worst delay", "avg delay", "buffer",
                     "neighbors", "receiver uplink", "idle uplink"});
  for (const sim::NodeKey n : {50, 200, 1000}) {
    const int d = 2;
    const auto chain = core::StreamingSession(core::SessionConfig{
                           .scheme = core::Scheme::kChain, .n = n, .d = 1})
                           .run();
    table.add_row({"chain", util::cell(n), util::cell(chain.worst_delay),
                   util::cell(chain.average_delay, 1),
                   util::cell(chain.max_buffer),
                   util::cell(chain.max_neighbors), "1x", "1 node"});
    const auto single =
        core::StreamingSession(core::SessionConfig{
                .scheme = core::Scheme::kSingleTree, .n = n, .d = d})
            .run();
    table.add_row(
        {"single d-ary tree", util::cell(n), util::cell(single.worst_delay),
         util::cell(single.average_delay, 1), util::cell(single.max_buffer),
         util::cell(single.max_neighbors),
         std::to_string(d) + "x (boosted!)",
         util::cell(100.0 * baseline::single_tree_leaf_fraction(n, d), 0) +
             "% of nodes"});
    const auto mt = core::StreamingSession(core::SessionConfig{
                        .scheme = core::Scheme::kMultiTreeGreedy,
                        .n = n,
                        .d = d})
                        .run();
    table.add_row({"multi-tree (d trees)", util::cell(n),
                   util::cell(mt.worst_delay),
                   util::cell(mt.average_delay, 1), util::cell(mt.max_buffer),
                   util::cell(mt.max_neighbors), "1x", "d nodes (G_d)"});
    const auto hc = core::StreamingSession(core::SessionConfig{
                        .scheme = core::Scheme::kHypercube, .n = n, .d = 1})
                        .run();
    table.add_row({"hypercube chain", util::cell(n),
                   util::cell(hc.worst_delay),
                   util::cell(hc.average_delay, 1), util::cell(hc.max_buffer),
                   util::cell(hc.max_neighbors), "1x", "~1 node/slot"});
  }
  table.print(std::cout);

  std::cout << "\nThe single tree matches the multi-tree's delay only by "
               "giving every interior node d times the upload bandwidth of "
               "the stream (BoostedCluster) while all leaves idle — on the "
               "paper's homogeneous 1x model it is infeasible (the engine "
               "rejects it; see baseline tests). The multi-tree achieves "
               "O(d log N) delay with every node uploading at stream rate.\n";
  return 0;
}
