// Figure 3: the interior-disjoint trees for N = 15, d = 3 under the
// structured (a) and greedy (b) constructions, printed level by level in
// the paper's layout.
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/multitree/greedy.hpp"
#include "src/multitree/structured.hpp"
#include "src/multitree/validate.hpp"

namespace {

using namespace streamcast;

void show(const char* name, const multitree::Forest& f) {
  std::cout << name << ":\n";
  for (int k = 0; k < f.d(); ++k) {
    std::cout << "  T_" << k << ":  S |";
    int level = 1;
    sim::NodeKey level_end = f.child_pos(0, f.d() - 1);
    for (sim::NodeKey pos = 1; pos <= f.n_pad(); ++pos) {
      if (pos > level_end) {
        std::cout << " |";
        ++level;
        level_end = f.child_pos(level_end, f.d() - 1);
      }
      const sim::NodeKey node = f.node_at(k, pos);
      std::cout << ' ' << node;
      if (f.is_dummy(node)) std::cout << '*';
    }
    std::cout << '\n';
  }
  const auto report = multitree::validate_forest(f);
  std::cout << "  invariants: " << (report.ok ? "ok" : "VIOLATED") << "\n\n";
}

}  // namespace

int main() {
  bench::banner("Figure 3",
                "interior-disjoint tree construction, N = 15, d = 3 "
                "(G_0={1..4}, G_1={5..8}, G_2={9..12}, G_3={13,14,15})");
  show("(a) Structured construction", multitree::build_structured(15, 3));
  show("(b) Greedy construction", multitree::build_greedy(15, 3));
  std::cout << "And with padding (N = 16, d = 3: dummies marked '*', always "
               "leaves):\n\n";
  show("(b') Greedy, N = 16", multitree::build_greedy(16, 3));
  return 0;
}
