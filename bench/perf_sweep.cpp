// BENCH_engine — engine hot-path and parallel-runner throughput harness.
//
// Runs the canonical cross-scheme grid twice: once serially (threads = 1)
// and once on the parallel sweep runner (resolve_threads(0), i.e. the
// STREAMCAST_THREADS override or hardware concurrency), timing both with
// steady_clock. Emits a JSON report (argv[1], default ./BENCH_engine.json)
// with slots/sec, deliveries/sec, wall time, and speedup, which
// tools/bench_compare.py diffs against the checked-in baseline in CI.
//
// Exit is nonzero if the parallel run's rendered reports are not
// byte-identical to serial, or — on machines with >= 8 hardware threads
// running >= 8 workers — if the parallel speedup falls below 3x. The
// byte-identical check is the determinism contract; the speedup gate is
// skipped on small machines where it is physically unmeasurable.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <limits>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/core/streamcast.hpp"
#include "src/run/sweep.hpp"

namespace streamcast {
namespace {

using core::Scheme;
using core::SessionConfig;

/// The canonical grid: every scheme at sizes large enough that the engine
/// hot path (slot stepping, duplicate filtering, delivery ring) dominates.
std::vector<SessionConfig> canonical_grid() {
  std::vector<SessionConfig> tasks;
  for (const Scheme scheme :
       {Scheme::kMultiTreeStructured, Scheme::kMultiTreeGreedy}) {
    for (const sim::NodeKey n : {63, 255, 511}) {
      for (const int d : {2, 3}) {
        tasks.push_back({.scheme = scheme, .n = n, .d = d});
      }
    }
  }
  for (const sim::NodeKey n : {63, 255, 1023}) {
    tasks.push_back({.scheme = Scheme::kHypercube, .n = n, .d = 1});
  }
  for (const sim::NodeKey n : {90, 252}) {
    for (const int d : {2, 3}) {
      tasks.push_back({.scheme = Scheme::kHypercubeGrouped, .n = n, .d = d});
    }
  }
  for (const sim::NodeKey n : {200, 400}) {
    tasks.push_back({.scheme = Scheme::kChain, .n = n, .d = 1});
  }
  for (const sim::NodeKey n : {255, 1023}) {
    tasks.push_back({.scheme = Scheme::kSingleTree, .n = n, .d = 2});
  }
  // Seeded lossy tasks keep the recovery path in the measured mix.
  for (const double rate : {0.02, 0.05}) {
    SessionConfig lossy{.scheme = Scheme::kMultiTreeGreedy, .n = 127, .d = 2};
    lossy.loss.model = loss::ErasureKind::kBernoulli;
    lossy.loss.rate = rate;
    lossy.loss.seed = 0x5eed;
    tasks.push_back(lossy);
  }
  return tasks;
}

std::string render(const std::vector<run::TaskResult>& results) {
  std::ostringstream os;
  for (const run::TaskResult& r : results) {
    os << r.qos.summary() << " slots=" << r.qos.slots_simulated
       << " drops=" << r.loss.drops << " retx=" << r.loss.retransmissions
       << "\n";
  }
  return os.str();
}

struct Measurement {
  double wall_s = 0;
  std::uint64_t slots = 0;
  std::uint64_t transmissions = 0;
  std::uint64_t deliveries = 0;  // transmissions that survived the link
  std::vector<run::TaskResult> results;
};

/// Best-of-kReps timing: the minimum wall clock is the least-noisy
/// estimator of the true cost on a shared machine, and the report totals
/// are identical across repetitions by the determinism contract.
constexpr int kReps = 5;

double time_once(const std::vector<SessionConfig>& tasks, int threads,
                 Measurement& m) {
  const auto start = std::chrono::steady_clock::now();
  auto results = run::run_sweep(tasks, {.threads = threads});
  const auto stop = std::chrono::steady_clock::now();
  run::require_all(results);
  m.results = std::move(results);
  return std::chrono::duration<double>(stop - start).count();
}

void finalize(Measurement& m) {
  m.slots = 0;
  m.transmissions = 0;
  m.deliveries = 0;
  for (const run::TaskResult& r : m.results) {
    m.slots += static_cast<std::uint64_t>(r.qos.slots_simulated);
    m.transmissions += static_cast<std::uint64_t>(r.qos.transmissions);
    m.deliveries +=
        static_cast<std::uint64_t>(r.qos.transmissions - r.qos.drops);
  }
}

/// Times serial and parallel back-to-back inside each repetition so that
/// CPU frequency drift on shared machines biases both sides equally
/// instead of whichever happened to run later.
void run_grids(const std::vector<SessionConfig>& tasks, int parallel_threads,
               Measurement& serial, Measurement& parallel) {
  serial.wall_s = std::numeric_limits<double>::infinity();
  parallel.wall_s = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < kReps; ++rep) {
    serial.wall_s = std::min(serial.wall_s, time_once(tasks, 1, serial));
    parallel.wall_s =
        std::min(parallel.wall_s, time_once(tasks, parallel_threads, parallel));
  }
  finalize(serial);
  finalize(parallel);
}

void emit_section(std::ostream& os, const std::string& name,
                  const Measurement& m, int threads) {
  os << "  \"" << name << "\": {\n"
     << "    \"threads\": " << threads << ",\n"
     << "    \"wall_s\": " << m.wall_s << ",\n"
     << "    \"slots\": " << m.slots << ",\n"
     << "    \"transmissions\": " << m.transmissions << ",\n"
     << "    \"deliveries\": " << m.deliveries << ",\n"
     << "    \"slots_per_sec\": " << static_cast<double>(m.slots) / m.wall_s
     << ",\n"
     << "    \"deliveries_per_sec\": "
     << static_cast<double>(m.deliveries) / m.wall_s << "\n"
     << "  }";
}

}  // namespace
}  // namespace streamcast

int main(int argc, char** argv) {
  using namespace streamcast;
  bench::banner("BENCH_engine",
                "engine hot-path + parallel sweep runner throughput");

  const std::string out_path = argc > 1 ? argv[1] : "BENCH_engine.json";
  const auto tasks = canonical_grid();
  const int parallel_threads = run::resolve_threads(0);
  const unsigned hardware =
      std::max(1u, std::thread::hardware_concurrency());

  Measurement serial;
  Measurement parallel;
  // Warm-up pass so first-touch allocation noise stays out of both timings.
  (void)time_once(tasks, 1, serial);
  run_grids(tasks, parallel_threads, serial, parallel);
  const bool byte_identical =
      render(serial.results) == render(parallel.results);
  const double speedup = serial.wall_s / parallel.wall_s;

  std::cout << "grid tasks        : " << tasks.size() << "\n"
            << "hardware threads  : " << hardware << "\n"
            << "serial wall       : " << serial.wall_s << " s\n"
            << "serial slots/sec  : "
            << static_cast<double>(serial.slots) / serial.wall_s << "\n"
            << "parallel threads  : " << parallel_threads << "\n"
            << "parallel wall     : " << parallel.wall_s << " s\n"
            << "speedup           : " << speedup << "x\n"
            << "byte identical    : " << (byte_identical ? "yes" : "NO")
            << "\n";

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"grid_tasks\": " << tasks.size() << ",\n"
      << "  \"hardware_threads\": " << hardware << ",\n"
      << "  \"byte_identical\": " << (byte_identical ? "true" : "false")
      << ",\n";
  emit_section(out, "serial", serial, 1);
  out << ",\n";
  emit_section(out, "parallel", parallel, parallel_threads);
  out << ",\n  \"speedup\": " << speedup << "\n}\n";
  out.close();
  std::cout << "\nwrote " << out_path << "\n";

  if (!byte_identical) {
    std::cerr << "FAIL: parallel reports differ from serial\n";
    return 1;
  }
  // The 3x gate only means something when 8+ workers actually ran on 8+
  // cores; a laptop CI shard or a 1-core container cannot measure it.
  if (parallel_threads >= 8 && hardware >= 8 && speedup < 3.0) {
    std::cerr << "FAIL: speedup " << speedup << "x < 3x at "
              << parallel_threads << " threads\n";
    return 1;
  }
  return 0;
}
