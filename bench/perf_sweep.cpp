// BENCH_engine — engine hot-path and parallel-runner throughput harness.
//
// Runs the canonical cross-scheme grid twice: once serially (threads = 1)
// and once on the parallel sweep runner (resolve_threads(0), i.e. the
// STREAMCAST_THREADS override or hardware concurrency), timing both with
// steady_clock. Emits a JSON report (argv[1], default ./BENCH_engine.json)
// with slots/sec, deliveries/sec, wall time, and speedup, which
// tools/bench_compare.py diffs against the checked-in baseline in CI.
//
// Exit is nonzero if the parallel run's rendered reports are not
// byte-identical to serial, or — on machines with >= 8 hardware threads
// running >= 8 workers — if the parallel speedup falls below 3x. The
// byte-identical check is the determinism contract; the speedup gate is
// skipped on small machines where it is physically unmeasurable.
//
// --shards switches to the intra-run sharding benchmark (DESIGN.md §14):
// ONE large multicluster session executed serially and sharded across the
// cluster boundary, reporting per-phase wall time (construct / pump /
// merge) and arena allocation counters for both sides. Exit is nonzero if
// the sharded QosReport is not byte-identical to the serial one, or — with
// >= 4 shards on >= 4 hardware threads — if the single-run speedup falls
// below 1.3x (the perf-mt CI gate).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <fstream>
#include <limits>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/core/shard.hpp"
#include "src/core/streamcast.hpp"
#include "src/run/sweep.hpp"

namespace streamcast {
namespace {

using core::Scheme;
using core::SessionConfig;

/// One canonical grid point, keyed by the registry's canonical scheme name
/// (core::parse_scheme resolves it, so a typo here fails loudly at startup
/// instead of silently benchmarking the wrong scheme).
struct GridPoint {
  const char* scheme;
  sim::NodeKey n;
  int d;
};

/// The canonical grid: every registered scheme at sizes large enough that
/// the engine hot path (slot stepping, duplicate filtering, delivery ring)
/// dominates. Degree-sweep schemes get two d values per size.
constexpr GridPoint kGridPoints[] = {
    {"multi-tree/structured", 63, 2},  {"multi-tree/structured", 63, 3},
    {"multi-tree/structured", 255, 2}, {"multi-tree/structured", 255, 3},
    {"multi-tree/structured", 511, 2}, {"multi-tree/structured", 511, 3},
    {"multi-tree/greedy", 63, 2},      {"multi-tree/greedy", 63, 3},
    {"multi-tree/greedy", 255, 2},     {"multi-tree/greedy", 255, 3},
    {"multi-tree/greedy", 511, 2},     {"multi-tree/greedy", 511, 3},
    {"hypercube", 63, 1},              {"hypercube", 255, 1},
    {"hypercube", 1023, 1},            {"hypercube/grouped", 90, 2},
    {"hypercube/grouped", 90, 3},      {"hypercube/grouped", 252, 2},
    {"hypercube/grouped", 252, 3},     {"chain", 200, 1},
    {"chain", 400, 1},                 {"single-tree", 255, 2},
    {"single-tree", 1023, 2},
};

std::vector<SessionConfig> canonical_grid() {
  std::vector<SessionConfig> tasks;
  for (const GridPoint& p : kGridPoints) {
    tasks.push_back(
        {.scheme = core::parse_scheme(p.scheme), .n = p.n, .d = p.d});
  }
  // Seeded lossy tasks keep the recovery path in the measured mix.
  for (const double rate : {0.02, 0.05}) {
    SessionConfig lossy{.scheme = Scheme::kMultiTreeGreedy, .n = 127, .d = 2};
    lossy.loss.model = loss::ErasureKind::kBernoulli;
    lossy.loss.rate = rate;
    lossy.loss.seed = 0x5eed;
    tasks.push_back(lossy);
  }
  return tasks;
}

/// Parses the --schemes=a,b,c filter through core::parse_scheme; an unknown
/// name aborts with the registry's canonical list.
std::vector<Scheme> parse_scheme_filter(const std::string& csv) {
  std::vector<Scheme> schemes;
  std::istringstream in(csv);
  std::string name;
  while (std::getline(in, name, ',')) {
    if (name.empty()) continue;
    try {
      schemes.push_back(core::parse_scheme(name));
    } catch (const std::invalid_argument&) {
      std::cerr << "unknown scheme: " << name << "\nvalid names:";
      for (const auto& desc : scheme::all()) std::cerr << ' ' << desc.name;
      std::cerr << "\n";
      std::exit(2);
    }
  }
  return schemes;
}

std::vector<SessionConfig> filter_grid(std::vector<SessionConfig> tasks,
                                       const std::vector<Scheme>& keep) {
  if (keep.empty()) return tasks;
  std::erase_if(tasks, [&](const SessionConfig& cfg) {
    return std::find(keep.begin(), keep.end(), cfg.scheme) == keep.end();
  });
  return tasks;
}

/// Distinct canonical scheme names present in the grid, in grid order.
std::vector<std::string> grid_schemes(
    const std::vector<SessionConfig>& tasks) {
  std::vector<std::string> names;
  for (const SessionConfig& cfg : tasks) {
    const std::string name = core::scheme_name(cfg.scheme);
    if (std::find(names.begin(), names.end(), name) == names.end()) {
      names.push_back(name);
    }
  }
  return names;
}

std::string render(const std::vector<run::TaskResult>& results) {
  std::ostringstream os;
  for (const run::TaskResult& r : results) {
    os << r.qos.summary() << " slots=" << r.qos.slots_simulated
       << " drops=" << r.loss.drops << " retx=" << r.loss.retransmissions
       << "\n";
  }
  return os.str();
}

struct Measurement {
  double wall_s = 0;
  std::uint64_t slots = 0;
  std::uint64_t transmissions = 0;
  std::uint64_t deliveries = 0;  // transmissions that survived the link
  std::vector<run::TaskResult> results;
};

/// Best-of-kReps timing: the minimum wall clock is the least-noisy
/// estimator of the true cost on a shared machine, and the report totals
/// are identical across repetitions by the determinism contract.
constexpr int kReps = 5;

double time_once(const std::vector<SessionConfig>& tasks, int threads,
                 Measurement& m) {
  const auto start = std::chrono::steady_clock::now();
  auto results = run::run_sweep(tasks, {.threads = threads});
  const auto stop = std::chrono::steady_clock::now();
  run::require_all(results);
  m.results = std::move(results);
  return std::chrono::duration<double>(stop - start).count();
}

void finalize(Measurement& m) {
  m.slots = 0;
  m.transmissions = 0;
  m.deliveries = 0;
  for (const run::TaskResult& r : m.results) {
    m.slots += static_cast<std::uint64_t>(r.qos.slots_simulated);
    m.transmissions += static_cast<std::uint64_t>(r.qos.transmissions);
    m.deliveries +=
        static_cast<std::uint64_t>(r.qos.transmissions - r.qos.drops);
  }
}

/// Times serial and parallel back-to-back inside each repetition so that
/// CPU frequency drift on shared machines biases both sides equally
/// instead of whichever happened to run later.
void run_grids(const std::vector<SessionConfig>& tasks, int parallel_threads,
               Measurement& serial, Measurement& parallel) {
  serial.wall_s = std::numeric_limits<double>::infinity();
  parallel.wall_s = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < kReps; ++rep) {
    serial.wall_s = std::min(serial.wall_s, time_once(tasks, 1, serial));
    parallel.wall_s =
        std::min(parallel.wall_s, time_once(tasks, parallel_threads, parallel));
  }
  finalize(serial);
  finalize(parallel);
}

// --- intra-run sharding benchmark (--shards; DESIGN.md §14) ----------------

/// The sharded grid is ONE session, big enough that the per-cluster pump
/// dominates the epoch barrier: 8 clusters of 255 receivers on degree-3
/// trees, T_c = 8 (an 8-slot epoch between barriers).
core::SessionConfig shard_config() {
  core::SessionConfig config;
  config.scheme = Scheme::kMultiTreeGreedy;
  config.n = 255;
  config.d = 3;
  config.clusters = 8;
  config.big_d = 3;
  config.t_c = 8;
  config.audit = false;
  return config;
}

/// Best-of-kReps sharded run at `shards` workers. The report and metrics of
/// the fastest pump repetition are kept (reports are identical across reps
/// by the determinism contract).
core::QosReport time_sharded(const core::SessionConfig& config, int shards,
                             core::ShardMetrics& best) {
  core::ShardOptions opts;
  opts.shards = shards;
  core::QosReport report;
  best.pump_s = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < kReps; ++rep) {
    core::ShardMetrics m;
    report = core::run_multicluster_sharded(config, opts, &m);
    if (m.pump_s < best.pump_s) best = m;
  }
  return report;
}

double wall_of(const core::ShardMetrics& m) {
  return m.construct_s + m.pump_s + m.merge_s;
}

void emit_shard_section(std::ostream& os, const std::string& name,
                        const core::ShardMetrics& m) {
  os << "  \"" << name << "\": {\n"
     << "    \"shards\": " << m.shards << ",\n"
     << "    \"wall_s\": " << wall_of(m) << ",\n"
     << "    \"construct_s\": " << m.construct_s << ",\n"
     << "    \"pump_s\": " << m.pump_s << ",\n"
     << "    \"merge_s\": " << m.merge_s << ",\n"
     << "    \"transmissions\": " << m.stats.transmissions << ",\n"
     << "    \"deliveries\": " << m.stats.deliveries << ",\n"
     << "    \"arena_allocations\": " << m.stats.arena_allocations << ",\n"
     << "    \"arena_bytes\": " << m.stats.arena_bytes << ",\n"
     << "    \"arena_chunks\": " << m.stats.arena_chunks << ",\n"
     << "    \"ring_relayouts\": " << m.stats.ring_relayouts << ",\n"
     << "    \"seen_relayouts\": " << m.stats.seen_relayouts << "\n"
     << "  }";
}

void print_shard_side(const char* name, const core::ShardMetrics& m) {
  std::cout << name << " (" << m.shards << " shard"
            << (m.shards == 1 ? "" : "s") << ")\n"
            << "  construct        : " << m.construct_s << " s\n"
            << "  pump             : " << m.pump_s << " s\n"
            << "  merge            : " << m.merge_s << " s\n"
            << "  wall             : " << wall_of(m) << " s\n"
            << "  arena allocs     : " << m.stats.arena_allocations << " ("
            << m.stats.arena_bytes << " bytes, " << m.stats.arena_chunks
            << " chunks)\n";
}

/// The --shards mode: serial vs sharded execution of shard_config(),
/// best-of-kReps each, byte-identity always enforced, the 1.3x speedup
/// gate only where it is measurable (>= 4 shards on >= 4 cores).
int run_shard_bench(const std::string& out_path) {
  const core::SessionConfig config = shard_config();
  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  const int shards =
      std::min(config.clusters, run::resolve_threads(0));

  core::ShardMetrics serial;
  core::ShardMetrics sharded;
  // Warm-up: first-touch allocation and page-fault noise stays out of both.
  (void)time_sharded(config, 1, serial);
  const core::QosReport serial_report = time_sharded(config, 1, serial);
  const core::QosReport sharded_report = time_sharded(config, shards, sharded);

  const bool byte_identical =
      core::serialize(serial_report) == core::serialize(sharded_report);
  const double speedup = serial.pump_s / sharded.pump_s;

  std::cout << "session           : " << core::scheme_label(config.scheme, 8)
            << " n=" << config.n << " d=" << config.d
            << " T_c=" << config.t_c << "\n"
            << "hardware threads  : " << hardware << "\n";
  print_shard_side("serial", serial);
  print_shard_side("sharded", sharded);
  std::cout << "pump speedup      : " << speedup << "x\n"
            << "byte identical    : " << (byte_identical ? "yes" : "NO")
            << "\n";

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"mode\": \"shards\",\n"
      << "  \"scheme\": \"" << core::scheme_name(config.scheme) << "\",\n"
      << "  \"clusters\": " << config.clusters << ",\n"
      << "  \"n\": " << config.n << ",\n"
      << "  \"d\": " << config.d << ",\n"
      << "  \"t_c\": " << config.t_c << ",\n"
      << "  \"hardware_threads\": " << hardware << ",\n"
      << "  \"byte_identical\": " << (byte_identical ? "true" : "false")
      << ",\n";
  emit_shard_section(out, "serial", serial);
  out << ",\n";
  emit_shard_section(out, "sharded", sharded);
  out << ",\n  \"speedup\": " << speedup << "\n}\n";
  out.close();
  std::cout << "\nwrote " << out_path << "\n";

  if (!byte_identical) {
    std::cerr << "FAIL: sharded report differs from serial\n";
    return 1;
  }
  if (shards >= 4 && hardware >= 4 && speedup < 1.3) {
    std::cerr << "FAIL: sharded speedup " << speedup << "x < 1.3x at "
              << shards << " shards\n";
    return 1;
  }
  return 0;
}

void emit_section(std::ostream& os, const std::string& name,
                  const Measurement& m, int threads) {
  os << "  \"" << name << "\": {\n"
     << "    \"threads\": " << threads << ",\n"
     << "    \"wall_s\": " << m.wall_s << ",\n"
     << "    \"slots\": " << m.slots << ",\n"
     << "    \"transmissions\": " << m.transmissions << ",\n"
     << "    \"deliveries\": " << m.deliveries << ",\n"
     << "    \"slots_per_sec\": " << static_cast<double>(m.slots) / m.wall_s
     << ",\n"
     << "    \"deliveries_per_sec\": "
     << static_cast<double>(m.deliveries) / m.wall_s << "\n"
     << "  }";
}

}  // namespace
}  // namespace streamcast

int main(int argc, char** argv) {
  using namespace streamcast;
  bench::banner("BENCH_engine",
                "engine hot-path + parallel sweep runner throughput");

  std::string out_path;
  std::vector<Scheme> keep;
  bool shard_mode = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--schemes=", 0) == 0) {
      keep = parse_scheme_filter(arg.substr(10));
    } else if (arg == "--schemes" && i + 1 < argc) {
      keep = parse_scheme_filter(argv[++i]);
    } else if (arg == "--shards") {
      shard_mode = true;
    } else {
      out_path = arg;
    }
  }
  if (shard_mode) {
    return run_shard_bench(out_path.empty() ? "BENCH_shards.json" : out_path);
  }
  if (out_path.empty()) out_path = "BENCH_engine.json";
  const auto tasks = filter_grid(canonical_grid(), keep);
  if (tasks.empty()) {
    std::cerr << "scheme filter matched no grid tasks\n";
    return 2;
  }
  const int parallel_threads = run::resolve_threads(0);
  const unsigned hardware =
      std::max(1u, std::thread::hardware_concurrency());

  Measurement serial;
  Measurement parallel;
  // Warm-up pass so first-touch allocation noise stays out of both timings.
  (void)time_once(tasks, 1, serial);
  run_grids(tasks, parallel_threads, serial, parallel);
  const bool byte_identical =
      render(serial.results) == render(parallel.results);
  const double speedup = serial.wall_s / parallel.wall_s;

  std::cout << "grid tasks        : " << tasks.size() << "\n"
            << "hardware threads  : " << hardware << "\n"
            << "serial wall       : " << serial.wall_s << " s\n"
            << "serial slots/sec  : "
            << static_cast<double>(serial.slots) / serial.wall_s << "\n"
            << "parallel threads  : " << parallel_threads << "\n"
            << "parallel wall     : " << parallel.wall_s << " s\n"
            << "speedup           : " << speedup << "x\n"
            << "byte identical    : " << (byte_identical ? "yes" : "NO")
            << "\n";

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"grid_tasks\": " << tasks.size() << ",\n"
      << "  \"filtered\": " << (keep.empty() ? "false" : "true") << ",\n"
      << "  \"schemes\": [";
  const auto names = grid_schemes(tasks);
  for (std::size_t i = 0; i < names.size(); ++i) {
    out << (i == 0 ? "" : ", ") << '"' << names[i] << '"';
  }
  out << "],\n"
      << "  \"hardware_threads\": " << hardware << ",\n"
      << "  \"byte_identical\": " << (byte_identical ? "true" : "false")
      << ",\n";
  emit_section(out, "serial", serial, 1);
  out << ",\n";
  emit_section(out, "parallel", parallel, parallel_threads);
  out << ",\n  \"speedup\": " << speedup << "\n}\n";
  out.close();
  std::cout << "\nwrote " << out_path << "\n";

  if (!byte_identical) {
    std::cerr << "FAIL: parallel reports differ from serial\n";
    return 1;
  }
  // The 3x gate only means something when 8+ workers actually ran on 8+
  // cores; a laptop CI shard or a 1-core container cannot measure it.
  if (parallel_threads >= 8 && hardware >= 8 && speedup < 3.0) {
    std::cerr << "FAIL: speedup " << speedup << "x < 3x at "
              << parallel_threads << " threads\n";
    return 1;
  }
  return 0;
}
