// BENCH_engine — engine hot-path and parallel-runner throughput harness.
//
// Runs the canonical cross-scheme grid twice: once serially (threads = 1)
// and once on the parallel sweep runner (resolve_threads(0), i.e. the
// STREAMCAST_THREADS override or hardware concurrency), timing both with
// steady_clock. Emits a JSON report (argv[1], default ./BENCH_engine.json)
// with slots/sec, deliveries/sec, wall time, and speedup, which
// tools/bench_compare.py diffs against the checked-in baseline in CI.
//
// Exit is nonzero if the parallel run's rendered reports are not
// byte-identical to serial, or — on machines with >= 8 hardware threads
// running >= 8 workers — if the parallel speedup falls below 3x. The
// byte-identical check is the determinism contract; the speedup gate is
// skipped on small machines where it is physically unmeasurable.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <fstream>
#include <limits>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/core/streamcast.hpp"
#include "src/run/sweep.hpp"

namespace streamcast {
namespace {

using core::Scheme;
using core::SessionConfig;

/// One canonical grid point, keyed by the registry's canonical scheme name
/// (core::parse_scheme resolves it, so a typo here fails loudly at startup
/// instead of silently benchmarking the wrong scheme).
struct GridPoint {
  const char* scheme;
  sim::NodeKey n;
  int d;
};

/// The canonical grid: every registered scheme at sizes large enough that
/// the engine hot path (slot stepping, duplicate filtering, delivery ring)
/// dominates. Degree-sweep schemes get two d values per size.
constexpr GridPoint kGridPoints[] = {
    {"multi-tree/structured", 63, 2},  {"multi-tree/structured", 63, 3},
    {"multi-tree/structured", 255, 2}, {"multi-tree/structured", 255, 3},
    {"multi-tree/structured", 511, 2}, {"multi-tree/structured", 511, 3},
    {"multi-tree/greedy", 63, 2},      {"multi-tree/greedy", 63, 3},
    {"multi-tree/greedy", 255, 2},     {"multi-tree/greedy", 255, 3},
    {"multi-tree/greedy", 511, 2},     {"multi-tree/greedy", 511, 3},
    {"hypercube", 63, 1},              {"hypercube", 255, 1},
    {"hypercube", 1023, 1},            {"hypercube/grouped", 90, 2},
    {"hypercube/grouped", 90, 3},      {"hypercube/grouped", 252, 2},
    {"hypercube/grouped", 252, 3},     {"chain", 200, 1},
    {"chain", 400, 1},                 {"single-tree", 255, 2},
    {"single-tree", 1023, 2},
};

std::vector<SessionConfig> canonical_grid() {
  std::vector<SessionConfig> tasks;
  for (const GridPoint& p : kGridPoints) {
    tasks.push_back(
        {.scheme = core::parse_scheme(p.scheme), .n = p.n, .d = p.d});
  }
  // Seeded lossy tasks keep the recovery path in the measured mix.
  for (const double rate : {0.02, 0.05}) {
    SessionConfig lossy{.scheme = Scheme::kMultiTreeGreedy, .n = 127, .d = 2};
    lossy.loss.model = loss::ErasureKind::kBernoulli;
    lossy.loss.rate = rate;
    lossy.loss.seed = 0x5eed;
    tasks.push_back(lossy);
  }
  return tasks;
}

/// Parses the --schemes=a,b,c filter through core::parse_scheme; an unknown
/// name aborts with the registry's canonical list.
std::vector<Scheme> parse_scheme_filter(const std::string& csv) {
  std::vector<Scheme> schemes;
  std::istringstream in(csv);
  std::string name;
  while (std::getline(in, name, ',')) {
    if (name.empty()) continue;
    try {
      schemes.push_back(core::parse_scheme(name));
    } catch (const std::invalid_argument&) {
      std::cerr << "unknown scheme: " << name << "\nvalid names:";
      for (const auto& desc : scheme::all()) std::cerr << ' ' << desc.name;
      std::cerr << "\n";
      std::exit(2);
    }
  }
  return schemes;
}

std::vector<SessionConfig> filter_grid(std::vector<SessionConfig> tasks,
                                       const std::vector<Scheme>& keep) {
  if (keep.empty()) return tasks;
  std::erase_if(tasks, [&](const SessionConfig& cfg) {
    return std::find(keep.begin(), keep.end(), cfg.scheme) == keep.end();
  });
  return tasks;
}

/// Distinct canonical scheme names present in the grid, in grid order.
std::vector<std::string> grid_schemes(
    const std::vector<SessionConfig>& tasks) {
  std::vector<std::string> names;
  for (const SessionConfig& cfg : tasks) {
    const std::string name = core::scheme_name(cfg.scheme);
    if (std::find(names.begin(), names.end(), name) == names.end()) {
      names.push_back(name);
    }
  }
  return names;
}

std::string render(const std::vector<run::TaskResult>& results) {
  std::ostringstream os;
  for (const run::TaskResult& r : results) {
    os << r.qos.summary() << " slots=" << r.qos.slots_simulated
       << " drops=" << r.loss.drops << " retx=" << r.loss.retransmissions
       << "\n";
  }
  return os.str();
}

struct Measurement {
  double wall_s = 0;
  std::uint64_t slots = 0;
  std::uint64_t transmissions = 0;
  std::uint64_t deliveries = 0;  // transmissions that survived the link
  std::vector<run::TaskResult> results;
};

/// Best-of-kReps timing: the minimum wall clock is the least-noisy
/// estimator of the true cost on a shared machine, and the report totals
/// are identical across repetitions by the determinism contract.
constexpr int kReps = 5;

double time_once(const std::vector<SessionConfig>& tasks, int threads,
                 Measurement& m) {
  const auto start = std::chrono::steady_clock::now();
  auto results = run::run_sweep(tasks, {.threads = threads});
  const auto stop = std::chrono::steady_clock::now();
  run::require_all(results);
  m.results = std::move(results);
  return std::chrono::duration<double>(stop - start).count();
}

void finalize(Measurement& m) {
  m.slots = 0;
  m.transmissions = 0;
  m.deliveries = 0;
  for (const run::TaskResult& r : m.results) {
    m.slots += static_cast<std::uint64_t>(r.qos.slots_simulated);
    m.transmissions += static_cast<std::uint64_t>(r.qos.transmissions);
    m.deliveries +=
        static_cast<std::uint64_t>(r.qos.transmissions - r.qos.drops);
  }
}

/// Times serial and parallel back-to-back inside each repetition so that
/// CPU frequency drift on shared machines biases both sides equally
/// instead of whichever happened to run later.
void run_grids(const std::vector<SessionConfig>& tasks, int parallel_threads,
               Measurement& serial, Measurement& parallel) {
  serial.wall_s = std::numeric_limits<double>::infinity();
  parallel.wall_s = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < kReps; ++rep) {
    serial.wall_s = std::min(serial.wall_s, time_once(tasks, 1, serial));
    parallel.wall_s =
        std::min(parallel.wall_s, time_once(tasks, parallel_threads, parallel));
  }
  finalize(serial);
  finalize(parallel);
}

void emit_section(std::ostream& os, const std::string& name,
                  const Measurement& m, int threads) {
  os << "  \"" << name << "\": {\n"
     << "    \"threads\": " << threads << ",\n"
     << "    \"wall_s\": " << m.wall_s << ",\n"
     << "    \"slots\": " << m.slots << ",\n"
     << "    \"transmissions\": " << m.transmissions << ",\n"
     << "    \"deliveries\": " << m.deliveries << ",\n"
     << "    \"slots_per_sec\": " << static_cast<double>(m.slots) / m.wall_s
     << ",\n"
     << "    \"deliveries_per_sec\": "
     << static_cast<double>(m.deliveries) / m.wall_s << "\n"
     << "  }";
}

}  // namespace
}  // namespace streamcast

int main(int argc, char** argv) {
  using namespace streamcast;
  bench::banner("BENCH_engine",
                "engine hot-path + parallel sweep runner throughput");

  std::string out_path = "BENCH_engine.json";
  std::vector<Scheme> keep;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--schemes=", 0) == 0) {
      keep = parse_scheme_filter(arg.substr(10));
    } else if (arg == "--schemes" && i + 1 < argc) {
      keep = parse_scheme_filter(argv[++i]);
    } else {
      out_path = arg;
    }
  }
  const auto tasks = filter_grid(canonical_grid(), keep);
  if (tasks.empty()) {
    std::cerr << "scheme filter matched no grid tasks\n";
    return 2;
  }
  const int parallel_threads = run::resolve_threads(0);
  const unsigned hardware =
      std::max(1u, std::thread::hardware_concurrency());

  Measurement serial;
  Measurement parallel;
  // Warm-up pass so first-touch allocation noise stays out of both timings.
  (void)time_once(tasks, 1, serial);
  run_grids(tasks, parallel_threads, serial, parallel);
  const bool byte_identical =
      render(serial.results) == render(parallel.results);
  const double speedup = serial.wall_s / parallel.wall_s;

  std::cout << "grid tasks        : " << tasks.size() << "\n"
            << "hardware threads  : " << hardware << "\n"
            << "serial wall       : " << serial.wall_s << " s\n"
            << "serial slots/sec  : "
            << static_cast<double>(serial.slots) / serial.wall_s << "\n"
            << "parallel threads  : " << parallel_threads << "\n"
            << "parallel wall     : " << parallel.wall_s << " s\n"
            << "speedup           : " << speedup << "x\n"
            << "byte identical    : " << (byte_identical ? "yes" : "NO")
            << "\n";

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"grid_tasks\": " << tasks.size() << ",\n"
      << "  \"filtered\": " << (keep.empty() ? "false" : "true") << ",\n"
      << "  \"schemes\": [";
  const auto names = grid_schemes(tasks);
  for (std::size_t i = 0; i < names.size(); ++i) {
    out << (i == 0 ? "" : ", ") << '"' << names[i] << '"';
  }
  out << "],\n"
      << "  \"hardware_threads\": " << hardware << ",\n"
      << "  \"byte_identical\": " << (byte_identical ? "true" : "false")
      << ",\n";
  emit_section(out, "serial", serial, 1);
  out << ",\n";
  emit_section(out, "parallel", parallel, parallel_threads);
  out << ",\n  \"speedup\": " << speedup << "\n}\n";
  out.close();
  std::cout << "\nwrote " << out_path << "\n";

  if (!byte_identical) {
    std::cerr << "FAIL: parallel reports differ from serial\n";
    return 1;
  }
  // The 3x gate only means something when 8+ workers actually ran on 8+
  // cores; a laptop CI shard or a 1-core container cannot measure it.
  if (parallel_threads >= 8 && hardware >= 8 && speedup < 3.0) {
    std::cerr << "FAIL: speedup " << speedup << "x < 3x at "
              << parallel_threads << " threads\n";
    return 1;
  }
  return 0;
}
