// Theorem 2: worst-case playback delay T <= h*d with
// h = ceil(log_d[N(1-1/d)+1]), and a buffer of h*d packets suffices.
// Measured delay and buffer across N for both constructions; complete trees
// achieve the bound exactly (start slot h*d - 1, i.e. h*d elapsed slots).
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/metrics/buffers.hpp"
#include "src/metrics/delay.hpp"
#include "src/multitree/analysis.hpp"
#include "src/multitree/greedy.hpp"
#include "src/multitree/protocol.hpp"
#include "src/multitree/schedule.hpp"
#include "src/multitree/structured.hpp"
#include "src/net/topology.hpp"
#include "src/sim/engine.hpp"
#include "src/util/table.hpp"

namespace {

using namespace streamcast;

struct Measured {
  sim::Slot worst_delay = 0;
  std::size_t worst_buffer = 0;
};

Measured measure(const multitree::Forest& f) {
  net::UniformCluster topo(f.n(), f.d());
  multitree::MultiTreeProtocol proto(f);
  sim::Engine engine(topo, proto);
  const sim::PacketId window = 2 * f.d() * (f.height() + 2);
  metrics::DelayRecorder rec(f.n() + 1, window);
  engine.add_observer(rec);
  engine.run_until(window + multitree::worst_delay_bound(f.n(), f.d()) +
                   3 * f.d() + 4);
  Measured m{rec.worst_delay(1, f.n()), 0};
  for (const std::size_t b : metrics::max_occupancies(rec, 1, f.n())) {
    m.worst_buffer = std::max(m.worst_buffer, b);
  }
  return m;
}

}  // namespace

int main() {
  bench::banner("Theorem 2",
                "measured worst delay and buffer vs the h*d bound");

  util::Table table({"N", "d", "complete?", "h", "bound h*d",
                     "worst delay (greedy)", "worst delay (structured)",
                     "worst buffer", "within bound"});
  bool all_ok = true;
  for (const int d : {2, 3, 4}) {
    for (const sim::NodeKey n :
         {6, 14, 30, 62, 126, 12, 39, 120, 363, 20, 84, 340, 100, 500, 999}) {
      const int h = multitree::tree_height(n, d);
      const sim::Slot bound = multitree::worst_delay_bound(n, d);
      const auto greedy = measure(multitree::build_greedy(n, d));
      const auto structured = measure(multitree::build_structured(n, d));
      const bool ok = greedy.worst_delay <= bound &&
                      structured.worst_delay <= bound &&
                      greedy.worst_buffer <= static_cast<std::size_t>(bound);
      all_ok = all_ok && ok;
      table.add_row({util::cell(n), util::cell(d),
                     multitree::is_complete(n, d) ? "yes" : "no",
                     util::cell(h), util::cell(bound),
                     util::cell(greedy.worst_delay),
                     util::cell(structured.worst_delay),
                     util::cell(greedy.worst_buffer), ok ? "yes" : "NO"});
    }
  }
  table.print(std::cout);
  std::cout << "\nComplete trees (N = d + ... + d^h) sit exactly at the "
               "bound (start slot h*d - 1 = h*d elapsed slots); incomplete "
               "trees fall below it, often by several slots — the omitted "
               "simulation §2.3 alludes to.\n"
            << (all_ok ? "all measurements within Theorem 2's bound.\n"
                       : "BOUND VIOLATION above.\n");
  return all_ok ? 0 : 1;
}
