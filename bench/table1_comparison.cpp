// Table 1: multi-tree vs hypercube streaming — max delay, average delay,
// buffer size, and number of neighbors, measured by full simulation across
// a sweep of N, plus asymptotic-shape checks of every cell:
//
//   multi-tree:            O(d log N) / O(d log N) / O(d log N) / O(d)
//   hypercube (special N): O(log N)   / O(log N)   / O(1)       / O(log N)
//   hypercube (arbitrary): O(log^2(N/d)) / O(log(N/d)) / O(1) / O(log(N/d))
//
// plus two related-work rows at arbitrary N for context:
//   random-regular:        O(log N)   / O(log N)   / O(log N)   / O(d)
//   dynamic-trees:         O(d log N) / O(d log N) / O(d log N) / O(d)
#include <cmath>
#include <cstddef>
#include <iostream>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/core/session.hpp"
#include "src/run/sweep.hpp"
#include "src/util/table.hpp"

namespace {

using namespace streamcast;

// Every cell of the table is one simulated session; the full set runs as a
// single sweep on the parallel runner (results land in submission order, so
// the printed tables are independent of thread count). A cell is requested
// up front via `plan` and read back by its index after the sweep.
std::vector<core::SessionConfig> g_tasks;
std::vector<run::TaskResult> g_results;

// Cells are planned by canonical registry name (core::parse_scheme), so
// the bench exercises the same name surface the CLI and tooling use.
std::size_t plan(const char* scheme, sim::NodeKey n, int d) {
  g_tasks.push_back(core::SessionConfig{
      .scheme = core::parse_scheme(scheme), .n = n, .d = d});
  return g_tasks.size() - 1;
}

const core::QosReport& qos(std::size_t index) {
  return g_results[index].qos;
}

void add(util::Table& t, const core::QosReport& r, const char* label) {
  t.add_row({label, util::cell(r.n), util::cell(r.d),
             util::cell(r.worst_delay), util::cell(r.average_delay, 2),
             util::cell(r.max_buffer), util::cell(r.max_neighbors)});
}

}  // namespace

int main() {
  bench::banner("Table 1",
                "multi-tree vs hypercube streaming: measured QoS and "
                "asymptotic shape");

  util::Table table({"scheme", "N", "d", "max delay", "avg delay",
                     "buffer (pkts)", "neighbors"});
  const int d = 2;

  // Plan every cell, run them as one parallel sweep, then print.
  struct SpecialRow {
    std::size_t mt, hc;
  };
  struct ArbitraryRow {
    std::size_t mt, hc, grouped, rr, dt;
  };
  std::vector<SpecialRow> special;
  for (const sim::NodeKey n : {63, 255, 1023, 4095}) {  // special N = 2^k-1
    special.push_back({plan("multi-tree/greedy", n, d),
                       plan("hypercube", n, 1)});
  }
  std::vector<ArbitraryRow> arbitrary;
  for (const sim::NodeKey n : {100, 500, 2000}) {  // arbitrary N
    arbitrary.push_back({plan("multi-tree/greedy", n, d),
                         plan("hypercube", n, 1),
                         plan("hypercube/grouped", n, d),
                         plan("random-regular", n, d),
                         plan("dynamic-trees", n, d)});
  }
  g_results = run::run_sweep(g_tasks);
  run::require_all(g_results);

  for (const SpecialRow& row : special) {
    add(table, qos(row.mt), "multi-tree");
    add(table, qos(row.hc), "hypercube (special N)");
  }
  for (const ArbitraryRow& row : arbitrary) {
    add(table, qos(row.mt), "multi-tree");
    add(table, qos(row.hc), "hypercube (arbitrary)");
    add(table, qos(row.grouped), "hypercube (d groups)");
    add(table, qos(row.rr), "random-regular");
    add(table, qos(row.dt), "dynamic-trees");
  }
  table.print(std::cout);

  std::cout << "\nAsymptotic-shape checks (ratio to the claimed growth rate "
               "should be ~flat):\n";
  util::Table shape({"scheme / metric", "N", "measured", "claimed growth",
                     "ratio"});
  for (std::size_t i = 0; i < special.size(); ++i) {
    const core::QosReport& mt = qos(special[i].mt);
    const sim::NodeKey n = mt.n;
    const double lg = std::log2(static_cast<double>(n));
    shape.add_row({"multi-tree max delay", util::cell(n),
                   util::cell(mt.worst_delay), "d*log2(N)",
                   util::cell(static_cast<double>(mt.worst_delay) / (d * lg),
                              3)});
    const core::QosReport& hc = qos(special[i].hc);
    shape.add_row({"hypercube max delay (special)", util::cell(n),
                   util::cell(hc.worst_delay), "log2(N)",
                   util::cell(static_cast<double>(hc.worst_delay) / lg, 3)});
    shape.add_row({"hypercube buffer (special)", util::cell(n),
                   util::cell(hc.max_buffer), "O(1)",
                   util::cell(static_cast<double>(hc.max_buffer), 3)});
    shape.add_row({"hypercube neighbors (special)", util::cell(n),
                   util::cell(hc.max_neighbors), "log2(N)",
                   util::cell(static_cast<double>(hc.max_neighbors) / lg,
                              3)});
  }
  for (std::size_t i = 0; i < arbitrary.size(); ++i) {
    const core::QosReport& hc = qos(arbitrary[i].hc);
    const sim::NodeKey n = hc.n;
    const double lg = std::log2(static_cast<double>(n));
    shape.add_row({"hypercube max delay (arbitrary)", util::cell(n),
                   util::cell(hc.worst_delay), "log2(N)^2",
                   util::cell(static_cast<double>(hc.worst_delay) / (lg * lg),
                              3)});
    shape.add_row({"hypercube avg delay (arbitrary)", util::cell(n),
                   util::cell(hc.average_delay, 2), "log2(N)",
                   util::cell(hc.average_delay / lg, 3)});
    const core::QosReport& rr = qos(arbitrary[i].rr);
    shape.add_row({"random-regular max delay", util::cell(n),
                   util::cell(rr.worst_delay), "log2(N)",
                   util::cell(static_cast<double>(rr.worst_delay) / lg, 3)});
    const core::QosReport& dt = qos(arbitrary[i].dt);
    shape.add_row({"dynamic-trees max delay", util::cell(n),
                   util::cell(dt.worst_delay), "d*log2(N)",
                   util::cell(static_cast<double>(dt.worst_delay) / (d * lg),
                              3)});
  }
  shape.print(std::cout);

  std::cout << "\nReading (matches the paper's Table 1): the multi-tree "
               "scheme wins on worst-case delay for arbitrary N with O(d) "
               "neighbors but pays O(d log N) buffers; the hypercube keeps "
               "2-packet buffers at the cost of O(log N) neighbors and "
               "O(log^2 N) worst delay (O(log N) at special N). The "
               "related-work rows bracket the tradeoff: random-regular "
               "matches the hypercube's O(log N) delay shape with constant "
               "degree but only with high probability; dynamic-trees tracks "
               "the multi-tree envelope while additionally supporting "
               "incremental membership.\n";
  return 0;
}
