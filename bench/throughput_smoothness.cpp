// Throughput/smoothness frontier: recovery policy x startup policy x
// Gilbert–Elliott burstiness, on the chain overlay.
//
// Joshi–Kochman–Wornell (arXiv:1405.3697) frame streaming over erasures as
// a tradeoff between throughput (how much channel capacity the stream plus
// its redundancy consumes) and playback smoothness (how late playback must
// start, and how often it stalls, to ride out losses). This bench sweeps
// the three recovery policies of the registry — `nack` (feedback
// retransmission), `xor-parity` (fixed-rate FEC), `streaming-code`
// (Badr–Lui–Khisti delay-bounded burst code) — against the three startup
// policies (`fixed`, `progressive-ramp`, `loss-adaptive`) over GE channels
// of equal stationary loss but growing burst length, and reports each
// cell's position on the frontier:
//
//   throughput  = data / (data + retransmissions + parity)
//   smoothness  = stalls, stalled slots, undecodable window packets
//   delay       = the startup policy's average/max start slot
//
// Emits the frontier as JSON (argv[1], default throughput_smoothness.json)
// for the E36 figure. Exit is nonzero if the Badr–Lui–Khisti guarantee is
// violated: any streaming-code cell whose channel stayed inside the code's
// guaranteed region (max erasure run <= B, no guard-space collision) must
// play back with zero undecodable packets — and at least one cell of the
// grid must land in that region, so the guarantee is actually exercised.
//
// --smoke shrinks the grid (fewer burst levels, smaller chain) for the
// sanitized CI job.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/core/session.hpp"
#include "src/util/table.hpp"

namespace {

using namespace streamcast;

struct BurstLevel {
  const char* label;
  double p_enter;
  double p_recover;  // E[burst] = 1 / p_recover
};

struct Cell {
  std::string recovery;
  std::string startup;
  std::string burst;
  double expected_burst = 0;
  double throughput = 0;
  double overhead = 0;
  std::int64_t drops = 0;
  int stalls = 0;
  core::Slot stall_slots = 0;
  sim::PacketId undecodable = 0;
  double average_start = 0;
  core::Slot max_start = 0;
  core::Slot earliest_start = 0;
  std::int64_t max_erasure_run = 0;
  std::int64_t guard_collisions = 0;
  std::int64_t unrecoverable = 0;
  bool guaranteed_region = false;
};

void write_json(const std::string& path, const std::vector<Cell>& cells) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"throughput_smoothness\",\n  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    out << "    {\"recovery\": \"" << c.recovery
        << "\", \"startup\": \"" << c.startup << "\", \"burst\": \""
        << c.burst << "\", \"expected_burst\": " << c.expected_burst
        << ", \"throughput\": " << c.throughput
        << ", \"overhead\": " << c.overhead << ", \"drops\": " << c.drops
        << ", \"stalls\": " << c.stalls
        << ", \"stall_slots\": " << c.stall_slots
        << ", \"undecodable\": " << c.undecodable
        << ", \"average_start\": " << c.average_start
        << ", \"max_start\": " << c.max_start
        << ", \"earliest_start\": " << c.earliest_start
        << ", \"max_erasure_run\": " << c.max_erasure_run
        << ", \"guard_collisions\": " << c.guard_collisions
        << ", \"unrecoverable\": " << c.unrecoverable
        << ", \"guaranteed_region\": "
        << (c.guaranteed_region ? "true" : "false") << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner("throughput/smoothness frontier",
                "recovery policy x startup policy x GE burstiness "
                "(Joshi–Kochman–Wornell tradeoff, chain overlay)");

  bool smoke = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (!arg.empty() && arg[0] != '-') {
      out_path = arg;
    }
  }
  if (out_path.empty()) out_path = "throughput_smoothness.json";

  // The first level is mild (~0.3% stationary loss: isolated erasures far
  // apart, inside the streaming code's guaranteed region at B = 4, T = 12);
  // the rest hold stationary loss at ~2% (p_enter / (p_enter + p_recover))
  // with growing burst length, where guard-space collisions and runs
  // beyond B push the code out of its guarantee.
  const BurstLevel kBursts[] = {
      {"mild E[burst]=1.1", 0.0030, 0.9},
      {"E[burst]=1.0", 0.0204, 1.0},
      {"E[burst]=1.1", 0.0184, 0.9},
      {"E[burst]=2.0", 0.0102, 0.5},
      {"E[burst]=4.0", 0.0051, 0.25},
  };
  const char* kRecovery[] = {"nack", "xor-parity", "streaming-code"};
  const char* kStartup[] = {"fixed", "progressive-ramp", "loss-adaptive"};
  const int burst_levels = smoke ? 2 : 5;
  const sim::NodeKey n = smoke ? 8 : 16;

  util::Table table({"recovery", "startup", "burst", "thruput", "stalls",
                     "stall slots", "undec", "avg start", "max start",
                     "max run", "guard", "unrec"});
  std::vector<Cell> cells;
  bool ok = true;
  bool guaranteed_seen = false;

  for (int b = 0; b < burst_levels; ++b) {
    const BurstLevel& lvl = kBursts[b];
    for (const char* rec : kRecovery) {
      for (const char* start : kStartup) {
        core::SessionConfig cfg{
            .scheme = core::Scheme::kChain, .n = n, .d = 1};
        cfg.window = 64;
        cfg.loss.model = loss::ErasureKind::kGilbertElliott;
        cfg.loss.ge = {.p_enter = lvl.p_enter,
                       .p_recover = lvl.p_recover,
                       .loss_good = 0.0,
                       .loss_bad = 1.0};
        cfg.loss.seed = 0xf2011 + static_cast<std::uint64_t>(b);
        cfg.loss.recovery_policy = rec;
        cfg.loss.code = {.decode_delay = 12, .burst = 4};
        cfg.loss.max_drain = 4096;
        cfg.startup.policy = start;
        const core::LossRunResult r = core::StreamingSession(cfg).run_lossy();

        Cell c;
        c.recovery = rec;
        c.startup = start;
        c.burst = lvl.label;
        c.expected_burst = 1.0 / lvl.p_recover;
        c.overhead = r.loss.redundancy_overhead;
        c.throughput = 1.0 / (1.0 + r.loss.redundancy_overhead);
        c.drops = r.loss.drops;
        c.stalls = r.startup.stalls;
        c.stall_slots = r.startup.stall_slots;
        c.undecodable = r.startup.undecodable;
        c.average_start = r.startup.average_start;
        c.max_start = r.startup.max_start;
        c.earliest_start = r.startup.earliest_start;
        c.max_erasure_run = r.loss.max_erasure_run;
        c.guard_collisions = r.loss.guard_collisions;
        c.unrecoverable = r.loss.unrecoverable;

        if (c.recovery == "streaming-code") {
          c.guaranteed_region =
              c.max_erasure_run <= 4 && c.guard_collisions == 0;
          if (c.guaranteed_region) {
            guaranteed_seen = true;
            if (c.undecodable != 0) {
              std::cerr << "FAIL: streaming-code cell (" << c.burst << ", "
                        << c.startup << ") stayed inside the guaranteed "
                        << "region (max run " << c.max_erasure_run
                        << " <= B, no guard collision) but reported "
                        << c.undecodable << " undecodable packets\n";
              ok = false;
            }
          }
        }
        cells.push_back(c);

        table.add_row({c.recovery, c.startup, c.burst,
                       util::cell(c.throughput, 3), util::cell(c.stalls),
                       util::cell(c.stall_slots), util::cell(c.undecodable),
                       util::cell(c.average_start, 1),
                       util::cell(c.max_start), util::cell(c.max_erasure_run),
                       util::cell(c.guard_collisions),
                       util::cell(c.unrecoverable)});
      }
    }
  }
  table.print(std::cout);

  if (!guaranteed_seen) {
    std::cerr << "FAIL: no streaming-code cell landed in the code's "
                 "guaranteed region — the Badr–Lui–Khisti guarantee was "
                 "never exercised\n";
    ok = false;
  }

  write_json(out_path, cells);
  std::cout << "\nfrontier JSON: " << out_path << " (" << cells.size()
            << " cells)\n";
  std::cout
      << "\nReading the frontier: NACK buys throughput with feedback "
         "latency (stalls grow with burst length), XOR parity pays a fixed "
         "overhead but decodes only single losses per window, and the "
         "streaming code trades a constant parity rate for a hard decode "
         "deadline — inside its guaranteed region (every erasure run <= B "
         "with clean guard spaces) playback is perfectly smooth at the "
         "startup policy's chosen delay.\n";
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
