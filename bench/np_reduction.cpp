// Appendix NP-completeness experiment: the E4 Set Splitting -> Two
// Interior-Disjoint Tree reduction, exercised end to end. Random instances
// are decided three independent ways (set-splitting brute force, generic
// 2^(V-1) IDT solver on the reduced graph, structure-aware decision), and
// the unsplittable complete C(7,4) instance certifies the negative
// direction.
#include <chrono>
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/graph/idt_solver.hpp"
#include "src/graph/reduction.hpp"
#include "src/graph/set_splitting.hpp"
#include "src/util/prng.hpp"
#include "src/util/table.hpp"

int main() {
  using namespace streamcast;
  using namespace streamcast::graph;
  bench::banner("Appendix NP-completeness",
                "E4 Set Splitting <=> Two Interior-Disjoint Trees");

  util::Table table({"elements", "sets", "graph |V|", "splittable",
                     "generic IDT", "structural IDT", "agree"});
  util::Prng rng(99);
  int trials = 0;
  int agreements = 0;
  for (int elements = 4; elements <= 6; ++elements) {
    for (const int sets : {2, 5, 8, 12}) {
      const auto inst = random_instance(elements, sets, rng);
      const bool split = solve_set_splitting(inst).has_value();
      const ReducedInstance red = reduce_to_idt(inst);
      const bool generic =
          two_interior_disjoint_trees(red.graph, red.root).has_value();
      const bool structural = reduced_has_two_idt(red);
      const bool agree = split == generic && generic == structural;
      ++trials;
      agreements += agree;
      table.add_row({util::cell(elements), util::cell(sets),
                     util::cell(red.graph.size()), split ? "yes" : "no",
                     generic ? "yes" : "no", structural ? "yes" : "no",
                     agree ? "yes" : "NO"});
    }
  }
  table.print(std::cout);
  std::cout << "\nagreement: " << agreements << "/" << trials
            << " (all instances on <= 7 elements are splittable — a 4-set "
               "cannot hide inside a <= 3-element side).\n\n";

  // Negative direction: complete C(7,4) — every 2-coloring of 7 elements
  // has a monochromatic 4-set.
  SetSplittingInstance complete7;
  complete7.elements = 7;
  for (int a = 0; a < 7; ++a) {
    for (int b = a + 1; b < 7; ++b) {
      for (int c = b + 1; c < 7; ++c) {
        for (int e = c + 1; e < 7; ++e) complete7.sets.push_back({a, b, c, e});
      }
    }
  }
  const auto t0 = std::chrono::steady_clock::now();
  const bool split7 = solve_set_splitting(complete7).has_value();
  const ReducedInstance red7 = reduce_to_idt(complete7);
  const bool idt7 = reduced_has_two_idt(red7);
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  std::cout << "complete C(7,4) instance (35 sets, reduced graph of "
            << red7.graph.size() << " vertices): splittable = "
            << (split7 ? "yes" : "no")
            << ", two interior-disjoint trees = " << (idt7 ? "yes" : "no")
            << "  [" << us << " us]\n";
  std::cout << (split7 == idt7
                    ? "equivalence holds in the negative direction too.\n"
                    : "EQUIVALENCE VIOLATED.\n");
  return (agreements == trials && split7 == idt7 && !split7) ? 0 : 1;
}
