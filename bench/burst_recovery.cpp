// Burst-loss recovery: Gilbert–Elliott channels (mean burst length 1..8) at
// a fixed ~5% stationary loss rate, against the three recovery modes.
//
//   none — gaps stay open; measures how much of the stream a burst destroys.
//   nack — retransmission after a modeled NACK round trip; always converges
//          but pays latency per loss.
//   fec  — one XOR parity per window of 8 data packets; decodes a single
//          erasure per (link, window) for free, but bursts longer than one
//          packet per window defeat it.
//
// Exit is nonzero if a NACK run fails to reach a gap-free prefix at every
// receiver (FEC and none legitimately leave gaps — that is the point).
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/core/session.hpp"
#include "src/util/table.hpp"

int main() {
  using namespace streamcast;
  bench::banner("burst recovery",
                "Gilbert–Elliott burst length x recovery mode, multi-tree "
                "d=2, stationary loss ~5%");

  const double stationary = 0.05;
  const double bursts[] = {1.0, 2.0, 4.0, 8.0};
  const loss::RecoveryMode modes[] = {loss::RecoveryMode::kNone,
                                      loss::RecoveryMode::kNack,
                                      loss::RecoveryMode::kFec};

  util::Table table({"burst len", "mode", "drops", "retrans", "parity",
                     "fec decodes", "overhead", "stalls", "stall slots",
                     "undecodable", "gap-free"});
  std::vector<std::string> csv;
  csv.push_back(
      "mean_burst,mode,drops,retransmissions,parity,fec_decodes,overhead,"
      "stalls,stall_slots,undecodable,all_gap_free");
  bool ok = true;

  core::SessionConfig base{
      .scheme = core::parse_scheme("multi-tree/greedy"), .n = 63, .d = 2};
  const core::QosReport plain = core::StreamingSession(base).run();

  for (const double burst : bursts) {
    // Mean burst length L fixes p_recover = 1/L; the stationary loss rate
    // pi_bad = p_enter / (p_enter + p_recover) then fixes p_enter.
    const double p_recover = 1.0 / burst;
    const double p_enter = stationary * p_recover / (1.0 - stationary);
    for (const loss::RecoveryMode mode : modes) {
      core::SessionConfig cfg = base;
      cfg.loss.model = loss::ErasureKind::kGilbertElliott;
      cfg.loss.ge = {.p_enter = p_enter,
                     .p_recover = p_recover,
                     .loss_good = 0.0,
                     .loss_bad = 1.0};
      cfg.loss.seed = 0xb0057 + static_cast<std::uint64_t>(burst);
      cfg.loss.recovery = mode;
      cfg.loss.fec_window = 8;
      cfg.loss.playback_start = plain.worst_delay;
      // Without repair the drain can never finish; don't wait for it.
      if (mode == loss::RecoveryMode::kNone) cfg.loss.max_drain = 64;
      const core::LossRunResult r = core::StreamingSession(cfg).run_lossy();

      if (mode == loss::RecoveryMode::kNack && !r.loss.all_gap_free) {
        std::cerr << "FAIL: nack at burst length " << burst
                  << " left a receiver with a gap in its prefix\n";
        ok = false;
      }

      const char* mode_name = loss::recovery_mode_name(mode);
      table.add_row(
          {util::cell(burst, 0), mode_name, util::cell(r.loss.drops),
           util::cell(r.loss.retransmissions),
           util::cell(r.loss.parity_transmissions),
           util::cell(r.loss.fec_decodes),
           util::cell(r.loss.redundancy_overhead, 3),
           util::cell(r.loss.stalls), util::cell(r.loss.stall_slots),
           util::cell(r.loss.undecodable),
           r.loss.all_gap_free ? "yes" : "no"});
      csv.push_back(util::cell(burst, 0) + "," + mode_name + "," +
                    util::cell(r.loss.drops) + "," +
                    util::cell(r.loss.retransmissions) + "," +
                    util::cell(r.loss.parity_transmissions) + "," +
                    util::cell(r.loss.fec_decodes) + "," +
                    util::cell(r.loss.redundancy_overhead, 4) + "," +
                    util::cell(r.loss.stalls) + "," +
                    util::cell(r.loss.stall_slots) + "," +
                    util::cell(r.loss.undecodable) + "," +
                    (r.loss.all_gap_free ? "1" : "0"));
    }
  }
  table.print(std::cout);

  std::cout << "\ncsv:\n";
  for (const std::string& line : csv) std::cout << line << "\n";

  std::cout << "\nNACK always converges to a gap-free prefix regardless of "
               "burst length. FEC's single-parity windows repair scattered "
               "losses (burst 1) nearly for free but degrade as bursts "
               "concentrate multiple erasures into one window; with no "
               "recovery the undecodable column is the stream the bursts "
               "destroyed.\n";
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
