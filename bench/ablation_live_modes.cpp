// Ablation: the two live-streaming adaptations of §2.2.3 — source
// pre-buffering d packets (uniform +d shift, clean analysis) vs per-tree
// pipelining (smaller shift, inhomogeneous schedules). Full engine
// measurement of the delay penalty each mode pays over the pre-recorded
// reference.
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/metrics/delay.hpp"
#include "src/metrics/summary.hpp"
#include "src/multitree/analysis.hpp"
#include "src/multitree/greedy.hpp"
#include "src/multitree/protocol.hpp"
#include "src/net/topology.hpp"
#include "src/sim/engine.hpp"
#include "src/util/table.hpp"

namespace {

using namespace streamcast;

std::vector<sim::Slot> run(const multitree::Forest& f,
                           multitree::StreamMode mode) {
  net::UniformCluster topo(f.n(), f.d());
  multitree::MultiTreeProtocol proto(f, mode);
  sim::Engine engine(topo, proto);
  const sim::PacketId window = 2 * f.d() * (f.height() + 2);
  metrics::DelayRecorder rec(f.n() + 1, window);
  engine.add_observer(rec);
  engine.run_until(window + multitree::worst_delay_bound(f.n(), f.d()) +
                   3 * f.d() + 8);
  return rec.delays(1, f.n());
}

}  // namespace

int main() {
  bench::banner("Ablation: live modes (§2.2.3)",
                "delay penalty of pre-buffered vs pipelined live streaming");

  util::Table table({"N", "d", "mode", "worst", "mean", "penalty worst",
                     "penalty mean"});
  for (const int d : {2, 3, 5}) {
    for (const sim::NodeKey n : {40, 200, 1000}) {
      const multitree::Forest f = multitree::build_greedy(n, d);
      const auto pre = run(f, multitree::StreamMode::kPreRecorded);
      const auto buf = run(f, multitree::StreamMode::kLivePrebuffered);
      const auto pipe = run(f, multitree::StreamMode::kLivePipelined);
      const auto s_pre = metrics::summarize(pre);
      const auto s_buf = metrics::summarize(buf);
      const auto s_pipe = metrics::summarize(pipe);
      table.add_row({util::cell(n), util::cell(d), "pre-recorded",
                     util::cell(s_pre.max, 0), util::cell(s_pre.mean, 2), "-",
                     "-"});
      table.add_row({util::cell(n), util::cell(d), "live pre-buffered",
                     util::cell(s_buf.max, 0), util::cell(s_buf.mean, 2),
                     util::cell(s_buf.max - s_pre.max, 0),
                     util::cell(s_buf.mean - s_pre.mean, 2)});
      table.add_row({util::cell(n), util::cell(d), "live pipelined",
                     util::cell(s_pipe.max, 0), util::cell(s_pipe.mean, 2),
                     util::cell(s_pipe.max - s_pre.max, 0),
                     util::cell(s_pipe.mean - s_pre.mean, 2)});
    }
  }
  table.print(std::cout);

  std::cout
      << "\nReading: pre-buffering costs exactly d slots for every node — "
         "the paper's clean choice. Pipelining's penalty is node-dependent "
         "(0..d extra slots, smaller on average) because each tree's "
         "schedule starts as soon as its packets exist; the paper calls "
         "these inhomogeneous schedules \"not easy to analyze\", and this "
         "table is the analysis it skipped: the average saving over "
         "pre-buffering is real but under d/2 slots.\n";
  return 0;
}
