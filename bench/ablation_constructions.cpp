// Ablation: structured vs greedy tree construction (§2.2.1 vs §2.2.2).
//
// Both satisfy the same invariants and the same worst-case bound, but they
// place nodes differently, so the per-node delay *distribution* differs.
// This ablation quantifies the choice the paper leaves implicit.
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/metrics/summary.hpp"
#include "src/multitree/greedy.hpp"
#include "src/multitree/schedule.hpp"
#include "src/multitree/structured.hpp"
#include "src/util/table.hpp"

namespace {

using namespace streamcast;

metrics::Summary delays_of(const multitree::Forest& f) {
  const auto all = multitree::closed_form_delays(f);
  std::vector<double> v;
  v.reserve(static_cast<std::size_t>(f.n()));
  for (sim::NodeKey x = 1; x <= f.n(); ++x) {
    v.push_back(static_cast<double>(all[static_cast<std::size_t>(x)]));
  }
  return metrics::summarize(v);
}

}  // namespace

int main() {
  bench::banner("Ablation: structured vs greedy construction",
                "per-node playback-delay distribution");

  util::Table table({"N", "d", "construction", "mean", "p50", "p95", "max"});
  double mean_gap = 0;
  int cells = 0;
  for (const int d : {2, 3, 4}) {
    for (const sim::NodeKey n : {50, 200, 1000, 4000}) {
      const auto s = delays_of(multitree::build_structured(n, d));
      const auto g = delays_of(multitree::build_greedy(n, d));
      table.add_row({util::cell(n), util::cell(d), "structured",
                     util::cell(s.mean, 2), util::cell(s.p50, 0),
                     util::cell(s.p95, 0), util::cell(s.max, 0)});
      table.add_row({util::cell(n), util::cell(d), "greedy",
                     util::cell(g.mean, 2), util::cell(g.p50, 0),
                     util::cell(g.p95, 0), util::cell(g.max, 0)});
      mean_gap += (s.mean - g.mean);
      ++cells;
    }
  }
  table.print(std::cout);
  std::cout << "\nmean(structured) - mean(greedy), averaged over all cells: "
            << util::cell(mean_gap / cells, 3)
            << " slots.\nReading: identical worst-case behavior (same h*d "
               "staircase) and near-identical distributions — the greedy "
               "construction's parity rule fixes every node's per-tree "
               "receive residues, while the structured rotation scrambles "
               "them, but neither dominates. Pick by operational needs: "
               "greedy placements are locally computable from (id, N, d); "
               "structured tracks the paper's group-rotation proof more "
               "directly.\n";
  return 0;
}
