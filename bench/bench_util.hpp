// Shared helpers for the experiment binaries: every bench prints a header
// naming the paper artifact it regenerates, then one or more tables.
#pragma once

#include <iostream>
#include <string>

namespace streamcast::bench {

inline void banner(const std::string& artifact, const std::string& what) {
  std::cout << "==============================================================="
               "=================\n"
            << artifact << " — " << what << "\n"
            << "==============================================================="
               "=================\n\n";
}

}  // namespace streamcast::bench
