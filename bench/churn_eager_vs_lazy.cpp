// Appendix churn experiment (the paper's omitted simulation): maintenance
// cost of eager vs lazy addition/deletion under three synthetic workloads —
// alternating boundary ops (the paper's motivating worst case for eager),
// a balanced random mix, and a flash crowd. Cost = (peer, tree) position
// moves, the per-node hiccup proxy; the paper's per-op bound is d^2 + d.
//
// The "adaptive" rows run the same workloads on the Zhu-Hajek dynamic
// forest (scheme #8), which never relabels: its cost surfaces as
// reattach/promote-swap moves ("reseats" column) and rebalance moves, with
// the structural invariants re-checked from the public accessors.
#include <iostream>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/dyntree/forest.hpp"
#include "src/multitree/churn.hpp"
#include "src/multitree/validate.hpp"
#include "src/util/prng.hpp"
#include "src/util/table.hpp"

namespace {

using namespace streamcast;
using multitree::ChurnForest;
using multitree::ChurnPolicy;

struct Result {
  multitree::ChurnStats stats;
  bool valid = true;
};

/// Adaptive competitor outcome, mapped onto the shared table: "reseats" =
/// reattaches + promote swaps (the never-relabeling analogue of relabel
/// moves), "rebuild moves" = rebalance moves.
struct AdaptiveResult {
  std::int64_t ops = 0;
  std::int64_t reseats = 0;
  std::int64_t rebalance_moves = 0;
  bool valid = true;
};

/// Structural check over the public accessors: every live peer attached and
/// internal in exactly one tree, nobody over seat capacity except the
/// counted source-emergency overflow.
bool dyntree_valid(const dyntree::DynamicForest& f) {
  const int d = f.d();
  for (int k = 0; k < d; ++k) {
    for (sim::NodeKey key = 0; key < f.key_end(); ++key) {
      const bool alive = key == 0 || f.live(key);
      for (const sim::NodeKey child : f.children(k, key)) {
        if (!f.live(child) || f.parent(k, child) != key) return false;
      }
      if (!alive && !f.children(k, key).empty()) return false;
      if (key != 0 && alive) {
        const int cap = f.internal_tree(key) == k ? d : 0;
        if (static_cast<int>(f.children(k, key).size()) > cap) return false;
        if (f.parent(k, key) == sim::kNoNode) return false;
      }
    }
  }
  return true;
}

AdaptiveResult run_adaptive(sim::NodeKey n, int d, std::uint64_t seed,
                            int events, double p_arrive_first,
                            double p_arrive_second, bool alternate) {
  dyntree::DynamicForest f(d, seed);
  std::vector<sim::NodeKey> live;
  for (sim::NodeKey i = 0; i < n; ++i) live.push_back(f.join());
  f.rebalance();
  const auto base = f.stats();
  const std::int64_t base_balance = base.balance_moves;

  util::Prng rng(seed * 13 + 5);
  for (int e = 0; e < events; ++e) {
    if (alternate) {
      const sim::NodeKey p = f.join();
      f.leave(p);
    } else {
      const double p_arrive =
          e < events / 2 ? p_arrive_first : p_arrive_second;
      if (live.size() > 2 && !rng.chance(p_arrive)) {
        const auto i = static_cast<std::size_t>(rng.below(live.size()));
        f.leave(live[i]);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        live.push_back(f.join());
      }
    }
    f.rebalance();
  }

  AdaptiveResult r;
  const auto& s = f.stats();
  r.ops = alternate ? 2 * events : events;
  r.reseats = (s.reattach_moves - base.reattach_moves) +
              (s.promote_swaps - base.promote_swaps);
  r.rebalance_moves = s.balance_moves - base_balance;
  r.valid = dyntree_valid(f);
  return r;
}

Result alternating(ChurnPolicy policy, sim::NodeKey n, int d, int rounds) {
  ChurnForest cf(n, d, policy);
  for (int r = 0; r < rounds; ++r) {
    const auto p = cf.add();
    cf.remove(p);
  }
  return {cf.stats(), multitree::validate_forest(cf.forest()).ok};
}

Result random_mix(ChurnPolicy policy, sim::NodeKey n, int d, int events,
                  std::uint64_t seed) {
  util::Prng rng(seed);
  ChurnForest cf(n, d, policy);
  for (int e = 0; e < events; ++e) {
    if (cf.n() > 2 && rng.chance(0.5)) {
      const auto id =
          static_cast<sim::NodeKey>(1 + rng.below(
              static_cast<std::uint64_t>(cf.n())));
      cf.remove(cf.peer_at(id));
    } else {
      cf.add();
    }
  }
  return {cf.stats(), multitree::validate_forest(cf.forest()).ok};
}

Result flash_crowd(ChurnPolicy policy, sim::NodeKey n, int d, int events,
                   std::uint64_t seed) {
  util::Prng rng(seed);
  ChurnForest cf(n, d, policy);
  for (int e = 0; e < events; ++e) {
    const double p_arrive = e < events / 2 ? 0.85 : 0.15;
    if (cf.n() > 2 && !rng.chance(p_arrive)) {
      const auto id =
          static_cast<sim::NodeKey>(1 + rng.below(
              static_cast<std::uint64_t>(cf.n())));
      cf.remove(cf.peer_at(id));
    } else {
      cf.add();
    }
  }
  return {cf.stats(), multitree::validate_forest(cf.forest()).ok};
}

void report(util::Table& table, const char* workload, const char* policy,
            sim::NodeKey n, int d, const Result& r) {
  table.add_row(
      {workload, policy, util::cell(n), util::cell(d),
       util::cell(r.stats.operations), util::cell(r.stats.relabel_moves),
       util::cell(r.stats.rebuilds), util::cell(r.stats.rebuild_moves),
       util::cell(static_cast<double>(r.stats.total_moves()) /
                      static_cast<double>(r.stats.operations),
                  2),
       r.valid ? "ok" : "VIOLATED"});
}

void report_adaptive(util::Table& table, const char* workload, sim::NodeKey n,
                     int d, const AdaptiveResult& r) {
  table.add_row(
      {workload, "adaptive", util::cell(n), util::cell(d), util::cell(r.ops),
       util::cell(r.reseats), "-", util::cell(r.rebalance_moves),
       util::cell(static_cast<double>(r.reseats + r.rebalance_moves) /
                      static_cast<double>(r.ops),
                  2),
       r.valid ? "ok" : "VIOLATED"});
}

}  // namespace

int main() {
  bench::banner("Appendix churn (omitted simulation)",
                "eager vs lazy maintenance cost under three workloads");

  util::Table table({"workload", "policy", "N0", "d", "ops",
                     "relabels/reseats", "rebuilds", "rebuild moves",
                     "moves/op", "invariants"});
  for (const int d : {2, 3}) {
    for (const sim::NodeKey n : {50, 200, 1000}) {
      report(table, "alternating@boundary", "eager", n, d,
             alternating(ChurnPolicy::kEager, n, d, 100));
      report(table, "alternating@boundary", "lazy", n, d,
             alternating(ChurnPolicy::kLazy, n, d, 100));
      report_adaptive(table, "alternating@boundary", n, d,
                      run_adaptive(n, d, 7, 100, 0, 0, true));
      report(table, "random 50/50", "eager", n, d,
             random_mix(ChurnPolicy::kEager, n, d, 400, 7));
      report(table, "random 50/50", "lazy", n, d,
             random_mix(ChurnPolicy::kLazy, n, d, 400, 7));
      report_adaptive(table, "random 50/50", n, d,
                      run_adaptive(n, d, 7, 400, 0.5, 0.5, false));
      report(table, "flash crowd", "eager", n, d,
             flash_crowd(ChurnPolicy::kEager, n, d, 400, 11));
      report(table, "flash crowd", "lazy", n, d,
             flash_crowd(ChurnPolicy::kLazy, n, d, 400, 11));
      report_adaptive(table, "flash crowd", n, d,
                      run_adaptive(n, d, 11, 400, 0.85, 0.15, false));
    }
  }
  table.print(std::cout);

  std::cout
      << "\nReading: away from interior-count boundaries both policies pay "
         "only the paper's Step-1 relabel (d moves per interior deletion, 0 "
         "per addition). Eager restructures at every boundary crossing — "
         "alternating add/remove at a boundary is its worst case, which the "
         "lazy policy reduces to a single forced grow, exactly the paper's "
         "\"saving d^2+d swaps\" observation. Boundary restructurings are "
         "re-derivations of the greedy placement (DESIGN.md §5 documents why "
         "the paper's literal swap rule cannot preserve the congruence "
         "property), so their measured cost exceeds the paper's d^2 "
         "accounting while keeping every invariant machine-checked. The "
         "adaptive forest sidesteps the boundary problem entirely — no "
         "congruence property, no relabeling — so its per-op cost is flat "
         "across all three workloads, at the price of a weaker (structural "
         "rather than closed-form) delay bound; see DESIGN.md §12.\n";
  return 0;
}
