// Appendix churn experiment (the paper's omitted simulation): maintenance
// cost of eager vs lazy addition/deletion under three synthetic workloads —
// alternating boundary ops (the paper's motivating worst case for eager),
// a balanced random mix, and a flash crowd. Cost = (peer, tree) position
// moves, the per-node hiccup proxy; the paper's per-op bound is d^2 + d.
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/multitree/churn.hpp"
#include "src/multitree/validate.hpp"
#include "src/util/prng.hpp"
#include "src/util/table.hpp"

namespace {

using namespace streamcast;
using multitree::ChurnForest;
using multitree::ChurnPolicy;

struct Result {
  multitree::ChurnStats stats;
  bool valid = true;
};

Result alternating(ChurnPolicy policy, sim::NodeKey n, int d, int rounds) {
  ChurnForest cf(n, d, policy);
  for (int r = 0; r < rounds; ++r) {
    const auto p = cf.add();
    cf.remove(p);
  }
  return {cf.stats(), multitree::validate_forest(cf.forest()).ok};
}

Result random_mix(ChurnPolicy policy, sim::NodeKey n, int d, int events,
                  std::uint64_t seed) {
  util::Prng rng(seed);
  ChurnForest cf(n, d, policy);
  for (int e = 0; e < events; ++e) {
    if (cf.n() > 2 && rng.chance(0.5)) {
      const auto id =
          static_cast<sim::NodeKey>(1 + rng.below(
              static_cast<std::uint64_t>(cf.n())));
      cf.remove(cf.peer_at(id));
    } else {
      cf.add();
    }
  }
  return {cf.stats(), multitree::validate_forest(cf.forest()).ok};
}

Result flash_crowd(ChurnPolicy policy, sim::NodeKey n, int d, int events,
                   std::uint64_t seed) {
  util::Prng rng(seed);
  ChurnForest cf(n, d, policy);
  for (int e = 0; e < events; ++e) {
    const double p_arrive = e < events / 2 ? 0.85 : 0.15;
    if (cf.n() > 2 && !rng.chance(p_arrive)) {
      const auto id =
          static_cast<sim::NodeKey>(1 + rng.below(
              static_cast<std::uint64_t>(cf.n())));
      cf.remove(cf.peer_at(id));
    } else {
      cf.add();
    }
  }
  return {cf.stats(), multitree::validate_forest(cf.forest()).ok};
}

void report(util::Table& table, const char* workload, const char* policy,
            sim::NodeKey n, int d, const Result& r) {
  table.add_row(
      {workload, policy, util::cell(n), util::cell(d),
       util::cell(r.stats.operations), util::cell(r.stats.relabel_moves),
       util::cell(r.stats.rebuilds), util::cell(r.stats.rebuild_moves),
       util::cell(static_cast<double>(r.stats.total_moves()) /
                      static_cast<double>(r.stats.operations),
                  2),
       r.valid ? "ok" : "VIOLATED"});
}

}  // namespace

int main() {
  bench::banner("Appendix churn (omitted simulation)",
                "eager vs lazy maintenance cost under three workloads");

  util::Table table({"workload", "policy", "N0", "d", "ops", "relabels",
                     "rebuilds", "rebuild moves", "moves/op", "invariants"});
  for (const int d : {2, 3}) {
    for (const sim::NodeKey n : {50, 200, 1000}) {
      report(table, "alternating@boundary", "eager", n, d,
             alternating(ChurnPolicy::kEager, n, d, 100));
      report(table, "alternating@boundary", "lazy", n, d,
             alternating(ChurnPolicy::kLazy, n, d, 100));
      report(table, "random 50/50", "eager", n, d,
             random_mix(ChurnPolicy::kEager, n, d, 400, 7));
      report(table, "random 50/50", "lazy", n, d,
             random_mix(ChurnPolicy::kLazy, n, d, 400, 7));
      report(table, "flash crowd", "eager", n, d,
             flash_crowd(ChurnPolicy::kEager, n, d, 400, 11));
      report(table, "flash crowd", "lazy", n, d,
             flash_crowd(ChurnPolicy::kLazy, n, d, 400, 11));
    }
  }
  table.print(std::cout);

  std::cout
      << "\nReading: away from interior-count boundaries both policies pay "
         "only the paper's Step-1 relabel (d moves per interior deletion, 0 "
         "per addition). Eager restructures at every boundary crossing — "
         "alternating add/remove at a boundary is its worst case, which the "
         "lazy policy reduces to a single forced grow, exactly the paper's "
         "\"saving d^2+d swaps\" observation. Boundary restructurings are "
         "re-derivations of the greedy placement (DESIGN.md §5 documents why "
         "the paper's literal swap rule cannot preserve the congruence "
         "property), so their measured cost exceeds the paper's d^2 "
         "accounting while keeping every invariant machine-checked.\n";
  return 0;
}
