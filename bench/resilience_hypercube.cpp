// Resilience contrast, cube side: the §3 scheme has no per-packet
// redundancy — every packet's doubling pattern passes through every node —
// so crashed nodes shadow parts of every packet's broadcast. Measures
// packet coverage on a special-N cube under f random failures, against the
// multi-tree+MDC numbers from bench/resilience_mdc.
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/hypercube/analysis.hpp"
#include "src/hypercube/protocol.hpp"
#include "src/metrics/delay.hpp"
#include "src/multitree/greedy.hpp"
#include "src/multitree/resilience.hpp"
#include "src/net/topology.hpp"
#include "src/sim/engine.hpp"
#include "src/util/prng.hpp"
#include "src/util/table.hpp"

namespace {

using namespace streamcast;

struct CubeOutcome {
  double live_fully_served = 0;  // fraction of live nodes with every packet
  double mean_coverage = 0;      // mean fraction of packets received (live)
};

CubeOutcome run_cube(sim::NodeKey n, sim::NodeKey failures,
                     util::Prng& rng) {
  const sim::PacketId window = 3 * hypercube::worst_delay(n);
  net::UniformCluster topo(n, 1);
  hypercube::HypercubeProtocol proto({hypercube::decompose_chain(n)});
  const auto failed = multitree::random_failures(n, failures, rng);
  for (sim::NodeKey v = 1; v <= n; ++v) {
    if (failed[static_cast<std::size_t>(v)]) proto.fail_node(v);
  }
  sim::Engine engine(topo, proto);
  metrics::DelayRecorder rec(n + 1, window);
  engine.add_observer(rec);
  engine.run_until(window + 2 * hypercube::worst_delay(n) + 8);

  sim::NodeKey live = 0;
  sim::NodeKey full = 0;
  double coverage = 0;
  for (sim::NodeKey v = 1; v <= n; ++v) {
    if (failed[static_cast<std::size_t>(v)]) continue;
    ++live;
    sim::PacketId got = 0;
    for (sim::PacketId j = 0; j < window; ++j) {
      if (rec.arrival(v, j) != metrics::kNeverArrived) ++got;
    }
    if (got == window) ++full;
    coverage += static_cast<double>(got) / static_cast<double>(window);
  }
  return CubeOutcome{static_cast<double>(full) / live, coverage / live};
}

}  // namespace

int main() {
  bench::banner("Resilience, hypercube side",
                "packet coverage on a failed cube vs multi-tree+MDC");

  const int trials = 10;
  util::Table table({"N", "failed", "scheme", "fully served %",
                     "mean coverage %"});
  util::Prng rng(7117);
  const sim::NodeKey n = 127;  // k = 7 cube
  const multitree::Forest forest = multitree::build_greedy(n, 3);
  for (const sim::NodeKey failures : {1, 3, 6, 13}) {
    double cube_full = 0;
    double cube_cov = 0;
    double mt_full = 0;
    double mt_cov = 0;
    for (int t = 0; t < trials; ++t) {
      const auto cube = run_cube(n, failures, rng);
      cube_full += cube.live_fully_served;
      cube_cov += cube.mean_coverage;
      const auto failed = multitree::random_failures(n, failures, rng);
      const auto s = multitree::summarize_resilience(
          multitree::descriptions_received(forest, failed), failed, 3);
      mt_full += static_cast<double>(s.fully_served) /
                 static_cast<double>(s.live);
      mt_cov += s.mean_quality;
    }
    table.add_row({util::cell(n), util::cell(failures), "hypercube",
                   util::cell(100.0 * cube_full / trials, 1),
                   util::cell(100.0 * cube_cov / trials, 1)});
    table.add_row({util::cell(n), util::cell(failures), "multi-tree+MDC d=3",
                   util::cell(100.0 * mt_full / trials, 1),
                   util::cell(100.0 * mt_cov / trials, 1)});
  }
  table.print(std::cout);

  std::cout
      << "\nReading: the cube loses whole-packet delivery fast — each crash "
         "shadows a region of every packet's doubling pattern, and with no "
         "second description there is nothing to degrade to. The multi-tree "
         "keeps most viewers at full quality and almost everyone at >= 2/3. "
         "Buffer-optimal pipelines buy their O(1) space with fate-sharing: "
         "one more axis of the paper's tradeoff.\n";
  return 0;
}
