// §2.3 tree-degree optimization: F(d) = d * log_d[N(1-1/d)] and the exact
// integer bound h(d)*d across N — the optimum is always degree 2 or 3, with
// degree 3 winning asymptotically and degree 2 "reasonable in practice".
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/multitree/analysis.hpp"
#include "src/util/table.hpp"

int main() {
  using namespace streamcast;
  bench::banner("§2.3 degree optimization",
                "F(d) and the exact bound h(d)*d over N; argmin is 2 or 3");

  util::Table table({"N", "F(2)", "F(3)", "F(4)", "F(5)", "h*d @2", "h*d @3",
                     "h*d @4", "h*d @5", "optimal d"});
  for (const sim::NodeKey n :
       {10, 30, 100, 300, 1000, 3000, 10'000, 100'000, 1'000'000}) {
    std::vector<std::string> row{util::cell(n)};
    for (int d = 2; d <= 5; ++d) {
      row.push_back(util::cell(multitree::delay_objective(n, d), 1));
    }
    for (int d = 2; d <= 5; ++d) {
      row.push_back(util::cell(multitree::worst_delay_bound(n, d)));
    }
    row.push_back(util::cell(multitree::optimal_degree(n)));
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  // Dense verification of the paper's claim over a wide range.
  int non_23 = 0;
  for (sim::NodeKey n = 2; n <= 100'000; ++n) {
    const int best = multitree::optimal_degree(n);
    if (best != 2 && best != 3) ++non_23;
  }
  std::cout << "\nexhaustive check N = 2..100000: optimal degree outside "
               "{2,3} at "
            << non_23 << " values of N (paper: always 0).\n";

  int three_beats_two = 0;
  for (const sim::NodeKey n : {1'000, 10'000, 100'000, 1'000'000}) {
    if (multitree::delay_objective(n, 3) < multitree::delay_objective(n, 2)) {
      ++three_beats_two;
    }
  }
  std::cout << "F(3) < F(2) at " << three_beats_two
            << "/4 large N (paper: degree 3 asymptotically optimal).\n";
  return non_23 == 0 ? 0 : 1;
}
