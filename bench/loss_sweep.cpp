// Loss-rate sweep: every scheme of the paper, plus the related-work
// random-regular and dynamic-trees overlays, over Bernoulli erasure links
// with NACK repair, at loss rates {0, 1%, 5%, 10%}.
//
// The paper's delay/buffer results assume reliable links; this bench shows
// what each schedule costs to keep correct when links erase packets — repair
// traffic (redundancy overhead), playback stalls past the lossless playback
// delay, and the extra drain time until every receiver's prefix is gap-free.
//
// Exit is nonzero if (a) any recovery run leaves a receiver with a gap in
// its prefix, or (b) the p = 0 run differs in ANY QosReport field from the
// plain lossless engine — the bit-identical regression that pins the
// recovery decorator to zero cost on reliable links.
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/core/session.hpp"
#include "src/util/table.hpp"

int main() {
  using namespace streamcast;
  bench::banner("loss sweep",
                "Bernoulli erasures x scheme, NACK recovery "
                "(rates 0 / 0.01 / 0.05 / 0.1)");

  // Rows name schemes by their canonical registry names; core::parse_scheme
  // resolves them, so a typo fails at startup instead of benchmarking the
  // wrong scheme.
  const struct {
    const char* label;
    const char* scheme;
    sim::NodeKey n;
    int d;
  } schemes[] = {
      {"multi-tree d=2", "multi-tree/greedy", 63, 2},
      {"multi-tree d=3", "multi-tree/greedy", 63, 3},
      {"hypercube", "hypercube", 63, 1},
      {"single-tree d=2", "single-tree", 63, 2},
      {"random-regular d=2", "random-regular", 63, 2},
      {"random-regular d=3", "random-regular", 63, 3},
      {"dynamic-trees d=2", "dynamic-trees", 63, 2},
      {"dynamic-trees d=3", "dynamic-trees", 63, 3},
  };
  const double rates[] = {0.0, 0.01, 0.05, 0.1};

  util::Table table({"scheme", "p", "worst delay", "avg delay", "buffer",
                     "drops", "retrans", "overhead", "stalls", "stall slots",
                     "drain"});
  std::vector<std::string> csv;
  csv.push_back(
      "scheme,p,worst_delay,avg_delay,max_buffer,drops,retransmissions,"
      "overhead,stalls,stall_slots,drain_slots");
  bool ok = true;

  for (const auto& s : schemes) {
    core::SessionConfig cfg{
        .scheme = core::parse_scheme(s.scheme), .n = s.n, .d = s.d};
    const core::QosReport plain = core::StreamingSession(cfg).run();

    for (const double p : rates) {
      cfg.loss.model = loss::ErasureKind::kBernoulli;
      cfg.loss.rate = p;
      cfg.loss.seed = 0x10557 + static_cast<std::uint64_t>(p * 1000);
      // Stalls are measured against the lossless playback delay: a zero
      // count means loss cost no extra startup delay at all.
      cfg.loss.playback_start = plain.worst_delay;
      const core::LossRunResult r = core::StreamingSession(cfg).run_lossy();

      if (!r.loss.all_gap_free) {
        std::cerr << "FAIL: " << s.label << " at p=" << p
                  << " left a receiver with a gap in its prefix\n";
        ok = false;
      }
      if (p == 0.0) {
        const core::QosReport& q = r.qos;
        if (q.worst_delay != plain.worst_delay ||
            q.average_delay != plain.average_delay ||
            q.max_buffer != plain.max_buffer ||
            q.average_buffer != plain.average_buffer ||
            q.max_neighbors != plain.max_neighbors ||
            q.average_neighbors != plain.average_neighbors ||
            q.transmissions != plain.transmissions || q.drops != 0 ||
            q.retransmissions != 0) {
          std::cerr << "FAIL: " << s.label
                    << " at p=0 is not bit-identical to the lossless run\n"
                    << "  lossless: " << plain.summary() << "\n"
                    << "  p=0 run:  " << q.summary() << "\n";
          ok = false;
        }
      }

      table.add_row({s.label, util::cell(p, 2), util::cell(r.qos.worst_delay),
                     util::cell(r.qos.average_delay, 1),
                     util::cell(r.qos.max_buffer), util::cell(r.loss.drops),
                     util::cell(r.loss.retransmissions),
                     util::cell(r.loss.redundancy_overhead, 3),
                     util::cell(r.loss.stalls), util::cell(r.loss.stall_slots),
                     util::cell(r.loss.drain_slots)});
      csv.push_back(std::string(s.label) + "," + util::cell(p, 2) + "," +
                    util::cell(r.qos.worst_delay) + "," +
                    util::cell(r.qos.average_delay, 2) + "," +
                    util::cell(r.qos.max_buffer) + "," +
                    util::cell(r.loss.drops) + "," +
                    util::cell(r.loss.retransmissions) + "," +
                    util::cell(r.loss.redundancy_overhead, 4) + "," +
                    util::cell(r.loss.stalls) + "," +
                    util::cell(r.loss.stall_slots) + "," +
                    util::cell(r.loss.drain_slots));
    }
  }
  table.print(std::cout);

  std::cout << "\ncsv:\n";
  for (const std::string& line : csv) std::cout << line << "\n";

  std::cout << "\nAt p = 0 every scheme is bit-identical to the lossless "
               "engine (checked above). As p grows, repair traffic rides on "
               "one extra send/recv slot of provisioned headroom; stalls "
               "count the playback hiccups past the lossless playback delay "
               "a(i) — a receiver with zero stalls pays loss no delay at "
               "all.\n";
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
