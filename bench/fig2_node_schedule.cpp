// Figure 2: receiving and sending schedules of node id 6 in the N = 15,
// d = 3 forest, for both constructions — regenerated from an actual engine
// run (not from the closed form), so the printed slots are the simulated
// transmission slots.
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/multitree/greedy.hpp"
#include "src/multitree/protocol.hpp"
#include "src/multitree/structured.hpp"
#include "src/net/topology.hpp"
#include "src/sim/engine.hpp"
#include "src/sim/trace.hpp"
#include "src/util/table.hpp"

namespace {

using namespace streamcast;

class TraceObserver final : public sim::DeliveryObserver {
 public:
  explicit TraceObserver(sim::Trace& trace) : trace_(trace) {}
  void on_delivery(const sim::Delivery& d) override { trace_.record(d); }

 private:
  sim::Trace& trace_;
};

void show(const char* name, const multitree::Forest& forest,
          sim::NodeKey node) {
  multitree::MultiTreeProtocol proto(forest);
  net::UniformCluster topo(forest.n(), forest.d());
  sim::Engine engine(topo, proto);
  sim::Trace trace;
  TraceObserver observer(trace);
  engine.add_observer(observer);
  engine.run_until(12);  // one steady-state period past the warm-up

  std::cout << name << " construction — node id " << node << ":\n";
  util::Table in({"slot", "receives packet", "from", "tree"});
  for (const auto& d : trace.received_by(node)) {
    in.add_row({util::cell(d.received), util::cell(d.tx.packet),
                d.tx.from == 0 ? std::string("S")
                               : std::to_string(d.tx.from),
                "T_" + std::to_string(d.tx.tag)});
  }
  in.print(std::cout);
  util::Table out({"slot", "sends packet", "to", "tree"});
  for (const auto& d : trace.sent_by(node)) {
    out.add_row({util::cell(d.sent), util::cell(d.tx.packet),
                 util::cell(d.tx.to), "T_" + std::to_string(d.tx.tag)});
  }
  out.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  bench::banner("Figure 2",
                "receive/send schedule of node id 6 (N = 15, d = 3)");
  show("Greedy", multitree::build_greedy(15, 3), 6);
  show("Structured", multitree::build_structured(15, 3), 6);
  std::cout << "Node 6 is interior in T_1 only; it receives one packet per "
               "tree every d = 3 slots (distinct residues mod 3 — the "
               "collision-freedom of §2.2) and forwards only within T_1.\n";
  return 0;
}
