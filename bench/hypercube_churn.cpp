// §4 future work, quantified: churn disruption of the hypercube chain vs
// the multi-tree forest. One membership change re-derives the chain's tail
// — cheap between powers of two, a full re-seating at the 2^k cliffs —
// which is exactly why an O(log N)-delay / O(1)-buffer scheme that also
// handles churn gracefully is left open by the paper.
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/hypercube/dynamics.hpp"
#include "src/multitree/churn.hpp"
#include "src/util/prng.hpp"
#include "src/util/table.hpp"

namespace {

using namespace streamcast;

hypercube::HypercubeChurnStats run_cube(sim::NodeKey n0, int events,
                                        std::uint64_t seed) {
  util::Prng rng(seed);
  hypercube::HypercubeMembership m(n0);
  for (int e = 0; e < events; ++e) {
    if (m.n() > 2 && rng.chance(0.5)) {
      const auto rank = static_cast<sim::NodeKey>(
          1 + rng.below(static_cast<std::uint64_t>(m.n())));
      m.remove(m.peer_at(rank));
    } else {
      m.add();
    }
  }
  return m.stats();
}

multitree::ChurnStats run_tree(sim::NodeKey n0, int d, int events,
                               std::uint64_t seed) {
  util::Prng rng(seed);
  multitree::ChurnForest cf(n0, d, multitree::ChurnPolicy::kLazy);
  for (int e = 0; e < events; ++e) {
    if (cf.n() > 2 && rng.chance(0.5)) {
      const auto id = static_cast<sim::NodeKey>(
          1 + rng.below(static_cast<std::uint64_t>(cf.n())));
      cf.remove(cf.peer_at(id));
    } else {
      cf.add();
    }
  }
  return cf.stats();
}

}  // namespace

int main() {
  bench::banner("§4 open problem: churn disruption",
                "hypercube chain vs multi-tree forest under identical churn");

  const int events = 400;
  util::Table table(
      {"N0", "scheme", "events", "moves", "moves/event", "cliff reseats"});
  for (const sim::NodeKey n0 : {24, 100, 520, 1040}) {
    const auto cube = run_cube(n0, events, 2026);
    table.add_row({util::cell(n0), "hypercube chain", util::cell(events),
                   util::cell(cube.total_moves()),
                   util::cell(static_cast<double>(cube.total_moves()) /
                                  events,
                              2),
                   util::cell(cube.full_reseats)});
    const auto tree = run_tree(n0, 2, events, 2026);
    table.add_row({util::cell(n0), "multi-tree (d=2, lazy)",
                   util::cell(events), util::cell(tree.total_moves()),
                   util::cell(static_cast<double>(tree.total_moves()) /
                                  events,
                              2),
                   "-"});
  }
  table.print(std::cout);

  std::cout << "\nPer-event role changes across +1 joins (the 2^k cliffs):\n";
  util::Table cliffs({"N -> N+1", "roles changed", "note"});
  for (const sim::NodeKey n : {20, 29, 30, 31, 62, 63, 126, 127, 1022, 1023}) {
    const auto changed = hypercube::roles_changed(n, n + 1);
    cliffs.add_row({util::cell(n) + " -> " + util::cell(n + 1),
                    util::cell(changed),
                    changed == n ? "FULL re-seat (2^k cliff)" : "tail only"});
  }
  cliffs.print(std::cout);

  std::cout
      << "\nReading: between powers of two the chain's prefix cubes are "
         "stable and churn touches only the O(log N)-sized tail — "
         "comparable to the multi-tree's lazy maintenance. At every 2^k "
         "crossing the leading cube's dimension changes and *all* N nodes "
         "are re-seated; no amount of laziness hides that cliff, which is "
         "why the paper leaves churn-tolerant O(log N)/O(1)/O(log N) "
         "streaming as an open problem (§4).\n";
  return 0;
}
