// Theorem 1: end-to-end worst-case playback delay of the super-tree
// composition is on the order of T_c*log_{D-1}(K) + T_i*d(h-1). Measured by
// simulating the full multi-cluster system over sweeps of K, T_c and D.
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/metrics/delay.hpp"
#include "src/multitree/analysis.hpp"
#include "src/net/topology.hpp"
#include "src/sim/engine.hpp"
#include "src/supertree/analysis.hpp"
#include "src/supertree/protocol.hpp"
#include "src/util/table.hpp"

namespace {

using namespace streamcast;

sim::Slot measure(int clusters, sim::NodeKey per_cluster, int big_d, int d,
                  sim::Slot t_c) {
  std::vector<net::ClusteredTopology::ClusterSpec> specs(
      static_cast<std::size_t>(clusters),
      net::ClusteredTopology::ClusterSpec{per_cluster});
  net::ClusteredTopology topo(specs, big_d, d, t_c);
  supertree::SuperTreeProtocol proto(topo);
  sim::Engine engine(topo, proto);
  const sim::PacketId window = 3 * multitree::worst_delay_bound(per_cluster, d);
  metrics::DelayRecorder delays(topo.size(), window);
  engine.add_observer(delays);
  engine.run_until(window +
                   supertree::structural_bound(clusters, big_d, t_c, 1, d,
                                               per_cluster) +
                   8);
  sim::Slot worst = 0;
  for (int c = 0; c < clusters; ++c) {
    for (sim::NodeKey x = 1; x <= per_cluster; ++x) {
      worst = std::max(worst, *delays.playback_delay(topo.receiver(c, x)));
    }
  }
  return worst;
}

}  // namespace

int main() {
  bench::banner("Theorem 1",
                "end-to-end delay vs T_c*log_{D-1}(K) + T_i*d(h-1)");

  const sim::NodeKey per_cluster = 30;
  const int d = 2;
  const int h = multitree::tree_height(per_cluster, d);

  util::Table table({"K", "D", "T_c", "backbone depth", "measured worst",
                     "Theorem 1 form", "structural bound", "within bound"});
  bool all_ok = true;
  for (const int big_d : {3, 4}) {
    for (const int k : {2, 4, 9, 16, 27, 64}) {
      for (const sim::Slot t_c : {5, 20, 50}) {
        const sim::Slot measured = measure(k, per_cluster, big_d, d, t_c);
        const sim::Slot bound = supertree::structural_bound(
            k, big_d, t_c, 1, d, per_cluster);
        const bool ok = measured <= bound;
        all_ok = all_ok && ok;
        table.add_row(
            {util::cell(k), util::cell(big_d), util::cell(t_c),
             util::cell(supertree::backbone_depth(k, big_d)),
             util::cell(measured),
             util::cell(supertree::theorem1_bound(k, big_d, t_c, 1, d, h), 1),
             util::cell(bound), ok ? "yes" : "NO"});
      }
    }
  }
  table.print(std::cout);

  std::cout << "\nShape: the measured delay tracks depth*T_c plus the "
               "intra-cluster d*h term — linear in T_c at fixed K and "
               "staircase-logarithmic in K at fixed T_c, as Theorem 1 "
               "states.\n"
            << (all_ok ? "all runs within the structural bound.\n"
                       : "BOUND VIOLATION above.\n");
  return all_ok ? 0 : 1;
}
