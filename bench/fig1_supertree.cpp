// Figure 1: cluster construction with source S, D = 3, d = 4 — the
// super-tree τ over K = 9 clusters, each with super nodes S_i and S'_i.
#include <functional>
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/supertree/backbone.hpp"
#include "src/util/ascii_tree.hpp"
#include "src/util/table.hpp"

int main() {
  using namespace streamcast;
  bench::banner("Figure 1", "super-tree over K = 9 clusters, D = 3, d = 4");

  const int k = 9;
  const int big_d = 3;
  const supertree::Backbone bb = supertree::build_backbone(k, big_d);

  // Vertices: 0 = S, 1..K = S_i. (Each S_i also feeds its cluster's S'_i,
  // drawn inline in the label.)
  std::vector<int> parent(static_cast<std::size_t>(k) + 1, 0);
  parent[0] = -1;
  for (int c = 0; c < k; ++c) {
    parent[static_cast<std::size_t>(c) + 1] =
        bb.parent[static_cast<std::size_t>(c)] + 1;  // -1 -> 0 (= S)
  }
  const auto label = [&](int v) -> std::string {
    if (v == 0) return "S";
    return "S_" + std::to_string(v) + " -> S'_" + std::to_string(v) +
           " (cluster " + std::to_string(v) + ", intra d=4 forest)";
  };
  std::cout << util::render_tree(parent, label) << '\n';

  util::Table table({"cluster", "backbone parent", "hops from S"});
  for (int c = 0; c < k; ++c) {
    const int p = bb.parent[static_cast<std::size_t>(c)];
    table.add_row({"S_" + std::to_string(c + 1),
                   p < 0 ? std::string("S") : "S_" + std::to_string(p + 1),
                   util::cell(bb.depth[static_cast<std::size_t>(c)])});
  }
  table.print(std::cout);
  std::cout << "\nS has degree D = 3; every other super node takes at most "
               "D-1 = 2 backbone children plus its local root S'_i.\n";
  return 0;
}
