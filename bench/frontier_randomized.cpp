// Deterministic vs randomized vs dynamic overlays on the paper's axes:
// the 2009 constructions buy their delay/buffer guarantees with global
// coordination (exact trees, exact schedules); the follow-up literature
// (Kim-Srikant 1308.6807 random regular digraphs, Zhu-Hajek 1308.1971
// dynamic trees) gets within a constant of the same frontier with local or
// randomized rules. This figure puts all three families on one table —
// measured worst/average delay and buffer per (N, d), randomized schemes
// replicated over 3 construction seeds (min-max spread shown) — plus each
// scheme's registered audit envelope, so the cost of decentralization is
// read directly against the deterministic optimum and against its own
// provisioned bound.
//
// All cells run as one sweep on the deterministic parallel runner; output
// is byte-identical at any thread count.
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <iterator>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/core/session.hpp"
#include "src/run/sweep.hpp"
#include "src/scheme/registry.hpp"
#include "src/util/table.hpp"

namespace {

using namespace streamcast;
using core::Scheme;
using core::SessionConfig;

constexpr std::uint64_t kSeeds[] = {1, 2, 3};

struct Family {
  Scheme scheme;
  const char* kind;
  bool seeded;  // replicate over kSeeds and report the spread
};

std::string spread(const std::vector<sim::Slot>& v) {
  const auto [lo, hi] = std::minmax_element(v.begin(), v.end());
  if (*lo == *hi) return util::cell(*lo);
  return util::cell(*lo) + ".." + util::cell(*hi);
}

}  // namespace

int main() {
  bench::banner(
      "Randomized/dynamic overlays vs the deterministic constructions",
      "worst & avg delay, buffer, and audit envelope per (N, d); seeded "
      "schemes over 3 construction seeds (min..max)");

  const Family families[] = {
      {Scheme::kMultiTreeStructured, "deterministic", false},
      {Scheme::kMultiTreeGreedy, "deterministic", false},
      {Scheme::kRandomRegular, "randomized", true},
      {Scheme::kDynamicTrees, "dynamic", true},
  };

  std::vector<SessionConfig> tasks;
  for (const sim::NodeKey n : {64, 128, 256}) {
    for (const int d : {2, 3}) {
      for (const Family& f : families) {
        for (const std::uint64_t seed : kSeeds) {
          SessionConfig cfg{.scheme = f.scheme, .n = n, .d = d};
          cfg.seed = seed;
          tasks.push_back(cfg);
          if (!f.seeded) break;  // one cell; the overlay ignores the seed
        }
      }
    }
  }
  const auto results = run::run_sweep(tasks);
  run::require_all(results);

  util::Table table({"N", "d", "scheme", "kind", "worst delay", "avg delay",
                     "max buffer", "envelope"});
  std::size_t next = 0;
  for (const sim::NodeKey n : {64, 128, 256}) {
    for (const int d : {2, 3}) {
      for (const Family& f : families) {
        std::vector<sim::Slot> delays;
        std::vector<sim::Slot> buffers;
        double avg = 0;
        const std::size_t reps = f.seeded ? std::size(kSeeds) : 1;
        for (std::size_t s = 0; s < reps; ++s, ++next) {
          delays.push_back(results[next].qos.worst_delay);
          buffers.push_back(
              static_cast<sim::Slot>(results[next].qos.max_buffer));
          avg += results[next].qos.average_delay;
        }
        const SessionConfig probe{.scheme = f.scheme, .n = n, .d = d};
        const sim::Slot env = scheme::descriptor(f.scheme)
                                  .envelope(probe)
                                  .delay;
        table.add_row({util::cell(n), util::cell(d),
                       core::scheme_name(f.scheme), f.kind, spread(delays),
                       util::cell(avg / static_cast<double>(reps), 1),
                       spread(buffers), util::cell(env)});
      }
    }
  }
  table.print(std::cout);

  std::cout
      << "\nReading: the randomized digraph tracks ~log2(N) worst delay — "
         "within a small constant of the deterministic multi-tree optimum — "
         "with no construction coordination at all, paying one extra unit "
         "of upload provisioning (the rate-1 boundary, DESIGN.md §12). The "
         "dynamic forest lands on the same frontier as the static trees it "
         "approximates while being built entirely from local join rules, "
         "and its seed spread stays within a couple of slots: the "
         "logarithmic frontier of the 2009 constructions survives "
         "decentralization, which is the follow-up literature's point.\n";
  return 0;
}
