#!/usr/bin/env bash
# Runs clang-tidy over every first-party translation unit using the exported
# compile database. Skips gracefully (exit 0 with a notice) when clang-tidy
# is not installed, so local builds in minimal containers are not blocked;
# CI passes --require so a missing binary fails the job instead of silently
# skipping it.
#
# Usage: tools/run_clang_tidy.sh [--require] [build-dir]   (default: build)
#   --require     error (exit 2) when clang-tidy is not installed
#   CLANG_TIDY    env var naming the binary (default: clang-tidy), so CI can
#                 pin a version, e.g. CLANG_TIDY=clang-tidy-14
set -u

repo="$(cd "$(dirname "$0")/.." && pwd)"
require=0
if [ "${1:-}" = "--require" ]; then
  require=1
  shift
fi
build_dir="${1:-$repo/build}"
tidy="${CLANG_TIDY:-clang-tidy}"

if ! command -v "$tidy" >/dev/null 2>&1; then
  if [ "$require" -eq 1 ]; then
    echo "run_clang_tidy: $tidy not installed but --require was given" >&2
    exit 2
  fi
  echo "run_clang_tidy: $tidy not installed; skipping (CI runs it)"
  exit 0
fi
if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "run_clang_tidy: $build_dir/compile_commands.json missing." >&2
  echo "Configure first: cmake --preset default" >&2
  exit 2
fi

# First-party TUs only: the database also contains GoogleTest sources when
# vendored, and tidy has no business re-linting the toolchain.
mapfile -t files < <(
  python3 - "$build_dir/compile_commands.json" <<'EOF'
import json, sys
for entry in json.load(open(sys.argv[1])):
    f = entry["file"]
    if any(s in f for s in ("/src/", "/bench/", "/tests/", "/examples/")):
        print(f)
EOF
)

if [ "${#files[@]}" -eq 0 ]; then
  echo "run_clang_tidy: no first-party files in compile database" >&2
  exit 2
fi

echo "run_clang_tidy: checking ${#files[@]} files with $tidy"
status=0
runner="run-clang-tidy${tidy#clang-tidy}"
if command -v "$runner" >/dev/null 2>&1; then
  "$runner" -quiet -p "$build_dir" -clang-tidy-binary "$tidy" \
    "${files[@]}" || status=$?
else
  for f in "${files[@]}"; do
    "$tidy" -quiet -p "$build_dir" "$f" || status=$?
  done
fi

if [ "$status" -ne 0 ]; then
  echo "run_clang_tidy: findings detected (exit $status)" >&2
  exit 1
fi
echo "run_clang_tidy: clean"
