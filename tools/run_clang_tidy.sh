#!/usr/bin/env bash
# Runs clang-tidy over every first-party translation unit using the exported
# compile database. Skips gracefully (exit 0 with a notice) when clang-tidy
# is not installed, so local builds in minimal containers are not blocked;
# CI installs clang-tidy and treats findings as failures.
#
# Usage: tools/run_clang_tidy.sh [build-dir]   (default: build)
set -u

repo="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo/build}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy: clang-tidy not installed; skipping (CI runs it)"
  exit 0
fi
if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "run_clang_tidy: $build_dir/compile_commands.json missing." >&2
  echo "Configure first: cmake --preset default" >&2
  exit 2
fi

# First-party TUs only: the database also contains GoogleTest sources when
# vendored, and tidy has no business re-linting the toolchain.
mapfile -t files < <(
  python3 - "$build_dir/compile_commands.json" <<'EOF'
import json, sys
for entry in json.load(open(sys.argv[1])):
    f = entry["file"]
    if any(s in f for s in ("/src/", "/bench/", "/tests/", "/examples/")):
        print(f)
EOF
)

if [ "${#files[@]}" -eq 0 ]; then
  echo "run_clang_tidy: no first-party files in compile database" >&2
  exit 2
fi

echo "run_clang_tidy: checking ${#files[@]} files"
status=0
if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -quiet -p "$build_dir" "${files[@]}" || status=$?
else
  for f in "${files[@]}"; do
    clang-tidy -quiet -p "$build_dir" "$f" || status=$?
  done
fi

if [ "$status" -ne 0 ]; then
  echo "run_clang_tidy: findings detected (exit $status)" >&2
  exit 1
fi
echo "run_clang_tidy: clean"
