#!/usr/bin/env python3
"""Compare a BENCH_engine.json / BENCH_scale.json run against the baseline.

Usage:
    tools/bench_compare.py CURRENT.json [BASELINE.json]
                           [--tolerance 0.10] [--update]

Fails (exit 1) when the current run regresses:
  * ``byte_identical`` is false — the parallel runner broke determinism
    (engine bench), or the closed-form replay stopped matching the per-slot
    pump (scale bench);
  * serial ``slots_per_sec`` fell more than ``--tolerance`` below baseline;
  * parallel ``slots_per_sec`` or ``speedup`` fell more than the tolerance
    below baseline, compared only when both runs used the same thread
    count (a 1-core shard is not a regression relative to an 8-core one).

Scale benches (a ``curve`` array, from bench/perf_scale): the gate checks
``byte_identical`` and ``within_budget``, then compares replay nodes/sec at
every N the two curves share.

Single-thread baselines: a baseline recorded with ``hardware_threads: 1``
cannot say anything about parallel speedup (its own speedup is ~1.0 by
construction). When the *current* run also comes from a 1-thread host the
comparison still runs with a loud warning (like vs like); when the current
host has more than one hardware thread the stale baseline is a hard
failure — pass ``--refresh-single-thread-baseline`` to adopt the current
multi-core run as the new baseline instead of failing (the CI perf job
does this, self-healing a baseline captured on a 1-core container). Any
``warnings`` array embedded in the baseline JSON is echoed either way.

Scheme filters: perf_sweep emits the canonical scheme names its grid
covered as a ``schemes`` array (it accepts ``--schemes=a,b`` to restrict
the grid). Throughput ratios are only compared when both runs covered the
same scheme set; a baseline predating the array is treated as the full
grid. ``--schemes`` here asserts what the current run was filtered to.

``--update`` rewrites the baseline with the current run instead of
comparing, for intentional re-baselining after a hardware or engine
change.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import shutil
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "BENCH_engine.json"


def load(path: pathlib.Path) -> dict:
    try:
        with path.open() as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"bench_compare: cannot read {path}: {err}")


def check_ratio(label: str, current: float, baseline: float,
                tolerance: float) -> list[str]:
    if baseline <= 0:
        return []
    ratio = current / baseline
    verdict = "OK" if ratio >= 1.0 - tolerance else "REGRESSION"
    print(f"  {label:28s} {current:14.1f} vs {baseline:14.1f} "
          f"({ratio:6.2%}) {verdict}")
    if verdict == "REGRESSION":
        return [f"{label}: {current:.1f} < {baseline:.1f} "
                f"- {tolerance:.0%} tolerance"]
    return []


def check_single_thread_baseline(current: dict, baseline: dict,
                                 baseline_path: pathlib.Path) -> list[str]:
    """1-thread-baseline policy: warning on a 1-thread host, hard failure
    on a multi-core one (the baseline's ~1.0x speedup would rubber-stamp
    any parallel regression)."""
    for note in baseline.get("warnings", []):
        print(f"  baseline warning: {note}")
    if baseline.get("hardware_threads") != 1:
        return []
    cur_threads = current.get("hardware_threads", 1)
    if cur_threads > 1:
        return [f"baseline {baseline_path.name} was recorded on a 1-thread "
                f"host but this host has {cur_threads} hardware threads; "
                f"its ~1.0x speedup cannot gate multi-core scaling. "
                f"Re-baseline with --update, or pass "
                f"--refresh-single-thread-baseline to adopt this run."]
    print("  " + "!" * 66)
    print(f"  !! baseline {baseline_path.name} was recorded on a "
          f"1-thread host.")
    print("  !! Its parallel speedup (~1.0x) says nothing about "
          "multi-core scaling;")
    print("  !! re-baseline with --update on a multi-core host before "
          "trusting it.")
    print("  " + "!" * 66)
    return []


def compare_scale(current: dict, baseline: dict, tolerance: float,
                  failures: list[str]) -> None:
    if not current.get("within_budget", False):
        failures.append("scale run exceeded its declared memory budget")
    base_points = {p["n"]: p for p in baseline.get("curve", [])}
    for point in current.get("curve", []):
        base = base_points.get(point["n"])
        if base is None:
            print(f"  n={point['n']:>9}: no baseline point, skipped")
            continue
        failures.extend(check_ratio(
            f"replay nodes/sec @ n={point['n']}",
            point["replay_nodes_per_sec"],
            base["replay_nodes_per_sec"],
            tolerance,
        ))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", type=pathlib.Path)
    parser.add_argument("baseline", type=pathlib.Path, nargs="?",
                        default=DEFAULT_BASELINE)
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed fractional slowdown (default 0.10)")
    parser.add_argument("--update", action="store_true",
                        help="overwrite the baseline with the current run")
    parser.add_argument("--refresh-single-thread-baseline",
                        action="store_true",
                        help="when the baseline was recorded on a 1-thread "
                             "host and this host is multi-core, adopt the "
                             "current run as the new baseline and exit 0 "
                             "instead of failing")
    parser.add_argument("--schemes",
                        help="comma-separated canonical scheme names the "
                             "current run must have covered (validated "
                             "against its \"schemes\" array)")
    args = parser.parse_args()

    current = load(args.current)

    if args.update:
        shutil.copyfile(args.current, args.baseline)
        print(f"bench_compare: baseline {args.baseline} updated")
        return 0

    baseline = load(args.baseline)
    failures: list[str] = []

    print(f"bench_compare: {args.current} vs {args.baseline} "
          f"(tolerance {args.tolerance:.0%})")
    stale = check_single_thread_baseline(current, baseline, args.baseline)
    if stale:
        if args.refresh_single_thread_baseline:
            shutil.copyfile(args.current, args.baseline)
            print(f"bench_compare: 1-thread baseline {args.baseline} "
                  f"refreshed with this multi-core run "
                  f"(hardware_threads: {current.get('hardware_threads')})")
            return 0
        failures += stale

    if "curve" in current or "curve" in baseline:
        if ("curve" in current) != ("curve" in baseline):
            failures.append("scale curve present in only one of the two "
                            "files; compare like with like")
        else:
            if not current.get("byte_identical", False):
                failures.append("closed-form replay does not byte-match the "
                                "per-slot pump")
            compare_scale(current, baseline, args.tolerance, failures)
        if failures:
            print("bench_compare: FAIL")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print("bench_compare: PASS")
        return 0

    if not current.get("byte_identical", False):
        failures.append("parallel reports are not byte-identical to serial")

    cur_schemes = current.get("schemes")
    if args.schemes is not None:
        want = [name for name in args.schemes.split(",") if name]
        if cur_schemes is None:
            failures.append("current run has no \"schemes\" array to "
                            "validate the filter against")
        else:
            # Schemes the registry gained since the expectation was written
            # are a warning, not a failure: a freshly registered scheme
            # joining the full grid must not hard-fail the perf gate before
            # anyone has had a chance to re-baseline. Missing expected
            # schemes still fail.
            missing = sorted(set(want) - set(cur_schemes))
            extra = sorted(set(cur_schemes) - set(want))
            if missing:
                failures.append(f"scheme filter mismatch: run is missing "
                                f"{missing} (covered {sorted(cur_schemes)})")
            elif extra:
                print(f"  WARNING: run covered schemes beyond the expected "
                      f"set: {extra} (newly registered?); update the "
                      f"--schemes list and re-baseline with --update")

    # A baseline written before the array existed covered the full grid;
    # comparing throughput is only meaningful when both runs covered the
    # same grid, so a filtered current run against it is also skipped.
    base_schemes = baseline.get("schemes")
    grids_differ = (cur_schemes is not None and base_schemes is not None
                    and sorted(cur_schemes) != sorted(base_schemes))
    filtered_vs_full = current.get("filtered", False) and base_schemes is None
    if grids_differ or filtered_vs_full:
        detail = (f"{sorted(cur_schemes)} vs baseline "
                  f"{sorted(base_schemes)}" if grids_differ
                  else "current run is scheme-filtered, baseline is the "
                       "full grid")
        print(f"  throughput comparison skipped: {detail}")
        if grids_differ and set(cur_schemes) > set(base_schemes):
            new = sorted(set(cur_schemes) - set(base_schemes))
            print(f"  WARNING: baseline predates scheme(s) {new}; the "
                  f"throughput gate is inactive until the baseline is "
                  f"refreshed with --update")
        if failures:
            print("bench_compare: FAIL")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print("bench_compare: PASS (determinism only)")
        return 0

    failures += check_ratio(
        "serial slots/sec",
        current["serial"]["slots_per_sec"],
        baseline["serial"]["slots_per_sec"],
        args.tolerance,
    )
    failures += check_ratio(
        "serial deliveries/sec",
        current["serial"]["deliveries_per_sec"],
        baseline["serial"]["deliveries_per_sec"],
        args.tolerance,
    )

    cur_threads = current["parallel"]["threads"]
    base_threads = baseline["parallel"]["threads"]
    if cur_threads == base_threads:
        failures += check_ratio(
            "parallel slots/sec",
            current["parallel"]["slots_per_sec"],
            baseline["parallel"]["slots_per_sec"],
            args.tolerance,
        )
        failures += check_ratio(
            "speedup",
            current["speedup"],
            baseline["speedup"],
            args.tolerance,
        )
    else:
        print(f"  parallel metrics skipped: thread counts differ "
              f"({cur_threads} vs baseline {base_threads})")

    if failures:
        print("bench_compare: FAIL")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("bench_compare: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
