#!/usr/bin/env python3
"""Determinism lint: fail CI on nondeterminism sneaking into simulation code.

The repo's experiments must reproduce bit-for-bit across runs and platforms
(DESIGN.md §3, EXPERIMENTS.md); every run is seeded through util::Prng. This
lint enforces the three ways that property historically rots:

  rng        — std::random_device, rand()/srand(), or any std <random> engine
               (std::mt19937 & friends have platform-dependent distributions;
               the repo ships util::Prng instead).
  wallclock  — wall-clock reads (system_clock, time(), gettimeofday,
               localtime, CLOCK_REALTIME). Monotonic steady_clock is allowed:
               benches may *measure* durations, they may not let the date
               into results.
  unordered-iteration — range-for over a std::unordered_{map,set} variable
               declared in the same file. Hash iteration order is
               implementation-defined; iterating it in a simulation or
               metrics path silently reorders tie-breaks. Keyed lookups are
               fine; iteration must use an ordered container or a sort.
  raw-thread — std::thread construction. Raw threads detach from the sweep
               runner's join/exception discipline; a thread left unjoined
               at scope exit terminates the process, and one joined ad hoc
               reintroduces completion-order dependence. Spawn workers as
               std::jthread (or go through run::parallel_for), which joins
               deterministically on scope exit.
               (std::thread::hardware_concurrency() is fine — it is a
               query, not a spawn.)
  sweep-capture — a default-by-reference [&] lambda on a run::parallel_for
               or run::run_sweep call line. Capturing everything by
               reference from sweep workers is how shared mutable state
               sneaks across threads; sweep bodies must name their
               captures so each one is auditable.
  scheme-dispatch — a `case Scheme::` arm outside src/scheme/. Scheme
               dispatch is centralized in the scheme registry
               (src/scheme/registry.*); a switch over the enum anywhere
               else recreates the per-call-site dispatch the registry
               replaced and silently skips schemes added later. Iterate
               scheme::all() or consult descriptor(s) capabilities
               instead.
  overlay-seed — a util::Prng constructed from a numeric literal inside a
               randomized-overlay scheme (src/rrd, src/dyntree; the rule is
               scoped to those directories via RULE_ONLY_DIRS). Overlay
               randomness must flow from SessionConfig::seed so that a
               report stays a pure function of its config and the
               differential harness's seed-determinism checks mean
               something; a hard-coded seed silently disconnects the
               config knob. Thread the caller's seed (ultimately
               config.seed) into every Prng instead.

Suppress a deliberate use with a same-line comment:  // lint: allow(<rule>)

Usage: tools/lint_determinism.py [dir ...]   (default: src tests bench)
Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

SOURCE_SUFFIXES = {".cpp", ".hpp", ".h", ".cc", ".cxx"}
DEFAULT_DIRS = ["src", "tests", "bench"]

RULES = {
    "rng": [
        re.compile(r"std::random_device"),
        re.compile(r"(?<![\w:])s?rand\s*\("),
        re.compile(
            r"std::(mt19937(_64)?|minstd_rand0?|default_random_engine|"
            r"ranlux\w+|knuth_b)\b"
        ),
    ],
    "wallclock": [
        re.compile(r"system_clock"),
        re.compile(r"(?<![\w:])time\s*\(\s*(0|NULL|nullptr)?\s*\)"),
        re.compile(r"\bgettimeofday\s*\("),
        re.compile(r"\b(localtime|gmtime|ctime)\s*\("),
        re.compile(r"CLOCK_REALTIME"),
    ],
    # Negative lookahead: std::thread::hardware_concurrency() and other
    # static queries are allowed; constructing std::thread is not.
    "raw-thread": [
        re.compile(r"std::thread\b(?!::)"),
    ],
    # A default [&] capture feeding the sweep runner: every capture in a
    # worker body must be named (see run/sweep.hpp).
    "sweep-capture": [
        re.compile(r"(parallel_for|run_sweep)\s*\(.*\[\s*&\s*\]"),
        re.compile(r"\[\s*&\s*\].*\b(parallel_for|run_sweep)\s*\("),
    ],
    # Scheme dispatch lives in src/scheme/ (exempted below) and nowhere
    # else; see scheme/registry.hpp.
    "scheme-dispatch": [
        re.compile(r"case\s+(streamcast::)?(core::)?Scheme::"),
    ],
    # A Prng born from a literal (decimal or hex) rather than a threaded
    # seed parameter. Only enforced inside the randomized-overlay schemes
    # (RULE_ONLY_DIRS below).
    "overlay-seed": [
        re.compile(r"Prng\s+\w+\s*[({]\s*(0[xX][0-9a-fA-F]+|\d+)\s*[)}]"),
        re.compile(r"Prng\s*[({]\s*(0[xX][0-9a-fA-F]+|\d+)\s*[)}]"),
        re.compile(r"\bprng_\s*[({]\s*(0[xX][0-9a-fA-F]+|\d+)\s*[)}]"),
    ],
}

# Rules that only apply outside a specific directory: src/scheme/ is the
# one place allowed to switch over the Scheme enum.
RULE_EXEMPT_DIRS = {
    "scheme-dispatch": [Path("src") / "scheme"],
}

# Rules that only apply INSIDE specific directories. The randomized-overlay
# schemes must draw every bit of randomness from SessionConfig::seed;
# elsewhere (tests, benches) literal seeds are the point.
RULE_ONLY_DIRS = {
    "overlay-seed": [Path("src") / "rrd", Path("src") / "dyntree"],
}

ALLOW = re.compile(r"lint:\s*allow\(([a-z-]+)\)")

UNORDERED_DECL = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;{}()]*>\s+(\w+)\s*[;{=]"
)
RANGE_FOR = re.compile(r"for\s*\(.*:\s*&?(\w+(?:_|\b))\s*\)")


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literals, preserving newlines so
    line numbers survive. A lint: allow() marker is checked against the raw
    line, so removing comments here is safe."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2
        elif c in "\"'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                elif text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def lint_file(path: Path) -> list[tuple[Path, int, str, str]]:
    raw_lines = path.read_text(encoding="utf-8").splitlines()
    code_lines = strip_comments_and_strings(
        path.read_text(encoding="utf-8")
    ).splitlines()
    findings = []

    repo = Path(__file__).resolve().parent.parent
    exempt_rules = {
        rule
        for rule, dirs in RULE_EXEMPT_DIRS.items()
        if any(d in path.parents or d == path.parent for d in
               ((repo / d) for d in dirs))
    }
    # Directory-scoped rules: skip them everywhere outside their dirs.
    exempt_rules |= {
        rule
        for rule, dirs in RULE_ONLY_DIRS.items()
        if not any(d in path.parents or d == path.parent for d in
                   ((repo / d) for d in dirs))
    }

    def allowed(lineno: int, rule: str) -> bool:
        m = ALLOW.search(raw_lines[lineno - 1])
        return bool(m) and m.group(1) == rule

    for lineno, line in enumerate(code_lines, start=1):
        for rule, patterns in RULES.items():
            if rule in exempt_rules:
                continue
            if any(p.search(line) for p in patterns) and not allowed(
                lineno, rule
            ):
                findings.append(
                    (path, lineno, rule, raw_lines[lineno - 1].strip())
                )

    unordered_vars = {
        m.group(1) for line in code_lines for m in UNORDERED_DECL.finditer(line)
    }
    if unordered_vars:
        for lineno, line in enumerate(code_lines, start=1):
            m = RANGE_FOR.search(line)
            if (
                m
                and m.group(1) in unordered_vars
                and not allowed(lineno, "unordered-iteration")
            ):
                findings.append(
                    (
                        path,
                        lineno,
                        "unordered-iteration",
                        raw_lines[lineno - 1].strip(),
                    )
                )
    return findings


def main(argv: list[str]) -> int:
    roots = argv[1:] or DEFAULT_DIRS
    repo = Path(__file__).resolve().parent.parent
    files = []
    for root in roots:
        base = Path(root) if Path(root).exists() else repo / root
        if base.is_file():
            # Explicit file: lint it as-is (the lint fixture runner feeds
            # single violating files to prove what each engine catches).
            files.append(base)
            continue
        if not base.is_dir():
            print(f"lint_determinism: no such directory: {root}",
                  file=sys.stderr)
            return 2
        files.extend(
            p
            for p in sorted(base.rglob("*"))
            if p.suffix in SOURCE_SUFFIXES
            # Deliberately-violating golden fixtures are linted only when
            # named explicitly (tests/lint_fixtures/run_fixture_tests.py).
            and ("lint_fixtures" not in p.parts
                 or "lint_fixtures" in base.parts)
        )

    findings = []
    for f in files:
        findings.extend(lint_file(f))

    for path, lineno, rule, snippet in findings:
        rel = path.relative_to(repo)
        print(f"{rel}:{lineno}: [{rule}] {snippet}")

    if findings:
        print(
            f"lint_determinism: {len(findings)} finding(s) in "
            f"{len(files)} files",
            file=sys.stderr,
        )
        return 1
    print(f"lint_determinism: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
