#!/usr/bin/env python3
"""AST-grounded semantic lint + module-layer DAG check (DESIGN.md §13).

tools/lint_determinism.py matches source *text*, so a type alias defeats it:
`using Rng = std::mt19937; Rng rng;` never spells the banned token on the
use site, and a range-for over a member whose unordered type lives in a
header two includes away never matches the same-file declaration regex.
This lint closes those holes by looking at what names *mean*:

  rng        — a declaration whose CANONICAL type is a std RNG engine
               (std::mt19937 is an alias for mersenne_twister_engine<...>;
               resolving to the canonical spelling means user aliases,
               `auto`, and member typedefs cannot hide it).
  unordered-iteration — a range-for whose range expression's canonical type
               is std::unordered_{map,set,multimap,multiset}, wherever the
               declaration lives (other file, alias, member typedef).
  sweep-capture — a default-by-reference capture `[&]`/`[&, ...]` anywhere
               inside the argument list of a run::parallel_for or
               run::run_sweep call, across line breaks (the regex lint only
               sees same-line captures).
  layer-dag  — an #include edge that climbs the module-layer DAG declared
               in tools/layers.toml: module A may include module B only if
               A == B or B's rank is strictly lower. Same-rank modules are
               mutually off limits; a src/ module absent from layers.toml
               is itself a finding.
  hot-path-alloc — a direct heap allocation in a file tagged as engine hot
               path (a comment containing `streamcast: hot-path`): any
               `new` expression or `std::vector<` spelling. Hot-path
               containers live on the per-engine util::Arena
               (util::ArenaVector); cold-path members that allocate once at
               construction carry a suppression. Uniquely for this rule the
               suppression may sit on the line ABOVE the declaration
               (long member declarations cannot fit an 80-column trailing
               comment).
  policy-dispatch — a `case Recovery...::` arm or a switch over a
               RecoveryMode expression outside src/policy/: strategy
               dispatch was extracted behind the policy registry
               (src/policy/registry.hpp), and a re-inlined switch is a
               site every future strategy silently misses. Callers route
               through policy::recovery_policy(name) instead.

Engines (--engine auto|clang|builtin, default auto):

  clang    — libclang (python `clang.cindex`): real canonical types from a
             real parse. CI pins and installs it; see .github/workflows.
  builtin  — no dependencies: a whole-tree alias/typedef table resolved to
             canonical type names, plus paren-balanced scanning for
             multi-line sweep captures. Strictly stronger than the regex
             lint on these rules, but an approximation of the clang
             engine; `auto` picks clang when importable and prints a
             visible warning when it has to fall back.

The layer-dag and hot-path-alloc rules are textual and run under both
engines.

Suppress a deliberate use with a same-line comment:  // lint: allow(<rule>)

Usage: tools/lint_ast.py [dir|file ...] [--layers tools/layers.toml]
                         [--engine auto|clang|builtin]
Exit status: 0 clean, 1 findings, 2 usage/configuration error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from lint_determinism import ALLOW, strip_comments_and_strings  # noqa: E402

try:
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - Python < 3.11
    tomllib = None

REPO = Path(__file__).resolve().parent.parent
SOURCE_SUFFIXES = {".cpp", ".hpp", ".h", ".cc", ".cxx"}
DEFAULT_DIRS = ["src", "tests", "bench"]

# The std <random> engine names (all alias templates except random_device)
# and the class templates they canonicalize to. Both spellings are banned:
# the builtin engine resolves aliases down to whichever name the chain ends
# at, the clang engine sees only the canonical template.
RNG_ALIASES = {
    "std::mt19937", "std::mt19937_64", "std::minstd_rand", "std::minstd_rand0",
    "std::default_random_engine", "std::knuth_b", "std::ranlux24",
    "std::ranlux48", "std::ranlux24_base", "std::ranlux48_base",
    "std::random_device",
}
RNG_CANONICAL = re.compile(
    r"\bstd::(mersenne_twister_engine|linear_congruential_engine|"
    r"subtract_with_carry_engine|discard_block_engine|"
    r"shuffle_order_engine|random_device)\b"
)
UNORDERED = re.compile(r"\bstd::unordered_(map|set|multimap|multiset)\b")

Finding = tuple[Path, int, str, str]


def relpath(path: Path) -> str:
    try:
        return str(path.resolve().relative_to(REPO))
    except ValueError:
        return str(path)


class Source:
    """One parsed file: raw lines for reporting/suppression, stripped lines
    (comments and strings blanked) for matching."""

    def __init__(self, path: Path):
        self.path = path
        text = path.read_text(encoding="utf-8")
        self.raw_lines = text.splitlines()
        self.code = strip_comments_and_strings(text)
        self.code_lines = self.code.splitlines()

    def allowed(self, lineno: int, rule: str) -> bool:
        if lineno < 1 or lineno > len(self.raw_lines):
            return False
        m = ALLOW.search(self.raw_lines[lineno - 1])
        return bool(m) and m.group(1) == rule

    def snippet(self, lineno: int) -> str:
        if lineno < 1 or lineno > len(self.raw_lines):
            return ""
        return self.raw_lines[lineno - 1].strip()


# --------------------------------------------------------------------------
# layer-dag (textual; both engines)
# --------------------------------------------------------------------------

INCLUDE_SRC = re.compile(r'^\s*#\s*include\s+"src/([^"]+)"')


def load_layers(layers_path: Path):
    if tomllib is None:
        raise RuntimeError("tomllib unavailable; cannot check layer DAG")
    with open(layers_path, "rb") as fh:
        data = tomllib.load(fh)
    rank = {}
    for level, group in enumerate(data.get("ranks", [])):
        for module in group:
            rank[module] = level
    overrides = dict(data.get("overrides", {}))
    return rank, overrides


def module_of(rel_to_src: str, overrides: dict[str, str]) -> str:
    """Module of a path expressed relative to a src/ root, e.g.
    'core/config.hpp' -> the override 'config', 'sim/engine.cpp' -> 'sim'."""
    if rel_to_src in overrides:
        return overrides[rel_to_src]
    return rel_to_src.split("/", 1)[0]


def src_relative(path: Path) -> str | None:
    """Path relative to the innermost src/ component, None if not under
    one (tests and benches are above the DAG and exempt)."""
    parts = path.resolve().parts
    for i in range(len(parts) - 1, 0, -1):
        if parts[i - 1] == "src":
            return "/".join(parts[i:])
    return None


def check_layers(src: Source, rank, overrides) -> list[Finding]:
    rel = src_relative(src.path)
    if rel is None:
        return []
    me = module_of(rel, overrides)
    findings: list[Finding] = []
    if me not in rank:
        findings.append(
            (src.path, 1, "layer-dag",
             f"module '{me}' is not declared in layers.toml")
        )
        return findings
    # Raw lines: the include path is a string literal, which the
    # comment/string stripper would blank out.
    for lineno, line in enumerate(src.raw_lines, start=1):
        m = INCLUDE_SRC.match(line)
        if not m:
            continue
        target = module_of(m.group(1), overrides)
        if target == me:
            continue
        if target not in rank:
            if not src.allowed(lineno, "layer-dag"):
                findings.append(
                    (src.path, lineno, "layer-dag",
                     f"include of undeclared module '{target}'")
                )
            continue
        if rank[target] >= rank[me] and not src.allowed(lineno, "layer-dag"):
            findings.append(
                (src.path, lineno, "layer-dag",
                 f"'{me}' (rank {rank[me]}) must not include '{target}' "
                 f"(rank {rank[target]}): edges go strictly down the DAG")
            )
    return findings


# --------------------------------------------------------------------------
# hot-path-alloc (textual; both engines)
# --------------------------------------------------------------------------

HOT_PATH_TAG = re.compile(r"streamcast:\s*hot-path")
HOT_ALLOC = re.compile(r"\bnew\b|\bstd::vector\s*<")


def check_hot_path_alloc(src: Source) -> list[Finding]:
    """In files carrying the hot-path tag, every `new` expression and every
    `std::vector<` spelling needs an explicit allow — the hot path
    allocates through the engine arena (util::ArenaVector), and anything
    else must be visibly declared cold."""
    if not any(HOT_PATH_TAG.search(line) for line in src.raw_lines):
        return []
    findings: list[Finding] = []
    for lineno, line in enumerate(src.code_lines, start=1):
        if not HOT_ALLOC.search(line):
            continue
        if (src.allowed(lineno, "hot-path-alloc")
                or src.allowed(lineno - 1, "hot-path-alloc")):
            continue
        findings.append(
            (src.path, lineno, "hot-path-alloc", src.snippet(lineno)))
    return findings


# --------------------------------------------------------------------------
# policy-dispatch (textual; both engines)
# --------------------------------------------------------------------------

POLICY_DISPATCH = re.compile(
    r"\bcase\s+(?:\w+\s*::\s*)*Recovery\w*\s*::"
    r"|\bswitch\s*\([^)]*\bRecoveryMode\b"
)


def check_policy_dispatch(src: Source) -> list[Finding]:
    """Outside src/policy/, switching on a recovery strategy type re-inlines
    the monolithic RecoveryMode dispatch the policy registry replaced — a
    site every future strategy silently misses. Callers select behavior via
    policy::recovery_policy(name) instead."""
    if "src/policy/" in relpath(src.path).replace("\\", "/"):
        return []
    findings: list[Finding] = []
    for lineno, line in enumerate(src.code_lines, start=1):
        if not POLICY_DISPATCH.search(line):
            continue
        if src.allowed(lineno, "policy-dispatch"):
            continue
        findings.append(
            (src.path, lineno, "policy-dispatch", src.snippet(lineno)))
    return findings


# --------------------------------------------------------------------------
# builtin engine: whole-tree alias resolution + paren-balanced scanning
# --------------------------------------------------------------------------

USING_ALIAS = re.compile(r"\busing\s+(\w+)\s*=\s*([^;]+?)\s*;")
TYPEDEF = re.compile(r"\btypedef\s+(.+?)\s+(\w+)\s*;")


def collect_aliases(sources: list[Source]) -> dict[str, str]:
    """name -> right-hand type text, across the whole tree. Scope-less by
    design: a lint prefers a rare false positive (suppressible) to an
    evasion, and the repo's alias names are unique in practice."""
    aliases: dict[str, str] = {}
    for src in sources:
        for line in src.code_lines:
            for m in USING_ALIAS.finditer(line):
                aliases[m.group(1)] = m.group(2)
            for m in TYPEDEF.finditer(line):
                aliases[m.group(2)] = m.group(1)
    return aliases


def canonical_type(text: str, aliases: dict[str, str]) -> str:
    """Resolve a type expression through the alias table to the name its
    chain bottoms out at (template arguments and qualifiers stripped)."""
    seen: set[str] = set()
    t = text.strip()
    while True:
        t = re.sub(r"\b(const|volatile|typename|struct|class)\b", " ", t)
        t = t.replace("&", " ").replace("*", " ").strip()
        base = t.split("<", 1)[0].strip()
        # Member typedefs are looked up by their last component.
        key = base.split("::")[-1].strip()
        if key in aliases and key not in seen:
            seen.add(key)
            t = aliases[key]
            continue
        return base


def banned_alias_names(aliases: dict[str, str], pattern: re.Pattern,
                       direct: set[str] | None = None) -> set[str]:
    names = set()
    for name in aliases:
        canon = canonical_type(name, aliases)
        if pattern.search(canon) or (direct and canon in direct):
            names.add(name)
    return names


def builtin_rng(sources: list[Source], aliases: dict[str, str]
                ) -> list[Finding]:
    """Flag the std engines by name AND any declaration/construction
    through an alias that canonicalizes to one."""
    rng_aliases = banned_alias_names(
        aliases, RNG_CANONICAL, RNG_ALIASES)
    direct = re.compile(
        r"\b(" + "|".join(re.escape(n) for n in sorted(RNG_ALIASES)) + r")\b"
        + "|" + RNG_CANONICAL.pattern
    )
    use_patterns = [
        # Declaration or construction through the alias:  Rng r;  Rng{...}
        re.compile(r"\b(" + re.escape(n) + r")\s*(?:<[^;]*>)?\s*"
                   r"(?:\w+\s*[;({=]|[({])")
        for n in sorted(rng_aliases)
    ] + [
        # Member-typedef use:  Foo::engine_type r;
        re.compile(r"\w+::(" + re.escape(n) + r")\b")
        for n in sorted(rng_aliases)
    ]
    findings: list[Finding] = []
    for src in sources:
        for lineno, line in enumerate(src.code_lines, start=1):
            hit = bool(direct.search(line)) or any(
                p.search(line) for p in use_patterns)
            if hit and not src.allowed(lineno, "rng"):
                findings.append(
                    (src.path, lineno, "rng", src.snippet(lineno)))
    return findings


RANGE_FOR = re.compile(r"\bfor\s*\([^;)]*:\s*([^)]+)\)")
LAST_IDENT = re.compile(r"(\w+)\s*(?:\(\s*\))?\s*$")


def builtin_unordered(sources: list[Source], aliases: dict[str, str]
                      ) -> list[Finding]:
    """Range-for over a variable whose declared type canonicalizes to an
    unordered container — declaration may live in any file (headers
    included), through any alias chain."""
    unordered_aliases = banned_alias_names(aliases, UNORDERED)
    type_names = [r"std::unordered_(?:map|set|multimap|multiset)"] + [
        re.escape(n) for n in sorted(unordered_aliases)
    ]
    decl = re.compile(
        r"\b(?:" + "|".join(type_names) + r")\s*(?:<[^;{}()]*>)?\s+(\w+)\s*[;{=(]"
    )
    unordered_vars: set[str] = set()
    for src in sources:
        for line in src.code_lines:
            for m in decl.finditer(line):
                unordered_vars.add(m.group(1))
    findings: list[Finding] = []
    if not unordered_vars:
        return findings
    for src in sources:
        for lineno, line in enumerate(src.code_lines, start=1):
            m = RANGE_FOR.search(line)
            if not m:
                continue
            last = LAST_IDENT.search(m.group(1).strip())
            if (last and last.group(1) in unordered_vars
                    and not src.allowed(lineno, "unordered-iteration")):
                findings.append(
                    (src.path, lineno, "unordered-iteration",
                     src.snippet(lineno))
                )
    return findings


SWEEP_CALL = re.compile(r"\b(parallel_for|run_sweep)\s*\(")
REF_DEFAULT = re.compile(r"\[\s*&\s*[\],]")


def builtin_sweep_capture(sources: list[Source]) -> list[Finding]:
    """Default-by-reference capture anywhere inside the parenthesized
    argument list of a parallel_for/run_sweep call — across newlines,
    which the one-line regex rule cannot see."""
    findings: list[Finding] = []
    for src in sources:
        code = src.code
        for call in SWEEP_CALL.finditer(code):
            depth = 0
            i = call.end() - 1
            while i < len(code):
                c = code[i]
                if c == "(":
                    depth += 1
                elif c == ")":
                    depth -= 1
                    if depth == 0:
                        break
                elif c == "[":
                    m = REF_DEFAULT.match(code, i)
                    if m:
                        lineno = code.count("\n", 0, i) + 1
                        if not src.allowed(lineno, "sweep-capture"):
                            findings.append(
                                (src.path, lineno, "sweep-capture",
                                 src.snippet(lineno))
                            )
                i += 1
    return findings


def run_builtin(sources: list[Source]) -> list[Finding]:
    aliases = collect_aliases(sources)
    findings: list[Finding] = []
    findings += builtin_rng(sources, aliases)
    findings += builtin_unordered(sources, aliases)
    findings += builtin_sweep_capture(sources)
    return findings


# --------------------------------------------------------------------------
# clang engine: canonical types from a real parse
# --------------------------------------------------------------------------

LIBCLANG_CANDIDATES = [
    "/usr/lib/llvm-14/lib/libclang-14.so.1",
    "/usr/lib/llvm-14/lib/libclang.so.1",
    "/usr/lib/x86_64-linux-gnu/libclang-14.so.1",
]


def load_cindex():
    """Returns (cindex module, None) or (None, reason)."""
    try:
        import clang.cindex as ci
    except ImportError as exc:
        return None, f"python clang bindings unavailable ({exc})"
    for candidate in LIBCLANG_CANDIDATES:
        if Path(candidate).is_file():
            try:
                ci.Config.set_library_file(candidate)
            except Exception:  # already configured; keep going
                pass
            break
    try:
        ci.Index.create()
    except Exception as exc:
        return None, f"libclang not loadable ({exc})"
    return ci, None


def clang_lint_file(ci, index, src: Source) -> list[Finding]:
    tu = index.parse(
        str(src.path),
        args=["-std=c++20", f"-I{REPO}", "-x", "c++"],
    )
    findings: list[Finding] = []
    this_file = str(src.path)

    def canonical(node_type) -> str:
        try:
            return node_type.get_canonical().spelling
        except Exception:
            return ""

    def emit(node, rule: str):
        lineno = node.location.line
        if not src.allowed(lineno, rule):
            findings.append((src.path, lineno, rule, src.snippet(lineno)))

    def lambda_has_ref_default(node) -> bool:
        tokens = []
        for tok in node.get_tokens():
            tokens.append(tok.spelling)
            if tok.spelling == "]" or len(tokens) > 8:
                break
        return (len(tokens) >= 3 and tokens[0] == "["
                and tokens[1] == "&" and tokens[2] in ("]", ","))

    def walk(node, in_sweep_call: bool):
        loc = node.location
        in_this_file = loc.file is not None and loc.file.name == this_file
        kind = node.kind.name
        if in_this_file:
            if kind in ("VAR_DECL", "FIELD_DECL", "PARM_DECL"):
                if RNG_CANONICAL.search(canonical(node.type)):
                    emit(node, "rng")
            elif kind == "CXX_FOR_RANGE_STMT":
                children = list(node.get_children())
                # Layout: [loop variable decl, range expression, body].
                for child in children:
                    if child.kind.name in ("VAR_DECL", "COMPOUND_STMT"):
                        continue
                    if UNORDERED.search(canonical(child.type)):
                        emit(node, "unordered-iteration")
                    break
            elif kind == "LAMBDA_EXPR" and in_sweep_call:
                if lambda_has_ref_default(node):
                    emit(node, "sweep-capture")
        sweep = in_sweep_call
        if kind == "CALL_EXPR" and node.spelling in (
                "parallel_for", "run_sweep"):
            sweep = True
        for child in node.get_children():
            walk(child, sweep)

    walk(tu.cursor, False)
    return findings


def run_clang(ci, sources: list[Source]) -> list[Finding]:
    index = ci.Index.create()
    findings: list[Finding] = []
    for src in sources:
        findings.extend(clang_lint_file(ci, index, src))
    return findings


# --------------------------------------------------------------------------


def gather_files(roots: list[str]) -> list[Path] | None:
    files: list[Path] = []
    for root in roots:
        base = Path(root) if Path(root).exists() else REPO / root
        if base.is_file():
            files.append(base)
        elif base.is_dir():
            files.extend(
                p for p in sorted(base.rglob("*"))
                if p.suffix in SOURCE_SUFFIXES
                # Deliberately-violating golden fixtures are linted only
                # when named explicitly (their runner passes the dir).
                and ("lint_fixtures" not in p.parts
                     or "lint_fixtures" in base.parts)
            )
        else:
            print(f"lint_ast: no such file or directory: {root}",
                  file=sys.stderr)
            return None
    return files


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description="AST-grounded semantic lint + layer DAG check")
    parser.add_argument("roots", nargs="*", default=DEFAULT_DIRS,
                        help="directories or files (default: src tests bench)")
    parser.add_argument("--layers", default=str(REPO / "tools/layers.toml"),
                        help="layer DAG declaration (TOML)")
    parser.add_argument("--engine", choices=["auto", "clang", "builtin"],
                        default="auto")
    parser.add_argument("--no-layers", action="store_true",
                        help="skip the layer-dag rule (fixture runs)")
    args = parser.parse_args(argv[1:])

    files = gather_files(args.roots or DEFAULT_DIRS)
    if files is None:
        return 2
    sources = [Source(p) for p in files]

    engine = args.engine
    ci = None
    if engine in ("auto", "clang"):
        ci, reason = load_cindex()
        if ci is None:
            if engine == "clang":
                print(f"lint_ast: --engine clang requested but {reason}",
                      file=sys.stderr)
                return 2
            print(
                "lint_ast: WARNING: falling back to builtin semantic engine "
                f"({reason}); canonical-type checks are approximated",
                file=sys.stderr,
            )
            engine = "builtin"
        else:
            engine = "clang"

    if engine == "clang":
        findings = run_clang(ci, sources)
    else:
        findings = run_builtin(sources)

    for src in sources:
        findings.extend(check_hot_path_alloc(src))
        findings.extend(check_policy_dispatch(src))

    if not args.no_layers:
        layers_path = Path(args.layers)
        if not layers_path.is_file():
            print(f"lint_ast: layers file not found: {layers_path}",
                  file=sys.stderr)
            return 2
        try:
            rank, overrides = load_layers(layers_path)
        except RuntimeError as exc:
            print(f"lint_ast: {exc}", file=sys.stderr)
            return 2
        for src in sources:
            findings.extend(check_layers(src, rank, overrides))

    findings.sort(key=lambda f: (str(f[0]), f[1], f[2]))
    for path, lineno, rule, detail in findings:
        print(f"{relpath(path)}:{lineno}: [{rule}] {detail}")

    if findings:
        print(
            f"lint_ast: {len(findings)} finding(s) in {len(files)} files "
            f"(engine: {engine})",
            file=sys.stderr,
        )
        return 1
    print(f"lint_ast: clean ({len(files)} files, engine: {engine})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
