// streamcast_cli — run any configuration from the command line.
//
//   $ ./examples/streamcast_cli --scheme multitree --n 500 --d 3
//   $ ./examples/streamcast_cli --scheme hypercube --n 500
//   $ ./examples/streamcast_cli --scheme multitree --n 40 --d 2
//         --clusters 9 --D 3 --tc 20
//   $ ./examples/streamcast_cli --scheme multitree --n 200 --d 2
//         --mode pipelined --window 100 --csv
//
// Prints the QoS report (and optionally a per-node CSV of delays) — the
// one-binary front end to the whole library.
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <iostream>
#include <map>
#include <string>

#include "src/core/streamcast.hpp"
#include "src/util/table.hpp"

namespace {

using namespace streamcast;

void usage() {
  std::cerr <<
      "usage: streamcast_cli [options]\n"
      "  --scheme S    a canonical registry name (multi-tree/greedy,\n"
      "                multi-tree/structured, hypercube, hypercube/grouped,\n"
      "                chain, single-tree) or a legacy alias (multitree,\n"
      "                structured, grouped, singletree)\n"
      "                                              (default multitree)\n"
      "  --n N         receivers (per cluster)       (default 200)\n"
      "  --d D         degree / source capacity      (default 2)\n"
      "  --mode M      prerecorded | prebuffered | pipelined\n"
      "  --clusters K  super-tree over K clusters    (default 1)\n"
      "  --D x         backbone degree, K > 1 only   (default 3)\n"
      "  --tc T        inter-cluster latency T_c     (default 10)\n"
      "  --window W    measured packets (0 = auto)\n"
      "  --csv         also print per-node delay CSV (single cluster)\n";
}

}  // namespace

int main(int argc, char** argv) {
  core::SessionConfig cfg{.scheme = core::Scheme::kMultiTreeGreedy,
                          .n = 200,
                          .d = 2};
  bool csv = false;

  // Legacy short aliases; anything else goes through core::parse_scheme,
  // so every canonical registry name works directly.
  const std::map<std::string, core::Scheme> aliases{
      {"multitree", core::Scheme::kMultiTreeGreedy},
      {"structured", core::Scheme::kMultiTreeStructured},
      {"grouped", core::Scheme::kHypercubeGrouped},
      {"singletree", core::Scheme::kSingleTree}};
  const std::map<std::string, multitree::StreamMode> modes{
      {"prerecorded", multitree::StreamMode::kPreRecorded},
      {"prebuffered", multitree::StreamMode::kLivePrebuffered},
      {"pipelined", multitree::StreamMode::kLivePipelined}};

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--scheme") {
      const std::string name = value();
      const auto it = aliases.find(name);
      if (it != aliases.end()) {
        cfg.scheme = it->second;
      } else {
        try {
          cfg.scheme = core::parse_scheme(name);
        } catch (const std::invalid_argument&) {
          usage();
          return 1;
        }
      }
    } else if (arg == "--n") {
      cfg.n = std::atoi(value());
    } else if (arg == "--d") {
      cfg.d = std::atoi(value());
    } else if (arg == "--mode") {
      const auto it = modes.find(value());
      if (it == modes.end()) {
        usage();
        return 1;
      }
      cfg.mode = it->second;
    } else if (arg == "--clusters") {
      cfg.clusters = std::atoi(value());
    } else if (arg == "--D") {
      cfg.big_d = std::atoi(value());
    } else if (arg == "--tc") {
      cfg.t_c = std::atoi(value());
    } else if (arg == "--window") {
      cfg.window = std::atoi(value());
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "unknown option " << arg << "\n";
      usage();
      return 1;
    }
  }

  try {
    const core::QosReport report = core::StreamingSession(cfg).run();
    std::cout << report.summary() << '\n'
              << "avg buffer " << util::cell(report.average_buffer, 2)
              << " pkts, avg neighbors "
              << util::cell(report.average_neighbors, 2) << '\n';

    if (csv && cfg.clusters == 1) {
      // Re-run with recorders exposed for a per-node dump.
      std::cout << "\nnode,delay\n";
      if (cfg.scheme == core::Scheme::kMultiTreeGreedy ||
          cfg.scheme == core::Scheme::kMultiTreeStructured) {
        const auto f = cfg.scheme == core::Scheme::kMultiTreeGreedy
                           ? multitree::build_greedy(cfg.n, cfg.d)
                           : multitree::build_structured(cfg.n, cfg.d);
        const auto delays = multitree::closed_form_delays(f);
        for (sim::NodeKey x = 1; x <= cfg.n; ++x) {
          std::cout << x << ',' << delays[static_cast<std::size_t>(x)]
                    << '\n';
        }
      } else if (cfg.scheme == core::Scheme::kHypercube) {
        for (const auto& seg : hypercube::decompose_chain(cfg.n)) {
          for (sim::NodeKey x = seg.first; x < seg.first + seg.receivers();
               ++x) {
            std::cout << x << ',' << seg.playback_delay() << '\n';
          }
        }
      } else {
        std::cout << "(per-node CSV only for multitree/hypercube)\n";
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
