// Quickstart: stream to one cluster with each scheme and compare QoS.
//
//   $ ./examples/quickstart [N] [d]
//
// Demonstrates the one-call public API (core::StreamingSession) and prints
// the paper's Table-1 quantities for every scheme at the chosen size.
#include <cstdlib>
#include <iostream>

#include "src/core/streamcast.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace streamcast;
  const core::NodeKey n = argc > 1 ? std::atoi(argv[1]) : 200;
  const int d = argc > 2 ? std::atoi(argv[2]) : 3;
  if (n < 1 || d < 1) {
    std::cerr << "usage: quickstart [N >= 1] [d >= 1]\n";
    return 1;
  }

  std::cout << "streamcast quickstart: N = " << n << " receivers, d = " << d
            << "\n\n";

  util::Table table({"scheme", "worst delay", "avg delay", "max buffer",
                     "max neighbors", "transmissions"});
  for (const core::Scheme scheme :
       {core::Scheme::kMultiTreeGreedy, core::Scheme::kMultiTreeStructured,
        core::Scheme::kHypercube, core::Scheme::kHypercubeGrouped,
        core::Scheme::kChain, core::Scheme::kSingleTree}) {
    const core::QosReport r =
        core::StreamingSession(
            core::SessionConfig{.scheme = scheme, .n = n, .d = d})
            .run();
    table.add_row({r.scheme, util::cell(r.worst_delay),
                   util::cell(r.average_delay, 2), util::cell(r.max_buffer),
                   util::cell(r.max_neighbors),
                   util::cell(r.transmissions)});
  }
  table.print(std::cout);

  std::cout << "\nClosed-form guidance (§2.3): optimal tree degree for N = "
            << n << " is d = " << multitree::optimal_degree(n)
            << " (worst-delay bound " << multitree::worst_delay_bound(n, 2)
            << " slots at d=2, " << multitree::worst_delay_bound(n, 3)
            << " at d=3).\n";
  return 0;
}
