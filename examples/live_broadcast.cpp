// Live broadcast: a sporting event streamed to one cluster of viewers.
//
//   $ ./examples/live_broadcast [N] [d]
//
// Packets are generated live (one per slot). Compares the paper's two live
// adaptations of the multi-tree schedule (§2.2.3) — source pre-buffering d
// packets versus per-tree pipelining — by running both on the engine and
// attaching a net::PlaybackBuffer to a sample of viewers: startup delay,
// steady buffer occupancy, and hiccup-free playback.
#include <cstdlib>
#include <iostream>
#include <map>
#include <vector>

#include "src/core/streamcast.hpp"
#include "src/util/table.hpp"

namespace {

using namespace streamcast;

struct LiveRun {
  sim::Slot worst_delay = 0;
  double avg_delay = 0;
  std::size_t worst_buffer = 0;
  std::int64_t hiccups = 0;
};

LiveRun run_live(core::NodeKey n, int d, multitree::StreamMode mode,
                 sim::PacketId window) {
  const multitree::Forest forest = multitree::build_greedy(n, d);
  net::UniformCluster topo(n, d);
  multitree::MultiTreeProtocol proto(forest, mode);
  sim::Engine engine(topo, proto);
  metrics::DelayRecorder delays(n + 1, window);
  engine.add_observer(delays);
  engine.run_until(window + multitree::worst_delay_bound(n, d) + 3 * d + 8);

  LiveRun run;
  run.worst_delay = delays.worst_delay(1, n);
  run.avg_delay = delays.average_delay(1, n);

  // Replay each viewer's arrivals through an online playback buffer started
  // at its own playback delay: zero hiccups expected, bounded occupancy.
  for (core::NodeKey x = 1; x <= n; ++x) {
    const sim::Slot start = *delays.playback_delay(x);
    net::PlaybackBuffer buffer(start);
    std::map<sim::Slot, std::vector<sim::PacketId>> arrivals;
    for (sim::PacketId j = 0; j < window; ++j) {
      arrivals[delays.arrival(x, j)].push_back(j);
    }
    sim::Slot clock = -1;
    for (const auto& [slot, packets] : arrivals) {
      for (const sim::PacketId p : packets) buffer.on_receive(slot, p);
      buffer.advance_to(slot);
      clock = slot;
    }
    buffer.advance_to(std::max(clock, start + window - 1));
    run.worst_buffer = std::max(run.worst_buffer, buffer.max_occupancy());
    run.hiccups += buffer.hiccups();
  }
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const core::NodeKey n = argc > 1 ? std::atoi(argv[1]) : 150;
  const int d = argc > 2 ? std::atoi(argv[2]) : 2;
  if (n < 1 || d < 1) {
    std::cerr << "usage: live_broadcast [N >= 1] [d >= 1]\n";
    return 1;
  }
  const sim::PacketId window = 6 * multitree::worst_delay_bound(n, d);

  std::cout << "Live broadcast to " << n << " viewers over " << d
            << " interior-disjoint trees, " << window
            << " packets measured.\n\n";

  util::Table table({"live mode", "worst startup (slots)", "avg startup",
                     "worst buffer (pkts)", "hiccups"});
  const auto pre = run_live(n, d, multitree::StreamMode::kPreRecorded, window);
  const auto buf =
      run_live(n, d, multitree::StreamMode::kLivePrebuffered, window);
  const auto pipe =
      run_live(n, d, multitree::StreamMode::kLivePipelined, window);
  table.add_row({"pre-recorded (reference)", util::cell(pre.worst_delay),
                 util::cell(pre.avg_delay, 2), util::cell(pre.worst_buffer),
                 util::cell(pre.hiccups)});
  table.add_row({"live, source pre-buffers d", util::cell(buf.worst_delay),
                 util::cell(buf.avg_delay, 2), util::cell(buf.worst_buffer),
                 util::cell(buf.hiccups)});
  table.add_row({"live, pipelined per tree", util::cell(pipe.worst_delay),
                 util::cell(pipe.avg_delay, 2), util::cell(pipe.worst_buffer),
                 util::cell(pipe.hiccups)});
  table.print(std::cout);

  std::cout << "\nPre-buffering shifts every viewer by exactly d = " << d
            << " slots; pipelining trades a smaller shift for inhomogeneous "
               "per-tree schedules (§2.2.3). No viewer ever rebuffers.\n";
  return pre.hiccups + buf.hiccups + pipe.hiccups == 0 ? 0 : 1;
}
