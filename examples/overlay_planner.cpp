// Overlay planner: pick a scheme from QoS targets using the paper's closed
// forms, then verify the recommendation by simulation.
//
//   $ ./examples/overlay_planner [N] [max startup slots] [max buffer pkts]
//
// Walks the design space of §2-§3: multi-tree degrees 2..5 (with the §2.3
// optimality argument), the hypercube chain, and the d-group hypercube, and
// recommends the cheapest configuration meeting both targets.
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>

#include "src/core/streamcast.hpp"
#include "src/util/table.hpp"

namespace {

using namespace streamcast;

struct Candidate {
  core::Scheme scheme;
  int d;
  sim::Slot delay_bound;
  std::size_t buffer_bound;
  std::size_t neighbor_bound;
};

}  // namespace

int main(int argc, char** argv) {
  const core::NodeKey n = argc > 1 ? std::atoi(argv[1]) : 300;
  const sim::Slot max_delay = argc > 2 ? std::atoi(argv[2]) : 25;
  const std::size_t max_buffer =
      argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 8;
  if (n < 1) {
    std::cerr << "usage: overlay_planner [N] [max delay] [max buffer]\n";
    return 1;
  }

  std::cout << "Planning an overlay for N = " << n
            << " receivers; targets: startup <= " << max_delay
            << " slots, buffer <= " << max_buffer << " packets.\n\n";

  std::vector<Candidate> candidates;
  for (int d = 2; d <= 5; ++d) {
    candidates.push_back(
        {core::Scheme::kMultiTreeGreedy, d, multitree::worst_delay_bound(n, d),
         static_cast<std::size_t>(multitree::worst_delay_bound(n, d)),
         static_cast<std::size_t>(2 * d)});
  }
  candidates.push_back({core::Scheme::kHypercube, 1, hypercube::worst_delay(n),
                        2,
                        static_cast<std::size_t>(
                            hypercube::neighbor_bound(n))});
  for (int d = 2; d <= 4; ++d) {
    candidates.push_back({core::Scheme::kHypercubeGrouped, d,
                          hypercube::worst_delay_grouped(n, d), 2,
                          static_cast<std::size_t>(
                              hypercube::neighbor_bound(n / d + 1))});
  }

  util::Table table({"scheme", "d", "delay bound", "buffer bound",
                     "neighbor bound", "meets targets"});
  std::optional<Candidate> pick;
  for (const auto& c : candidates) {
    const bool ok = c.delay_bound <= max_delay && c.buffer_bound <= max_buffer;
    table.add_row({core::scheme_name(c.scheme), util::cell(c.d),
                   util::cell(c.delay_bound), util::cell(c.buffer_bound),
                   util::cell(c.neighbor_bound), ok ? "yes" : "no"});
    // Prefer the feasible candidate with the fewest neighbors, then delay.
    if (ok && (!pick || c.neighbor_bound < pick->neighbor_bound ||
               (c.neighbor_bound == pick->neighbor_bound &&
                c.delay_bound < pick->delay_bound))) {
      pick = c;
    }
  }
  table.print(std::cout);

  if (!pick) {
    std::cout << "\nNo configuration meets both targets; relax one of them "
                 "(the multi-tree delay bound h*d and the hypercube's "
                 "O(log^2 N) are the frontier).\n";
    return 2;
  }

  std::cout << "\nRecommended: " << core::scheme_name(pick->scheme)
            << " with d = " << pick->d << ". Verifying by simulation...\n";
  const core::QosReport r =
      core::StreamingSession(core::SessionConfig{.scheme = pick->scheme,
                                                 .n = n,
                                                 .d = pick->d})
          .run();
  std::cout << "  " << r.summary() << "\n";
  const bool verified =
      r.worst_delay <= max_delay && r.max_buffer <= max_buffer;
  std::cout << (verified ? "  targets met.\n"
                         : "  simulation exceeded a target!\n");
  return verified ? 0 : 1;
}
