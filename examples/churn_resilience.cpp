// Churn resilience: a flash-crowd session with nodes joining and leaving
// (paper appendix). Maintains the interior-disjoint forest under a seeded
// random arrival/departure trace and reports maintenance cost — the
// position moves that translate into potential playback hiccups — for the
// eager and lazy policies.
//
//   $ ./examples/churn_resilience [initial N] [d] [events]
#include <cstdlib>
#include <iostream>
#include <vector>

#include "src/core/streamcast.hpp"
#include "src/util/prng.hpp"
#include "src/util/table.hpp"

namespace {

using namespace streamcast;

struct ChurnOutcome {
  multitree::ChurnStats stats;
  sim::NodeKey final_n = 0;
  bool valid = true;
};

ChurnOutcome drive(multitree::ChurnPolicy policy, core::NodeKey n0, int d,
                   int events, std::uint64_t seed) {
  util::Prng rng(seed);
  multitree::ChurnForest forest(n0, d, policy);
  std::vector<multitree::PeerId> alive;
  for (core::NodeKey id = 1; id <= n0; ++id) {
    alive.push_back(forest.peer_at(id));
  }
  for (int e = 0; e < events; ++e) {
    // Flash-crowd shape: arrivals dominate early, departures late.
    const double p_arrive = e < events / 2 ? 0.7 : 0.3;
    if (forest.n() <= 2 || rng.chance(p_arrive)) {
      alive.push_back(forest.add());
    } else {
      const auto idx = static_cast<std::size_t>(rng.below(alive.size()));
      forest.remove(alive[idx]);
      alive.clear();
      for (core::NodeKey id = 1; id <= forest.n(); ++id) {
        alive.push_back(forest.peer_at(id));
      }
    }
  }
  ChurnOutcome out{forest.stats(), forest.n(),
                   multitree::validate_forest(forest.forest()).ok};
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const core::NodeKey n0 = argc > 1 ? std::atoi(argv[1]) : 100;
  const int d = argc > 2 ? std::atoi(argv[2]) : 2;
  const int events = argc > 3 ? std::atoi(argv[3]) : 500;
  if (n0 < 2 || d < 1 || events < 1) {
    std::cerr << "usage: churn_resilience [N >= 2] [d >= 1] [events >= 1]\n";
    return 1;
  }

  std::cout << "Churn session: " << n0 << " initial peers, d = " << d << ", "
            << events << " join/leave events (seeded).\n\n";

  util::Table table({"policy", "final N", "relabel moves", "rebuilds",
                     "rebuild moves", "total moves", "moves/event",
                     "invariants"});
  for (const auto policy :
       {multitree::ChurnPolicy::kEager, multitree::ChurnPolicy::kLazy}) {
    const auto out = drive(policy, n0, d, events, /*seed=*/2026);
    table.add_row(
        {policy == multitree::ChurnPolicy::kEager ? "eager" : "lazy",
         util::cell(out.final_n), util::cell(out.stats.relabel_moves),
         util::cell(out.stats.rebuilds), util::cell(out.stats.rebuild_moves),
         util::cell(out.stats.total_moves()),
         util::cell(static_cast<double>(out.stats.total_moves()) /
                        static_cast<double>(events),
                    2),
         out.valid ? "ok" : "VIOLATED"});
  }
  table.print(std::cout);

  std::cout << "\nEvery move is one (peer, tree) position change — the "
               "paper's proxy for a potential hiccup. The lazy policy defers "
               "boundary restructurings until forced, trading transient "
               "imbalance (at most 2d vacancies) for fewer moves.\n";
  return 0;
}
