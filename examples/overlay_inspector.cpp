// Overlay inspector: build any overlay and dump it for humans and tools.
//
//   $ ./examples/overlay_inspector tree  [N] [d]   # interior-disjoint forest
//   $ ./examples/overlay_inspector cube  [N]       # hypercube chain
//   $ ./examples/overlay_inspector dot   [N] [d]   # forest as Graphviz DOT
//
// `dot` output pipes straight into Graphviz:
//   ./examples/overlay_inspector dot 15 3 | dot -Tsvg > forest.svg
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "src/core/streamcast.hpp"
#include "src/util/ascii_tree.hpp"
#include "src/util/dot.hpp"
#include "src/util/table.hpp"

namespace {

using namespace streamcast;

std::vector<int> parents_of_tree(const multitree::Forest& f, int k) {
  // Index 0 = source; positions map to indices directly; entry i holds the
  // parent's *node* index... we render the position lattice with node
  // labels, so parent[] is over positions.
  std::vector<int> parent(static_cast<std::size_t>(f.n_pad()) + 1);
  parent[0] = -1;
  for (sim::NodeKey pos = 1; pos <= f.n_pad(); ++pos) {
    parent[static_cast<std::size_t>(pos)] =
        static_cast<int>(f.parent_pos(pos));
  }
  (void)k;
  return parent;
}

int run_tree(sim::NodeKey n, int d) {
  const multitree::Forest f = multitree::build_greedy(n, d);
  std::cout << "Interior-disjoint forest, N = " << n << ", d = " << d
            << " (greedy construction)\n\n";
  for (int k = 0; k < d; ++k) {
    const auto label = [&](int pos) -> std::string {
      if (pos == 0) return "S";
      const sim::NodeKey node = f.node_at(k, static_cast<sim::NodeKey>(pos));
      return f.is_dummy(node) ? std::to_string(node) + "*"
                              : std::to_string(node);
    };
    std::cout << "T_" << k << ":\n"
              << util::render_tree(parents_of_tree(f, k), label) << '\n';
  }
  util::Table table({"node", "interior in", "delay a(i)", "positions"});
  const auto delays = multitree::closed_form_delays(f);
  for (sim::NodeKey x = 1; x <= n; ++x) {
    std::string positions;
    for (int k = 0; k < d; ++k) {
      positions += std::to_string(f.position_of(k, x)) + " ";
    }
    const int it = f.interior_tree_of(x);
    table.add_row({util::cell(x),
                   it < 0 ? std::string("(all-leaf)")
                          : "T_" + std::to_string(it),
                   util::cell(delays[static_cast<std::size_t>(x)]),
                   positions});
  }
  table.print(std::cout);
  return 0;
}

int run_cube(sim::NodeKey n) {
  std::cout << "Hypercube chain, N = " << n << "\n\n";
  util::Table table({"segment", "k", "receivers", "keys", "local start",
                     "playback delay"});
  const auto chain = hypercube::decompose_chain(n);
  for (std::size_t s = 0; s < chain.size(); ++s) {
    const auto& seg = chain[s];
    table.add_row({util::cell(s), util::cell(seg.k),
                   util::cell(seg.receivers()),
                   util::cell(seg.first) + ".." +
                       util::cell(seg.first + seg.receivers() - 1),
                   util::cell(seg.start), util::cell(seg.playback_delay())});
  }
  table.print(std::cout);
  std::cout << "\nworst delay " << hypercube::worst_delay(n) << ", average "
            << util::cell(hypercube::average_delay(n), 2)
            << " (Theorem 4 bound "
            << util::cell(hypercube::theorem4_bound(n), 2) << ")\n";
  return 0;
}

int run_dot(sim::NodeKey n, int d) {
  // One digraph per tree, positions as vertices, real node ids as labels
  // (dummies suffixed '*').
  const multitree::Forest f = multitree::build_greedy(n, d);
  for (int k = 0; k < d; ++k) {
    const auto tree_label = [&](int pos) -> std::string {
      if (pos == 0) return "S";
      const sim::NodeKey node = f.node_at(k, static_cast<sim::NodeKey>(pos));
      return f.is_dummy(node) ? std::to_string(node) + "*"
                              : std::to_string(node);
    };
    std::cout << util::tree_to_dot("T_" + std::to_string(k),
                                   parents_of_tree(f, k), tree_label);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "tree";
  const sim::NodeKey n = argc > 2 ? std::atoi(argv[2]) : 15;
  const int d = argc > 3 ? std::atoi(argv[3]) : 3;
  if (n < 1 || d < 1) {
    std::cerr << "usage: overlay_inspector [tree|cube|dot] [N] [d]\n";
    return 1;
  }
  if (mode == "tree") return run_tree(n, d);
  if (mode == "cube") return run_cube(n);
  if (mode == "dot") return run_dot(n, d);
  std::cerr << "unknown mode '" << mode << "'\n";
  return 1;
}
