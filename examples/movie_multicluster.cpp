// Multi-cluster movie delivery: K geographic clusters joined by the
// super-tree τ of §2.1 (Figure 1's deployment, end to end).
//
//   $ ./examples/movie_multicluster [K] [per-cluster N] [T_c]
//
// A pre-recorded movie streams from S over the backbone (inter-cluster
// latency T_c) into each cluster's interior-disjoint forest. Prints per-
// cluster startup delays against Theorem 1's closed form.
#include <cstdlib>
#include <iostream>

#include "src/core/streamcast.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace streamcast;
  const int clusters = argc > 1 ? std::atoi(argv[1]) : 9;
  const core::NodeKey per_cluster = argc > 2 ? std::atoi(argv[2]) : 30;
  const sim::Slot t_c = argc > 3 ? std::atoi(argv[3]) : 10;
  const int big_d = 3;
  const int d = 2;
  if (clusters < 1 || per_cluster < 1 || t_c < 2) {
    std::cerr << "usage: movie_multicluster [K >= 1] [N >= 1] [T_c >= 2]\n";
    return 1;
  }

  std::vector<net::ClusteredTopology::ClusterSpec> specs(
      static_cast<std::size_t>(clusters),
      net::ClusteredTopology::ClusterSpec{per_cluster});
  net::ClusteredTopology topo(specs, big_d, d, t_c);
  supertree::SuperTreeProtocol proto(topo);
  sim::Engine engine(topo, proto);

  const sim::PacketId window =
      4 * multitree::worst_delay_bound(per_cluster, d);
  metrics::DelayRecorder delays(topo.size(), window);
  engine.add_observer(delays);
  const sim::Slot bound = supertree::structural_bound(
      clusters, big_d, t_c, 1, d, per_cluster);
  engine.run_until(window + bound + 8);

  std::cout << "Movie delivery: K = " << clusters << " clusters x "
            << per_cluster << " receivers, D = " << big_d << ", d = " << d
            << ", T_c = " << t_c << " slots.\n\n";

  util::Table table({"cluster", "backbone hops", "worst startup",
                     "avg startup"});
  sim::Slot worst_overall = 0;
  for (int c = 0; c < clusters; ++c) {
    sim::Slot worst = 0;
    double sum = 0;
    for (core::NodeKey x = 1; x <= per_cluster; ++x) {
      const sim::Slot a = *delays.playback_delay(topo.receiver(c, x));
      worst = std::max(worst, a);
      sum += static_cast<double>(a);
    }
    worst_overall = std::max(worst_overall, worst);
    table.add_row(
        {util::cell(c + 1),
         util::cell(proto.backbone().depth[static_cast<std::size_t>(c)]),
         util::cell(worst),
         util::cell(sum / static_cast<double>(per_cluster), 2)});
  }
  table.print(std::cout);

  const int h = multitree::tree_height(per_cluster, d);
  std::cout << "\nworst startup overall: " << worst_overall
            << " slots\nTheorem 1 closed form  T_c*log_{D-1}K + T_i*d(h-1) = "
            << util::cell(supertree::theorem1_bound(clusters, big_d, t_c, 1,
                                                    d, h),
                          1)
            << "\nstructural upper bound: " << bound << " slots\n";
  return worst_overall <= bound ? 0 : 1;
}
