// Compile-time envelope proofs (DESIGN.md §13).
//
// Building this translation unit IS the proof: every check below is a
// static_assert over the constexpr envelope math of src/static, so a
// violated bound is a compile error — the paper's Theorem 2 / Propositions
// 1–2 / structural envelopes hold by construction of the build, not merely
// on the grids the runtime auditor happened to sweep. The grids here cover
// every structured lossless scheme of the registry at >= 12 (N, d, T_c)
// points each; the runtime InvariantAuditor remains the authority for what
// the compile-time arithmetic cannot see (lossy links, churn, the
// randomized rrd/dyntree overlays' seeded instances).
//
// The CMake gate in src/CMakeLists.txt additionally try_compiles
// proof_fixture.cpp with the envelope perturbed by -1 and requires that
// build to FAIL — proving these assertions have teeth.
#include "src/static/envelopes.hpp"
#include "src/static/lattice.hpp"
#include "src/util/ints.hpp"

namespace streamcast::envelope {
namespace {

struct NdPoint {
  Count n;
  Count d;
};

// --- multi-tree: Theorem 2 over the schedule itself ------------------------

/// One grid point of the Theorem 2 proof:
///   * h = tree_height(n, d) is minimal — the complete d-ary forest of
///     height h-1 cannot seat n receivers, the height-h one can;
///   * the closed-form round-robin schedule's worst playback delay (computed
///     from the arrival offsets, not claimed) is within h*d;
///   * so is its worst buffer occupancy at the registry's default window;
///   * the pipelined live mode (the analysis the paper skips) stays within
///     h*d + d — the registry's live-mode envelope.
constexpr bool proves_thm2(Count n, Count d) {
  const Count bound = multitree_delay_bound(n, d);
  const int h = tree_height(n, d);
  if (d >= 2) {
    if (util::complete_dary_size(static_cast<int>(d), h) < n) return false;
    if (h > 0 &&
        util::complete_dary_size(static_cast<int>(d), h - 1) >= n) {
      return false;
    }
  }
  if (structured_worst_delay(n, d) >= bound) return false;  // strict: see below
  if (structured_max_buffer(n, d, multitree_default_window(n, d)) > bound) {
    return false;
  }
  if (structured_worst_delay_pipelined(n, d) > bound + d) return false;
  return true;
}

constexpr NdPoint kThm2Grid[] = {
    {1, 1},  {7, 1},   {2, 2},   {5, 2},   {6, 2},   {14, 2},  {15, 3},
    {31, 2}, {40, 3},  {63, 2},  {100, 4}, {127, 2}, {255, 3}, {500, 5},
    {511, 2}, {1023, 2},
};

constexpr bool proves_thm2_grid() {
  for (const NdPoint& p : kThm2Grid) {
    if (!proves_thm2(p.n, p.d)) return false;
  }
  return true;
}

static_assert(sizeof(kThm2Grid) / sizeof(kThm2Grid[0]) >= 12);
static_assert(proves_thm2_grid(),
              "Theorem 2 envelope (delay/buffer <= h*d, live <= h*d + d) "
              "violated by the structured schedule arithmetic");

// The schedule actually beats Theorem 2 strictly at every grid point
// (proves_thm2 checks `worst < h*d`, margins 1-4 on this grid). Two exact
// anchors record the measured values; the registry keeps the paper's h*d.
static_assert(structured_worst_delay(63, 2) == 10 &&
              multitree_delay_bound(63, 2) == 12);
static_assert(structured_worst_delay(255, 3) == 13 &&
              multitree_delay_bound(255, 3) == 15);

// --- hypercube chain: Propositions 1-2 -------------------------------------

/// One grid point of the Propositions 1-2 proof:
///   * the greedy chain decomposition covers exactly n receivers;
///   * the k_s are non-increasing, and a dimension repeats only as the
///     final exactly-consumed segment, so the chain has at most
///     floor(log2(n + 1)) + 1 segments (the O(log N) neighbor bound);
///   * worst delay (the running sum of the k_s) is within the O(log^2)
///     form c*(c+1)/2 with c = ceil(log2(n + 1));
///   * at special N = 2^k - 1 the whole stream is one cube and the delay is
///     exactly k (Proposition 1 — tight, which the -1 fixture exploits).
constexpr bool proves_prop12(Count n) {
  Count covered = 0;
  Count remaining = n;
  int prev_k = 64;
  while (remaining > 0) {
    const int k =
        util::floor_log2(static_cast<std::uint64_t>(remaining) + 1);
    if (k > prev_k) return false;  // non-increasing
    const Count cube = (Count{1} << k) - 1;
    if (k == prev_k && remaining != cube) return false;  // repeat => final
    prev_k = k;
    covered += cube;
    remaining -= cube;
  }
  if (covered != n) return false;
  const Count k1 = util::floor_log2(static_cast<std::uint64_t>(n) + 1);
  const Count c = util::ceil_log2(static_cast<std::uint64_t>(n) + 1);
  if (hypercube_segments(n) > k1 + 1) return false;
  if (hypercube_delay_bound(n) > c * (c + 1) / 2) return false;
  const bool special =
      ((static_cast<std::uint64_t>(n) + 1) & static_cast<std::uint64_t>(n)) ==
      0;
  if (special && hypercube_delay_bound(n) != k1) return false;
  return true;
}

constexpr Count kProp12Grid[] = {1,  3,  7,   15,  31,   63,   127, 255,
                                 2,  5,  10,  20,  50,   100,  500, 2000,
                                 511, 1023, 2047, 4095};

constexpr bool proves_prop12_grid() {
  for (const Count n : kProp12Grid) {
    if (!proves_prop12(n)) return false;
  }
  return true;
}

static_assert(sizeof(kProp12Grid) / sizeof(kProp12Grid[0]) >= 12);
static_assert(proves_prop12_grid(),
              "Propositions 1-2 envelope violated by the hypercube chain "
              "decomposition");

// --- hypercube d-group variant (§3.2 end) ----------------------------------

/// The grouped scheme splits n receivers as evenly as possible into d
/// chains: no group exceeds ceil(n/d), so the worst delay obeys the
/// single-chain O(log^2) form at the group size, and a d = 1 "grouping" is
/// exactly the single chain.
constexpr bool proves_grouped(Count n, Count d) {
  const Count group = util::ceil_div(n, d);
  const Count c = util::ceil_log2(static_cast<std::uint64_t>(group) + 1);
  if (hypercube_grouped_delay_bound(n, d) > c * (c + 1) / 2) return false;
  if (hypercube_grouped_delay_bound(n, 1) != hypercube_delay_bound(n)) {
    return false;
  }
  return true;
}

constexpr NdPoint kGroupedGrid[] = {
    {7, 2},  {15, 2},  {20, 3},  {50, 4},  {63, 2},   {63, 3},
    {100, 2}, {100, 4}, {127, 3}, {255, 2}, {500, 5}, {1023, 4},
};

constexpr bool proves_grouped_grid() {
  for (const NdPoint& p : kGroupedGrid) {
    if (!proves_grouped(p.n, p.d)) return false;
  }
  return true;
}

static_assert(sizeof(kGroupedGrid) / sizeof(kGroupedGrid[0]) >= 12);
static_assert(proves_grouped_grid(),
              "grouped-hypercube envelope violated at the even split");

// --- baselines (§1) --------------------------------------------------------

/// Chain: node i plays packet j at slot j + i - 1 — delay exactly i - 1,
/// worst exactly n - 1 (tight; the -1 fixture exploits this too), O(1)
/// buffer since arrivals are strictly in playback order.
constexpr bool proves_chain(Count n) {
  for (Count i = 1; i <= n; ++i) {
    if (i - 1 > chain_delay_bound(n)) return false;
  }
  return chain_delay_bound(n) == n - 1;
}

constexpr Count kChainGrid[] = {1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233};

constexpr bool proves_chain_grid() {
  for (const Count n : kChainGrid) {
    if (!proves_chain(n)) return false;
  }
  return true;
}

static_assert(sizeof(kChainGrid) / sizeof(kChainGrid[0]) >= 12);
static_assert(proves_chain_grid(), "chain baseline envelope violated");

/// Single tree: BFS numbering puts node n at depth D iff the complete
/// d-ary tree of depth D-1 is too small and the depth-D one is not; the
/// worst playback delay is that depth minus one (one forward per hop).
constexpr bool proves_single_tree(Count n, Count d) {
  const int depth = single_tree_depth(n, d);
  if (util::complete_dary_size(static_cast<int>(d), depth) < n) return false;
  if (depth > 1 &&
      util::complete_dary_size(static_cast<int>(d), depth - 1) >= n) {
    return false;
  }
  if (single_tree_delay_bound(n, d) != depth - 1) return false;
  // Monotone: one more receiver can only deepen the tree.
  if (single_tree_delay_bound(n + 1, d) < single_tree_delay_bound(n, d)) {
    return false;
  }
  return true;
}

constexpr NdPoint kSingleTreeGrid[] = {
    {1, 2},  {2, 2},  {6, 2},   {7, 3},   {14, 2},  {40, 3},
    {63, 2}, {100, 4}, {127, 2}, {255, 3}, {500, 5}, {1023, 2},
};

constexpr bool proves_single_tree_grid() {
  for (const NdPoint& p : kSingleTreeGrid) {
    if (!proves_single_tree(p.n, p.d)) return false;
  }
  return true;
}

static_assert(sizeof(kSingleTreeGrid) / sizeof(kSingleTreeGrid[0]) >= 12);
static_assert(proves_single_tree_grid(),
              "single-tree baseline envelope violated");

// --- super-tree composition: the T_c axis ----------------------------------

struct SupertreePoint {
  Count clusters;
  Count big_d;
  Count t_c;
};

/// One grid point of the structural-bound proof:
///   * the BFS-tight backbone depth is minimal — D*( (D-1)^L - 1 )/(D-2)
///     supers fit within depth L, and depth-1 levels cannot seat K;
///   * the structural bound decomposes exactly as
///     depth*T_c + T_i + h*d + d (multi-tree clusters) and
///     depth*T_c + T_i + hypercube_delay (hypercube clusters);
///   * one extra slot of cross-cluster latency costs exactly `depth` slots
///     of end-to-end envelope — the tradeoff dial of §2.1.
constexpr bool proves_supertree(Count k, Count big_d, Count t_c) {
  const int depth = backbone_depth(k, big_d);
  // Cumulative capacity of L backbone levels: D + D(D-1) + ... + D(D-1)^(L-1).
  Count cap = 0;
  Count level_cap = big_d;
  for (int level = 1; level < depth; ++level) {
    cap += level_cap;
    level_cap *= big_d - 1;
  }
  if (cap >= k) return false;  // depth - 1 levels must NOT seat k
  cap += level_cap;
  if (cap < k) return false;  // depth levels must
  constexpr Count t_i = 1;
  constexpr Count d = 2;
  constexpr Count cluster_n = 63;
  const Count bound =
      supertree_structural_bound(k, big_d, t_c, t_i, d, cluster_n);
  if (bound != depth * t_c + t_i + multitree_delay_bound(cluster_n, d) + d) {
    return false;
  }
  if (supertree_structural_bound(k, big_d, t_c + 1, t_i, d, cluster_n) -
          bound !=
      depth) {
    return false;
  }
  const Count hc_bound =
      supertree_structural_bound_hypercube(k, big_d, t_c, t_i, cluster_n);
  if (hc_bound != depth * t_c + t_i + hypercube_delay_bound(cluster_n)) {
    return false;
  }
  return true;
}

constexpr SupertreePoint kSupertreeGrid[] = {
    {1, 3, 2},  {2, 3, 2},  {3, 3, 5},  {4, 3, 5},  {5, 4, 2},
    {8, 3, 9},  {9, 3, 2},  {13, 4, 5}, {21, 3, 9}, {40, 5, 2},
    {64, 3, 5}, {100, 4, 9},
};

constexpr bool proves_supertree_grid() {
  for (const SupertreePoint& p : kSupertreeGrid) {
    if (!proves_supertree(p.clusters, p.big_d, p.t_c)) return false;
  }
  return true;
}

static_assert(sizeof(kSupertreeGrid) / sizeof(kSupertreeGrid[0]) >= 12);
static_assert(proves_supertree_grid(),
              "super-tree structural bound violated (Theorem 1 structural "
              "form)");

// --- random regular digraph: the audited margin ----------------------------

/// The rrd envelope is an audited empirical margin, not a theorem — but its
/// shape is still provable: it anchors to 2*ceil-log2 + d + 4 exactly,
/// dominates the E35 measured ceiling (~log2 N + 1 + d), and is monotone in
/// both arguments, so widening a sweep can never step outside it
/// accidentally.
constexpr bool proves_rrd(Count n, Count d) {
  const Count log2n = util::floor_log2(static_cast<std::uint64_t>(n)) + 1;
  if (rrd_delay_bound(n, d) != 2 * log2n + d + 4) return false;
  if (rrd_delay_bound(n, d) < log2n + 1 + d) return false;
  if (rrd_delay_bound(n + 1, d) < rrd_delay_bound(n, d)) return false;
  if (rrd_delay_bound(n, d + 1) < rrd_delay_bound(n, d)) return false;
  return true;
}

constexpr NdPoint kRrdGrid[] = {
    {8, 2},   {16, 2},  {31, 3},  {32, 3},  {63, 2},  {64, 4},
    {100, 2}, {128, 3}, {256, 5}, {512, 2}, {512, 4}, {1024, 3},
};

constexpr bool proves_rrd_grid() {
  for (const NdPoint& p : kRrdGrid) {
    if (!proves_rrd(p.n, p.d)) return false;
  }
  return true;
}

static_assert(sizeof(kRrdGrid) / sizeof(kRrdGrid[0]) >= 12);
static_assert(proves_rrd_grid(), "random-regular audit margin malformed");

// --- lattice self-consistency ----------------------------------------------

/// position_of and node_at are exact inverses on the padded lattice, and
/// every real receiver's positions are within range — the bijection the
/// whole closed-form replay rests on.
constexpr bool proves_lattice_bijection(Count n, Count d) {
  const Lattice lat(n, d);
  for (Count k = 0; k < d; ++k) {
    for (Count x = 1; x <= lat.n_pad; ++x) {
      const Count pos = lat.position_of(k, x);
      if (pos < 1 || pos > lat.n_pad) return false;
      if (lat.node_at(k, pos) != x) return false;
    }
  }
  return true;
}

constexpr NdPoint kLatticeGrid[] = {
    {1, 1},  {2, 2},  {5, 2},  {6, 3},  {14, 2},  {15, 3},
    {40, 3}, {63, 2}, {100, 4}, {127, 2}, {255, 3}, {500, 5},
};

constexpr bool proves_lattice_grid() {
  for (const NdPoint& p : kLatticeGrid) {
    if (!proves_lattice_bijection(p.n, p.d)) return false;
  }
  return true;
}

static_assert(sizeof(kLatticeGrid) / sizeof(kLatticeGrid[0]) >= 12);
static_assert(proves_lattice_grid(),
              "structured lattice position/node maps are not inverse");

}  // namespace
}  // namespace streamcast::envelope
