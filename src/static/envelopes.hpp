// Closed-form delay/buffer envelopes of every structured scheme, constexpr.
//
// These are the pure-arithmetic halves of the bounds the paper proves —
// Theorem 2 (multi-tree h*d), Propositions 1–2 (hypercube chain), the §1
// baselines, the §2.1 super-tree structural bound, and the Kim–Srikant
// O(log N) margin for the random-regular overlay — factored out of their
// runtime modules so that:
//
//   * the scheme registry's audit-envelope callables (src/scheme) and the
//     runtime analysis modules (src/multitree, src/hypercube, src/baseline,
//     src/supertree, src/rrd) all evaluate the SAME formulas, and
//   * src/static/proofs.cpp can evaluate them in constant expressions and
//     static_assert the envelopes over a (N, d, T_c) grid — so "the bound
//     holds" becomes a property of the build, not of the runs we happened
//     to execute.
//
// Wide integers (int64) throughout: this layer sits below src/sim in the
// module DAG (tools/layers.toml) and must not import the simulation types.
#pragma once

#include <cstdint>

#include "src/static/lattice.hpp"
#include "src/util/ints.hpp"

namespace streamcast::envelope {

// --- multi-tree (§2.3, Theorem 2) ------------------------------------------

/// Tree height h = ceil( log_d [ N(1 - 1/d) + 1 ] ): the smallest h with
/// d + d^2 + ... + d^h >= N; a d = 1 forest is a chain of height N.
constexpr int tree_height(Count n, Count d) {
  if (d == 1) return static_cast<int>(n);
  // d^h >= N(1 - 1/d) + 1, kept integral: d^h >= ceil( (N(d-1) + d) / d ).
  return util::ceil_log(d, util::ceil_div(n * (d - 1) + d, d));
}

/// Theorem 2: worst-case playback delay T <= h*d; also the sufficient
/// per-node buffer size (in packets).
constexpr Count multitree_delay_bound(Count n, Count d) {
  return static_cast<Count>(tree_height(n, d)) * d;
}

/// The registry's default measurement window, 2*d*(height + 2) — mirrored
/// by session defaults and the closed-form replay (byte-match tested).
constexpr Count multitree_default_window(Count n, Count d) {
  return 2 * d * (tree_height(n, d) + 2);
}

// --- hypercube chain (§3, Propositions 1–2) --------------------------------

/// Worst-case playback delay of the single-chain scheme: the sum of the
/// cube dimensions k_s over the greedy chain decomposition (segment s
/// starts at start_{s-1} + k_{s-1} and plays k_s later, so the last
/// segment's playback is exactly the running sum).
constexpr Count hypercube_delay_bound(Count n) {
  Count total = 0;
  Count remaining = n;
  while (remaining > 0) {
    const int k = util::floor_log2(static_cast<std::uint64_t>(remaining) + 1);
    total += k;
    remaining -= (Count{1} << k) - 1;
  }
  return total;
}

/// Number of segments in the chain decomposition (the k_s are strictly
/// decreasing, so this is at most floor(log2(N + 1))).
constexpr int hypercube_segments(Count n) {
  int segments = 0;
  Count remaining = n;
  while (remaining > 0) {
    const int k = util::floor_log2(static_cast<std::uint64_t>(remaining) + 1);
    remaining -= (Count{1} << k) - 1;
    ++segments;
  }
  return segments;
}

/// Proposition 1/2 buffer envelope: O(1) buffers, measured <= 3 on every
/// audited grid. A schedule constant, not a function of N.
inline constexpr Count kHypercubeBufferBound = 3;

/// The d-group variant (§3.2 end): the chain scheme runs independently in d
/// near-even groups; the worst delay is the max over the groups' chains.
constexpr Count hypercube_grouped_delay_bound(Count n, Count d) {
  Count worst = 0;
  const Count used = d < n ? d : n;
  Count remaining = n;
  for (Count g = 0; g < used; ++g) {
    // Even split: the first (n mod used) groups take one extra node.
    const Count size = remaining / (used - g) +
                       (remaining % (used - g) != 0 ? 1 : 0);
    const Count delay = hypercube_delay_bound(size);
    if (delay > worst) worst = delay;
    remaining -= size;
  }
  return worst;
}

// --- baselines (§1) --------------------------------------------------------

/// Chain: node i receives packet j in slot j + i - 1.
constexpr Count chain_delay_bound(Count n) { return n - 1; }

/// Depth of node i in the BFS-numbered single d-ary tree (source = 0 at
/// depth 0; node p's children are d*p + 1 .. d*p + d).
constexpr int single_tree_depth(Count i, Count d) {
  int depth = 0;
  while (i > 0) {
    i = (i - 1) / d;
    ++depth;
  }
  return depth;
}

/// Single tree: every hop costs one slot, so the worst playback delay is
/// the deepest receiver's depth minus one.
constexpr Count single_tree_delay_bound(Count n, Count d) {
  return single_tree_depth(n, d) - 1;
}

// --- super-tree composition (§2.1, Theorem 1 structural form) --------------

/// Depth of the BFS-tight backbone over k clusters with source degree D and
/// interior degree D - 1: level 1 holds D supers, level L holds
/// D * (D-1)^(L-1); the depth is the smallest L whose cumulative capacity
/// reaches k. Matches supertree::build_backbone().max_depth() exactly
/// (cross-checked in tests).
constexpr int backbone_depth(Count k_clusters, Count big_d) {
  int level = 1;
  Count level_cap = big_d;
  Count total = big_d;
  while (total < k_clusters) {
    level_cap *= big_d - 1;
    total += level_cap;
    ++level;
  }
  return level;
}

/// Structural delay bound of the multi-tree super-tree composition: packet
/// j reaches the depth-L super node in slot j + L*T_c - 1, its local root
/// T_i later, and the intra-cluster round-robin adds at most its worst-case
/// delay plus one residue-alignment round.
constexpr Count supertree_structural_bound(Count k_clusters, Count big_d,
                                           Count t_c, Count t_i, Count d,
                                           Count max_cluster_size) {
  return backbone_depth(k_clusters, big_d) * t_c + t_i +
         multitree_delay_bound(max_cluster_size, d) + d;
}

/// Same composition with hypercube-chain clusters.
constexpr Count supertree_structural_bound_hypercube(Count k_clusters,
                                                     Count big_d, Count t_c,
                                                     Count t_i,
                                                     Count max_cluster_size) {
  return backbone_depth(k_clusters, big_d) * t_c + t_i +
         hypercube_delay_bound(max_cluster_size);
}

// --- random regular digraph (related work: 1308.6807) ----------------------

/// The audited Kim–Srikant margin: measured worst delays sit at ~log2(N)+1
/// (EXPERIMENTS.md E35); doubling the log term plus a d + 4 margin absorbs
/// unlucky digraph draws without making the O(log N) claim vacuous.
constexpr Count rrd_delay_bound(Count n, Count d) {
  const Count log2n = util::floor_log2(static_cast<std::uint64_t>(n)) + 1;
  return 2 * log2n + d + 4;
}

}  // namespace streamcast::envelope
