// Negative-control fixture for the compile-time envelope proofs.
//
// Compiled only by the try_compile gate in src/CMakeLists.txt, twice:
// with STREAMCAST_ENVELOPE_PERTURB = 0 the build MUST succeed (positive
// control — the assertions below hold with their exact constants), and
// with STREAMCAST_ENVELOPE_PERTURB = -1 it MUST fail (the gate aborts the
// configure if it does not). The assertions anchor on envelopes that are
// exactly tight, so shaving a single slot is detectable:
//
//   * Proposition 1: at special N = 2^k - 1 the hypercube chain's worst
//     delay is exactly k;
//   * the chain baseline's worst delay is exactly N - 1;
//   * Theorem 2's constant at (63, 2) is exactly h*d = 12.
//
// Together this proves the static_asserts in proofs.cpp have teeth: a
// too-tight envelope is a build break, not a silently-passing check.
#include "src/static/envelopes.hpp"
#include "src/static/lattice.hpp"

#ifndef STREAMCAST_ENVELOPE_PERTURB
#define STREAMCAST_ENVELOPE_PERTURB 0
#endif

namespace streamcast::envelope {

inline constexpr Count kPerturb = STREAMCAST_ENVELOPE_PERTURB;

// Proposition 1 (tight): worst delay of one 7-cube is exactly 7.
static_assert(hypercube_delay_bound(127) <= 7 + kPerturb,
              "hypercube Proposition 1 envelope perturbed below the "
              "schedule's exact worst delay");

// Chain baseline (tight): the last node plays exactly n - 1 slots late.
static_assert(chain_delay_bound(64) <= 63 + kPerturb,
              "chain envelope perturbed below the exact worst delay");

// Theorem 2's constant itself: h*d at (63, 2) is exactly 12.
static_assert(multitree_delay_bound(63, 2) <= 12 + kPerturb,
              "Theorem 2 h*d constant perturbed below its exact value");

// And the schedule itself, against its exact measured margin (worst = 10
// at (63, 2), two under h*d): the tightest envelope that admits the
// schedule, which a one-slot perturbation pushes below it.
static_assert(structured_worst_delay(63, 2) <=
                  multitree_delay_bound(63, 2) - 2 + kPerturb,
              "structured schedule exceeds the margin-exact envelope");

}  // namespace streamcast::envelope
