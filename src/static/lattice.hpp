// Compile-time model of the structured multi-tree position lattice.
//
// PR 6's closed-form replay (src/scale/replay.cpp) observed that a lossless
// structured run is a pure function of (N, d): positions, arrival offsets,
// playback delays and buffer occupancies are all integer arithmetic on the
// padded complete-forest lattice. This header is that arithmetic made
// `constexpr`, so the same formulas serve three masters from one source of
// truth:
//
//   * src/scale/replay.cpp evaluates them at runtime for the million-node
//     replay (byte-identical to the per-slot pump, regression-tested);
//   * src/multitree delegates its closed-form analysis to them;
//   * src/static/proofs.cpp evaluates them at *compile time* and
//     static_asserts the paper's Theorem 2 envelope over a (N, d) grid — a
//     violated bound is a build error, not a failed run.
//
// Everything here uses wide integers (int64) deliberately: this layer sits
// below src/sim in the module DAG (tools/layers.toml) and must not import
// the simulation vocabulary; callers narrow at the boundary.
#pragma once

#include <cstdint>
#include <numeric>

#include "src/util/ints.hpp"

namespace streamcast::envelope {

using Count = std::int64_t;

/// The structured position lattice (src/multitree/structured.cpp) with the
/// per-call Forest construction stripped: O(1) arithmetic in both
/// directions between node keys and per-tree positions.
struct Lattice {
  Count n = 0;
  Count d = 0;
  Count interior = 0;  // I = ceil(n/d) - 1
  Count n_pad = 0;     // d * (I + 1)
  Count p = 1;         // intra-group rotation period P = d / gcd(I, d)

  constexpr Lattice(Count n_in, Count d_in) : n(n_in), d(d_in) {
    interior = util::ceil_div(n, d) - 1;
    n_pad = d * (interior + 1);
    p = interior == 0 ? 1 : d / std::gcd(interior, d);
  }

  /// multitree::structured_position without the shape Forest.
  constexpr Count position_of(Count k, Count x) const {
    if (x > d * interior) {
      const Count j = x - d * interior - 1;
      return d * interior + (j + k) % d + 1;
    }
    const Count i = (x - 1) / interior;
    const Count j = (x - 1) % interior;
    const Count block = ((i - k) % d + d) % d;
    const Count slot = (j + k / p) % interior;
    return block * interior + slot + 1;
  }

  /// Exact inverse (multitree::structured_node_at without the Forest).
  constexpr Count node_at(Count k, Count pos) const {
    if (pos > d * interior) {
      const Count off = pos - d * interior - 1;
      const Count j = util::mod_floor(off - k, d);
      return d * interior + j + 1;
    }
    const Count block = (pos - 1) / interior;
    const Count slot = (pos - 1) % interior;
    const Count i = (block + k) % d;
    const Count j = util::mod_floor(slot - k / p, interior);
    return i * interior + j + 1;
  }

  /// Depth of a position (source = 0), i.e. Forest::depth_of.
  constexpr int depth_of(Count pos) const {
    int depth = 0;
    while (pos > 0) {
      pos = (pos - 1) / d;
      ++depth;
    }
    return depth;
  }
};

/// Arrival offset A(p) of the round-robin schedule (§2.2.3, identical for
/// every tree): tree-k packet k + m*d reaches position p at slot m*d + A(p).
/// The recurrence of multitree::arrival_offsets, evaluated up the parent
/// chain:  A(child at index c of q) = A(q) + 1 + ((c - A(q) - 1) mod d),
/// with A(p) = (p - 1) mod d in level 1.
constexpr Count arrival_offset(Count pos, Count d) {
  const Count c = (pos - 1) % d;
  if (pos <= d) return c;
  const Count parent = arrival_offset((pos - 1) / d, d);
  return parent + 1 + util::mod_floor(c - parent - 1, d);
}

/// Closed-form playback delay a(x) of receiver x (pre-recorded mode):
/// max over trees k of A(pos_k(x)) - k, clamped at 0.
constexpr Count structured_delay(const Lattice& lat, Count x) {
  Count a = 0;
  for (Count k = 0; k < lat.d; ++k) {
    const Count c = arrival_offset(lat.position_of(k, x), lat.d) - k;
    if (c > a) a = c;
  }
  return a;
}

/// Worst-case playback delay over all receivers — the left-hand side of
/// Theorem 2, computed from the schedule itself rather than claimed.
constexpr Count structured_worst_delay(Count n, Count d) {
  const Lattice lat(n, d);
  Count worst = 0;
  for (Count x = 1; x <= n; ++x) {
    const Count a = structured_delay(lat, x);
    if (a > worst) worst = a;
  }
  return worst;
}

/// Closed-form delay of the pipelined live mode (the analysis the paper
/// skips): the source's send of tree-k packet k + m*d to child r slips by d
/// exactly when r < k, and the slip propagates unchanged down the subtree,
/// so  a_pipe(x) = max_k ( A(pos_k(x)) - k + (r1_k(x) < k ? d : 0) )  with
/// r1_k(x) the child index of x's level-1 ancestor in tree k.
constexpr Count structured_delay_pipelined(const Lattice& lat, Count x) {
  Count a = 0;
  for (Count k = 0; k < lat.d; ++k) {
    Count pos = lat.position_of(k, x);
    Count level1 = pos;
    while (level1 > lat.d) level1 = (level1 - 1) / lat.d;
    const Count r1 = (level1 - 1) % lat.d;
    const Count c =
        arrival_offset(pos, lat.d) - k + (r1 < k ? lat.d : 0);
    if (c > a) a = c;
  }
  return a;
}

constexpr Count structured_worst_delay_pipelined(Count n, Count d) {
  const Lattice lat(n, d);
  Count worst = 0;
  for (Count x = 1; x <= n; ++x) {
    const Count a = structured_delay_pipelined(lat, x);
    if (a > worst) worst = a;
  }
  return worst;
}

/// Max buffer occupancy of receiver x at playback start (receive capacity 1
/// puts the maximum exactly there): the number of window packets arrived by
/// slot a(x), counted residue by residue — the closed form of
/// src/scale/replay.cpp, proved there against metrics::max_buffer_occupancy
/// on the full small-N grid.
constexpr Count structured_occupancy(const Lattice& lat, Count x,
                                     Count window) {
  const Count a = structured_delay(lat, x);
  Count occ = 0;
  for (Count k = 0; k < lat.d && k < window; ++k) {
    const Count c = arrival_offset(lat.position_of(k, x), lat.d) - k;
    const Count num = a - c - k;
    if (num < 0) continue;
    const Count cap = (window - 1 - k) / lat.d;
    const Count hi = num / lat.d < cap ? num / lat.d : cap;
    occ += hi + 1;
  }
  return occ;
}

/// Worst-case occupancy over all receivers — the buffer half of Theorem 2.
constexpr Count structured_max_buffer(Count n, Count d, Count window) {
  const Lattice lat(n, d);
  Count worst = 0;
  for (Count x = 1; x <= n; ++x) {
    const Count occ = structured_occupancy(lat, x, window);
    if (occ > worst) worst = occ;
  }
  return worst;
}

}  // namespace streamcast::envelope
