// Synthetic churn workloads: Poisson arrivals with exponentially
// distributed session lifetimes — the standard model of P2P measurement
// studies, used to drive the appendix churn experiments with realistic
// (rather than adversarial) event sequences. Fully deterministic given the
// seed, per DESIGN.md §5.
#pragma once

#include <cstdint>
#include <vector>

#include "src/sim/packet.hpp"
#include "src/util/prng.hpp"

namespace streamcast::workload {

using sim::NodeKey;
using sim::Slot;

struct TraceConfig {
  /// Expected arrivals per slot (Poisson).
  double arrival_rate = 0.05;
  /// Mean session lifetime in slots (exponential).
  double mean_lifetime = 400;
  /// Trace length in slots.
  Slot horizon = 2000;
  /// Peers present at slot 0 (they draw lifetimes like everyone else).
  NodeKey initial_n = 50;
  std::uint64_t seed = 1;
};

struct TraceEvent {
  Slot slot = 0;
  bool arrival = false;
  /// Stable peer label: initial peers are 0..initial_n-1; later arrivals
  /// continue the numbering in arrival order. A departure names the peer
  /// that leaves.
  std::int64_t peer = 0;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// Generates the event list sorted by slot (arrivals before departures
/// within a slot). Every peer departs at most once; departures beyond the
/// horizon are dropped (the peer simply outlives the trace). Initial peers
/// produce no arrival events, only (possibly) departures.
std::vector<TraceEvent> generate_churn_trace(const TraceConfig& config);

/// Peers still present at the end of the trace.
NodeKey survivors(const TraceConfig& config,
                  const std::vector<TraceEvent>& trace);

}  // namespace streamcast::workload
