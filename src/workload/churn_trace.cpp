#include "src/workload/churn_trace.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace streamcast::workload {

namespace {

/// Exponential variate with the given mean (inverse CDF; u in (0,1]).
double exponential(util::Prng& rng, double mean) {
  const double u = 1.0 - rng.uniform();  // (0, 1]
  return -mean * std::log(u);
}

}  // namespace

std::vector<TraceEvent> generate_churn_trace(const TraceConfig& config) {
  if (config.arrival_rate < 0) throw std::invalid_argument("negative rate");
  if (config.mean_lifetime <= 0) throw std::invalid_argument("lifetime <= 0");
  if (config.horizon < 1) throw std::invalid_argument("horizon < 1");
  if (config.initial_n < 0) throw std::invalid_argument("initial_n < 0");

  util::Prng rng(config.seed);
  std::vector<TraceEvent> events;
  std::int64_t next_peer = 0;

  const auto schedule_departure = [&](std::int64_t peer, Slot born) {
    const Slot death =
        born + std::max<Slot>(1, static_cast<Slot>(std::llround(
                                     exponential(rng, config.mean_lifetime))));
    if (death < config.horizon) {
      events.push_back(TraceEvent{.slot = death, .arrival = false,
                                  .peer = peer});
    }
  };

  for (NodeKey i = 0; i < config.initial_n; ++i) {
    schedule_departure(next_peer++, 0);
  }
  // Poisson arrivals: exponential inter-arrival times with mean 1/rate.
  if (config.arrival_rate > 0) {
    double t = exponential(rng, 1.0 / config.arrival_rate);
    while (static_cast<Slot>(t) < config.horizon) {
      const Slot born = static_cast<Slot>(t);
      const std::int64_t peer = next_peer++;
      events.push_back(TraceEvent{.slot = born, .arrival = true,
                                  .peer = peer});
      schedule_departure(peer, born);
      t += exponential(rng, 1.0 / config.arrival_rate);
    }
  }

  std::ranges::stable_sort(events, [](const TraceEvent& a,
                                      const TraceEvent& b) {
    if (a.slot != b.slot) return a.slot < b.slot;
    return a.arrival && !b.arrival;  // arrivals first within a slot
  });
  return events;
}

NodeKey survivors(const TraceConfig& config,
                  const std::vector<TraceEvent>& trace) {
  NodeKey n = config.initial_n;
  for (const TraceEvent& e : trace) n += e.arrival ? 1 : -1;
  return n;
}

}  // namespace streamcast::workload
