#include "src/fluid/bounds.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/util/ints.hpp"

namespace streamcast::fluid {

double max_streaming_rate(NodeKey n, double u_s, double u_p) {
  if (n < 1) throw std::invalid_argument("n < 1");
  return std::min(u_s, (u_s + static_cast<double>(n) * u_p) /
                           static_cast<double>(n));
}

Slot min_worst_delay(NodeKey n, int d) {
  if (n < 1) throw std::invalid_argument("n < 1");
  if (d < 1) throw std::invalid_argument("d < 1");
  Slot t = 0;
  std::int64_t holders = 0;
  while (holders < n) {
    holders = 2 * holders + d;
    ++t;
  }
  return t;
}

Slot min_worst_delay_unicast_source(NodeKey n) {
  if (n < 1) throw std::invalid_argument("n < 1");
  return util::ceil_log2(static_cast<std::uint64_t>(n)) + 1;
}

double min_average_delay(NodeKey n, int d) {
  if (n < 1) throw std::invalid_argument("n < 1");
  if (d < 1) throw std::invalid_argument("d < 1");
  // Receiver rank i (1-based) is reachable no earlier than the slot holders
  // first reach i; sum the per-rank minima in O(log n) by level counts.
  double sum = 0;
  std::int64_t holders = 0;
  Slot t = 0;
  NodeKey counted = 0;
  while (counted < n) {
    const std::int64_t next = 2 * holders + d;
    ++t;
    const NodeKey new_ranks = static_cast<NodeKey>(
        std::min<std::int64_t>(next, n) - std::min<std::int64_t>(holders, n));
    sum += static_cast<double>(new_ranks) * static_cast<double>(t);
    counted += new_ranks;
    holders = next;
  }
  return sum / static_cast<double>(n);
}

int min_substreams_for_unit_uplink(int d) {
  // With every node's uplink capped at the stream rate, a node can fully
  // forward at most one of d rate-(1/d) sub-streams to d children; fewer
  // than d sub-streams forces some node above unit uplink (the §1 binary-
  // tree argument). Hence exactly d.
  if (d < 1) throw std::invalid_argument("d < 1");
  return d;
}

}  // namespace streamcast::fluid
