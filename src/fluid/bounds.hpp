// Fluid-flow performance bounds for peer-assisted live streaming, after
// Liu, Zhang-Shen, Jiang, Rexford, Chiang (SIGMETRICS 2008) — the work the
// paper contrasts its packet model against ("they assume a potentially
// unlimited source capacity, they do not constrain trees to be
// interior-disjoint, etc."). Implemented here so the gap between the
// paper's constructive schemes and the information-theoretic limits can be
// measured (bench/fluid_gap).
//
// Model: a chunk enters at the source (upload capacity d chunks/slot); every
// peer holding it can upload one copy per slot ("snowball streaming").
// Holder count therefore obeys h(t+1) = 2 h(t) + d, h(0) = 0, i.e.
// h(t) = d (2^t - 1): the minimum worst-case playback delay for N peers is
// the smallest t with h(t) >= N. The §3.1 hypercube scheme meets this bound
// with equality at d = 1, N = 2^k - 1 — Proposition 1 is optimal.
#pragma once

#include "src/sim/packet.hpp"

namespace streamcast::fluid {

using sim::NodeKey;
using sim::Slot;

/// Maximum sustainable streaming rate (chunks/slot) with source capacity
/// u_s and per-peer upload u_p: min(u_s, (u_s + N u_p) / N) — the fluid
/// capacity constraint. The paper's model fixes u_p = 1 and rate 1.
double max_streaming_rate(NodeKey n, double u_s, double u_p);

/// Minimum worst-case playback delay (in slots) to deliver each chunk to
/// all N peers when the source uploads d copies/slot and every holder one:
/// smallest t with d(2^t - 1) >= N. This dedicates the source to the chunk
/// every slot — more generous than any streaming source can be, hence a
/// universal lower bound.
Slot min_worst_delay(NodeKey n, int d);

/// Tighter variant for streaming sources that emit each chunk exactly once
/// (as all of the paper's schemes do: S sends packet j to a single child):
/// one holder after slot 1, doubling thereafter — ceil(log2(N)) + 1 slots.
/// Proposition 1's hypercube meets this with equality at N = 2^k - 1.
Slot min_worst_delay_unicast_source(NodeKey n);

/// Lower bound on the *average* playback delay under the same snowball
/// dynamics: the i-th earliest receiver of a chunk cannot get it before
/// ceil(log2(i/d + 1)) slots, so averaging the per-rank minima bounds any
/// scheme's average delay.
double min_average_delay(NodeKey n, int d);

/// Minimum number of distinct trees (sub-streams) needed so that every peer
/// uploads at most the stream rate while all N receive rate 1, given the
/// source sends d sub-streams: the paper's d interior-disjoint trees hit
/// this minimum (each node interior in exactly one tree).
int min_substreams_for_unit_uplink(int d);

}  // namespace streamcast::fluid
