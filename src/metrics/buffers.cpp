#include "src/metrics/buffers.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace streamcast::metrics {

std::vector<std::size_t> occupancy_series(std::span<const Slot> arrivals,
                                          Slot start) {
  assert(!arrivals.empty());
  const auto window = static_cast<PacketId>(arrivals.size());
  Slot last = start + window - 1;  // slot the final window packet plays
  for (const Slot a : arrivals) {
    if (a < 0) throw std::logic_error("occupancy of an incomplete window");
    last = std::max(last, a);
  }
  // received_by[t] = packets with recv <= t.
  std::vector<std::size_t> received_delta(static_cast<std::size_t>(last) + 2,
                                          0);
  for (const Slot a : arrivals) ++received_delta[static_cast<std::size_t>(a)];

  // Peak (during-slot) occupancy: a packet occupies the buffer through the
  // slot in which it is played, so occ(t) counts packets received by t minus
  // packets played strictly before t. This matches the paper's node-1
  // example (§2.3): arrivals in slots 0,2,1 with playback from slot 3 peak
  // at a buffer of 3.
  std::vector<std::size_t> series(static_cast<std::size_t>(last) + 1, 0);
  std::size_t received = 0;
  for (Slot t = 0; t <= last; ++t) {
    received += received_delta[static_cast<std::size_t>(t)];
    const auto played_before =
        static_cast<std::size_t>(std::clamp<Slot>(t - start, 0, window));
    // A packet played before it arrived would make this underflow; callers
    // must pass start >= the node's playback delay.
    if (received < played_before) {
      throw std::logic_error("playback start precedes feasibility");
    }
    series[static_cast<std::size_t>(t)] = received - played_before;
  }
  return series;
}

std::size_t max_buffer_occupancy(std::span<const Slot> arrivals, Slot start) {
  const auto series = occupancy_series(arrivals, start);
  return *std::ranges::max_element(series);
}

std::vector<std::size_t> max_occupancies(const DelayRecorder& delays,
                                         NodeKey from, NodeKey to) {
  std::vector<std::size_t> out;
  out.reserve(static_cast<std::size_t>(to - from + 1));
  for (NodeKey n = from; n <= to; ++n) {
    const auto a = delays.playback_delay(n);
    if (!a) throw std::logic_error("incomplete node window");
    std::vector<Slot> row(static_cast<std::size_t>(delays.window()));
    for (PacketId j = 0; j < delays.window(); ++j) {
      row[static_cast<std::size_t>(j)] = delays.arrival(n, j);
    }
    out.push_back(max_buffer_occupancy(row, *a));
  }
  return out;
}

}  // namespace streamcast::metrics
