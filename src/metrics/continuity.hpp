// Playback-continuity accounting — the smoothness axis of Joshi et al.
// ("Throughput-Smoothness Trade-offs in Multicasting of an Ordered Packet
// Stream") for lossy runs.
//
// The paper's playback delay a(i) is the smallest start slot such that
// playing packet j in slot a(i)+j never stalls. Under loss a receiver that
// commits to some start slot may stall anyway: the ContinuityRecorder
// replays that decision post-hoc. Playback starts at `playback_start`,
// consumes one packet per slot, stalls while the next packet has not yet
// arrived, and skips packets that never arrive by the horizon (undecodable
// gaps). A run with zero stalls and zero undecodable packets is exactly a
// run whose playback delay is <= playback_start — the bridge between the
// paper's delay metric and the stall metrics reported here (DESIGN.md,
// "Loss & Recovery").
//
// Attach the recorder to the RecoveryProtocol (post-repair stream), not the
// engine, so repaired and FEC-decoded packets count as arrivals; it also
// tallies repair traffic (retransmissions, parity) for the redundancy
// overhead figure.
#pragma once

#include <vector>

#include "src/sim/engine.hpp"

namespace streamcast::metrics {

using sim::Delivery;
using sim::NodeKey;
using sim::PacketId;
using sim::Slot;

class ContinuityRecorder final : public sim::DeliveryObserver {
 public:
  /// Tracks nodes [0, nodes) and packets [0, window).
  ContinuityRecorder(NodeKey nodes, PacketId window);

  void on_delivery(const Delivery& d) override;

  struct Report {
    /// Maximal stall intervals (consecutive stalled slots count once).
    int stalls = 0;
    /// Total slots spent stalled.
    Slot stall_slots = 0;
    /// Packets of the window that never arrived by the horizon.
    PacketId undecodable = 0;
    /// Lengths of the maximal runs of undecodable packets (the gap
    /// distribution; empty when the stream is complete).
    std::vector<PacketId> gap_lengths;
    /// Slot after the last played packet (horizon if playback never
    /// finished).
    Slot finish_slot = 0;
  };

  /// Replays playback for `node` starting at slot `playback_start` with
  /// everything that arrived before `horizon`.
  Report report(NodeKey node, Slot playback_start, Slot horizon) const;

  /// First arrival slot of packet p at node, or metrics::kNeverArrived.
  Slot arrival(NodeKey node, PacketId p) const;

  /// Earliest arrival slot of any window packet at node, or
  /// metrics::kNeverArrived when nothing arrived (startup policies anchor
  /// their prebuffer here).
  Slot first_arrival(NodeKey node) const;

  /// Repair traffic per data delivery observed: (retransmissions + parity)
  /// / data deliveries.
  double redundancy_overhead() const;

  std::int64_t data_deliveries() const { return data_; }
  std::int64_t repair_deliveries() const { return retransmissions_; }
  std::int64_t parity_deliveries() const { return parity_; }

  PacketId window() const { return window_; }

 private:
  const Slot* row(NodeKey node) const {
    return arrival_.data() +
           static_cast<std::size_t>(node) * static_cast<std::size_t>(window_);
  }

  PacketId window_;
  NodeKey nodes_;
  /// Flat [node][packet] minimum-arrival matrix, stride window_.
  std::vector<Slot> arrival_;
  std::int64_t data_ = 0;
  std::int64_t retransmissions_ = 0;
  std::int64_t parity_ = 0;
};

}  // namespace streamcast::metrics
