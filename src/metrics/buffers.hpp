// Buffer-occupancy accounting, computed post-hoc from arrival times.
//
// Given a node's arrival slots for packets [0, window) and a playback start
// slot a, the buffer *during* slot t holds every packet received by t and
// not played strictly before t:  occ(t) = #{ j : recv(j) <= t } - max(0, t-a)
// (clamped to the window). A packet therefore occupies the buffer through
// its own playback slot, matching the paper's node-1 buffer-of-3 example.
// Theorem 2's corollary says max_t occ(t) <= h*d when a <= h*d.
#pragma once

#include <span>
#include <vector>

#include "src/metrics/delay.hpp"

namespace streamcast::metrics {

/// Maximum buffer occupancy over the whole run, given playback start `start`.
/// `arrivals[j]` is the receive slot of packet j (all must be >= 0).
std::size_t max_buffer_occupancy(std::span<const Slot> arrivals, Slot start);

/// Full occupancy time series from slot 0 through the slot the last packet of
/// the window is played; index t holds occ(t).
std::vector<std::size_t> occupancy_series(std::span<const Slot> arrivals,
                                          Slot start);

/// Convenience: per-node maximum occupancy for nodes [from, to], playing each
/// node at its own playback delay a(i) (the scheme's natural start).
/// Precondition: each node's window is complete.
std::vector<std::size_t> max_occupancies(const DelayRecorder& delays,
                                         NodeKey from, NodeKey to);

}  // namespace streamcast::metrics
