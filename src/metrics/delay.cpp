#include "src/metrics/delay.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace streamcast::metrics {

DelayRecorder::DelayRecorder(NodeKey nodes, PacketId window)
    : window_(window) {
  assert(nodes >= 1);
  assert(window >= 1);
  arrival_.assign(
      static_cast<std::size_t>(nodes) * static_cast<std::size_t>(window),
      kNeverArrived);
  missing_.assign(static_cast<std::size_t>(nodes), window);
}

void DelayRecorder::on_delivery(const Delivery& d) {
  if (d.tx.packet >= window_) return;
  if (d.tx.to >= nodes()) return;
  auto& cell = row(d.tx.to)[static_cast<std::size_t>(d.tx.packet)];
  if (cell == kNeverArrived) {
    cell = d.received;
    --missing_[static_cast<std::size_t>(d.tx.to)];
  }
}

Slot DelayRecorder::arrival(NodeKey node, PacketId p) const {
  assert(p >= 0 && p < window_);
  return row(node)[static_cast<std::size_t>(p)];
}

bool DelayRecorder::complete(NodeKey node) const {
  return missing_[static_cast<std::size_t>(node)] == 0;
}

std::optional<Slot> DelayRecorder::playback_delay(NodeKey node) const {
  if (!complete(node)) return std::nullopt;
  const Slot* arrivals = row(node);
  Slot a = 0;  // arrival(0) >= 0, so the max is never negative
  for (PacketId j = 0; j < window_; ++j) {
    a = std::max(a, arrivals[static_cast<std::size_t>(j)] - j);
  }
  return a;
}

std::vector<Slot> DelayRecorder::delays(NodeKey from, NodeKey to) const {
  std::vector<Slot> out;
  out.reserve(static_cast<std::size_t>(to - from + 1));
  for (NodeKey n = from; n <= to; ++n) {
    const auto a = playback_delay(n);
    if (!a) {
      throw std::logic_error("node " + std::to_string(n) +
                             " did not receive the full packet window");
    }
    out.push_back(*a);
  }
  return out;
}

Slot DelayRecorder::worst_delay(NodeKey from, NodeKey to) const {
  const auto all = delays(from, to);
  return *std::ranges::max_element(all);
}

double DelayRecorder::average_delay(NodeKey from, NodeKey to) const {
  const auto all = delays(from, to);
  double sum = 0;
  for (const Slot a : all) sum += static_cast<double>(a);
  return sum / static_cast<double>(all.size());
}

}  // namespace streamcast::metrics
