// Scalar summaries used by the benchmark tables.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "src/sim/packet.hpp"

namespace streamcast::metrics {

struct Summary {
  std::size_t n = 0;
  double min = 0;
  double max = 0;
  double mean = 0;
  double p50 = 0;
  double p95 = 0;
};

/// Five-number-ish summary; percentiles by nearest-rank on a sorted copy.
Summary summarize(std::span<const double> values);

/// Convenience overloads for the integer series our recorders produce.
Summary summarize(std::span<const sim::Slot> values);
Summary summarize(std::span<const std::size_t> values);

}  // namespace streamcast::metrics
