// Neighbor accounting: the paper's "communication requirement" metric is the
// number of distinct nodes a node exchanges packets with (multi-tree: <= 2d;
// hypercube: O(log N); Table 1).
#pragma once

#include <set>
#include <vector>

#include "src/sim/engine.hpp"

namespace streamcast::metrics {

using sim::Delivery;
using sim::NodeKey;

class NeighborRecorder final : public sim::DeliveryObserver {
 public:
  explicit NeighborRecorder(NodeKey nodes);

  void on_delivery(const Delivery& d) override;

  /// Distinct nodes this node sent to or received from.
  std::size_t count(NodeKey node) const;

  /// Max / mean neighbor count over nodes [from, to] inclusive.
  std::size_t max_count(NodeKey from, NodeKey to) const;
  double mean_count(NodeKey from, NodeKey to) const;

  const std::set<NodeKey>& neighbors(NodeKey node) const;

 private:
  std::vector<std::set<NodeKey>> partners_;
};

}  // namespace streamcast::metrics
