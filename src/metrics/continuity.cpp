#include "src/metrics/continuity.hpp"

#include <cassert>

#include "src/metrics/delay.hpp"

namespace streamcast::metrics {

ContinuityRecorder::ContinuityRecorder(NodeKey nodes, PacketId window)
    : window_(window), nodes_(nodes) {
  assert(nodes >= 1);
  assert(window >= 1);
  arrival_.assign(
      static_cast<std::size_t>(nodes) * static_cast<std::size_t>(window),
      kNeverArrived);
}

void ContinuityRecorder::on_delivery(const Delivery& d) {
  if (d.tx.packet >= sim::kControlIdBase) {
    ++parity_;
    return;
  }
  if (d.tx.retransmit) {
    ++retransmissions_;
  } else {
    ++data_;
  }
  if (d.tx.packet >= window_) return;
  if (d.tx.to < 0 || d.tx.to >= nodes_) return;
  auto& cell = arrival_[static_cast<std::size_t>(d.tx.to) *
                            static_cast<std::size_t>(window_) +
                        static_cast<std::size_t>(d.tx.packet)];
  if (cell == kNeverArrived || d.received < cell) cell = d.received;
}

Slot ContinuityRecorder::arrival(NodeKey node, PacketId p) const {
  assert(p >= 0 && p < window_);
  return row(node)[static_cast<std::size_t>(p)];
}

Slot ContinuityRecorder::first_arrival(NodeKey node) const {
  const Slot* arrivals = row(node);
  Slot first = kNeverArrived;
  for (PacketId j = 0; j < window_; ++j) {
    const Slot got = arrivals[static_cast<std::size_t>(j)];
    if (got == kNeverArrived) continue;
    if (first == kNeverArrived || got < first) first = got;
  }
  return first;
}

ContinuityRecorder::Report ContinuityRecorder::report(NodeKey node,
                                                      Slot playback_start,
                                                      Slot horizon) const {
  const Slot* arrivals = row(node);
  Report r;
  Slot t = playback_start;
  PacketId gap_run = 0;
  for (PacketId j = 0; j < window_; ++j) {
    const Slot got = arrivals[static_cast<std::size_t>(j)];
    if (got == kNeverArrived || got >= horizon) {
      // Never decodable within the run: playback skips the packet.
      ++r.undecodable;
      ++gap_run;
      continue;
    }
    if (gap_run > 0) {
      r.gap_lengths.push_back(gap_run);
      gap_run = 0;
    }
    if (got > t) {
      // Wait for the packet. Consecutive packets that both stall are
      // separated by the first one playing, so each wait is its own stall
      // event; the slots spent waiting for one packet count once.
      ++r.stalls;
      r.stall_slots += got - t;
      t = got;
    }
    ++t;  // the packet plays during slot t
  }
  if (gap_run > 0) r.gap_lengths.push_back(gap_run);
  r.finish_slot = t;
  return r;
}

double ContinuityRecorder::redundancy_overhead() const {
  if (data_ == 0) return 0.0;
  return static_cast<double>(retransmissions_ + parity_) /
         static_cast<double>(data_);
}

}  // namespace streamcast::metrics
