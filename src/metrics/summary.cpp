#include "src/metrics/summary.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace streamcast::metrics {

namespace {

double nearest_rank(const std::vector<double>& sorted, double q) {
  assert(!sorted.empty());
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  const std::size_t idx = rank == 0 ? 0 : rank - 1;
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

Summary summarize(std::span<const double> values) {
  Summary s;
  s.n = values.size();
  if (values.empty()) return s;
  std::vector<double> sorted(values.begin(), values.end());
  std::ranges::sort(sorted);
  s.min = sorted.front();
  s.max = sorted.back();
  double sum = 0;
  for (const double v : sorted) sum += v;
  s.mean = sum / static_cast<double>(sorted.size());
  s.p50 = nearest_rank(sorted, 0.50);
  s.p95 = nearest_rank(sorted, 0.95);
  return s;
}

Summary summarize(std::span<const sim::Slot> values) {
  std::vector<double> v(values.size());
  std::ranges::transform(values, v.begin(),
                         [](sim::Slot s) { return static_cast<double>(s); });
  return summarize(v);
}

Summary summarize(std::span<const std::size_t> values) {
  std::vector<double> v(values.size());
  std::ranges::transform(values, v.begin(), [](std::size_t s) {
    return static_cast<double>(s);
  });
  return summarize(v);
}

}  // namespace streamcast::metrics
