// Playback-delay accounting (§2.3 of the paper).
//
// The recorder observes deliveries for a fixed window of packets [0, window)
// and computes, per node, the playback delay
//     a(i) = max_j (recv_i(j) - j),
// the smallest start slot such that playing packet j in slot a(i)+j never
// stalls (a packet may play in the slot it arrives; DESIGN.md §3).
#pragma once

#include <optional>
#include <vector>

#include "src/sim/engine.hpp"

namespace streamcast::metrics {

using sim::Delivery;
using sim::NodeKey;
using sim::PacketId;
using sim::Slot;

inline constexpr Slot kNeverArrived = -1;

class DelayRecorder final : public sim::DeliveryObserver {
 public:
  /// Tracks nodes [0, nodes) and packets [0, window). Deliveries outside the
  /// window are ignored (the schemes stream forever; the window is where we
  /// measure).
  DelayRecorder(NodeKey nodes, PacketId window);

  void on_delivery(const Delivery& d) override;

  /// First arrival slot of packet p at node, or kNeverArrived.
  Slot arrival(NodeKey node, PacketId p) const;

  /// True iff node received every packet in the window.
  bool complete(NodeKey node) const;

  /// Playback delay a(node); nullopt until the node's window is complete.
  std::optional<Slot> playback_delay(NodeKey node) const;

  /// Worst / average playback delay over nodes [from, to] inclusive.
  /// Precondition: every node in the range is complete.
  Slot worst_delay(NodeKey from, NodeKey to) const;
  double average_delay(NodeKey from, NodeKey to) const;

  /// All per-node delays over [from, to] inclusive, in node order.
  std::vector<Slot> delays(NodeKey from, NodeKey to) const;

  PacketId window() const { return window_; }
  NodeKey nodes() const { return static_cast<NodeKey>(missing_.size()); }

 private:
  Slot* row(NodeKey node) {
    return arrival_.data() +
           static_cast<std::size_t>(node) * static_cast<std::size_t>(window_);
  }
  const Slot* row(NodeKey node) const {
    return arrival_.data() +
           static_cast<std::size_t>(node) * static_cast<std::size_t>(window_);
  }

  PacketId window_;
  /// Flat [node][packet] first-arrival matrix, stride window_ — one
  /// contiguous allocation instead of a heap row per node.
  std::vector<Slot> arrival_;
  std::vector<PacketId> missing_;  // packets still unseen per node
};

}  // namespace streamcast::metrics
