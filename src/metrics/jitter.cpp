#include "src/metrics/jitter.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace streamcast::metrics {

namespace {

JitterStats from_gaps(const std::vector<Slot>& gaps) {
  JitterStats s;
  s.samples = gaps.size();
  if (gaps.empty()) return s;
  s.min_gap = *std::ranges::min_element(gaps);
  s.max_gap = *std::ranges::max_element(gaps);
  double sum = 0;
  for (const Slot g : gaps) sum += static_cast<double>(g);
  s.mean_gap = sum / static_cast<double>(gaps.size());
  for (const Slot g : gaps) {
    s.peak_deviation = std::max(
        s.peak_deviation, std::abs(static_cast<double>(g) - s.mean_gap));
  }
  return s;
}

}  // namespace

JitterStats stride_jitter(const DelayRecorder& delays, NodeKey node,
                          PacketId stride, PacketId warmup) {
  if (stride < 1) throw std::invalid_argument("stride < 1");
  std::vector<Slot> gaps;
  for (PacketId j = warmup; j + stride < delays.window(); ++j) {
    const Slot a = delays.arrival(node, j);
    const Slot b = delays.arrival(node, j + stride);
    if (a == kNeverArrived || b == kNeverArrived) continue;
    gaps.push_back(b - a);
  }
  return from_gaps(gaps);
}

JitterStats event_jitter(const DelayRecorder& delays, NodeKey node,
                         PacketId warmup) {
  std::vector<Slot> arrivals;
  for (PacketId j = warmup; j < delays.window(); ++j) {
    const Slot a = delays.arrival(node, j);
    if (a != kNeverArrived) arrivals.push_back(a);
  }
  std::ranges::sort(arrivals);
  std::vector<Slot> gaps;
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    gaps.push_back(arrivals[i] - arrivals[i - 1]);
  }
  return from_gaps(gaps);
}

}  // namespace streamcast::metrics
