#include "src/metrics/neighbors.hpp"

#include <algorithm>
#include <cassert>

namespace streamcast::metrics {

NeighborRecorder::NeighborRecorder(NodeKey nodes) {
  assert(nodes >= 1);
  partners_.resize(static_cast<std::size_t>(nodes));
}

void NeighborRecorder::on_delivery(const Delivery& d) {
  if (d.tx.from < static_cast<NodeKey>(partners_.size())) {
    partners_[static_cast<std::size_t>(d.tx.from)].insert(d.tx.to);
  }
  if (d.tx.to < static_cast<NodeKey>(partners_.size())) {
    partners_[static_cast<std::size_t>(d.tx.to)].insert(d.tx.from);
  }
}

std::size_t NeighborRecorder::count(NodeKey node) const {
  return partners_[static_cast<std::size_t>(node)].size();
}

const std::set<NodeKey>& NeighborRecorder::neighbors(NodeKey node) const {
  return partners_[static_cast<std::size_t>(node)];
}

std::size_t NeighborRecorder::max_count(NodeKey from, NodeKey to) const {
  std::size_t best = 0;
  for (NodeKey n = from; n <= to; ++n) best = std::max(best, count(n));
  return best;
}

double NeighborRecorder::mean_count(NodeKey from, NodeKey to) const {
  assert(from <= to);
  double sum = 0;
  for (NodeKey n = from; n <= to; ++n) {
    sum += static_cast<double>(count(n));
  }
  return sum / static_cast<double>(to - from + 1);
}

}  // namespace streamcast::metrics
