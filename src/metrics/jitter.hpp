// Inter-arrival jitter — the regularity property behind hiccup-free
// playback. The paper's Observation 2 (§2.3 proof): "if one node receives
// packet j in time slot t, then it will definitely receive packet (j+d) in
// time slot (t+d)" — i.e. per-tree inter-arrival gaps are *exactly* d in
// steady state, which is what lets a node start playback after one packet
// per tree and never stall. This module measures arrival-gap statistics
// from a DelayRecorder so that regularity becomes a testable invariant for
// every scheme.
#pragma once

#include <vector>

#include "src/metrics/delay.hpp"

namespace streamcast::metrics {

struct JitterStats {
  Slot min_gap = 0;   // smallest gap between consecutive arrivals
  Slot max_gap = 0;   // largest gap
  double mean_gap = 0;
  /// Largest deviation of any gap from the mean — 0 means perfectly
  /// periodic delivery.
  double peak_deviation = 0;
  std::size_t samples = 0;
};

/// Gap statistics of node's arrivals ordered by *packet id stride*: for
/// stride s, gaps are recv(j+s) - recv(j) for all j. The multi-tree scheme
/// is exactly periodic at stride d (every gap == d past warm-up); the
/// hypercube at stride 1.
JitterStats stride_jitter(const DelayRecorder& delays, NodeKey node,
                          PacketId stride, PacketId warmup = 0);

/// Gap statistics of the node's arrival *events* in time order (how bursty
/// the receive pattern is, independent of packet order).
JitterStats event_jitter(const DelayRecorder& delays, NodeKey node,
                         PacketId warmup = 0);

}  // namespace streamcast::metrics
