#include "src/scale/recorder.hpp"

#include <cassert>
#include <stdexcept>
#include <string>

namespace streamcast::scale {

ScaleDelayRecorder::ScaleDelayRecorder(NodeKey nodes, PacketId window,
                                       util::BudgetLedger* ledger)
    : window_(window) {
  assert(nodes >= 1);
  assert(window >= 1);
  const std::size_t cells =
      static_cast<std::size_t>(nodes) * static_cast<std::size_t>(window);
  if (ledger != nullptr) {
    ledger->charge("scale/delay-recorder",
                   cells * sizeof(std::int32_t) +
                       static_cast<std::size_t>(nodes) *
                           (sizeof(PacketId) + sizeof(std::int32_t)));
  }
  delta_.assign(cells, kNoDelta);
  missing_.assign(static_cast<std::size_t>(nodes), window);
  best_.assign(static_cast<std::size_t>(nodes), kNoDelta);
}

void ScaleDelayRecorder::on_delivery(const Delivery& d) {
  if (d.tx.packet >= window_) return;
  if (d.tx.to >= nodes()) return;
  const auto node = static_cast<std::size_t>(d.tx.to);
  auto& cell = delta_[node * static_cast<std::size_t>(window_) +
                      static_cast<std::size_t>(d.tx.packet)];
  if (cell != kNoDelta) return;  // first arrival only, like DelayRecorder
  const Slot delta = d.received - d.tx.packet;
  // Deltas are bounded by the horizon, far below 2^31; a schedule that
  // breaks this would corrupt the compact encoding, so refuse loudly.
  if (delta <= kNoDelta || delta > std::numeric_limits<std::int32_t>::max()) {
    throw std::logic_error("scale recorder arrival delta out of int32 range");
  }
  cell = static_cast<std::int32_t>(delta);
  --missing_[node];
  if (cell > best_[node]) best_[node] = cell;
}

std::optional<Slot> ScaleDelayRecorder::playback_delay(NodeKey node) const {
  if (!complete(node)) return std::nullopt;
  // Identical to DelayRecorder: a = max(0, max_j (recv(j) - j)).
  return std::max<Slot>(0, best_[static_cast<std::size_t>(node)]);
}

void ScaleDelayRecorder::arrivals(NodeKey node, std::vector<Slot>& row) const {
  row.resize(static_cast<std::size_t>(window_));
  const std::int32_t* cells =
      delta_.data() +
      static_cast<std::size_t>(node) * static_cast<std::size_t>(window_);
  for (PacketId j = 0; j < window_; ++j) {
    const std::int32_t delta = cells[static_cast<std::size_t>(j)];
    if (delta == kNoDelta) {
      throw std::logic_error("arrival row of an incomplete node");
    }
    row[static_cast<std::size_t>(j)] = j + static_cast<Slot>(delta);
  }
}

ScaleNeighborRecorder::ScaleNeighborRecorder(NodeKey nodes, int cap,
                                             util::BudgetLedger* ledger)
    : cap_(cap) {
  assert(nodes >= 1);
  if (cap < 1 || cap >= kSaturated) {
    throw std::invalid_argument("neighbor cap must be in [1, 254]");
  }
  const std::size_t cells =
      static_cast<std::size_t>(nodes) * static_cast<std::size_t>(cap);
  if (ledger != nullptr) {
    ledger->charge("scale/neighbor-recorder",
                   cells * sizeof(NodeKey) + static_cast<std::size_t>(nodes));
  }
  partners_.assign(cells, sim::kNoNode);
  used_.assign(static_cast<std::size_t>(nodes), 0);
}

void ScaleNeighborRecorder::insert(NodeKey node, NodeKey partner) {
  if (node < 0 || static_cast<std::size_t>(node) >= used_.size()) return;
  auto& used = used_[static_cast<std::size_t>(node)];
  if (used == kSaturated) return;
  NodeKey* row =
      partners_.data() +
      static_cast<std::size_t>(node) * static_cast<std::size_t>(cap_);
  for (std::uint8_t i = 0; i < used; ++i) {
    if (row[i] == partner) return;
  }
  if (used == cap_) {
    used = kSaturated;
    return;
  }
  row[used++] = partner;
}

void ScaleNeighborRecorder::on_delivery(const Delivery& d) {
  insert(d.tx.to, d.tx.from);
  insert(d.tx.from, d.tx.to);
}

std::size_t ScaleNeighborRecorder::count(NodeKey node) const {
  const std::uint8_t used = used_[static_cast<std::size_t>(node)];
  if (used == kSaturated) {
    throw std::logic_error(
        "node " + std::to_string(node) + " exceeded the neighbor cap of " +
        std::to_string(cap_) + "; raise ScaleOptions::neighbor_cap");
  }
  return used;
}

}  // namespace streamcast::scale
