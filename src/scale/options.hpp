// Knobs of the million-node scale path (DESIGN.md §11), embedded in
// core::SessionConfig as `scale` and in core::ObserverSpec.
#pragma once

#include <cstddef>

#include "src/sim/packet.hpp"

namespace streamcast::scale {

using sim::NodeKey;

struct ScaleOptions {
  /// Node-count threshold at/above which the RunPipeline observer stack
  /// swaps the exact per-node recorders for the streaming scale family
  /// (flat arrival deltas + GK sketches). 0 disables the automatic swap.
  NodeKey sketch_threshold = 50'000;
  /// Node-count threshold at/above which an eligible session (structured
  /// multi-tree, lossless, kPreRecorded/kLivePrebuffered, no audit) skips
  /// the slot engine entirely and replays the periodic schedule in closed
  /// form. Byte-identical to the pump by construction (regression-tested).
  NodeKey replay_threshold = 50'000;
  /// Master switch for the closed-form replay shortcut.
  bool allow_replay = true;
  /// Rank-error bound of the quantile sketches, as a fraction of N.
  double epsilon = 0.005;
  /// Ceiling for per-node state allocations; exceeded => BudgetExceeded
  /// (fail fast, never OOM).
  std::size_t budget_bytes = std::size_t{1} << 31;  // 2 GiB
  /// Distinct partners tracked per node by the flat neighbor recorder.
  /// Multi-tree needs <= 2d; querying a node that overflowed the cap throws
  /// (correct-or-error, never silently truncated).
  int neighbor_cap = 24;
};

}  // namespace streamcast::scale
