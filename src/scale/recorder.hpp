// Streaming scale recorders (DESIGN.md §11): the O(N·W)-of-int64 exact
// recorders of src/metrics replaced by budget-charged flat arrays.
//
// ScaleDelayRecorder stores one int32 arrival *delta* (recv − packet) per
// (node, packet) cell — 4 bytes instead of the exact recorder's 8-byte slot
// plus per-node heap rows — and keeps the per-node running max delta, so
// playback delays are exact and O(1) at aggregation. The full arrival row
// of any node can be reconstructed (arrival = packet + delta), which keeps
// buffer-occupancy aggregation exact too: the scale stack is a memory
// optimization, not an approximation; only the *distribution* summaries
// (p50/p95/p99) are sketched.
//
// ScaleNeighborRecorder replaces the per-node std::set with a fixed-cap
// flat partner array. A node that exceeds the cap is marked saturated, and
// querying a saturated node throws — correct or error, never silently
// truncated (receivers of every paper scheme stay within 2d or O(log N)).
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "src/scale/options.hpp"
#include "src/scale/sketch.hpp"
#include "src/sim/engine.hpp"
#include "src/util/budget.hpp"

namespace streamcast::scale {

using sim::Delivery;
using sim::PacketId;
using sim::Slot;

/// Aggregate result block of a scale run: exact min/max/mean plus sketched
/// quantiles for the playback-delay and buffer-occupancy distributions,
/// and the ledger's memory accounting.
struct ScaleSummary {
  NodeKey nodes = 0;
  double epsilon = 0;
  /// True when the run came from the closed-form schedule replay instead of
  /// the slot engine.
  bool replayed = false;
  std::size_t budget_bytes = 0;
  std::size_t bytes_peak = 0;
  QuantileSummary delay;
  QuantileSummary buffer;
};

/// Sentinel delta for a packet that has not arrived.
inline constexpr std::int32_t kNoDelta =
    std::numeric_limits<std::int32_t>::min();

class ScaleDelayRecorder final : public sim::DeliveryObserver {
 public:
  /// Tracks nodes [0, nodes) and packets [0, window); charges the ledger
  /// (when non-null) for the flat delta matrix before allocating.
  ScaleDelayRecorder(NodeKey nodes, PacketId window,
                     util::BudgetLedger* ledger);

  void on_delivery(const Delivery& d) override;

  bool complete(NodeKey node) const {
    return missing_[static_cast<std::size_t>(node)] == 0;
  }

  /// Playback delay a(node) — identical to DelayRecorder::playback_delay.
  std::optional<Slot> playback_delay(NodeKey node) const;

  /// Reconstructs the node's window arrival row (arrival = packet + delta)
  /// into `row`, resized to the window. Precondition: complete(node).
  void arrivals(NodeKey node, std::vector<Slot>& row) const;

  PacketId window() const { return window_; }
  NodeKey nodes() const { return static_cast<NodeKey>(missing_.size()); }

 private:
  PacketId window_;
  /// Flat [node][packet] matrix of arrival deltas, stride window_.
  std::vector<std::int32_t> delta_;
  std::vector<PacketId> missing_;
  /// Running max delta per node (kNoDelta until the first arrival).
  std::vector<std::int32_t> best_;
};

class ScaleNeighborRecorder final : public sim::DeliveryObserver {
 public:
  ScaleNeighborRecorder(NodeKey nodes, int cap, util::BudgetLedger* ledger);

  void on_delivery(const Delivery& d) override;

  /// Distinct partner count; throws std::logic_error if this node overflowed
  /// the cap (raise ScaleOptions::neighbor_cap).
  std::size_t count(NodeKey node) const;

 private:
  void insert(NodeKey node, NodeKey partner);

  int cap_;
  /// Flat [node][slot] partner ids, stride cap_; kNoNode = empty slot.
  std::vector<NodeKey> partners_;
  /// Partners used per node; kSaturated marks an overflowed node.
  std::vector<std::uint8_t> used_;
  static constexpr std::uint8_t kSaturated = 0xFF;
};

}  // namespace streamcast::scale
