#include "src/scale/sketch.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace streamcast::scale {

std::int64_t StreamingMoments::min() const {
  if (count_ == 0) throw std::logic_error("moments of an empty stream");
  return min_;
}

std::int64_t StreamingMoments::max() const {
  if (count_ == 0) throw std::logic_error("moments of an empty stream");
  return max_;
}

double StreamingMoments::mean() const {
  if (count_ == 0) throw std::logic_error("moments of an empty stream");
  return sum_ / static_cast<double>(count_);
}

GkSketch::GkSketch(double epsilon, util::BudgetLedger* ledger)
    : epsilon_(epsilon), ledger_(ledger) {
  if (!(epsilon > 0.0) || epsilon >= 0.5) {
    throw std::invalid_argument("GkSketch epsilon must be in (0, 0.5)");
  }
  buffer_capacity_ = std::max<std::size_t>(
      16, static_cast<std::size_t>(std::floor(1.0 / (2.0 * epsilon))));
}

void GkSketch::add(std::int64_t v) {
  buffer_.push_back(v);
  if (buffer_.size() >= buffer_capacity_) flush();
}

void GkSketch::charge_growth() {
  if (ledger_ == nullptr) return;
  const std::size_t bytes = summary_.capacity() * sizeof(Tuple) +
                            buffer_.capacity() * sizeof(std::int64_t);
  if (bytes > charged_bytes_) {
    ledger_->charge("scale/quantile-sketch", bytes - charged_bytes_);
    charged_bytes_ = bytes;
  }
}

void GkSketch::flush() {
  if (buffer_.empty()) return;
  std::sort(buffer_.begin(), buffer_.end());
  n_ += static_cast<std::int64_t>(buffer_.size());
  // Rank-uncertainty cap after this batch lands. New interior tuples take
  // Δ = max_err - 1 (the classic insert), extremes take Δ = 0 so min/max
  // stay exact.
  const auto max_err = static_cast<std::int64_t>(
      std::floor(2.0 * epsilon_ * static_cast<double>(n_)));

  std::vector<Tuple> merged;
  merged.reserve(summary_.size() + buffer_.size());
  std::size_t si = 0;
  std::size_t bi = 0;
  while (si < summary_.size() || bi < buffer_.size()) {
    const bool take_buffer =
        si == summary_.size() ||
        (bi < buffer_.size() && buffer_[bi] < summary_[si].v);
    if (take_buffer) {
      const bool extreme =
          merged.empty() ||
          (si == summary_.size() && bi + 1 == buffer_.size());
      merged.push_back(Tuple{.v = buffer_[bi],
                             .g = 1,
                             .delta = extreme ? 0
                                             : std::max<std::int64_t>(
                                                   0, max_err - 1)});
      ++bi;
    } else {
      merged.push_back(summary_[si]);
      ++si;
    }
  }
  buffer_.clear();

  // Compress right-to-left: fold tuple i into its successor while the
  // combined rank mass stays within the error cap. The first and last
  // tuples are exempt, keeping the extremes exact.
  std::vector<Tuple> compressed;
  compressed.reserve(merged.size());
  // Build back-to-front, then reverse.
  Tuple carry = merged.back();
  for (std::size_t i = merged.size() - 1; i-- > 0;) {
    const Tuple& cur = merged[i];
    const bool is_first = i == 0;
    if (!is_first && cur.g + carry.g + carry.delta <= max_err) {
      carry.g += cur.g;  // cur folds into its successor
    } else {
      compressed.push_back(carry);
      carry = cur;
    }
  }
  compressed.push_back(carry);
  std::reverse(compressed.begin(), compressed.end());
  summary_ = std::move(compressed);
  charge_growth();
}

std::int64_t GkSketch::quantile(double q) {
  flush();
  if (n_ == 0) throw std::logic_error("quantile of an empty sketch");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile q not in [0,1]");
  const std::int64_t r = std::clamp<std::int64_t>(
      static_cast<std::int64_t>(std::ceil(q * static_cast<double>(n_))), 1,
      n_);
  const auto tolerance = static_cast<std::int64_t>(
      std::floor(epsilon_ * static_cast<double>(n_)));
  std::int64_t rmin = 0;
  // First tuple whose rank envelope [rmin, rmin + Δ] surrounds r within the
  // ε·n tolerance (one always exists by the compression invariant); the
  // closest-midpoint tuple is kept as a safety net.
  std::int64_t best_v = summary_.front().v;
  std::int64_t best_dist = std::numeric_limits<std::int64_t>::max();
  for (const Tuple& t : summary_) {
    rmin += t.g;
    const std::int64_t rmax = rmin + t.delta;
    if (r - rmin <= tolerance && rmax - r <= tolerance) return t.v;
    const std::int64_t mid = (rmin + rmax) / 2;
    const std::int64_t dist = mid > r ? mid - r : r - mid;
    if (dist < best_dist) {
      best_dist = dist;
      best_v = t.v;
    }
  }
  return best_v;
}

QuantileSummary DistributionSketch::summarize() {
  QuantileSummary s;
  s.count = moments_.count();
  if (s.count == 0) return s;
  s.min = moments_.min();
  s.max = moments_.max();
  s.mean = moments_.mean();
  s.p50 = gk_.quantile(0.50);
  s.p95 = gk_.quantile(0.95);
  s.p99 = gk_.quantile(0.99);
  return s;
}

}  // namespace streamcast::scale
