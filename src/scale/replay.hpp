// Closed-form replay of the structured multi-tree schedule (DESIGN.md §11).
//
// PR 4's memoized periodic schedule observed that the structured schedule is
// d-periodic: with t = m·d + r, the packet of tree k that position p
// receives at slot m·d + A(p) is k + m·d, where A(p) — the arrival offset —
// is pure position arithmetic, identical across trees. This module takes
// the last step: for lossless kPreRecorded / kLivePrebuffered runs nothing
// about the engine's output depends on per-slot simulation at all, so the
// QoS aggregates of a run over horizon H are computed directly from the
// offsets:
//
//  * per node x and tree k, packets j ≡ k (mod d) arrive at slot
//    j + c_k(x), with the residue constant c_k(x) = A(pos_k(x)) − k
//    (+d in live-prebuffered mode, which starts the same schedule d slots
//    later); the playback delay is a(x) = max(0, max_k c_k(x));
//  * receivers have receive capacity 1, so the maximum buffer occupancy at
//    playback start a is exactly the number of window packets that arrived
//    by slot a: occ(x) = Σ_k #{m : k+md < W, c_k(x) + k + md ≤ a} — a
//    closed form per residue (proved in the tests against the exact
//    metrics::max_buffer_occupancy on the full small-N grid);
//  * transmissions over [0, H) count, per position p, one send per live
//    (non-dummy) tree at every slot ≡ A(p) (mod d) from A(p) on;
//  * the neighbor set of x is its d per-tree parents plus its non-dummy
//    children in the single tree where x is interior, deduplicated.
//
// The result byte-matches the per-slot pump's serialized QosReport at every
// N where the pump is feasible (regression-tested); at N = 10^6 the replay
// is O(N·d) time and O(N_pad) memory and finishes in well under a second.
#pragma once

#include <cstdint>

#include "src/scale/options.hpp"
#include "src/scale/recorder.hpp"
#include "src/sim/packet.hpp"

namespace streamcast::scale {

using sim::NodeKey;
using sim::PacketId;
using sim::Slot;

/// What to replay. Mirrors the session/registry defaults exactly: window 0
/// means the scheme default 2·d·(height+2); slack -1 means the registry's
/// 4 + h·d + 3·d horizon slack (kept in lockstep by the byte-match tests).
struct ReplayConfig {
  NodeKey n = 0;
  int d = 2;
  /// kLivePrebuffered (schedule shifted by d) instead of kPreRecorded.
  bool prebuffered = false;
  PacketId window = 0;
  Slot slack = -1;
};

/// The aggregates a QosReport needs, plus the sketched distributions. The
/// double sums accumulate in receiver order 1..n — the exact aggregation
/// order of RunPipeline::aggregate — so averages are bit-identical.
struct ReplayReport {
  Slot worst_delay = 0;
  double average_delay = 0;
  std::size_t max_buffer = 0;
  double average_buffer = 0;
  std::size_t max_neighbors = 0;
  double average_neighbors = 0;
  std::int64_t transmissions = 0;
  /// Horizon the pump would have simulated (QosReport::slots_simulated).
  Slot horizon = 0;
  PacketId window = 0;
  ScaleSummary summary;
};

/// Replays the structured multi-tree schedule in closed form. Throws
/// std::invalid_argument for configs the closed form does not cover
/// (window < d) and util::BudgetExceeded if the O(N_pad) offset table would
/// overrun the budget.
ReplayReport replay_structured(const ReplayConfig& config,
                               const ScaleOptions& options = {});

}  // namespace streamcast::scale
