#include "src/scale/replay.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "src/multitree/analysis.hpp"
#include "src/util/budget.hpp"
#include "src/util/ints.hpp"

namespace streamcast::scale {

namespace {

/// The structured position lattice (src/multitree/structured.cpp) with the
/// per-call Forest construction stripped: pure O(1) arithmetic in both
/// directions, cheap enough for the O(N·d) replay loop.
struct Lattice {
  NodeKey n = 0;
  int d = 0;
  NodeKey interior = 0;  // I = ceil(n/d) - 1
  NodeKey n_pad = 0;     // d * (I + 1)
  std::int64_t p = 1;    // intra-group rotation period P = d / gcd(I, d)

  Lattice(NodeKey n_in, int d_in) : n(n_in), d(d_in) {
    interior = static_cast<NodeKey>(
        util::ceil_div(static_cast<std::int64_t>(n), d) - 1);
    n_pad = static_cast<NodeKey>(d) * (interior + 1);
    p = interior == 0
            ? 1
            : d / std::gcd(static_cast<std::int64_t>(interior),
                           static_cast<std::int64_t>(d));
  }

  /// multitree::structured_position without the shape Forest.
  NodeKey position_of(int k, NodeKey x) const {
    if (x > static_cast<NodeKey>(d) * interior) {
      const NodeKey j = x - static_cast<NodeKey>(d) * interior - 1;
      return static_cast<NodeKey>(d) * interior +
             (j + static_cast<NodeKey>(k)) % static_cast<NodeKey>(d) + 1;
    }
    const NodeKey i = (x - 1) / interior;
    const NodeKey j = (x - 1) % interior;
    const NodeKey block = static_cast<NodeKey>(((i - k) % d + d) % d);
    const NodeKey slot =
        (j + static_cast<NodeKey>(k / p)) % interior;
    return block * interior + slot + 1;
  }

  /// Exact inverse (multitree::structured_node_at without the Forest).
  NodeKey node_at(int k, NodeKey pos) const {
    if (pos > static_cast<NodeKey>(d) * interior) {
      const NodeKey off = pos - static_cast<NodeKey>(d) * interior - 1;
      const NodeKey j = static_cast<NodeKey>(
          util::mod_floor(off - static_cast<NodeKey>(k), d));
      return static_cast<NodeKey>(d) * interior + j + 1;
    }
    const NodeKey block = (pos - 1) / interior;
    const NodeKey slot = (pos - 1) % interior;
    const NodeKey i = static_cast<NodeKey>((block + k) % d);
    const NodeKey j = static_cast<NodeKey>(util::mod_floor(
        slot - static_cast<NodeKey>(k / p), interior));
    return i * interior + j + 1;
  }

  /// Depth of a position (source = 0), i.e. Forest::depth_of.
  int depth_of(NodeKey pos) const {
    int depth = 0;
    while (pos > 0) {
      pos = (pos - 1) / static_cast<NodeKey>(d);
      ++depth;
    }
    return depth;
  }
};

/// A(p) for every position, the recurrence of multitree::arrival_offsets
/// run over the bare lattice.
std::vector<Slot> lattice_offsets(const Lattice& lat) {
  std::vector<Slot> offset(static_cast<std::size_t>(lat.n_pad) + 1, 0);
  for (NodeKey pos = 1; pos <= lat.n_pad; ++pos) {
    const auto c = static_cast<Slot>((pos - 1) % lat.d);
    if (pos <= static_cast<NodeKey>(lat.d)) {
      offset[static_cast<std::size_t>(pos)] = c;
    } else {
      const Slot parent =
          offset[static_cast<std::size_t>((pos - 1) / lat.d)];
      offset[static_cast<std::size_t>(pos)] =
          parent + 1 + util::mod_floor(c - parent - 1, lat.d);
    }
  }
  return offset;
}

}  // namespace

ReplayReport replay_structured(const ReplayConfig& config,
                               const ScaleOptions& options) {
  const NodeKey n = config.n;
  const int d = config.d;
  if (n < 1) throw std::invalid_argument("n < 1");
  if (d < 1) throw std::invalid_argument("d < 1");

  const Lattice lat(n, d);
  util::BudgetLedger ledger(util::MemoryBudget{options.budget_bytes});
  ledger.charge("scale/replay-offsets",
                (static_cast<std::size_t>(lat.n_pad) + 1) * sizeof(Slot));
  const std::vector<Slot> offsets = lattice_offsets(lat);

  // Session/registry defaults, mirrored exactly (byte-match tests keep the
  // two in lockstep): window 2·d·(height+2), slack 4 + h·d + 3·d.
  const int height = lat.depth_of(lat.n_pad);
  const PacketId window =
      config.window > 0 ? config.window
                        : PacketId{2} * d * (height + 2);
  if (window < d) {
    throw std::invalid_argument(
        "closed-form replay needs window >= d (every residue measured)");
  }
  const Slot slack = config.slack >= 0
                         ? config.slack
                         : 4 + multitree::worst_delay_bound(n, d) + 3 * d;
  const Slot horizon = window + slack;
  const Slot shift = config.prebuffered ? d : 0;

  // Dummy occupancy of the G_d tail positions: tree k places dummy id x at
  // tail offset (x - dI - 1 + k) mod d. Only these d positions ever host a
  // dummy, so the per-position live-tree count is d everywhere else.
  std::vector<int> tail_dummies(static_cast<std::size_t>(d), 0);
  for (NodeKey x = n + 1; x <= lat.n_pad; ++x) {
    const NodeKey j = x - static_cast<NodeKey>(d) * lat.interior - 1;
    for (int k = 0; k < d; ++k) {
      ++tail_dummies[static_cast<std::size_t>(
          (j + static_cast<NodeKey>(k)) % static_cast<NodeKey>(d))];
    }
  }

  // Transmissions: every position p receives one send per live tree at each
  // slot ≡ A(p) (mod d) from A(p) on (shifted wholesale in live-prebuffered
  // mode); dummy targets are skipped by the schedule but their round-robin
  // turn still passes, so they simply subtract from the live-tree count.
  std::int64_t transmissions = 0;
  const NodeKey tail_base = static_cast<NodeKey>(d) * lat.interior;
  for (NodeKey pos = 1; pos <= lat.n_pad; ++pos) {
    const int live =
        d - (pos > tail_base
                 ? tail_dummies[static_cast<std::size_t>(pos - tail_base - 1)]
                 : 0);
    const Slot first = offsets[static_cast<std::size_t>(pos)] + shift;
    if (first <= horizon - 1) {
      transmissions += static_cast<std::int64_t>(live) *
                       ((horizon - 1 - first) / d + 1);
    }
  }

  ReplayReport report;
  report.window = window;
  report.horizon = horizon;
  report.transmissions = transmissions;
  report.summary.nodes = n;
  report.summary.epsilon = options.epsilon;
  report.summary.replayed = true;
  report.summary.budget_bytes = options.budget_bytes;

  DistributionSketch delay_sketch(options.epsilon, &ledger);
  DistributionSketch buffer_sketch(options.epsilon, &ledger);

  double delay_sum = 0;
  double buffer_sum = 0;
  double neighbor_sum = 0;
  std::vector<Slot> residue(static_cast<std::size_t>(d), 0);
  std::vector<NodeKey> partners;
  partners.reserve(2 * static_cast<std::size_t>(d));
  for (NodeKey x = 1; x <= n; ++x) {
    // Residue constants c_k = A(pos_k(x)) − k (+shift): packets j ≡ k
    // (mod d) arrive at slot j + c_k. The playback delay is their max,
    // clamped at 0 exactly like DelayRecorder.
    Slot a = 0;
    partners.clear();
    for (int k = 0; k < d; ++k) {
      const NodeKey pos = lat.position_of(k, x);
      const Slot c = offsets[static_cast<std::size_t>(pos)] - k + shift;
      residue[static_cast<std::size_t>(k)] = c;
      a = std::max(a, c);
      const NodeKey parent_pos = (pos - 1) / static_cast<NodeKey>(d);
      partners.push_back(parent_pos == 0 ? NodeKey{0}
                                         : lat.node_at(k, parent_pos));
    }
    report.worst_delay = std::max(report.worst_delay, a);
    delay_sum += static_cast<double>(a);

    // Receive capacity 1 makes the occupancy maximum land exactly at the
    // playback start: occ = #{window packets arrived by slot a}, counted
    // residue by residue.
    std::size_t occ = 0;
    for (int k = 0; k < d && k < window; ++k) {
      const Slot num = a - residue[static_cast<std::size_t>(k)] - k;
      if (num < 0) continue;
      const Slot hi = std::min<Slot>((window - 1 - k) / d, num / d);
      occ += static_cast<std::size_t>(hi) + 1;
    }
    report.max_buffer = std::max(report.max_buffer, occ);
    buffer_sum += static_cast<double>(occ);

    delay_sketch.add(a);
    buffer_sketch.add(static_cast<std::int64_t>(occ));

    // Children exist only in the single tree where x is interior (block 0
    // of group i = (x-1)/I); dummies never receive a send.
    if (lat.interior > 0 &&
        x <= static_cast<NodeKey>(d) * lat.interior) {
      const int i = static_cast<int>((x - 1) / lat.interior);
      const NodeKey pos = lat.position_of(i, x);
      for (int c = 0; c < d; ++c) {
        const NodeKey cp =
            static_cast<NodeKey>(d) * pos + 1 + static_cast<NodeKey>(c);
        const NodeKey child = lat.node_at(i, cp);
        if (child <= n) partners.push_back(child);
      }
    }
    std::sort(partners.begin(), partners.end());
    const auto distinct = static_cast<std::size_t>(
        std::unique(partners.begin(), partners.end()) - partners.begin());
    report.max_neighbors = std::max(report.max_neighbors, distinct);
    neighbor_sum += static_cast<double>(distinct);
  }

  report.average_delay = delay_sum / static_cast<double>(n);
  report.average_buffer = buffer_sum / static_cast<double>(n);
  report.average_neighbors = neighbor_sum / static_cast<double>(n);
  report.summary.delay = delay_sketch.summarize();
  report.summary.buffer = buffer_sketch.summarize();
  report.summary.bytes_peak = ledger.peak();
  return report;
}

}  // namespace streamcast::scale
