#include "src/scale/replay.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "src/multitree/analysis.hpp"
#include "src/static/lattice.hpp"
#include "src/util/budget.hpp"
#include "src/util/ints.hpp"

namespace streamcast::scale {

namespace {

// The lattice arithmetic itself lives in src/static/lattice.hpp (PR 8):
// envelope::Lattice is the constexpr form of the struct that used to be
// defined here, shared with the compile-time proofs and the multi-tree
// analysis so all three evaluate identical formulas.
using Count = envelope::Count;

/// A(p) for every position: the memoized form of envelope::arrival_offset
/// (positions are parent-major, so one forward pass resolves every parent
/// before its children — O(n_pad) instead of O(n_pad · height)).
std::vector<Slot> lattice_offsets(const envelope::Lattice& lat) {
  std::vector<Slot> offset(static_cast<std::size_t>(lat.n_pad) + 1, 0);
  for (Count pos = 1; pos <= lat.n_pad; ++pos) {
    const auto c = static_cast<Slot>((pos - 1) % lat.d);
    if (pos <= lat.d) {
      offset[static_cast<std::size_t>(pos)] = c;
    } else {
      const Slot parent =
          offset[static_cast<std::size_t>((pos - 1) / lat.d)];
      offset[static_cast<std::size_t>(pos)] =
          parent + 1 + util::mod_floor(c - parent - 1,
                                       static_cast<Slot>(lat.d));
    }
  }
  return offset;
}

}  // namespace

ReplayReport replay_structured(const ReplayConfig& config,
                               const ScaleOptions& options) {
  const NodeKey n = config.n;
  const int d = config.d;
  if (n < 1) throw std::invalid_argument("n < 1");
  if (d < 1) throw std::invalid_argument("d < 1");

  const envelope::Lattice lat(n, d);
  util::BudgetLedger ledger(util::MemoryBudget{options.budget_bytes});
  ledger.charge("scale/replay-offsets",
                (static_cast<std::size_t>(lat.n_pad) + 1) * sizeof(Slot));
  const std::vector<Slot> offsets = lattice_offsets(lat);

  // Session/registry defaults, mirrored exactly (byte-match tests keep the
  // two in lockstep): window 2·d·(height+2), slack 4 + h·d + 3·d.
  const int height = lat.depth_of(lat.n_pad);
  const PacketId window =
      config.window > 0 ? config.window
                        : PacketId{2} * d * (height + 2);
  if (window < d) {
    throw std::invalid_argument(
        "closed-form replay needs window >= d (every residue measured)");
  }
  const Slot slack = config.slack >= 0
                         ? config.slack
                         : 4 + multitree::worst_delay_bound(n, d) + 3 * d;
  const Slot horizon = window + slack;
  const Slot shift = config.prebuffered ? d : 0;

  // Dummy occupancy of the G_d tail positions: tree k places dummy id x at
  // tail offset (x - dI - 1 + k) mod d. Only these d positions ever host a
  // dummy, so the per-position live-tree count is d everywhere else.
  std::vector<int> tail_dummies(static_cast<std::size_t>(d), 0);
  for (Count x = n + 1; x <= lat.n_pad; ++x) {
    const Count j = x - d * lat.interior - 1;
    for (Count k = 0; k < d; ++k) {
      ++tail_dummies[static_cast<std::size_t>((j + k) % d)];
    }
  }

  // Transmissions: every position p receives one send per live tree at each
  // slot ≡ A(p) (mod d) from A(p) on (shifted wholesale in live-prebuffered
  // mode); dummy targets are skipped by the schedule but their round-robin
  // turn still passes, so they simply subtract from the live-tree count.
  std::int64_t transmissions = 0;
  const Count tail_base = d * lat.interior;
  for (Count pos = 1; pos <= lat.n_pad; ++pos) {
    const int live =
        d - (pos > tail_base
                 ? tail_dummies[static_cast<std::size_t>(pos - tail_base - 1)]
                 : 0);
    const Slot first = offsets[static_cast<std::size_t>(pos)] + shift;
    if (first <= horizon - 1) {
      transmissions += static_cast<std::int64_t>(live) *
                       ((horizon - 1 - first) / d + 1);
    }
  }

  ReplayReport report;
  report.window = window;
  report.horizon = horizon;
  report.transmissions = transmissions;
  report.summary.nodes = n;
  report.summary.epsilon = options.epsilon;
  report.summary.replayed = true;
  report.summary.budget_bytes = options.budget_bytes;

  DistributionSketch delay_sketch(options.epsilon, &ledger);
  DistributionSketch buffer_sketch(options.epsilon, &ledger);

  double delay_sum = 0;
  double buffer_sum = 0;
  double neighbor_sum = 0;
  std::vector<Slot> residue(static_cast<std::size_t>(d), 0);
  std::vector<NodeKey> partners;
  partners.reserve(2 * static_cast<std::size_t>(d));
  for (NodeKey x = 1; x <= n; ++x) {
    // Residue constants c_k = A(pos_k(x)) − k (+shift): packets j ≡ k
    // (mod d) arrive at slot j + c_k. The playback delay is their max,
    // clamped at 0 exactly like DelayRecorder.
    Slot a = 0;
    partners.clear();
    for (int k = 0; k < d; ++k) {
      const Count pos = lat.position_of(k, x);
      const Slot c = offsets[static_cast<std::size_t>(pos)] - k + shift;
      residue[static_cast<std::size_t>(k)] = c;
      a = std::max(a, c);
      const Count parent_pos = (pos - 1) / d;
      partners.push_back(parent_pos == 0
                             ? NodeKey{0}
                             : static_cast<NodeKey>(
                                   lat.node_at(k, parent_pos)));
    }
    report.worst_delay = std::max(report.worst_delay, a);
    delay_sum += static_cast<double>(a);

    // Receive capacity 1 makes the occupancy maximum land exactly at the
    // playback start: occ = #{window packets arrived by slot a}, counted
    // residue by residue.
    std::size_t occ = 0;
    for (int k = 0; k < d && k < window; ++k) {
      const Slot num = a - residue[static_cast<std::size_t>(k)] - k;
      if (num < 0) continue;
      const Slot hi = std::min<Slot>((window - 1 - k) / d, num / d);
      occ += static_cast<std::size_t>(hi) + 1;
    }
    report.max_buffer = std::max(report.max_buffer, occ);
    buffer_sum += static_cast<double>(occ);

    delay_sketch.add(a);
    buffer_sketch.add(static_cast<std::int64_t>(occ));

    // Children exist only in the single tree where x is interior (block 0
    // of group i = (x-1)/I); dummies never receive a send.
    if (lat.interior > 0 && x <= d * lat.interior) {
      const Count i = (x - 1) / lat.interior;
      const Count pos = lat.position_of(i, x);
      for (Count c = 0; c < d; ++c) {
        const Count cp = d * pos + 1 + c;
        const Count child = lat.node_at(i, cp);
        if (child <= n) partners.push_back(static_cast<NodeKey>(child));
      }
    }
    std::sort(partners.begin(), partners.end());
    const auto distinct = static_cast<std::size_t>(
        std::unique(partners.begin(), partners.end()) - partners.begin());
    report.max_neighbors = std::max(report.max_neighbors, distinct);
    neighbor_sum += static_cast<double>(distinct);
  }

  report.average_delay = delay_sum / static_cast<double>(n);
  report.average_buffer = buffer_sum / static_cast<double>(n);
  report.average_neighbors = neighbor_sum / static_cast<double>(n);
  report.summary.delay = delay_sketch.summarize();
  report.summary.buffer = buffer_sketch.summarize();
  report.summary.bytes_peak = ledger.peak();
  return report;
}

}  // namespace streamcast::scale
