// Streaming distribution sketches for the million-node scale path
// (DESIGN.md §11).
//
// Above the scale threshold the exact per-node histograms of the metric
// layer are replaced by two O(polylog) streaming summaries per distribution:
//
//  * StreamingMoments — exact count / min / max / mean. The mean sums
//    doubles in feed order, so it is bit-identical to what the exact
//    aggregation arithmetic would produce over the same values.
//  * GkSketch — a Greenwald–Khanna ε-approximate quantile summary.
//    quantile(q) returns a stored value whose rank is within ε·n of the
//    target rank; memory is O((1/ε)·log(ε·n)). The sketch is fully
//    deterministic (no sampling, no hashing), so sweeps that include it
//    stay byte-reproducible under the determinism contract.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "src/util/budget.hpp"

namespace streamcast::scale {

/// Exact streaming count/min/max/mean over int64 observations.
class StreamingMoments {
 public:
  void add(std::int64_t v) {
    ++count_;
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
    sum_ += static_cast<double>(v);
  }

  std::int64_t count() const { return count_; }
  /// Precondition for min/max/mean: count() > 0 (asserted via throw).
  std::int64_t min() const;
  std::int64_t max() const;
  double mean() const;

 private:
  std::int64_t count_ = 0;
  std::int64_t min_ = std::numeric_limits<std::int64_t>::max();
  std::int64_t max_ = std::numeric_limits<std::int64_t>::min();
  double sum_ = 0;
};

/// Greenwald–Khanna quantile summary with rank-error bound ε·n.
///
/// Inserts are buffered and merged in sorted batches (the classic practical
/// variant): the summary keeps tuples (v, g, Δ) where g is the rank mass of
/// the tuple and Δ bounds its rank uncertainty; adjacent tuples are merged
/// while g_i + g_{i+1} + Δ_{i+1} stays under 2εn. The first and last tuples
/// are never merged, so min and max are exact.
class GkSketch {
 public:
  /// `epsilon` in (0, 0.5); smaller = tighter quantiles, more memory.
  /// `ledger`, when non-null, is charged for summary/buffer growth.
  explicit GkSketch(double epsilon, util::BudgetLedger* ledger = nullptr);

  void add(std::int64_t v);

  /// Value whose rank is within ε·count() of clamp(ceil(q·count), 1, count).
  /// Flushes the insert buffer; throws std::logic_error on an empty sketch.
  std::int64_t quantile(double q);

  std::int64_t count() const { return n_; }
  double epsilon() const { return epsilon_; }
  /// Tuples currently held (after the last flush) — the memory figure the
  /// O((1/ε)·log(εn)) bound is about.
  std::size_t summary_size() const { return summary_.size(); }

 private:
  struct Tuple {
    std::int64_t v = 0;
    std::int64_t g = 0;
    std::int64_t delta = 0;
  };

  void flush();
  void charge_growth();

  double epsilon_;
  util::BudgetLedger* ledger_;
  std::size_t buffer_capacity_;
  std::int64_t n_ = 0;
  std::vector<Tuple> summary_;
  std::vector<std::int64_t> buffer_;
  std::size_t charged_bytes_ = 0;
};

/// Per-distribution result block of a scale run: exact moments plus the
/// sketched p50/p95/p99.
struct QuantileSummary {
  std::int64_t count = 0;
  std::int64_t min = 0;
  std::int64_t max = 0;
  double mean = 0;
  std::int64_t p50 = 0;
  std::int64_t p95 = 0;
  std::int64_t p99 = 0;
};

/// Moments + GK sketch fed together; summarize() packages both.
class DistributionSketch {
 public:
  explicit DistributionSketch(double epsilon,
                              util::BudgetLedger* ledger = nullptr)
      : gk_(epsilon, ledger) {}

  void add(std::int64_t v) {
    moments_.add(v);
    gk_.add(v);
  }

  const StreamingMoments& moments() const { return moments_; }
  GkSketch& sketch() { return gk_; }

  /// Zeroed QuantileSummary when nothing was fed (an all-incomplete run).
  QuantileSummary summarize();

 private:
  StreamingMoments moments_;
  GkSketch gk_;
};

}  // namespace streamcast::scale
