#include "src/multitree/churn.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/multitree/greedy.hpp"
#include "src/util/ints.hpp"

namespace streamcast::multitree {

namespace {

/// The forest is always built at full padded capacity so vacancy is purely a
/// peer-table concept: build_greedy(d*(I+1), d) has interior count I and no
/// construction-level dummies.
Forest build_at_interior(NodeKey interior, int d) {
  return build_greedy(static_cast<NodeKey>(d) * (interior + 1), d);
}

}  // namespace

ChurnForest::ChurnForest(NodeKey initial_n, int d, ChurnPolicy policy,
                         int lazy_slack)
    : d_(d),
      policy_(policy),
      lazy_slack_(lazy_slack > 0 ? lazy_slack : d),
      n_(initial_n),
      forest_(build_at_interior(
          static_cast<NodeKey>(util::ceil_div(initial_n, d)) - 1, d)) {
  if (initial_n < 1) throw std::invalid_argument("need at least one peer");
  peer_.assign(static_cast<std::size_t>(forest_.n_pad()) + 1, kNoPeer);
  for (NodeKey id = 1; id <= n_; ++id) {
    peer_[static_cast<std::size_t>(id)] = next_peer_++;
  }
}

NodeKey ChurnForest::canonical_interior(NodeKey n) const {
  return static_cast<NodeKey>(util::ceil_div(n, d_)) - 1;
}

PeerId ChurnForest::peer_at(NodeKey id) const {
  if (id < 1 || id > forest_.n_pad()) return kNoPeer;
  return peer_[static_cast<std::size_t>(id)];
}

NodeKey ChurnForest::id_of(PeerId peer) const {
  for (NodeKey id = 1; id <= n_; ++id) {
    if (peer_[static_cast<std::size_t>(id)] == peer) return id;
  }
  return -1;
}

void ChurnForest::restructure(NodeKey target_n) {
  const NodeKey target_interior = canonical_interior(target_n);
  if (target_interior == forest_.interior()) return;
  Forest next = build_at_interior(target_interior, d_);
  // Every live peer keeps its structural id; count (peer, tree) position
  // changes between the two structures. Ids above the new capacity cannot be
  // live (callers shrink only when n_ fits).
  std::int64_t moves = 0;
  for (NodeKey id = 1; id <= n_; ++id) {
    for (int k = 0; k < d_; ++k) {
      const NodeKey before = forest_.position_of(k, id);
      const NodeKey after =
          id <= next.n_pad() ? next.position_of(k, id) : -1;
      if (before != after) ++moves;
    }
  }
  stats_.rebuild_moves += moves;
  ++stats_.rebuilds;
  forest_ = std::move(next);
  peer_.resize(static_cast<std::size_t>(forest_.n_pad()) + 1, kNoPeer);
}

PeerId ChurnForest::add() {
  ++stats_.operations;
  const bool must_grow = n_ == forest_.n_pad();
  if (policy_ == ChurnPolicy::kEager || must_grow) {
    restructure(n_ + 1);
  }
  ++n_;
  const PeerId peer = next_peer_++;
  peer_[static_cast<std::size_t>(n_)] = peer;
  return peer;
}

void ChurnForest::remove(PeerId peer) {
  ++stats_.operations;
  if (n_ <= 1) throw std::logic_error("cannot remove the last peer");
  const NodeKey id = id_of(peer);
  if (id < 0) throw std::invalid_argument("unknown peer");
  if (id != n_) {
    // Paper Step 1: the last all-leaf node (greedy T_0's identity layout
    // puts it at id n_) replaces the departing node, changing position in
    // each of the d trees.
    peer_[static_cast<std::size_t>(id)] = peer_[static_cast<std::size_t>(n_)];
    stats_.relabel_moves += d_;
  }
  peer_[static_cast<std::size_t>(n_)] = kNoPeer;
  --n_;
  if (policy_ == ChurnPolicy::kEager) {
    restructure(n_);
  } else if (forest_.n_pad() - n_ > lazy_slack_) {
    // Lazy shrink, forced. At the default slack d this is the safe point:
    // with more than d vacancies the vacant ids would reach into the
    // interior pool {1..dI} and their subtrees would starve mid-stream
    // (up to d vacancies always sit in the all-leaf tail). Larger slacks
    // exist only for the ablation experiment.
    restructure(n_);
  }
}

}  // namespace streamcast::multitree
