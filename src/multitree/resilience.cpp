#include "src/multitree/resilience.hpp"

#include <cassert>
#include <stdexcept>

namespace streamcast::multitree {

std::vector<int> descriptions_received(const Forest& forest,
                                       const std::vector<bool>& failed) {
  if (failed.size() != static_cast<std::size_t>(forest.n()) + 1) {
    throw std::invalid_argument("failed must cover receivers 1..n");
  }
  const int d = forest.d();
  std::vector<int> received(static_cast<std::size_t>(forest.n()) + 1, 0);
  // Per tree, one BFS-order pass: a position is reachable iff its parent
  // position is reachable and the parent's occupant is alive (dummies never
  // occupy interior positions, so only real occupants matter).
  std::vector<char> reachable(static_cast<std::size_t>(forest.n_pad()) + 1);
  for (int k = 0; k < d; ++k) {
    for (NodeKey pos = 1; pos <= forest.n_pad(); ++pos) {
      const NodeKey parent = forest.parent_pos(pos);
      if (parent == 0) {
        reachable[static_cast<std::size_t>(pos)] = 1;  // fed by the source
      } else {
        const NodeKey pnode = forest.node_at(k, parent);
        const bool parent_alive =
            forest.is_dummy(pnode) ? false
                                   : !failed[static_cast<std::size_t>(pnode)];
        reachable[static_cast<std::size_t>(pos)] =
            reachable[static_cast<std::size_t>(parent)] && parent_alive;
      }
      const NodeKey node = forest.node_at(k, pos);
      if (!forest.is_dummy(node) &&
          !failed[static_cast<std::size_t>(node)] &&
          reachable[static_cast<std::size_t>(pos)]) {
        ++received[static_cast<std::size_t>(node)];
      }
    }
  }
  return received;
}

std::vector<int> single_tree_reception(sim::NodeKey n, int d,
                                       const std::vector<bool>& failed) {
  if (failed.size() != static_cast<std::size_t>(n) + 1) {
    throw std::invalid_argument("failed must cover receivers 1..n");
  }
  std::vector<int> received(static_cast<std::size_t>(n) + 1, 0);
  std::vector<char> reachable(static_cast<std::size_t>(n) + 1, 0);
  for (sim::NodeKey i = 1; i <= n; ++i) {
    const sim::NodeKey parent = (i - 1) / static_cast<sim::NodeKey>(d);
    const bool fed =
        parent == 0 ||
        (reachable[static_cast<std::size_t>(parent)] &&
         !failed[static_cast<std::size_t>(parent)]);
    reachable[static_cast<std::size_t>(i)] = fed;
    if (fed && !failed[static_cast<std::size_t>(i)]) {
      received[static_cast<std::size_t>(i)] = 1;
    }
  }
  return received;
}

ResilienceSummary summarize_resilience(const std::vector<int>& descriptions,
                                       const std::vector<bool>& failed,
                                       int d) {
  assert(descriptions.size() == failed.size());
  ResilienceSummary s;
  double quality = 0;
  for (std::size_t x = 1; x < descriptions.size(); ++x) {
    if (failed[x]) continue;
    ++s.live;
    if (descriptions[x] == d) {
      ++s.fully_served;
    } else if (descriptions[x] == 0) {
      ++s.starved;
    } else {
      ++s.degraded;
    }
    quality += static_cast<double>(descriptions[x]) / d;
  }
  s.mean_quality = s.live > 0 ? quality / static_cast<double>(s.live) : 0.0;
  return s;
}

std::vector<bool> random_failures(sim::NodeKey n, sim::NodeKey failures,
                                  util::Prng& rng) {
  assert(failures <= n);
  std::vector<bool> failed(static_cast<std::size_t>(n) + 1, false);
  sim::NodeKey placed = 0;
  while (placed < failures) {
    const auto x = static_cast<std::size_t>(
        1 + rng.below(static_cast<std::uint64_t>(n)));
    if (!failed[x]) {
      failed[x] = true;
      ++placed;
    }
  }
  return failed;
}

}  // namespace streamcast::multitree
