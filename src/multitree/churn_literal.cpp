#include "src/multitree/churn_literal.hpp"

#include <stdexcept>
#include <vector>

namespace streamcast::multitree {

namespace {

/// Swaps the positions of nodes a and b in tree k of the mutable tree
/// arrays.
void swap_nodes(std::vector<std::vector<NodeKey>>& trees,
                std::vector<std::vector<NodeKey>>& pos, int k, NodeKey a,
                NodeKey b) {
  auto& tree = trees[static_cast<std::size_t>(k)];
  auto& inverse = pos[static_cast<std::size_t>(k)];
  const NodeKey pa = inverse[static_cast<std::size_t>(a)];
  const NodeKey pb = inverse[static_cast<std::size_t>(b)];
  std::swap(tree[static_cast<std::size_t>(pa)],
            tree[static_cast<std::size_t>(pb)]);
  std::swap(inverse[static_cast<std::size_t>(a)],
            inverse[static_cast<std::size_t>(b)]);
}

}  // namespace

LiteralDeleteResult paper_literal_delete(const Forest& forest,
                                         NodeKey victim) {
  const int d = forest.d();
  const NodeKey n = forest.n();
  if (victim < 1 || victim > n) throw std::invalid_argument("bad victim");

  // Mutable copies of the placement.
  std::vector<std::vector<NodeKey>> trees;
  std::vector<std::vector<NodeKey>> pos;
  for (int k = 0; k < d; ++k) {
    trees.push_back(forest.tree(k));
    std::vector<NodeKey> inverse(static_cast<std::size_t>(forest.n_pad()) + 1,
                                 -1);
    for (NodeKey p = 1; p <= forest.n_pad(); ++p) {
      inverse[static_cast<std::size_t>(
          trees.back()[static_cast<std::size_t>(p)])] = p;
    }
    pos.push_back(std::move(inverse));
  }

  LiteralDeleteResult result{.forest = Forest(n, d),
                             .victim = victim,
                             .boundary = (n - 1) % d == 0,
                             .swaps = 0};

  // x: the last *real* all-leaf node in T_0 (dummies skipped).
  NodeKey x = -1;
  for (NodeKey p = forest.n_pad(); p >= 1; --p) {
    const NodeKey node = trees[0][static_cast<std::size_t>(p)];
    if (!forest.is_dummy(node) && forest.interior_tree_of(node) < 0) {
      x = node;
      break;
    }
  }
  if (x < 0) throw std::logic_error("no all-leaf replacement found");

  // Step 1: swap i with x in all d trees.
  if (victim != x) {
    for (int k = 0; k < d; ++k) swap_nodes(trees, pos, k, victim, x);
    result.swaps += d;
  }

  // Step 2 (boundary only): move the new parents of i into positions
  // N-d .. N-1 of every tree (the paper's literal indices).
  if (result.boundary) {
    std::vector<NodeKey> parents;
    for (int k = 0; k < d; ++k) {
      const NodeKey pi = pos[static_cast<std::size_t>(k)]
                            [static_cast<std::size_t>(victim)];
      parents.push_back(
          trees[static_cast<std::size_t>(k)][static_cast<std::size_t>(
              forest.parent_pos(pi))]);
    }
    for (int k = 0; k < d; ++k) {
      for (int j = 0; j < d; ++j) {
        const NodeKey target_pos = n - d + static_cast<NodeKey>(j);
        if (target_pos < 1) continue;
        const NodeKey occupant =
            trees[static_cast<std::size_t>(k)]
                 [static_cast<std::size_t>(target_pos)];
        const NodeKey p = parents[static_cast<std::size_t>(j)];
        if (occupant == p) continue;
        swap_nodes(trees, pos, k, p, occupant);
        ++result.swaps;
      }
    }
  }

  for (int k = 0; k < d; ++k) {
    result.forest.set_tree(k, std::move(trees[static_cast<std::size_t>(k)]));
  }
  return result;
}

bool survivors_congruent(const Forest& forest, NodeKey skip) {
  const int d = forest.d();
  for (NodeKey node = 1; node <= forest.n_pad(); ++node) {
    if (node == skip) continue;
    std::vector<bool> seen(static_cast<std::size_t>(d), false);
    for (int k = 0; k < d; ++k) {
      const int c = forest.child_index(forest.position_of(k, node));
      if (seen[static_cast<std::size_t>(c)]) return false;
      seen[static_cast<std::size_t>(c)] = true;
    }
  }
  return true;
}

}  // namespace streamcast::multitree
