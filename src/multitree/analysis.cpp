#include "src/multitree/analysis.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "src/static/envelopes.hpp"
#include "src/util/ints.hpp"

namespace streamcast::multitree {

int tree_height(NodeKey n, int d) {
  if (n < 1) throw std::invalid_argument("n < 1");
  if (d < 1) throw std::invalid_argument("d < 1");
  // The formula lives in src/static so proofs.cpp can static_assert it;
  // this wrapper adds only the argument validation.
  return envelope::tree_height(n, d);
}

Slot worst_delay_bound(NodeKey n, int d) {
  return static_cast<Slot>(envelope::multitree_delay_bound(n, d));
}

double average_delay_lower_bound(NodeKey n, int d) {
  if (d < 2) throw std::invalid_argument("Theorem 3 requires d >= 2");
  const int h = tree_height(n, d);
  const double dd = d;
  const double numerator = std::pow(dd, h) * (dd + 1) * (h - 1) -
                           dd * dd * (h - 2) - dd * (dd + 1) / 2.0;
  return numerator / (static_cast<double>(n) * (dd - 1));
}

double delay_objective(NodeKey n, int d) {
  if (d < 2) throw std::invalid_argument("F(d) requires d >= 2");
  const double x = static_cast<double>(n) * (1.0 - 1.0 / d);
  return std::log(x) / std::log(static_cast<double>(d)) * d;
}

int optimal_degree(NodeKey n, int max_degree) {
  assert(max_degree >= 2);
  int best = 2;
  Slot best_bound = worst_delay_bound(n, 2);
  for (int d = 3; d <= max_degree; ++d) {
    const Slot bound = worst_delay_bound(n, d);
    if (bound < best_bound) {
      best = d;
      best_bound = bound;
    }
  }
  return best;
}

bool is_complete(NodeKey n, int d) {
  if (d < 2) return false;
  std::int64_t total = 0;
  std::int64_t level = 1;
  while (total < n) {
    level *= d;
    total += level;
  }
  return total == n;
}

}  // namespace streamcast::multitree
