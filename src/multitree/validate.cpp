#include "src/multitree/validate.hpp"

#include "src/multitree/greedy.hpp"
#include "src/util/ints.hpp"

namespace streamcast::multitree {

namespace {

std::string at(int k, NodeKey node) {
  return " (tree " + std::to_string(k) + ", node " + std::to_string(node) +
         ")";
}

}  // namespace

ValidationReport validate_forest(const Forest& forest) {
  ValidationReport report;
  const int d = forest.d();
  const NodeKey n_pad = forest.n_pad();

  // 1. Permutation property is enforced by Forest::set_tree; re-check that
  //    every tree was actually installed.
  for (int k = 0; k < d; ++k) {
    if (forest.tree(k).size() != static_cast<std::size_t>(n_pad) + 1) {
      report.fail("tree " + std::to_string(k) + " not installed");
      return report;
    }
  }

  for (NodeKey node = 1; node <= n_pad; ++node) {
    // 2. Interior in at most one tree; 3. dummies never interior.
    int interior_count = 0;
    for (int k = 0; k < d; ++k) {
      if (forest.is_interior_pos(forest.position_of(k, node))) {
        ++interior_count;
        if (forest.is_dummy(node)) {
          report.fail("dummy is interior" + at(k, node));
        }
      }
    }
    if (interior_count > 1) {
      report.fail("node interior in " + std::to_string(interior_count) +
                  " trees (node " + std::to_string(node) + ")");
    }

    // 4. Child indices pairwise distinct across trees.
    std::vector<bool> seen(static_cast<std::size_t>(d), false);
    for (int k = 0; k < d; ++k) {
      const int c = forest.child_index(forest.position_of(k, node));
      if (seen[static_cast<std::size_t>(c)]) {
        report.fail("child-index collision mod d" + at(k, node));
      }
      seen[static_cast<std::size_t>(c)] = true;
    }
  }
  return report;
}

ValidationReport validate_greedy_parity(const Forest& forest) {
  ValidationReport report;
  const int d = forest.d();
  for (NodeKey node = 1; node <= forest.n_pad(); ++node) {
    const int p = parity_of(node, d);
    for (int k = 0; k < d; ++k) {
      const int slot = forest.child_index(forest.position_of(k, node));
      const int expected =
          static_cast<int>(util::mod_floor(p - k, d));
      if (slot != expected) {
        report.fail("greedy parity slot mismatch" + at(k, node));
      }
    }
  }
  return report;
}

}  // namespace streamcast::multitree
