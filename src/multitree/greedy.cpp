#include "src/multitree/greedy.hpp"

#include <cassert>
#include <stdexcept>
#include <vector>

#include "src/util/ints.hpp"

namespace streamcast::multitree {

namespace {

/// Ascending ids of one parity class with a consume-from-front cursor.
class ParityPool {
 public:
  ParityPool(int d, NodeKey first, NodeKey last) {
    buckets_.resize(static_cast<std::size_t>(d));
    cursor_.resize(static_cast<std::size_t>(d), 0);
    for (NodeKey id = first; id <= last; ++id) {
      buckets_[static_cast<std::size_t>(parity_of(id, d))].push_back(id);
    }
  }

  /// Smallest unused id with the given parity that passes `usable`;
  /// marks it used. Throws if exhausted (cannot happen; see counts proof in
  /// build_greedy).
  template <typename Pred>
  NodeKey take(int parity, Pred usable) {
    auto& bucket = buckets_[static_cast<std::size_t>(parity)];
    auto& cur = cursor_[static_cast<std::size_t>(parity)];
    // Skip-ahead search; ids consumed by a previous tree stay skipped via
    // the predicate, so the cursor can only advance.
    for (std::size_t i = cur; i < bucket.size(); ++i) {
      if (bucket[i] != -1 && usable(bucket[i])) {
        const NodeKey id = bucket[i];
        bucket[i] = -1;
        if (i == cur) {
          while (cur < bucket.size() && bucket[cur] == -1) ++cur;
        }
        return id;
      }
    }
    throw std::logic_error("greedy construction ran out of parity candidates");
  }

 private:
  std::vector<std::vector<NodeKey>> buckets_;
  std::vector<std::size_t> cursor_;
};

}  // namespace

bool paper_strict_greedy_feasible(NodeKey n, int d) {
  // Residue-count matching between G_k = {kI+1..(k+1)I} and the interior
  // positions 1..I demands kI ≡ k (mod d) for every k, i.e. d | (I-1) — or
  // d | I, which balances every residue class.
  const Forest shape(n, d);
  const NodeKey interior = shape.interior();
  return interior % d == 0 || util::mod_floor(interior - 1, d) == 0;
}

Forest build_greedy_paper_strict(NodeKey n, int d) {
  Forest forest(n, d);
  const NodeKey interior = forest.interior();
  const NodeKey n_pad = forest.n_pad();
  for (int k = 0; k < d; ++k) {
    std::vector<NodeKey> tree(static_cast<std::size_t>(n_pad) + 1, kSource);
    std::vector<bool> placed(static_cast<std::size_t>(n_pad) + 1, false);
    // Step 2 verbatim: interior candidates are exactly G_k.
    ParityPool interior_pool(d, static_cast<NodeKey>(k) * interior + 1,
                             (static_cast<NodeKey>(k) + 1) * interior);
    for (NodeKey pos = 1; pos <= interior; ++pos) {
      const int parity =
          static_cast<int>((pos + k - 1) % static_cast<NodeKey>(d));
      NodeKey id = -1;
      try {
        id = interior_pool.take(parity, [](NodeKey) { return true; });
      } catch (const std::logic_error&) {
        throw std::runtime_error(
            "paper-literal greedy Step 2 is infeasible: tree " +
            std::to_string(k) + ", position " + std::to_string(pos) +
            " demands parity " + std::to_string(parity) +
            " but G_k has no unplaced candidate (N=" + std::to_string(n) +
            ", d=" + std::to_string(d) + ")");
      }
      tree[static_cast<std::size_t>(pos)] = id;
      placed[static_cast<std::size_t>(id)] = true;
    }
    ParityPool leaf_pool(d, 1, n_pad);
    for (NodeKey pos = interior + 1; pos <= n_pad; ++pos) {
      const int parity =
          static_cast<int>((pos + k - 1) % static_cast<NodeKey>(d));
      const NodeKey id = leaf_pool.take(parity, [&](NodeKey j) {
        return !placed[static_cast<std::size_t>(j)];
      });
      tree[static_cast<std::size_t>(pos)] = id;
      placed[static_cast<std::size_t>(id)] = true;
    }
    forest.set_tree(k, std::move(tree));
  }
  return forest;
}

Forest build_greedy(NodeKey n, int d) {
  Forest forest(n, d);
  const NodeKey interior = forest.interior();
  const NodeKey n_pad = forest.n_pad();

  // NOTE (paper deviation, documented in DESIGN.md): the paper's Step 2
  // restricts tree T_k's interior candidates to exactly G_k, but that
  // bipartite parity matching is infeasible for some (N, d) — e.g. N = 18,
  // d = 3, where positions 1..5 of T_1 demand two parity-1 nodes while
  // G_1 = {6..10} contains only one. We generalize the candidate pool to
  // every id in {1..dI} not yet chosen as interior by an earlier tree. Per
  // parity class, the interior supply in {1..dI} is exactly I and the total
  // interior demand across all d trees is exactly I, so the greedy pass
  // always succeeds; and because groups are ascending, the smallest viable
  // candidate lies in G_k whenever the paper's own rule is feasible — the
  // generalization reproduces the paper's Figure 3(b) verbatim.
  std::vector<bool> is_interior(static_cast<std::size_t>(n_pad) + 1, false);

  for (int k = 0; k < d; ++k) {
    std::vector<NodeKey> tree(static_cast<std::size_t>(n_pad) + 1, kSource);
    std::vector<bool> placed(static_cast<std::size_t>(n_pad) + 1, false);

    // Step 2: interior positions 1..I, smallest not-yet-interior id of
    // parity (i + k - 1) mod d. Dummies (ids > dI) never qualify: the pool
    // stops at dI = n_pad - d < n.
    ParityPool interior_pool(d, 1, interior * static_cast<NodeKey>(d));
    // Rebuilding the pool per tree keeps the code simple (cost O(dI) per
    // tree); usability excludes ids taken by earlier trees.
    for (NodeKey pos = 1; pos <= interior; ++pos) {
      const int parity =
          static_cast<int>((pos + k - 1) % static_cast<NodeKey>(d));
      const NodeKey id = interior_pool.take(parity, [&](NodeKey j) {
        return !is_interior[static_cast<std::size_t>(j)];
      });
      tree[static_cast<std::size_t>(pos)] = id;
      placed[static_cast<std::size_t>(id)] = true;
      is_interior[static_cast<std::size_t>(id)] = true;
    }

    // Step 3: leaf positions I+1..N_pad, smallest id (dummies included) of
    // the required parity not already placed in this tree.
    ParityPool leaf_pool(d, 1, n_pad);
    for (NodeKey pos = interior + 1; pos <= n_pad; ++pos) {
      const int parity =
          static_cast<int>((pos + k - 1) % static_cast<NodeKey>(d));
      const NodeKey id = leaf_pool.take(parity, [&](NodeKey j) {
        return !placed[static_cast<std::size_t>(j)];
      });
      tree[static_cast<std::size_t>(pos)] = id;
      placed[static_cast<std::size_t>(id)] = true;
    }

    forest.set_tree(k, std::move(tree));
  }
  return forest;
}

}  // namespace streamcast::multitree
