// Mid-stream churn: the multi-tree protocol kept running while the forest
// mutates underneath it — the paper's omitted QoS-under-churn simulation
// ("nodes participating in the swapping process may suffer from hiccups ...
// because they lose data which was delivered before they were moved up a
// tree, or perhaps because they wait longer than originally planned for some
// data because they were moved down a tree", appendix).
//
// Model. Structural ids keep receiving their positions' round-robin streams;
// ChurnForest moves *peers* between ids and occasionally re-derives the
// placement. After every mutation the driver calls resync(now), which
// re-reads the forest and repairs each interior id's per-child cursors:
//
//   next(child r) = highest(child) + 1   if the child trails by at most the
//                                        normal pipeline depth (continuity:
//                                        nothing missed, nothing repeated)
//                 = highest(self)        otherwise (jump to the live edge:
//                                        the gap becomes hiccups/missed
//                                        packets, playback then resumes on
//                                        schedule)
//
// The jump is forced by the rate-matched links of the paper's model: every
// node sends exactly one packet per slot, so there is no spare bandwidth to
// backfill a lagging child — catching up is impossible and a permanently
// lagging subtree would hiccup forever. Skipping to the live edge costs a
// bounded burst of hiccups per affected node, which is exactly the paper's
// "up to d^2 nodes may suffer from hiccups" accounting. Vacant ids receive
// nothing but their positions' cursors keep ticking, so a joiner enters at
// the live stream edge.
//
// Per-peer QoS is measured by PeerQosTracker: one PlaybackBuffer per peer,
// started startup_margin slots after it is seated, playing from the stream
// position of that moment; every missed due packet is one hiccup.
#pragma once

#include <map>
#include <vector>

#include "src/multitree/churn.hpp"
#include "src/net/buffer.hpp"
#include "src/sim/engine.hpp"
#include "src/sim/protocol.hpp"

namespace streamcast::multitree {

using sim::PacketId;
using sim::Slot;
using sim::Tx;

class DynamicMultiTreeProtocol final : public sim::Protocol {
 public:
  /// pipeline_depth = largest child lag (in per-tree rounds) repaired by
  /// continuity rather than a live-edge jump. The steady-state lag is 0 or 1
  /// round; the default 2 tolerates one transition slot on top.
  explicit DynamicMultiTreeProtocol(ChurnForest& churn,
                                    int pipeline_depth = 2);

  void transmit(Slot t, std::vector<Tx>& out) override;
  void deliver(Slot t, const Tx& tx) override;

  /// Re-reads the (possibly restructured) forest and repairs all cursors.
  /// Call after every ChurnForest mutation, before simulating further slots.
  void resync(Slot now);

  /// Newest tree-`tree` packet index m received by structural id (-1 none).
  std::int64_t highest_received(NodeKey id, int tree) const;

  /// First packet id of the next completely-fresh source round: a viewer
  /// seated now is guaranteed every packet >= live_edge() (used to place
  /// joiners' playback at the live stream edge).
  PacketId live_edge() const;

 private:
  struct Interior {
    NodeKey id = 0;
    NodeKey pos = 0;
    int tree = 0;
    std::vector<std::int64_t> next;  // per child slot: next m to offer
  };

  void rebuild_interiors(Slot now);

  ChurnForest& churn_;
  int pipeline_depth_;
  std::vector<std::vector<std::int64_t>> highest_;  // [id][tree] -> max m
  std::vector<Interior> interiors_;
  std::vector<std::vector<std::int64_t>> src_next_;  // [tree][child slot]
};

/// Per-peer playback accounting under churn.
class PeerQosTracker final : public sim::DeliveryObserver {
 public:
  /// Every peer starts playback startup_margin slots after being seated, at
  /// the packet its interior trees are then distributing.
  PeerQosTracker(const ChurnForest& churn,
                 const DynamicMultiTreeProtocol& protocol,
                 Slot startup_margin);

  void on_delivery(const sim::Delivery& d) override;

  /// Registers a peer seated at slot t (call for the initial population at
  /// t = 0 and after every add()).
  void peer_seated(PeerId peer, Slot t);
  /// Finalizes a departing peer's stats before ChurnForest::remove().
  void peer_left(PeerId peer, Slot t);
  /// Finalizes all remaining peers at the end of the run.
  void finish(Slot t);

  std::int64_t total_hiccups() const { return hiccups_; }
  std::int64_t total_played() const { return played_; }
  std::int64_t late_or_duplicate() const { return late_; }
  std::size_t peers_tracked() const { return tracked_; }
  std::size_t peers_with_hiccups() const { return peers_with_hiccups_; }

 private:
  void retire(net::PlaybackBuffer& buffer, Slot t);

  const ChurnForest& churn_;
  const DynamicMultiTreeProtocol& protocol_;
  Slot margin_;
  std::map<PeerId, net::PlaybackBuffer> buffers_;
  std::int64_t hiccups_ = 0;
  std::int64_t played_ = 0;
  std::int64_t late_ = 0;
  std::size_t tracked_ = 0;
  std::size_t peers_with_hiccups_ = 0;
};

}  // namespace streamcast::multitree
