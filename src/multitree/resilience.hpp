// Failure resilience / MDC analysis (§1 of the paper).
//
// The intro's case against single-tree multicast includes "(ii) less
// resilience to node failures", and the related-work discussion notes the
// multi-tree scheme "can be combined with MDC": encode the stream as d
// descriptions, one per tree; a viewer that still receives q of d
// descriptions plays at q/d quality instead of stalling.
//
// This module quantifies that claim. Given a set of failed (crashed,
// not-yet-repaired) receivers, a viewer receives tree k's description iff
// no proper ancestor on its tree-k path failed. In the single-tree baseline
// the same condition governs the *whole* stream.
#pragma once

#include <vector>

#include "src/multitree/forest.hpp"
#include "src/util/prng.hpp"

namespace streamcast::multitree {

/// descriptions[x] = number of trees whose full root-path to receiver x is
/// failure-free, for every live receiver x (failed receivers get 0).
/// `failed` is indexed by receiver id (index 0 unused).
std::vector<int> descriptions_received(const Forest& forest,
                                       const std::vector<bool>& failed);

/// Same question for the single BFS d-ary tree over n receivers: 1 if the
/// stream still reaches x, else 0.
std::vector<int> single_tree_reception(sim::NodeKey n, int d,
                                       const std::vector<bool>& failed);

struct ResilienceSummary {
  sim::NodeKey live = 0;           // receivers that did not fail
  sim::NodeKey fully_served = 0;   // live receivers with all d descriptions
  sim::NodeKey degraded = 0;       // live receivers with 1..d-1 descriptions
  sim::NodeKey starved = 0;        // live receivers with 0 descriptions
  double mean_quality = 0;         // mean fraction of descriptions received
};

ResilienceSummary summarize_resilience(const std::vector<int>& descriptions,
                                       const std::vector<bool>& failed,
                                       int d);

/// Uniform random failure set of exactly `failures` receivers out of n.
std::vector<bool> random_failures(sim::NodeKey n, sim::NodeKey failures,
                                  util::Prng& rng);

}  // namespace streamcast::multitree
