// Structured disjoint tree construction (§2.2.1).
//
// Tree T_0 is filled in BFS order with G_0 ⊕ G_1 ⊕ ... ⊕ G_{d-1} ⊕ G_d. Each
// subsequent tree rotates the group order left by one (so G_k leads tree T_k
// and provides its interior nodes); after every P = d / gcd(I, d) rotations
// the elements *within* each interior group rotate right by one; and G_d
// rotates right by one before every tree. The appendix proof shows the
// resulting positions of any node are pairwise non-congruent mod d, which is
// exactly the collision-freedom the round-robin schedule needs.
#pragma once

#include "src/multitree/forest.hpp"

namespace streamcast::multitree {

/// Builds the structured forest for n receivers and degree d.
Forest build_structured(NodeKey n, int d);

/// O(1) closed form of the structured placement: the position of node x in
/// tree k, without building anything. Lets a node compute its entire
/// schedule (positions, parents, receive residues) from (N, d, x) alone —
/// the same local-computability the greedy parity rule gives.
///
/// Derivation from the §2.2.1 rotations: after k group-rotations G_i leads
/// at block (i - k) mod d, each interior group's elements have rotated
/// right floor(k / P) times (P = d / gcd(I, d)), and G_d has rotated right
/// k times. Verified equal to build_structured over an (N, d) grid.
NodeKey structured_position(NodeKey n, int d, int k, NodeKey x);

/// Exact inverse of structured_position: the node occupying position `pos`
/// of tree k. With it the closed-form replay (src/scale) resolves parents
/// and children without materializing any tree. Verified equal to
/// build_structured's node_at over the same (N, d) grid.
NodeKey structured_node_at(NodeKey n, int d, int k, NodeKey pos);

}  // namespace streamcast::multitree
