#include "src/multitree/forest.hpp"

#include <cassert>
#include <numeric>
#include <stdexcept>

#include "src/util/ints.hpp"

namespace streamcast::multitree {

Forest::Forest(NodeKey n, int d) : n_(n), d_(d) {
  if (n < 1) throw std::invalid_argument("need at least one receiver");
  if (d < 1) throw std::invalid_argument("tree degree must be >= 1");
  interior_ = static_cast<NodeKey>(util::ceil_div(n, d) - 1);
  n_pad_ = static_cast<NodeKey>(d) * (interior_ + 1);
  assert(n_pad_ >= n_ && n_pad_ - n_ < static_cast<NodeKey>(d_));
  trees_.resize(static_cast<std::size_t>(d_));
  pos_of_.resize(static_cast<std::size_t>(d_));
}

std::vector<NodeKey> Forest::group(int k) const {
  assert(k >= 0 && k <= d_);
  std::vector<NodeKey> g;
  if (k < d_) {
    g.resize(static_cast<std::size_t>(interior_));
    std::iota(g.begin(), g.end(), static_cast<NodeKey>(k) * interior_ + 1);
  } else {
    g.resize(static_cast<std::size_t>(n_pad_ - static_cast<NodeKey>(d_) *
                                                   interior_));
    std::iota(g.begin(), g.end(), static_cast<NodeKey>(d_) * interior_ + 1);
  }
  return g;
}

void Forest::set_tree(int k, std::vector<NodeKey> pos_to_node) {
  assert(k >= 0 && k < d_);
  if (pos_to_node.size() != static_cast<std::size_t>(n_pad_) + 1 ||
      pos_to_node[0] != kSource) {
    throw std::invalid_argument("malformed tree position array");
  }
  std::vector<NodeKey> inverse(static_cast<std::size_t>(n_pad_) + 1, -1);
  for (NodeKey pos = 1; pos <= n_pad_; ++pos) {
    const NodeKey node = pos_to_node[static_cast<std::size_t>(pos)];
    if (node < 1 || node > n_pad_ ||
        inverse[static_cast<std::size_t>(node)] != -1) {
      throw std::invalid_argument("tree is not a permutation of receivers");
    }
    inverse[static_cast<std::size_t>(node)] = pos;
  }
  trees_[static_cast<std::size_t>(k)] = std::move(pos_to_node);
  pos_of_[static_cast<std::size_t>(k)] = std::move(inverse);
}

NodeKey Forest::node_at(int k, NodeKey pos) const {
  assert(pos >= 1 && pos <= n_pad_);
  return trees_[static_cast<std::size_t>(k)][static_cast<std::size_t>(pos)];
}

NodeKey Forest::position_of(int k, NodeKey node) const {
  assert(node >= 1 && node <= n_pad_);
  return pos_of_[static_cast<std::size_t>(k)][static_cast<std::size_t>(node)];
}

int Forest::interior_tree_of(NodeKey node) const {
  assert(node >= 1 && node <= n_pad_);
  // Interior iff the node sits in an interior position; the constructions
  // put only G_k members there in tree k, but we answer from the actual
  // placement so churn-mutated forests stay consistent.
  for (int k = 0; k < d_; ++k) {
    if (is_interior_pos(position_of(k, node))) return k;
  }
  return -1;
}

NodeKey Forest::parent_pos(NodeKey pos) const {
  assert(pos >= 1);
  return (pos - 1) / static_cast<NodeKey>(d_);
}

NodeKey Forest::child_pos(NodeKey pos, int child) const {
  assert(child >= 0 && child < d_);
  return static_cast<NodeKey>(d_) * pos + 1 + static_cast<NodeKey>(child);
}

int Forest::child_index(NodeKey pos) const {
  assert(pos >= 1);
  return static_cast<int>((pos - 1) % static_cast<NodeKey>(d_));
}

int Forest::depth_of(NodeKey pos) const {
  int depth = 0;
  while (pos > 0) {
    pos = parent_pos(pos);
    ++depth;
  }
  return depth;
}

int Forest::height() const { return depth_of(n_pad_); }

const std::vector<NodeKey>& Forest::tree(int k) const {
  assert(k >= 0 && k < d_);
  return trees_[static_cast<std::size_t>(k)];
}

}  // namespace streamcast::multitree
