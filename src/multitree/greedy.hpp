// Greedy disjoint tree construction (§2.2.2).
//
// Every receiver i carries a parity p_i = (i-1) mod d and occupies child slot
// (p_i - k) mod d in tree k. T_0 is the same as the structured T_0. For each
// later tree T_k, interior positions 1..I are filled from G_k and leaf
// positions I+1..N_pad from the rest, always choosing the smallest unplaced
// id whose parity matches the position's required parity (i + k - 1) mod d.
//
// For N = 15, d = 3 this reproduces the paper's Figure 3(b) exactly:
//   T_1 = 5 6 7 8 | 3 1 2 9 4 11 12 10 | 14 15 13.
#pragma once

#include "src/multitree/forest.hpp"

namespace streamcast::multitree {

/// Builds the greedy forest for n receivers and degree d.
Forest build_greedy(NodeKey n, int d);

/// Parity of a receiver id, p_i = (i-1) mod d.
inline int parity_of(NodeKey id, int d) {
  return static_cast<int>((id - 1) % static_cast<NodeKey>(d));
}

/// True iff the paper's *literal* Step 2 (interior candidates restricted to
/// G_k) admits a perfect parity matching for every tree — equivalently, the
/// per-residue supply of each G_k matches the interior positions' demand:
/// d | I, or d | (I-1) (then k(I-1) ≡ 0 mod d for all k). When true, the
/// generalized pool in build_greedy provably reproduces the paper's rule
/// verbatim; when false (e.g. N = 18, d = 3), the paper's pseudocode has no
/// valid output and the generalization is required (DESIGN.md §5).
bool paper_strict_greedy_feasible(NodeKey n, int d);

/// The paper's Step 2 verbatim: throws std::runtime_error with the stuck
/// (tree, position) when the parity matching is infeasible. Exists to
/// document the deviation precisely; production callers use build_greedy.
Forest build_greedy_paper_strict(NodeKey n, int d);

}  // namespace streamcast::multitree
