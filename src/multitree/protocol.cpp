#include "src/multitree/protocol.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

namespace streamcast::multitree {

namespace {

constexpr std::int64_t kUnbounded = std::numeric_limits<std::int64_t>::max();

}  // namespace

MultiTreeProtocol::MultiTreeProtocol(const Forest& forest, StreamMode mode,
                                     SourceGate gate,
                                     std::vector<sim::NodeKey> key_map)
    : forest_(forest), mode_(mode), gate_(std::move(gate)),
      key_map_(std::move(key_map)) {
  if (!key_map_.empty()) {
    if (key_map_.size() != static_cast<std::size_t>(forest_.n()) + 1) {
      throw std::invalid_argument("key_map must cover source + receivers");
    }
    const sim::NodeKey max_key =
        *std::max_element(key_map_.begin(), key_map_.end());
    inverse_key_map_.assign(static_cast<std::size_t>(max_key) + 1, -1);
    for (NodeKey local = 0; local <= forest_.n(); ++local) {
      inverse_key_map_[static_cast<std::size_t>(
          key_map_[static_cast<std::size_t>(local)])] = local;
    }
  }
  const int d = forest_.d();
  use_periodic_cache(true);
  src_next_.assign(static_cast<std::size_t>(d),
                   std::vector<std::int64_t>(static_cast<std::size_t>(d), 0));
  interior_index_.assign(static_cast<std::size_t>(forest_.n()) + 1, -1);
  for (int k = 0; k < d; ++k) {
    for (NodeKey pos = 1; pos <= forest_.interior(); ++pos) {
      const NodeKey node = forest_.node_at(k, pos);
      assert(!forest_.is_dummy(node));
      interior_index_[static_cast<std::size_t>(node)] =
          static_cast<int>(interiors_.size());
      interiors_.push_back(InteriorState{
          .node = node,
          .pos = pos,
          .tree = k,
          .last_recv_m = -1,
          .child_next =
              std::vector<std::int64_t>(static_cast<std::size_t>(d), 0)});
    }
  }
}

sim::NodeKey MultiTreeProtocol::global_key(NodeKey local) const {
  return key_map_.empty() ? local
                          : key_map_[static_cast<std::size_t>(local)];
}

NodeKey MultiTreeProtocol::local_key(sim::NodeKey global) const {
  if (key_map_.empty()) {
    return global <= forest_.n() ? global : -1;
  }
  if (global < 0 ||
      static_cast<std::size_t>(global) >= inverse_key_map_.size()) {
    return -1;
  }
  return inverse_key_map_[static_cast<std::size_t>(global)];
}

void MultiTreeProtocol::use_periodic_cache(bool enabled) {
  if (!enabled) {
    cache_.reset();
    return;
  }
  // The memoized schedule assumes every scheduled packet is sendable the
  // slot the round-robin reaches it: true for pre-recorded data and for the
  // d-slot-shifted prebuffered live mode, false for the pipelined live mode
  // (packet p does not exist before slot p) and for gated sources (backbone
  // availability is data-dependent).
  if (mode_ != StreamMode::kLivePipelined && !gate_ && !cache_) {
    cache_ = build_periodic_schedule(forest_);
  }
}

void MultiTreeProtocol::transmit(Slot t, std::vector<Tx>& out) {
  const int d = forest_.d();
  // Pre-buffered live streaming: the identical schedule starts d slots late
  // (the residue t mod d is unchanged by the shift, so nothing else moves).
  if (mode_ == StreamMode::kLivePrebuffered && t < d) return;
  if (cache_) {
    const Slot shifted = mode_ == StreamMode::kLivePrebuffered ? t - d : t;
    const Slot period = shifted / d;
    for (const PeriodicSchedule::Entry& e :
         cache_->residues[static_cast<std::size_t>(shifted % d)]) {
      if (period < e.alpha) continue;
      out.push_back(Tx{.from = global_key(e.from),
                       .to = global_key(e.to),
                       .packet = static_cast<PacketId>(e.tree) +
                                 (period - e.alpha) * d,
                       .tag = static_cast<std::int32_t>(e.tree)});
    }
    return;
  }
  const int r = static_cast<int>(t % d);

  // Emits the next pending packet of tree k from `from` (at position
  // `from_pos`) to its r-th child, if it exists and is sendable.
  // `last_m` is the newest tree-k packet index held (kUnbounded for the
  // pre-recorded source). Dummy children are skipped but still consume the
  // round-robin turn, exactly as if the dummy were present.
  auto pump = [&](NodeKey from_local, NodeKey from_pos, int k,
                  std::int64_t last_m, std::vector<std::int64_t>& cursors) {
    auto& m = cursors[static_cast<std::size_t>(r)];
    if (m > last_m) return;  // nothing new for this child yet
    const PacketId p = static_cast<PacketId>(k) + m * d;
    if (mode_ == StreamMode::kLivePipelined && p > t) return;  // not generated
    if (from_local == 0 && gate_ && !gate_(p, t)) return;  // upstream lag
    const NodeKey child = forest_.node_at(k, forest_.child_pos(from_pos, r));
    if (!forest_.is_dummy(child)) {
      out.push_back(Tx{.from = global_key(from_local),
                       .to = global_key(child),
                       .packet = p,
                       .tag = static_cast<std::int32_t>(k)});
    }
    ++m;
  };

  // Source: one packet per tree per slot (capacity d).
  for (int k = 0; k < d; ++k) {
    pump(/*from_local=*/0, /*from_pos=*/0, k, kUnbounded,
         src_next_[static_cast<std::size_t>(k)]);
  }
  // Every interior receiver forwards within its one interior tree.
  for (auto& st : interiors_) {
    pump(st.node, st.pos, st.tree, st.last_recv_m, st.child_next);
  }
}

void MultiTreeProtocol::deliver(Slot t, const Tx& tx) {
  (void)t;
  // The memoized schedule derives every send from slot arithmetic alone;
  // there is no cursor state to advance.
  if (cache_) return;
  const NodeKey local = local_key(tx.to);
  if (local < 1) return;
  const int idx = interior_index_[static_cast<std::size_t>(local)];
  if (idx < 0) return;  // all-leaf node: nothing to forward
  auto& st = interiors_[static_cast<std::size_t>(idx)];
  if (tx.tag != st.tree) return;  // leaf role in another tree
  const std::int64_t m = (tx.packet - st.tree) / forest_.d();
  // Round-robin delivery is strictly in order within a tree; a violation
  // here would mean the congruence property failed.
  assert(m == st.last_recv_m + 1);
  st.last_recv_m = m;
}

}  // namespace streamcast::multitree
