// Plain-text (de)serialization of overlay placements, so a planned overlay
// can be stored, diffed, shipped to nodes, and reloaded byte-identically.
//
// Format (line-oriented, ASCII):
//   streamcast-forest v1
//   n <N> d <D>
//   tree 0: <node at pos 1> <node at pos 2> ... <node at pos n_pad>
//   ...
//   tree d-1: ...
#pragma once

#include <iosfwd>
#include <string>

#include "src/multitree/forest.hpp"

namespace streamcast::multitree {

/// Writes the forest placement; deterministic output.
void save_forest(const Forest& forest, std::ostream& os);
std::string forest_to_string(const Forest& forest);

/// Parses a placement previously produced by save_forest. Throws
/// std::runtime_error on malformed input (bad header, wrong counts, ids out
/// of range or repeated — Forest::set_tree re-validates the permutation).
Forest load_forest(std::istream& is);
Forest forest_from_string(const std::string& text);

}  // namespace streamcast::multitree
