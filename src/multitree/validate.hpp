// Machine-checked versions of the properties the paper proves in its
// appendix. Both constructions (and every churn-mutated forest) must satisfy
// all of them; the property-test suites sweep these over (N, d) grids.
#pragma once

#include <string>
#include <vector>

#include "src/multitree/forest.hpp"

namespace streamcast::multitree {

struct ValidationReport {
  bool ok = true;
  std::vector<std::string> errors;

  void fail(std::string why) {
    ok = false;
    errors.push_back(std::move(why));
  }
};

/// Checks:
///  1. Every tree is a permutation of all (padded) receiver ids.
///  2. Interior-disjoint: each receiver occupies an interior position in at
///     most one tree.
///  3. Dummies are leaves in every tree.
///  4. Collision-freedom: each receiver's child indices (pos-1) mod d are
///     pairwise distinct across the d trees (the appendix congruence
///     property — this is what makes the round-robin schedule receive at
///     most one packet per node per slot).
ValidationReport validate_forest(const Forest& forest);

/// Additional greedy-specific invariant: node i occupies child slot
/// (p_i - k) mod d in tree k, where p_i = (i-1) mod d (§2.2.2).
ValidationReport validate_greedy_parity(const Forest& forest);

}  // namespace streamcast::multitree
