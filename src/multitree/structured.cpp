#include "src/multitree/structured.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "src/util/ints.hpp"

namespace streamcast::multitree {

namespace {

/// Rotates v right by one: the last element becomes the first.
void rotate_right(std::vector<NodeKey>& v) {
  if (v.size() > 1) std::rotate(v.rbegin(), v.rbegin() + 1, v.rend());
}

std::vector<NodeKey> concat_tree(const std::vector<std::vector<NodeKey>>& gs,
                                 const std::vector<NodeKey>& gd) {
  std::vector<NodeKey> tree{kSource};
  for (const auto& g : gs) tree.insert(tree.end(), g.begin(), g.end());
  tree.insert(tree.end(), gd.begin(), gd.end());
  return tree;
}

}  // namespace

NodeKey structured_position(NodeKey n, int d, int k, NodeKey x) {
  const Forest shape(n, d);
  const NodeKey interior = shape.interior();
  if (x < 1 || x > shape.n_pad()) {
    throw std::invalid_argument("node id out of range");
  }
  if (k < 0 || k >= d) throw std::invalid_argument("tree index out of range");

  if (x > static_cast<NodeKey>(d) * interior) {
    // G_d member, original tail offset j = x - dI - 1; the group rotates
    // right once per tree, so in T_k it sits at offset (j + k) mod d.
    const NodeKey j = x - static_cast<NodeKey>(d) * interior - 1;
    return static_cast<NodeKey>(d) * interior +
           (j + static_cast<NodeKey>(k)) % static_cast<NodeKey>(d) + 1;
  }
  // Interior-candidate member: x = G_i^j with i = (x-1)/I, j = (x-1) mod I.
  const NodeKey i = (x - 1) / interior;
  const NodeKey j = (x - 1) % interior;
  const std::int64_t p =
      d / std::gcd(static_cast<std::int64_t>(interior),
                   static_cast<std::int64_t>(d));
  // Block order after k left-rotations: group i leads block (i - k) mod d;
  // elements have rotated right floor(k / P) times within the group.
  const NodeKey block =
      static_cast<NodeKey>(((i - k) % d + d) % d);
  const NodeKey slot =
      (j + static_cast<NodeKey>(k / p)) % interior;
  return block * interior + slot + 1;
}

NodeKey structured_node_at(NodeKey n, int d, int k, NodeKey pos) {
  const Forest shape(n, d);
  const NodeKey interior = shape.interior();
  if (pos < 1 || pos > shape.n_pad()) {
    throw std::invalid_argument("position out of range");
  }
  if (k < 0 || k >= d) throw std::invalid_argument("tree index out of range");

  if (pos > static_cast<NodeKey>(d) * interior) {
    // Tail position: undo the k right-rotations of G_d.
    const NodeKey off = pos - static_cast<NodeKey>(d) * interior - 1;
    const NodeKey j = static_cast<NodeKey>(
        util::mod_floor(off - static_cast<NodeKey>(k), d));
    return static_cast<NodeKey>(d) * interior + j + 1;
  }
  // Interior position: block b hosts group (b + k) mod d, and the element
  // slot undoes the floor(k / P) intra-group right-rotations.
  const NodeKey block = (pos - 1) / interior;
  const NodeKey slot = (pos - 1) % interior;
  const std::int64_t p =
      d / std::gcd(static_cast<std::int64_t>(interior),
                   static_cast<std::int64_t>(d));
  const NodeKey i = static_cast<NodeKey>((block + k) % d);
  const NodeKey j = static_cast<NodeKey>(
      util::mod_floor(slot - static_cast<NodeKey>(k / p), interior));
  return i * interior + j + 1;
}

Forest build_structured(NodeKey n, int d) {
  Forest forest(n, d);
  const NodeKey interior = forest.interior();

  // Step 1: initialization. Group order [G_0, ..., G_{d-1}]; T_0 = G ⊕ G_d.
  std::vector<std::vector<NodeKey>> groups;
  groups.reserve(static_cast<std::size_t>(d));
  for (int g = 0; g < d; ++g) groups.push_back(forest.group(g));
  std::vector<NodeKey> gd = forest.group(d);
  forest.set_tree(0, concat_tree(groups, gd));

  // P = d / gcd(I, d); with I = 0 every interior group is empty and the
  // intra-group rotation is a no-op, so any positive P works.
  const std::int64_t p =
      interior == 0 ? d : d / std::gcd(static_cast<std::int64_t>(interior),
                                       static_cast<std::int64_t>(d));

  for (int k = 1; k < d; ++k) {
    // Step 2: rotate the group order left; G_k moves to the front.
    std::rotate(groups.begin(), groups.begin() + 1, groups.end());
    // Step 3: after every P rotations, rotate each interior group's
    // elements right by one.
    if (k % p == 0) {
      for (auto& g : groups) rotate_right(g);
    }
    // Step 4: rotate the perpetual-leaf group right and build T_k.
    rotate_right(gd);
    forest.set_tree(k, concat_tree(groups, gd));
  }
  return forest;
}

}  // namespace streamcast::multitree
