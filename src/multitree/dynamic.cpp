#include "src/multitree/dynamic.hpp"

#include <algorithm>
#include <cassert>

#include "src/multitree/analysis.hpp"

namespace streamcast::multitree {

DynamicMultiTreeProtocol::DynamicMultiTreeProtocol(ChurnForest& churn,
                                                   int pipeline_depth)
    : churn_(churn), pipeline_depth_(std::max(pipeline_depth, 1)) {
  const int d = churn_.d();
  src_next_.assign(static_cast<std::size_t>(d),
                   std::vector<std::int64_t>(static_cast<std::size_t>(d), 0));
  resync(0);
}

std::int64_t DynamicMultiTreeProtocol::highest_received(NodeKey id,
                                                        int tree) const {
  if (id < 1 || static_cast<std::size_t>(id) >= highest_.size()) return -1;
  return highest_[static_cast<std::size_t>(id)][static_cast<std::size_t>(
      tree)];
}

sim::PacketId DynamicMultiTreeProtocol::live_edge() const {
  std::int64_t m = 0;
  for (const auto& per_tree : src_next_) {
    for (const std::int64_t next : per_tree) m = std::max(m, next);
  }
  return (m + 1) * churn_.d();
}

void DynamicMultiTreeProtocol::resync(Slot now) {
  (void)now;
  const Forest& forest = churn_.forest();
  // Structural ids that vanished in a shrink were vacant; new ids start with
  // empty reception history.
  highest_.resize(static_cast<std::size_t>(forest.n_pad()) + 1,
                  std::vector<std::int64_t>(
                      static_cast<std::size_t>(churn_.d()), -1));
  rebuild_interiors(now);
}

void DynamicMultiTreeProtocol::rebuild_interiors(Slot now) {
  (void)now;
  const Forest& forest = churn_.forest();
  const int d = churn_.d();
  interiors_.clear();
  for (int k = 0; k < d; ++k) {
    for (NodeKey pos = 1; pos <= forest.interior(); ++pos) {
      const NodeKey id = forest.node_at(k, pos);
      Interior st{.id = id,
                  .pos = pos,
                  .tree = k,
                  .next = std::vector<std::int64_t>(
                      static_cast<std::size_t>(d), 0)};
      const std::int64_t own =
          highest_[static_cast<std::size_t>(id)][static_cast<std::size_t>(k)];
      for (int r = 0; r < d; ++r) {
        const NodeKey child = forest.node_at(k, forest.child_pos(pos, r));
        const std::int64_t have =
            highest_[static_cast<std::size_t>(child)]
                    [static_cast<std::size_t>(k)];
        // Continuity when the child is within normal pipeline depth; a
        // live-edge jump otherwise (rate-matched links leave no bandwidth
        // to backfill, so a lagging child must skip ahead — the skipped
        // rounds are its hiccups).
        const bool continuous = own - have <= pipeline_depth_;
        st.next[static_cast<std::size_t>(r)] =
            std::max(continuous ? have + 1 : own, std::int64_t{0});
      }
      interiors_.push_back(std::move(st));
    }
  }
}

void DynamicMultiTreeProtocol::transmit(Slot t, std::vector<Tx>& out) {
  const Forest& forest = churn_.forest();
  const int d = churn_.d();
  const auto r = static_cast<std::size_t>(t % d);

  // Source: one packet per tree per slot, to the position-(r+1) occupant.
  // Vacant positions' streams keep ticking so joiners enter at the edge.
  for (int k = 0; k < d; ++k) {
    auto& m = src_next_[static_cast<std::size_t>(k)][r];
    const NodeKey child = forest.node_at(k, static_cast<NodeKey>(r) + 1);
    if (!churn_.is_vacant(child)) {
      out.push_back(Tx{.from = 0,
                       .to = child,
                       .packet = static_cast<sim::PacketId>(k) + m * d,
                       .tag = static_cast<std::int32_t>(k)});
    }
    ++m;
  }

  for (auto& st : interiors_) {
    auto& m = st.next[r];
    const std::int64_t own =
        highest_[static_cast<std::size_t>(st.id)]
                [static_cast<std::size_t>(st.tree)];
    if (own < 0) continue;  // nothing received yet (fresh interior id)
    const NodeKey child =
        forest.node_at(st.tree, forest.child_pos(st.pos, static_cast<int>(r)));
    if (own - m > pipeline_depth_) {
      // Stale cursor (a rebuild reset this id's state while the stream ran
      // on): live-edge jump at send time, never below what the child
      // already holds. The skipped rounds are the child's hiccups.
      const std::int64_t have =
          highest_[static_cast<std::size_t>(child)]
                  [static_cast<std::size_t>(st.tree)];
      m = std::max(own, have + 1);
    }
    if (m > own) continue;  // nothing sendable for this child yet
    if (!churn_.is_vacant(child)) {
      out.push_back(Tx{.from = st.id,
                       .to = child,
                       .packet = static_cast<sim::PacketId>(st.tree) + m * d,
                       .tag = static_cast<std::int32_t>(st.tree)});
    }
    ++m;
  }
}

void DynamicMultiTreeProtocol::deliver(Slot t, const Tx& tx) {
  (void)t;
  const std::int64_t m = (tx.packet - tx.tag) / churn_.d();
  auto& cell = highest_[static_cast<std::size_t>(tx.to)]
                       [static_cast<std::size_t>(tx.tag)];
  cell = std::max(cell, m);
}

// --------------------------------------------------------------------------

PeerQosTracker::PeerQosTracker(const ChurnForest& churn,
                               const DynamicMultiTreeProtocol& protocol,
                               Slot startup_margin)
    : churn_(churn), protocol_(protocol), margin_(startup_margin) {}

void PeerQosTracker::peer_seated(PeerId peer, Slot t) {
  buffers_.emplace(peer,
                   net::PlaybackBuffer(t + margin_, protocol_.live_edge()));
  ++tracked_;
}

void PeerQosTracker::on_delivery(const sim::Delivery& d) {
  const PeerId peer = churn_.peer_at(d.tx.to);
  const auto it = buffers_.find(peer);
  if (it == buffers_.end()) return;
  it->second.advance_to(d.received - 1);
  it->second.on_receive(d.received, d.tx.packet);
}

void PeerQosTracker::retire(net::PlaybackBuffer& buffer, Slot t) {
  buffer.advance_to(t);
  hiccups_ += buffer.hiccups();
  played_ += buffer.played();
  late_ += buffer.late_or_duplicate();
  if (buffer.hiccups() > 0) ++peers_with_hiccups_;
}

void PeerQosTracker::peer_left(PeerId peer, Slot t) {
  const auto it = buffers_.find(peer);
  if (it == buffers_.end()) return;
  retire(it->second, t);
  buffers_.erase(it);
}

void PeerQosTracker::finish(Slot t) {
  for (auto& [peer, buffer] : buffers_) retire(buffer, t);
  buffers_.clear();
}

}  // namespace streamcast::multitree
