// Closed-form bounds of §2.3: Theorem 2 (worst-case playback delay and
// buffer size), Theorem 3 (average-delay lower bound), and the tree-degree
// optimization showing d = 2 or 3 is always optimal.
#pragma once

#include <cstdint>

#include "src/sim/packet.hpp"

namespace streamcast::multitree {

using sim::NodeKey;
using sim::Slot;

/// Tree height h = ceil( log_d [ N(1 - 1/d) + 1 ] ): the smallest h with
/// d + d^2 + ... + d^h >= N. Matches Forest::height() for every (N, d);
/// (h + 1) is the paper's tree depth counting the root.
int tree_height(NodeKey n, int d);

/// Theorem 2: worst-case playback delay T <= h*d. Also the sufficient
/// per-node buffer size (in packets).
Slot worst_delay_bound(NodeKey n, int d);

/// Theorem 3: lower bound on the average playback delay,
///   [ d^h (d+1)(h-1) - d^2 (h-2) - d(d+1)/2 ] / [ N (d-1) ].
/// Stated for complete trees (N = d + ... + d^h) and d >= 2.
double average_delay_lower_bound(NodeKey n, int d);

/// The paper's F(d) = log_d[ N(1 - 1/d) ] * d, the large-N approximation of
/// the worst-case delay bound minimized in §2.3.
double delay_objective(NodeKey n, int d);

/// argmin over d >= 2 of the exact bound h(d)*d (ties broken toward smaller
/// d). §2.3 proves the result is always 2 or 3; tests sweep this.
int optimal_degree(NodeKey n, int max_degree = 16);

/// True iff the d-ary trees for N receivers are complete:
/// N == d + d^2 + ... + d^h for some h >= 1.
bool is_complete(NodeKey n, int d);

}  // namespace streamcast::multitree
