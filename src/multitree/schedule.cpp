#include "src/multitree/schedule.hpp"

#include <algorithm>
#include <cassert>

#include "src/util/ints.hpp"

namespace streamcast::multitree {

std::vector<Slot> arrival_offsets(const Forest& forest, int k) {
  const int d = forest.d();
  const NodeKey n_pad = forest.n_pad();
  std::vector<Slot> offset(static_cast<std::size_t>(n_pad) + 1, 0);
  // Positions are BFS-ordered, so parents are computed before children.
  for (NodeKey p = 1; p <= n_pad; ++p) {
    const int c = forest.child_index(p);
    if (p <= static_cast<NodeKey>(d)) {
      offset[static_cast<std::size_t>(p)] = c;  // S sends to child c in slot c
    } else {
      const Slot parent = offset[static_cast<std::size_t>(forest.parent_pos(p))];
      offset[static_cast<std::size_t>(p)] =
          parent + 1 + util::mod_floor(c - parent - 1, d);
    }
  }
  (void)k;  // the offsets depend only on the position lattice, not on k
  return offset;
}

std::vector<Slot> closed_form_delays(const Forest& forest) {
  const int d = forest.d();
  // A_k(p) is identical for every k (pure position arithmetic), so compute
  // it once and index by each node's per-tree position.
  const auto offsets = arrival_offsets(forest, 0);
  std::vector<Slot> delay(static_cast<std::size_t>(forest.n()) + 1, 0);
  for (NodeKey x = 1; x <= forest.n(); ++x) {
    Slot a = 0;
    for (int k = 0; k < d; ++k) {
      const NodeKey pos = forest.position_of(k, x);
      a = std::max(a, offsets[static_cast<std::size_t>(pos)] - k);
    }
    delay[static_cast<std::size_t>(x)] = a;
  }
  return delay;
}

std::vector<Slot> closed_form_delays_pipelined(const Forest& forest) {
  const int d = forest.d();
  const auto offsets = arrival_offsets(forest, 0);
  std::vector<Slot> delay(static_cast<std::size_t>(forest.n()) + 1, 0);
  for (NodeKey x = 1; x <= forest.n(); ++x) {
    Slot a = 0;
    for (int k = 0; k < d; ++k) {
      NodeKey pos = forest.position_of(k, x);
      // Level-1 ancestor: walk up until the parent is the source.
      NodeKey top = pos;
      while (forest.parent_pos(top) != 0) top = forest.parent_pos(top);
      const Slot slip = forest.child_index(top) < k ? d : 0;
      a = std::max(a, offsets[static_cast<std::size_t>(pos)] - k + slip);
    }
    delay[static_cast<std::size_t>(x)] = a;
  }
  return delay;
}

PeriodicSchedule build_periodic_schedule(const Forest& forest) {
  const int d = forest.d();
  const auto offsets = arrival_offsets(forest, 0);
  PeriodicSchedule sched;
  sched.d = d;
  sched.residues.resize(static_cast<std::size_t>(d));
  for (int r = 0; r < d; ++r) {
    auto& entries = sched.residues[static_cast<std::size_t>(r)];
    // Source sends: one per tree per slot, to the child at index r
    // (position r+1). A_k(r+1) = r, so these entries fire from period 0.
    for (int k = 0; k < d; ++k) {
      const NodeKey child = forest.node_at(k, static_cast<NodeKey>(r) + 1);
      if (forest.is_dummy(child)) continue;
      entries.push_back(
          {.from = kSource, .to = child, .tree = k, .alpha = 0});
    }
    // Interior forwards, tree-major by position — the pump's visit order.
    for (int k = 0; k < d; ++k) {
      for (NodeKey pos = 1; pos <= forest.interior(); ++pos) {
        const NodeKey cp = forest.child_pos(pos, r);
        const NodeKey child = forest.node_at(k, cp);
        if (forest.is_dummy(child)) continue;
        const Slot a = offsets[static_cast<std::size_t>(cp)];
        assert((a - r) % d == 0);
        entries.push_back({.from = forest.node_at(k, pos),
                           .to = child,
                           .tree = k,
                           .alpha = (a - r) / d});
      }
    }
  }
  return sched;
}

Slot closed_form_worst_delay(const Forest& forest) {
  const auto d = closed_form_delays(forest);
  return *std::max_element(d.begin() + 1, d.end());
}

double closed_form_average_delay(const Forest& forest) {
  const auto d = closed_form_delays(forest);
  double sum = 0;
  for (NodeKey x = 1; x <= forest.n(); ++x) {
    sum += static_cast<double>(d[static_cast<std::size_t>(x)]);
  }
  return sum / static_cast<double>(forest.n());
}

}  // namespace streamcast::multitree
