// The paper's *literal* deletion algorithm (appendix, "Dynamics"), kept as
// a reference implementation to make DESIGN.md's deviation 2 a
// machine-checked fact rather than a claim.
//
//   Step 1 (find replacement): swap the departing node i with x, the last
//     all-leaf node of T_0, in all d trees.  [residue-safe: the two nodes
//     exchange whole position sets]
//   Step 2 (restore property, only when d | N-1): the d former parents P(i)
//     are swapped into positions N-d .. N-1 of every tree, so the new
//     all-leaf nodes end up at the tails.  [NOT residue-safe: a displaced
//     node's tree-k child index is forced by its other d-1 trees, and the
//     forced tail indices of P(i) collide whenever two members share a
//     residue column]
//   Step 3 (remove): i, now in x's old all-leaf slots, leaves the system.
//
// After step 2 the forest can violate the mod-d congruence property the
// collision-free schedule depends on; tests/multitree_churn_literal_test
// exhibits concrete (N, d, victim) witnesses. Production churn therefore
// re-derives placements instead (src/multitree/churn.hpp).
#pragma once

#include "src/multitree/forest.hpp"

namespace streamcast::multitree {

struct LiteralDeleteResult {
  Forest forest;          // post-op placement (victim parked all-leaf)
  NodeKey victim = 0;     // the departed node (ignore in validations)
  bool boundary = false;  // whether step 2 ran (d | N-1)
  int swaps = 0;          // per-tree position exchanges performed
};

/// Applies the paper's deletion steps 1-2 verbatim to a copy of `forest`
/// (built for N real receivers; requires victim in [1, N]). The structure
/// keeps its padded shape; the departed node remains parked in all-leaf
/// positions so the survivors' placement can be validated directly.
LiteralDeleteResult paper_literal_delete(const Forest& forest,
                                         NodeKey victim);

/// Congruence check over the survivors only: child indices of every node
/// except `skip` pairwise distinct across trees.
bool survivors_congruent(const Forest& forest, NodeKey skip);

}  // namespace streamcast::multitree
