#include "src/multitree/serialize.hpp"

#include <sstream>
#include <stdexcept>

namespace streamcast::multitree {

namespace {

constexpr const char* kMagic = "streamcast-forest v1";

[[noreturn]] void malformed(const std::string& why) {
  throw std::runtime_error("malformed forest file: " + why);
}

}  // namespace

void save_forest(const Forest& forest, std::ostream& os) {
  os << kMagic << '\n'
     << "n " << forest.n() << " d " << forest.d() << '\n';
  for (int k = 0; k < forest.d(); ++k) {
    os << "tree " << k << ':';
    for (NodeKey pos = 1; pos <= forest.n_pad(); ++pos) {
      os << ' ' << forest.node_at(k, pos);
    }
    os << '\n';
  }
}

std::string forest_to_string(const Forest& forest) {
  std::ostringstream os;
  save_forest(forest, os);
  return os.str();
}

Forest load_forest(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != kMagic) malformed("bad header");

  std::string n_word;
  std::string d_word;
  NodeKey n = 0;
  int d = 0;
  if (!(is >> n_word >> n >> d_word >> d) || n_word != "n" || d_word != "d") {
    malformed("bad dimensions line");
  }
  if (n < 1 || d < 1) malformed("non-positive dimensions");

  Forest forest(n, d);
  for (int k = 0; k < d; ++k) {
    std::string tree_word;
    int index = -1;
    char colon = 0;
    if (!(is >> tree_word >> index >> colon) || tree_word != "tree" ||
        index != k || colon != ':') {
      malformed("bad tree header for tree " + std::to_string(k));
    }
    std::vector<NodeKey> tree{kSource};
    for (NodeKey pos = 1; pos <= forest.n_pad(); ++pos) {
      NodeKey node = 0;
      if (!(is >> node)) malformed("truncated tree " + std::to_string(k));
      tree.push_back(node);
    }
    try {
      forest.set_tree(k, std::move(tree));
    } catch (const std::invalid_argument& e) {
      malformed(std::string("invalid placement: ") + e.what());
    }
  }
  return forest;
}

Forest forest_from_string(const std::string& text) {
  std::istringstream is(text);
  return load_forest(is);
}

}  // namespace streamcast::multitree
