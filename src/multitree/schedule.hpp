// Closed-form round-robin schedule arithmetic (§2.2.3).
//
// Transmission rule: with t = m*d + r, the source sends packet (k + m*d) to
// its r-th child in tree T_k in slot t; every interior node of T_k forwards
// to its r-th child in slot t the packet it is currently disseminating. The
// schedule is perfectly periodic, so the arrival slot of tree-k packet
// (k + m*d) at position p is  m*d + A_k(p)  for a per-position offset A_k(p)
// computed by one top-down pass:
//     A_k(child at index c of q) = A_k(q) + 1 + ((c - A_k(q) - 1) mod d)
// with A_k(position p in level 1) = (p-1) mod d.
//
// From the offsets, the playback delay of node x (DESIGN.md §3) is closed
// form:  a(x) = max_k ( A_k(pos_k(x)) - k ),   since recv(j) - j =
// A_k(p) - k for every tree-k packet j. The simulation-based protocol in
// protocol.hpp must agree with these values exactly; tests cross-check.
#pragma once

#include <vector>

#include "src/multitree/forest.hpp"
#include "src/sim/packet.hpp"

namespace streamcast::multitree {

using sim::Slot;

/// A_k(p) for every position p in [1, n_pad]; index 0 is unused (0).
std::vector<Slot> arrival_offsets(const Forest& forest, int k);

/// Closed-form playback delay a(x) for every real receiver x in [1, n];
/// index 0 unused (0). Pre-recorded mode; the live-prebuffered mode adds
/// exactly d to every entry.
std::vector<Slot> closed_form_delays(const Forest& forest);

/// Closed form for the pipelined live mode — the analysis the paper skips
/// ("the transmission schedules of the different trees are not homogeneous;
/// thus, this scheme is not easy to analyze"). With packet p generated in
/// slot p, the source's send of tree-k packet k+m*d to its child r slips
/// from slot m*d+r to (m+1)*d+r exactly when r < k; the slip preserves the
/// slot residue, so it propagates unchanged through the whole subtree under
/// that child. Hence
///     a_pipe(x) = max_k ( A(pos_k(x)) - k + (r1_k(x) < k ? d : 0) )
/// where r1_k(x) is the child index of x's level-1 ancestor in tree k.
/// Verified against engine simulation in the test suite.
std::vector<Slot> closed_form_delays_pipelined(const Forest& forest);

/// Memoized periodic transmission schedule (DESIGN.md §8).
///
/// The round-robin dissemination is perfectly periodic with period d: writing
/// t = M*d + r, the sender at position q of tree k transmits to its child at
/// index r exactly in the slots where M >= alpha, with
///     alpha = (A_k(child_pos(q, r)) - r) / d
/// (A_k(child) ≡ r (mod d) by the offset recurrence, so the division is
/// exact), and the packet sent is k + (M - alpha)*d. This closed form equals
/// the cursor-driven pump in MultiTreeProtocol for every slot including
/// warm-up: the first slot >= A_k(q)+1 with residue r is precisely
/// A_k(child), and arrivals keep pace with sends one-for-one thereafter.
/// Replaying the precomputed per-residue window replaces per-slot cursor
/// bookkeeping and per-delivery protocol state updates in the reliable hot
/// path.
struct PeriodicSchedule {
  struct Entry {
    NodeKey from = 0;  // local key (0 = the source)
    NodeKey to = 0;    // local key of the receiving child
    int tree = 0;
    Slot alpha = 0;  // first period M in which this entry fires
  };
  int d = 1;
  /// Entries for each slot residue r = t % d, in the exact order the
  /// cursor-driven pump emits them (source trees 0..d-1, then interior
  /// nodes tree-major by position). Dummy children are omitted.
  std::vector<std::vector<Entry>> residues;
};

PeriodicSchedule build_periodic_schedule(const Forest& forest);

/// max over receivers of closed_form_delays.
Slot closed_form_worst_delay(const Forest& forest);

/// mean over receivers of closed_form_delays.
double closed_form_average_delay(const Forest& forest);

}  // namespace streamcast::multitree
