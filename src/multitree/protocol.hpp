// Stateful multi-tree streaming protocol (§2.2.3) for the slot engine.
//
// Node keys: 0 = source S, 1..n = the real receivers (dummies are "removed
// in the real system", §2.2, so they are never addressed).
//
// Three stream modes:
//  * kPreRecorded     — every packet available at S from slot 0 (§2.2.3).
//  * kLivePrebuffered — packet p is generated in slot p; S pre-buffers d
//    packets and starts the identical schedule d slots late, so every node's
//    delay grows by exactly d (§2.2.3, second live approach).
//  * kLivePipelined   — packet p is generated in slot p; S runs the
//    round-robin slots but holds a transmission back until its packet
//    exists (§2.2.3, first live approach — the paper notes the resulting
//    per-tree schedules are inhomogeneous and hard to analyze; we simulate
//    them instead).
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "src/multitree/forest.hpp"
#include "src/multitree/schedule.hpp"
#include "src/sim/protocol.hpp"

namespace streamcast::multitree {

using sim::PacketId;
using sim::Slot;
using sim::Tx;

enum class StreamMode { kPreRecorded, kLivePrebuffered, kLivePipelined };

/// Optional availability gate for the cluster source: sendable(p, t) must
/// return true once packet p may leave the source in slot t. Used by the
/// super-tree composition, where S'_i can only relay packets already
/// delivered over the backbone. Must be monotone in t.
using SourceGate = std::function<bool(PacketId, Slot)>;

class MultiTreeProtocol final : public sim::Protocol {
 public:
  explicit MultiTreeProtocol(const Forest& forest,
                             StreamMode mode = StreamMode::kPreRecorded,
                             SourceGate gate = {},
                             std::vector<sim::NodeKey> key_map = {});

  void transmit(Slot t, std::vector<Tx>& out) override;
  void deliver(Slot t, const Tx& tx) override;

  /// Translates a local key (0 = cluster source, 1..n receivers) to the
  /// engine key space (identity unless a key_map was given).
  sim::NodeKey global_key(NodeKey local) const;
  /// Inverse of global_key for receivers; -1 if the key is not mapped.
  NodeKey local_key(sim::NodeKey global) const;

  /// Enables/disables the memoized periodic-schedule fast path. Eligible
  /// modes (kPreRecorded and kLivePrebuffered without a source gate) enable
  /// it automatically at construction; callers that deliver packets out of
  /// schedule — lossy runs, where a forward must wait for actual receipt —
  /// must switch it off before the run starts. Ineligible configurations
  /// ignore enable requests.
  void use_periodic_cache(bool enabled);
  bool periodic_cache_active() const { return cache_.has_value(); }

 private:
  const Forest& forest_;
  StreamMode mode_;
  SourceGate gate_;
  std::vector<sim::NodeKey> key_map_;      // [local] -> global; empty = id
  std::vector<NodeKey> inverse_key_map_;   // [global] -> local
  struct InteriorState {
    NodeKey node = 0;
    NodeKey pos = 0;  // its interior position
    int tree = 0;
    std::int64_t last_recv_m = -1;         // newest tree packet received
    std::vector<std::int64_t> child_next;  // per child index: next m to send
  };
  std::vector<InteriorState> interiors_;
  std::vector<int> interior_index_;               // node -> index or -1
  std::vector<std::vector<std::int64_t>> src_next_;  // [tree][child] next m
  /// Memoized periodic schedule; when set, transmit() replays it and
  /// deliver() keeps no cursor state (tests prove byte-identical output).
  std::optional<PeriodicSchedule> cache_;
};

}  // namespace streamcast::multitree
