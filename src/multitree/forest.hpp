// The interior-disjoint d-ary forest of §2.2.
//
// N receivers are streamed to over d trees, each a d-ary tree rooted at the
// source S. Every receiver appears in every tree; it is an *interior* node
// (with exactly d children) in at most one of them and a leaf everywhere
// else. Dummy receivers pad the last positions so every interior node has
// exactly d children; dummies are always leaves and are skipped by the
// transmission schedule.
//
// Positions within a tree are numbered in BFS order: the source S is
// position 0, and the children of position p are positions d*p+1 .. d*p+d.
// The *child index* of position p is (p-1) mod d; the paper's collision-free
// schedule works because each node's child indices across the d trees are
// pairwise distinct (appendix proofs, re-checked by validate_forest()).
//
// Group structure (§2.2): I = ceil(N/d) - 1 interior positions per tree;
//   G_k = { kI+1 .. (k+1)I }    for k = 0..d-1  (interior candidates)
//   G_d = { dI+1 .. N_pad }     (perpetual leaves; exactly d ids after
//                                padding, since N_pad = d*(I+1))
#pragma once

#include <vector>

#include "src/sim/packet.hpp"

namespace streamcast::multitree {

using sim::NodeKey;

/// Node id of the source inside tree position arrays.
inline constexpr NodeKey kSource = 0;

class Forest {
 public:
  /// Builds the group structure for n >= 1 receivers and degree d >= 1.
  /// Trees start unfilled; the structured/greedy builders call set_tree().
  Forest(NodeKey n, int d);

  int d() const { return d_; }
  NodeKey n() const { return n_; }
  /// Receiver count after dummy padding; node ids in (n(), n_pad()] are
  /// dummies.
  NodeKey n_pad() const { return n_pad_; }
  /// Interior positions per tree, I = ceil(N/d) - 1.
  NodeKey interior() const { return interior_; }
  bool is_dummy(NodeKey node) const { return node > n_; }

  /// Group G_k for k in [0, d]: k < d are the interior-candidate groups of
  /// size I; k == d is the perpetual-leaf group of size d (paper's G_d, with
  /// dummies appended).
  std::vector<NodeKey> group(int k) const;

  /// Installs tree k. `pos_to_node[0]` must be kSource; positions 1..n_pad
  /// must hold each receiver id exactly once.
  void set_tree(int k, std::vector<NodeKey> pos_to_node);

  /// Receiver occupying position pos of tree k (pos in [1, n_pad]).
  NodeKey node_at(int k, NodeKey pos) const;
  /// Position of a receiver in tree k.
  NodeKey position_of(int k, NodeKey node) const;
  /// The tree in which this receiver is interior, or -1 if it is a leaf in
  /// every tree (i.e. it belongs to G_d).
  int interior_tree_of(NodeKey node) const;

  // --- position arithmetic -------------------------------------------------
  NodeKey parent_pos(NodeKey pos) const;          // (pos-1)/d; 0 = source
  NodeKey child_pos(NodeKey pos, int child) const;  // d*pos+1+child
  /// Child index of position pos within its parent, in [0, d).
  int child_index(NodeKey pos) const;
  bool is_interior_pos(NodeKey pos) const { return pos >= 1 && pos <= interior_; }
  /// Depth of a position (source = 0; S's children = 1).
  int depth_of(NodeKey pos) const;
  /// Height h of the (padded) trees: depth of the deepest position. For
  /// complete trees this is the paper's h with depth h+1 counting the root.
  int height() const;

  /// Direct access for validators and renderers.
  const std::vector<NodeKey>& tree(int k) const;

 private:
  NodeKey n_;
  int d_;
  NodeKey interior_;
  NodeKey n_pad_;
  std::vector<std::vector<NodeKey>> trees_;    // [k][pos] -> node
  std::vector<std::vector<NodeKey>> pos_of_;   // [k][node] -> pos
};

}  // namespace streamcast::multitree
