// Node churn for the multi-tree forest (paper appendix: "Dynamics: node
// addition and deletion in multi-trees", plus the "lazy" variants).
//
// Identity model. Structural ids 1..n_pad label tree slots; live peers
// occupy ids 1..N densely and ids above N are vacant (the dummies of §2.2).
// The greedy construction places ids deterministically, so the *structure*
// depends only on the interior count I — which is exactly why the paper's
// common-case operations are cheap:
//
//  * Deletion of peer at id i: the peer at id N (always the "last all-leaf
//    node in tree T_0" — greedy T_0 is the identity layout) is relabeled to
//    id i, inheriting i's d positions. This is the paper's Step 1 "find
//    replacement" swap: one surviving peer changes position in each of the
//    d trees (d per-tree moves).
//  * Addition: the arriving peer is seated at the vacant id N+1, whose d
//    leaf positions already satisfy every invariant. No existing peer moves.
//
// Boundary events — when ceil(N/d)-1 changes — require restructuring (the
// paper's "restore property" / "make room for growth" swaps). DEVIATION
// (documented in DESIGN.md §5): the paper's literal swap rules do not
// preserve the mod-d congruence property in general (each node's child
// indices must stay pairwise distinct across trees, and a displaced node's
// residue is forced by its other d-1 trees). We instead re-derive the
// placement from the greedy construction at the new interior count and
// count every (peer, tree) position change; invariants then hold by
// construction, and the measured move counts play the role of the paper's
// d^2(+d) bound — the eager-vs-lazy bench reports them.
//
// Policies:
//  * kEager — restructure at every boundary crossing (paper's base scheme).
//  * kLazy  — defer: grow only when there is no vacant id left, shrink only
//    when vacancies exceed d (the paper's lazy deletion/addition: "wait
//    until a new event occurs before deciding whether swapping is needed").
//    The d-vacancy cap is load-bearing: vacant ids must stay in the all-leaf
//    tail (ids > dI), otherwise a vacant *interior* id would starve its
//    whole subtree in a live stream (measured in bench/churn_hiccups).
#pragma once

#include <cstdint>
#include <vector>

#include "src/multitree/forest.hpp"

namespace streamcast::multitree {

using PeerId = std::int64_t;
inline constexpr PeerId kNoPeer = -1;

enum class ChurnPolicy { kEager, kLazy };

struct ChurnStats {
  std::int64_t operations = 0;
  /// Step-1-style relabels: a surviving peer inherits the departing peer's
  /// slot (d per-tree position changes each).
  std::int64_t relabel_moves = 0;
  /// (peer, tree) position changes caused by boundary restructurings.
  std::int64_t rebuild_moves = 0;
  std::int64_t rebuilds = 0;

  std::int64_t total_moves() const { return relabel_moves + rebuild_moves; }
};

class ChurnForest {
 public:
  /// Starts with peers 1..initial_n seated in the greedy forest.
  /// `lazy_slack` is the vacancy count that forces a lazy shrink; the
  /// default d is the largest *safe* value (vacant ids stay in the
  /// all-leaf tail). Larger values are accepted for experiments — they
  /// defer more restructuring at the cost of vacant interior ids whose
  /// subtrees starve in a live stream (bench/ablation_lazy_slack).
  ChurnForest(NodeKey initial_n, int d,
              ChurnPolicy policy = ChurnPolicy::kEager, int lazy_slack = 0);

  /// Seats a new peer; returns its identity.
  PeerId add();

  /// Removes a live peer. Throws std::invalid_argument for unknown peers and
  /// std::logic_error when it would empty the system.
  void remove(PeerId peer);

  NodeKey n() const { return n_; }
  int d() const { return d_; }
  NodeKey interior() const { return forest_.interior(); }
  const Forest& forest() const { return forest_; }

  /// Peer seated at structural id, or kNoPeer for vacant ids.
  PeerId peer_at(NodeKey id) const;
  /// Structural id of a live peer, or -1.
  NodeKey id_of(PeerId peer) const;
  bool is_vacant(NodeKey id) const { return peer_at(id) == kNoPeer; }

  const ChurnStats& stats() const { return stats_; }

 private:
  /// Rebuilds the forest for interior count implied by target_n and adds the
  /// per-peer position diffs to rebuild_moves.
  void restructure(NodeKey target_n);
  NodeKey canonical_interior(NodeKey n) const;

  int d_;
  ChurnPolicy policy_;
  NodeKey lazy_slack_;
  NodeKey n_ = 0;            // live peers, seated at ids 1..n_
  Forest forest_;            // structure over ids 1..n_pad
  std::vector<PeerId> peer_;  // [id] -> peer, index 0 unused
  PeerId next_peer_ = 1;
  ChurnStats stats_;
};

}  // namespace streamcast::multitree
