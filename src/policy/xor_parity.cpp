#include "src/policy/xor_parity.hpp"

#include <algorithm>
#include <utility>

namespace streamcast::policy {

void XorParityPolicy::bind(RecoveryHost& host) {
  unresolved_.resize(static_cast<std::size_t>(host.node_count()));
}

void XorParityPolicy::on_data_emitted(RecoveryHost& /*host*/, Slot /*t*/,
                                      const Tx& tx) {
  auto& window = fec_acc_[{tx.from, tx.to}];
  window.push_back(tx);
  if (std::cmp_less(window.size(), options().fec_window)) return;
  ParityWindow parity{.from = tx.from, .to = tx.to, .data = std::move(window)};
  window.clear();
  parity_queue_.emplace_back(next_parity_id_++, std::move(parity));
}

void XorParityPolicy::emit(RecoveryHost& host, Slot t, std::vector<Tx>& out) {
  emit_parity(host, t, out);
}

void XorParityPolicy::emit_parity(RecoveryHost& host, Slot t,
                                  std::vector<Tx>& out) {
  for (auto it = parity_queue_.begin(); it != parity_queue_.end();) {
    const auto& [id, window] = *it;
    if (!host.send_available(window.from) ||
        !host.recv_headroom(t + host.link_latency(window.from, window.to) - 1,
                            window.to)) {
      ++it;  // blocked on capacity; keep for a later slot
      continue;
    }
    out.push_back(
        Tx{.from = window.from, .to = window.to, .packet = id, .tag = -1});
    host.use_send(window.from);
    host.note_planned_arrival(
        t + host.link_latency(window.from, window.to) - 1, window.to);
    ++host.stats().parity_transmissions;
    parity_windows_.emplace(id, window);
    it = parity_queue_.erase(it);
  }
}

void XorParityPolicy::on_data_arrival(RecoveryHost& host, Slot t,
                                      const Tx& tx) {
  recheck_unresolved(host, t, tx.to);
}

void XorParityPolicy::on_control_arrival(RecoveryHost& host, Slot t,
                                         const Tx& tx) {
  if (!try_decode(host, t, tx.packet) && parity_windows_.contains(tx.packet)) {
    unresolved_[static_cast<std::size_t>(tx.to)].push_back(tx.packet);
  }
}

bool XorParityPolicy::try_decode(RecoveryHost& host, Slot t,
                                 PacketId parity_id) {
  const auto it = parity_windows_.find(parity_id);
  if (it == parity_windows_.end()) return true;  // already resolved
  const ParityWindow& window = it->second;
  const NodeKey to = window.to;
  const Tx* missing = nullptr;
  int missing_count = 0;
  for (const Tx& data : window.data) {
    if (host.has_arrived(to, data.packet)) continue;
    ++missing_count;
    missing = &data;
  }
  if (missing_count == 0) {
    parity_windows_.erase(it);
    return true;
  }
  if (missing_count > 1 ||
      host.in_flight(to, missing->packet)) {  // cannot (or need not) decode
    return false;
  }
  // XOR of the parity with the w-1 received packets yields the missing one.
  ++host.stats().fec_decodes;
  const Tx decoded = *missing;
  parity_windows_.erase(it);
  host.ingest_decoded(t, decoded);
  return true;
}

void XorParityPolicy::recheck_unresolved(RecoveryHost& host, Slot t,
                                         NodeKey node) {
  auto& list = unresolved_[static_cast<std::size_t>(node)];
  // A successful decode can make another window of the same receiver
  // decodable, so iterate to a fixpoint.
  while (std::erase_if(list, [&](const PacketId id) {
           return try_decode(host, t, id);
         }) > 0) {
  }
}

void XorParityPolicy::on_control_drop(RecoveryHost& /*host*/,
                                      const sim::Drop& d) {
  // A lost parity packet: its window is simply unprotected.
  parity_windows_.erase(d.tx.packet);
}

}  // namespace streamcast::policy
