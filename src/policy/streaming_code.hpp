// Badr–Lui–Khisti delay-constrained streaming code (arXiv:1303.4370) as a
// recovery policy over per-link erasure channels.
//
// The BLK construction protects an ordered symbol stream against burst
// erasures: a rate-T/(T+B) code corrects every erasure burst of length
// <= B within a decode delay of T further channel uses, provided the next
// burst starts only after that window (the guard space). This policy
// simulates the code's erasure-correction capability per link without
// materializing codewords:
//
//  * Channel uses — every transmission (data or parity) on a link (u, v)
//    occupies the next channel-use index of that link. The index stream is
//    what the code is defined over; slots only matter for when uses happen.
//  * Parity cadence — each data use earns B credit; a parity use is
//    emitted (on residual capacity) whenever credit reaches T, keeping the
//    long-run parity:data ratio at B:T, i.e. rate T/(T+B).
//  * Decode rule — an erased data use at index i inside the erasure run
//    [s, e] is recoverable iff the run is short (e - s + 1 <= B) and every
//    channel use in (e, i + T] arrived. A second erasure inside that
//    window is a guard-space collision: the interleaved bursts exceed the
//    code's correction capability and the run is unrecoverable. Until the
//    window fills, the decision is pending.
//  * Unrecoverable gaps are *abandoned*: the in-order gate releases what
//    the gap was holding back and the continuity metrics report an
//    undecodable gap — instead of the substream stalling forever, which is
//    exactly what ISSUE's burst-longer-than-T requirement forbids.
//  * Relay forwarding (dense links) — a newest-only forwarder whose own
//    upstream lost a packet skips its id downstream: the id never becomes a
//    channel use there, so no amount of parity can recover it. Hop-by-hop
//    streaming codes assume each relay re-injects what it decodes, so on
//    dense links the policy tracks skipped ids and forwards each one as a
//    regular (parity-protected) data use once the relay holds it. When the
//    upstream hop declared the id unrecoverable, the abandonment cascades
//    downstream instead.
//  * Drain — while undecided erased uses wait on index progression, the
//    policy keeps the link's index stream moving with extra parity uses,
//    so decode windows fill even after the data schedule went quiet.
//    exhausted() turns true once every erased use is decided and nothing
//    is in flight, letting the pipeline stop draining early.
//
// Unlike NACK there is no feedback channel, and unlike XOR parity the
// correction is burst-capable with a hard delay bound — the throughput/
// smoothness frontier bench (bench/throughput_smoothness) compares the
// three on Gilbert–Elliott burst sweeps.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "src/policy/recovery.hpp"

namespace streamcast::policy {

class StreamingCodePolicy final : public RecoveryPolicy {
 public:
  explicit StreamingCodePolicy(const RecoveryPolicyOptions& options);

  const char* name() const override { return "streaming-code"; }

  void on_data_emitted(RecoveryHost& host, Slot t, const Tx& tx) override;
  void emit(RecoveryHost& host, Slot t, std::vector<Tx>& out) override;
  void on_data_arrival(RecoveryHost& host, Slot t, const Tx& tx) override;
  void on_control_arrival(RecoveryHost& host, Slot t, const Tx& tx) override;
  void on_data_drop(RecoveryHost& host, const sim::Drop& d) override;
  void on_control_drop(RecoveryHost& host, const sim::Drop& d) override;
  bool exhausted() const override {
    return undecided_ == 0 && pending_uses_ == 0;
  }

 private:
  using LinkKey = std::pair<NodeKey, NodeKey>;
  using UseIndex = std::int64_t;

  enum class UseState { kPending, kArrived, kErased };

  struct Use {
    Tx tx{};
    bool parity = false;
    UseState state = UseState::kPending;
    /// An erased data use that was already decoded, repaired by a later
    /// transmission of the same packet, or abandoned. The channel state
    /// (kErased) is kept — erasure runs are a channel property — but the
    /// use needs no further decision.
    bool decided = false;
  };

  struct Link {
    UseIndex next_index = 0;
    /// Parity cadence accumulator: +B per data use, -T per parity use.
    std::int64_t credit = 0;
    /// Every channel use of the link, by index. Windows are small (a
    /// cluster's measurement window plus parity), so uses are kept for the
    /// whole run instead of pruned.
    std::map<UseIndex, Use> uses;
    /// Pending data uses: packet id -> index (one per packet at a time,
    /// enforced by the host's in-flight suppression).
    std::map<PacketId, UseIndex> index_of;
    /// Erased data uses not yet decided.
    std::set<UseIndex> open;
    /// Newest data id emitted on this link (dense-link skip detection).
    PacketId last_data = -1;
    /// Ids the dense schedule skipped past, with the substream tag of the
    /// skipping transmission; forwarded once the sender holds them.
    std::map<PacketId, std::int32_t> skipped;
  };

  void record_use(RecoveryHost& host, LinkKey key, Link& link, const Tx& tx,
                  bool parity);
  bool emit_parity_use(RecoveryHost& host, Slot t, LinkKey key, Link& link,
                       std::vector<Tx>& out);
  void detect_skips(RecoveryHost& host, Link& link, const Tx& tx);
  void forward_skipped(RecoveryHost& host, Slot t, LinkKey key, Link& link,
                       std::vector<Tx>& out);
  /// Marks the use carrying `packet` (data) or `id` (parity) with the final
  /// channel outcome and re-evaluates the link's open erasures.
  void finalize_data_use(RecoveryHost& host, Slot t, const Tx& tx,
                         UseState state);
  void note_erasure_run(RecoveryHost& host, Link& link, UseIndex idx);
  void settle(RecoveryHost& host, Slot t, Link& link);
  void decide(RecoveryHost& host, Link& link, UseIndex idx);

  std::map<LinkKey, Link> code_links_;
  /// (node, packet) pairs declared unrecoverable there — consulted when a
  /// downstream link waits on that node to forward the packet, so the
  /// abandonment cascades instead of the wait lasting forever.
  std::set<std::pair<NodeKey, PacketId>> lost_;
  /// Parity control id -> (link, index) of the pending parity use.
  std::map<PacketId, std::pair<LinkKey, UseIndex>> parity_at_;
  PacketId next_code_id_ = sim::kControlIdBase;
  /// Open erased data uses across all links.
  std::int64_t undecided_ = 0;
  /// Channel uses emitted but not yet arrived/erased, across all links.
  std::int64_t pending_uses_ = 0;
  Slot decode_delay_;   // T
  PacketId max_burst_;  // B
};

}  // namespace streamcast::policy
