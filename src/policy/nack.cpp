#include "src/policy/nack.hpp"

#include <algorithm>

namespace streamcast::policy {

namespace {

/// Cap on how many skipped ids one transmission may open for repair; a dense
/// scheme advances one id per slot per link, so anything near this bound
/// would indicate a mis-flagged strided scheme.
constexpr PacketId kMaxSkipRange = 4096;

}  // namespace

void NackPolicy::bump_last_emitted(const Tx& tx) {
  auto& last = last_emitted_[{tx.from, tx.to}];
  last = std::max(last, tx.packet);
}

Slot NackPolicy::nack_due(const RecoveryHost& host, Slot detect_slot,
                          NodeKey from, NodeKey to) const {
  // The receiver notices the gap in `detect_slot`, NACKs the sender (one
  // reverse-link trip), and the repair may leave the following slot.
  return detect_slot + host.link_latency(to, from) + 1 + options().nack_delay;
}

void NackPolicy::schedule_repair(RecoveryHost& host, NodeKey to, PacketId p,
                                 NodeKey sender, std::int32_t tag, Slot due) {
  auto [it, inserted] = pending_.try_emplace(
      {to, p}, Repair{.sender = sender, .tag = tag, .due = due});
  if (!inserted) {
    // A repair for this gap was already pending (e.g. the repair itself was
    // dropped): refresh it.
    it->second.due = due;
    it->second.in_flight = false;
  }
  ++host.stats().nacks;
}

void NackPolicy::on_suppressed_causal(RecoveryHost& host, Slot t,
                                      const Tx& tx) {
  bump_last_emitted(tx);
  if (!host.holds(tx.to, tx.packet) && !pending_.contains({tx.to, tx.packet})) {
    host.mark_outstanding(tx.to, tx.tag, tx.packet);
    schedule_repair(host, tx.to, tx.packet, tx.from, tx.tag,
                    nack_due(host, t + host.link_latency(tx.from, tx.to) - 1,
                             tx.from, tx.to));
  }
}

void NackPolicy::on_suppressed_redundant(RecoveryHost& /*host*/, Slot /*t*/,
                                         const Tx& tx) {
  bump_last_emitted(tx);
}

void NackPolicy::on_data_emitted(RecoveryHost& host, Slot t, const Tx& tx) {
  if (options().dense_links) detect_dense_skips(host, t, tx);
  bump_last_emitted(tx);
}

void NackPolicy::detect_dense_skips(RecoveryHost& host, Slot t, const Tx& tx) {
  // On a dense link the very first emission is id 0 on a lossless run, so an
  // absent entry is baseline -1: a first emission of id > 0 means the ids
  // below it were lost upstream before this link ever carried them.
  const auto it = last_emitted_.find({tx.from, tx.to});
  const PacketId last = it == last_emitted_.end() ? -1 : it->second;
  if (tx.packet <= last + 1) return;
  const PacketId lo = std::max(last + 1, tx.packet - kMaxSkipRange);
  for (PacketId g = lo; g < tx.packet; ++g) {
    if (host.has_arrived(tx.to, g)) continue;
    if (host.in_flight(tx.to, g)) continue;
    if (pending_.contains({tx.to, g})) continue;
    host.mark_outstanding(tx.to, tx.tag, g);
    schedule_repair(host, tx.to, g, tx.from, tx.tag,
                    nack_due(host, t + host.link_latency(tx.from, tx.to) - 1,
                             tx.from, tx.to));
  }
}

void NackPolicy::emit(RecoveryHost& host, Slot t, std::vector<Tx>& out) {
  if (options().gap_timeout >= 0) sweep_aged_gaps(host, t);
  emit_repairs(host, t, out);
}

void NackPolicy::sweep_aged_gaps(RecoveryHost& host, Slot t) {
  const NodeKey size = host.node_count();
  for (NodeKey v = 0; v < size; ++v) {
    if (v == options().source) continue;
    if (host.ahead(v).empty()) continue;
    PacketId expected = host.gap_free_prefix(v);
    for (const PacketId a : host.ahead(v)) {
      for (PacketId g = expected; g < a; ++g) {
        const auto key = std::make_pair(v, g);
        if (options().repair_horizon >= 0 &&
            t - g > options().repair_horizon) {
          // Too old to matter: a repair would land after the packet's play
          // deadline. Give the gap up instead of congesting the links.
          if (!host.in_flight(v, g) && !pending_.contains(key)) {
            host.abandon_gap(t, v, g);
            gap_seen_.erase(key);
          }
          continue;
        }
        const auto [it, first_seen] = gap_seen_.try_emplace(key, t);
        if (first_seen) continue;
        if (t - it->second < options().gap_timeout) continue;
        if (host.in_flight(v, g) || pending_.contains(key)) continue;
        host.mark_outstanding(v, options().sweep_tag, g);
        schedule_repair(host, v, g, options().source, options().sweep_tag, t);
      }
      expected = a + 1;
    }
  }
}

void NackPolicy::emit_repairs(RecoveryHost& host, Slot t,
                              std::vector<Tx>& out) {
  for (auto it = pending_.begin(); it != pending_.end();) {
    const auto [to, packet] = it->first;
    Repair& repair = it->second;
    if (host.has_arrived(to, packet)) {
      it = pending_.erase(it);
      continue;
    }
    if (repair.in_flight || repair.due > t || host.in_flight(to, packet)) {
      ++it;
      continue;
    }
    // Pick a repair source: the original sender if it holds the packet by
    // now, else any node that has previously delivered to this receiver,
    // else the stream source — first match with residual send capacity and
    // receive headroom at the arrival slot.
    NodeKey chosen = sim::kNoNode;
    std::vector<NodeKey> candidates;
    candidates.push_back(repair.sender);
    for (const NodeKey s : host.senders_seen(to)) candidates.push_back(s);
    candidates.push_back(options().source);
    for (const NodeKey s : candidates) {
      if (s == to || s < 0) continue;
      if (!host.holds(s, packet)) continue;
      if (!host.send_available(s)) continue;
      if (!host.recv_headroom(t + host.link_latency(s, to) - 1, to)) continue;
      chosen = s;
      break;
    }
    if (chosen == sim::kNoNode) {
      ++it;  // no capacity or no holder this slot; retry next slot
      continue;
    }
    out.push_back(Tx{.from = chosen,
                     .to = to,
                     .packet = packet,
                     .tag = repair.tag,
                     .retransmit = true});
    ++host.stats().retransmissions;
    host.use_send(chosen);
    host.note_planned_arrival(t + host.link_latency(chosen, to) - 1, to);
    host.set_in_flight(to, packet, true);
    repair.in_flight = true;
    ++it;
  }
}

void NackPolicy::on_data_ingested(RecoveryHost& /*host*/, Slot /*t*/,
                                  const Tx& tx) {
  pending_.erase({tx.to, tx.packet});
  gap_seen_.erase({tx.to, tx.packet});
}

void NackPolicy::on_data_drop(RecoveryHost& host, const sim::Drop& d) {
  schedule_repair(host, d.tx.to, d.tx.packet, d.tx.from, d.tx.tag,
                  nack_due(host, d.would_arrive, d.tx.from, d.tx.to));
}

}  // namespace streamcast::policy
