// NACK recovery policy: gap-driven retransmission after a modeled NACK
// round trip, extracted verbatim from the historical RecoveryMode::kNack
// arm of loss::RecoveryProtocol (byte-identical, golden-pinned).
//
// Every detected gap — an engine drop report, a suppressed causal send, a
// skipped id on a dense link, or an aged gap on a demand-driven scheme —
// schedules a retransmission from a node that holds the packet, after the
// reverse-link trip plus options().nack_delay, riding only on residual
// send/receive capacity. Lost repairs are re-NACKed, so every gap
// eventually closes (exhausted() is therefore always false).
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "src/policy/recovery.hpp"

namespace streamcast::policy {

class NackPolicy final : public RecoveryPolicy {
 public:
  using RecoveryPolicy::RecoveryPolicy;

  const char* name() const override { return "nack"; }

  void on_suppressed_causal(RecoveryHost& host, Slot t,
                            const Tx& tx) override;
  void on_suppressed_redundant(RecoveryHost& host, Slot t,
                               const Tx& tx) override;
  void on_data_emitted(RecoveryHost& host, Slot t, const Tx& tx) override;
  void emit(RecoveryHost& host, Slot t, std::vector<Tx>& out) override;
  void on_data_ingested(RecoveryHost& host, Slot t, const Tx& tx) override;
  void on_data_drop(RecoveryHost& host, const sim::Drop& d) override;

 private:
  struct Repair {
    NodeKey sender = 0;
    std::int32_t tag = 0;
    Slot due = 0;
    bool in_flight = false;
  };

  Slot nack_due(const RecoveryHost& host, Slot detect_slot, NodeKey from,
                NodeKey to) const;
  void schedule_repair(RecoveryHost& host, NodeKey to, PacketId p,
                       NodeKey sender, std::int32_t tag, Slot due);
  void detect_dense_skips(RecoveryHost& host, Slot t, const Tx& tx);
  void sweep_aged_gaps(RecoveryHost& host, Slot t);
  void emit_repairs(RecoveryHost& host, Slot t, std::vector<Tx>& out);
  void bump_last_emitted(const Tx& tx);

  std::map<std::pair<NodeKey, PacketId>, Repair> pending_;
  // Dense-link skip detection: newest inner-emitted id per (from, to).
  std::map<std::pair<NodeKey, NodeKey>, PacketId> last_emitted_;
  // Aged-gap sweep: slot at which each open gap was first observed.
  std::map<std::pair<NodeKey, PacketId>, Slot> gap_seen_;
};

}  // namespace streamcast::policy
