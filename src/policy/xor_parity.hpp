// XOR-parity FEC policy: per link, one parity packet per fec_window data
// packets, extracted verbatim from the historical RecoveryMode::kFec arm of
// loss::RecoveryProtocol (byte-identical, golden-pinned).
//
// A single erasure inside a window decodes at the receiver without a round
// trip (XOR of the parity with the w-1 received packets). Parity ids live
// in the control id space (sim::kControlIdBase) and are never part of the
// stream; a lost parity packet simply leaves its window unprotected.
#pragma once

#include <deque>
#include <map>
#include <utility>
#include <vector>

#include "src/policy/recovery.hpp"

namespace streamcast::policy {

class XorParityPolicy final : public RecoveryPolicy {
 public:
  explicit XorParityPolicy(const RecoveryPolicyOptions& options)
      : RecoveryPolicy(options) {}

  const char* name() const override { return "xor-parity"; }

  void bind(RecoveryHost& host) override;
  void on_data_emitted(RecoveryHost& host, Slot t, const Tx& tx) override;
  void emit(RecoveryHost& host, Slot t, std::vector<Tx>& out) override;
  void on_data_arrival(RecoveryHost& host, Slot t, const Tx& tx) override;
  void on_control_arrival(RecoveryHost& host, Slot t, const Tx& tx) override;
  void on_control_drop(RecoveryHost& host, const sim::Drop& d) override;

 private:
  struct ParityWindow {
    NodeKey from = 0;
    NodeKey to = 0;
    std::vector<Tx> data;  // the window's data transmissions, in order
  };

  void emit_parity(RecoveryHost& host, Slot t, std::vector<Tx>& out);
  bool try_decode(RecoveryHost& host, Slot t, PacketId parity_id);
  void recheck_unresolved(RecoveryHost& host, Slot t, NodeKey node);

  std::map<std::pair<NodeKey, NodeKey>, std::vector<Tx>> fec_acc_;
  std::deque<std::pair<PacketId, ParityWindow>> parity_queue_;
  std::map<PacketId, ParityWindow> parity_windows_;  // sent, undecoded
  std::vector<std::vector<PacketId>> unresolved_;    // per node: parity ids
  PacketId next_parity_id_ = sim::kControlIdBase;
};

}  // namespace streamcast::policy
