#include "src/policy/streaming_code.hpp"

#include <algorithm>

namespace streamcast::policy {

namespace {

/// Cap on how many skipped ids one transmission may open for forwarding; a
/// dense scheme advances one id per slot per link, so anything near this
/// bound would indicate a mis-flagged strided scheme.
constexpr PacketId kMaxSkipRange = 4096;

}  // namespace

StreamingCodePolicy::StreamingCodePolicy(const RecoveryPolicyOptions& options)
    : RecoveryPolicy(options),
      decode_delay_(std::max<Slot>(1, options.code.decode_delay)),
      max_burst_(std::max<PacketId>(1, options.code.burst)) {
  // BLK needs T >= B: a burst must fit inside its own decode window.
  decode_delay_ = std::max(decode_delay_, static_cast<Slot>(max_burst_));
}

void StreamingCodePolicy::record_use(RecoveryHost& /*host*/, LinkKey /*key*/,
                                     Link& link, const Tx& tx, bool parity) {
  const UseIndex idx = link.next_index++;
  Use use;
  use.tx = tx;
  use.parity = parity;
  link.uses.emplace(idx, use);
  ++pending_uses_;
  if (parity) {
    parity_at_.emplace(tx.packet, std::make_pair(LinkKey{tx.from, tx.to}, idx));
  } else {
    link.index_of[tx.packet] = idx;
    link.credit += static_cast<std::int64_t>(max_burst_);
  }
}

void StreamingCodePolicy::on_data_emitted(RecoveryHost& host, Slot /*t*/,
                                          const Tx& tx) {
  LinkKey key{tx.from, tx.to};
  Link& link = code_links_[key];
  if (options().dense_links) detect_skips(host, link, tx);
  record_use(host, key, link, tx, /*parity=*/false);
}

void StreamingCodePolicy::detect_skips(RecoveryHost& host, Link& link,
                                       const Tx& tx) {
  // On a dense link the inner schedule advances one id per emission; a jump
  // means the ids in between were lost upstream before this link ever
  // carried them. Queue them for forwarding once the sender holds them.
  if (tx.packet > link.last_data + 1) {
    const PacketId lo =
        std::max(link.last_data + 1, tx.packet - kMaxSkipRange);
    for (PacketId g = lo; g < tx.packet; ++g) {
      if (host.has_arrived(tx.to, g)) continue;
      if (host.in_flight(tx.to, g)) continue;
      link.skipped.try_emplace(g, tx.tag);
    }
  }
  link.last_data = std::max(link.last_data, tx.packet);
}

void StreamingCodePolicy::forward_skipped(RecoveryHost& host, Slot t,
                                          LinkKey key, Link& link,
                                          std::vector<Tx>& out) {
  const auto [from, to] = key;
  for (auto it = link.skipped.begin(); it != link.skipped.end();) {
    const PacketId id = it->first;
    if (host.has_arrived(to, id) || lost_.contains({to, id})) {
      it = link.skipped.erase(it);
      continue;
    }
    if (lost_.contains({from, id})) {
      // The upstream hop gave this id up: the sender will never hold it,
      // so no data use can ever carry it here. Cascade the abandonment.
      lost_.insert({to, id});
      host.abandon_gap(t, to, id);
      it = link.skipped.erase(it);
      continue;
    }
    if (host.in_flight(to, id) || !host.holds(from, id)) {
      ++it;  // still undecided upstream, or already on its way
      continue;
    }
    if (!host.send_available(from) ||
        !host.recv_headroom(t + host.link_latency(from, to) - 1, to)) {
      break;  // out of capacity this slot; the queue carries over
    }
    const Tx fwd{
        .from = from, .to = to, .packet = id, .tag = it->second,
        .retransmit = true};
    record_use(host, key, link, fwd, /*parity=*/false);
    out.push_back(fwd);
    ++host.stats().retransmissions;
    host.use_send(from);
    host.note_planned_arrival(t + host.link_latency(from, to) - 1, to);
    host.set_in_flight(to, id, true);
    it = link.skipped.erase(it);
  }
}

bool StreamingCodePolicy::emit_parity_use(RecoveryHost& host, Slot t,
                                          LinkKey key, Link& link,
                                          std::vector<Tx>& out) {
  const auto [from, to] = key;
  if (!host.send_available(from) ||
      !host.recv_headroom(t + host.link_latency(from, to) - 1, to)) {
    return false;  // blocked on capacity; the credit carries over
  }
  const Tx parity{.from = from, .to = to, .packet = next_code_id_++, .tag = -1};
  record_use(host, key, link, parity, /*parity=*/true);
  out.push_back(parity);
  host.use_send(from);
  host.note_planned_arrival(t + host.link_latency(from, to) - 1, to);
  ++host.stats().parity_transmissions;
  return true;
}

void StreamingCodePolicy::emit(RecoveryHost& host, Slot t,
                               std::vector<Tx>& out) {
  for (auto& [key, link] : code_links_) {
    // Relay forwarding: re-inject ids the dense schedule skipped past, as
    // regular parity-protected data uses.
    if (!link.skipped.empty()) forward_skipped(host, t, key, link, out);
    // Cadence parity: one parity use per T credit (B credit per data use),
    // i.e. the code's B:T parity:data ratio.
    while (link.credit >= static_cast<std::int64_t>(decode_delay_)) {
      if (!emit_parity_use(host, t, key, link, out)) break;
      link.credit -= static_cast<std::int64_t>(decode_delay_);
    }
    // Window flush: an undecided erasure at index i needs the link's index
    // stream to reach i + T before its fate is known. Once the data
    // schedule goes quiet (end of stream, drain), keep the stream moving
    // with extra parity uses until every open window is full.
    if (!link.open.empty() &&
        link.next_index <= *link.open.rbegin() + decode_delay_) {
      emit_parity_use(host, t, key, link, out);
    }
  }
}

void StreamingCodePolicy::note_erasure_run(RecoveryHost& host, Link& link,
                                           UseIndex idx) {
  UseIndex s = idx;
  while (true) {
    const auto it = link.uses.find(s - 1);
    if (it == link.uses.end() || it->second.state != UseState::kErased) break;
    --s;
  }
  UseIndex e = idx;
  while (true) {
    const auto it = link.uses.find(e + 1);
    if (it == link.uses.end() || it->second.state != UseState::kErased) break;
    ++e;
  }
  host.stats().max_erasure_run =
      std::max(host.stats().max_erasure_run, e - s + 1);
}

void StreamingCodePolicy::finalize_data_use(RecoveryHost& host, Slot t,
                                            const Tx& tx, UseState state) {
  const auto link_it = code_links_.find({tx.from, tx.to});
  if (link_it == code_links_.end()) return;
  Link& link = link_it->second;
  const auto idx_it = link.index_of.find(tx.packet);
  if (idx_it == link.index_of.end()) return;
  const UseIndex idx = idx_it->second;
  link.index_of.erase(idx_it);
  Use& use = link.uses.at(idx);
  use.state = state;
  --pending_uses_;
  if (state == UseState::kErased) {
    link.open.insert(idx);
    ++undecided_;
    note_erasure_run(host, link, idx);
  } else {
    // A later transmission of the same packet got through: any open erased
    // use of it on this link is naturally repaired and needs no decode.
    for (auto it = link.open.begin(); it != link.open.end();) {
      Use& prior = link.uses.at(*it);
      if (!prior.decided && prior.tx.packet == tx.packet) {
        prior.decided = true;
        it = link.open.erase(it);
        --undecided_;
      } else {
        ++it;
      }
    }
  }
  settle(host, t, link);
}

void StreamingCodePolicy::on_data_arrival(RecoveryHost& host, Slot t,
                                          const Tx& tx) {
  finalize_data_use(host, t, tx, UseState::kArrived);
}

void StreamingCodePolicy::on_data_drop(RecoveryHost& host,
                                       const sim::Drop& d) {
  finalize_data_use(host, d.would_arrive, d.tx, UseState::kErased);
}

void StreamingCodePolicy::on_control_arrival(RecoveryHost& host, Slot t,
                                             const Tx& tx) {
  const auto it = parity_at_.find(tx.packet);
  if (it == parity_at_.end()) return;
  const auto [key, idx] = it->second;
  parity_at_.erase(it);
  Link& link = code_links_.at(key);
  link.uses.at(idx).state = UseState::kArrived;
  --pending_uses_;
  settle(host, t, link);
}

void StreamingCodePolicy::on_control_drop(RecoveryHost& host,
                                          const sim::Drop& d) {
  const auto it = parity_at_.find(d.tx.packet);
  if (it == parity_at_.end()) return;
  const auto [key, idx] = it->second;
  parity_at_.erase(it);
  Link& link = code_links_.at(key);
  Use& use = link.uses.at(idx);
  use.state = UseState::kErased;
  // An erased parity use carries no stream gap of its own, but it extends
  // the channel's erasure run and can collide with an open decode window.
  use.decided = true;
  --pending_uses_;
  note_erasure_run(host, link, idx);
  settle(host, d.would_arrive, link);
}

void StreamingCodePolicy::decide(RecoveryHost& /*host*/, Link& link,
                                 UseIndex idx) {
  Use& use = link.uses.at(idx);
  if (use.decided) return;
  use.decided = true;
  if (!use.parity) {
    link.open.erase(idx);
    --undecided_;
  }
}

void StreamingCodePolicy::settle(RecoveryHost& host, Slot t, Link& link) {
  const std::vector<UseIndex> open_snapshot(link.open.begin(),
                                            link.open.end());
  for (const UseIndex idx : open_snapshot) {
    if (!link.open.contains(idx)) continue;  // decided by an earlier run
    // The maximal erasure run [s, e] containing idx. Channel uses finalize
    // in index order per link, so everything inside is final.
    UseIndex s = idx;
    while (true) {
      const auto it = link.uses.find(s - 1);
      if (it == link.uses.end() || it->second.state != UseState::kErased) {
        break;
      }
      --s;
    }
    UseIndex e = idx;
    while (true) {
      const auto it = link.uses.find(e + 1);
      if (it == link.uses.end() || it->second.state != UseState::kErased) {
        break;
      }
      ++e;
    }

    const auto declare_unrecoverable = [&](UseIndex lo, UseIndex hi) {
      for (UseIndex j = lo; j <= hi; ++j) {
        const auto it = link.uses.find(j);
        if (it == link.uses.end()) continue;
        Use& use = it->second;
        if (use.state != UseState::kErased || use.decided) continue;
        if (!use.parity) {
          ++host.stats().unrecoverable;
          if (!host.has_arrived(use.tx.to, use.tx.packet)) {
            lost_.insert({use.tx.to, use.tx.packet});
            host.abandon_gap(t, use.tx.to, use.tx.packet);
          }
        }
        decide(host, link, j);
      }
    };

    if (e - s + 1 > static_cast<UseIndex>(max_burst_)) {
      // Burst longer than B: beyond the code's correction capability.
      declare_unrecoverable(s, e);
      continue;
    }

    // Decode window for position idx: every channel use in (e, idx + T]
    // must have arrived. A second erasure inside it is a guard-space
    // collision; a pending or not-yet-emitted use leaves the decision open.
    bool wait = false;
    bool collision = false;
    for (UseIndex k = e + 1; k <= idx + static_cast<UseIndex>(decode_delay_);
         ++k) {
      const auto it = link.uses.find(k);
      if (it == link.uses.end() || it->second.state == UseState::kPending) {
        wait = true;
        break;
      }
      if (it->second.state == UseState::kErased) {
        collision = true;
        break;
      }
    }
    if (collision) {
      ++host.stats().guard_collisions;
      declare_unrecoverable(s, e);
      continue;
    }
    if (wait) continue;

    // All of (e, idx + T] arrived: the BLK code recovers position idx.
    Use& use = link.uses.at(idx);
    if (!host.has_arrived(use.tx.to, use.tx.packet)) {
      ++host.stats().fec_decodes;
      host.ingest_decoded(t, use.tx);
    }
    decide(host, link, idx);
  }
}

}  // namespace streamcast::policy
