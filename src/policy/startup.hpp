// Startup-policy strategy interface (DESIGN.md §15).
//
// The continuity metrics replay playback from a start slot; historically
// that slot was hard-wired to LossConfig::playback_start (or the run's
// worst playback delay). A StartupPolicy chooses the slot per receiver
// from what the run observed — letting the delay/smoothness tradeoff of
// Joshi–Kochman–Wornell (arXiv:1405.3697) be explored along the startup
// axis too:
//
//   fixed             the historical behavior: the configured slot, else
//                     the run's worst playback delay. Byte-identical to
//                     the pre-policy pipeline (golden-pinned).
//   progressive-ramp  start a small prebuffer after the receiver's first
//                     arrival and double it until a replay meets the
//                     stall budget; never later than `fixed`.
//   loss-adaptive     prebuffer proportional to the observed loss
//                     fraction (adapt_min + safety * loss * window);
//                     never later than `fixed`.
//
// Policies are pure functions of the per-receiver StartupContext, so the
// choice is deterministic and replayable; adaptive policies consult the
// run's own observations, which is why closed-form schedule replay is
// ineligible under them (the session disables it — see
// StreamingSession::replay_eligible).
#pragma once

#include <functional>
#include <string>

#include "src/sim/packet.hpp"

namespace streamcast::policy {

using sim::NodeKey;
using sim::PacketId;
using sim::Slot;

/// Startup configuration carried by core::SessionConfig.
struct StartupOptions {
  /// Registry entry: "fixed", "progressive-ramp", or "loss-adaptive".
  std::string policy = "fixed";
  /// progressive-ramp: initial prebuffer (slots after the first arrival)
  /// and the stall budget a candidate start must meet.
  Slot ramp_initial = 1;
  int ramp_stall_budget = 0;
  /// loss-adaptive: prebuffer = adapt_min + ceil(safety * loss_fraction *
  /// window) slots after the first arrival.
  double adapt_safety = 2.0;
  Slot adapt_min = 1;
};

/// Outcome of replaying playback from one candidate start slot.
struct PlaybackProbe {
  int stalls = 0;
  Slot stall_slots = 0;
  PacketId undecodable = 0;
  Slot finish_slot = 0;
};

/// Everything a policy may consult for one receiver. `replay` re-runs the
/// continuity replay at a candidate start slot (cheap: O(window)).
struct StartupContext {
  PacketId window = 0;
  /// Last slot simulated (horizon + drain).
  Slot horizon = 0;
  /// The run's worst playback delay over complete receivers.
  Slot worst_delay = 0;
  /// LossConfig::playback_start (-1 = unset).
  Slot fixed_start = -1;
  /// Earliest arrival of any window packet at this receiver (horizon when
  /// nothing arrived).
  Slot first_arrival = 0;
  /// Run-wide loss observations for the adaptive policy.
  std::int64_t drops = 0;
  std::int64_t deliveries = 0;
  std::function<PlaybackProbe(Slot)> replay;
};

class StartupPolicy {
 public:
  explicit StartupPolicy(const StartupOptions& options) : options_(options) {}
  virtual ~StartupPolicy() = default;

  virtual const char* name() const = 0;

  /// The playback start slot for this receiver.
  virtual Slot start_slot(const StartupContext& ctx) const = 0;

 protected:
  /// The historical fixed slot: the configured one, else the run's worst
  /// playback delay. Adaptive policies use it as their never-later-than
  /// cap, so they can only improve on the fixed startup.
  static Slot fixed_slot(const StartupContext& ctx) {
    return ctx.fixed_start >= 0 ? ctx.fixed_start : ctx.worst_delay;
  }

  const StartupOptions& options() const { return options_; }

 private:
  StartupOptions options_;
};

}  // namespace streamcast::policy
