// Static policy registries (DESIGN.md §15): one descriptor per recovery
// strategy and per startup strategy, mirroring the scheme registry one
// layer up. The session validates configurations against the capability
// flags instead of switching on policy names; the policy-dispatch lint
// (tools/lint_ast.py) fails CI on a `case Recovery...` arm anywhere outside
// src/policy/, so dispatch stays centralized here by construction.
#pragma once

#include <memory>
#include <span>
#include <string_view>

#include "src/policy/recovery.hpp"
#include "src/policy/startup.hpp"

namespace streamcast::policy {

/// What a recovery strategy needs / guarantees. The session validates the
/// scheme x policy combination against these flags.
struct RecoveryPolicyCaps {
  /// Uses receiver->sender feedback (NACKs); needs reverse-link latency.
  bool reverse_channel = false;
  /// Emits control-id parity traffic on residual capacity.
  bool emits_parity = false;
  /// Recovery is delay-bounded: a gap's fate (decoded or abandoned) is
  /// decided within a fixed number of channel uses, so the drain loop may
  /// stop once the policy reports exhausted(). Incompatible with
  /// demand-driven schemes, whose silent gaps only a feedback sweep finds.
  bool bounded_recovery = false;
  /// Closes gaps that produce no failed transmission (the aged-gap sweep);
  /// required by demand-driven schemes.
  bool closes_silent_gaps = false;
};

struct RecoveryPolicyDescriptor {
  const char* name;
  RecoveryPolicyCaps caps;
  std::unique_ptr<RecoveryPolicy> (*make)(const RecoveryPolicyOptions&);
};

/// Every registered recovery policy: none, nack, xor-parity,
/// streaming-code.
std::span<const RecoveryPolicyDescriptor> recovery_policies();

/// Lookup by registry name; throws std::invalid_argument on an unknown
/// name.
const RecoveryPolicyDescriptor& recovery_policy(std::string_view name);

struct StartupPolicyCaps {
  /// The start slot depends on the run's own observations (first arrivals,
  /// loss fraction, replay probes) instead of configuration alone. The
  /// session disables memoized schedules and closed-form replay under
  /// adaptive startup.
  bool adaptive = false;
};

struct StartupPolicyDescriptor {
  const char* name;
  StartupPolicyCaps caps;
  std::unique_ptr<StartupPolicy> (*make)(const StartupOptions&);
};

/// Every registered startup policy: fixed, progressive-ramp,
/// loss-adaptive.
std::span<const StartupPolicyDescriptor> startup_policies();

/// Lookup by registry name; throws std::invalid_argument on an unknown
/// name.
const StartupPolicyDescriptor& startup_policy(std::string_view name);

}  // namespace streamcast::policy
