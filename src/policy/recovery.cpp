#include "src/policy/recovery.hpp"

namespace streamcast::policy {

const char* recovery_mode_name(RecoveryMode m) {
  switch (m) {
    case RecoveryMode::kNone:
      return "none";
    case RecoveryMode::kNack:
      return "nack";
    case RecoveryMode::kFec:
      return "fec";
  }
  return "?";
}

const char* recovery_policy_name(RecoveryMode m) {
  switch (m) {
    case RecoveryMode::kNone:
      return "none";
    case RecoveryMode::kNack:
      return "nack";
    case RecoveryMode::kFec:
      return "xor-parity";
  }
  return "?";
}

double RecoveryStats::redundancy_overhead() const {
  if (data_transmissions == 0) return 0.0;
  return static_cast<double>(retransmissions + parity_transmissions) /
         static_cast<double>(data_transmissions);
}

void RecoveryPolicy::on_suppressed_causal(RecoveryHost& host, Slot /*t*/,
                                          const Tx& tx) {
  host.mark_outstanding(tx.to, tx.tag, tx.packet);
}

}  // namespace streamcast::policy
