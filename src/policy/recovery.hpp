// Recovery-policy strategy interface (DESIGN.md §15).
//
// loss::RecoveryProtocol used to be one monolithic class switching on a
// RecoveryMode enum. The generic machinery — sequence tracking, causality
// and redundancy suppression, in-order hand-off, residual-capacity
// accounting — is mode-independent; only the *repair strategy* differed.
// This header splits that strategy out: RecoveryProtocol stays the host
// (it owns trackers, the in-order gate, and capacity bookkeeping, exposed
// through the RecoveryHost interface below) and delegates every
// strategy-specific decision to a RecoveryPolicy looked up in the policy
// registry (policy/registry.hpp):
//
//   none           no repair; gaps stay open and are accounted.
//   nack           gap-driven retransmission after a modeled NACK trip.
//   xor-parity     one XOR parity packet per fec_window data packets.
//   streaming-code Badr–Lui–Khisti delay-constrained burst-erasure code
//                  (arXiv:1303.4370): rate T/(T+B) per link, corrects any
//                  erasure burst of length <= B within decode delay T.
//
// The extraction is byte-invisible for the legacy strategies: every hook
// below fires at exactly the program point the old mode switch sat at, and
// the golden parity suite (tests/policy_layer_test.cpp) pins the serialized
// reports to pre-extraction captures.
//
// This module sits just above simbase in the layer DAG: a policy sees the
// world only through RecoveryHost, never through net:: or the engine.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "src/sim/event.hpp"
#include "src/sim/packet.hpp"

namespace streamcast::policy {

using sim::NodeKey;
using sim::PacketId;
using sim::Slot;
using sim::Tx;

/// Legacy strategy selector, kept for the pre-registry configuration
/// surface (LossConfig::recovery); the registry maps it to policy names via
/// recovery_policy_name(). New code should select policies by name.
enum class RecoveryMode { kNone, kNack, kFec };

/// Historical labels ("none" / "nack" / "fec"), used by bench output.
const char* recovery_mode_name(RecoveryMode m);

/// Registry entry name for a legacy mode ("none" / "nack" / "xor-parity").
const char* recovery_policy_name(RecoveryMode m);

/// Badr–Lui–Khisti streaming-code parameters. The code spends one parity
/// channel use per T/B data uses (rate T/(T+B)) and corrects any erasure
/// burst of length <= B on a link within T further channel uses, provided
/// the next burst starts after that decode window (the guard space).
struct StreamingCodeOptions {
  /// Decode delay T, in channel uses of the link.
  Slot decode_delay = 16;
  /// Maximal correctable burst length B, in channel uses.
  PacketId burst = 4;
};

/// Strategy knobs, filled by the host from loss::RecoveryOptions.
struct RecoveryPolicyOptions {
  /// Data packets per XOR parity packet (xor-parity).
  int fec_window = 8;
  /// Extra slots added to the modeled NACK round trip (nack).
  Slot nack_delay = 0;
  /// Sender-side skip detection for newest-only forwarders (nack).
  bool dense_links = false;
  /// Age after which a still-open gap is NACKed from the source; -1
  /// disables the sweep (nack).
  Slot gap_timeout = -1;
  /// Substream tag carried by aged-gap sweep repairs. The default (0)
  /// gates the receiver's tag-0 substream behind the repair — the right
  /// call for schemes whose deliveries all carry tag 0. A scheme whose
  /// tags partition the stream (dyntree trees) should pass a tag no live
  /// delivery uses, so backfill never holds the live substreams back.
  std::int32_t sweep_tag = 0;
  /// Playback relevance horizon for the sweep: a gap whose id is more than
  /// this many slots behind the current slot is abandoned instead of
  /// repaired — the repair could only land after the packet's play
  /// deadline, so it would be pure congestion. -1 repairs regardless of
  /// age (the historical behavior).
  Slot repair_horizon = -1;
  /// Node that originates the stream and implicitly holds every packet.
  NodeKey source = 0;
  /// Streaming-code parameters (streaming-code).
  StreamingCodeOptions code{};
};

struct RecoveryStats {
  std::int64_t data_transmissions = 0;
  std::int64_t retransmissions = 0;
  std::int64_t parity_transmissions = 0;
  std::int64_t fec_decodes = 0;
  /// Sends suppressed because the sender did not hold the packet.
  std::int64_t suppressed_causal = 0;
  /// Sends suppressed because the receiver already held the packet (or it
  /// was already in flight).
  std::int64_t suppressed_redundant = 0;
  /// Repair requests issued (including re-NACKs of lost repairs).
  std::int64_t nacks = 0;
  /// Streaming-code channel health: the longest per-link erasure run seen,
  /// runs abandoned because a second burst fell inside the decode window
  /// (guard-space collisions), and data uses declared unrecoverable. Zero
  /// under every other policy.
  std::int64_t max_erasure_run = 0;
  std::int64_t guard_collisions = 0;
  std::int64_t unrecoverable = 0;

  /// Repair traffic per useful data transmission:
  /// (retransmissions + parity) / data.
  double redundancy_overhead() const;
};

/// The host-side services a recovery policy may use. Implemented by
/// loss::RecoveryProtocol; a policy never touches the topology or the
/// engine directly, so the module depends only on simbase.
class RecoveryHost {
 public:
  virtual ~RecoveryHost() = default;

  virtual NodeKey node_count() const = 0;
  virtual Slot link_latency(NodeKey from, NodeKey to) const = 0;

  /// True when `node` holds packet p — source-aware (the stream source
  /// implicitly holds everything).
  virtual bool holds(NodeKey node, PacketId p) const = 0;
  /// True when packet p actually arrived at `node` (not source-aware).
  virtual bool has_arrived(NodeKey node, PacketId p) const = 0;
  /// First packet id `node` has not yet received.
  virtual PacketId gap_free_prefix(NodeKey node) const = 0;
  /// Ids received ahead of the prefix (the current gaps' far side).
  virtual const std::set<PacketId>& ahead(NodeKey node) const = 0;

  virtual bool in_flight(NodeKey to, PacketId p) const = 0;
  virtual void set_in_flight(NodeKey to, PacketId p, bool value) = 0;

  /// Registers packet p as a known gap in the in-order gate of the
  /// (to, tag) substream; later arrivals overtaking it are held back.
  virtual void mark_outstanding(NodeKey to, std::int32_t tag, PacketId p) = 0;
  /// Gives up on a gap: retires p from the in-order gate and flushes
  /// whatever it was holding back, without delivering p. The continuity
  /// metrics then report the packet as an undecodable gap instead of the
  /// substream stalling behind it forever.
  virtual void abandon_gap(Slot t, NodeKey to, PacketId p) = 0;

  /// Nodes that have previously delivered to `to`, in first-seen order.
  virtual const std::vector<NodeKey>& senders_seen(NodeKey to) const = 0;

  // Residual-capacity accounting for repair/parity traffic, valid during
  // the emit() hook of the current slot.
  virtual bool send_available(NodeKey from) const = 0;
  virtual void use_send(NodeKey from) = 0;
  virtual bool recv_headroom(Slot arrive, NodeKey to) const = 0;
  virtual void note_planned_arrival(Slot arrive, NodeKey to) = 0;

  /// Feeds a policy-decoded packet into the host exactly as if it had
  /// arrived: synthesizes the observer delivery and runs the common
  /// data-arrival path (tracker, gate, in-order release).
  virtual void ingest_decoded(Slot t, const Tx& tx) = 0;

  virtual RecoveryStats& stats() = 0;
};

/// One repair strategy. Every hook fires at a fixed program point of the
/// host (documented per hook); default implementations reproduce the
/// strategy-independent behavior, so a policy only overrides what it acts
/// on. Hooks receive the host by reference — policies hold no host pointer
/// and stay movable/testable in isolation.
class RecoveryPolicy {
 public:
  explicit RecoveryPolicy(const RecoveryPolicyOptions& options)
      : options_(options) {}
  virtual ~RecoveryPolicy() = default;

  virtual const char* name() const = 0;

  /// Called once after construction, before the first slot (per-node
  /// sizing).
  virtual void bind(RecoveryHost& /*host*/) {}

  /// A send was suppressed because the sender does not hold the packet.
  /// Default: register the downstream gap with the in-order gate.
  virtual void on_suppressed_causal(RecoveryHost& host, Slot t, const Tx& tx);
  /// A send was suppressed because the receiver already holds the packet
  /// (or it is in flight).
  virtual void on_suppressed_redundant(RecoveryHost& /*host*/, Slot /*t*/,
                                       const Tx& /*tx*/) {}
  /// A data transmission is about to be emitted to the engine.
  virtual void on_data_emitted(RecoveryHost& /*host*/, Slot /*t*/,
                               const Tx& /*tx*/) {}
  /// End of the slot's transmit pass: the policy may append repair/parity
  /// traffic, bounded by the host's residual capacity accounting.
  virtual void emit(RecoveryHost& /*host*/, Slot /*t*/,
                    std::vector<Tx>& /*out*/) {}

  /// A data packet is being ingested (real, repaired, or decoded); fires
  /// after the in-flight clear, before the in-order gate retires the gap.
  virtual void on_data_ingested(RecoveryHost& /*host*/, Slot /*t*/,
                                const Tx& /*tx*/) {}
  /// A data packet finished the engine-delivery path at its receiver.
  virtual void on_data_arrival(RecoveryHost& /*host*/, Slot /*t*/,
                               const Tx& /*tx*/) {}
  /// A control-id packet (parity) arrived.
  virtual void on_control_arrival(RecoveryHost& /*host*/, Slot /*t*/,
                                  const Tx& /*tx*/) {}

  /// The loss model erased a data transmission; fires after the host's
  /// generic bookkeeping (in-flight clear, gate registration, observer
  /// fan-out).
  virtual void on_data_drop(RecoveryHost& /*host*/, const sim::Drop& /*d*/) {}
  /// The loss model erased a control-id (parity) transmission.
  virtual void on_control_drop(RecoveryHost& /*host*/,
                               const sim::Drop& /*d*/) {}

  /// True when the policy can no longer close any open gap (every erased
  /// use is decoded or abandoned and nothing is in flight). The drain loop
  /// stops early instead of burning max_drain. Policies with unbounded
  /// recovery (nack re-NACKs forever) return false.
  virtual bool exhausted() const { return false; }

 protected:
  const RecoveryPolicyOptions& options() const { return options_; }

 private:
  RecoveryPolicyOptions options_;
};

}  // namespace streamcast::policy
