#include "src/policy/registry.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>
#include <string>

#include "src/policy/nack.hpp"
#include "src/policy/streaming_code.hpp"
#include "src/policy/xor_parity.hpp"

namespace streamcast::policy {

namespace {

/// No repair: gaps stay open and are accounted (the base-class defaults
/// are exactly the strategy-independent behavior).
class NonePolicy final : public RecoveryPolicy {
 public:
  using RecoveryPolicy::RecoveryPolicy;
  const char* name() const override { return "none"; }
};

template <typename P>
std::unique_ptr<RecoveryPolicy> make_recovery(
    const RecoveryPolicyOptions& options) {
  return std::make_unique<P>(options);
}

constexpr std::array<RecoveryPolicyDescriptor, 4> kRecoveryRegistry{{
    {.name = "none", .caps = {}, .make = &make_recovery<NonePolicy>},
    {.name = "nack",
     .caps = {.reverse_channel = true, .closes_silent_gaps = true},
     .make = &make_recovery<NackPolicy>},
    {.name = "xor-parity",
     .caps = {.emits_parity = true},
     .make = &make_recovery<XorParityPolicy>},
    {.name = "streaming-code",
     .caps = {.emits_parity = true, .bounded_recovery = true},
     .make = &make_recovery<StreamingCodePolicy>},
}};

/// The historical startup: the configured slot, else the run's worst
/// playback delay.
class FixedStartup final : public StartupPolicy {
 public:
  using StartupPolicy::StartupPolicy;
  const char* name() const override { return "fixed"; }
  Slot start_slot(const StartupContext& ctx) const override {
    return fixed_slot(ctx);
  }
};

/// Start a small prebuffer after the receiver's first arrival, doubling it
/// until the replay meets the stall budget; capped at the fixed slot (a
/// replay from the fixed slot is the historical behavior, so the ramp can
/// only start earlier, never later).
class ProgressiveRampStartup final : public StartupPolicy {
 public:
  using StartupPolicy::StartupPolicy;
  const char* name() const override { return "progressive-ramp"; }
  Slot start_slot(const StartupContext& ctx) const override {
    const Slot cap = fixed_slot(ctx);
    Slot wait = std::max<Slot>(options().ramp_initial, 1);
    while (true) {
      const Slot candidate = std::min<Slot>(ctx.first_arrival + wait, cap);
      if (candidate >= cap) return cap;
      if (ctx.replay(candidate).stalls <= options().ramp_stall_budget) {
        return candidate;
      }
      wait *= 2;
    }
  }
};

/// Prebuffer proportional to the observed loss fraction: a clean channel
/// starts almost immediately, a lossy one waits for repair headroom.
class LossAdaptiveStartup final : public StartupPolicy {
 public:
  using StartupPolicy::StartupPolicy;
  const char* name() const override { return "loss-adaptive"; }
  Slot start_slot(const StartupContext& ctx) const override {
    const Slot cap = fixed_slot(ctx);
    const double total =
        static_cast<double>(ctx.drops) + static_cast<double>(ctx.deliveries);
    const double fraction =
        total > 0 ? static_cast<double>(ctx.drops) / total : 0.0;
    const Slot prebuffer =
        options().adapt_min +
        static_cast<Slot>(std::ceil(options().adapt_safety * fraction *
                                    static_cast<double>(ctx.window)));
    return std::min<Slot>(ctx.first_arrival + prebuffer, cap);
  }
};

template <typename P>
std::unique_ptr<StartupPolicy> make_startup(const StartupOptions& options) {
  return std::make_unique<P>(options);
}

constexpr std::array<StartupPolicyDescriptor, 3> kStartupRegistry{{
    {.name = "fixed", .caps = {}, .make = &make_startup<FixedStartup>},
    {.name = "progressive-ramp",
     .caps = {.adaptive = true},
     .make = &make_startup<ProgressiveRampStartup>},
    {.name = "loss-adaptive",
     .caps = {.adaptive = true},
     .make = &make_startup<LossAdaptiveStartup>},
}};

}  // namespace

std::span<const RecoveryPolicyDescriptor> recovery_policies() {
  return kRecoveryRegistry;
}

const RecoveryPolicyDescriptor& recovery_policy(std::string_view name) {
  const auto it =
      std::ranges::find_if(kRecoveryRegistry, [&](const auto& desc) {
        return name == desc.name;
      });
  if (it == kRecoveryRegistry.end()) {
    throw std::invalid_argument("unknown recovery policy: " +
                                std::string(name));
  }
  return *it;
}

std::span<const StartupPolicyDescriptor> startup_policies() {
  return kStartupRegistry;
}

const StartupPolicyDescriptor& startup_policy(std::string_view name) {
  const auto it = std::ranges::find_if(kStartupRegistry, [&](const auto& desc) {
    return name == desc.name;
  });
  if (it == kStartupRegistry.end()) {
    throw std::invalid_argument("unknown startup policy: " +
                                std::string(name));
  }
  return *it;
}

}  // namespace streamcast::policy
