// Structured audit findings: what invariant broke, where, and by how much.
//
// Every violation carries the slot it happened in, the node it happened at,
// and the expected-vs-actual values of the checked quantity, so a failing
// audited run pinpoints the broken bound rather than just aborting. Reports
// are deterministic: violations appear in event order, never in hash order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/packet.hpp"

namespace streamcast::audit {

using sim::NodeKey;
using sim::PacketId;
using sim::Slot;

/// The machine-checked invariants, one per paper claim (DESIGN.md §7).
enum class ViolationKind {
  /// A node initiated more transmissions in one slot than its capacity
  /// (1 for ordinary nodes, D / d for super nodes, plus any provisioned
  /// recovery headroom).
  kSendCapacity,
  /// A node completed more receptions in one slot than its capacity — the
  /// paper's collision-freedom: ordinary nodes receive at most one packet
  /// per slot (appendix congruence property, Thm 2 machinery).
  kRecvCapacity,
  /// The same (from, to, packet) transmission was queued twice in one slot:
  /// a schedule collision on a single link.
  kScheduleCollision,
  /// A delivery's in-flight time disagrees with the topology's latency for
  /// the link — e.g. an inter-cluster packet that did not take T_c slots
  /// (the super-tree pacing of §2.1).
  kLatencyMismatch,
  /// The same stream packet was delivered twice to the same node. All of
  /// the paper's schemes are duplicate-free; churn runs relax this check.
  kDuplicateDelivery,
  /// A node's gap-free delivered prefix decreased between two slots.
  kPrefixRegression,
  /// A receiver's playback delay exceeded the scheme's claimed bound
  /// (Theorem 2's h*d for the multi-tree, Propositions 1-2 / Theorem 4
  /// envelopes for the hypercube, closed forms for the baselines).
  kDelayBound,
  /// A receiver's maximum buffer occupancy exceeded the scheme's claimed
  /// bound, after slack for recovery-induced extra playback delay.
  kBufferBound,
  /// A receiver never completed the measurement window (reliable runs
  /// only; lossy runs may legitimately time out and account for this in
  /// LossSummary::incomplete_nodes instead).
  kIncompleteWindow,
};

const char* violation_kind_name(ViolationKind kind);

struct Violation {
  ViolationKind kind;
  Slot slot = 0;
  NodeKey node = sim::kNoNode;
  /// The bound the invariant claims (capacity, latency, delay, ...).
  std::int64_t expected = 0;
  /// The value the run actually produced.
  std::int64_t actual = 0;
  /// Human-oriented context: the offending link, packet, tree tag, ...
  std::string detail;

  std::string to_string() const;
};

struct AuditReport {
  std::int64_t slots_audited = 0;
  std::int64_t deliveries_audited = 0;
  std::int64_t drops_audited = 0;
  /// Violations beyond AuditOptions::max_violations, counted but not stored.
  std::int64_t suppressed = 0;
  std::vector<Violation> violations;

  bool ok() const { return violations.empty() && suppressed == 0; }
  std::string to_string() const;
};

}  // namespace streamcast::audit
