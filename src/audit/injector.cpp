#include "src/audit/injector.hpp"

namespace streamcast::audit {

void OverSendInjector::transmit(Slot t, std::vector<sim::Tx>& out) {
  const std::size_t before = out.size();
  inner_.transmit(t, out);
  if (t != at_ || out.size() == before) return;
  fired_ = true;
  injected_ = out[before];
  for (int c = 0; c < copies_; ++c) out.push_back(injected_);
  pending_dupes_ = copies_;
}

void OverSendInjector::deliver(Slot t, const sim::Tx& tx) {
  if (fired_ && pending_dupes_ > 0 && tx == injected_) {
    // The first arrival is the legitimate one; later identical arrivals are
    // our injected copies.
    if (++seen_injected_ > 1) {
      --pending_dupes_;
      return;
    }
  }
  inner_.deliver(t, tx);
}

}  // namespace streamcast::audit
