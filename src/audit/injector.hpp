// Test-only fault injection: protocol decorators that deliberately break an
// invariant so the audit layer's detection can itself be tested end-to-end.
// Paired with EngineOptions::enforce = false, an injected fault flows through
// the engine untouched and must be caught by the InvariantAuditor with a
// precise AuditReport — the audited grid sweep's negative control.
#pragma once

#include "src/sim/protocol.hpp"

namespace streamcast::audit {

using sim::PacketId;
using sim::Slot;

/// Duplicates transmissions of the wrapped protocol, over-sending on one
/// link: in slot `at`, the first transmission the protocol emits is queued
/// `copies` extra times. The duplicate breaks the sender's capacity (and,
/// being byte-identical, collides on the link and arrives as a duplicate).
class OverSendInjector final : public sim::Protocol {
 public:
  OverSendInjector(sim::Protocol& inner, Slot at, int copies = 1)
      : inner_(inner), at_(at), copies_(copies) {}

  void transmit(Slot t, std::vector<sim::Tx>& out) override;
  /// Forwards deliveries, swallowing the injected duplicates so the wrapped
  /// protocol's own state stays consistent — only the engine/auditor see the
  /// fault.
  void deliver(Slot t, const sim::Tx& tx) override;

  /// True once the fault was actually injected (the wrapped protocol did
  /// transmit in slot `at`).
  bool fired() const { return fired_; }

 private:
  sim::Protocol& inner_;
  Slot at_;
  int copies_;
  bool fired_ = false;
  sim::Tx injected_{};
  int pending_dupes_ = 0;
  int seen_injected_ = 0;
};

}  // namespace streamcast::audit
