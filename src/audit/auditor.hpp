// Always-on simulation sanitizer: machine-checks the paper's invariants on
// the engine's observer surface, every slot, for every scheme.
//
// The engine already *enforces* capacity at the moment a transmission is
// queued; the auditor is deliberately redundant — it recomputes every
// invariant from nothing but the observer event stream (on_delivery /
// on_drop) and the topology oracle, so a bug in the engine's own accounting,
// a protocol that mutates state mid-stream (churn, loss recovery), or a
// future parallel engine cannot silently void the paper's claims. Audit
// tests run the engine with EngineOptions::enforce = false to prove the
// auditor catches injected violations on its own.
//
// Checked continuously (slot granularity, detected at the first offending
// event):
//   * per-node send capacity   — deliveries and drops charged to their send
//     slot; super nodes get D / d, ProvisionedTopology headroom included
//   * per-node receive capacity — the paper's collision-freedom (ordinary
//     nodes receive <= 1 packet per slot)
//   * per-link schedule collisions — the same (from, to, packet) queued
//     twice in one slot
//   * link-latency pacing      — received - sent + 1 must equal the
//     topology's latency (T_c across clusters, T_i inside)
//   * duplicate-free delivery and delivered-prefix monotonicity
//
// Checked at finalize(), over the measurement window:
//   * playback delay against the scheme's claimed bound (Thm 2 / Prop 1-2)
//   * max buffer occupancy against the claimed bound; lossy runs add gap-
//     backlog slack (recovery retransmissions both delay playback and pile
//     up arrivals behind the open gap), reliable runs check the paper's
//     bound exactly
//   * window completeness (reliable runs only)
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/audit/report.hpp"
#include "src/net/topology.hpp"
#include "src/sim/engine.hpp"

namespace streamcast::audit {

struct AuditOptions {
  /// Packets [0, window) measured for prefix/delay/buffer checks. 0 turns
  /// the window accounting off (capacity checks still run).
  PacketId window = 0;
  /// Claimed worst-case playback delay; every audited node's a(i) must stay
  /// at or under it. -1 skips the check (lossy runs, where repairs may
  /// legitimately exceed the deterministic bound).
  Slot delay_bound = -1;
  /// Claimed max buffer occupancy; -1 skips the check.
  std::int64_t buffer_bound = -1;
  /// Lossy-run slack: allow one extra buffered packet per slot of the
  /// node's own playback delay. While a gap waits for its repair, the paced
  /// stream keeps arriving and piles up behind it — and every piled packet
  /// pushed the playback delay out by one slot, so occupancy above the
  /// reliable bound is covered by a(i) itself. Off (reliable runs), the
  /// paper's bound is checked exactly.
  bool gap_backlog_slack = false;
  /// Report duplicate deliveries. Churn runs relax this the same way they
  /// relax EngineOptions::forbid_duplicates.
  bool check_duplicates = true;
  /// Require every audited node to complete the window by finalize().
  /// Reliable schemes must; lossy runs may time out legitimately.
  bool require_complete = false;
  /// Nodes whose window/delay/buffer to audit. Empty = every node except
  /// key 0 (the source). Capacity checks always cover all nodes.
  std::vector<NodeKey> audited_nodes{};
  /// Violations stored verbatim; the rest are counted as `suppressed`.
  std::size_t max_violations = 64;
};

class InvariantAuditor final : public sim::DeliveryObserver {
 public:
  InvariantAuditor(const net::Topology& topology, AuditOptions options = {});

  void on_delivery(const sim::Delivery& d) override;
  void on_drop(const sim::Drop& d) override;

  /// Runs the end-of-run checks (delay/buffer/completeness) and returns the
  /// full report. Idempotent: the window checks run once.
  const AuditReport& finalize();

  /// finalize(), then throw sim::ProtocolViolation carrying the report text
  /// if any invariant was violated.
  void require_clean();

  /// The report as accumulated so far (without the finalize()-only checks).
  const AuditReport& report() const { return report_; }

 private:
  void record(Violation v);
  /// Charges one transmission to (from, slot); shared by deliveries and
  /// drops — an erased packet still consumed its sender's capacity.
  void charge_send(Slot sent, const sim::Tx& tx);
  void observe_window(const sim::Delivery& d);
  void advance(Slot processing_slot);
  std::size_t window_index(NodeKey node, PacketId packet) const;

  const net::Topology& topology_;
  AuditOptions options_;
  AuditReport report_;
  bool finalized_ = false;

  Slot cur_ = -1;             // engine slot currently being observed
  Slot max_latency_seen_ = 1;

  // Per-slot counters, pruned as slots complete. The outer std::map keeps
  // pruning and any reporting deterministic; the inner hash containers are
  // only ever indexed, never iterated.
  std::map<Slot, std::unordered_map<NodeKey, int>> sends_;
  std::map<Slot, std::unordered_map<NodeKey, int>> recvs_;
  std::map<Slot, std::set<std::tuple<NodeKey, NodeKey, PacketId>>> links_;

  std::unordered_set<std::uint64_t> delivered_;  // (node, packet) keys

  // Window accounting (empty when options_.window == 0).
  std::vector<Slot> arrival_;      // [node * window + packet]
  std::vector<PacketId> prefix_;   // gap-free delivered prefix per node
};

}  // namespace streamcast::audit
