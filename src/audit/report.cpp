#include "src/audit/report.hpp"

namespace streamcast::audit {

const char* violation_kind_name(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kSendCapacity:
      return "send-capacity";
    case ViolationKind::kRecvCapacity:
      return "recv-capacity";
    case ViolationKind::kScheduleCollision:
      return "schedule-collision";
    case ViolationKind::kLatencyMismatch:
      return "latency-mismatch";
    case ViolationKind::kDuplicateDelivery:
      return "duplicate-delivery";
    case ViolationKind::kPrefixRegression:
      return "prefix-regression";
    case ViolationKind::kDelayBound:
      return "delay-bound";
    case ViolationKind::kBufferBound:
      return "buffer-bound";
    case ViolationKind::kIncompleteWindow:
      return "incomplete-window";
  }
  return "?";
}

std::string Violation::to_string() const {
  std::string s(violation_kind_name(kind));
  s += " at slot " + std::to_string(slot) + ", node " + std::to_string(node) +
       ": expected " + std::to_string(expected) + ", got " +
       std::to_string(actual);
  if (!detail.empty()) s += " (" + detail + ")";
  return s;
}

std::string AuditReport::to_string() const {
  std::string s = "audit: " + std::to_string(slots_audited) + " slots, " +
                  std::to_string(deliveries_audited) + " deliveries, " +
                  std::to_string(drops_audited) + " drops";
  if (ok()) return s + ", all invariants hold";
  s += ", " +
       std::to_string(static_cast<std::int64_t>(violations.size()) +
                      suppressed) +
       " violation(s)";
  for (const Violation& v : violations) s += "\n  " + v.to_string();
  if (suppressed > 0) {
    s += "\n  ... and " + std::to_string(suppressed) + " more";
  }
  return s;
}

}  // namespace streamcast::audit
