#include "src/audit/auditor.hpp"

#include <algorithm>
#include <span>
#include <string>
#include <utility>

#include "src/metrics/buffers.hpp"

namespace streamcast::audit {

namespace {

std::uint64_t delivery_key(NodeKey node, PacketId packet) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(node)) << 40) ^
         static_cast<std::uint64_t>(packet);
}

std::string link_detail(const sim::Tx& tx) {
  return std::to_string(tx.from) + " -> " + std::to_string(tx.to) +
         ", packet " + std::to_string(tx.packet);
}

}  // namespace

InvariantAuditor::InvariantAuditor(const net::Topology& topology,
                                   AuditOptions options)
    : topology_(topology), options_(std::move(options)) {
  if (options_.audited_nodes.empty()) {
    for (NodeKey x = 1; x < topology_.size(); ++x) {
      options_.audited_nodes.push_back(x);
    }
  }
  if (options_.window > 0) {
    arrival_.assign(static_cast<std::size_t>(topology_.size()) *
                        static_cast<std::size_t>(options_.window),
                    metrics::kNeverArrived);
    prefix_.assign(static_cast<std::size_t>(topology_.size()), 0);
  }
}

void InvariantAuditor::record(Violation v) {
  if (report_.violations.size() < options_.max_violations) {
    report_.violations.push_back(std::move(v));
  } else {
    ++report_.suppressed;
  }
}

void InvariantAuditor::advance(Slot processing_slot) {
  if (processing_slot <= cur_) return;
  cur_ = processing_slot;
  report_.slots_audited = cur_ + 1;
  // Send-slot keyed state stays live until every transmission initiated in
  // that slot has landed — bounded by the largest link latency seen (with a
  // generous floor so a late first long-haul delivery cannot hit a pruned
  // counter).
  const Slot horizon = std::max<Slot>(2 * max_latency_seen_, 64);
  const Slot keep_from = cur_ - horizon;
  while (!sends_.empty() && sends_.begin()->first < keep_from) {
    sends_.erase(sends_.begin());
  }
  while (!links_.empty() && links_.begin()->first < keep_from) {
    links_.erase(links_.begin());
  }
  // Receive counters only ever grow in the slot being processed.
  while (!recvs_.empty() && recvs_.begin()->first < cur_) {
    recvs_.erase(recvs_.begin());
  }
}

void InvariantAuditor::charge_send(Slot sent, const sim::Tx& tx) {
  if (tx.from < 0 || tx.from >= topology_.size()) return;  // engine throws
  const int cap = topology_.send_capacity(tx.from);
  const int used = ++sends_[sent][tx.from];
  if (used == cap + 1) {
    record({.kind = ViolationKind::kSendCapacity,
            .slot = sent,
            .node = tx.from,
            .expected = cap,
            .actual = used,
            .detail = link_detail(tx)});
  }
  if (!links_[sent].insert({tx.from, tx.to, tx.packet}).second) {
    record({.kind = ViolationKind::kScheduleCollision,
            .slot = sent,
            .node = tx.from,
            .expected = 1,
            .actual = 2,
            .detail = link_detail(tx)});
  }
}

std::size_t InvariantAuditor::window_index(NodeKey node,
                                           PacketId packet) const {
  return static_cast<std::size_t>(node) *
             static_cast<std::size_t>(options_.window) +
         static_cast<std::size_t>(packet);
}

void InvariantAuditor::observe_window(const sim::Delivery& d) {
  const NodeKey x = d.tx.to;
  const PacketId p = d.tx.packet;
  if (options_.window <= 0 || p < 0 || p >= options_.window) return;
  Slot& slot = arrival_[window_index(x, p)];
  if (slot == metrics::kNeverArrived) slot = d.received;
  const PacketId before = prefix_[static_cast<std::size_t>(x)];
  PacketId after = before;
  while (after < options_.window &&
         arrival_[window_index(x, after)] != metrics::kNeverArrived) {
    ++after;
  }
  if (after < before) {
    record({.kind = ViolationKind::kPrefixRegression,
            .slot = d.received,
            .node = x,
            .expected = before,
            .actual = after,
            .detail = "delivered prefix shrank"});
  }
  prefix_[static_cast<std::size_t>(x)] = after;
}

void InvariantAuditor::on_delivery(const sim::Delivery& d) {
  ++report_.deliveries_audited;
  advance(d.received);
  max_latency_seen_ = std::max(max_latency_seen_, d.received - d.sent + 1);
  charge_send(d.sent, d.tx);

  const sim::Tx& tx = d.tx;
  if (tx.to < 0 || tx.to >= topology_.size()) return;  // engine throws

  const Slot latency = topology_.latency(tx.from, tx.to);
  const Slot took = d.received - d.sent + 1;
  if (took != latency) {
    record({.kind = ViolationKind::kLatencyMismatch,
            .slot = d.received,
            .node = tx.to,
            .expected = latency,
            .actual = took,
            .detail = link_detail(tx)});
  }

  const int cap = topology_.recv_capacity(tx.to);
  const int used = ++recvs_[d.received][tx.to];
  if (used == cap + 1) {
    record({.kind = ViolationKind::kRecvCapacity,
            .slot = d.received,
            .node = tx.to,
            .expected = cap,
            .actual = used,
            .detail = link_detail(tx)});
  }

  if (!delivered_.insert(delivery_key(tx.to, tx.packet)).second &&
      options_.check_duplicates) {
    record({.kind = ViolationKind::kDuplicateDelivery,
            .slot = d.received,
            .node = tx.to,
            .expected = 1,
            .actual = 2,
            .detail = link_detail(tx)});
  }

  observe_window(d);
}

void InvariantAuditor::on_drop(const sim::Drop& d) {
  ++report_.drops_audited;
  advance(d.sent);
  max_latency_seen_ =
      std::max(max_latency_seen_, d.would_arrive - d.sent + 1);
  charge_send(d.sent, d.tx);
}

const AuditReport& InvariantAuditor::finalize() {
  if (finalized_ || options_.window <= 0) {
    finalized_ = true;
    return report_;
  }
  finalized_ = true;

  for (const NodeKey x : options_.audited_nodes) {
    if (x < 0 || x >= topology_.size()) continue;
    const auto base = window_index(x, 0);
    const std::span<const Slot> row(arrival_.data() + base,
                                    static_cast<std::size_t>(options_.window));
    const bool complete = prefix_[static_cast<std::size_t>(x)] ==
                          options_.window;
    if (!complete) {
      if (options_.require_complete) {
        record({.kind = ViolationKind::kIncompleteWindow,
                .slot = cur_,
                .node = x,
                .expected = options_.window,
                .actual = prefix_[static_cast<std::size_t>(x)],
                .detail = "window incomplete at end of run"});
      }
      continue;  // delay/buffer undefined without the full window
    }

    Slot a = 0;
    for (PacketId j = 0; j < options_.window; ++j) {
      a = std::max(a, row[static_cast<std::size_t>(j)] - j);
    }
    if (options_.delay_bound >= 0 && a > options_.delay_bound) {
      record({.kind = ViolationKind::kDelayBound,
              .slot = a,
              .node = x,
              .expected = options_.delay_bound,
              .actual = a,
              .detail = "playback delay exceeds claimed bound"});
    }
    if (options_.buffer_bound >= 0) {
      const auto occ = static_cast<std::int64_t>(
          metrics::max_buffer_occupancy(row, a));
      // Recovery slack (see AuditOptions::gap_backlog_slack): packets that
      // piled up behind an open gap are covered by the playback delay the
      // same gap inflicted.
      std::int64_t allowed = options_.buffer_bound;
      if (options_.gap_backlog_slack) allowed += a;
      if (occ > allowed) {
        record({.kind = ViolationKind::kBufferBound,
                .slot = cur_,
                .node = x,
                .expected = allowed,
                .actual = occ,
                .detail = "max buffer occupancy exceeds claimed bound"});
      }
    }
  }
  return report_;
}

void InvariantAuditor::require_clean() {
  const AuditReport& r = finalize();
  if (!r.ok()) throw sim::ProtocolViolation(r.to_string());
}

}  // namespace streamcast::audit
