// Umbrella header: the full public API of the streamcast library.
//
// streamcast reproduces "On the Tradeoff Between Playback Delay and Buffer
// Space in Streaming" (Chow, Golubchik, Khuller, Yao; IPPS 2009): slot-
// synchronous streaming over interior-disjoint multi-tree forests (§2) and
// pipelined hypercube overlays (§3), with the cross-cluster super-tree
// composition (§2.1), churn maintenance (appendix), the NP-completeness
// apparatus for interior-disjoint trees on general graphs (appendix), and
// the baselines the paper argues against (§1).
//
// Entry points:
//   core::StreamingSession      — run a scheme, get a QoS report.
//   multitree::build_greedy / build_structured / MultiTreeProtocol
//   hypercube::decompose_chain / decompose_grouped / HypercubeProtocol
//   supertree::SuperTreeProtocol — multi-cluster composition.
//   multitree::ChurnForest      — dynamic membership.
//   graph::two_interior_disjoint_trees — exact solver + E4SS reduction.
#pragma once

#include "src/audit/auditor.hpp"             // IWYU pragma: export
#include "src/audit/injector.hpp"            // IWYU pragma: export
#include "src/audit/report.hpp"              // IWYU pragma: export
#include "src/baseline/chain.hpp"            // IWYU pragma: export
#include "src/baseline/single_tree.hpp"      // IWYU pragma: export
#include "src/core/config.hpp"               // IWYU pragma: export
#include "src/core/pipeline.hpp"              // IWYU pragma: export
#include "src/core/report.hpp"               // IWYU pragma: export
#include "src/core/session.hpp"              // IWYU pragma: export
#include "src/fluid/bounds.hpp"              // IWYU pragma: export
#include "src/graph/idt_heuristic.hpp"       // IWYU pragma: export
#include "src/graph/idt_solver.hpp"          // IWYU pragma: export
#include "src/graph/reduction.hpp"           // IWYU pragma: export
#include "src/graph/set_splitting.hpp"       // IWYU pragma: export
#include "src/graph/stream.hpp"              // IWYU pragma: export
#include "src/hypercube/analysis.hpp"        // IWYU pragma: export
#include "src/hypercube/dynamics.hpp"        // IWYU pragma: export
#include "src/hypercube/protocol.hpp"        // IWYU pragma: export
#include "src/hypercube/special.hpp"         // IWYU pragma: export
#include "src/metrics/buffers.hpp"           // IWYU pragma: export
#include "src/metrics/delay.hpp"             // IWYU pragma: export
#include "src/metrics/jitter.hpp"            // IWYU pragma: export
#include "src/metrics/neighbors.hpp"         // IWYU pragma: export
#include "src/metrics/summary.hpp"           // IWYU pragma: export
#include "src/multitree/analysis.hpp"        // IWYU pragma: export
#include "src/multitree/churn.hpp"           // IWYU pragma: export
#include "src/multitree/dynamic.hpp"         // IWYU pragma: export
#include "src/multitree/greedy.hpp"          // IWYU pragma: export
#include "src/multitree/protocol.hpp"        // IWYU pragma: export
#include "src/multitree/resilience.hpp"      // IWYU pragma: export
#include "src/multitree/schedule.hpp"        // IWYU pragma: export
#include "src/multitree/serialize.hpp"       // IWYU pragma: export
#include "src/multitree/structured.hpp"      // IWYU pragma: export
#include "src/multitree/validate.hpp"        // IWYU pragma: export
#include "src/net/buffer.hpp"                // IWYU pragma: export
#include "src/net/topology.hpp"              // IWYU pragma: export
#include "src/scale/recorder.hpp"            // IWYU pragma: export
#include "src/scale/replay.hpp"              // IWYU pragma: export
#include "src/scale/sketch.hpp"              // IWYU pragma: export
#include "src/scheme/registry.hpp"           // IWYU pragma: export
#include "src/sim/engine.hpp"                // IWYU pragma: export
#include "src/sim/trace.hpp"                 // IWYU pragma: export
#include "src/supertree/analysis.hpp"        // IWYU pragma: export
#include "src/supertree/protocol.hpp"        // IWYU pragma: export
#include "src/util/dot.hpp"                  // IWYU pragma: export
#include "src/workload/churn_trace.hpp"      // IWYU pragma: export
