#include "src/core/session.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <stdexcept>

#include "src/audit/auditor.hpp"
#include "src/baseline/chain.hpp"
#include "src/baseline/single_tree.hpp"
#include "src/hypercube/analysis.hpp"
#include "src/hypercube/protocol.hpp"
#include "src/loss/model.hpp"
#include "src/loss/recovery.hpp"
#include "src/metrics/buffers.hpp"
#include "src/metrics/continuity.hpp"
#include "src/metrics/delay.hpp"
#include "src/metrics/neighbors.hpp"
#include "src/multitree/analysis.hpp"
#include "src/multitree/greedy.hpp"
#include "src/multitree/structured.hpp"
#include "src/sim/engine.hpp"
#include "src/supertree/analysis.hpp"
#include "src/supertree/protocol.hpp"

namespace streamcast::core {

const char* scheme_name(Scheme s) {
  switch (s) {
    case Scheme::kMultiTreeStructured:
      return "multi-tree/structured";
    case Scheme::kMultiTreeGreedy:
      return "multi-tree/greedy";
    case Scheme::kHypercube:
      return "hypercube";
    case Scheme::kHypercubeGrouped:
      return "hypercube/grouped";
    case Scheme::kChain:
      return "chain";
    case Scheme::kSingleTree:
      return "single-tree";
  }
  return "?";
}

StreamingSession::StreamingSession(SessionConfig config)
    : config_(config) {
  if (config_.n < 1) throw std::invalid_argument("n < 1");
  if (config_.d < 1) throw std::invalid_argument("d < 1");
  if (config_.clusters < 1) throw std::invalid_argument("clusters < 1");
  if (config_.clusters > 1) {
    if (config_.scheme != Scheme::kMultiTreeGreedy &&
        config_.scheme != Scheme::kHypercube) {
      throw std::invalid_argument(
          "multi-cluster sessions support kMultiTreeGreedy or kHypercube");
    }
    if (config_.loss.model != loss::ErasureKind::kNone) {
      throw std::invalid_argument("lossy links require clusters == 1");
    }
  }
  if (config_.loss.fec_window < 1) throw std::invalid_argument("fec_window < 1");
  if (config_.loss.extra_send < 0 || config_.loss.extra_recv < 0) {
    throw std::invalid_argument("negative capacity headroom");
  }
}

namespace {

/// Cross-cluster run: the super-tree τ with the chosen intra scheme;
/// metrics aggregated over every cluster's receivers.
QosReport run_multicluster(const SessionConfig& config) {
  const NodeKey n = config.n;
  std::vector<net::ClusteredTopology::ClusterSpec> specs(
      static_cast<std::size_t>(config.clusters),
      net::ClusteredTopology::ClusterSpec{n});
  net::ClusteredTopology topo(specs, config.big_d, config.d, config.t_c);
  const supertree::IntraScheme intra =
      config.scheme == Scheme::kHypercube ? supertree::IntraScheme::kHypercube
                                          : supertree::IntraScheme::kMultiTree;
  supertree::SuperTreeProtocol proto(topo, intra);
  sim::Engine engine(topo, proto);

  const Slot bound =
      intra == supertree::IntraScheme::kHypercube
          ? supertree::structural_bound_hypercube(config.clusters,
                                                  config.big_d, config.t_c,
                                                  1, n)
          : supertree::structural_bound(config.clusters, config.big_d,
                                        config.t_c, 1, config.d, n);
  PacketId window = config.window;
  if (window == 0) window = 2 * (multitree::worst_delay_bound(n, config.d));
  metrics::DelayRecorder delays(topo.size(), window);
  metrics::NeighborRecorder neighbors(topo.size());
  engine.add_observer(delays);
  engine.add_observer(neighbors);
  std::optional<audit::InvariantAuditor> auditor;
  if (config.audit) {
    // Cross-cluster envelope: the structural bound covers the backbone hops
    // (T_c pacing is checked per delivery via the latency invariant) and
    // doubles as the buffer envelope — a receiver buffers at most its
    // playback delay's worth of the rate-1 stream. Only plain receivers are
    // window-audited; supers and local roots relay.
    audit::AuditOptions opts;
    opts.window = window;
    opts.delay_bound = bound;
    opts.buffer_bound = bound;
    opts.require_complete = true;
    for (int c = 0; c < config.clusters; ++c) {
      for (NodeKey x = 1; x <= n; ++x) {
        opts.audited_nodes.push_back(topo.receiver(c, x));
      }
    }
    auditor.emplace(topo, std::move(opts));
    engine.add_observer(*auditor);
  }
  engine.run_until(window + bound + 8);
  if (auditor) auditor->require_clean();

  QosReport report;
  report.scheme = std::string(scheme_name(config.scheme)) + " x" +
                  std::to_string(config.clusters) + " clusters";
  report.n = n * config.clusters;
  report.d = config.d;
  double delay_sum = 0;
  double buffer_sum = 0;
  double neighbor_sum = 0;
  NodeKey receivers = 0;
  for (int c = 0; c < config.clusters; ++c) {
    for (NodeKey x = 1; x <= n; ++x) {
      const NodeKey key = topo.receiver(c, x);
      const auto a = delays.playback_delay(key);
      if (!a) throw std::logic_error("receiver window incomplete");
      report.worst_delay = std::max(report.worst_delay, *a);
      delay_sum += static_cast<double>(*a);
      std::vector<Slot> row(static_cast<std::size_t>(window));
      for (PacketId j = 0; j < window; ++j) {
        row[static_cast<std::size_t>(j)] = delays.arrival(key, j);
      }
      const std::size_t occ = metrics::max_buffer_occupancy(row, *a);
      report.max_buffer = std::max(report.max_buffer, occ);
      buffer_sum += static_cast<double>(occ);
      report.max_neighbors =
          std::max(report.max_neighbors, neighbors.count(key));
      neighbor_sum += static_cast<double>(neighbors.count(key));
      ++receivers;
    }
  }
  report.average_delay = delay_sum / static_cast<double>(receivers);
  report.average_buffer = buffer_sum / static_cast<double>(receivers);
  report.average_neighbors = neighbor_sum / static_cast<double>(receivers);
  report.transmissions = engine.stats().transmissions;
  report.slots_simulated = engine.now();
  return report;
}

/// Scheme-specific pieces of a single-cluster run, assembled once and shared
/// by the reliable and lossy paths.
struct SchemePieces {
  std::unique_ptr<net::Topology> topology;
  std::unique_ptr<multitree::Forest> forest;  // kept alive for the protocol
  std::unique_ptr<sim::Protocol> protocol;
  PacketId window = 0;
  Slot slack = 4;  // horizon beyond window + worst delay
};

SchemePieces build_scheme(const SessionConfig& config) {
  const NodeKey n = config.n;
  const int d = config.d;
  SchemePieces p;
  p.window = config.window;

  switch (config.scheme) {
    case Scheme::kMultiTreeStructured:
    case Scheme::kMultiTreeGreedy: {
      p.forest = std::make_unique<multitree::Forest>(
          config.scheme == Scheme::kMultiTreeGreedy
              ? multitree::build_greedy(n, d)
              : multitree::build_structured(n, d));
      if (p.window == 0) p.window = 2 * d * (p.forest->height() + 2);
      p.topology = std::make_unique<net::UniformCluster>(n, d);
      auto proto = std::make_unique<multitree::MultiTreeProtocol>(*p.forest,
                                                                  config.mode);
      // On lossy links a forward must wait for the actual (possibly
      // repaired) receipt, so the replayed deterministic schedule is
      // unsound; keep the cursor pump, which advances only on delivery.
      if (config.loss.model != loss::ErasureKind::kNone) {
        proto->use_periodic_cache(false);
      }
      p.protocol = std::move(proto);
      p.slack += multitree::worst_delay_bound(n, d) + 3 * d;
      break;
    }
    case Scheme::kHypercube: {
      if (p.window == 0) p.window = 2 * hypercube::worst_delay(n) + 8;
      p.topology = std::make_unique<net::UniformCluster>(n, 1);
      p.protocol = std::make_unique<hypercube::HypercubeProtocol>(
          std::vector<std::vector<hypercube::Segment>>{
              hypercube::decompose_chain(n)});
      p.slack += hypercube::worst_delay(n);
      break;
    }
    case Scheme::kHypercubeGrouped: {
      if (p.window == 0) {
        p.window = 2 * hypercube::worst_delay_grouped(n, d) + 8;
      }
      p.topology = std::make_unique<net::UniformCluster>(n, d);
      std::vector<std::vector<hypercube::Segment>> chains;
      for (auto& g : hypercube::decompose_grouped(n, d)) {
        chains.push_back(std::move(g.chain));
      }
      p.protocol =
          std::make_unique<hypercube::HypercubeProtocol>(std::move(chains));
      p.slack += hypercube::worst_delay_grouped(n, d);
      break;
    }
    case Scheme::kChain: {
      if (p.window == 0) p.window = 8;
      p.topology = std::make_unique<net::UniformCluster>(n, 1);
      p.protocol = std::make_unique<baseline::ChainProtocol>(n);
      p.slack += n;
      break;
    }
    case Scheme::kSingleTree: {
      if (p.window == 0) p.window = 8;
      p.topology = std::make_unique<baseline::BoostedCluster>(n, d);
      p.protocol = std::make_unique<baseline::SingleTreeProtocol>(n, d);
      p.slack += baseline::single_tree_worst_delay(n, d) + 2;
      break;
    }
  }
  return p;
}

/// The scheme's claimed QoS envelopes (the bounds the paper proves; DESIGN.md
/// §7) packaged as auditor options. The audited run re-checks them
/// mechanically: Theorem 2's h*d delay/buffer for the multi-tree (live modes
/// shift the schedule by up to d slots), Propositions 1-2's O(1) buffers for
/// the hypercube schemes, and the closed forms for the baselines.
audit::AuditOptions audit_envelope(const SessionConfig& config,
                                   PacketId window) {
  audit::AuditOptions o;
  o.window = window;
  Slot delay = -1;
  std::int64_t buffer = -1;
  switch (config.scheme) {
    case Scheme::kMultiTreeStructured:
    case Scheme::kMultiTreeGreedy: {
      delay = multitree::worst_delay_bound(config.n, config.d);
      buffer = delay;
      if (config.mode != multitree::StreamMode::kPreRecorded) {
        delay += config.d;
        buffer += config.d;
      }
      break;
    }
    case Scheme::kHypercube:
      delay = hypercube::worst_delay(config.n);
      buffer = 3;  // Propositions 1-2: O(1), measured <= 3 on every grid
      break;
    case Scheme::kHypercubeGrouped:
      delay = hypercube::worst_delay_grouped(config.n, config.d);
      buffer = 3;
      break;
    case Scheme::kChain:
      delay = baseline::chain_worst_delay(config.n);
      buffer = 1;  // perfectly paced: play each packet the slot it arrives
      break;
    case Scheme::kSingleTree:
      delay = baseline::single_tree_worst_delay(config.n, config.d);
      buffer = delay;
      break;
  }
  const bool lossy = config.loss.model != loss::ErasureKind::kNone;
  o.buffer_bound = buffer;
  if (lossy) {
    // Repairs may legitimately exceed the deterministic delay bound; the
    // buffer check keeps running with gap-backlog slack, and window
    // completeness is accounted in LossSummary instead of violated.
    o.delay_bound = -1;
    o.gap_backlog_slack = true;
    o.require_complete = false;
  } else {
    o.delay_bound = delay;
    o.require_complete = true;
  }
  return o;
}

}  // namespace

QosReport StreamingSession::run() const {
  if (config_.clusters > 1) return run_multicluster(config_);
  if (config_.loss.model != loss::ErasureKind::kNone) {
    return run_lossy().qos;
  }
  const NodeKey n = config_.n;
  const int d = config_.d;

  SchemePieces pieces = build_scheme(config_);
  const PacketId window = pieces.window;
  const Slot slack = pieces.slack;

  // Simulate with all recorders attached.
  sim::Engine engine(*pieces.topology, *pieces.protocol);
  metrics::DelayRecorder delays(n + 1, window);
  metrics::NeighborRecorder neighbors(n + 1);
  engine.add_observer(delays);
  engine.add_observer(neighbors);
  std::optional<audit::InvariantAuditor> auditor;
  if (config_.audit) {
    auditor.emplace(*pieces.topology, audit_envelope(config_, window));
    engine.add_observer(*auditor);
  }
  engine.run_until(window + slack);
  if (auditor) auditor->require_clean();

  QosReport report;
  report.scheme = scheme_name(config_.scheme);
  report.n = n;
  report.d = d;
  report.worst_delay = delays.worst_delay(1, n);
  report.average_delay = delays.average_delay(1, n);
  const auto buffers = metrics::max_occupancies(delays, 1, n);
  std::size_t worst_buffer = 0;
  double buffer_sum = 0;
  for (const std::size_t b : buffers) {
    worst_buffer = std::max(worst_buffer, b);
    buffer_sum += static_cast<double>(b);
  }
  report.max_buffer = worst_buffer;
  report.average_buffer = buffer_sum / static_cast<double>(buffers.size());
  report.max_neighbors = neighbors.max_count(1, n);
  report.average_neighbors = neighbors.mean_count(1, n);
  report.transmissions = engine.stats().transmissions;
  report.slots_simulated = engine.now();
  return report;
}

LossRunResult StreamingSession::run_lossy() const {
  if (config_.clusters > 1) {
    throw std::invalid_argument("lossy runs require clusters == 1");
  }
  const NodeKey n = config_.n;
  const LossConfig& lc = config_.loss;

  SchemePieces pieces = build_scheme(config_);
  const PacketId window = pieces.window;

  // Headroom for repair traffic on top of the paper's exact provisioning;
  // unused while no packet is lost, so a kNone/zero-rate run is bit-identical
  // to the reliable engine (regression-tested).
  net::ProvisionedTopology topology(*pieces.topology, lc.extra_send,
                                    lc.extra_recv);
  std::unique_ptr<loss::LossModel> model =
      loss::make_model(lc.model, lc.rate, lc.ge, lc.seed);

  loss::RecoveryOptions opts;
  opts.mode = lc.recovery;
  opts.fec_window = lc.fec_window;
  // Every packet id flows over every link only in the newest-only
  // forwarders; elsewhere id jumps per link are part of the schedule.
  opts.dense_links = config_.scheme == Scheme::kChain ||
                     config_.scheme == Scheme::kSingleTree;
  // The hypercube's demand-driven exchanges stop offering a packet once its
  // consumption slot passes, so some gaps produce no failed transmission to
  // NACK: sweep them once they outlive any legitimate arrival skew (bounded
  // by the slack, which includes the scheme's worst-delay bound).
  if (config_.scheme == Scheme::kHypercube ||
      config_.scheme == Scheme::kHypercubeGrouped) {
    opts.gap_timeout = pieces.slack;
  }
  loss::RecoveryProtocol recovery(topology, *pieces.protocol, opts);

  sim::Engine engine(topology, recovery);
  engine.set_loss_model(model.get());
  engine.add_observer(recovery);  // drop reports + post-repair fan-out

  // The auditor watches the *physical* stream (pre-repair), against the
  // provisioned capacities: repair traffic must fit the headroom, collisions
  // and pacing must hold even mid-recovery. FEC-decoded packets never cross
  // a link, so nodes completed by decode alone are skipped by the window
  // checks (require_complete is off; the session accounts incompleteness in
  // LossSummary).
  std::optional<audit::InvariantAuditor> auditor;
  if (config_.audit) {
    auditor.emplace(topology, audit_envelope(config_, window));
    engine.add_observer(*auditor);
  }

  // Metrics observe the post-repair stream (repairs and FEC decodes count
  // as arrivals), so they attach to the recovery layer, not the engine.
  metrics::DelayRecorder delays(n + 1, window);
  metrics::NeighborRecorder neighbors(n + 1);
  metrics::ContinuityRecorder continuity(n + 1, window);
  recovery.add_observer(delays);
  recovery.add_observer(neighbors);
  recovery.add_observer(continuity);

  const Slot horizon = window + pieces.slack;
  engine.run_until(horizon);

  // Drain: keep simulating in small chunks until every receiver's gap-free
  // prefix covers the window, or the drain budget runs out.
  Slot drained = 0;
  while (!recovery.all_gap_free(1, n, window) && drained < lc.max_drain) {
    const Slot chunk = std::min<Slot>(32, lc.max_drain - drained);
    drained += chunk;
    engine.run_until(horizon + drained);
  }
  const Slot end = horizon + drained;
  if (auditor) auditor->require_clean();

  LossRunResult result;
  QosReport& report = result.qos;
  report.scheme = scheme_name(config_.scheme);
  report.n = n;
  report.d = config_.d;
  report.transmissions = engine.stats().transmissions;
  report.slots_simulated = end;
  report.drops = engine.stats().drops;
  report.retransmissions = engine.stats().retransmissions;

  // Aggregate delay/buffer over receivers that completed the window; count
  // the rest instead of throwing (a lossy run may legitimately time out).
  double delay_sum = 0;
  double buffer_sum = 0;
  NodeKey complete = 0;
  for (NodeKey x = 1; x <= n; ++x) {
    const auto a = delays.playback_delay(x);
    if (!a) {
      ++result.loss.incomplete_nodes;
      continue;
    }
    report.worst_delay = std::max(report.worst_delay, *a);
    delay_sum += static_cast<double>(*a);
    std::vector<Slot> row(static_cast<std::size_t>(window));
    for (PacketId j = 0; j < window; ++j) {
      row[static_cast<std::size_t>(j)] = delays.arrival(x, j);
    }
    const std::size_t occ = metrics::max_buffer_occupancy(row, *a);
    report.max_buffer = std::max(report.max_buffer, occ);
    buffer_sum += static_cast<double>(occ);
    ++complete;
  }
  if (complete > 0) {
    report.average_delay = delay_sum / static_cast<double>(complete);
    report.average_buffer = buffer_sum / static_cast<double>(complete);
  }
  report.max_neighbors = neighbors.max_count(1, n);
  report.average_neighbors = neighbors.mean_count(1, n);

  LossSummary& summary = result.loss;
  const loss::RecoveryStats& rs = recovery.stats();
  summary.drops = engine.stats().drops;
  summary.retransmissions = rs.retransmissions;
  summary.parity_transmissions = rs.parity_transmissions;
  summary.fec_decodes = rs.fec_decodes;
  summary.suppressed = rs.suppressed_causal + rs.suppressed_redundant;
  summary.nacks = rs.nacks;
  summary.redundancy_overhead = rs.redundancy_overhead();
  summary.all_gap_free = recovery.all_gap_free(1, n, window);
  summary.drain_slots = drained;

  const Slot playback_start =
      lc.playback_start >= 0 ? lc.playback_start : report.worst_delay;
  for (NodeKey x = 1; x <= n; ++x) {
    const auto cr = continuity.report(x, playback_start, end);
    summary.stalls = std::max(summary.stalls, cr.stalls);
    summary.stall_slots = std::max(summary.stall_slots, cr.stall_slots);
    summary.undecodable += cr.undecodable;
  }
  return result;
}

}  // namespace streamcast::core
