#include "src/core/session.hpp"

#include <memory>
#include <numeric>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "src/core/pipeline.hpp"
#include "src/core/shard.hpp"
#include "src/loss/model.hpp"
#include "src/loss/recovery.hpp"
#include "src/policy/registry.hpp"
#include "src/scale/replay.hpp"
#include "src/scheme/registry.hpp"

namespace streamcast::core {

StreamingSession::StreamingSession(SessionConfig config)
    : config_(config) {
  if (config_.n < 1) throw std::invalid_argument("n < 1");
  if (config_.d < 1) throw std::invalid_argument("d < 1");
  if (config_.clusters < 1) throw std::invalid_argument("clusters < 1");
  if (config_.shards < 1) throw std::invalid_argument("shards < 1");
  if (config_.clusters > 1) {
    if (!scheme::descriptor(config_.scheme).caps.multicluster) {
      throw std::invalid_argument(
          "multi-cluster sessions support kMultiTreeGreedy or kHypercube");
    }
    if (config_.loss.model != loss::ErasureKind::kNone) {
      throw std::invalid_argument("lossy links require clusters == 1");
    }
  }
  if (config_.loss.model != loss::ErasureKind::kNone &&
      !scheme::descriptor(config_.scheme).caps.lossy_links) {
    throw std::invalid_argument("scheme does not support lossy links");
  }
  if (config_.loss.fec_window < 1) throw std::invalid_argument("fec_window < 1");
  if (config_.loss.extra_send < 0 || config_.loss.extra_recv < 0) {
    throw std::invalid_argument("negative capacity headroom");
  }
  if (config_.loss.code.decode_delay < 1 || config_.loss.code.burst < 1) {
    throw std::invalid_argument("streaming-code parameters must be >= 1");
  }
  // Both policy names resolve through the registries (throwing on unknown
  // names), and the scheme x recovery combination is validated against the
  // capability flags — never by switching on the policy name.
  const policy::RecoveryPolicyDescriptor& rd = policy::recovery_policy(
      config_.loss.recovery_policy.empty()
          ? std::string_view(policy::recovery_policy_name(config_.loss.recovery))
          : std::string_view(config_.loss.recovery_policy));
  if (rd.caps.bounded_recovery &&
      !scheme::descriptor(config_.scheme).caps.bounded_recovery_policies) {
    throw std::invalid_argument(
        "delay-bounded recovery needs link-visible losses; demand-driven "
        "schemes produce silent gaps it cannot close");
  }
  policy::startup_policy(config_.startup.policy);
}

namespace {

/// Receivers 1..n of a single cluster, in key order.
std::vector<NodeKey> cluster_receivers(NodeKey n) {
  std::vector<NodeKey> keys(static_cast<std::size_t>(n));
  std::iota(keys.begin(), keys.end(), NodeKey{1});
  return keys;
}

/// Cross-cluster run: the super-tree τ with the registry's intra scheme,
/// executed by the sharded runner (config.shards == 1 is the serial pump;
/// any shard count produces byte-identical output — DESIGN.md §14). The
/// session always streams pre-recorded data across clusters, exactly as the
/// historical serial path did.
QosReport run_multicluster(const SessionConfig& config) {
  ShardOptions opts;
  opts.shards = config.shards;
  return run_multicluster_sharded(config, opts);
}

/// Reliable single-cluster run through the pipeline. `summary`, when given,
/// receives the sketched distributions (any recorder stack). `startup`, when
/// given, additionally attaches a continuity recorder and folds the startup
/// summary into `startup_out` (run_startup's lossless path).
QosReport run_reliable(const SessionConfig& config, scale::ScaleSummary* summary,
                       const policy::StartupPolicy* startup = nullptr,
                       StartupSummary* startup_out = nullptr) {
  const NodeKey n = config.n;

  scheme::Overlay overlay = scheme::descriptor(config.scheme).build(config);

  ObserverSpec spec;
  spec.window = overlay.window;
  spec.node_span = n + 1;
  spec.continuity = startup != nullptr;
  spec.audit = config.audit;
  if (config.audit) {
    spec.audit_options = scheme::audit_envelope(config, overlay.window);
  }
  spec.scale = config.scale;

  RunPipeline pipeline(*overlay.topology, *overlay.protocol, spec);
  pipeline.run(overlay.window + overlay.slack);
  QosReport report = pipeline.aggregate({.label = scheme_label(config.scheme),
                                         .report_n = n,
                                         .d = config.d,
                                         .receivers = cluster_receivers(n)},
                                        nullptr, summary);
  if (startup != nullptr && startup_out != nullptr) {
    *startup_out = pipeline.startup_summary(
        *startup, config.loss.playback_start, 1, n, report.worst_delay);
  }
  return report;
}

/// Closed-form schedule replay (DESIGN.md §11): the QosReport the pipeline
/// would have produced, without simulating a single slot.
QosReport replay_report(const SessionConfig& config,
                        scale::ScaleSummary* summary) {
  scale::ReplayConfig rc;
  rc.n = config.n;
  rc.d = config.d;
  rc.prebuffered = config.mode == multitree::StreamMode::kLivePrebuffered;
  rc.window = config.window;
  const scale::ReplayReport rr = scale::replay_structured(rc, config.scale);
  QosReport report;
  report.scheme = scheme_label(config.scheme);
  report.n = config.n;
  report.d = config.d;
  report.worst_delay = rr.worst_delay;
  report.average_delay = rr.average_delay;
  report.max_buffer = rr.max_buffer;
  report.average_buffer = rr.average_buffer;
  report.max_neighbors = rr.max_neighbors;
  report.average_neighbors = rr.average_neighbors;
  report.transmissions = rr.transmissions;
  report.slots_simulated = rr.horizon;
  if (summary != nullptr) *summary = rr.summary;
  return report;
}

}  // namespace

bool StreamingSession::replay_eligible(const SessionConfig& config) {
  if (config.clusters > 1) return false;
  if (config.loss.model != loss::ErasureKind::kNone) return false;
  if (config.audit) return false;
  if (!config.scale.allow_replay) return false;
  if (!scheme::descriptor(config.scheme).caps.closed_form_replay) return false;
  if (config.mode == multitree::StreamMode::kLivePipelined) return false;
  if (config.window > 0 && config.window < config.d) return false;
  // Adaptive startup decides from the run's own observations (first
  // arrivals, loss fraction, replay probes); the closed form has none.
  if (policy::startup_policy(config.startup.policy).caps.adaptive) {
    return false;
  }
  return true;
}

QosReport StreamingSession::run() const {
  if (config_.clusters > 1) return run_multicluster(config_);
  if (config_.loss.model != loss::ErasureKind::kNone) {
    return run_lossy().qos;
  }
  if (config_.scale.replay_threshold > 0 &&
      config_.n >= config_.scale.replay_threshold &&
      replay_eligible(config_)) {
    return replay_report(config_, nullptr);
  }
  return run_reliable(config_, nullptr);
}

ScaleRunResult StreamingSession::run_scale() const {
  if (config_.clusters > 1 || config_.loss.model != loss::ErasureKind::kNone) {
    throw std::invalid_argument(
        "run_scale requires a reliable single-cluster run");
  }
  ScaleRunResult result;
  if (config_.scale.replay_threshold > 0 &&
      config_.n >= config_.scale.replay_threshold &&
      replay_eligible(config_)) {
    result.qos = replay_report(config_, &result.summary);
  } else {
    result.qos = run_reliable(config_, &result.summary);
  }
  return result;
}

LossRunResult StreamingSession::run_lossy() const {
  if (config_.clusters > 1) {
    throw std::invalid_argument("lossy runs require clusters == 1");
  }
  const NodeKey n = config_.n;
  const LossConfig& lc = config_.loss;
  const scheme::Descriptor& desc = scheme::descriptor(config_.scheme);

  scheme::Overlay overlay = desc.build(config_);

  // Headroom for repair traffic on top of the paper's exact provisioning;
  // unused while no packet is lost, so a kNone/zero-rate run is bit-identical
  // to the reliable engine (regression-tested).
  net::ProvisionedTopology topology(*overlay.topology, lc.extra_send,
                                    lc.extra_recv);
  std::unique_ptr<loss::LossModel> model =
      loss::make_model(lc.model, lc.rate, lc.ge, lc.seed);

  loss::RecoveryOptions opts;
  opts.mode = lc.recovery;
  opts.policy = lc.recovery_policy;
  opts.fec_window = lc.fec_window;
  opts.code = lc.code;
  // Every packet id flows over every link only in the newest-only
  // forwarders; elsewhere id jumps per link are part of the schedule.
  opts.dense_links = desc.caps.dense_links;
  // Demand-driven exchanges stop offering a packet once its consumption
  // slot passes, so some gaps produce no failed transmission to NACK: sweep
  // them once they outlive any legitimate arrival skew (bounded by the
  // slack, which includes the scheme's worst-delay bound).
  if (desc.caps.demand_driven) {
    opts.gap_timeout = overlay.slack;
  }
  loss::RecoveryProtocol recovery(topology, *overlay.protocol, opts);

  // The auditor watches the *physical* stream (pre-repair), against the
  // provisioned capacities: repair traffic must fit the headroom, collisions
  // and pacing must hold even mid-recovery. FEC-decoded packets never cross
  // a link, so nodes completed by decode alone are skipped by the window
  // checks (require_complete is off; the session accounts incompleteness in
  // LossSummary).
  ObserverSpec spec;
  spec.window = overlay.window;
  spec.node_span = n + 1;
  spec.continuity = true;
  spec.audit = config_.audit;
  if (config_.audit) {
    spec.audit_options = scheme::audit_envelope(config_, overlay.window);
  }
  spec.scale = config_.scale;

  RunPipeline pipeline(topology, recovery, spec, model.get(), &recovery);
  pipeline.run(overlay.window + overlay.slack,
               {.from = 1, .to = n, .max_drain = lc.max_drain});

  // Aggregate delay/buffer over receivers that completed the window; count
  // the rest instead of throwing (a lossy run may legitimately time out).
  LossRunResult result;
  NodeKey incomplete = 0;
  result.qos = pipeline.aggregate({.label = scheme_label(config_.scheme),
                                   .report_n = n,
                                   .d = config_.d,
                                   .receivers = cluster_receivers(n),
                                   .skip_incomplete = true},
                                  &incomplete);
  const std::unique_ptr<policy::StartupPolicy> startup =
      policy::startup_policy(config_.startup.policy).make(config_.startup);
  result.loss = pipeline.loss_summary(lc, *startup, 1, n,
                                      result.qos.worst_delay, &result.startup);
  result.loss.incomplete_nodes = incomplete;
  return result;
}

StartupRunResult StreamingSession::run_startup() const {
  if (config_.clusters > 1) {
    throw std::invalid_argument("run_startup requires clusters == 1");
  }
  StartupRunResult result;
  if (config_.loss.model != loss::ErasureKind::kNone) {
    LossRunResult lossy = run_lossy();
    result.qos = lossy.qos;
    result.loss = lossy.loss;
    result.startup = lossy.startup;
    return result;
  }
  const std::unique_ptr<policy::StartupPolicy> startup =
      policy::startup_policy(config_.startup.policy).make(config_.startup);
  result.qos = run_reliable(config_, nullptr, startup.get(), &result.startup);
  return result;
}

}  // namespace streamcast::core
