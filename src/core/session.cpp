#include "src/core/session.hpp"

#include <memory>
#include <stdexcept>

#include "src/baseline/chain.hpp"
#include "src/baseline/single_tree.hpp"
#include "src/hypercube/analysis.hpp"
#include "src/hypercube/protocol.hpp"
#include "src/metrics/buffers.hpp"
#include "src/metrics/delay.hpp"
#include "src/metrics/neighbors.hpp"
#include "src/multitree/analysis.hpp"
#include "src/multitree/greedy.hpp"
#include "src/multitree/structured.hpp"
#include "src/sim/engine.hpp"
#include "src/supertree/analysis.hpp"
#include "src/supertree/protocol.hpp"

namespace streamcast::core {

const char* scheme_name(Scheme s) {
  switch (s) {
    case Scheme::kMultiTreeStructured:
      return "multi-tree/structured";
    case Scheme::kMultiTreeGreedy:
      return "multi-tree/greedy";
    case Scheme::kHypercube:
      return "hypercube";
    case Scheme::kHypercubeGrouped:
      return "hypercube/grouped";
    case Scheme::kChain:
      return "chain";
    case Scheme::kSingleTree:
      return "single-tree";
  }
  return "?";
}

StreamingSession::StreamingSession(SessionConfig config)
    : config_(config) {
  if (config_.n < 1) throw std::invalid_argument("n < 1");
  if (config_.d < 1) throw std::invalid_argument("d < 1");
  if (config_.clusters < 1) throw std::invalid_argument("clusters < 1");
  if (config_.clusters > 1) {
    if (config_.scheme != Scheme::kMultiTreeGreedy &&
        config_.scheme != Scheme::kHypercube) {
      throw std::invalid_argument(
          "multi-cluster sessions support kMultiTreeGreedy or kHypercube");
    }
  }
}

namespace {

/// Cross-cluster run: the super-tree τ with the chosen intra scheme;
/// metrics aggregated over every cluster's receivers.
QosReport run_multicluster(const SessionConfig& config) {
  const NodeKey n = config.n;
  std::vector<net::ClusteredTopology::ClusterSpec> specs(
      static_cast<std::size_t>(config.clusters),
      net::ClusteredTopology::ClusterSpec{n});
  net::ClusteredTopology topo(specs, config.big_d, config.d, config.t_c);
  const supertree::IntraScheme intra =
      config.scheme == Scheme::kHypercube ? supertree::IntraScheme::kHypercube
                                          : supertree::IntraScheme::kMultiTree;
  supertree::SuperTreeProtocol proto(topo, intra);
  sim::Engine engine(topo, proto);

  const Slot bound =
      intra == supertree::IntraScheme::kHypercube
          ? supertree::structural_bound_hypercube(config.clusters,
                                                  config.big_d, config.t_c,
                                                  1, n)
          : supertree::structural_bound(config.clusters, config.big_d,
                                        config.t_c, 1, config.d, n);
  PacketId window = config.window;
  if (window == 0) window = 2 * (multitree::worst_delay_bound(n, config.d));
  metrics::DelayRecorder delays(topo.size(), window);
  metrics::NeighborRecorder neighbors(topo.size());
  engine.add_observer(delays);
  engine.add_observer(neighbors);
  engine.run_until(window + bound + 8);

  QosReport report;
  report.scheme = std::string(scheme_name(config.scheme)) + " x" +
                  std::to_string(config.clusters) + " clusters";
  report.n = n * config.clusters;
  report.d = config.d;
  double delay_sum = 0;
  double buffer_sum = 0;
  double neighbor_sum = 0;
  NodeKey receivers = 0;
  for (int c = 0; c < config.clusters; ++c) {
    for (NodeKey x = 1; x <= n; ++x) {
      const NodeKey key = topo.receiver(c, x);
      const auto a = delays.playback_delay(key);
      if (!a) throw std::logic_error("receiver window incomplete");
      report.worst_delay = std::max(report.worst_delay, *a);
      delay_sum += static_cast<double>(*a);
      std::vector<Slot> row(static_cast<std::size_t>(window));
      for (PacketId j = 0; j < window; ++j) {
        row[static_cast<std::size_t>(j)] = delays.arrival(key, j);
      }
      const std::size_t occ = metrics::max_buffer_occupancy(row, *a);
      report.max_buffer = std::max(report.max_buffer, occ);
      buffer_sum += static_cast<double>(occ);
      report.max_neighbors =
          std::max(report.max_neighbors, neighbors.count(key));
      neighbor_sum += static_cast<double>(neighbors.count(key));
      ++receivers;
    }
  }
  report.average_delay = delay_sum / static_cast<double>(receivers);
  report.average_buffer = buffer_sum / static_cast<double>(receivers);
  report.average_neighbors = neighbor_sum / static_cast<double>(receivers);
  report.transmissions = engine.stats().transmissions;
  return report;
}

}  // namespace

QosReport StreamingSession::run() const {
  if (config_.clusters > 1) return run_multicluster(config_);
  const NodeKey n = config_.n;
  const int d = config_.d;

  // Assemble scheme-specific pieces.
  std::unique_ptr<net::Topology> topology;
  std::unique_ptr<sim::Protocol> protocol;
  std::unique_ptr<multitree::Forest> forest;  // kept alive for the protocol
  PacketId window = config_.window;
  Slot slack = 4;  // horizon beyond window + worst delay

  switch (config_.scheme) {
    case Scheme::kMultiTreeStructured:
    case Scheme::kMultiTreeGreedy: {
      forest = std::make_unique<multitree::Forest>(
          config_.scheme == Scheme::kMultiTreeGreedy
              ? multitree::build_greedy(n, d)
              : multitree::build_structured(n, d));
      if (window == 0) window = 2 * d * (forest->height() + 2);
      topology = std::make_unique<net::UniformCluster>(n, d);
      protocol =
          std::make_unique<multitree::MultiTreeProtocol>(*forest,
                                                         config_.mode);
      slack += multitree::worst_delay_bound(n, d) + 3 * d;
      break;
    }
    case Scheme::kHypercube: {
      if (window == 0) window = 2 * hypercube::worst_delay(n) + 8;
      topology = std::make_unique<net::UniformCluster>(n, 1);
      protocol = std::make_unique<hypercube::HypercubeProtocol>(
          std::vector<std::vector<hypercube::Segment>>{
              hypercube::decompose_chain(n)});
      slack += hypercube::worst_delay(n);
      break;
    }
    case Scheme::kHypercubeGrouped: {
      if (window == 0) window = 2 * hypercube::worst_delay_grouped(n, d) + 8;
      topology = std::make_unique<net::UniformCluster>(n, d);
      std::vector<std::vector<hypercube::Segment>> chains;
      for (auto& g : hypercube::decompose_grouped(n, d)) {
        chains.push_back(std::move(g.chain));
      }
      protocol =
          std::make_unique<hypercube::HypercubeProtocol>(std::move(chains));
      slack += hypercube::worst_delay_grouped(n, d);
      break;
    }
    case Scheme::kChain: {
      if (window == 0) window = 8;
      topology = std::make_unique<net::UniformCluster>(n, 1);
      protocol = std::make_unique<baseline::ChainProtocol>(n);
      slack += n;
      break;
    }
    case Scheme::kSingleTree: {
      if (window == 0) window = 8;
      topology = std::make_unique<baseline::BoostedCluster>(n, d);
      protocol = std::make_unique<baseline::SingleTreeProtocol>(n, d);
      slack += baseline::single_tree_worst_delay(n, d) + 2;
      break;
    }
  }

  // Simulate with all recorders attached.
  sim::Engine engine(*topology, *protocol);
  metrics::DelayRecorder delays(n + 1, window);
  metrics::NeighborRecorder neighbors(n + 1);
  engine.add_observer(delays);
  engine.add_observer(neighbors);
  engine.run_until(window + slack);

  QosReport report;
  report.scheme = scheme_name(config_.scheme);
  report.n = n;
  report.d = d;
  report.worst_delay = delays.worst_delay(1, n);
  report.average_delay = delays.average_delay(1, n);
  const auto buffers = metrics::max_occupancies(delays, 1, n);
  std::size_t worst_buffer = 0;
  double buffer_sum = 0;
  for (const std::size_t b : buffers) {
    worst_buffer = std::max(worst_buffer, b);
    buffer_sum += static_cast<double>(b);
  }
  report.max_buffer = worst_buffer;
  report.average_buffer = buffer_sum / static_cast<double>(buffers.size());
  report.max_neighbors = neighbors.max_count(1, n);
  report.average_neighbors = neighbors.mean_count(1, n);
  report.transmissions = engine.stats().transmissions;
  return report;
}

}  // namespace streamcast::core
