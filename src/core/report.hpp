// QoS report of a simulated session: the quantities Table 1 of the paper
// compares (playback delay, buffer space, number of neighbors).
#pragma once

#include <iosfwd>
#include <string>

#include "src/sim/packet.hpp"

namespace streamcast::core {

struct QosReport {
  std::string scheme;
  sim::NodeKey n = 0;
  int d = 0;
  sim::Slot worst_delay = 0;
  double average_delay = 0;
  std::size_t max_buffer = 0;
  double average_buffer = 0;
  std::size_t max_neighbors = 0;
  double average_neighbors = 0;
  std::int64_t transmissions = 0;
  /// Slots the engine simulated to produce this report (horizon + drain);
  /// the perf harness derives slots/sec from it.
  sim::Slot slots_simulated = 0;
  /// Lossy-run health (zero on reliable links): transmissions erased by the
  /// link loss model, and NACK repair retransmissions.
  std::int64_t drops = 0;
  std::int64_t retransmissions = 0;

  /// One-line rendering used by examples.
  std::string summary() const;
};

std::ostream& operator<<(std::ostream& os, const QosReport& r);

/// Loss-subsystem outcome of a lossy run, alongside the usual QosReport.
struct LossSummary {
  std::int64_t drops = 0;
  std::int64_t retransmissions = 0;
  std::int64_t parity_transmissions = 0;
  std::int64_t fec_decodes = 0;
  std::int64_t suppressed = 0;
  std::int64_t nacks = 0;
  /// (retransmissions + parity) / data transmissions.
  double redundancy_overhead = 0;
  /// Every receiver holds the gap-free prefix [0, window) at the end.
  bool all_gap_free = false;
  /// Worst per-receiver stall count / stalled slots when playback starts at
  /// LossConfig::playback_start (continuity metrics).
  int stalls = 0;
  sim::Slot stall_slots = 0;
  /// Window packets (summed over receivers) never delivered by the horizon.
  sim::PacketId undecodable = 0;
  /// Extra slots simulated past the reliable horizon to let repairs land.
  sim::Slot drain_slots = 0;
  /// Receivers whose measurement window stayed incomplete (excluded from
  /// the delay/buffer aggregates).
  sim::NodeKey incomplete_nodes = 0;
  /// Streaming-code channel health (zero under other policies): longest
  /// per-link erasure run, guard-space collisions, and data uses declared
  /// unrecoverable. Not part of serialize() — the golden byte contract
  /// predates the policy layer.
  std::int64_t max_erasure_run = 0;
  std::int64_t guard_collisions = 0;
  std::int64_t unrecoverable = 0;
};

/// Per-run outcome of the startup policy (DESIGN.md §15): where playback
/// started across receivers and how smooth it was from there.
struct StartupSummary {
  std::string policy;
  sim::Slot max_start = 0;
  double average_start = 0;
  sim::Slot earliest_start = 0;
  /// Worst per-receiver stall count / stalled slots from the chosen
  /// starts.
  int stalls = 0;
  sim::Slot stall_slots = 0;
  /// Window packets (summed over receivers) never delivered by the
  /// horizon.
  sim::PacketId undecodable = 0;
  /// Latest slot any receiver finished playback.
  sim::Slot max_finish = 0;
};

struct LossRunResult {
  QosReport qos;
  LossSummary loss;
  StartupSummary startup;
};

/// Startup-policy run outcome (StreamingSession::run_startup): the usual
/// QoS report plus the startup fold; `loss` is meaningful only when the
/// run was lossy.
struct StartupRunResult {
  QosReport qos;
  LossSummary loss;
  StartupSummary startup;
};

/// Canonical byte-exact rendering of every report field (doubles at 17
/// significant digits), used by the golden parity suite and available for
/// diffing runs. One line for a QosReport, a second "loss ..." line for a
/// LossRunResult.
std::string serialize(const QosReport& r);
std::string serialize(const LossRunResult& r);
std::string serialize(const StartupSummary& s);

}  // namespace streamcast::core
