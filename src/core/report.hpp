// QoS report of a simulated session: the quantities Table 1 of the paper
// compares (playback delay, buffer space, number of neighbors).
#pragma once

#include <iosfwd>
#include <string>

#include "src/sim/packet.hpp"

namespace streamcast::core {

struct QosReport {
  std::string scheme;
  sim::NodeKey n = 0;
  int d = 0;
  sim::Slot worst_delay = 0;
  double average_delay = 0;
  std::size_t max_buffer = 0;
  double average_buffer = 0;
  std::size_t max_neighbors = 0;
  double average_neighbors = 0;
  std::int64_t transmissions = 0;
  /// Slots the engine simulated to produce this report (horizon + drain);
  /// the perf harness derives slots/sec from it.
  sim::Slot slots_simulated = 0;
  /// Lossy-run health (zero on reliable links): transmissions erased by the
  /// link loss model, and NACK repair retransmissions.
  std::int64_t drops = 0;
  std::int64_t retransmissions = 0;

  /// One-line rendering used by examples.
  std::string summary() const;
};

std::ostream& operator<<(std::ostream& os, const QosReport& r);

}  // namespace streamcast::core
