#include "src/core/pipeline.hpp"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <stdexcept>

#include "src/metrics/buffers.hpp"
#include "src/policy/registry.hpp"
#include "src/scale/sketch.hpp"

namespace streamcast::core {

namespace {

/// The O(node_span) footprint of the exact recorder family, charged before
/// construction so even the exact stack fails fast instead of OOM-ing.
/// Neighbor sets are charged at their container-header size only — their
/// element count is degree-bounded, not node-bounded.
std::size_t exact_stack_bytes(const ObserverSpec& spec) {
  const auto span = static_cast<std::size_t>(spec.node_span);
  const auto window = static_cast<std::size_t>(spec.window);
  std::size_t bytes = span * window * sizeof(Slot) +  // delay arrivals
                      span * sizeof(PacketId);        // delay missing counts
  bytes += span * sizeof(std::set<NodeKey>);          // neighbor set headers
  if (spec.continuity) {
    bytes += span * window * sizeof(Slot) +  // continuity arrivals
             span * 3 * sizeof(std::int64_t);
  }
  return bytes;
}

}  // namespace

ObserverStack::ObserverStack(const net::Topology& topology,
                             const ObserverSpec& spec,
                             util::BudgetLedger* ledger)
    : trace_(spec.trace) {
  // Continuity runs keep the exact family: the stall metrics need the
  // per-packet minimum-arrival semantics the scale encoding does not keep.
  const bool scaled =
      !spec.continuity &&
      (spec.force_scale || (spec.scale.sketch_threshold > 0 &&
                            spec.node_span >= spec.scale.sketch_threshold));
  if (scaled) {
    scale_delays_.emplace(spec.node_span, spec.window, ledger);
    scale_neighbors_.emplace(spec.node_span, spec.scale.neighbor_cap, ledger);
  } else {
    if (ledger != nullptr) {
      ledger->charge("core/exact-recorders", exact_stack_bytes(spec));
    }
    delays_.emplace(spec.node_span, spec.window);
    neighbors_.emplace(spec.node_span);
    if (spec.continuity) continuity_.emplace(spec.node_span, spec.window);
  }
  if (spec.audit) auditor_.emplace(topology, spec.audit_options);
}

void ObserverStack::attach(sim::Engine& engine,
                           loss::RecoveryProtocol* recovery) {
  sim::DeliveryObserver* delay_obs =
      scaled() ? static_cast<sim::DeliveryObserver*>(&*scale_delays_)
               : static_cast<sim::DeliveryObserver*>(&*delays_);
  sim::DeliveryObserver* neighbor_obs =
      scaled() ? static_cast<sim::DeliveryObserver*>(&*scale_neighbors_)
               : static_cast<sim::DeliveryObserver*>(&*neighbors_);
  if (recovery == nullptr) {
    engine.add_observer(*delay_obs);
    engine.add_observer(*neighbor_obs);
    // Reliable startup runs: the continuity recorder watches the engine
    // directly (there is no recovery layer to observe). Historical lossless
    // paths never request continuity, so their wiring is unchanged.
    if (continuity_) engine.add_observer(*continuity_);
  }
  if (auditor_) engine.add_observer(*auditor_);
  if (recovery != nullptr) {
    // Metrics observe the post-repair stream (repairs and FEC decodes count
    // as arrivals), so they attach to the recovery layer, not the engine.
    recovery->add_observer(*delay_obs);
    recovery->add_observer(*neighbor_obs);
    if (continuity_) recovery->add_observer(*continuity_);
  }
  if (trace_ != nullptr) engine.add_observer(*trace_);
}

void ObserverStack::require_clean() {
  if (auditor_) auditor_->require_clean();
}

RunPipeline::RunPipeline(net::Topology& topology, sim::Protocol& protocol,
                         const ObserverSpec& observers,
                         loss::LossModel* loss_model,
                         loss::RecoveryProtocol* recovery)
    : ledger_(util::MemoryBudget{observers.scale.budget_bytes}),
      scale_options_(observers.scale),
      engine_(topology, protocol,
              sim::EngineOptions{.packet_window_hint = observers.window,
                                 .budget = &ledger_}),
      observers_(topology, observers, &ledger_),
      recovery_(recovery),
      window_(observers.window) {
  if (loss_model != nullptr) engine_.set_loss_model(loss_model);
  // The recovery layer observes the engine for drop reports and post-repair
  // fan-out, ahead of the auditor in the observer order.
  if (recovery_ != nullptr) engine_.add_observer(*recovery_);
  observers_.attach(engine_, recovery_);
}

void RunPipeline::run(Slot horizon, DrainPolicy drain) {
  engine_.run_until(horizon);
  if (recovery_ != nullptr && drain.max_drain > 0) {
    // Drain: keep simulating in small chunks until every window packet at
    // every receiver has a decided fate — arrived, or abandoned by a
    // delay-bounded policy that declared it unrecoverable — or the drain
    // budget runs out. Legacy policies never abandon, so for them the
    // predicate degenerates to all_gap_free and the drain behavior is
    // byte-identical to the historical loop.
    while (!recovery_->gaps_resolved(drain.from, drain.to, window_) &&
           drained_ < drain.max_drain) {
      const Slot chunk = std::min<Slot>(32, drain.max_drain - drained_);
      drained_ += chunk;
      engine_.run_until(horizon + drained_);
    }
  }
  end_ = horizon + drained_;
  observers_.require_clean();
}

QosReport aggregate_qos(const Aggregation& agg, const AggregateInputs& in,
                        NodeKey* incomplete, scale::ScaleSummary* summary) {
  QosReport report;
  report.scheme = agg.label;
  report.n = agg.report_n;
  report.d = agg.d;
  report.transmissions = in.stats.transmissions;
  report.slots_simulated = in.end;
  report.drops = in.stats.drops;
  report.retransmissions = in.stats.retransmissions;

  std::optional<scale::DistributionSketch> delay_sketch;
  std::optional<scale::DistributionSketch> buffer_sketch;
  if (summary != nullptr) {
    delay_sketch.emplace(in.scale.epsilon);
    buffer_sketch.emplace(in.scale.epsilon);
  }

  double delay_sum = 0;
  double buffer_sum = 0;
  NodeKey complete = 0;
  std::vector<Slot> row;
  for (const NodeKey key : agg.receivers) {
    const ObserverStack& stack = in.stack_of(key);
    const bool scaled = stack.scaled();
    const auto a = scaled ? stack.scale_delays().playback_delay(key)
                          : stack.delays().playback_delay(key);
    if (!a) {
      if (!agg.skip_incomplete) {
        throw std::logic_error("receiver window incomplete");
      }
      if (incomplete != nullptr) ++*incomplete;
      continue;
    }
    report.worst_delay = std::max(report.worst_delay, *a);
    delay_sum += static_cast<double>(*a);
    if (scaled) {
      stack.scale_delays().arrivals(key, row);
    } else {
      row.resize(static_cast<std::size_t>(in.window));
      for (PacketId j = 0; j < in.window; ++j) {
        row[static_cast<std::size_t>(j)] = stack.delays().arrival(key, j);
      }
    }
    const std::size_t occ = metrics::max_buffer_occupancy(row, *a);
    report.max_buffer = std::max(report.max_buffer, occ);
    buffer_sum += static_cast<double>(occ);
    ++complete;
    if (delay_sketch) {
      delay_sketch->add(*a);
      buffer_sketch->add(static_cast<std::int64_t>(occ));
    }
  }
  if (complete > 0) {
    report.average_delay = delay_sum / static_cast<double>(complete);
    report.average_buffer = buffer_sum / static_cast<double>(complete);
  }

  // Neighbor counts cover every receiver, complete window or not: partners
  // were observed either way.
  double neighbor_sum = 0;
  for (const NodeKey key : agg.receivers) {
    const ObserverStack& stack = in.stack_of(key);
    const std::size_t count = stack.scaled()
                                  ? stack.scale_neighbors().count(key)
                                             : stack.neighbors().count(key);
    report.max_neighbors = std::max(report.max_neighbors, count);
    neighbor_sum += static_cast<double>(count);
  }
  if (!agg.receivers.empty()) {
    report.average_neighbors =
        neighbor_sum / static_cast<double>(agg.receivers.size());
  }

  if (summary != nullptr) {
    summary->nodes = agg.report_n;
    summary->epsilon = in.scale.epsilon;
    summary->replayed = false;
    summary->budget_bytes = in.ledger != nullptr ? in.ledger->limit() : 0;
    summary->bytes_peak = in.ledger != nullptr ? in.ledger->peak() : 0;
    summary->delay = delay_sketch->summarize();
    summary->buffer = buffer_sketch->summarize();
  }
  return report;
}

QosReport RunPipeline::aggregate(const Aggregation& agg, NodeKey* incomplete,
                                 scale::ScaleSummary* summary) const {
  AggregateInputs in;
  in.stack_of = [this](NodeKey) -> const ObserverStack& { return observers_; };
  in.stats = engine_.stats();
  in.end = end_;
  in.window = window_;
  in.scale = scale_options_;
  in.ledger = &ledger_;
  return aggregate_qos(agg, in, incomplete, summary);
}

namespace {

/// The per-receiver view a startup policy decides from. `replay` probes
/// the continuity recorder at candidate start slots; the closure borrows
/// the recorder, so the context must not outlive this call stack.
policy::StartupContext make_startup_context(
    const metrics::ContinuityRecorder& continuity, NodeKey node,
    PacketId window, Slot end, Slot worst_delay, Slot fixed_start,
    std::int64_t drops) {
  policy::StartupContext ctx;
  ctx.window = window;
  ctx.horizon = end;
  ctx.worst_delay = worst_delay;
  ctx.fixed_start = fixed_start;
  const Slot first = continuity.first_arrival(node);
  ctx.first_arrival = first == metrics::kNeverArrived ? end : first;
  ctx.drops = drops;
  ctx.deliveries = continuity.data_deliveries();
  ctx.replay = [&continuity, node, end](Slot start) {
    const auto r = continuity.report(node, start, end);
    return policy::PlaybackProbe{.stalls = r.stalls,
                                 .stall_slots = r.stall_slots,
                                 .undecodable = r.undecodable,
                                 .finish_slot = r.finish_slot};
  };
  return ctx;
}

}  // namespace

LossSummary RunPipeline::loss_summary(const LossConfig& loss,
                                      const policy::StartupPolicy& startup,
                                      NodeKey from, NodeKey to,
                                      Slot worst_delay,
                                      StartupSummary* startup_out) const {
  if (recovery_ == nullptr) {
    throw std::logic_error("loss_summary requires the lossy wiring");
  }
  LossSummary summary;
  const loss::RecoveryStats& rs = recovery_->stats();
  summary.drops = engine_.stats().drops;
  summary.retransmissions = rs.retransmissions;
  summary.parity_transmissions = rs.parity_transmissions;
  summary.fec_decodes = rs.fec_decodes;
  summary.suppressed = rs.suppressed_causal + rs.suppressed_redundant;
  summary.nacks = rs.nacks;
  summary.redundancy_overhead = rs.redundancy_overhead();
  summary.all_gap_free = recovery_->all_gap_free(from, to, window_);
  summary.drain_slots = drained_;
  summary.max_erasure_run = rs.max_erasure_run;
  summary.guard_collisions = rs.guard_collisions;
  summary.unrecoverable = rs.unrecoverable;

  const metrics::ContinuityRecorder* continuity = observers_.continuity();
  if (continuity != nullptr) {
    if (startup_out != nullptr) {
      *startup_out = startup_summary(startup, loss.playback_start, from, to,
                                     worst_delay);
    }
    for (NodeKey x = from; x <= to; ++x) {
      const policy::StartupContext ctx =
          make_startup_context(*continuity, x, window_, end_, worst_delay,
                               loss.playback_start, engine_.stats().drops);
      const auto cr = continuity->report(x, startup.start_slot(ctx), end_);
      summary.stalls = std::max(summary.stalls, cr.stalls);
      summary.stall_slots = std::max(summary.stall_slots, cr.stall_slots);
      summary.undecodable += cr.undecodable;
    }
  }
  return summary;
}

LossSummary RunPipeline::loss_summary(const LossConfig& loss, NodeKey from,
                                      NodeKey to, Slot worst_delay) const {
  const std::unique_ptr<policy::StartupPolicy> fixed =
      policy::startup_policy("fixed").make(policy::StartupOptions{});
  return loss_summary(loss, *fixed, from, to, worst_delay);
}

StartupSummary RunPipeline::startup_summary(
    const policy::StartupPolicy& startup, Slot fixed_start, NodeKey from,
    NodeKey to, Slot worst_delay) const {
  const metrics::ContinuityRecorder* continuity = observers_.continuity();
  if (continuity == nullptr) {
    throw std::logic_error("startup_summary requires a continuity recorder");
  }
  StartupSummary summary;
  summary.policy = startup.name();
  double start_sum = 0;
  NodeKey count = 0;
  summary.earliest_start = end_;
  for (NodeKey x = from; x <= to; ++x) {
    const policy::StartupContext ctx =
        make_startup_context(*continuity, x, window_, end_, worst_delay,
                             fixed_start, engine_.stats().drops);
    const Slot start = startup.start_slot(ctx);
    const auto cr = continuity->report(x, start, end_);
    summary.max_start = std::max(summary.max_start, start);
    summary.earliest_start = std::min(summary.earliest_start, start);
    start_sum += static_cast<double>(start);
    ++count;
    summary.stalls = std::max(summary.stalls, cr.stalls);
    summary.stall_slots = std::max(summary.stall_slots, cr.stall_slots);
    summary.undecodable += cr.undecodable;
    summary.max_finish = std::max(summary.max_finish, cr.finish_slot);
  }
  if (count > 0) {
    summary.average_start = start_sum / static_cast<double>(count);
  }
  return summary;
}

}  // namespace streamcast::core
