#include "src/core/pipeline.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/metrics/buffers.hpp"

namespace streamcast::core {

ObserverStack::ObserverStack(const net::Topology& topology,
                             const ObserverSpec& spec)
    : delays_(spec.node_span, spec.window),
      neighbors_(spec.node_span),
      trace_(spec.trace) {
  if (spec.continuity) continuity_.emplace(spec.node_span, spec.window);
  if (spec.audit) auditor_.emplace(topology, spec.audit_options);
}

void ObserverStack::attach(sim::Engine& engine,
                           loss::RecoveryProtocol* recovery) {
  if (recovery == nullptr) {
    engine.add_observer(delays_);
    engine.add_observer(neighbors_);
  }
  if (auditor_) engine.add_observer(*auditor_);
  if (recovery != nullptr) {
    // Metrics observe the post-repair stream (repairs and FEC decodes count
    // as arrivals), so they attach to the recovery layer, not the engine.
    recovery->add_observer(delays_);
    recovery->add_observer(neighbors_);
    if (continuity_) recovery->add_observer(*continuity_);
  }
  if (trace_ != nullptr) engine.add_observer(*trace_);
}

void ObserverStack::require_clean() {
  if (auditor_) auditor_->require_clean();
}

RunPipeline::RunPipeline(net::Topology& topology, sim::Protocol& protocol,
                         const ObserverSpec& observers,
                         loss::LossModel* loss_model,
                         loss::RecoveryProtocol* recovery)
    : engine_(topology, protocol),
      observers_(topology, observers),
      recovery_(recovery),
      window_(observers.window) {
  if (loss_model != nullptr) engine_.set_loss_model(loss_model);
  // The recovery layer observes the engine for drop reports and post-repair
  // fan-out, ahead of the auditor in the observer order.
  if (recovery_ != nullptr) engine_.add_observer(*recovery_);
  observers_.attach(engine_, recovery_);
}

void RunPipeline::run(Slot horizon, DrainPolicy drain) {
  engine_.run_until(horizon);
  if (recovery_ != nullptr && drain.max_drain > 0) {
    // Drain: keep simulating in small chunks until every receiver's
    // gap-free prefix covers the window, or the drain budget runs out.
    while (!recovery_->all_gap_free(drain.from, drain.to, window_) &&
           drained_ < drain.max_drain) {
      const Slot chunk = std::min<Slot>(32, drain.max_drain - drained_);
      drained_ += chunk;
      engine_.run_until(horizon + drained_);
    }
  }
  end_ = horizon + drained_;
  observers_.require_clean();
}

QosReport RunPipeline::aggregate(const Aggregation& agg,
                                 NodeKey* incomplete) const {
  QosReport report;
  report.scheme = agg.label;
  report.n = agg.report_n;
  report.d = agg.d;
  report.transmissions = engine_.stats().transmissions;
  report.slots_simulated = end_;
  report.drops = engine_.stats().drops;
  report.retransmissions = engine_.stats().retransmissions;

  const metrics::DelayRecorder& delays = observers_.delays();
  double delay_sum = 0;
  double buffer_sum = 0;
  NodeKey complete = 0;
  for (const NodeKey key : agg.receivers) {
    const auto a = delays.playback_delay(key);
    if (!a) {
      if (!agg.skip_incomplete) {
        throw std::logic_error("receiver window incomplete");
      }
      if (incomplete != nullptr) ++*incomplete;
      continue;
    }
    report.worst_delay = std::max(report.worst_delay, *a);
    delay_sum += static_cast<double>(*a);
    std::vector<Slot> row(static_cast<std::size_t>(window_));
    for (PacketId j = 0; j < window_; ++j) {
      row[static_cast<std::size_t>(j)] = delays.arrival(key, j);
    }
    const std::size_t occ = metrics::max_buffer_occupancy(row, *a);
    report.max_buffer = std::max(report.max_buffer, occ);
    buffer_sum += static_cast<double>(occ);
    ++complete;
  }
  if (complete > 0) {
    report.average_delay = delay_sum / static_cast<double>(complete);
    report.average_buffer = buffer_sum / static_cast<double>(complete);
  }

  // Neighbor counts cover every receiver, complete window or not: partners
  // were observed either way.
  const metrics::NeighborRecorder& neighbors = observers_.neighbors();
  double neighbor_sum = 0;
  for (const NodeKey key : agg.receivers) {
    report.max_neighbors = std::max(report.max_neighbors,
                                    neighbors.count(key));
    neighbor_sum += static_cast<double>(neighbors.count(key));
  }
  if (!agg.receivers.empty()) {
    report.average_neighbors =
        neighbor_sum / static_cast<double>(agg.receivers.size());
  }
  return report;
}

LossSummary RunPipeline::loss_summary(const LossConfig& loss, NodeKey from,
                                      NodeKey to, Slot worst_delay) const {
  if (recovery_ == nullptr) {
    throw std::logic_error("loss_summary requires the lossy wiring");
  }
  LossSummary summary;
  const loss::RecoveryStats& rs = recovery_->stats();
  summary.drops = engine_.stats().drops;
  summary.retransmissions = rs.retransmissions;
  summary.parity_transmissions = rs.parity_transmissions;
  summary.fec_decodes = rs.fec_decodes;
  summary.suppressed = rs.suppressed_causal + rs.suppressed_redundant;
  summary.nacks = rs.nacks;
  summary.redundancy_overhead = rs.redundancy_overhead();
  summary.all_gap_free = recovery_->all_gap_free(from, to, window_);
  summary.drain_slots = drained_;

  const metrics::ContinuityRecorder* continuity = observers_.continuity();
  if (continuity != nullptr) {
    const Slot playback_start =
        loss.playback_start >= 0 ? loss.playback_start : worst_delay;
    for (NodeKey x = from; x <= to; ++x) {
      const auto cr = continuity->report(x, playback_start, end_);
      summary.stalls = std::max(summary.stalls, cr.stalls);
      summary.stall_slots = std::max(summary.stall_slots, cr.stall_slots);
      summary.undecodable += cr.undecodable;
    }
  }
  return summary;
}

}  // namespace streamcast::core
