// Intra-run sharded multicluster execution (DESIGN.md §14).
//
// One super-tree run is split across a std::jthread pool at the cluster
// boundary: shard s owns the contiguous cluster range
// [⌊sK/S⌋, ⌊(s+1)K/S⌋) — its protocol slice, SoA engine state, arena-backed
// in-flight ring, and observer stack — and advances T_c slots per epoch.
// Shards interact only
// through backbone packets, and every cross-shard link has latency exactly
// T_c (shards are cluster-contiguous, the global source sits in cluster 0,
// and all cross-cluster latencies are T_c), so a packet sent during epoch e
// arrives either in the last slot of epoch e (injected retroactively at the
// barrier through the engine's late-delivery path) or inside epoch e+1
// (ringed before the epoch starts). A T_c-slot epoch therefore cannot
// reorder backbone delivery; the proof sketch is in DESIGN.md §14.
//
// Byte-identity contract: the merged QosReport, trace, audit verdicts, and
// engine totals at ANY shard count equal the shards == 1 run bit-for-bit.
// Aggregation reuses core::aggregate_qos with receivers iterated in global
// (cluster, local) order — each read from its owning shard's stack — so
// every floating-point fold happens in the serial order; EngineStats are
// summed in shard submission order; the delivery trace is merged in the
// canonical (received, sent, from, to, packet, tag) order at every shard
// count, including 1.
#pragma once

#include <functional>
#include <memory>

#include "src/core/config.hpp"
#include "src/core/pipeline.hpp"
#include "src/core/report.hpp"
#include "src/multitree/protocol.hpp"
#include "src/sim/erasure.hpp"
#include "src/sim/trace.hpp"

namespace streamcast::core {

/// Per-phase wall time and allocation accounting of one sharded run, for
/// `bench/perf_sweep --shards` (shard overhead must be attributable, not
/// just end-to-end).
struct ShardMetrics {
  int shards = 1;
  double construct_s = 0;
  double pump_s = 0;
  double merge_s = 0;
  /// Engine totals summed over shards in submission order (allocation
  /// counters included).
  sim::EngineStats stats{};
};

/// How the sharded multicluster runner executes one run. The defaults
/// reproduce the historical serial session path exactly.
struct ShardOptions {
  /// Worker count; clamped to [1, clusters]. 1 = the serial pump.
  int shards = 1;
  /// Stream mode forwarded to the multi-tree intra protocols (the session
  /// path always passes kPreRecorded; live-pipelined cells come through
  /// here).
  multitree::StreamMode mode = multitree::StreamMode::kPreRecorded;
  /// Count receivers with incomplete windows instead of throwing (lossy
  /// cells may legitimately miss packets).
  bool skip_incomplete = false;
  /// When non-null, receives the merged delivery trace in canonical
  /// (received, sent, from, to, packet, tag) order — at every shard count,
  /// including 1 (the serial bucket order is not reproducible across
  /// shards; the canonical order is, and nothing else observes it).
  sim::Trace* trace = nullptr;
  /// Per-shard erasure oracle factory; null = lossless. Sharding an oracle
  /// is sound only when its decisions are a pure per-link function (e.g.
  /// Gilbert–Elliott forks one PRNG per directed link from the seed, so any
  /// partition of senders reproduces the serial stream; Bernoulli draws
  /// from one global-order PRNG and is NOT shardable). The oracle must
  /// stay alive until the run returns — ownership is transferred here.
  std::function<std::unique_ptr<sim::ErasureOracle>(int shard)> make_loss;
};

/// Runs one multicluster session sharded `opts.shards` ways and returns the
/// merged QosReport. `metrics`, when given, receives per-phase wall times
/// and merged engine totals; `incomplete`, when given, receives the number
/// of skipped receivers (skip_incomplete runs). Throws the first worker's
/// exception (in shard order) if any shard fails; audit runs (config.audit)
/// throw sim::ProtocolViolation if any shard's auditor is unclean.
QosReport run_multicluster_sharded(const SessionConfig& config,
                                   const ShardOptions& opts = {},
                                   ShardMetrics* metrics = nullptr,
                                   NodeKey* incomplete = nullptr);

}  // namespace streamcast::core
