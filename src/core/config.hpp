// Public configuration of a streaming session.
#pragma once

#include "src/multitree/protocol.hpp"
#include "src/sim/packet.hpp"

namespace streamcast::core {

using sim::NodeKey;
using sim::PacketId;
using sim::Slot;

/// Which overlay scheme to run inside one cluster.
enum class Scheme {
  kMultiTreeStructured,  // §2.2.1
  kMultiTreeGreedy,      // §2.2.2
  kHypercube,            // §3.2 (single chain; §3.1 when N = 2^k - 1)
  kHypercubeGrouped,     // §3.2 final paragraph (d groups)
  kChain,                // §1 strawman
  kSingleTree,           // §1 strawman with d-times receiver upload
};

const char* scheme_name(Scheme s);

struct SessionConfig {
  Scheme scheme = Scheme::kMultiTreeGreedy;
  /// Receivers in the cluster (per cluster, when clusters > 1).
  NodeKey n = 0;
  /// Source capacity / tree degree / group count, per scheme.
  int d = 2;
  /// Stream mode (multi-tree schemes only; hypercube and baselines stream
  /// pre-recorded data).
  multitree::StreamMode mode = multitree::StreamMode::kPreRecorded;
  /// Packets measured. 0 = pick automatically (enough for steady state).
  PacketId window = 0;

  // --- cross-cluster composition (§2.1) ------------------------------------
  /// 1 = single-cluster streaming straight from S. > 1 = the super-tree τ
  /// over `clusters` equal clusters of n receivers each; `scheme` then
  /// selects the intra-cluster overlay (kMultiTreeGreedy or kHypercube).
  int clusters = 1;
  /// Backbone degree D >= 3 (clusters > 1 only).
  int big_d = 3;
  /// Inter-cluster latency T_c > 1 (clusters > 1 only).
  Slot t_c = 10;
};

}  // namespace streamcast::core
