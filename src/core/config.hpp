// Public configuration of a streaming session.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "src/loss/model.hpp"
#include "src/loss/recovery.hpp"
#include "src/multitree/protocol.hpp"
#include "src/policy/startup.hpp"
#include "src/scale/options.hpp"
#include "src/sim/packet.hpp"

namespace streamcast::core {

using sim::NodeKey;
using sim::PacketId;
using sim::Slot;

/// Which overlay scheme to run inside one cluster.
enum class Scheme {
  kMultiTreeStructured,  // §2.2.1
  kMultiTreeGreedy,      // §2.2.2
  kHypercube,            // §3.2 (single chain; §3.1 when N = 2^k - 1)
  kHypercubeGrouped,     // §3.2 final paragraph (d groups)
  kChain,                // §1 strawman
  kSingleTree,           // §1 strawman with d-times receiver upload
  kRandomRegular,        // Kim–Srikant random regular digraph (1308.6807)
  kDynamicTrees,         // Zhu–Hajek distributed tree dynamics (1308.1971)
};

/// Canonical scheme name (the SchemeRegistry descriptor's name field).
const char* scheme_name(Scheme s);

/// Exact inverse of scheme_name(): parses a canonical name back to the
/// enumerator. Throws std::invalid_argument on an unknown name.
Scheme parse_scheme(std::string_view name);

/// The QosReport::scheme label: the bare canonical name for a single
/// cluster, "<name> x<K> clusters" for a multi-cluster run. The one place
/// that string is formatted.
std::string scheme_label(Scheme s, int clusters = 1);

/// Lossy-link extension of a session (single cluster only). The default —
/// model == kNone — is exactly the reliable run; nothing is wrapped.
struct LossConfig {
  /// Erasure channel on every link. kNone disables the whole subsystem.
  loss::ErasureKind model = loss::ErasureKind::kNone;
  /// Bernoulli erasure probability (model == kBernoulli).
  double rate = 0.0;
  /// Gilbert–Elliott channel parameters (model == kGilbertElliott).
  loss::GilbertElliottLoss::Params ge{};
  /// Seed for the erasure PRNG; runs reproduce bit-for-bit.
  std::uint64_t seed = 0x5eed;
  /// How gaps are repaired (see loss::RecoveryProtocol).
  loss::RecoveryMode recovery = loss::RecoveryMode::kNack;
  /// Recovery policy registry entry (policy::recovery_policies()): "none",
  /// "nack", "xor-parity", or "streaming-code". Empty routes through the
  /// legacy `recovery` enum above.
  std::string recovery_policy{};
  /// Badr–Lui–Khisti streaming-code parameters (recovery_policy ==
  /// "streaming-code"): decode delay T and correctable burst B.
  policy::StreamingCodeOptions code{};
  /// Data packets per XOR parity packet (recovery == kFec).
  int fec_window = 8;
  /// Capacity headroom for repair traffic on top of the paper's exactly-
  /// provisioned links (net::ProvisionedTopology). Unused at loss rate 0.
  int extra_send = 1;
  int extra_recv = 1;
  /// Extra slots past the reliable horizon the session may simulate while
  /// waiting for every receiver's gap-free prefix to reach the window.
  Slot max_drain = 4096;
  /// Playback start slot for the continuity metrics; -1 = use the run's
  /// worst playback delay (so a reliable run reports zero stalls).
  Slot playback_start = -1;
};

/// Compile-time default for SessionConfig::audit: true when the library is
/// built with -DSTREAMCAST_AUDIT=ON (the `audit` preset), so the full test
/// suite and benches run under the invariant auditor without source changes.
#ifdef STREAMCAST_AUDIT_DEFAULT
inline constexpr bool kAuditDefault = true;
#else
inline constexpr bool kAuditDefault = false;
#endif

struct SessionConfig {
  Scheme scheme = Scheme::kMultiTreeGreedy;
  /// Receivers in the cluster (per cluster, when clusters > 1).
  NodeKey n = 0;
  /// Source capacity / tree degree / group count, per scheme.
  int d = 2;
  /// Stream mode (multi-tree schemes only; hypercube and baselines stream
  /// pre-recorded data).
  multitree::StreamMode mode = multitree::StreamMode::kPreRecorded;
  /// Packets measured. 0 = pick automatically (enough for steady state).
  PacketId window = 0;
  /// Overlay-construction seed for the randomized schemes (kRandomRegular's
  /// permutation digraph, kDynamicTrees' join tie-breaks). Deterministic
  /// schemes ignore it; two runs with equal seeds are byte-identical.
  std::uint64_t seed = 0x5eed;

  // --- cross-cluster composition (§2.1) ------------------------------------
  /// 1 = single-cluster streaming straight from S. > 1 = the super-tree τ
  /// over `clusters` equal clusters of n receivers each; `scheme` then
  /// selects the intra-cluster overlay (kMultiTreeGreedy or kHypercube).
  int clusters = 1;
  /// Backbone degree D >= 3 (clusters > 1 only).
  int big_d = 3;
  /// Inter-cluster latency T_c > 1 (clusters > 1 only).
  Slot t_c = 10;
  /// Worker threads a multicluster run is sharded across at the super-tree
  /// cluster boundary (clamped to [1, clusters]; DESIGN.md §14). Output is
  /// byte-identical at every value — 1 is the serial pump.
  int shards = 1;

  // --- lossy links (clusters == 1 only) ------------------------------------
  LossConfig loss{};

  /// Playback startup policy for the continuity metrics (DESIGN.md §15):
  /// when playback starts at each receiver. The default ("fixed") is the
  /// historical behavior — LossConfig::playback_start, else the run's
  /// worst playback delay — and is byte-identical to the pre-policy
  /// pipeline.
  policy::StartupOptions startup{};

  /// Million-node scale path (DESIGN.md §11): thresholds for the streaming
  /// recorder stack and the closed-form schedule replay, sketch accuracy,
  /// and the memory budget every run's allocations are charged against.
  scale::ScaleOptions scale{};

  /// Run under the audit::InvariantAuditor: every slot's capacity use,
  /// schedule collisions, latency pacing, duplicate-freedom, and the
  /// scheme's claimed delay/buffer envelopes are re-checked from the
  /// observer stream, and the session throws sim::ProtocolViolation with a
  /// structured AuditReport if any invariant fails.
  bool audit = kAuditDefault;
};

}  // namespace streamcast::core
