// StreamingSession — the one-stop public API: pick a scheme, run it on the
// slot engine, get the QoS report the paper's Table 1 compares.
//
//   core::SessionConfig cfg{.scheme = core::Scheme::kMultiTreeGreedy,
//                           .n = 100, .d = 3};
//   core::QosReport report = core::StreamingSession(cfg).run();
//
// The session is a thin configuration of core::RunPipeline: it asks the
// scheme registry (src/scheme/) for the overlay and the audit envelope,
// hands both to the pipeline, and returns the aggregated report. For
// anything beyond single-cluster QoS measurement (custom observers,
// cross-cluster composition, churn), use RunPipeline or the underlying
// modules directly — the session is a convenience wrapper, not a
// gatekeeper.
#pragma once

#include "src/core/config.hpp"
#include "src/core/report.hpp"
#include "src/scale/recorder.hpp"

namespace streamcast::core {

/// QoS report plus the scale path's distribution summaries and memory
/// accounting (run_scale()).
struct ScaleRunResult {
  QosReport qos;
  scale::ScaleSummary summary;
};

class StreamingSession {
 public:
  explicit StreamingSession(SessionConfig config);

  /// Builds topology and protocol via the scheme registry, simulates until
  /// every receiver completed the measurement window, and aggregates the
  /// QoS metrics. With `config.loss.model != kNone` this is
  /// `run_lossy().qos`.
  ///
  /// Scale path (DESIGN.md §11): at or above config.scale.replay_threshold
  /// receivers an eligible run — see replay_eligible() — skips the slot
  /// engine and replays the schedule in closed form; at or above
  /// config.scale.sketch_threshold a simulated run swaps the exact
  /// recorders for the streaming scale family. Both paths produce the same
  /// QosReport bytes as the exact pump (regression-tested).
  QosReport run() const;

  /// run(), returning the sketched delay/buffer distributions and the
  /// memory-budget accounting alongside the QoS report. Reliable
  /// single-cluster runs only.
  ScaleRunResult run_scale() const;

  /// True when this config can skip the slot engine entirely: a reliable
  /// single-cluster run of a scheme with the closed_form_replay capability
  /// in a replayable stream mode (kPreRecorded / kLivePrebuffered), without
  /// the auditor (auditing *is* watching the engine) and with a window the
  /// closed form covers (>= d). Thresholds are not part of eligibility;
  /// run() additionally requires n >= config.scale.replay_threshold.
  static bool replay_eligible(const SessionConfig& config);

  /// Lossy run (valid for any LossConfig, including kNone): wraps the scheme
  /// in loss::RecoveryProtocol over a net::ProvisionedTopology, attaches the
  /// configured erasure model, drains until every receiver's prefix is
  /// gap-free (or max_drain), and reports QoS, loss, and startup metrics
  /// (the latter from config.startup — DESIGN.md §15).
  LossRunResult run_lossy() const;

  /// Startup-policy run for any single-cluster config: lossy configs go
  /// through run_lossy(); reliable configs simulate with a continuity
  /// recorder attached (never the closed-form replay — adaptive startup
  /// decides from observed arrivals) and fold only the startup summary.
  StartupRunResult run_startup() const;

  const SessionConfig& config() const { return config_; }

 private:
  SessionConfig config_;
};

}  // namespace streamcast::core
