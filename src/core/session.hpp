// StreamingSession — the one-stop public API: pick a scheme, run it on the
// slot engine, get the QoS report the paper's Table 1 compares.
//
//   core::SessionConfig cfg{.scheme = core::Scheme::kMultiTreeGreedy,
//                           .n = 100, .d = 3};
//   core::QosReport report = core::StreamingSession(cfg).run();
//
// The session is a thin configuration of core::RunPipeline: it asks the
// scheme registry (src/scheme/) for the overlay and the audit envelope,
// hands both to the pipeline, and returns the aggregated report. For
// anything beyond single-cluster QoS measurement (custom observers,
// cross-cluster composition, churn), use RunPipeline or the underlying
// modules directly — the session is a convenience wrapper, not a
// gatekeeper.
#pragma once

#include "src/core/config.hpp"
#include "src/core/report.hpp"

namespace streamcast::core {

class StreamingSession {
 public:
  explicit StreamingSession(SessionConfig config);

  /// Builds topology and protocol via the scheme registry, simulates until
  /// every receiver completed the measurement window, and aggregates the
  /// QoS metrics. With `config.loss.model != kNone` this is
  /// `run_lossy().qos`.
  QosReport run() const;

  /// Lossy run (valid for any LossConfig, including kNone): wraps the scheme
  /// in loss::RecoveryProtocol over a net::ProvisionedTopology, attaches the
  /// configured erasure model, drains until every receiver's prefix is
  /// gap-free (or max_drain), and reports both QoS and loss metrics.
  LossRunResult run_lossy() const;

  const SessionConfig& config() const { return config_; }

 private:
  SessionConfig config_;
};

}  // namespace streamcast::core
