// StreamingSession — the one-stop public API: pick a scheme, run it on the
// slot engine, get the QoS report the paper's Table 1 compares.
//
//   core::SessionConfig cfg{.scheme = core::Scheme::kMultiTreeGreedy,
//                           .n = 100, .d = 3};
//   core::QosReport report = core::StreamingSession(cfg).run();
//
// For anything beyond single-cluster QoS measurement (custom observers,
// cross-cluster composition, churn), use the underlying modules directly —
// the session is a convenience wrapper, not a gatekeeper.
#pragma once

#include "src/core/config.hpp"
#include "src/core/report.hpp"

namespace streamcast::core {

/// Loss-subsystem outcome of a lossy run, alongside the usual QosReport.
struct LossSummary {
  std::int64_t drops = 0;
  std::int64_t retransmissions = 0;
  std::int64_t parity_transmissions = 0;
  std::int64_t fec_decodes = 0;
  std::int64_t suppressed = 0;
  std::int64_t nacks = 0;
  /// (retransmissions + parity) / data transmissions.
  double redundancy_overhead = 0;
  /// Every receiver holds the gap-free prefix [0, window) at the end.
  bool all_gap_free = false;
  /// Worst per-receiver stall count / stalled slots when playback starts at
  /// LossConfig::playback_start (continuity metrics).
  int stalls = 0;
  Slot stall_slots = 0;
  /// Window packets (summed over receivers) never delivered by the horizon.
  PacketId undecodable = 0;
  /// Extra slots simulated past the reliable horizon to let repairs land.
  Slot drain_slots = 0;
  /// Receivers whose measurement window stayed incomplete (excluded from
  /// the delay/buffer aggregates).
  NodeKey incomplete_nodes = 0;
};

struct LossRunResult {
  QosReport qos;
  LossSummary loss;
};

class StreamingSession {
 public:
  explicit StreamingSession(SessionConfig config);

  /// Builds topology and protocol, simulates until every receiver completed
  /// the measurement window, and aggregates the QoS metrics. With
  /// `config.loss.model != kNone` this is `run_lossy().qos`.
  QosReport run() const;

  /// Lossy run (valid for any LossConfig, including kNone): wraps the scheme
  /// in loss::RecoveryProtocol over a net::ProvisionedTopology, attaches the
  /// configured erasure model, drains until every receiver's prefix is
  /// gap-free (or max_drain), and reports both QoS and loss metrics.
  LossRunResult run_lossy() const;

  const SessionConfig& config() const { return config_; }

 private:
  SessionConfig config_;
};

}  // namespace streamcast::core
