// StreamingSession — the one-stop public API: pick a scheme, run it on the
// slot engine, get the QoS report the paper's Table 1 compares.
//
//   core::SessionConfig cfg{.scheme = core::Scheme::kMultiTreeGreedy,
//                           .n = 100, .d = 3};
//   core::QosReport report = core::StreamingSession(cfg).run();
//
// For anything beyond single-cluster QoS measurement (custom observers,
// cross-cluster composition, churn), use the underlying modules directly —
// the session is a convenience wrapper, not a gatekeeper.
#pragma once

#include "src/core/config.hpp"
#include "src/core/report.hpp"

namespace streamcast::core {

class StreamingSession {
 public:
  explicit StreamingSession(SessionConfig config);

  /// Builds topology and protocol, simulates until every receiver completed
  /// the measurement window, and aggregates the QoS metrics.
  QosReport run() const;

  const SessionConfig& config() const { return config_; }

 private:
  SessionConfig config_;
};

}  // namespace streamcast::core
