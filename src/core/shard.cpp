#include "src/core/shard.hpp"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <thread>
#include <tuple>
#include <vector>

#include "src/multitree/analysis.hpp"
#include "src/scheme/registry.hpp"
#include "src/supertree/protocol.hpp"

namespace streamcast::core {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Cross-shard mailbox: phase 1 hands it every validated, non-erased
/// transmission whose destination cluster lies outside the owned range.
/// Drained single-threadedly by the barrier completion.
class Mailbox final : public sim::TxRouter {
 public:
  Mailbox(const net::ClusteredTopology& topo, int lo, int hi)
      : topo_(topo), lo_(lo), hi_(hi) {}

  bool keep(const sim::Delivery& d) override {
    const int c = topo_.cluster_of(d.tx.to);
    if (c >= lo_ && c < hi_) return true;
    outbox_.push_back(d);
    return false;
  }

  std::vector<sim::Delivery>& outbox() { return outbox_; }

 private:
  const net::ClusteredTopology& topo_;
  int lo_;
  int hi_;
  std::vector<sim::Delivery> outbox_;
};

/// Receivers owned by clusters [lo, hi), in global (cluster, local) order —
/// the same order the serial session path builds.
std::vector<NodeKey> owned_receivers(const net::ClusteredTopology& topo,
                                     int lo, int hi) {
  std::vector<NodeKey> keys;
  for (int c = lo; c < hi; ++c) {
    const NodeKey n = topo.cluster_receivers(c);
    for (NodeKey x = 1; x <= n; ++x) keys.push_back(topo.receiver(c, x));
  }
  return keys;
}

/// The shard's ObserverSpec: the base spec with the audit scope narrowed to
/// the shard's own receivers (their arrivals are wholly in-shard, so each
/// shard's auditor sees the complete evidence for its verdict).
ObserverSpec shard_spec(const ObserverSpec& base,
                        std::vector<NodeKey> receivers, sim::Trace* trace) {
  ObserverSpec spec = base;
  spec.trace = trace;
  if (spec.audit) spec.audit_options.audited_nodes = std::move(receivers);
  return spec;
}

/// Everything one shard owns. Construction order matters: the ledger backs
/// the engine and the stack; the router and trace must outlive the engine.
struct Shard {
  int lo;
  int hi;
  util::BudgetLedger ledger;
  supertree::SuperTreeProtocol protocol;
  Mailbox router;
  std::unique_ptr<sim::ErasureOracle> loss;
  std::vector<NodeKey> receivers;
  sim::Trace trace;
  sim::Engine engine;
  ObserverStack stack;

  Shard(const net::ClusteredTopology& topo, supertree::IntraScheme intra,
        const ShardOptions& opts, const ObserverSpec& base, int index,
        int lo_in, int hi_in)
      : lo(lo_in),
        hi(hi_in),
        ledger(util::MemoryBudget{base.scale.budget_bytes}),
        protocol(topo, intra, opts.mode, {lo_in, hi_in}),
        router(topo, lo_in, hi_in),
        loss(opts.make_loss ? opts.make_loss(index) : nullptr),
        receivers(owned_receivers(topo, lo_in, hi_in)),
        engine(topo, protocol,
               sim::EngineOptions{.packet_window_hint = base.window,
                                  .budget = &ledger,
                                  .router = &router}),
        stack(topo, shard_spec(base, receivers,
                               opts.trace != nullptr ? &trace : nullptr),
              &ledger) {
    if (loss != nullptr) engine.set_loss_model(loss.get());
    stack.attach(engine, nullptr);
  }
};

/// Canonical delivery order for the merged trace: the within-slot bucket
/// order of the serial pump is an emission-order artifact no other output
/// observes, so the merge (and the shards == 1 run, for parity) sorts by
/// every schedule-determined field instead.
bool canonical_less(const sim::Delivery& a, const sim::Delivery& b) {
  return std::tuple(a.received, a.sent, a.tx.from, a.tx.to, a.tx.packet,
                    a.tx.tag) < std::tuple(b.received, b.sent, b.tx.from,
                                           b.tx.to, b.tx.packet, b.tx.tag);
}

bool canonical_drop_less(const sim::Drop& a, const sim::Drop& b) {
  return std::tuple(a.sent, a.would_arrive, a.tx.from, a.tx.to, a.tx.packet,
                    a.tx.tag) < std::tuple(b.sent, b.would_arrive, b.tx.from,
                                           b.tx.to, b.tx.packet, b.tx.tag);
}

}  // namespace

QosReport run_multicluster_sharded(const SessionConfig& config,
                                   const ShardOptions& opts,
                                   ShardMetrics* metrics,
                                   NodeKey* incomplete) {
  const scheme::Descriptor& desc = scheme::descriptor(config.scheme);
  if (!desc.caps.multicluster) {
    throw std::invalid_argument(
        "sharded runs require a multicluster-capable scheme");
  }
  const NodeKey n = config.n;
  const int clusters = config.clusters;
  const int shard_count = std::clamp(opts.shards, 1, clusters);

  const auto construct_start = Clock::now();

  std::vector<net::ClusteredTopology::ClusterSpec> specs(
      static_cast<std::size_t>(clusters),
      net::ClusteredTopology::ClusterSpec{n});
  net::ClusteredTopology topo(specs, config.big_d, config.d, config.t_c);

  const Slot bound = desc.multicluster_bound(config);
  PacketId window = config.window;
  if (window == 0) window = 2 * multitree::worst_delay_bound(n, config.d);
  const Slot horizon = window + bound + 8;
  const Slot epoch = topo.t_c();

  ObserverSpec base;
  base.window = window;
  base.node_span = static_cast<NodeKey>(topo.size());
  base.audit = config.audit;
  if (config.audit) {
    // Same cross-cluster envelope the serial session path audits: the
    // structural bound covers the backbone hops and doubles as the buffer
    // envelope; only plain receivers are window-audited.
    audit::AuditOptions audit_opts;
    audit_opts.window = window;
    audit_opts.delay_bound = bound;
    audit_opts.buffer_bound = bound;
    audit_opts.require_complete = !opts.skip_incomplete;
    base.audit_options = std::move(audit_opts);
  }
  base.scale = config.scale;

  // Deterministic contiguous assignment: shard s owns clusters
  // [⌊s·K/S⌋, ⌊(s+1)·K/S⌋). Cluster 0 (and the global source with it)
  // always lands in shard 0, so every cross-shard link crosses clusters
  // and has latency exactly T_c — the epoch-safety precondition.
  std::vector<std::unique_ptr<Shard>> shards;
  std::vector<int> owner_of_cluster(static_cast<std::size_t>(clusters), 0);
  for (int s = 0; s < shard_count; ++s) {
    const int lo = static_cast<int>(
        (static_cast<long long>(s) * clusters) / shard_count);
    const int hi = static_cast<int>(
        (static_cast<long long>(s + 1) * clusters) / shard_count);
    shards.push_back(
        std::make_unique<Shard>(topo, desc.intra, opts, base, s, lo, hi));
    for (int c = lo; c < hi; ++c) {
      owner_of_cluster[static_cast<std::size_t>(c)] = s;
    }
  }

  const double construct_s = seconds_since(construct_start);
  const auto pump_start = Clock::now();

  // Epoch barrier: workers advance T_c slots, then one thread (the barrier
  // completion) drains every outbox in shard order and injects each
  // delivery into its owner — into the ring for epoch e+1 arrivals, via
  // the retroactive path for last-slot-of-epoch-e arrivals. The completion
  // must be noexcept, so errors are parked and rethrown after the join.
  std::atomic<bool> failed{false};
  std::vector<std::exception_ptr> errors(
      static_cast<std::size_t>(shard_count) + 1);
  auto exchange = [&]() noexcept {
    try {
      for (auto& shard : shards) {
        for (const sim::Delivery& d : shard->router.outbox()) {
          const int c = topo.cluster_of(d.tx.to);
          shards[static_cast<std::size_t>(
                     owner_of_cluster[static_cast<std::size_t>(c)])]
              ->engine.post(d);
        }
        shard->router.outbox().clear();
      }
    } catch (...) {
      errors[static_cast<std::size_t>(shard_count)] =
          std::current_exception();
      failed.store(true);
    }
  };
  std::barrier sync(shard_count, exchange);

  auto work = [&](int s) {
    try {
      sim::Engine& engine = shards[static_cast<std::size_t>(s)]->engine;
      // Every shard computes the identical goal sequence, so the final
      // arrive_and_wait releases all workers into the same break.
      Slot goal = std::min(epoch, horizon);
      for (;;) {
        engine.run_until(goal);
        sync.arrive_and_wait();
        if (failed.load()) return;
        if (goal >= horizon) return;
        goal = std::min<Slot>(goal + epoch, horizon);
      }
    } catch (...) {
      errors[static_cast<std::size_t>(s)] = std::current_exception();
      failed.store(true);
      sync.arrive_and_drop();
    }
  };

  {
    std::vector<std::jthread> pool;
    pool.reserve(static_cast<std::size_t>(shard_count) - 1);
    for (int s = 1; s < shard_count; ++s) pool.emplace_back(work, s);
    work(0);
  }
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  // Audit verdicts in shard order: each shard's auditor saw the complete
  // arrival evidence for its own receivers.
  for (auto& shard : shards) shard->stack.require_clean();

  const double pump_s = seconds_since(pump_start);
  const auto merge_start = Clock::now();

  sim::EngineStats merged{};
  for (auto& shard : shards) {
    const sim::EngineStats& st = shard->engine.stats();
    merged.transmissions += st.transmissions;
    merged.duplicate_deliveries += st.duplicate_deliveries;
    merged.deliveries += st.deliveries;
    merged.drops += st.drops;
    merged.retransmissions += st.retransmissions;
    merged.arena_bytes += st.arena_bytes;
    merged.arena_chunks += st.arena_chunks;
    merged.arena_allocations += st.arena_allocations;
    merged.ring_relayouts += st.ring_relayouts;
    merged.seen_relayouts += st.seen_relayouts;
  }

  std::vector<NodeKey> receivers = owned_receivers(topo, 0, clusters);

  AggregateInputs in;
  in.stack_of = [&](NodeKey key) -> const ObserverStack& {
    const int c = topo.cluster_of(key);
    return shards[static_cast<std::size_t>(
                      owner_of_cluster[static_cast<std::size_t>(c)])]
        ->stack;
  };
  in.stats = merged;
  in.end = horizon;
  in.window = window;
  in.scale = config.scale;
  QosReport report =
      aggregate_qos({.label = scheme_label(config.scheme, clusters),
                     .report_n = n * clusters,
                     .d = config.d,
                     .receivers = std::move(receivers),
                     .skip_incomplete = opts.skip_incomplete},
                    in, incomplete, nullptr);

  if (opts.trace != nullptr) {
    std::vector<sim::Delivery> deliveries;
    std::vector<sim::Drop> drops;
    for (auto& shard : shards) {
      deliveries.insert(deliveries.end(), shard->trace.all().begin(),
                        shard->trace.all().end());
      drops.insert(drops.end(), shard->trace.drops().begin(),
                   shard->trace.drops().end());
    }
    std::sort(deliveries.begin(), deliveries.end(), canonical_less);
    std::sort(drops.begin(), drops.end(), canonical_drop_less);
    for (const sim::Delivery& d : deliveries) opts.trace->record(d);
    for (const sim::Drop& d : drops) opts.trace->on_drop(d);
  }

  if (metrics != nullptr) {
    metrics->shards = shard_count;
    metrics->construct_s = construct_s;
    metrics->pump_s = pump_s;
    metrics->merge_s = seconds_since(merge_start);
    metrics->stats = merged;
  }
  return report;
}

}  // namespace streamcast::core
