#include "src/core/report.hpp"

#include <ostream>
#include <sstream>

#include "src/util/table.hpp"

namespace streamcast::core {

std::string QosReport::summary() const {
  std::ostringstream os;
  os << scheme << " (N=" << n << ", d=" << d << "): worst delay "
     << worst_delay << " slots, avg delay " << util::cell(average_delay, 2)
     << ", max buffer " << max_buffer << " pkts, max neighbors "
     << max_neighbors << ", " << transmissions << " transmissions";
  if (drops > 0 || retransmissions > 0) {
    os << ", " << drops << " drops, " << retransmissions << " retransmissions";
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const QosReport& r) {
  return os << r.summary();
}

}  // namespace streamcast::core
