#include "src/core/report.hpp"

#include <ostream>
#include <sstream>

#include "src/util/table.hpp"

namespace streamcast::core {

std::string QosReport::summary() const {
  std::ostringstream os;
  os << scheme << " (N=" << n << ", d=" << d << "): worst delay "
     << worst_delay << " slots, avg delay " << util::cell(average_delay, 2)
     << ", max buffer " << max_buffer << " pkts, max neighbors "
     << max_neighbors << ", " << transmissions << " transmissions";
  if (drops > 0 || retransmissions > 0) {
    os << ", " << drops << " drops, " << retransmissions << " retransmissions";
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const QosReport& r) {
  return os << r.summary();
}

namespace {

std::string fp(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

}  // namespace

std::string serialize(const QosReport& r) {
  std::ostringstream os;
  os << "qos scheme=" << r.scheme << " n=" << r.n << " d=" << r.d
     << " worst_delay=" << r.worst_delay
     << " average_delay=" << fp(r.average_delay)
     << " max_buffer=" << r.max_buffer
     << " average_buffer=" << fp(r.average_buffer)
     << " max_neighbors=" << r.max_neighbors
     << " average_neighbors=" << fp(r.average_neighbors)
     << " transmissions=" << r.transmissions
     << " slots_simulated=" << r.slots_simulated << " drops=" << r.drops
     << " retransmissions=" << r.retransmissions;
  return os.str();
}

std::string serialize(const LossRunResult& r) {
  std::ostringstream os;
  os << serialize(r.qos) << "\nloss drops=" << r.loss.drops
     << " retransmissions=" << r.loss.retransmissions
     << " parity_transmissions=" << r.loss.parity_transmissions
     << " fec_decodes=" << r.loss.fec_decodes
     << " suppressed=" << r.loss.suppressed << " nacks=" << r.loss.nacks
     << " redundancy_overhead=" << fp(r.loss.redundancy_overhead)
     << " all_gap_free=" << (r.loss.all_gap_free ? 1 : 0)
     << " stalls=" << r.loss.stalls << " stall_slots=" << r.loss.stall_slots
     << " undecodable=" << r.loss.undecodable
     << " drain_slots=" << r.loss.drain_slots
     << " incomplete_nodes=" << r.loss.incomplete_nodes;
  return os.str();
}

std::string serialize(const StartupSummary& s) {
  std::ostringstream os;
  os << "startup policy=" << s.policy << " max_start=" << s.max_start
     << " average_start=" << fp(s.average_start)
     << " earliest_start=" << s.earliest_start << " stalls=" << s.stalls
     << " stall_slots=" << s.stall_slots << " undecodable=" << s.undecodable
     << " max_finish=" << s.max_finish;
  return os.str();
}

}  // namespace streamcast::core
