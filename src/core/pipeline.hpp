// The one run pipeline every session path flows through (DESIGN.md §9).
//
// RunPipeline owns engine construction, the ObserverStack (delay + neighbor
// recorders, optional continuity recorder, optional InvariantAuditor,
// optional Trace), the drain loop for lossy runs, and QosReport/LossSummary
// aggregation. StreamingSession::run(), run_lossy(), and the multi-cluster
// super-tree path are thin configurations of this class; every run path
// therefore gets identical observability and identical aggregation
// arithmetic for free.
//
// Wiring contract (byte-identity with the historical paths depends on it):
//  * reliable runs attach delays/neighbors to the engine, then the auditor;
//  * lossy runs attach the recovery protocol to the engine as an observer
//    (drop reports + post-repair fan-out) before the auditor, and the
//    metric recorders to the recovery layer, so metrics observe the
//    post-repair stream while the auditor watches the physical one.
//
// Scale stack (DESIGN.md §11): at or above ScaleOptions::sketch_threshold
// nodes, lossless runs swap the exact recorders for the flat scale family
// (ScaleDelayRecorder / ScaleNeighborRecorder). Aggregation arithmetic is
// unchanged — the scale recorders reconstruct exact arrival rows — so the
// QosReport is byte-identical either way (regression-tested); only the
// memory layout and the optional distribution summaries differ. Every
// pipeline allocation is charged against a util::BudgetLedger sized by
// ScaleOptions::budget_bytes, so an oversized world fails fast with
// BudgetExceeded instead of OOM-ing the host.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/audit/auditor.hpp"
#include "src/core/config.hpp"
#include "src/core/report.hpp"
#include "src/loss/recovery.hpp"
#include "src/metrics/continuity.hpp"
#include "src/metrics/delay.hpp"
#include "src/metrics/neighbors.hpp"
#include "src/policy/startup.hpp"
#include "src/scale/recorder.hpp"
#include "src/sim/engine.hpp"
#include "src/sim/trace.hpp"
#include "src/util/budget.hpp"

namespace streamcast::core {

/// Which observers a run wants attached, and how they are sized.
struct ObserverSpec {
  /// Packets [0, window) measured.
  PacketId window = 0;
  /// Recorder key space: n + 1 for a single cluster, the full topology
  /// size for the super-tree composition.
  NodeKey node_span = 0;
  /// Attach a ContinuityRecorder (lossy runs: stalls / undecodable gaps).
  bool continuity = false;
  /// Attach the InvariantAuditor with these options.
  bool audit = false;
  audit::AuditOptions audit_options{};
  /// Caller-owned delivery trace, attached last when non-null.
  sim::Trace* trace = nullptr;
  /// Scale-path thresholds, sketch accuracy, and the memory budget.
  scale::ScaleOptions scale{};
  /// Use the scale recorders regardless of node_span (identity tests).
  bool force_scale = false;
};

/// The observers of one run, constructed and wired in one place. Exactly one
/// recorder family — exact or scale — is materialized, chosen by
/// `ObserverSpec::scale.sketch_threshold` against `node_span` (continuity
/// runs always keep the exact family: the stall metrics need per-packet
/// minimum arrivals the scale encoding does not keep).
class ObserverStack {
 public:
  ObserverStack(const net::Topology& topology, const ObserverSpec& spec,
                util::BudgetLedger* ledger);

  /// Attaches everything in the contract order described above. `recovery`
  /// selects the lossy wiring (metrics observe the post-repair stream).
  void attach(sim::Engine& engine, loss::RecoveryProtocol* recovery);

  /// True when this stack runs the scale recorder family.
  bool scaled() const { return scale_delays_.has_value(); }

  metrics::DelayRecorder& delays() { return *delays_; }
  const metrics::DelayRecorder& delays() const { return *delays_; }
  metrics::NeighborRecorder& neighbors() { return *neighbors_; }
  const metrics::NeighborRecorder& neighbors() const { return *neighbors_; }
  const scale::ScaleDelayRecorder& scale_delays() const {
    return *scale_delays_;
  }
  const scale::ScaleNeighborRecorder& scale_neighbors() const {
    return *scale_neighbors_;
  }
  metrics::ContinuityRecorder* continuity() {
    return continuity_ ? &*continuity_ : nullptr;
  }
  const metrics::ContinuityRecorder* continuity() const {
    return continuity_ ? &*continuity_ : nullptr;
  }
  audit::InvariantAuditor* auditor() {
    return auditor_ ? &*auditor_ : nullptr;
  }

  /// Throws sim::ProtocolViolation if the auditor recorded any violation.
  /// No-op without an auditor.
  void require_clean();

 private:
  std::optional<metrics::DelayRecorder> delays_;
  std::optional<metrics::NeighborRecorder> neighbors_;
  std::optional<scale::ScaleDelayRecorder> scale_delays_;
  std::optional<scale::ScaleNeighborRecorder> scale_neighbors_;
  std::optional<metrics::ContinuityRecorder> continuity_;
  std::optional<audit::InvariantAuditor> auditor_;
  sim::Trace* trace_;
};

/// How a finished run is folded into a QosReport.
struct Aggregation {
  std::string label;
  NodeKey report_n = 0;
  int d = 0;
  /// Node keys aggregated (receivers only; supers and relays excluded).
  std::vector<NodeKey> receivers;
  /// Lossy runs: count receivers with incomplete windows instead of
  /// throwing (a lossy run may legitimately time out).
  bool skip_incomplete = false;
};

/// Inputs to the shared QoS fold, decoupled from RunPipeline so the sharded
/// runner (src/core/shard) can feed per-shard observer stacks through the
/// exact same arithmetic. `stack_of(key)` returns the stack that observed
/// `key` — the pipeline's own single stack for the serial pump, the owning
/// shard's stack when sharded. Iteration stays in `Aggregation::receivers`
/// order either way, so every floating-point sum folds in the same order
/// and the QosReport is byte-identical by construction (DESIGN.md §14).
struct AggregateInputs {
  std::function<const ObserverStack&(NodeKey)> stack_of;
  /// Engine totals (summed over shards in submission order when sharded).
  sim::EngineStats stats{};
  /// Last slot simulated.
  Slot end = 0;
  PacketId window = 0;
  scale::ScaleOptions scale{};
  /// Memory accounting for ScaleSummary; may be null when no summary is
  /// requested.
  const util::BudgetLedger* ledger = nullptr;
};

QosReport aggregate_qos(const Aggregation& agg, const AggregateInputs& in,
                        NodeKey* incomplete = nullptr,
                        scale::ScaleSummary* summary = nullptr);

class RunPipeline {
 public:
  /// For a lossy run, `protocol` is the RecoveryProtocol itself (it drives
  /// the engine) and `recovery` points at it; `loss_model` is attached to
  /// the engine. Reliable runs pass the scheme protocol and leave both
  /// null. The topology must outlive the pipeline.
  RunPipeline(net::Topology& topology, sim::Protocol& protocol,
              const ObserverSpec& observers,
              loss::LossModel* loss_model = nullptr,
              loss::RecoveryProtocol* recovery = nullptr);

  /// Receivers whose gap-free prefix must cover the window before the
  /// drain loop stops (lossy runs; max_drain == 0 disables draining).
  struct DrainPolicy {
    NodeKey from = 1;
    NodeKey to = 0;
    Slot max_drain = 0;
  };

  /// Simulates to `horizon`, drains in 32-slot chunks while receivers still
  /// have gaps (lossy runs), then finalizes the auditor (throwing on any
  /// recorded violation).
  void run(Slot horizon, DrainPolicy drain);
  void run(Slot horizon) { run(horizon, DrainPolicy{}); }

  /// Historical spelling: the aggregation shape now lives at namespace
  /// scope so the sharded runner can share it.
  using Aggregation = core::Aggregation;

  /// Aggregates delay/buffer over (complete) receivers and neighbor counts
  /// over all receivers, plus the engine-level totals. `incomplete`, when
  /// given, receives the number of skipped receivers. `summary`, when
  /// given, additionally receives the sketched delay/buffer distributions
  /// and the ledger's memory accounting (any stack).
  QosReport aggregate(const Aggregation& agg, NodeKey* incomplete = nullptr,
                      scale::ScaleSummary* summary = nullptr) const;

  /// Folds recovery-layer stats and the continuity report over receivers
  /// [from, to] into a LossSummary, replaying playback from the slot the
  /// startup policy picks per receiver. Requires the lossy wiring.
  /// `startup_out`, when given, additionally receives the startup fold
  /// (chosen starts, stalls from them, finish slots).
  LossSummary loss_summary(const LossConfig& loss,
                           const policy::StartupPolicy& startup, NodeKey from,
                           NodeKey to, Slot worst_delay,
                           StartupSummary* startup_out = nullptr) const;

  /// Historical spelling: the fixed startup policy (the configured
  /// playback_start slot, else the worst delay).
  LossSummary loss_summary(const LossConfig& loss, NodeKey from, NodeKey to,
                           Slot worst_delay) const;

  /// The startup fold alone, for reliable runs observed with a continuity
  /// recorder (ObserverSpec::continuity on a lossless pipeline). Requires
  /// the continuity recorder.
  StartupSummary startup_summary(const policy::StartupPolicy& startup,
                                 Slot fixed_start, NodeKey from, NodeKey to,
                                 Slot worst_delay) const;

  ObserverStack& observers() { return observers_; }
  const ObserverStack& observers() const { return observers_; }
  sim::Engine& engine() { return engine_; }
  const util::BudgetLedger& ledger() const { return ledger_; }

  /// Last slot simulated (horizon + drained slots).
  Slot end() const { return end_; }
  Slot drained() const { return drained_; }

 private:
  /// Declared first: the engine and the observers charge it, so it must
  /// outlive both.
  util::BudgetLedger ledger_;
  scale::ScaleOptions scale_options_;
  sim::Engine engine_;
  ObserverStack observers_;
  loss::RecoveryProtocol* recovery_;
  PacketId window_;
  Slot end_ = 0;
  Slot drained_ = 0;
};

}  // namespace streamcast::core
