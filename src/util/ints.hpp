// Small integer helpers used throughout the library.
//
// Everything here is constexpr and header-only: these functions sit on the
// hot path of schedule generation (millions of calls in the larger sweeps),
// so they must inline away.
#pragma once

#include <cassert>
#include <cstdint>
#include <numeric>

namespace streamcast::util {

/// Ceiling division for non-negative integers: ceil(a / b).
constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  assert(b > 0);
  assert(a >= 0);
  return (a + b - 1) / b;
}

/// floor(log2(x)) for x >= 1.
constexpr int floor_log2(std::uint64_t x) {
  assert(x >= 1);
  int lg = 0;
  while (x >>= 1) ++lg;
  return lg;
}

/// ceil(log2(x)) for x >= 1.
constexpr int ceil_log2(std::uint64_t x) {
  assert(x >= 1);
  const int f = floor_log2(x);
  return (std::uint64_t{1} << f) == x ? f : f + 1;
}

/// Integer exponentiation base^e (no overflow checking; callers stay within
/// the simulation scale of ~2^40).
constexpr std::int64_t ipow(std::int64_t base, int e) {
  assert(e >= 0);
  std::int64_t r = 1;
  while (e-- > 0) r *= base;
  return r;
}

/// Smallest h >= 0 with base^h >= x, i.e. ceil(log_base(x)) for x >= 1.
constexpr int ceil_log(std::int64_t base, std::int64_t x) {
  assert(base >= 2);
  assert(x >= 1);
  int h = 0;
  std::int64_t p = 1;
  while (p < x) {
    p *= base;
    ++h;
  }
  return h;
}

/// True mathematical modulus: result in [0, m) even for negative a.
constexpr std::int64_t mod_floor(std::int64_t a, std::int64_t m) {
  assert(m > 0);
  const std::int64_t r = a % m;
  return r < 0 ? r + m : r;
}

/// Number of nodes of a complete d-ary tree of height h (levels 1..h below
/// the root, the root itself excluded): d + d^2 + ... + d^h.
constexpr std::int64_t complete_dary_size(int d, int h) {
  assert(d >= 2);
  assert(h >= 0);
  std::int64_t total = 0;
  std::int64_t level = 1;
  for (int i = 1; i <= h; ++i) {
    level *= d;
    total += level;
  }
  return total;
}

}  // namespace streamcast::util
