// Minimal ASCII table / CSV emitters for the benchmark harness.
//
// Every experiment binary prints its results in two forms: an aligned ASCII
// table (for the console) and, optionally, CSV (for replotting). Keeping the
// formatting in one place guarantees all benches read alike.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace streamcast::util {

/// Column-aligned text table. Cells are strings; numeric callers format via
/// the convenience `cell()` overloads so precision is uniform.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> row);

  /// Renders with single-space-padded columns and a rule under the header.
  void print(std::ostream& os) const;

  /// Renders as RFC-4180-ish CSV (no quoting needed: our cells never contain
  /// commas or newlines, enforced by an assertion).
  void print_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Uniform numeric cell formatting: integers verbatim, doubles with
/// `precision` significant decimals, trailing zeros trimmed.
std::string cell(std::int64_t v);
std::string cell(std::uint64_t v);
std::string cell(int v);
std::string cell(double v, int precision = 3);

}  // namespace streamcast::util
