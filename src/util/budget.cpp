#include "src/util/budget.hpp"

namespace streamcast::util {

namespace {

std::string format_message(std::string_view component, std::size_t requested,
                           std::size_t used, std::size_t limit) {
  std::string msg = "memory budget exceeded: ";
  msg += component;
  msg += " needs " + std::to_string(requested) + " B with " +
         std::to_string(used) + " B already charged (budget " +
         std::to_string(limit) + " B)";
  return msg;
}

}  // namespace

BudgetExceeded::BudgetExceeded(std::string_view component,
                               std::size_t requested, std::size_t used,
                               std::size_t limit)
    : std::runtime_error(format_message(component, requested, used, limit)),
      component_(component),
      requested_(requested),
      used_(used),
      limit_(limit) {}

void BudgetLedger::charge(std::string_view component, std::size_t bytes) {
  if (bytes > limit_ - used_) {  // used_ <= limit_ always, so no underflow
    throw BudgetExceeded(component, bytes, used_, limit_);
  }
  used_ += bytes;
  if (used_ > peak_) peak_ = used_;
}

void BudgetLedger::release(std::size_t bytes) {
  used_ = bytes > used_ ? 0 : used_ - bytes;
}

}  // namespace streamcast::util
