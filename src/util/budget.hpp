// Explicit memory budgets for the million-node scale path (DESIGN.md §11).
//
// Large-N runs must fail fast with a structured error instead of OOM-killing
// the process: every subsystem that allocates O(N) or O(N*W) state at scale
// (the engine's flat packet bitmaps, the scale recorders' arrival deltas,
// the quantile sketches) charges a shared BudgetLedger before allocating.
// The ledger throws BudgetExceeded — carrying the component name and the
// exact byte counts — the moment a charge would cross the caller's ceiling.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>

namespace streamcast::util {

/// Caller-declared ceiling on the bytes a run may allocate for per-node
/// state. The default leaves every historical configuration untouched while
/// still turning a runaway allocation into a structured error.
struct MemoryBudget {
  std::size_t bytes = std::size_t{1} << 31;  // 2 GiB
};

/// Thrown when a charge would exceed the budget. Structured: the failing
/// component and the exact requested/used/limit byte counts are preserved so
/// callers can report (or raise the budget) without parsing the message.
class BudgetExceeded : public std::runtime_error {
 public:
  BudgetExceeded(std::string_view component, std::size_t requested,
                 std::size_t used, std::size_t limit);

  const std::string& component() const { return component_; }
  std::size_t requested() const { return requested_; }
  std::size_t used() const { return used_; }
  std::size_t limit() const { return limit_; }

 private:
  std::string component_;
  std::size_t requested_ = 0;
  std::size_t used_ = 0;
  std::size_t limit_ = 0;
};

/// Running account of scale-path allocations against one MemoryBudget.
/// charge() throws before the allocation happens; release() credits bytes
/// back when a structure is re-laid-out (the peak watermark keeps the true
/// high-water figure for reports).
class BudgetLedger {
 public:
  explicit BudgetLedger(MemoryBudget budget) : limit_(budget.bytes) {}

  /// Accounts `bytes` to `component`; throws BudgetExceeded (and charges
  /// nothing) if the total would exceed the budget.
  void charge(std::string_view component, std::size_t bytes);

  /// Credits bytes back (freed or superseded allocations). Clamped at zero.
  void release(std::size_t bytes);

  std::size_t used() const { return used_; }
  /// High-water mark of used() over the ledger's lifetime.
  std::size_t peak() const { return peak_; }
  std::size_t limit() const { return limit_; }

 private:
  std::size_t limit_ = 0;
  std::size_t used_ = 0;
  std::size_t peak_ = 0;
};

}  // namespace streamcast::util
