#include "src/util/arena.hpp"

#include <algorithm>
#include <cassert>

namespace streamcast::util {

Arena::Arena(BudgetLedger* ledger, const char* component,
             std::size_t chunk_bytes)
    : ledger_(ledger),
      component_(component),
      chunk_bytes_(std::max<std::size_t>(chunk_bytes, 256)) {}

Arena::~Arena() {
  if (ledger_ != nullptr) {
    ledger_->release(static_cast<std::size_t>(bytes_reserved_));
  }
}

Arena::Chunk& Arena::grow(std::size_t min_bytes) {
  const std::size_t size = std::max(chunk_bytes_, min_bytes);
  // Charge before reserving: a budget overrun throws here, with nothing
  // allocated and the ledger unchanged.
  if (ledger_ != nullptr) ledger_->charge(component_, size);
  Chunk chunk;
  chunk.data = std::make_unique<std::byte[]>(size);
  chunk.size = size;
  bytes_reserved_ += static_cast<std::int64_t>(size);
  chunks_.push_back(std::move(chunk));
  return chunks_.back();
}

void* Arena::allocate(std::size_t bytes, std::size_t alignment) {
  assert(alignment != 0 && (alignment & (alignment - 1)) == 0);
  if (bytes == 0) bytes = 1;
  Chunk* chunk = chunks_.empty() ? nullptr : &chunks_.back();
  std::size_t aligned = 0;
  if (chunk != nullptr) {
    aligned = (chunk->used + alignment - 1) & ~(alignment - 1);
    if (aligned + bytes > chunk->size) chunk = nullptr;
  }
  if (chunk == nullptr) {
    // operator new[] aligns chunk starts to at least alignof(max_align_t),
    // which covers every alignment a container element needs.
    chunk = &grow(bytes + alignment);
    aligned = (chunk->used + alignment - 1) & ~(alignment - 1);
  }
  void* p = chunk->data.get() + aligned;
  ++allocations_;
  bytes_served_ += static_cast<std::int64_t>(aligned - chunk->used + bytes);
  chunk->used = aligned + bytes;
  return p;
}

}  // namespace streamcast::util
