// ASCII rendering of rooted trees, used by the figure-reproduction benches
// (Figures 1 and 3 of the paper are tree diagrams).
#pragma once

#include <functional>
#include <string>
#include <vector>

namespace streamcast::util {

/// A generic rooted tree given as a parent array plus node labels.
/// `parent[i] == -1` marks the root (exactly one). Children print in index
/// order. The renderer produces the familiar `+--` box-drawing layout:
///
///   S
///   +-- 1
///   |   +-- 4
///   +-- 2
///
/// Returns the rendition as a single string (one trailing newline).
std::string render_tree(const std::vector<int>& parent,
                        const std::function<std::string(int)>& label);

/// Renders one BFS level per line: "S | 1 2 3 | 4 5 ... | ...", which is how
/// the paper's Figure 3 lays its trees out.
std::string render_levels(const std::vector<int>& parent,
                          const std::function<std::string(int)>& label);

}  // namespace streamcast::util
