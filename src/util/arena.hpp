// Bump-pointer arena allocator for the engine hot path (DESIGN.md §14).
//
// The slot engine's in-flight ring churns many small, same-lifetime vectors;
// the general-purpose heap pays lock and metadata costs for every one of
// them and scatters buckets across the address space. An Arena hands out
// aligned slices of large chunks with a single pointer bump, never frees
// individually (memory is reclaimed when the arena dies), and charges every
// chunk it reserves against the optional util::BudgetLedger *before*
// allocating — so an oversized world still fails fast with BudgetExceeded
// instead of OOM-ing the host.
//
// Sharded multicluster execution gives each shard's engine its own Arena:
// allocation is thread-local by construction, with zero cross-shard
// contention and no allocator locks on the pump.
//
// ArenaAllocator<T> adapts the arena to the std allocator interface so
// standard containers (ArenaVector<T>) can live on it. deallocate() is a
// no-op by design: a container regrow abandons its old block inside the
// arena, which is bounded (geometric growth) and reported via the
// bytes_served() counter surfaced in sim::EngineStats.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/util/budget.hpp"

namespace streamcast::util {

class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = std::size_t{64} << 10;

  /// Chunks are charged to `ledger` (when non-null) under `component`
  /// before they are reserved; the ledger must outlive the arena.
  explicit Arena(BudgetLedger* ledger = nullptr,
                 const char* component = "util/arena",
                 std::size_t chunk_bytes = kDefaultChunkBytes);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// An aligned block of `bytes`; alignment must be a power of two. Blocks
  /// larger than the chunk size get a dedicated chunk.
  void* allocate(std::size_t bytes, std::size_t alignment);

  /// Total calls into allocate().
  std::int64_t allocations() const { return allocations_; }
  /// Bytes handed out (alignment padding included).
  std::int64_t bytes_served() const { return bytes_served_; }
  /// Bytes reserved from the system (and charged to the ledger).
  std::int64_t bytes_reserved() const { return bytes_reserved_; }
  std::int64_t chunks() const {
    return static_cast<std::int64_t>(chunks_.size());
  }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  Chunk& grow(std::size_t min_bytes);

  BudgetLedger* ledger_;
  const char* component_;
  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::int64_t allocations_ = 0;
  std::int64_t bytes_served_ = 0;
  std::int64_t bytes_reserved_ = 0;
};

/// std-compatible allocator view of an Arena. Equality compares the arena:
/// containers on the same arena may exchange memory, others may not.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena& arena) : arena_(&arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  /// Bump arena: individual frees are no-ops; the arena reclaims en masse.
  void deallocate(T*, std::size_t) {}

  Arena* arena() const { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const {
    return arena_ == other.arena();
  }

 private:
  Arena* arena_;
};

template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace streamcast::util
