#include "src/util/table.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <ostream>

namespace streamcast::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  assert(!header_.empty());
}

void Table::add_row(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << "  ";
      os << row[c];
      for (std::size_t pad = row[c].size(); pad < width[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      assert(row[c].find_first_of(",\"\n") == std::string::npos);
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string cell(std::int64_t v) { return std::to_string(v); }
std::string cell(std::uint64_t v) { return std::to_string(v); }
std::string cell(int v) { return std::to_string(v); }

std::string cell(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  std::string s{buf};
  if (s.find('.') != std::string::npos) {
    while (s.back() == '0') s.pop_back();
    if (s.back() == '.') s.pop_back();
  }
  return s;
}

}  // namespace streamcast::util
