#include "src/util/ascii_tree.hpp"

#include <cassert>
#include <queue>
#include <sstream>

namespace streamcast::util {

namespace {

std::vector<std::vector<int>> children_of(const std::vector<int>& parent,
                                          int* root_out) {
  std::vector<std::vector<int>> children(parent.size());
  int root = -1;
  for (std::size_t i = 0; i < parent.size(); ++i) {
    if (parent[i] < 0) {
      assert(root == -1 && "exactly one root expected");
      root = static_cast<int>(i);
    } else {
      assert(static_cast<std::size_t>(parent[i]) < parent.size());
      children[static_cast<std::size_t>(parent[i])].push_back(
          static_cast<int>(i));
    }
  }
  assert(root >= 0 && "tree must have a root");
  *root_out = root;
  return children;
}

void render_subtree(int node, const std::vector<std::vector<int>>& children,
                    const std::function<std::string(int)>& label,
                    const std::string& prefix, bool is_last, bool is_root,
                    std::ostringstream& out) {
  if (is_root) {
    out << label(node) << '\n';
  } else {
    out << prefix << (is_last ? "`-- " : "+-- ") << label(node) << '\n';
  }
  const auto& kids = children[static_cast<std::size_t>(node)];
  for (std::size_t i = 0; i < kids.size(); ++i) {
    const std::string child_prefix =
        is_root ? "" : prefix + (is_last ? "    " : "|   ");
    render_subtree(kids[i], children, label, child_prefix,
                   i + 1 == kids.size(), false, out);
  }
}

}  // namespace

std::string render_tree(const std::vector<int>& parent,
                        const std::function<std::string(int)>& label) {
  int root = -1;
  const auto children = children_of(parent, &root);
  std::ostringstream out;
  render_subtree(root, children, label, "", true, true, out);
  return out.str();
}

std::string render_levels(const std::vector<int>& parent,
                          const std::function<std::string(int)>& label) {
  int root = -1;
  const auto children = children_of(parent, &root);
  std::ostringstream out;
  std::vector<int> level{root};
  bool first_level = true;
  while (!level.empty()) {
    if (!first_level) out << " | ";
    first_level = false;
    std::vector<int> next;
    for (std::size_t i = 0; i < level.size(); ++i) {
      if (i) out << ' ';
      out << label(level[i]);
      const auto& kids = children[static_cast<std::size_t>(level[i])];
      next.insert(next.end(), kids.begin(), kids.end());
    }
    level = std::move(next);
  }
  out << '\n';
  return out.str();
}

}  // namespace streamcast::util
