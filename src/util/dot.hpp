// Graphviz DOT export for overlays — lets users inspect the constructed
// trees/cubes with standard tooling (`dot -Tsvg`).
#pragma once

#include <functional>
#include <string>
#include <vector>

namespace streamcast::util {

/// Renders a parent-array tree (parent[i] == -1 marks the root) as a DOT
/// digraph named `name`, edges parent -> child, labels via `label`.
std::string tree_to_dot(const std::string& name,
                        const std::vector<int>& parent,
                        const std::function<std::string(int)>& label);

/// Renders several trees as one DOT file with a subgraph per tree (shared
/// node identities get per-tree suffixes so layouts stay separate).
std::string forest_to_dot(const std::string& name,
                          const std::vector<std::vector<int>>& parents,
                          const std::function<std::string(int)>& label);

}  // namespace streamcast::util
