#include "src/util/dot.hpp"

#include <cassert>
#include <sstream>

namespace streamcast::util {

namespace {

void emit_edges(std::ostringstream& out, const std::vector<int>& parent,
                const std::function<std::string(int)>& label,
                const std::string& prefix) {
  for (std::size_t i = 0; i < parent.size(); ++i) {
    out << "  \"" << prefix << i << "\" [label=\""
        << label(static_cast<int>(i)) << "\"];\n";
  }
  for (std::size_t i = 0; i < parent.size(); ++i) {
    if (parent[i] >= 0) {
      out << "  \"" << prefix << parent[i] << "\" -> \"" << prefix << i
          << "\";\n";
    }
  }
}

}  // namespace

std::string tree_to_dot(const std::string& name,
                        const std::vector<int>& parent,
                        const std::function<std::string(int)>& label) {
  std::ostringstream out;
  out << "digraph \"" << name << "\" {\n  rankdir=TB;\n"
      << "  node [shape=circle, fontsize=10];\n";
  emit_edges(out, parent, label, "");
  out << "}\n";
  return out.str();
}

std::string forest_to_dot(const std::string& name,
                          const std::vector<std::vector<int>>& parents,
                          const std::function<std::string(int)>& label) {
  std::ostringstream out;
  out << "digraph \"" << name << "\" {\n  rankdir=TB;\n"
      << "  node [shape=circle, fontsize=10];\n";
  for (std::size_t k = 0; k < parents.size(); ++k) {
    out << "  subgraph cluster_T" << k << " {\n    label=\"T_" << k
        << "\";\n";
    std::ostringstream inner;
    emit_edges(inner, parents[k], label, "t" + std::to_string(k) + "_");
    // Indent the subgraph body for readability.
    std::istringstream lines(inner.str());
    std::string line;
    while (std::getline(lines, line)) out << "  " << line << '\n';
    out << "  }\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace streamcast::util
