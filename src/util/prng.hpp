// Deterministic PRNG for workload generation.
//
// Experiments must be reproducible bit-for-bit across runs and platforms, so
// we ship our own xoshiro256** instead of relying on std::mt19937 parameter
// quirks or (worse) std::random_device. Header-only; trivially copyable so a
// generator can be forked per experiment cell.
#pragma once

#include <cassert>
#include <cstdint>
#include <limits>

namespace streamcast::util {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64.
class Prng {
 public:
  explicit constexpr Prng(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the 256-bit state; guarantees a
    // non-zero state for every seed, which xoshiro requires.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  constexpr std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) via classic modulo rejection (portable —
  /// no 128-bit arithmetic). The rejection zone is < bound/2^64, so the loop
  /// essentially never iterates for our workload-sized bounds.
  constexpr std::uint64_t below(std::uint64_t bound) {
    assert(bound > 0);
    const std::uint64_t limit =
        std::numeric_limits<std::uint64_t>::max() -
        std::numeric_limits<std::uint64_t>::max() % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r < limit || limit == 0) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::int64_t range(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  constexpr bool chance(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace streamcast::util
