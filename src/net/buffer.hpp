// Receiver-side playback buffer (§2.2): packets may arrive out of order but
// must be played in order at one packet per slot.
//
// This is the online model used by the examples and the churn experiments;
// the metrics module recomputes the same quantities post-hoc from arrival
// matrices, and the two are cross-checked in tests.
#pragma once

#include <cstdint>
#include <set>

#include "src/sim/packet.hpp"

namespace streamcast::net {

using sim::PacketId;
using sim::Slot;

/// Playback starts at `start_slot`: packet j is due in slot `start_slot + j`.
/// A packet received in its due slot still plays on time (the paper's node 1
/// plays packet 2 in the slot after receiving packets out of order; see
/// DESIGN.md §3 for the convention). A packet missing in its due slot counts
/// as one hiccup and is skipped — playback does not stall, matching how the
/// churn evaluation counts affected packets.
class PlaybackBuffer {
 public:
  /// Playback begins in `start_slot` with `first_packet` (0 for a viewer
  /// present from the beginning; a mid-stream joiner starts at the packet
  /// the overlay is currently distributing). Packets below first_packet are
  /// counted as late/duplicate, never played.
  explicit PlaybackBuffer(Slot start_slot, PacketId first_packet = 0);

  /// Records receipt of packet p in slot t. Receiving a packet at or before
  /// the current playback point (too late, or duplicate) is counted but not
  /// stored.
  void on_receive(Slot t, PacketId p);

  /// Plays every packet due in slots (last_advanced, t]. Call with
  /// monotonically non-decreasing t; typically once per simulated slot after
  /// deliveries.
  void advance_to(Slot t);

  /// Packets currently held (received, not yet played).
  std::size_t occupancy() const { return held_.size(); }
  std::size_t max_occupancy() const { return max_occupancy_; }

  /// Packets that were not present in their due slot.
  std::int64_t hiccups() const { return hiccups_; }
  /// Packets that arrived after their due slot (subset of the hiccups that
  /// eventually showed up) plus duplicates.
  std::int64_t late_or_duplicate() const { return late_; }
  /// Packets played on time so far.
  std::int64_t played() const { return played_; }

  Slot start_slot() const { return start_; }
  PacketId next_due() const { return next_due_; }

 private:
  Slot start_;
  Slot clock_;          // last slot advanced through
  PacketId next_due_;
  std::set<PacketId> held_;
  std::size_t max_occupancy_ = 0;
  std::int64_t hiccups_ = 0;
  std::int64_t late_ = 0;
  std::int64_t played_ = 0;
};

}  // namespace streamcast::net
