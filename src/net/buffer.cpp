#include "src/net/buffer.hpp"

#include <algorithm>
#include <cassert>

namespace streamcast::net {

PlaybackBuffer::PlaybackBuffer(Slot start_slot, PacketId first_packet)
    : start_(start_slot), clock_(start_slot - 1), next_due_(first_packet) {}

void PlaybackBuffer::on_receive(Slot t, PacketId p) {
  assert(p >= 0);
  // The engine delivers all of slot t's packets before playback advances
  // through slot t, so a packet received in its due slot lands in held_
  // first and plays on time.
  (void)t;
  if (p < next_due_ || held_.contains(p)) {
    ++late_;
    return;
  }
  held_.insert(p);
  max_occupancy_ = std::max(max_occupancy_, held_.size());
}

void PlaybackBuffer::advance_to(Slot t) {
  // Slots before the playback start (clock_ begins at start_-1) are no-ops,
  // so callers may tick from any earlier slot.
  while (clock_ < t) {
    ++clock_;
    if (clock_ < start_) continue;
    // Packet due this slot.
    const PacketId due = next_due_++;
    auto it = held_.find(due);
    if (it != held_.end()) {
      held_.erase(it);
      ++played_;
    } else {
      ++hiccups_;
    }
  }
}

}  // namespace streamcast::net
