// Network model: who can talk to whom, how fast, and with what per-slot
// capacity. The paper's model (§1-2) is a complete graph per cluster with
// unit intra-cluster latency, latency T_c across clusters, and per-node
// send/receive capacities of one packet per slot except for super nodes.
#pragma once

#include <cstdint>
#include <vector>

#include "src/sim/packet.hpp"

namespace streamcast::net {

using sim::NodeKey;
using sim::Slot;

/// Abstract capacity/latency oracle consulted by the slot engine.
class Topology {
 public:
  virtual ~Topology() = default;

  /// Total number of node keys, source(s) included. Valid keys: [0, size()).
  virtual NodeKey size() const = 0;

  /// Slots a transmission occupies, >= 1. (1 means same-slot receipt.)
  virtual Slot latency(NodeKey from, NodeKey to) const = 0;

  /// Packets the node may originate per slot.
  virtual int send_capacity(NodeKey n) const = 0;

  /// Packets the node may receive per slot.
  virtual int recv_capacity(NodeKey n) const = 0;
};

/// Single cluster: key 0 is the source S (capacity `source_capacity`, the
/// paper's d), keys 1..n are homogeneous receivers with capacity
/// `peer_send_capacity` up / `recv_capacity` down (both default 1, the
/// paper's model), all pairwise latencies are T_i (default 1). The relaxed
/// capacities model the randomized-overlay regime (Kim–Srikant: in-degree d,
/// upload a constant factor above the stream rate — their theorems provision
/// rate (1-eps) against unit capacity; at the rate-1 boundary a swarm has
/// zero slack for an unlucky sender with nothing useful to offer, so the
/// random-regular scheme runs receivers at upload 2).
class UniformCluster final : public Topology {
 public:
  UniformCluster(NodeKey n_receivers, int source_capacity, Slot t_i = 1,
                 int recv_capacity = 1, int peer_send_capacity = 1);

  NodeKey size() const override { return n_receivers_ + 1; }
  Slot latency(NodeKey from, NodeKey to) const override;
  int send_capacity(NodeKey n) const override;
  int recv_capacity(NodeKey n) const override;

  NodeKey receivers() const { return n_receivers_; }
  int source_capacity() const { return source_capacity_; }

 private:
  NodeKey n_receivers_;
  int source_capacity_;
  Slot t_i_;
  int recv_capacity_;
  int peer_send_capacity_;
};

/// Multi-cluster world for the super-tree scheme (§2.1).
///
/// Key layout (constructed by ClusteredTopology itself):
///   0                     — global source S (capacity D)
///   then per cluster i:   S_i (capacity D), S'_i (capacity d),
///                         followed by the cluster's n_i plain receivers.
/// Latency is t_i within a cluster (the global source belongs to cluster 0 by
/// convention, matching the paper's figure where S sits beside S_1) and t_c
/// between clusters.
class ClusteredTopology final : public Topology {
 public:
  struct ClusterSpec {
    NodeKey n_receivers = 0;
  };

  ClusteredTopology(std::vector<ClusterSpec> clusters, int big_d, int small_d,
                    Slot t_c, Slot t_i = 1);

  NodeKey size() const override { return total_; }
  Slot latency(NodeKey from, NodeKey to) const override;
  int send_capacity(NodeKey n) const override;
  int recv_capacity(NodeKey n) const override;

  int clusters() const { return static_cast<int>(specs_.size()); }
  NodeKey source() const { return 0; }
  NodeKey super_node(int cluster) const;        // S_i
  NodeKey local_root(int cluster) const;        // S'_i
  NodeKey receiver(int cluster, NodeKey local_id) const;  // local_id in 1..n_i
  NodeKey cluster_receivers(int cluster) const;
  int cluster_of(NodeKey n) const;
  Slot t_c() const { return t_c_; }
  Slot t_i() const { return t_i_; }
  int big_d() const { return big_d_; }
  int small_d() const { return small_d_; }

 private:
  std::vector<ClusterSpec> specs_;
  std::vector<NodeKey> cluster_base_;  // key of S_i for each cluster
  std::vector<int> owner_;             // cluster index per key
  NodeKey total_ = 0;
  int big_d_;
  int small_d_;
  Slot t_c_;
  Slot t_i_;
};

/// Capacity-headroom decorator for lossy runs. The paper's schedules consume
/// every node's capacity exactly, so an erasure channel leaves zero slack for
/// repair traffic: a stream at rate 1 into a receive capacity of 1 can never
/// also carry retransmissions or parity. ProvisionedTopology grants each node
/// `extra_send` / `extra_recv` additional packets per slot on top of the base
/// topology — the provisioning cost of surviving loss, reported alongside the
/// delay and buffer costs by the loss benches. Latencies are unchanged, and a
/// lossless run never uses the headroom, so results at loss rate 0 are
/// bit-identical to the base topology.
class ProvisionedTopology final : public Topology {
 public:
  ProvisionedTopology(const Topology& base, int extra_send, int extra_recv);

  NodeKey size() const override { return base_.size(); }
  Slot latency(NodeKey from, NodeKey to) const override {
    return base_.latency(from, to);
  }
  int send_capacity(NodeKey n) const override {
    return base_.send_capacity(n) + extra_send_;
  }
  int recv_capacity(NodeKey n) const override {
    const int cap = base_.recv_capacity(n);
    // Nodes that cannot receive at all (sources) stay that way: repair
    // traffic must never flow "up" into the stream origin.
    return cap == 0 ? 0 : cap + extra_recv_;
  }

  const Topology& base() const { return base_; }

 private:
  const Topology& base_;
  int extra_send_;
  int extra_recv_;
};

}  // namespace streamcast::net
