#include "src/net/topology.hpp"

#include <cassert>
#include <stdexcept>

namespace streamcast::net {

UniformCluster::UniformCluster(NodeKey n_receivers, int source_capacity,
                               Slot t_i, int recv_capacity,
                               int peer_send_capacity)
    : n_receivers_(n_receivers),
      source_capacity_(source_capacity),
      t_i_(t_i),
      recv_capacity_(recv_capacity),
      peer_send_capacity_(peer_send_capacity) {
  if (n_receivers < 0) throw std::invalid_argument("negative receiver count");
  if (source_capacity < 1) throw std::invalid_argument("source capacity < 1");
  if (t_i < 1) throw std::invalid_argument("latency < 1");
  if (recv_capacity < 1) throw std::invalid_argument("recv capacity < 1");
  if (peer_send_capacity < 1) {
    throw std::invalid_argument("peer send capacity < 1");
  }
}

Slot UniformCluster::latency(NodeKey from, NodeKey to) const {
  assert(from >= 0 && from <= n_receivers_);
  assert(to >= 0 && to <= n_receivers_);
  (void)from;
  (void)to;
  return t_i_;
}

int UniformCluster::send_capacity(NodeKey n) const {
  return n == 0 ? source_capacity_ : peer_send_capacity_;
}

int UniformCluster::recv_capacity(NodeKey n) const {
  // The source never receives; giving it capacity 0 turns any protocol bug
  // that routes data back to S into a hard engine error.
  return n == 0 ? 0 : recv_capacity_;
}

ClusteredTopology::ClusteredTopology(std::vector<ClusterSpec> clusters,
                                     int big_d, int small_d, Slot t_c,
                                     Slot t_i)
    : specs_(std::move(clusters)),
      big_d_(big_d),
      small_d_(small_d),
      t_c_(t_c),
      t_i_(t_i) {
  if (specs_.empty()) throw std::invalid_argument("need >= 1 cluster");
  if (big_d_ < 3) throw std::invalid_argument("paper requires D >= 3");
  if (small_d_ < 1) throw std::invalid_argument("d < 1");
  if (t_c_ <= t_i_) throw std::invalid_argument("paper assumes T_c > T_i");
  NodeKey key = 1;  // key 0 = global source
  owner_.push_back(0);
  for (const auto& spec : specs_) {
    if (spec.n_receivers < 0) {
      throw std::invalid_argument("negative receiver count");
    }
    cluster_base_.push_back(key);
    const NodeKey span = 2 + spec.n_receivers;  // S_i, S'_i, receivers
    for (NodeKey i = 0; i < span; ++i) {
      owner_.push_back(static_cast<int>(cluster_base_.size()) - 1);
    }
    key += span;
  }
  total_ = key;
}

NodeKey ClusteredTopology::super_node(int cluster) const {
  assert(cluster >= 0 && cluster < clusters());
  return cluster_base_[static_cast<std::size_t>(cluster)];
}

NodeKey ClusteredTopology::local_root(int cluster) const {
  return super_node(cluster) + 1;
}

NodeKey ClusteredTopology::receiver(int cluster, NodeKey local_id) const {
  assert(local_id >= 1 &&
         local_id <= specs_[static_cast<std::size_t>(cluster)].n_receivers);
  return super_node(cluster) + 1 + local_id;
}

NodeKey ClusteredTopology::cluster_receivers(int cluster) const {
  return specs_[static_cast<std::size_t>(cluster)].n_receivers;
}

int ClusteredTopology::cluster_of(NodeKey n) const {
  assert(n >= 0 && n < total_);
  return owner_[static_cast<std::size_t>(n)];
}

Slot ClusteredTopology::latency(NodeKey from, NodeKey to) const {
  return cluster_of(from) == cluster_of(to) ? t_i_ : t_c_;
}

int ClusteredTopology::send_capacity(NodeKey n) const {
  if (n == 0) return big_d_;  // global source S has capacity D
  const int c = cluster_of(n);
  if (n == super_node(c)) return big_d_;   // S_i has the capacity of S
  if (n == local_root(c)) return small_d_; // S'_i has capacity d
  return 1;
}

int ClusteredTopology::recv_capacity(NodeKey n) const {
  return n == 0 ? 0 : 1;
}

ProvisionedTopology::ProvisionedTopology(const Topology& base, int extra_send,
                                         int extra_recv)
    : base_(base), extra_send_(extra_send), extra_recv_(extra_recv) {
  if (extra_send < 0 || extra_recv < 0) {
    throw std::invalid_argument("capacity headroom must be >= 0");
  }
}

}  // namespace streamcast::net
