#include "src/supertree/analysis.hpp"

#include <cmath>

#include "src/static/envelopes.hpp"

namespace streamcast::supertree {

int backbone_depth(int k_clusters, int big_d) {
  return build_backbone(k_clusters, big_d).max_depth();
}

double theorem1_bound(int k_clusters, int big_d, Slot t_c, Slot t_i, int d,
                      int h) {
  const double log_k = k_clusters == 1
                           ? 1.0
                           : std::log(static_cast<double>(k_clusters)) /
                                 std::log(static_cast<double>(big_d - 1));
  return static_cast<double>(t_c) * log_k +
         static_cast<double>(t_i) * d * (h - 1);
}

Slot structural_bound(int k_clusters, int big_d, Slot t_c, Slot t_i, int d,
                      NodeKey max_cluster_size) {
  // Packet j reaches the depth-L super node in slot j + L*T_c - 1 (each hop:
  // one relay slot folded into the T_c transit), its local root T_i later,
  // and the intra-cluster round-robin adds at most its worst-case delay plus
  // one extra round of residue alignment caused by the gate. The formula —
  // with envelope::backbone_depth standing in for the built backbone's
  // max_depth(), an equality tests/static_envelope_test.cpp pins — lives in
  // src/static so proofs.cpp can static_assert it over a (K, D, T_c) grid.
  return static_cast<Slot>(envelope::supertree_structural_bound(
      k_clusters, big_d, t_c, t_i, d, max_cluster_size));
}

Slot structural_bound_hypercube(int k_clusters, int big_d, Slot t_c, Slot t_i,
                                NodeKey max_cluster_size) {
  return static_cast<Slot>(envelope::supertree_structural_bound_hypercube(
      k_clusters, big_d, t_c, t_i, max_cluster_size));
}

}  // namespace streamcast::supertree
