#include "src/supertree/protocol.hpp"

#include <cassert>
#include <stdexcept>

namespace streamcast::supertree {

SuperTreeProtocol::SuperTreeProtocol(const net::ClusteredTopology& topology,
                                     IntraScheme scheme,
                                     multitree::StreamMode mode,
                                     ClusterRange range)
    : topology_(topology),
      backbone_(build_backbone(topology.clusters(), topology.big_d())),
      lo_(range.begin),
      hi_(range.end < 0 ? topology.clusters() : range.end) {
  if (lo_ < 0 || hi_ > topology.clusters() || lo_ >= hi_) {
    throw std::invalid_argument("cluster range out of bounds");
  }
  // Reserve up front: MultiTreeProtocol holds a reference to its cluster's
  // Forest, so ClusterState objects must never relocate after intra
  // construction.
  clusters_.reserve(static_cast<std::size_t>(hi_ - lo_));
  for (int c = lo_; c < hi_; ++c) {
    const NodeKey n = topology.cluster_receivers(c);
    if (n < 1) {
      throw std::invalid_argument("every cluster needs >= 1 receiver");
    }
    ClusterState state{
        .forest = multitree::build_greedy(n, topology.small_d()),
        .intra = nullptr,
        .super_received = -1,
        .super_forwarded = -1,
        .root_received = -1};
    clusters_.push_back(std::move(state));
    auto& slot = clusters_.back();
    const std::size_t index = clusters_.size() - 1;

    if (scheme == IntraScheme::kMultiTree) {
      std::vector<sim::NodeKey> key_map(static_cast<std::size_t>(n) + 1);
      key_map[0] = topology.local_root(c);
      for (NodeKey x = 1; x <= n; ++x) {
        key_map[static_cast<std::size_t>(x)] = topology.receiver(c, x);
      }
      slot.intra = std::make_unique<multitree::MultiTreeProtocol>(
          slot.forest, mode,
          // S'_i may relay packet p in slot t once the backbone delivered
          // it in some earlier slot. `this` and clusters_ outlive intra.
          [this, index](PacketId p, Slot) {
            return clusters_[index].root_received >= p;
          },
          std::move(key_map));
    } else {
      // Hypercube chain over global keys, with the whole chain's clock
      // shifted by this cluster's static backbone offset: packet tau lands
      // at S'_i in slot tau + depth*T_c + T_i - 1, strictly before the
      // chain's slot-(offset + tau) injection.
      const Slot offset =
          backbone_.depth[static_cast<std::size_t>(c)] * topology.t_c() +
          topology.t_i();
      slot.intra = std::make_unique<hypercube::HypercubeProtocol>(
          std::vector<std::vector<hypercube::Segment>>{
              hypercube::decompose_chain(n, topology.receiver(c, 1),
                                         offset)},
          /*source_key=*/topology.local_root(c));
    }
  }
}

const multitree::Forest& SuperTreeProtocol::forest(int cluster) const {
  assert(cluster >= lo_ && cluster < hi_);
  return clusters_[static_cast<std::size_t>(cluster - lo_)].forest;
}

void SuperTreeProtocol::transmit(Slot t, std::vector<Tx>& out) {
  // Global source: packet t to every depth-1 super node (D sends). The
  // source node lives with cluster 0's owner; other shards route these
  // transmissions in at the epoch barrier.
  if (lo_ == 0) {
    for (int c = 0; c < backbone_.clusters(); ++c) {
      if (backbone_.parent[static_cast<std::size_t>(c)] == -1) {
        out.push_back(Tx{.from = topology_.source(),
                         .to = topology_.super_node(c),
                         .packet = t,
                         .tag = -1});
      }
    }
  }
  // Super nodes: relay the next pending packet (one per slot) to backbone
  // children (T_c) and the local root (T_i) — at most D sends.
  for (int c = lo_; c < hi_; ++c) {
    auto& st = clusters_[static_cast<std::size_t>(c - lo_)];
    if (st.super_forwarded >= st.super_received) continue;
    const PacketId p = ++st.super_forwarded;
    for (const int child : backbone_.kids[static_cast<std::size_t>(c)]) {
      out.push_back(Tx{.from = topology_.super_node(c),
                       .to = topology_.super_node(child),
                       .packet = p,
                       .tag = -1});
    }
    out.push_back(Tx{.from = topology_.super_node(c),
                     .to = topology_.local_root(c),
                     .packet = p,
                     .tag = -1});
  }
  // Intra-cluster schemes.
  for (auto& st : clusters_) st.intra->transmit(t, out);
}

void SuperTreeProtocol::deliver(Slot t, const Tx& tx) {
  const int c = topology_.cluster_of(tx.to);
  assert(c >= lo_ && c < hi_ && "delivery routed to the wrong shard");
  auto& st = clusters_[static_cast<std::size_t>(c - lo_)];
  if (tx.to == topology_.super_node(c)) {
    assert(tx.packet == st.super_received + 1 && "backbone must be in order");
    st.super_received = tx.packet;
    return;
  }
  if (tx.to == topology_.local_root(c)) {
    assert(tx.packet == st.root_received + 1);
    st.root_received = tx.packet;
    return;
  }
  st.intra->deliver(t, tx);
}

}  // namespace streamcast::supertree
