// Theorem 1: worst-case end-to-end playback delay of the composed scheme is
// on the order of  T_c * log_{D-1}(K) + T_i * d * (h - 1).
#pragma once

#include "src/supertree/backbone.hpp"

namespace streamcast::supertree {

/// Backbone hop count to the deepest super node (exact, from construction).
int backbone_depth(int k_clusters, int big_d);

/// The paper's closed form T_c * log_{D-1}(K) + T_i * d(h-1) evaluated
/// literally (real-valued log; h is the intra-cluster tree height).
double theorem1_bound(int k_clusters, int big_d, Slot t_c, Slot t_i, int d,
                      int h);

/// Structural upper bound on the measured worst-case delay under DESIGN.md
/// conventions: the deepest S'_i has every packet by
///   depth * T_c + T_i  slots after S sent it (backbone pipeline, relay
/// latency 1 per super), plus the intra-cluster worst delay h*d - 1 and one
/// slot of relay alignment.
Slot structural_bound(int k_clusters, int big_d, Slot t_c, Slot t_i, int d,
                      NodeKey max_cluster_size);

/// Same, for the hypercube-in-clusters composition: every member of a
/// cluster at backbone depth L plays at its chain's synchronized delay
/// shifted by the cluster offset L*T_c + T_i. (The chain's own clock is
/// started at exactly that offset, so this is an equality for the deepest
/// cluster's worst member, not just a bound.)
Slot structural_bound_hypercube(int k_clusters, int big_d, Slot t_c, Slot t_i,
                                NodeKey max_cluster_size);

}  // namespace streamcast::supertree
