// End-to-end cross-cluster streaming (§2.1 + §2.2/§3 composed).
//
// The global source S streams one packet per slot to each of its D backbone
// children (clusters at depth 1). Every super node S_i relays each packet,
// in order and one per slot, to its backbone children (latency T_c) and to
// its local root S'_i (latency T_i). Each S'_i drives its cluster's
// intra-cluster scheme:
//  * kMultiTree  — the interior-disjoint forest, gated on what the backbone
//    has actually delivered (§2).
//  * kHypercube  — the §3 chain, "easily adapted to streaming over multiple
//    clusters, using the tree τ": the chain's local clock starts at the
//    cluster's static backbone offset depth*T_c + T_i, from which point
//    every injection's packet has provably arrived at S'_i.
//
// Sharded execution (DESIGN.md §14): a protocol instance can own just a
// contiguous half-open range of clusters. It then emits transmissions only
// for nodes inside its range (the global source belongs to the instance
// owning cluster 0) and accepts deliveries only for them; the sharded
// runner routes everything else across the epoch barrier. The default range
// is all clusters — the serial pump unchanged.
#pragma once

#include <memory>
#include <vector>

#include "src/hypercube/protocol.hpp"
#include "src/multitree/greedy.hpp"
#include "src/multitree/protocol.hpp"
#include "src/net/topology.hpp"
#include "src/sim/protocol.hpp"
#include "src/supertree/backbone.hpp"

namespace streamcast::supertree {

using sim::PacketId;
using sim::Tx;

enum class IntraScheme { kMultiTree, kHypercube };

/// Half-open cluster range a protocol instance owns. `end == -1` means
/// "through the last cluster" — the whole topology by default.
struct ClusterRange {
  int begin = 0;
  int end = -1;
};

class SuperTreeProtocol final : public sim::Protocol {
 public:
  /// The topology fixes K, D, d, T_c and the per-cluster sizes; multi-tree
  /// forests are built with the greedy construction, hypercube clusters
  /// with the single-chain decomposition. `mode` is forwarded to the
  /// multi-tree intra protocols (kLivePipelined gates injections on packet
  /// availability at the global clock; hypercube clusters ignore it).
  explicit SuperTreeProtocol(
      const net::ClusteredTopology& topology,
      IntraScheme scheme = IntraScheme::kMultiTree,
      multitree::StreamMode mode = multitree::StreamMode::kPreRecorded,
      ClusterRange range = {});

  void transmit(Slot t, std::vector<Tx>& out) override;
  void deliver(Slot t, const Tx& tx) override;

  const Backbone& backbone() const { return backbone_; }
  /// The cluster's forest (meaningful for kMultiTree; built either way).
  /// `cluster` must lie in the owned range.
  const multitree::Forest& forest(int cluster) const;

 private:
  struct ClusterState {
    multitree::Forest forest;
    std::unique_ptr<sim::Protocol> intra;
    PacketId super_received = -1;   // newest packet at S_i (in order)
    PacketId super_forwarded = -1;  // newest packet S_i pushed downstream
    PacketId root_received = -1;    // newest packet at S'_i
  };

  const net::ClusteredTopology& topology_;
  Backbone backbone_;
  int lo_ = 0;  // first owned cluster
  int hi_ = 0;  // one past the last owned cluster
  std::vector<ClusterState> clusters_;  // owned range only, index c - lo_
};

}  // namespace streamcast::supertree
