// Construction of the super-tree τ over clusters (§2.1).
//
// Step 1: the cluster super nodes S_1..S_K form a tree rooted at the global
// source S. S has degree D; every other interior node has degree at most
// D-1 (one edge to its parent plus up to D-1 children... the paper counts
// total degree, so interior supers take D-1 children while S takes D), kept
// tight: the tree is filled in BFS order so at most one interior node is
// short of children, in the next-to-last layer.
// Step 2: S'_i hangs off S_i.
// Step 3: each cluster runs the intra-cluster interior-disjoint forest
// rooted at S'_i (composed in supertree/protocol.hpp).
#pragma once

#include <vector>

#include "src/sim/packet.hpp"

namespace streamcast::supertree {

using sim::NodeKey;
using sim::Slot;

/// Backbone over K clusters: parent[i] is the cluster index feeding cluster
/// i, or -1 when cluster i is fed directly by the global source S.
struct Backbone {
  std::vector<int> parent;             // [cluster] -> upstream cluster or -1
  std::vector<std::vector<int>> kids;  // [cluster] -> downstream clusters
  std::vector<int> depth;              // hops from S to S_i (>= 1)

  int clusters() const { return static_cast<int>(parent.size()); }
  int max_depth() const;
};

/// Builds the BFS-tight backbone for K clusters with source degree big_d
/// (D >= 3) and interior degree big_d - 1.
Backbone build_backbone(int k_clusters, int big_d);

}  // namespace streamcast::supertree
