#include "src/supertree/backbone.hpp"

#include <algorithm>
#include <stdexcept>

namespace streamcast::supertree {

int Backbone::max_depth() const {
  return *std::max_element(depth.begin(), depth.end());
}

Backbone build_backbone(int k_clusters, int big_d) {
  if (k_clusters < 1) throw std::invalid_argument("need >= 1 cluster");
  if (big_d < 3) throw std::invalid_argument("paper requires D >= 3");
  Backbone bb;
  bb.parent.assign(static_cast<std::size_t>(k_clusters), -1);
  bb.kids.assign(static_cast<std::size_t>(k_clusters), {});
  bb.depth.assign(static_cast<std::size_t>(k_clusters), 1);

  // BFS fill: S takes the first D clusters; every subsequent cluster hangs
  // off the earliest super node that still has a free child slot (D-1 per
  // interior super). This keeps the tree tight: only the last-filled super
  // can be short of children.
  int next_parent = 0;  // index of the super currently taking children
  for (int c = 0; c < k_clusters; ++c) {
    if (c < big_d) continue;  // fed directly by S
    while (static_cast<int>(
               bb.kids[static_cast<std::size_t>(next_parent)].size()) ==
           big_d - 1) {
      ++next_parent;
    }
    bb.parent[static_cast<std::size_t>(c)] = next_parent;
    bb.kids[static_cast<std::size_t>(next_parent)].push_back(c);
    bb.depth[static_cast<std::size_t>(c)] =
        bb.depth[static_cast<std::size_t>(next_parent)] + 1;
  }
  return bb;
}

}  // namespace streamcast::supertree
