#include "src/dyntree/forest.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace streamcast::dyntree {

DynamicForest::DynamicForest(int d, std::uint64_t seed)
    : d_(d), prng_(seed) {
  if (d < 1) throw std::invalid_argument("dynamic-trees needs d >= 1");
  nodes_.push_back(Node{true, -1, {}});  // the source
  kids_.resize(static_cast<std::size_t>(d));
  for (auto& tree : kids_) tree.emplace_back();  // source's child lists
}

bool DynamicForest::live(NodeKey key) const {
  return key >= 0 && key < key_end() &&
         nodes_[static_cast<std::size_t>(key)].live;
}

int DynamicForest::internal_tree(NodeKey key) const {
  return nodes_[static_cast<std::size_t>(key)].internal_tree;
}

NodeKey DynamicForest::parent(int tree, NodeKey key) const {
  const auto& p = nodes_[static_cast<std::size_t>(key)].parent;
  return p.empty() ? sim::kNoNode : p[static_cast<std::size_t>(tree)];
}

const std::vector<NodeKey>& DynamicForest::children(int tree,
                                                    NodeKey key) const {
  return kids_[static_cast<std::size_t>(tree)][static_cast<std::size_t>(key)];
}

int DynamicForest::depth(int tree, NodeKey key) const {
  // Mid-leave(), a not-yet-reattached orphan's chain ends at kNoNode
  // instead of the source; treat the detach point as the root then.
  int hops = 0;
  for (NodeKey at = key; at != 0 && at != sim::kNoNode;
       at = parent(tree, at)) {
    ++hops;
  }
  return hops;
}

int DynamicForest::height(int tree) const {
  int h = 0;
  for (NodeKey key = 1; key < key_end(); ++key) {
    if (live(key)) h = std::max(h, depth(tree, key));
  }
  return h;
}

int DynamicForest::seat_capacity(int tree, NodeKey key) const {
  if (key == 0) return d_;
  const auto& node = nodes_[static_cast<std::size_t>(key)];
  return node.live && node.internal_tree == tree ? d_ : 0;
}

int DynamicForest::spare_seats(int tree) const {
  int spares = 0;
  for (NodeKey key = 0; key < key_end(); ++key) {
    spares += std::max(
        0, seat_capacity(tree, key) -
               static_cast<int>(children(tree, key).size()));
  }
  return spares;
}

int DynamicForest::emergency_children() const {
  int over = 0;
  for (int k = 0; k < d_; ++k) {
    over += std::max(0, static_cast<int>(children(k, 0).size()) - d_);
  }
  return over;
}

bool DynamicForest::in_subtree(int tree, NodeKey key, NodeKey root) const {
  if (root == sim::kNoNode) return false;
  for (NodeKey at = key; at != sim::kNoNode; at = parent(tree, at)) {
    if (at == root) return true;
    if (at == 0) break;
  }
  return false;
}

NodeKey DynamicForest::shallowest_leaf(int tree, NodeKey exclude) {
  int best_depth = std::numeric_limits<int>::max();
  std::vector<NodeKey> best;
  for (NodeKey key = 1; key < key_end(); ++key) {
    if (!live(key) || internal_tree(key) == tree) continue;
    if (parent(tree, key) == sim::kNoNode) continue;
    if (in_subtree(tree, key, exclude)) continue;
    const int dep = depth(tree, key);
    if (dep < best_depth) {
      best_depth = dep;
      best.clear();
    }
    if (dep == best_depth) best.push_back(key);
  }
  if (best.empty()) return sim::kNoNode;
  return best[static_cast<std::size_t>(prng_.below(best.size()))];
}

NodeKey DynamicForest::find_seat(int tree, NodeKey exclude) {
  int best_depth = std::numeric_limits<int>::max();
  std::vector<NodeKey> best;
  for (NodeKey key = 0; key < key_end(); ++key) {
    if (seat_capacity(tree, key) <=
        static_cast<int>(children(tree, key).size())) {
      continue;
    }
    if (in_subtree(tree, key, exclude)) continue;
    const int dep = depth(tree, key);
    if (dep < best_depth) {
      best_depth = dep;
      best.clear();
    }
    if (dep == best_depth) best.push_back(key);
  }
  if (best.empty()) return sim::kNoNode;
  return best[static_cast<std::size_t>(prng_.below(best.size()))];
}

void DynamicForest::attach(int tree, NodeKey key, NodeKey under) {
  kids_[static_cast<std::size_t>(tree)][static_cast<std::size_t>(under)]
      .push_back(key);
  nodes_[static_cast<std::size_t>(key)]
      .parent[static_cast<std::size_t>(tree)] = under;
}

void DynamicForest::detach(int tree, NodeKey key) {
  auto& node = nodes_[static_cast<std::size_t>(key)];
  const NodeKey from = node.parent[static_cast<std::size_t>(tree)];
  if (from == sim::kNoNode) return;
  auto& siblings =
      kids_[static_cast<std::size_t>(tree)][static_cast<std::size_t>(from)];
  siblings.erase(std::find(siblings.begin(), siblings.end(), key));
  node.parent[static_cast<std::size_t>(tree)] = sim::kNoNode;
}

NodeKey DynamicForest::join() {
  const NodeKey key = key_end();
  // Internal where the forest is tightest: fewest spare seats, seeded
  // tie-break. The joiner's own d seats then open in that tree.
  int best_spares = std::numeric_limits<int>::max();
  std::vector<int> tied;
  for (int k = 0; k < d_; ++k) {
    const int s = spare_seats(k);
    if (s < best_spares) {
      best_spares = s;
      tied.clear();
    }
    if (s == best_spares) tied.push_back(k);
  }
  const int internal =
      tied[static_cast<std::size_t>(prng_.below(tied.size()))];

  nodes_.push_back(Node{
      true, internal,
      std::vector<NodeKey>(static_cast<std::size_t>(d_), sim::kNoNode)});
  for (auto& tree : kids_) tree.emplace_back();
  for (int k = 0; k < d_; ++k) {
    // The joiner's fresh seats are visible here, but it cannot parent
    // itself, so a tree whose only spare seats are the joiner's own falls
    // through to the emergency path.
    NodeKey seat = find_seat(k, key);
    if (k == internal) {
      // Swap rule: an internal belongs above the leaves. If a leaf of this
      // tree sits strictly shallower than the best spare seat, take its
      // position and re-seat the leaf (usually right under the joiner,
      // whose d seats just opened). Skipping this grows the interior as a
      // chain hanging off the previous internal — see ForestStats.
      const NodeKey leaf = shallowest_leaf(k, key);
      const int seat_depth = seat == sim::kNoNode
                                 ? std::numeric_limits<int>::max()
                                 : depth(k, seat) + 1;
      if (leaf != sim::kNoNode && depth(k, leaf) < seat_depth) {
        const NodeKey under = parent(k, leaf);
        detach(k, leaf);
        attach(k, key, under);
        NodeKey reseat = find_seat(k, sim::kNoNode);
        if (reseat == sim::kNoNode) {
          reseat = 0;
          ++stats_.emergency_attaches;
        }
        attach(k, leaf, reseat);
        ++stats_.promote_swaps;
        continue;
      }
    }
    if (seat == sim::kNoNode) {
      seat = 0;
      ++stats_.emergency_attaches;
    }
    attach(k, key, seat);
  }
  ++live_count_;
  ++stats_.joins;
  return key;
}

void DynamicForest::leave(NodeKey key) {
  if (!live(key) || key == 0) {
    throw std::invalid_argument("leave of unknown or dead peer");
  }
  auto& node = nodes_[static_cast<std::size_t>(key)];
  node.live = false;  // before re-seating: the departed peer owns no seats
  for (int k = 0; k < d_; ++k) {
    detach(k, key);
    auto orphans = children(k, key);  // copy: attach() mutates kids_
    kids_[static_cast<std::size_t>(k)][static_cast<std::size_t>(key)]
        .clear();
    for (const NodeKey orphan : orphans) {
      nodes_[static_cast<std::size_t>(orphan)]
          .parent[static_cast<std::size_t>(k)] = sim::kNoNode;
      NodeKey seat = find_seat(k, orphan);
      if (seat == sim::kNoNode) {
        seat = 0;
        ++stats_.emergency_attaches;
      }
      attach(k, orphan, seat);
      ++stats_.reattach_moves;
    }
  }
  --live_count_;
  ++stats_.leaves;
}

int DynamicForest::rebalance() {
  int moves = 0;
  // Pass 1: shed emergency source children onto real seats.
  for (int k = 0; k < d_; ++k) {
    while (static_cast<int>(children(k, 0).size()) > d_) {
      const NodeKey child = children(k, 0).back();
      detach(k, child);
      const NodeKey seat = find_seat(k, child);
      if (seat == sim::kNoNode) {
        attach(k, child, 0);  // still nowhere to go; keep it parked
        break;
      }
      attach(k, child, seat);
      ++moves;
    }
  }
  // Pass 2: restore internal-above-leaf order disturbed by churn — swap a
  // deep internal (its whole subtree rides along) with a strictly
  // shallower leaf. Each swap decreases the interior's depth sum, so the
  // loop terminates.
  for (int k = 0; k < d_; ++k) {
    bool swapped = true;
    while (swapped) {
      swapped = false;
      for (NodeKey u = 1; u < key_end(); ++u) {
        if (!live(u) || internal_tree(u) != k) continue;
        if (parent(k, u) == sim::kNoNode) continue;
        const int du = depth(k, u);
        if (du <= 1) continue;
        const NodeKey v = shallowest_leaf(k, u);
        if (v == sim::kNoNode || depth(k, v) >= du) continue;
        const NodeKey pu = parent(k, u);
        const NodeKey pv = parent(k, v);
        detach(k, u);
        detach(k, v);
        attach(k, u, pv);
        attach(k, v, pu);
        ++stats_.promote_swaps;
        ++moves;
        swapped = true;
      }
    }
  }
  // Pass 3: pull subtrees up while a strictly shallower seat exists. Each
  // move decreases the total depth sum, so the loop terminates.
  for (int k = 0; k < d_; ++k) {
    bool moved = true;
    while (moved) {
      moved = false;
      for (NodeKey key = 1; key < key_end(); ++key) {
        if (!live(key)) continue;
        const int dep = depth(k, key);
        if (dep <= 1) continue;
        const NodeKey seat = find_seat(k, key);
        if (seat == sim::kNoNode || depth(k, seat) + 1 >= dep) continue;
        detach(k, key);
        attach(k, key, seat);
        ++moves;
        moved = true;
      }
    }
  }
  stats_.balance_moves += moves;
  return moves;
}

Slot schedule_bound(const DynamicForest& forest) {
  Slot worst = 0;
  const int d = forest.d();
  for (int k = 0; k < d; ++k) {
    // lag(node) = worst (delivery slot - packet id) along the tree-k path.
    // Source children: round-robin wait up to d plus their serve rank;
    // every relay hop adds 1 + rank among the parent's children.
    std::vector<std::pair<NodeKey, Slot>> frontier;
    const auto& roots = forest.children(k, 0);
    for (std::size_t i = 0; i < roots.size(); ++i) {
      frontier.emplace_back(roots[i],
                            static_cast<Slot>(d) + 1 + static_cast<Slot>(i));
    }
    while (!frontier.empty()) {
      const auto [node, lag] = frontier.back();
      frontier.pop_back();
      worst = std::max(worst, lag);
      if (forest.internal_tree(node) != k) continue;
      const auto& kids = forest.children(k, node);
      for (std::size_t i = 0; i < kids.size(); ++i) {
        frontier.emplace_back(kids[i], lag + 1 + static_cast<Slot>(i));
      }
    }
  }
  return worst;
}

}  // namespace streamcast::dyntree
