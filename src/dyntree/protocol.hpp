// Forward-on-delivery streaming over the dynamic forest.
//
// Substream k = packets congruent to k (mod d) flows down tree k, tagged
// with the tree index. The source releases packet p in slot p, enqueues one
// send per current tree-(p mod d) child, and spends its capacity d
// round-robin across the d per-tree queues starting at tree (t mod d). A
// peer forwards only in its internal tree, and only packets it has
// *actually received*: each delivery enqueues one send per current child,
// drained at the peer's unit upload. That makes the schedule loss- and
// churn-safe by construction — a lost or late packet simply never enters
// the child queue, and a child that moved away is skipped at send time.
//
// Deliberately NOT backfilled: a peer that joins (or a subtree re-parented
// by a leave) starts receiving from its new parent's *next* delivery on.
// The paper's rate-matched links leave no bandwidth to replay history — the
// same reasoning as DynamicMultiTreeProtocol's live-edge jump — so the
// missed interval surfaces as honest hiccups in the churn QoS trackers
// instead of a silently rewritten past.
#pragma once

#include <deque>
#include <vector>

#include "src/dyntree/forest.hpp"
#include "src/loss/recovery.hpp"
#include "src/sim/protocol.hpp"

namespace streamcast::dyntree {

using sim::PacketId;
using sim::Tx;

class DynamicTreesProtocol final : public sim::Protocol {
 public:
  explicit DynamicTreesProtocol(DynamicForest forest);

  void transmit(Slot t, std::vector<Tx>& out) override;
  void deliver(Slot t, const Tx& tx) override;

  /// The forest is owned here; churn drivers mutate it through these
  /// wrappers so per-key protocol state stays sized and queues stay sane.
  DynamicForest& forest() { return forest_; }
  const DynamicForest& forest() const { return forest_; }
  NodeKey join();
  void leave(NodeKey key);

  /// A viewer seated in slot t is guaranteed every packet >= live_edge(t):
  /// the source has released [0, t) and forwards everything from t on to
  /// the joiner's parents' queues.
  PacketId live_edge(Slot t) const { return t; }

  /// Packets key has received (churn QoS accounting).
  const loss::SequenceTracker& holdings(NodeKey key) const {
    return holds_[static_cast<std::size_t>(key)];
  }

 private:
  struct Pending {
    NodeKey to = sim::kNoNode;
    PacketId packet = sim::kNoPacket;
  };

  /// True if the queued send is still meaningful: target alive, still this
  /// sender's child in `tree`, and still missing the packet.
  bool still_wanted(int tree, NodeKey from, const Pending& p) const;
  void grow_to(NodeKey key_end);

  DynamicForest forest_;
  std::vector<loss::SequenceTracker> holds_;         // by key
  std::vector<std::deque<Pending>> node_queue_;      // by key (internal tree)
  std::vector<std::deque<Pending>> source_queue_;    // by tree
  std::vector<int> recv_used_;                       // per-slot, by key
  PacketId released_ = 0;
};

}  // namespace streamcast::dyntree
