// Distributed multi-tree dynamics (Zhu & Hajek, arXiv:1308.1971).
//
// d interior-disjoint distribution trees over one shared peer population:
// the source (key 0) roots every tree with up to d children per tree, and
// every peer is *internal* in exactly one tree — chosen at join as the tree
// with the fewest spare seats, so its d child seats land where the forest is
// tightest — where it may feed up to d children, and a leaf in the d-1
// others. Substream k (packets congruent to k mod d) flows down tree k, so
// a peer's unit upload serves d children at per-tree rate 1/d: the same
// seat-count feasibility as the 2009 paper's multi-tree forest, but reached
// by local join/leave/swap rules instead of a global relabeling.
//
// Joins attach at a minimum-depth spare seat per tree; leaves free the
// departing peer's seats and re-parent each orphaned subtree at a
// minimum-depth spare seat of the same tree. When a tree has no spare seat
// (transiently possible: the departing peer may have been its only internal
// with room), the orphan parks under the source as an *emergency* child —
// the source temporarily exceeds its per-tree fan-out d, which is legal for
// structure but overloads its send schedule, so rebalance() sheds emergency
// children back to real seats (and pulls too-deep subtrees up) and the
// stats count every such event. All tie-breaks draw from one util::Prng
// seeded at construction, so a forest is a pure function of
// (d, seed, operation sequence).
//
// Unlike multitree::ChurnForest there is no structural-id relabeling: keys
// are permanent, departed keys are never reused, and the engine's NodeKey
// space simply grows with the peer history.
#pragma once

#include <cstdint>
#include <vector>

#include "src/sim/packet.hpp"
#include "src/util/prng.hpp"

namespace streamcast::dyntree {

using sim::NodeKey;
using sim::Slot;

struct ForestStats {
  std::int64_t joins = 0;
  std::int64_t leaves = 0;
  /// Orphaned-subtree re-parents performed by leave().
  std::int64_t reattach_moves = 0;
  /// Re-parents performed by rebalance() (emergency sheds + depth pulls).
  std::int64_t balance_moves = 0;
  /// Internal-above-leaf position swaps (at join and in rebalance()). The
  /// load-bearing Zhu–Hajek rule: without it each new internal finds spare
  /// seats only under the previous internal and the interior degenerates
  /// into a chain (measured: delay grows linearly in N).
  std::int64_t promote_swaps = 0;
  /// Attaches that found no spare seat and parked under the source.
  std::int64_t emergency_attaches = 0;
};

class DynamicForest {
 public:
  DynamicForest(int d, std::uint64_t seed);

  /// Seats a new peer in all d trees; returns its permanent key (>= 1).
  NodeKey join();

  /// Removes a live peer, re-parenting its orphaned subtrees.
  /// Throws std::invalid_argument for unknown/dead keys.
  void leave(NodeKey key);

  /// Sheds emergency source children to real seats and pulls subtrees up
  /// when a strictly shallower seat exists. Returns moves made.
  int rebalance();

  int d() const { return d_; }
  NodeKey peers() const { return live_count_; }
  /// Exclusive upper bound on granted keys (valid keys: 0..key_end()-1).
  NodeKey key_end() const { return static_cast<NodeKey>(nodes_.size()); }
  bool live(NodeKey key) const;
  /// The one tree where this peer is internal (may feed children).
  int internal_tree(NodeKey key) const;
  /// Parent of `key` in `tree` (0 = source), or sim::kNoNode if detached.
  NodeKey parent(int tree, NodeKey key) const;
  const std::vector<NodeKey>& children(int tree, NodeKey key) const;
  /// Hops from the source (source itself: 0).
  int depth(int tree, NodeKey key) const;
  int height(int tree) const;
  /// Spare child seats currently open in `tree` (source + internals).
  int spare_seats(int tree) const;
  /// Source children beyond the per-tree fan-out d, across all trees.
  int emergency_children() const;

  const ForestStats& stats() const { return stats_; }

 private:
  struct Node {
    bool live = false;
    int internal_tree = -1;
    std::vector<NodeKey> parent;  // per tree; kNoNode when detached
  };

  int seat_capacity(int tree, NodeKey key) const;
  bool in_subtree(int tree, NodeKey key, NodeKey root) const;
  /// Minimum-depth node with a spare seat in `tree`, excluding `exclude`'s
  /// subtree (pass kNoNode to exclude nothing); kNoNode if the tree is full.
  NodeKey find_seat(int tree, NodeKey exclude);
  /// Minimum-depth attached node that is a leaf of `tree` (internal
  /// elsewhere), outside `exclude`'s subtree; kNoNode if none.
  NodeKey shallowest_leaf(int tree, NodeKey exclude);
  void attach(int tree, NodeKey key, NodeKey under);
  void detach(int tree, NodeKey key);

  int d_;
  util::Prng prng_;
  std::vector<Node> nodes_;                            // by key; [0]=source
  std::vector<std::vector<std::vector<NodeKey>>> kids_;  // [tree][key]
  NodeKey live_count_ = 0;
  ForestStats stats_;
};

/// Structure-derived worst-case playback lag of the forward-on-delivery
/// schedule over the current forest: the source hands substream-k packet p
/// to its tree-k children within d + rank + 1 slots of releasing it, and
/// every internal relay adds 1 + rank more (it serves its <= d children one
/// per slot while substream packets arrive every d slots). The bound is the
/// maximum over all (tree, node) paths — exact structure, no asymptotics —
/// and the registry adds an empirical margin on top (see DESIGN.md §12).
Slot schedule_bound(const DynamicForest& forest);

}  // namespace streamcast::dyntree
