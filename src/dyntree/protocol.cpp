#include "src/dyntree/protocol.hpp"

#include <algorithm>
#include <utility>

namespace streamcast::dyntree {

DynamicTreesProtocol::DynamicTreesProtocol(DynamicForest forest)
    : forest_(std::move(forest)),
      source_queue_(static_cast<std::size_t>(forest_.d())) {
  grow_to(forest_.key_end());
}

void DynamicTreesProtocol::grow_to(NodeKey key_end) {
  const auto span = static_cast<std::size_t>(key_end);
  if (holds_.size() < span) {
    holds_.resize(span);
    node_queue_.resize(span);
    recv_used_.resize(span, 0);
  }
}

NodeKey DynamicTreesProtocol::join() {
  const NodeKey key = forest_.join();
  grow_to(forest_.key_end());
  return key;
}

void DynamicTreesProtocol::leave(NodeKey key) {
  forest_.leave(key);
  node_queue_[static_cast<std::size_t>(key)].clear();
}

bool DynamicTreesProtocol::still_wanted(int tree, NodeKey from,
                                        const Pending& p) const {
  return forest_.live(p.to) && forest_.parent(tree, p.to) == from &&
         !holds_[static_cast<std::size_t>(p.to)].has(p.packet);
}

void DynamicTreesProtocol::transmit(Slot t, std::vector<Tx>& out) {
  const int d = forest_.d();
  std::fill(recv_used_.begin(), recv_used_.end(), 0);

  // Release packet t and queue it for tree (t mod d)'s source children.
  while (released_ <= t) {
    const auto k = static_cast<int>(released_ % d);
    for (const NodeKey c : forest_.children(k, 0)) {
      source_queue_[static_cast<std::size_t>(k)].push_back({c, released_});
    }
    ++released_;
  }

  // Emits the first still-wanted entry whose target has download capacity
  // left this slot; entries whose target is saturated stay queued in order
  // (per-(to, tag) sequence stays increasing), dead entries are dropped.
  const auto pump = [&](std::deque<Pending>& queue, int tree,
                        NodeKey from) -> bool {
    for (auto it = queue.begin(); it != queue.end();) {
      if (!still_wanted(tree, from, *it)) {
        it = queue.erase(it);
        continue;
      }
      if (recv_used_[static_cast<std::size_t>(it->to)] >= d) {
        ++it;
        continue;
      }
      out.push_back(Tx{from, it->to, it->packet, tree, false});
      ++recv_used_[static_cast<std::size_t>(it->to)];
      queue.erase(it);
      return true;
    }
    return false;
  };

  // Source: capacity d, round-robin over the tree queues starting at the
  // tree whose substream was just released.
  int budget = d;
  bool progress = true;
  while (budget > 0 && progress) {
    progress = false;
    for (int i = 0; i < d && budget > 0; ++i) {
      const auto k = static_cast<int>((t + i) % d);
      if (pump(source_queue_[static_cast<std::size_t>(k)], k, 0)) {
        --budget;
        progress = true;
      }
    }
  }

  // Peers: unit upload each, spent in their internal tree.
  for (NodeKey key = 1; key < forest_.key_end(); ++key) {
    if (!forest_.live(key)) continue;
    pump(node_queue_[static_cast<std::size_t>(key)],
         forest_.internal_tree(key), key);
  }
}

void DynamicTreesProtocol::deliver(Slot /*t*/, const Tx& tx) {
  holds_[static_cast<std::size_t>(tx.to)].mark(tx.packet);
  if (!forest_.live(tx.to) ||
      forest_.internal_tree(tx.to) != static_cast<int>(tx.tag)) {
    return;
  }
  for (const NodeKey c : forest_.children(static_cast<int>(tx.tag), tx.to)) {
    node_queue_[static_cast<std::size_t>(tx.to)].push_back({c, tx.packet});
  }
}

}  // namespace streamcast::dyntree
