// Per-peer playback accounting for the dynamic forest, the dyntree
// counterpart of multitree::PeerQosTracker: one net::PlaybackBuffer per
// permanent key, started `startup_margin` slots after the peer is seated at
// the live edge of its seating moment. Every packet missing in its due slot
// is one hiccup — which is exactly where the protocol's deliberate
// no-backfill policy (see protocol.hpp) surfaces as measured QoS: a peer
// whose subtree was re-parented by churn pays a bounded burst of hiccups
// and then resumes on schedule.
//
// Unlike the multitree tracker there is no structural-id indirection —
// dyntree keys are permanent and never reused — so deliveries map to
// buffers directly by key.
#pragma once

#include <cstdint>
#include <map>

#include "src/dyntree/protocol.hpp"
#include "src/net/buffer.hpp"
#include "src/sim/engine.hpp"

namespace streamcast::dyntree {

class PeerQosTracker final : public sim::DeliveryObserver {
 public:
  /// Playback for a peer seated at slot t starts at t + startup_margin with
  /// packet protocol.live_edge(t).
  PeerQosTracker(const DynamicTreesProtocol& protocol, Slot startup_margin);

  void on_delivery(const sim::Delivery& d) override;

  /// Registers a peer seated at slot t (call right after join()).
  void peer_seated(NodeKey key, Slot t);
  /// Finalizes a departing peer's stats (call right before leave()).
  void peer_left(NodeKey key, Slot t);
  /// Finalizes all remaining peers at the end of the run.
  void finish(Slot t);

  std::int64_t total_hiccups() const { return hiccups_; }
  std::int64_t total_played() const { return played_; }
  std::int64_t late_or_duplicate() const { return late_; }
  std::size_t peers_tracked() const { return tracked_; }
  std::size_t peers_with_hiccups() const { return peers_with_hiccups_; }

 private:
  void retire(net::PlaybackBuffer& buffer, Slot t);

  const DynamicTreesProtocol& protocol_;
  Slot margin_;
  std::map<NodeKey, net::PlaybackBuffer> buffers_;
  std::int64_t hiccups_ = 0;
  std::int64_t played_ = 0;
  std::int64_t late_ = 0;
  std::size_t tracked_ = 0;
  std::size_t peers_with_hiccups_ = 0;
};

}  // namespace streamcast::dyntree
