#include "src/dyntree/qos.hpp"

namespace streamcast::dyntree {

PeerQosTracker::PeerQosTracker(const DynamicTreesProtocol& protocol,
                               Slot startup_margin)
    : protocol_(protocol), margin_(startup_margin) {}

void PeerQosTracker::peer_seated(NodeKey key, Slot t) {
  buffers_.emplace(key,
                   net::PlaybackBuffer(t + margin_, protocol_.live_edge(t)));
  ++tracked_;
}

void PeerQosTracker::on_delivery(const sim::Delivery& d) {
  const auto it = buffers_.find(d.tx.to);
  if (it == buffers_.end()) return;
  it->second.advance_to(d.received - 1);
  it->second.on_receive(d.received, d.tx.packet);
}

void PeerQosTracker::retire(net::PlaybackBuffer& buffer, Slot t) {
  buffer.advance_to(t);
  hiccups_ += buffer.hiccups();
  played_ += buffer.played();
  late_ += buffer.late_or_duplicate();
  if (buffer.hiccups() > 0) ++peers_with_hiccups_;
}

void PeerQosTracker::peer_left(NodeKey key, Slot t) {
  const auto it = buffers_.find(key);
  if (it == buffers_.end()) return;
  retire(it->second, t);
  buffers_.erase(it);
}

void PeerQosTracker::finish(Slot t) {
  for (auto& [key, buffer] : buffers_) retire(buffer, t);
  buffers_.clear();
}

}  // namespace streamcast::dyntree
