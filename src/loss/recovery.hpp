// Recovery decorator: wraps any sim::Protocol so it survives lossy links.
//
// The paper's schemes were designed for reliable links; under erasures they
// misbehave in scheme-specific ways (a multi-tree interior's cursor would
// forward packets it never received, a chain node would relay a stale packet
// twice). RecoveryProtocol sits between the engine and the wrapped protocol
// and restores correctness generically:
//
//  * Sequence tracking — per node, the gap-free prefix plus the set of
//    packets received ahead of it (SequenceTracker). This is both the repair
//    trigger and the acceptance criterion ("every node eventually holds a
//    gap-free prefix").
//  * Causality enforcement — a transmission of a packet the sender does not
//    hold is suppressed (the lossless schedule assumed it had arrived), as
//    is a transmission the receiver already holds or that is already in
//    flight (duplicate-free invariant preserved under loss).
//  * In-order hand-off — deliveries are released to the wrapped protocol in
//    packet order per (receiver, tag) substream, holding back arrivals that
//    overtook a known-lost packet. The schemes' in-order invariants
//    (multi-tree congruence) therefore hold verbatim under loss.
//  * NACK repair (RecoveryMode::kNack) — every detected gap (engine drop
//    report, suppressed send, or skipped id on a dense link) schedules a
//    retransmission from a node that holds the packet, after a modeled
//    NACK round trip, using only residual send/receive capacity (see
//    net::ProvisionedTopology). Lost repairs are re-NACKed, so every gap
//    eventually closes.
//  * XOR-parity FEC (RecoveryMode::kFec) — per link, one parity packet per
//    window of `fec_window` data packets; a single erasure inside the window
//    decodes at the receiver without a round trip. Parity ids live in the
//    control id space (sim::kControlIdBase) and are never part of the
//    stream.
//
// At loss rate 0 nothing is suppressed, repaired, or held back, and the
// engine-visible schedule is bit-identical to running the wrapped protocol
// bare (regression-tested).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <unordered_set>
#include <vector>

#include "src/net/topology.hpp"
#include "src/sim/engine.hpp"
#include "src/sim/protocol.hpp"

namespace streamcast::loss {

using sim::NodeKey;
using sim::PacketId;
using sim::Slot;
using sim::Tx;

enum class RecoveryMode { kNone, kNack, kFec };

const char* recovery_mode_name(RecoveryMode m);

struct RecoveryOptions {
  RecoveryMode mode = RecoveryMode::kNack;
  /// Data packets per XOR parity packet (kFec).
  int fec_window = 8;
  /// Extra slots added to the modeled NACK round trip before a repair is
  /// eligible to be sent.
  Slot nack_delay = 0;
  /// Enable sender-side skip detection for newest-only forwarders (chain,
  /// single tree): every packet id flows over every link, so an id jump on a
  /// link is a gap the receiver will never otherwise see. Must stay off for
  /// schemes whose per-link id streams are strided (multi-tree) or demand-
  /// driven (hypercube) — there an id jump is normal.
  bool dense_links = false;
  /// Age (in slots) after which a still-open receive gap is NACKed from the
  /// source even though no transmission of it was ever seen failing. Needed
  /// for demand-driven schemes (hypercube) where a packet that missed its
  /// consumption deadline is simply never offered again; must exceed the
  /// scheme's worst inter-arrival skew so it cannot fire on a lossless run.
  /// -1 disables the sweep. Repairs issued here carry tag 0, so only enable
  /// it for schemes whose deliver() ignores tags.
  Slot gap_timeout = -1;
  /// Node that originates the stream and implicitly holds every packet.
  NodeKey source = 0;
};

struct RecoveryStats {
  std::int64_t data_transmissions = 0;
  std::int64_t retransmissions = 0;
  std::int64_t parity_transmissions = 0;
  std::int64_t fec_decodes = 0;
  /// Sends suppressed because the sender did not hold the packet.
  std::int64_t suppressed_causal = 0;
  /// Sends suppressed because the receiver already held the packet (or it
  /// was already in flight).
  std::int64_t suppressed_redundant = 0;
  /// Repair requests issued (including re-NACKs of lost repairs).
  std::int64_t nacks = 0;

  /// Repair traffic per useful data transmission:
  /// (retransmissions + parity) / data.
  double redundancy_overhead() const;
};

/// Per-node expected-vs-delivered sequence state: the gap-free prefix
/// [0, next) plus everything received ahead of it.
class SequenceTracker {
 public:
  /// Records receipt of packet p (idempotent).
  void mark(PacketId p);

  bool has(PacketId p) const {
    return p < next_ || ahead_.contains(p);
  }

  /// First packet id not yet received: the stream prefix [0, prefix) is
  /// complete and gap-free.
  PacketId gap_free_prefix() const { return next_; }

  /// Ids received ahead of the prefix (the current gaps' far side).
  const std::set<PacketId>& ahead() const { return ahead_; }

 private:
  PacketId next_ = 0;
  std::set<PacketId> ahead_;
};

class RecoveryProtocol final : public sim::Protocol,
                               public sim::DeliveryObserver {
 public:
  /// `topology` must be the engine's topology (typically a
  /// net::ProvisionedTopology so repairs have capacity to ride on) and must
  /// outlive the protocol, as must `inner`. Register the instance with the
  /// engine as an observer too (engine.add_observer(recovery)) so it sees
  /// drop reports.
  RecoveryProtocol(const net::Topology& topology, sim::Protocol& inner,
                   RecoveryOptions options = {});

  // sim::Protocol (engine-facing)
  void transmit(Slot t, std::vector<Tx>& out) override;
  void deliver(Slot t, const Tx& tx) override;

  // sim::DeliveryObserver (drop reports + post-repair stream fan-out)
  void on_delivery(const sim::Delivery& d) override;
  void on_drop(const sim::Drop& d) override;

  /// Observers of the post-repair stream: real deliveries, repair
  /// retransmissions, parity arrivals, and synthesized FEC-decoded packets.
  /// Metrics that should measure what the application sees attach here, not
  /// to the engine.
  void add_observer(sim::DeliveryObserver& obs) {
    observers_.push_back(&obs);
  }

  /// First data packet id `node` has not yet received (repairs included).
  PacketId gap_free_prefix(NodeKey node) const;

  /// True iff every node in [from, to] holds the gap-free prefix [0, window).
  bool all_gap_free(NodeKey from, NodeKey to, PacketId window) const;

  const RecoveryStats& stats() const { return stats_; }

  const RecoveryOptions& options() const { return options_; }

 private:
  struct Repair {
    NodeKey sender = 0;
    std::int32_t tag = 0;
    Slot due = 0;
    bool in_flight = false;
  };
  struct ParityWindow {
    NodeKey from = 0;
    NodeKey to = 0;
    std::vector<Tx> data;  // the window's data transmissions, in order
  };

  bool holds(NodeKey node, PacketId p) const;
  bool in_flight(NodeKey to, PacketId p) const;
  void set_in_flight(NodeKey to, PacketId p, bool value);
  Slot nack_due(Slot detect_slot, NodeKey from, NodeKey to) const;
  void schedule_repair(NodeKey to, PacketId p, NodeKey sender,
                       std::int32_t tag, Slot due);
  void mark_outstanding(NodeKey to, std::int32_t tag, PacketId p);
  void detect_dense_skips(Slot t, const Tx& tx);
  void sweep_aged_gaps(Slot t);
  void emit_repairs(Slot t, std::vector<Tx>& out);
  void emit_parity(Slot t, std::vector<Tx>& out);
  void fec_accumulate(const Tx& tx);
  void handle_parity_arrival(Slot t, const Tx& tx);
  void recheck_unresolved(Slot t, NodeKey node);
  bool try_decode(Slot t, PacketId parity_id);
  /// Common data-arrival path for real, repaired, and FEC-decoded packets:
  /// tracker update, repair bookkeeping, in-order release into the inner
  /// protocol.
  void ingest_data(Slot t, const Tx& tx);
  void release_in_order(Slot t, const Tx& tx);
  void flush_held_back(Slot t, NodeKey to, std::int32_t tag);
  bool recv_headroom(Slot arrive, NodeKey to) const;
  void note_planned_arrival(Slot arrive, NodeKey to);

  const net::Topology& topology_;
  sim::Protocol& inner_;
  RecoveryOptions options_;
  RecoveryStats stats_;

  std::vector<SequenceTracker> trackers_;           // per node
  std::vector<std::vector<NodeKey>> senders_seen_;  // per receiver, in order
  std::vector<sim::DeliveryObserver*> observers_;

  std::unordered_set<std::uint64_t> in_flight_;     // (to, packet) keys
  std::map<std::pair<NodeKey, PacketId>, Repair> pending_;

  // In-order release state, per (receiver, tag) substream.
  std::map<std::pair<NodeKey, std::int32_t>, std::set<PacketId>> outstanding_;
  std::map<std::pair<NodeKey, PacketId>, std::int32_t> outstanding_tag_;
  std::map<std::pair<NodeKey, std::int32_t>, std::map<PacketId, Tx>>
      held_back_;

  // Dense-link skip detection: newest inner-emitted id per (from, to).
  std::map<std::pair<NodeKey, NodeKey>, PacketId> last_emitted_;

  // Aged-gap sweep: slot at which each open gap was first observed.
  std::map<std::pair<NodeKey, PacketId>, Slot> gap_seen_;

  // FEC state.
  std::map<std::pair<NodeKey, NodeKey>, std::vector<Tx>> fec_acc_;
  std::deque<std::pair<PacketId, ParityWindow>> parity_queue_;
  std::map<PacketId, ParityWindow> parity_windows_;   // sent, undecoded
  std::vector<std::vector<PacketId>> unresolved_;     // per node: parity ids
  PacketId next_parity_id_ = sim::kControlIdBase;

  // Per-slot capacity accounting (residual capacity for repairs/parity).
  std::vector<int> send_used_;
  std::map<Slot, std::vector<int>> planned_recv_;
  std::vector<Tx> inner_scratch_;
};

}  // namespace streamcast::loss
