// Recovery decorator: wraps any sim::Protocol so it survives lossy links.
//
// The paper's schemes were designed for reliable links; under erasures they
// misbehave in scheme-specific ways (a multi-tree interior's cursor would
// forward packets it never received, a chain node would relay a stale packet
// twice). RecoveryProtocol sits between the engine and the wrapped protocol
// and restores correctness generically:
//
//  * Sequence tracking — per node, the gap-free prefix plus the set of
//    packets received ahead of it (SequenceTracker). This is both the repair
//    trigger and the acceptance criterion ("every node eventually holds a
//    gap-free prefix").
//  * Causality enforcement — a transmission of a packet the sender does not
//    hold is suppressed (the lossless schedule assumed it had arrived), as
//    is a transmission the receiver already holds or that is already in
//    flight (duplicate-free invariant preserved under loss).
//  * In-order hand-off — deliveries are released to the wrapped protocol in
//    packet order per (receiver, tag) substream, holding back arrivals that
//    overtook a known-lost packet. The schemes' in-order invariants
//    (multi-tree congruence) therefore hold verbatim under loss.
//
// The repair *strategy* — what to do about a detected gap — is a
// policy::RecoveryPolicy looked up in the policy registry
// (src/policy/registry.hpp): `none`, `nack`, `xor-parity`, or
// `streaming-code`. RecoveryProtocol is the policy's RecoveryHost: it owns
// the trackers, the in-order gate, and the residual-capacity accounting,
// and fires the policy hooks at the exact program points the historical
// RecoveryMode switch sat at (byte-identical for the legacy strategies,
// golden-pinned by tests/policy_layer_test.cpp).
//
// At loss rate 0 nothing is suppressed, repaired, or held back, and the
// engine-visible schedule is bit-identical to running the wrapped protocol
// bare (regression-tested).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/net/topology.hpp"
#include "src/policy/recovery.hpp"
#include "src/sim/engine.hpp"
#include "src/sim/protocol.hpp"

namespace streamcast::loss {

using sim::NodeKey;
using sim::PacketId;
using sim::Slot;
using sim::Tx;

// The strategy types migrated to src/policy; these aliases keep the
// historical loss:: spellings working for existing callers.
using policy::RecoveryMode;
using policy::RecoveryStats;
using policy::recovery_mode_name;

struct RecoveryOptions {
  /// Legacy strategy selector, honored when `policy` is empty (the
  /// registry maps it via policy::recovery_policy_name).
  RecoveryMode mode = RecoveryMode::kNack;
  /// Recovery policy registry entry ("none", "nack", "xor-parity",
  /// "streaming-code"); empty selects by `mode`.
  std::string policy{};
  /// Data packets per XOR parity packet (xor-parity).
  int fec_window = 8;
  /// Extra slots added to the modeled NACK round trip before a repair is
  /// eligible to be sent.
  Slot nack_delay = 0;
  /// Enable sender-side skip detection for newest-only forwarders (chain,
  /// single tree): every packet id flows over every link, so an id jump on a
  /// link is a gap the receiver will never otherwise see. Must stay off for
  /// schemes whose per-link id streams are strided (multi-tree) or demand-
  /// driven (hypercube) — there an id jump is normal.
  bool dense_links = false;
  /// Age (in slots) after which a still-open receive gap is NACKed from the
  /// source even though no transmission of it was ever seen failing. Needed
  /// for demand-driven schemes (hypercube) where a packet that missed its
  /// consumption deadline is simply never offered again; must exceed the
  /// scheme's worst inter-arrival skew so it cannot fire on a lossless run.
  /// -1 disables the sweep. Repairs issued here carry `sweep_tag`, so only
  /// enable it for schemes whose deliver() tolerates that tag.
  Slot gap_timeout = -1;
  /// Substream tag carried by aged-gap sweep repairs (default 0, the
  /// historical behavior). Schemes whose tags partition the stream into
  /// substreams (dyntree trees) should pass a tag no live delivery uses,
  /// so a pending backfill never holds live substreams back in the
  /// in-order gate.
  std::int32_t sweep_tag = 0;
  /// Sweep relevance horizon: gaps whose id trails the current slot by
  /// more than this are abandoned instead of repaired (the repair could
  /// only land past the packet's play deadline). -1 = repair regardless.
  Slot repair_horizon = -1;
  /// Node that originates the stream and implicitly holds every packet.
  NodeKey source = 0;
  /// Badr–Lui–Khisti code parameters (streaming-code).
  policy::StreamingCodeOptions code{};
};

/// Per-node expected-vs-delivered sequence state: the gap-free prefix
/// [0, next) plus everything received ahead of it.
class SequenceTracker {
 public:
  /// Records receipt of packet p (idempotent).
  void mark(PacketId p);

  /// Floors the expectation at packet p: ids below p are no longer part of
  /// this node's stream (a churn joiner seated at the live edge is not in
  /// debt for pre-join history). No-op when the prefix already passed p.
  void start_at(PacketId p);

  bool has(PacketId p) const {
    return p < next_ || ahead_.contains(p);
  }

  /// First packet id not yet received: the stream prefix [0, prefix) is
  /// complete and gap-free.
  PacketId gap_free_prefix() const { return next_; }

  /// Ids received ahead of the prefix (the current gaps' far side).
  const std::set<PacketId>& ahead() const { return ahead_; }

 private:
  PacketId next_ = 0;
  std::set<PacketId> ahead_;
};

class RecoveryProtocol final : public sim::Protocol,
                               public sim::DeliveryObserver,
                               public policy::RecoveryHost {
 public:
  /// `topology` must be the engine's topology (typically a
  /// net::ProvisionedTopology so repairs have capacity to ride on) and must
  /// outlive the protocol, as must `inner`. Register the instance with the
  /// engine as an observer too (engine.add_observer(recovery)) so it sees
  /// drop reports.
  RecoveryProtocol(const net::Topology& topology, sim::Protocol& inner,
                   RecoveryOptions options = {});

  // sim::Protocol (engine-facing)
  void transmit(Slot t, std::vector<Tx>& out) override;
  void deliver(Slot t, const Tx& tx) override;

  // sim::DeliveryObserver (drop reports + post-repair stream fan-out)
  void on_delivery(const sim::Delivery& d) override;
  void on_drop(const sim::Drop& d) override;

  /// Observers of the post-repair stream: real deliveries, repair
  /// retransmissions, parity arrivals, and synthesized decoded packets.
  /// Metrics that should measure what the application sees attach here, not
  /// to the engine.
  void add_observer(sim::DeliveryObserver& obs) {
    observers_.push_back(&obs);
  }

  /// Seats `node` at the live edge: its stream starts at `live_edge`, so
  /// the recovery layer never backfills pre-join history (churn joiners).
  void seat(NodeKey node, PacketId live_edge);

  /// True iff every node in [from, to] holds the gap-free prefix [0, window).
  bool all_gap_free(NodeKey from, NodeKey to, PacketId window) const;

  /// True iff every window packet at every node in [from, to] has a decided
  /// fate: arrived, or abandoned by the policy (declared unrecoverable).
  /// The drain loop stops on this instead of all_gap_free, so a
  /// delay-bounded policy that gives a gap up ends the run instead of
  /// burning max_drain; the legacy policies never abandon, making the two
  /// predicates — and the drain behavior — identical (byte-pinned).
  bool gaps_resolved(NodeKey from, NodeKey to, PacketId window) const;

  /// True when the active policy has no undecided erasure and no channel
  /// use in flight. Always false for the legacy policies.
  bool recovery_exhausted() const { return policy_->exhausted(); }

  const RecoveryStats& stats() const { return stats_; }

  const RecoveryOptions& options() const { return options_; }

  /// Registry name of the active recovery policy.
  const char* policy_name() const { return policy_->name(); }

  // policy::RecoveryHost
  NodeKey node_count() const override;
  Slot link_latency(NodeKey from, NodeKey to) const override;
  bool holds(NodeKey node, PacketId p) const override;
  bool has_arrived(NodeKey node, PacketId p) const override;
  PacketId gap_free_prefix(NodeKey node) const override;
  const std::set<PacketId>& ahead(NodeKey node) const override;
  bool in_flight(NodeKey to, PacketId p) const override;
  void set_in_flight(NodeKey to, PacketId p, bool value) override;
  void mark_outstanding(NodeKey to, std::int32_t tag, PacketId p) override;
  void abandon_gap(Slot t, NodeKey to, PacketId p) override;
  const std::vector<NodeKey>& senders_seen(NodeKey to) const override;
  bool send_available(NodeKey from) const override;
  void use_send(NodeKey from) override;
  bool recv_headroom(Slot arrive, NodeKey to) const override;
  void note_planned_arrival(Slot arrive, NodeKey to) override;
  void ingest_decoded(Slot t, const Tx& tx) override;
  RecoveryStats& stats() override { return stats_; }

 private:
  /// Common data-arrival path for real, repaired, and decoded packets:
  /// tracker update, policy bookkeeping, in-order release into the inner
  /// protocol.
  void ingest_data(Slot t, const Tx& tx);
  void release_in_order(Slot t, const Tx& tx);
  void flush_held_back(Slot t, NodeKey to, std::int32_t tag);

  const net::Topology& topology_;
  sim::Protocol& inner_;
  RecoveryOptions options_;
  RecoveryStats stats_;
  std::unique_ptr<policy::RecoveryPolicy> policy_;

  std::vector<SequenceTracker> trackers_;           // per node
  std::vector<std::vector<NodeKey>> senders_seen_;  // per receiver, in order
  std::vector<sim::DeliveryObserver*> observers_;

  std::unordered_set<std::uint64_t> in_flight_;     // (to, packet) keys
  std::unordered_set<std::uint64_t> abandoned_;     // (to, packet) keys

  // In-order release state, per (receiver, tag) substream.
  std::map<std::pair<NodeKey, std::int32_t>, std::set<PacketId>> outstanding_;
  std::map<std::pair<NodeKey, PacketId>, std::int32_t> outstanding_tag_;
  std::map<std::pair<NodeKey, std::int32_t>, std::map<PacketId, Tx>>
      held_back_;

  // Per-slot capacity accounting (residual capacity for repairs/parity).
  std::vector<int> send_used_;
  std::map<Slot, std::vector<int>> planned_recv_;
  std::vector<Tx> inner_scratch_;
};

}  // namespace streamcast::loss
