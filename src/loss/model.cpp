#include "src/loss/model.hpp"

#include <stdexcept>

namespace streamcast::loss {

namespace {

std::uint64_t link_key(const Tx& tx) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(tx.from))
          << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(tx.to));
}

void check_probability(double p, const char* what) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument(std::string(what) + " must be in [0, 1]");
  }
}

}  // namespace

BernoulliLoss::BernoulliLoss(double rate, std::uint64_t seed)
    : rate_(rate), prng_(seed) {
  check_probability(rate, "loss rate");
}

bool BernoulliLoss::erased(Slot t, const Tx& tx) {
  (void)t;
  (void)tx;
  return prng_.chance(rate_);
}

GilbertElliottLoss::GilbertElliottLoss(Params params, std::uint64_t seed)
    : params_(params), seed_(seed) {
  check_probability(params.p_enter, "p_enter");
  check_probability(params.p_recover, "p_recover");
  check_probability(params.loss_good, "loss_good");
  check_probability(params.loss_bad, "loss_bad");
  if (params.p_recover <= 0.0) {
    throw std::invalid_argument("p_recover must be > 0 (bursts must end)");
  }
}

GilbertElliottLoss::Link& GilbertElliottLoss::link_state(const Tx& tx) {
  const std::uint64_t key = link_key(tx);
  auto it = links_.find(key);
  if (it == links_.end()) {
    // Fork a per-link PRNG from the seed and the link key so link chains are
    // independent and insertion-order-free.
    it = links_.emplace(key, Link{.bad = false, .prng = util::Prng(seed_ ^ key)})
             .first;
  }
  return it->second;
}

bool GilbertElliottLoss::erased(Slot t, const Tx& tx) {
  (void)t;
  Link& link = link_state(tx);
  const double p_loss = link.bad ? params_.loss_bad : params_.loss_good;
  const bool lost = link.prng.chance(p_loss);
  const double p_flip = link.bad ? params_.p_recover : params_.p_enter;
  if (link.prng.chance(p_flip)) link.bad = !link.bad;
  return lost;
}

double GilbertElliottLoss::stationary_loss_rate() const {
  const double denom = params_.p_enter + params_.p_recover;
  const double pi_bad = denom > 0.0 ? params_.p_enter / denom : 0.0;
  return pi_bad * params_.loss_bad + (1.0 - pi_bad) * params_.loss_good;
}

std::unique_ptr<LossModel> make_model(ErasureKind kind, double rate,
                                      GilbertElliottLoss::Params ge,
                                      std::uint64_t seed) {
  switch (kind) {
    case ErasureKind::kNone:
      return nullptr;
    case ErasureKind::kBernoulli:
      return std::make_unique<BernoulliLoss>(rate, seed);
    case ErasureKind::kGilbertElliott:
      return std::make_unique<GilbertElliottLoss>(ge, seed);
  }
  return nullptr;
}

}  // namespace streamcast::loss
