// Link erasure models (the fault-injection half of the loss subsystem).
//
// The paper's delay/buffer results (Theorems 2–4) assume perfectly reliable
// links. These models let every scheme in the repo run over lossy links
// instead: the slot engine consults the model once per queued transmission
// and, when the model says "erased", the packet silently never arrives (the
// sender still spends its slot). Two classical channels are provided:
//
//  * BernoulliLoss      — i.i.d. erasures with probability p (memoryless).
//  * GilbertElliottLoss — two-state Markov channel (good/bad) evolved
//    independently per directed link, the standard burst-erasure model used
//    by Badr et al. for streaming codes. Stationary loss rate has the closed
//    form  pi_bad * loss_bad + pi_good * loss_good  with
//    pi_bad = p_enter / (p_enter + p_recover).
//
// All models are seeded with the repo's deterministic xoshiro PRNG, so lossy
// experiments reproduce bit-for-bit.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "src/sim/erasure.hpp"
#include "src/sim/event.hpp"
#include "src/util/prng.hpp"

namespace streamcast::loss {

using sim::Slot;
using sim::Tx;

/// Erasure oracle consulted by the slot engine for every transmission. The
/// interface (sim::ErasureOracle) lives in the simulation core so the
/// engine never includes this layer; the channel models implement it here.
class LossModel : public sim::ErasureOracle {};

/// i.i.d. erasures: every transmission is lost with probability `rate`.
class BernoulliLoss final : public LossModel {
 public:
  BernoulliLoss(double rate, std::uint64_t seed);

  bool erased(Slot t, const Tx& tx) override;

  double rate() const { return rate_; }

 private:
  double rate_;
  util::Prng prng_;
};

/// Gilbert–Elliott burst channel, one independent chain per directed link.
///
/// Each link is in a good or bad state; a transmission is erased with
/// `loss_good` / `loss_bad` respectively, then the state advances
/// (good->bad with `p_enter`, bad->good with `p_recover`). Mean burst
/// (bad-state sojourn) length is 1 / p_recover transmissions.
class GilbertElliottLoss final : public LossModel {
 public:
  struct Params {
    double p_enter = 0.05;    // P(good -> bad) per transmission
    double p_recover = 0.5;   // P(bad -> good) per transmission
    double loss_good = 0.0;   // erasure probability in the good state
    double loss_bad = 1.0;    // erasure probability in the bad state
  };

  GilbertElliottLoss(Params params, std::uint64_t seed);

  bool erased(Slot t, const Tx& tx) override;

  const Params& params() const { return params_; }

  /// Long-run fraction of transmissions erased:
  ///   pi_bad * loss_bad + (1 - pi_bad) * loss_good,
  ///   pi_bad = p_enter / (p_enter + p_recover).
  double stationary_loss_rate() const;

  /// Mean erasures per burst once the link enters the bad state.
  double mean_burst_length() const { return 1.0 / params_.p_recover; }

 private:
  struct Link {
    bool bad = false;
    util::Prng prng;
  };
  Link& link_state(const Tx& tx);

  Params params_;
  std::uint64_t seed_;
  std::unordered_map<std::uint64_t, Link> links_;
};

/// Which erasure channel a session/bench should run.
enum class ErasureKind { kNone, kBernoulli, kGilbertElliott };

/// Factory used by core::StreamingSession and the loss benches. Returns
/// nullptr for kNone. `rate` feeds BernoulliLoss; `ge` feeds Gilbert–Elliott.
std::unique_ptr<LossModel> make_model(ErasureKind kind, double rate,
                                      GilbertElliottLoss::Params ge,
                                      std::uint64_t seed);

}  // namespace streamcast::loss
