#include "src/loss/recovery.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/policy/registry.hpp"

namespace streamcast::loss {

namespace {

std::uint64_t flight_key(NodeKey to, PacketId p) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(to)) << 40) ^
         static_cast<std::uint64_t>(p);
}

}  // namespace

void SequenceTracker::mark(PacketId p) {
  if (p < next_) return;
  if (p == next_) {
    ++next_;
    while (!ahead_.empty() && *ahead_.begin() == next_) {
      ahead_.erase(ahead_.begin());
      ++next_;
    }
    return;
  }
  ahead_.insert(p);
}

void SequenceTracker::start_at(PacketId p) {
  if (p <= next_) return;
  next_ = p;
  ahead_.erase(ahead_.begin(), ahead_.lower_bound(next_));
  while (!ahead_.empty() && *ahead_.begin() == next_) {
    ahead_.erase(ahead_.begin());
    ++next_;
  }
}

RecoveryProtocol::RecoveryProtocol(const net::Topology& topology,
                                   sim::Protocol& inner,
                                   RecoveryOptions options)
    : topology_(topology), inner_(inner), options_(options) {
  const auto n = static_cast<std::size_t>(topology_.size());
  trackers_.resize(n);
  senders_seen_.resize(n);
  send_used_.resize(n);
  if (options_.fec_window < 1) options_.fec_window = 1;

  policy::RecoveryPolicyOptions po;
  po.fec_window = options_.fec_window;
  po.nack_delay = options_.nack_delay;
  po.dense_links = options_.dense_links;
  po.gap_timeout = options_.gap_timeout;
  po.sweep_tag = options_.sweep_tag;
  po.repair_horizon = options_.repair_horizon;
  po.source = options_.source;
  po.code = options_.code;
  const std::string name = options_.policy.empty()
                               ? policy::recovery_policy_name(options_.mode)
                               : options_.policy;
  policy_ = policy::recovery_policy(name).make(po);
  policy_->bind(*this);
}

NodeKey RecoveryProtocol::node_count() const { return topology_.size(); }

Slot RecoveryProtocol::link_latency(NodeKey from, NodeKey to) const {
  return topology_.latency(from, to);
}

bool RecoveryProtocol::holds(NodeKey node, PacketId p) const {
  if (node == options_.source) return true;
  return trackers_[static_cast<std::size_t>(node)].has(p);
}

bool RecoveryProtocol::has_arrived(NodeKey node, PacketId p) const {
  return trackers_[static_cast<std::size_t>(node)].has(p);
}

PacketId RecoveryProtocol::gap_free_prefix(NodeKey node) const {
  return trackers_[static_cast<std::size_t>(node)].gap_free_prefix();
}

const std::set<PacketId>& RecoveryProtocol::ahead(NodeKey node) const {
  return trackers_[static_cast<std::size_t>(node)].ahead();
}

bool RecoveryProtocol::in_flight(NodeKey to, PacketId p) const {
  return in_flight_.contains(flight_key(to, p));
}

void RecoveryProtocol::set_in_flight(NodeKey to, PacketId p, bool value) {
  if (value) {
    in_flight_.insert(flight_key(to, p));
  } else {
    in_flight_.erase(flight_key(to, p));
  }
}

void RecoveryProtocol::mark_outstanding(NodeKey to, std::int32_t tag,
                                        PacketId p) {
  if (trackers_[static_cast<std::size_t>(to)].has(p)) return;
  const auto key = std::make_pair(to, p);
  if (outstanding_tag_.contains(key)) return;
  outstanding_tag_[key] = tag;
  outstanding_[{to, tag}].insert(p);
}

void RecoveryProtocol::abandon_gap(Slot t, NodeKey to, PacketId p) {
  abandoned_.insert(flight_key(to, p));
  const auto out_it = outstanding_tag_.find({to, p});
  if (out_it == outstanding_tag_.end()) return;
  const std::int32_t tag = out_it->second;
  auto& set = outstanding_[{to, tag}];
  set.erase(p);
  if (set.empty()) outstanding_.erase({to, tag});
  outstanding_tag_.erase(out_it);
  // The packet itself is never delivered — the continuity metrics report it
  // as an undecodable gap — but whatever it was holding back flows again.
  flush_held_back(t, to, tag);
}

const std::vector<NodeKey>& RecoveryProtocol::senders_seen(NodeKey to) const {
  return senders_seen_[static_cast<std::size_t>(to)];
}

bool RecoveryProtocol::send_available(NodeKey from) const {
  return send_used_[static_cast<std::size_t>(from)] <
         topology_.send_capacity(from);
}

void RecoveryProtocol::use_send(NodeKey from) {
  ++send_used_[static_cast<std::size_t>(from)];
}

bool RecoveryProtocol::recv_headroom(Slot arrive, NodeKey to) const {
  const auto it = planned_recv_.find(arrive);
  const int used =
      it == planned_recv_.end() ? 0 : it->second[static_cast<std::size_t>(to)];
  return used < topology_.recv_capacity(to);
}

void RecoveryProtocol::note_planned_arrival(Slot arrive, NodeKey to) {
  auto it = planned_recv_.find(arrive);
  if (it == planned_recv_.end()) {
    it = planned_recv_
             .emplace(arrive,
                      std::vector<int>(
                          static_cast<std::size_t>(topology_.size()), 0))
             .first;
  }
  ++it->second[static_cast<std::size_t>(to)];
}

void RecoveryProtocol::ingest_decoded(Slot t, const Tx& tx) {
  const sim::Delivery synthetic{.sent = t, .received = t, .tx = tx};
  for (sim::DeliveryObserver* obs : observers_) obs->on_delivery(synthetic);
  ingest_data(t, tx);
}

void RecoveryProtocol::seat(NodeKey node, PacketId live_edge) {
  trackers_[static_cast<std::size_t>(node)].start_at(live_edge);
}

void RecoveryProtocol::transmit(Slot t, std::vector<Tx>& out) {
  inner_scratch_.clear();
  inner_.transmit(t, inner_scratch_);
  std::ranges::fill(send_used_, 0);
  while (!planned_recv_.empty() && planned_recv_.begin()->first < t) {
    planned_recv_.erase(planned_recv_.begin());
  }

  for (const Tx& tx : inner_scratch_) {
    assert(tx.packet < sim::kControlIdBase);
    if (!holds(tx.from, tx.packet)) {
      // Causality violation: the lossless schedule assumed this packet had
      // arrived at the sender. Suppress; the policy repairs the downstream
      // gap once the sender (or anyone else) holds it.
      ++stats_.suppressed_causal;
      policy_->on_suppressed_causal(*this, t, tx);
      continue;
    }
    if (holds(tx.to, tx.packet) || in_flight(tx.to, tx.packet)) {
      // Redundant under loss (e.g. a chain node relaying a stale "newest"
      // twice, or a repair already on its way). Suppressing keeps the
      // duplicate-free engine invariant and frees the slot for repairs.
      ++stats_.suppressed_redundant;
      policy_->on_suppressed_redundant(*this, t, tx);
      continue;
    }
    policy_->on_data_emitted(*this, t, tx);
    out.push_back(tx);
    ++send_used_[static_cast<std::size_t>(tx.from)];
    note_planned_arrival(t + topology_.latency(tx.from, tx.to) - 1, tx.to);
    set_in_flight(tx.to, tx.packet, true);
    ++stats_.data_transmissions;
  }

  policy_->emit(*this, t, out);
}

void RecoveryProtocol::deliver(Slot t, const Tx& tx) {
  if (tx.packet >= sim::kControlIdBase) {
    policy_->on_control_arrival(*this, t, tx);
    return;
  }
  auto& seen = senders_seen_[static_cast<std::size_t>(tx.to)];
  if (std::ranges::find(seen, tx.from) == seen.end()) seen.push_back(tx.from);
  ingest_data(t, tx);
  policy_->on_data_arrival(*this, t, tx);
}

void RecoveryProtocol::ingest_data(Slot t, const Tx& tx) {
  const NodeKey to = tx.to;
  trackers_[static_cast<std::size_t>(to)].mark(tx.packet);
  set_in_flight(to, tx.packet, false);
  policy_->on_data_ingested(*this, t, tx);
  // If this packet was a known gap, retire it from the in-order gate (the
  // release below plus the flush unblocks everything it was holding back).
  std::int32_t tag = tx.tag;
  const auto out_it = outstanding_tag_.find({to, tx.packet});
  if (out_it != outstanding_tag_.end()) {
    tag = out_it->second;
    auto& set = outstanding_[{to, tag}];
    set.erase(tx.packet);
    if (set.empty()) outstanding_.erase({to, tag});
    outstanding_tag_.erase(out_it);
  }
  Tx release = tx;
  release.tag = tag;
  release_in_order(t, release);
  flush_held_back(t, to, tag);
}

void RecoveryProtocol::release_in_order(Slot t, const Tx& tx) {
  const auto it = outstanding_.find({tx.to, tx.tag});
  if (it != outstanding_.end() && !it->second.empty() &&
      *it->second.begin() < tx.packet) {
    held_back_[{tx.to, tx.tag}].emplace(tx.packet, tx);
    return;
  }
  inner_.deliver(t, tx);
}

void RecoveryProtocol::flush_held_back(Slot t, NodeKey to, std::int32_t tag) {
  const auto key = std::make_pair(to, tag);
  const auto held_it = held_back_.find(key);
  if (held_it == held_back_.end()) return;
  auto& held = held_it->second;
  while (!held.empty()) {
    const auto out_it = outstanding_.find(key);
    const PacketId next = held.begin()->first;
    if (out_it != outstanding_.end() && !out_it->second.empty() &&
        *out_it->second.begin() < next) {
      break;  // an older gap is still open
    }
    const Tx tx = held.begin()->second;
    held.erase(held.begin());
    inner_.deliver(t, tx);
  }
  if (held.empty()) held_back_.erase(held_it);
}

void RecoveryProtocol::on_delivery(const sim::Delivery& d) {
  // Fan the post-repair stream out to attached metrics. Policy-decoded
  // packets are synthesized in ingest_decoded; everything the engine
  // actually delivered (data, repairs, parity) passes through here.
  for (sim::DeliveryObserver* obs : observers_) obs->on_delivery(d);
}

void RecoveryProtocol::on_drop(const sim::Drop& d) {
  const Tx& tx = d.tx;
  if (tx.packet >= sim::kControlIdBase) {
    policy_->on_control_drop(*this, d);
    return;
  }
  set_in_flight(tx.to, tx.packet, false);
  mark_outstanding(tx.to, tx.tag, tx.packet);
  for (sim::DeliveryObserver* obs : observers_) obs->on_drop(d);
  policy_->on_data_drop(*this, d);
}

bool RecoveryProtocol::all_gap_free(NodeKey from, NodeKey to,
                                    PacketId window) const {
  for (NodeKey n = from; n <= to; ++n) {
    if (gap_free_prefix(n) < window) return false;
  }
  return true;
}

bool RecoveryProtocol::gaps_resolved(NodeKey from, NodeKey to,
                                     PacketId window) const {
  for (NodeKey n = from; n <= to; ++n) {
    const auto& tracker = trackers_[static_cast<std::size_t>(n)];
    for (PacketId p = tracker.gap_free_prefix(); p < window; ++p) {
      if (!tracker.has(p) && !abandoned_.contains(flight_key(n, p))) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace streamcast::loss
