#include "src/loss/recovery.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace streamcast::loss {

namespace {

std::uint64_t flight_key(NodeKey to, PacketId p) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(to)) << 40) ^
         static_cast<std::uint64_t>(p);
}

/// Cap on how many skipped ids one transmission may open for repair; a dense
/// scheme advances one id per slot per link, so anything near this bound
/// would indicate a mis-flagged strided scheme.
constexpr PacketId kMaxSkipRange = 4096;

}  // namespace

const char* recovery_mode_name(RecoveryMode m) {
  switch (m) {
    case RecoveryMode::kNone:
      return "none";
    case RecoveryMode::kNack:
      return "nack";
    case RecoveryMode::kFec:
      return "fec";
  }
  return "?";
}

double RecoveryStats::redundancy_overhead() const {
  if (data_transmissions == 0) return 0.0;
  return static_cast<double>(retransmissions + parity_transmissions) /
         static_cast<double>(data_transmissions);
}

void SequenceTracker::mark(PacketId p) {
  if (p < next_) return;
  if (p == next_) {
    ++next_;
    while (!ahead_.empty() && *ahead_.begin() == next_) {
      ahead_.erase(ahead_.begin());
      ++next_;
    }
    return;
  }
  ahead_.insert(p);
}

RecoveryProtocol::RecoveryProtocol(const net::Topology& topology,
                                   sim::Protocol& inner,
                                   RecoveryOptions options)
    : topology_(topology), inner_(inner), options_(options) {
  const auto n = static_cast<std::size_t>(topology_.size());
  trackers_.resize(n);
  senders_seen_.resize(n);
  unresolved_.resize(n);
  send_used_.resize(n);
  if (options_.fec_window < 1) options_.fec_window = 1;
}

bool RecoveryProtocol::holds(NodeKey node, PacketId p) const {
  if (node == options_.source) return true;
  return trackers_[static_cast<std::size_t>(node)].has(p);
}

bool RecoveryProtocol::in_flight(NodeKey to, PacketId p) const {
  return in_flight_.contains(flight_key(to, p));
}

void RecoveryProtocol::set_in_flight(NodeKey to, PacketId p, bool value) {
  if (value) {
    in_flight_.insert(flight_key(to, p));
  } else {
    in_flight_.erase(flight_key(to, p));
  }
}

Slot RecoveryProtocol::nack_due(Slot detect_slot, NodeKey from,
                                NodeKey to) const {
  // The receiver notices the gap in `detect_slot`, NACKs the sender (one
  // reverse-link trip), and the repair may leave the following slot.
  return detect_slot + topology_.latency(to, from) + 1 + options_.nack_delay;
}

void RecoveryProtocol::schedule_repair(NodeKey to, PacketId p, NodeKey sender,
                                       std::int32_t tag, Slot due) {
  auto [it, inserted] = pending_.try_emplace(
      {to, p}, Repair{.sender = sender, .tag = tag, .due = due});
  if (!inserted) {
    // A repair for this gap was already pending (e.g. the repair itself was
    // dropped): refresh it.
    it->second.due = due;
    it->second.in_flight = false;
  }
  ++stats_.nacks;
}

void RecoveryProtocol::mark_outstanding(NodeKey to, std::int32_t tag,
                                        PacketId p) {
  if (trackers_[static_cast<std::size_t>(to)].has(p)) return;
  const auto key = std::make_pair(to, p);
  if (outstanding_tag_.contains(key)) return;
  outstanding_tag_[key] = tag;
  outstanding_[{to, tag}].insert(p);
}

void RecoveryProtocol::detect_dense_skips(Slot t, const Tx& tx) {
  // On a dense link the very first emission is id 0 on a lossless run, so an
  // absent entry is baseline -1: a first emission of id > 0 means the ids
  // below it were lost upstream before this link ever carried them.
  const auto it = last_emitted_.find({tx.from, tx.to});
  const PacketId last = it == last_emitted_.end() ? -1 : it->second;
  if (tx.packet <= last + 1) return;
  const PacketId lo = std::max(last + 1, tx.packet - kMaxSkipRange);
  for (PacketId g = lo; g < tx.packet; ++g) {
    if (trackers_[static_cast<std::size_t>(tx.to)].has(g)) continue;
    if (in_flight(tx.to, g)) continue;
    if (pending_.contains({tx.to, g})) continue;
    mark_outstanding(tx.to, tx.tag, g);
    schedule_repair(tx.to, g, tx.from, tx.tag,
                    nack_due(t + topology_.latency(tx.from, tx.to) - 1,
                             tx.from, tx.to));
  }
}

bool RecoveryProtocol::recv_headroom(Slot arrive, NodeKey to) const {
  const auto it = planned_recv_.find(arrive);
  const int used =
      it == planned_recv_.end() ? 0 : it->second[static_cast<std::size_t>(to)];
  return used < topology_.recv_capacity(to);
}

void RecoveryProtocol::note_planned_arrival(Slot arrive, NodeKey to) {
  auto it = planned_recv_.find(arrive);
  if (it == planned_recv_.end()) {
    it = planned_recv_
             .emplace(arrive,
                      std::vector<int>(
                          static_cast<std::size_t>(topology_.size()), 0))
             .first;
  }
  ++it->second[static_cast<std::size_t>(to)];
}

void RecoveryProtocol::transmit(Slot t, std::vector<Tx>& out) {
  inner_scratch_.clear();
  inner_.transmit(t, inner_scratch_);
  std::ranges::fill(send_used_, 0);
  while (!planned_recv_.empty() && planned_recv_.begin()->first < t) {
    planned_recv_.erase(planned_recv_.begin());
  }

  for (const Tx& tx : inner_scratch_) {
    assert(tx.packet < sim::kControlIdBase);
    if (!holds(tx.from, tx.packet)) {
      // Causality violation: the lossless schedule assumed this packet had
      // arrived at the sender. Suppress, and repair the downstream gap once
      // the sender (or anyone else) holds it.
      ++stats_.suppressed_causal;
      auto& last = last_emitted_[{tx.from, tx.to}];
      last = std::max(last, tx.packet);
      if (options_.mode == RecoveryMode::kNack && !holds(tx.to, tx.packet) &&
          !pending_.contains({tx.to, tx.packet})) {
        mark_outstanding(tx.to, tx.tag, tx.packet);
        schedule_repair(tx.to, tx.packet, tx.from, tx.tag,
                        nack_due(t + topology_.latency(tx.from, tx.to) - 1,
                                 tx.from, tx.to));
      } else if (options_.mode != RecoveryMode::kNack) {
        mark_outstanding(tx.to, tx.tag, tx.packet);
      }
      continue;
    }
    if (holds(tx.to, tx.packet) || in_flight(tx.to, tx.packet)) {
      // Redundant under loss (e.g. a chain node relaying a stale "newest"
      // twice, or a repair already on its way). Suppressing keeps the
      // duplicate-free engine invariant and frees the slot for repairs.
      ++stats_.suppressed_redundant;
      auto& last = last_emitted_[{tx.from, tx.to}];
      last = std::max(last, tx.packet);
      continue;
    }
    if (options_.dense_links && options_.mode == RecoveryMode::kNack) {
      detect_dense_skips(t, tx);
    }
    auto& last = last_emitted_[{tx.from, tx.to}];
    last = std::max(last, tx.packet);
    out.push_back(tx);
    ++send_used_[static_cast<std::size_t>(tx.from)];
    note_planned_arrival(t + topology_.latency(tx.from, tx.to) - 1, tx.to);
    set_in_flight(tx.to, tx.packet, true);
    ++stats_.data_transmissions;
    if (options_.mode == RecoveryMode::kFec) fec_accumulate(tx);
  }

  if (options_.mode == RecoveryMode::kNack) {
    if (options_.gap_timeout >= 0) sweep_aged_gaps(t);
    emit_repairs(t, out);
  }
  if (options_.mode == RecoveryMode::kFec) emit_parity(t, out);
}

void RecoveryProtocol::sweep_aged_gaps(Slot t) {
  const auto size = static_cast<NodeKey>(trackers_.size());
  for (NodeKey v = 0; v < size; ++v) {
    if (v == options_.source) continue;
    const SequenceTracker& tracker = trackers_[static_cast<std::size_t>(v)];
    if (tracker.ahead().empty()) continue;
    PacketId expected = tracker.gap_free_prefix();
    for (const PacketId a : tracker.ahead()) {
      for (PacketId g = expected; g < a; ++g) {
        const auto key = std::make_pair(v, g);
        const auto [it, first_seen] = gap_seen_.try_emplace(key, t);
        if (first_seen) continue;
        if (t - it->second < options_.gap_timeout) continue;
        if (in_flight(v, g) || pending_.contains(key)) continue;
        mark_outstanding(v, /*tag=*/0, g);
        schedule_repair(v, g, options_.source, /*tag=*/0, t);
      }
      expected = a + 1;
    }
  }
}

void RecoveryProtocol::emit_repairs(Slot t, std::vector<Tx>& out) {
  for (auto it = pending_.begin(); it != pending_.end();) {
    const auto [to, packet] = it->first;
    Repair& repair = it->second;
    if (trackers_[static_cast<std::size_t>(to)].has(packet)) {
      it = pending_.erase(it);
      continue;
    }
    if (repair.in_flight || repair.due > t || in_flight(to, packet)) {
      ++it;
      continue;
    }
    // Pick a repair source: the original sender if it holds the packet by
    // now, else any node that has previously delivered to this receiver,
    // else the stream source — first match with residual send capacity and
    // receive headroom at the arrival slot.
    NodeKey chosen = sim::kNoNode;
    std::vector<NodeKey> candidates;
    candidates.push_back(repair.sender);
    for (const NodeKey s : senders_seen_[static_cast<std::size_t>(to)]) {
      candidates.push_back(s);
    }
    candidates.push_back(options_.source);
    for (const NodeKey s : candidates) {
      if (s == to || s < 0) continue;
      if (!holds(s, packet)) continue;
      if (send_used_[static_cast<std::size_t>(s)] >=
          topology_.send_capacity(s)) {
        continue;
      }
      if (!recv_headroom(t + topology_.latency(s, to) - 1, to)) continue;
      chosen = s;
      break;
    }
    if (chosen == sim::kNoNode) {
      ++it;  // no capacity or no holder this slot; retry next slot
      continue;
    }
    out.push_back(Tx{.from = chosen,
                     .to = to,
                     .packet = packet,
                     .tag = repair.tag,
                     .retransmit = true});
    ++stats_.retransmissions;
    ++send_used_[static_cast<std::size_t>(chosen)];
    note_planned_arrival(t + topology_.latency(chosen, to) - 1, to);
    set_in_flight(to, packet, true);
    repair.in_flight = true;
    ++it;
  }
}

void RecoveryProtocol::fec_accumulate(const Tx& tx) {
  auto& window = fec_acc_[{tx.from, tx.to}];
  window.push_back(tx);
  if (std::cmp_less(window.size(), options_.fec_window)) return;
  ParityWindow parity{.from = tx.from, .to = tx.to, .data = std::move(window)};
  window.clear();
  parity_queue_.emplace_back(next_parity_id_++, std::move(parity));
}

void RecoveryProtocol::emit_parity(Slot t, std::vector<Tx>& out) {
  for (auto it = parity_queue_.begin(); it != parity_queue_.end();) {
    const auto& [id, window] = *it;
    if (send_used_[static_cast<std::size_t>(window.from)] >=
            topology_.send_capacity(window.from) ||
        !recv_headroom(t + topology_.latency(window.from, window.to) - 1,
                       window.to)) {
      ++it;  // blocked on capacity; keep for a later slot
      continue;
    }
    out.push_back(Tx{.from = window.from,
                     .to = window.to,
                     .packet = id,
                     .tag = -1});
    ++send_used_[static_cast<std::size_t>(window.from)];
    note_planned_arrival(t + topology_.latency(window.from, window.to) - 1,
                         window.to);
    ++stats_.parity_transmissions;
    parity_windows_.emplace(id, window);
    it = parity_queue_.erase(it);
  }
}

void RecoveryProtocol::deliver(Slot t, const Tx& tx) {
  if (tx.packet >= sim::kControlIdBase) {
    handle_parity_arrival(t, tx);
    return;
  }
  auto& seen = senders_seen_[static_cast<std::size_t>(tx.to)];
  if (std::ranges::find(seen, tx.from) == seen.end()) seen.push_back(tx.from);
  ingest_data(t, tx);
  recheck_unresolved(t, tx.to);
}

void RecoveryProtocol::ingest_data(Slot t, const Tx& tx) {
  const NodeKey to = tx.to;
  trackers_[static_cast<std::size_t>(to)].mark(tx.packet);
  set_in_flight(to, tx.packet, false);
  pending_.erase({to, tx.packet});
  gap_seen_.erase({to, tx.packet});
  // If this packet was a known gap, retire it from the in-order gate (the
  // release below plus the flush unblocks everything it was holding back).
  std::int32_t tag = tx.tag;
  const auto out_it = outstanding_tag_.find({to, tx.packet});
  if (out_it != outstanding_tag_.end()) {
    tag = out_it->second;
    auto& set = outstanding_[{to, tag}];
    set.erase(tx.packet);
    if (set.empty()) outstanding_.erase({to, tag});
    outstanding_tag_.erase(out_it);
  }
  Tx release = tx;
  release.tag = tag;
  release_in_order(t, release);
  flush_held_back(t, to, tag);
}

void RecoveryProtocol::release_in_order(Slot t, const Tx& tx) {
  const auto it = outstanding_.find({tx.to, tx.tag});
  if (it != outstanding_.end() && !it->second.empty() &&
      *it->second.begin() < tx.packet) {
    held_back_[{tx.to, tx.tag}].emplace(tx.packet, tx);
    return;
  }
  inner_.deliver(t, tx);
}

void RecoveryProtocol::flush_held_back(Slot t, NodeKey to, std::int32_t tag) {
  const auto key = std::make_pair(to, tag);
  const auto held_it = held_back_.find(key);
  if (held_it == held_back_.end()) return;
  auto& held = held_it->second;
  while (!held.empty()) {
    const auto out_it = outstanding_.find(key);
    const PacketId next = held.begin()->first;
    if (out_it != outstanding_.end() && !out_it->second.empty() &&
        *out_it->second.begin() < next) {
      break;  // an older gap is still open
    }
    const Tx tx = held.begin()->second;
    held.erase(held.begin());
    inner_.deliver(t, tx);
  }
  if (held.empty()) held_back_.erase(held_it);
}

void RecoveryProtocol::handle_parity_arrival(Slot t, const Tx& tx) {
  if (!try_decode(t, tx.packet) && parity_windows_.contains(tx.packet)) {
    unresolved_[static_cast<std::size_t>(tx.to)].push_back(tx.packet);
  }
}

bool RecoveryProtocol::try_decode(Slot t, PacketId parity_id) {
  const auto it = parity_windows_.find(parity_id);
  if (it == parity_windows_.end()) return true;  // already resolved
  const ParityWindow& window = it->second;
  const NodeKey to = window.to;
  const Tx* missing = nullptr;
  int missing_count = 0;
  for (const Tx& data : window.data) {
    if (trackers_[static_cast<std::size_t>(to)].has(data.packet)) continue;
    ++missing_count;
    missing = &data;
  }
  if (missing_count == 0) {
    parity_windows_.erase(it);
    return true;
  }
  if (missing_count > 1 ||
      in_flight(to, missing->packet)) {  // cannot (or need not) decode yet
    return false;
  }
  // XOR of the parity with the w-1 received packets yields the missing one.
  ++stats_.fec_decodes;
  const Tx decoded = *missing;
  parity_windows_.erase(it);
  const sim::Delivery synthetic{.sent = t, .received = t, .tx = decoded};
  for (sim::DeliveryObserver* obs : observers_) obs->on_delivery(synthetic);
  ingest_data(t, decoded);
  return true;
}

void RecoveryProtocol::recheck_unresolved(Slot t, NodeKey node) {
  auto& list = unresolved_[static_cast<std::size_t>(node)];
  // A successful decode can make another window of the same receiver
  // decodable, so iterate to a fixpoint.
  while (std::erase_if(list, [&](const PacketId id) {
           return try_decode(t, id);
         }) > 0) {
  }
}

void RecoveryProtocol::on_delivery(const sim::Delivery& d) {
  // Fan the post-repair stream out to attached metrics. FEC-decoded packets
  // are synthesized in try_decode; everything the engine actually delivered
  // (data, repairs, parity) passes through here.
  for (sim::DeliveryObserver* obs : observers_) obs->on_delivery(d);
}

void RecoveryProtocol::on_drop(const sim::Drop& d) {
  const Tx& tx = d.tx;
  if (tx.packet >= sim::kControlIdBase) {
    // A lost parity packet: its window is simply unprotected.
    parity_windows_.erase(tx.packet);
    return;
  }
  set_in_flight(tx.to, tx.packet, false);
  mark_outstanding(tx.to, tx.tag, tx.packet);
  for (sim::DeliveryObserver* obs : observers_) obs->on_drop(d);
  if (options_.mode == RecoveryMode::kNack) {
    schedule_repair(tx.to, tx.packet, tx.from, tx.tag,
                    nack_due(d.would_arrive, tx.from, tx.to));
  }
}

PacketId RecoveryProtocol::gap_free_prefix(NodeKey node) const {
  return trackers_[static_cast<std::size_t>(node)].gap_free_prefix();
}

bool RecoveryProtocol::all_gap_free(NodeKey from, NodeKey to,
                                    PacketId window) const {
  for (NodeKey n = from; n <= to; ++n) {
    if (gap_free_prefix(n) < window) return false;
  }
  return true;
}

}  // namespace streamcast::loss
