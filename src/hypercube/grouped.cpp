#include "src/hypercube/grouped.hpp"

#include <stdexcept>

namespace streamcast::hypercube {

std::vector<Group> decompose_grouped(NodeKey n, int d) {
  if (n < 1) throw std::invalid_argument("need at least one receiver");
  if (d < 1) throw std::invalid_argument("d < 1");
  std::vector<Group> groups;
  const int used = static_cast<int>(std::min<NodeKey>(d, n));
  NodeKey key = 1;
  NodeKey remaining = n;
  for (int g = 0; g < used; ++g) {
    // Even split: the first (n mod used) groups take one extra node.
    const NodeKey size = remaining / (used - g) +
                         (remaining % (used - g) != 0 ? 1 : 0);
    groups.push_back(Group{.chain = decompose_chain(size, key, 0)});
    key += size;
    remaining -= size;
  }
  return groups;
}

}  // namespace streamcast::hypercube
