// Multi-hypercube decomposition for arbitrary N (§3.2).
//
// N receivers are split into a chain of full cubes: the first takes
// N_1 = 2^(k_1) - 1 nodes with k_1 = floor(log2(N+1)), and the remainder
// recurses. Segment s starts its local clock at
//     start_s = start_(s-1) + k_(s-1)
// because its packets are injected by the *feeder* of segment s-1: in
// segment local slot tau, the vertex paired with the (possibly virtual)
// source, 2^(tau mod k), receives packet tau from upstream and has no
// in-cube send of its own — so it forwards the packet the cube just finished
// (tau - k) downstream. The packet index expected by segment s+1 at global
// slot t is exactly tau_s - k_s, so the chain composes with no buffering.
//
// Every node of segment s can play packet m in global slot start_s + m + k_s
// (cube-wide consumption), giving worst-case delay start_last + k_last =
// O(log^2 N) with O(1) buffers and O(log N) neighbors (Proposition 2).
#pragma once

#include <vector>

#include "src/hypercube/cube.hpp"

namespace streamcast::hypercube {

/// One cube of a chain. Receivers occupy node keys
/// [first, first + cube_receivers(k)); vertex v (1 <= v < 2^k) is the node
/// with key first + v - 1. Vertex 0 is the source for the first segment and
/// a virtual role (played by the upstream feeder) afterwards.
struct Segment {
  int k = 0;
  Slot start = 0;
  NodeKey first = 0;

  NodeKey receivers() const { return cube_receivers(k); }
  NodeKey key_of(Vertex v) const {
    return first + static_cast<NodeKey>(v) - 1;
  }
  /// Global slot in which packet m is consumed cube-wide; also every
  /// member's playback start under the scheme's synchronized schedule.
  Slot consume_slot(sim::PacketId m) const { return start + m + k; }
  /// Synchronized playback delay: every member can start at start + k.
  Slot playback_delay() const { return start + k; }
  /// Largest *individually feasible* start among members: for k >= 2 the
  /// entry vertices only complete their windows at the consumption slot,
  /// so the worst member equals the synchronized delay; a k = 1 segment's
  /// single node receives every packet directly (delay = start).
  Slot worst_member_delay() const { return k == 1 ? start : start + k; }

  friend bool operator==(const Segment&, const Segment&) = default;
};

/// Chain decomposition of n receivers with keys starting at `first_key`
/// and local clocks starting at `first_start`.
std::vector<Segment> decompose_chain(NodeKey n, NodeKey first_key = 1,
                                     Slot first_start = 0);

}  // namespace streamcast::hypercube
