#include "src/hypercube/analysis.hpp"

#include <algorithm>
#include <cmath>

namespace streamcast::hypercube {

Slot worst_delay(NodeKey n) {
  const auto chain = decompose_chain(n);
  return chain.back().playback_delay();
}

Slot measured_worst_delay(NodeKey n) {
  Slot worst = 0;
  for (const Segment& seg : decompose_chain(n)) {
    worst = std::max(worst, seg.worst_member_delay());
  }
  return worst;
}

Slot measured_worst_delay_grouped(NodeKey n, int d) {
  Slot worst = 0;
  for (const Group& g : decompose_grouped(n, d)) {
    for (const Segment& seg : g.chain) {
      worst = std::max(worst, seg.worst_member_delay());
    }
  }
  return worst;
}

double average_delay(NodeKey n) {
  const auto chain = decompose_chain(n);
  double sum = 0;
  for (const Segment& seg : chain) {
    sum += static_cast<double>(seg.receivers()) *
           static_cast<double>(seg.playback_delay());
  }
  return sum / static_cast<double>(n);
}

double theorem4_bound(NodeKey n) {
  return 2.0 * std::log2(static_cast<double>(n));
}

Slot worst_delay_grouped(NodeKey n, int d) {
  Slot worst = 0;
  for (const Group& g : decompose_grouped(n, d)) {
    worst = std::max(worst, g.chain.back().playback_delay());
  }
  return worst;
}

double average_delay_grouped(NodeKey n, int d) {
  double sum = 0;
  for (const Group& g : decompose_grouped(n, d)) {
    for (const Segment& seg : g.chain) {
      sum += static_cast<double>(seg.receivers()) *
             static_cast<double>(seg.playback_delay());
    }
  }
  return sum / static_cast<double>(n);
}

int neighbor_bound(NodeKey n) {
  const auto chain = decompose_chain(n);
  int bound = 0;
  for (std::size_t s = 0; s < chain.size(); ++s) {
    int b = chain[s].k;                       // cube neighbors
    if (s + 1 < chain.size()) b += chain[s + 1].k;  // downstream targets
    if (s > 0) b += chain[s - 1].k;                  // upstream feeders
    bound = std::max(bound, b);
  }
  return bound;
}

}  // namespace streamcast::hypercube
