#include "src/hypercube/analysis.hpp"

#include <algorithm>
#include <cmath>

#include "src/static/envelopes.hpp"

namespace streamcast::hypercube {

Slot worst_delay(NodeKey n) {
  // Constexpr twin of decompose_chain().back().playback_delay(): the
  // greedy decomposition's running dimension sum, shared with the
  // static_assert grid in src/static/proofs.cpp. Equality against the
  // decomposition is covered by tests/static_envelope_test.cpp.
  return static_cast<Slot>(envelope::hypercube_delay_bound(n));
}

Slot measured_worst_delay(NodeKey n) {
  Slot worst = 0;
  for (const Segment& seg : decompose_chain(n)) {
    worst = std::max(worst, seg.worst_member_delay());
  }
  return worst;
}

Slot measured_worst_delay_grouped(NodeKey n, int d) {
  Slot worst = 0;
  for (const Group& g : decompose_grouped(n, d)) {
    for (const Segment& seg : g.chain) {
      worst = std::max(worst, seg.worst_member_delay());
    }
  }
  return worst;
}

double average_delay(NodeKey n) {
  const auto chain = decompose_chain(n);
  double sum = 0;
  for (const Segment& seg : chain) {
    sum += static_cast<double>(seg.receivers()) *
           static_cast<double>(seg.playback_delay());
  }
  return sum / static_cast<double>(n);
}

double theorem4_bound(NodeKey n) {
  return 2.0 * std::log2(static_cast<double>(n));
}

Slot worst_delay_grouped(NodeKey n, int d) {
  // Same even-split arithmetic as decompose_grouped, via the constexpr kit.
  return static_cast<Slot>(envelope::hypercube_grouped_delay_bound(n, d));
}

double average_delay_grouped(NodeKey n, int d) {
  double sum = 0;
  for (const Group& g : decompose_grouped(n, d)) {
    for (const Segment& seg : g.chain) {
      sum += static_cast<double>(seg.receivers()) *
             static_cast<double>(seg.playback_delay());
    }
  }
  return sum / static_cast<double>(n);
}

int neighbor_bound(NodeKey n) {
  const auto chain = decompose_chain(n);
  int bound = 0;
  for (std::size_t s = 0; s < chain.size(); ++s) {
    int b = chain[s].k;                       // cube neighbors
    if (s + 1 < chain.size()) b += chain[s + 1].k;  // downstream targets
    if (s > 0) b += chain[s - 1].k;                  // upstream feeders
    bound = std::max(bound, b);
  }
  return bound;
}

}  // namespace streamcast::hypercube
