#include "src/hypercube/dynamics.hpp"

#include <algorithm>
#include <stdexcept>

namespace streamcast::hypercube {

HypercubeMembership::HypercubeMembership(NodeKey initial_n)
    : n_(initial_n), chain_(decompose_chain(initial_n)) {
  if (initial_n < 1) throw std::invalid_argument("need at least one peer");
  peer_.assign(static_cast<std::size_t>(n_) + 1, kNoPeer);
  for (NodeKey rank = 1; rank <= n_; ++rank) peer_[static_cast<std::size_t>(
      rank)] = next_peer_++;
}

PeerId HypercubeMembership::peer_at(NodeKey rank) const {
  if (rank < 1 || rank > n_) return kNoPeer;
  return peer_[static_cast<std::size_t>(rank)];
}

NodeKey HypercubeMembership::rank_of(PeerId peer) const {
  for (NodeKey rank = 1; rank <= n_; ++rank) {
    if (peer_[static_cast<std::size_t>(rank)] == peer) return rank;
  }
  return -1;
}

HypercubeMembership::Role HypercubeMembership::role_of(
    const std::vector<Segment>& chain, NodeKey rank) {
  for (const Segment& seg : chain) {
    if (rank < seg.first + seg.receivers()) {
      return Role{.first = seg.first,
                  .k = seg.k,
                  .vertex = static_cast<Vertex>(rank - seg.first + 1)};
    }
  }
  return Role{};  // unreachable for valid ranks
}

NodeKey roles_changed(NodeKey n, NodeKey n_after) {
  const auto before = decompose_chain(n);
  const auto after = decompose_chain(n_after);
  const NodeKey shared = std::min(n, n_after);
  NodeKey changed = 0;
  for (NodeKey rank = 1; rank <= shared; ++rank) {
    if (!(HypercubeMembership::role_of(before, rank) ==
          HypercubeMembership::role_of(after, rank))) {
      ++changed;
    }
  }
  return changed;
}

void HypercubeMembership::reseat(NodeKey new_n) {
  const auto next = decompose_chain(new_n);
  const NodeKey shared = std::min(n_, new_n);
  for (NodeKey rank = 1; rank <= shared; ++rank) {
    if (!(role_of(chain_, rank) == role_of(next, rank))) ++stats_.role_moves;
  }
  if (!chain_.empty() && !next.empty() && chain_[0].k != next[0].k) {
    ++stats_.full_reseats;
  }
  chain_ = next;
  n_ = new_n;
  peer_.resize(static_cast<std::size_t>(new_n) + 1, kNoPeer);
}

PeerId HypercubeMembership::add() {
  ++stats_.operations;
  reseat(n_ + 1);
  const PeerId peer = next_peer_++;
  peer_[static_cast<std::size_t>(n_)] = peer;
  return peer;
}

void HypercubeMembership::remove(PeerId peer) {
  ++stats_.operations;
  if (n_ <= 1) throw std::logic_error("cannot remove the last peer");
  const NodeKey rank = rank_of(peer);
  if (rank < 0) throw std::invalid_argument("unknown peer");
  if (rank != n_) {
    peer_[static_cast<std::size_t>(rank)] =
        peer_[static_cast<std::size_t>(n_)];
    ++stats_.rank_moves;
  }
  reseat(n_ - 1);
}

}  // namespace streamcast::hypercube
