// Closed-form QoS of the hypercube schemes: Propositions 1-2 and Theorem 4.
#pragma once

#include "src/hypercube/arbitrary.hpp"
#include "src/hypercube/grouped.hpp"

namespace streamcast::hypercube {

/// Worst-case playback delay of the single-chain scheme under synchronized
/// starts: the last segment's start_last + k_last. O(log^2 N) (Proposition
/// 2); for special N = 2^k - 1 this is exactly k (Proposition 1).
Slot worst_delay(NodeKey n);

/// Largest individually-feasible start over all nodes (what a simulation
/// measures): max over segments of worst_member_delay(). Always <=
/// worst_delay(n).
Slot measured_worst_delay(NodeKey n);
Slot measured_worst_delay_grouped(NodeKey n, int d);

/// Average playback delay of the single-chain scheme (segment delays
/// weighted by segment sizes). Theorem 4 bounds this by 2*log2(N).
double average_delay(NodeKey n);

/// Theorem 4's bound, 2*log2(N).
double theorem4_bound(NodeKey n);

/// Same metrics for the d-group variant (§3.2 end): the worst/average over
/// groups of size ~N/d.
Slot worst_delay_grouped(NodeKey n, int d);
double average_delay_grouped(NodeKey n, int d);

/// Upper bound on the number of distinct neighbors of any receiver in the
/// single-chain scheme: its k_s cube neighbors, plus (for segment s feeders)
/// up to k_(s+1) downstream targets, plus (for entry vertices) up to k_(s-1)
/// upstream feeders. O(log N).
int neighbor_bound(NodeKey n);

}  // namespace streamcast::hypercube
