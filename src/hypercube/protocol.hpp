// Hypercube streaming protocol for the slot engine (§3).
//
// Drives any set of independent chains (one for the plain arbitrary-N scheme
// of §3.2, d of them for the grouped variant). Node keys: 0 = source,
// receivers 1..N as assigned by the decomposition.
//
// Per slot t, per segment with local time tau = t - start >= 0 and pairing
// dimension j = tau mod k:
//   * Injection: the pair (0, 2^j). For the first segment the real source
//     sends packet tau; for segment s >= 1 the feeder of segment s-1 (its
//     own vertex paired with 0 this slot) sends packet tau, which is exactly
//     the packet its cube consumed in the previous slot.
//   * Exchange: every other pair (u, w) swaps at most one packet in each
//     direction — each side sends the oldest packet it holds that the other
//     lacks. This greedy rule realizes Figure 5's doubling invariant:
//     at the end of slot t, packet m is held by min(2^(t-m), 2^k-1) nodes.
//   * Consumption: packet m leaves every buffer of the segment after its
//     cube-wide consumption slot start + m + k.
#pragma once

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "src/hypercube/arbitrary.hpp"
#include "src/sim/protocol.hpp"

namespace streamcast::hypercube {

using sim::PacketId;
using sim::Tx;

class HypercubeProtocol final : public sim::Protocol {
 public:
  /// `source_key` is the node that injects fresh packets into each chain's
  /// first segment: the global source 0 for single-cluster streaming, a
  /// cluster's local root S'_i inside the super-tree composition.
  explicit HypercubeProtocol(std::vector<std::vector<Segment>> chains,
                             NodeKey source_key = 0);

  void transmit(Slot t, std::vector<Tx>& out) override;
  void deliver(Slot t, const Tx& tx) override;

  /// Total receivers across all chains.
  NodeKey receivers() const { return receivers_; }

  /// Marks a receiver as crashed *before* running: it neither sends nor
  /// receives from then on. Used by the resilience experiments — the cube
  /// has no per-packet redundancy, so a failure shadows every packet's
  /// doubling pattern (contrast with the multi-tree's d descriptions).
  void fail_node(NodeKey key);

  /// Packets currently buffered by a receiver (received, not yet consumed).
  std::size_t buffered(NodeKey key) const;
  /// Largest buffer ever observed across all receivers (Proposition 1/2's
  /// O(1) claim, measured).
  std::size_t max_buffered() const { return max_buffered_; }

 private:
  struct SegState {
    Segment seg;
    PacketId next_consume = 0;
  };

  std::vector<std::vector<SegState>> chains_;
  NodeKey source_key_ = 0;
  std::vector<std::set<PacketId>> held_;  // by node key; [source] unused
  std::vector<bool> failed_;              // crashed receivers
  /// Node key -> (chain, segment) of the cube the node belongs to;
  /// {-1, -1} for the source.
  std::vector<std::pair<std::int32_t, std::int32_t>> seg_of_;
  NodeKey receivers_ = 0;
  std::size_t max_buffered_ = 0;
};

}  // namespace streamcast::hypercube
