#include "src/hypercube/protocol.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace streamcast::hypercube {

HypercubeProtocol::HypercubeProtocol(std::vector<std::vector<Segment>> chains,
                                     NodeKey source_key)
    : source_key_(source_key) {
  if (chains.empty()) throw std::invalid_argument("need at least one chain");
  NodeKey max_key = 0;
  for (const auto& chain : chains) {
    if (chain.empty()) throw std::invalid_argument("empty chain");
    std::vector<SegState> states;
    states.reserve(chain.size());
    for (const Segment& seg : chain) {
      if (seg.k < 1) throw std::invalid_argument("segment dimension < 1");
      states.push_back(SegState{.seg = seg, .next_consume = 0});
      max_key = std::max(max_key, seg.first + seg.receivers() - 1);
      receivers_ += seg.receivers();
    }
    chains_.push_back(std::move(states));
  }
  held_.resize(static_cast<std::size_t>(std::max(max_key, source_key_)) + 1);
  failed_.resize(held_.size(), false);
  seg_of_.resize(held_.size(), {-1, -1});
  for (std::size_t c = 0; c < chains_.size(); ++c) {
    for (std::size_t s = 0; s < chains_[c].size(); ++s) {
      const Segment& seg = chains_[c][s].seg;
      for (NodeKey key = seg.first; key < seg.first + seg.receivers(); ++key) {
        seg_of_[static_cast<std::size_t>(key)] = {
            static_cast<std::int32_t>(c), static_cast<std::int32_t>(s)};
      }
    }
  }
}

void HypercubeProtocol::fail_node(NodeKey key) {
  failed_[static_cast<std::size_t>(key)] = true;
}

std::size_t HypercubeProtocol::buffered(NodeKey key) const {
  return held_[static_cast<std::size_t>(key)].size();
}

void HypercubeProtocol::transmit(Slot t, std::vector<Tx>& out) {
  // Phase 1: retire packets whose cube-wide consumption slot has passed.
  for (auto& chain : chains_) {
    for (auto& st : chain) {
      while (st.seg.consume_slot(st.next_consume) < t) {
        for (NodeKey key = st.seg.first;
             key < st.seg.first + st.seg.receivers(); ++key) {
          held_[static_cast<std::size_t>(key)].erase(st.next_consume);
        }
        ++st.next_consume;
      }
    }
  }

  // Phase 2: injections and pairwise exchanges.
  for (std::size_t c = 0; c < chains_.size(); ++c) {
    auto& chain = chains_[c];
    const auto tag = static_cast<std::int32_t>(c);
    for (std::size_t s = 0; s < chain.size(); ++s) {
      const Segment& seg = chain[s].seg;
      const Slot tau = t - seg.start;
      if (tau < 0) break;  // later segments start even later
      const int j = dimension_of(tau, seg.k);
      const Vertex entry = Vertex{1} << j;

      // Injection into this segment: packet tau, into vertex 2^j.
      NodeKey sender = source_key_;
      if (s > 0) {
        const Segment& up = chain[s - 1].seg;
        const Slot up_tau = t - up.start;
        const Vertex feeder = Vertex{1} << dimension_of(up_tau, up.k);
        sender = up.key_of(feeder);
        // The feeder forwards the packet its cube consumed last slot; the
        // chain's start offsets make that exactly tau. On reliable links the
        // feeder always holds it; on lossy links it may not — the emission
        // below is then suppressed and repaired by the recovery layer.
        assert(up_tau - up.k == tau);
      }
      const NodeKey entry_key = seg.key_of(entry);
      if (!failed_[static_cast<std::size_t>(sender)] &&
          !failed_[static_cast<std::size_t>(entry_key)]) {
        out.push_back(Tx{.from = sender,
                         .to = entry_key,
                         .packet = tau,
                         .tag = tag});
      }

      // In-cube exchanges along dimension j (skip the pair containing
      // vertex 0, handled above as the injection).
      const Vertex total = Vertex{1} << seg.k;
      const Vertex bit = Vertex{1} << j;
      for (Vertex v = 1; v < total; ++v) {
        if ((v & bit) != 0) continue;
        const Vertex w = v | bit;
        const NodeKey a = seg.key_of(v);
        const NodeKey b = seg.key_of(w);
        const bool a_ok = !failed_[static_cast<std::size_t>(a)];
        const bool b_ok = !failed_[static_cast<std::size_t>(b)];
        const auto& ha = held_[static_cast<std::size_t>(a)];
        const auto& hb = held_[static_cast<std::size_t>(b)];
        if (a_ok && b_ok) {
          for (const PacketId p : ha) {
            if (!hb.contains(p)) {
              out.push_back(Tx{.from = a, .to = b, .packet = p, .tag = tag});
              break;
            }
          }
          for (const PacketId p : hb) {
            if (!ha.contains(p)) {
              out.push_back(Tx{.from = b, .to = a, .packet = p, .tag = tag});
              break;
            }
          }
        }
      }
    }
  }
}

void HypercubeProtocol::deliver(Slot t, const Tx& tx) {
  (void)t;
  // A repair arriving after the packet's cube-wide consumption slot (lossy
  // links only) must not re-enter the buffer: retirement already passed, so
  // the entry would never leave and its set position would permanently win
  // the oldest-missing exchange scan. On reliable links every delivery
  // precedes consumption and this never triggers.
  const auto [chain, seg] = seg_of_[static_cast<std::size_t>(tx.to)];
  if (chain >= 0 &&
      tx.packet < chains_[static_cast<std::size_t>(chain)]
                         [static_cast<std::size_t>(seg)]
                             .next_consume) {
    return;
  }
  auto& held = held_[static_cast<std::size_t>(tx.to)];
  const bool fresh = held.insert(tx.packet).second;
  assert(fresh && "hypercube exchange must be duplicate-free");
  (void)fresh;
  max_buffered_ = std::max(max_buffered_, held.size());
}

}  // namespace streamcast::hypercube
