// The d-group hypercube variant (§3.2, final paragraph): when the source can
// send d packets per slot (as in the multi-tree setting), the N nodes are
// divided as evenly as possible into d groups, and the chain scheme runs in
// each group independently — every group receives the full stream directly
// from the source. Bounds become O(log^2(N/d)) worst-case delay and
// O(log(N/d)) neighbors.
#pragma once

#include "src/hypercube/arbitrary.hpp"

namespace streamcast::hypercube {

/// One independently-fed chain.
struct Group {
  std::vector<Segment> chain;
};

/// Splits n receivers into d groups of size ceil(n/d) or floor(n/d), keys
/// assigned consecutively group by group.
std::vector<Group> decompose_grouped(NodeKey n, int d);

}  // namespace streamcast::hypercube
