#include "src/hypercube/arbitrary.hpp"

#include <stdexcept>

#include "src/util/ints.hpp"

namespace streamcast::hypercube {

std::vector<Segment> decompose_chain(NodeKey n, NodeKey first_key,
                                     Slot first_start) {
  if (n < 1) throw std::invalid_argument("need at least one receiver");
  std::vector<Segment> chain;
  NodeKey key = first_key;
  Slot start = first_start;
  NodeKey remaining = n;
  while (remaining > 0) {
    const int k =
        util::floor_log2(static_cast<std::uint64_t>(remaining) + 1);
    chain.push_back(Segment{.k = k, .start = start, .first = key});
    const NodeKey taken = cube_receivers(k);
    remaining -= taken;
    key += taken;
    start += k;
  }
  return chain;
}

}  // namespace streamcast::hypercube
