#include "src/hypercube/special.hpp"

#include <algorithm>

namespace streamcast::hypercube {

std::int64_t expected_holders(int k, sim::PacketId m, Slot t) {
  if (t < m) return 0;  // packet m is injected in slot m
  const Slot age = t - m;
  const std::int64_t all = cube_receivers(k);
  if (age >= k) return all;  // fully distributed (and consumed at age == k)
  return std::min<std::int64_t>(std::int64_t{1} << age, all);
}

}  // namespace streamcast::hypercube
