// Hypercube pairing arithmetic (§3.1).
//
// The 2^k participants of a cube (the source plus N = 2^k - 1 receivers) are
// vertices of a k-dimensional hypercube. In local slot t every vertex is
// paired with its neighbor along dimension j = t mod k, and each pair may
// exchange one packet in each direction. (The paper presents the dimension
// order with an offset — slot 3n pairs dimension 2 in its k = 3 example —
// which only relabels slots; we use j = t mod k throughout.)
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "src/sim/packet.hpp"

namespace streamcast::hypercube {

using sim::NodeKey;
using sim::Slot;
using Vertex = std::uint32_t;

/// Dimension paired in local slot t of a k-cube.
constexpr int dimension_of(Slot t, int k) {
  return static_cast<int>(t % k);
}

/// Partner of vertex v along dimension j.
constexpr Vertex partner(Vertex v, int j) {
  return v ^ (Vertex{1} << j);
}

/// All pairs (low, high) of a k-cube along dimension j, 2^(k-1) of them,
/// low-vertex ascending. Includes the (0, 2^j) pair containing the source.
std::vector<std::pair<Vertex, Vertex>> pairs_along(int k, int j);

/// Number of receivers in a full k-cube (source excluded): 2^k - 1.
constexpr sim::NodeKey cube_receivers(int k) {
  return static_cast<sim::NodeKey>((std::int64_t{1} << k) - 1);
}

/// True iff n == 2^k - 1 for some k >= 1 (the "special N" of §3.1).
constexpr bool is_special_n(sim::NodeKey n) {
  return n >= 1 && ((static_cast<std::uint64_t>(n) + 1) &
                    static_cast<std::uint64_t>(n)) == 0;
}

}  // namespace streamcast::hypercube
