#include "src/hypercube/cube.hpp"

#include <cassert>

namespace streamcast::hypercube {

std::vector<std::pair<Vertex, Vertex>> pairs_along(int k, int j) {
  assert(k >= 1 && j >= 0 && j < k);
  std::vector<std::pair<Vertex, Vertex>> out;
  const Vertex total = Vertex{1} << k;
  const Vertex bit = Vertex{1} << j;
  out.reserve(total / 2);
  for (Vertex v = 0; v < total; ++v) {
    if ((v & bit) == 0) out.emplace_back(v, v | bit);
  }
  return out;
}

}  // namespace streamcast::hypercube
