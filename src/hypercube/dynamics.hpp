// Node dynamics for the hypercube chain — the paper's declared future work
// ("Our ongoing efforts include constructing algorithms for dealing with
// node dynamics in the context of the hypercube-based scheme").
//
// We implement the natural membership algorithm and quantify why the
// problem is hard. Peers hold ranks 1..N; the chain decomposition maps rank
// r to a (cube, vertex) role. On departure, the last-ranked peer fills the
// hole (one rank move, like the multi-tree's Step 1); then the chain is
// re-derived for the new N. Because decompose_chain is greedy-prefix-stable,
// all cubes before the first size change keep their members; the disruption
// is confined to the tail — except when N crosses 2^k boundaries, where the
// leading cube's dimension changes and *everyone* is re-seated. That cliff
// is precisely what makes O(log N)-delay/O(1)-buffer/O(log N)-neighbor
// churn-tolerant schemes an open problem (§4).
#pragma once

#include <vector>

#include "src/hypercube/arbitrary.hpp"

namespace streamcast::hypercube {

using PeerId = std::int64_t;
inline constexpr PeerId kNoPeer = -1;

struct HypercubeChurnStats {
  std::int64_t operations = 0;
  /// Rank relabels (a surviving peer inherits a departed rank).
  std::int64_t rank_moves = 0;
  /// Peers whose (cube, vertex) role changed because the decomposition's
  /// tail was re-derived.
  std::int64_t role_moves = 0;
  /// Events where the leading cube's dimension changed (full re-seating).
  std::int64_t full_reseats = 0;

  std::int64_t total_moves() const { return rank_moves + role_moves; }
};

class HypercubeMembership {
 public:
  explicit HypercubeMembership(NodeKey initial_n);

  PeerId add();
  void remove(PeerId peer);

  NodeKey n() const { return n_; }
  const std::vector<Segment>& chain() const { return chain_; }
  PeerId peer_at(NodeKey rank) const;
  NodeKey rank_of(PeerId peer) const;

  const HypercubeChurnStats& stats() const { return stats_; }

  /// (cube ordinal, vertex) role of a rank under a given chain.
  struct Role {
    NodeKey first = 0;
    int k = 0;
    Vertex vertex = 0;
    friend bool operator==(const Role&, const Role&) = default;
  };
  static Role role_of(const std::vector<Segment>& chain, NodeKey rank);

 private:
  void reseat(NodeKey new_n);

  NodeKey n_ = 0;
  std::vector<Segment> chain_;
  std::vector<PeerId> peer_;  // [rank] -> peer, index 0 unused
  PeerId next_peer_ = 1;
  HypercubeChurnStats stats_;
};

/// Closed-form disruption of one membership change at size n: the number of
/// ranks whose role differs between decompose_chain(n) and
/// decompose_chain(n + delta).
NodeKey roles_changed(NodeKey n, NodeKey n_after);

}  // namespace streamcast::hypercube
