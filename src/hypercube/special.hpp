// The special case N = 2^k - 1 (§3.1, Proposition 1) — closed-form
// expectations for the single-cube pipeline, used by tests and by the
// Figure 5/6 reproductions.
//
// Steady-state invariant (Figure 5): at the end of slot t, packet m is held
// by min(2^(t-m), 2^k - 1) receivers; packet m is consumed cube-wide at the
// end of slot m + k, so every node can play packet m in slot m + k — a
// playback delay of k slots with O(1) buffers and k neighbors.
#pragma once

#include "src/hypercube/cube.hpp"

namespace streamcast::hypercube {

/// Receivers holding packet m at the end of slot t (0 if not yet injected,
/// saturating at 2^k - 1 when fully distributed).
std::int64_t expected_holders(int k, sim::PacketId m, Slot t);

/// Playback delay of every node in a full k-cube fed directly by the source
/// (start slot of packet 0's playback under DESIGN.md §3 conventions).
constexpr Slot special_playback_delay(int k) { return k; }

/// Neighbors of a receiver: its k cube neighbors (the source is one of them
/// for the k vertices adjacent to vertex 0).
constexpr int special_neighbor_count(int k) { return k; }

}  // namespace streamcast::hypercube
