// Chain baseline (§1): receivers form a list; S streams to the first node,
// each node forwards to the next. Minimal buffering (O(1)) but O(N) playback
// delay for the tail — the strawman motivating the multi-tree construction.
#pragma once

#include <vector>

#include "src/sim/protocol.hpp"
#include "src/static/envelopes.hpp"

namespace streamcast::baseline {

using sim::NodeKey;
using sim::PacketId;
using sim::Slot;
using sim::Tx;

class ChainProtocol final : public sim::Protocol {
 public:
  explicit ChainProtocol(NodeKey n);

  void transmit(Slot t, std::vector<Tx>& out) override;
  void deliver(Slot t, const Tx& tx) override;

 private:
  NodeKey n_;
  /// Highest packet received per node (arrivals are strictly in order).
  std::vector<PacketId> highest_;
};

/// Closed form: node i receives packet j in slot j + i - 1, so its playback
/// delay is i - 1. The worst case delegates to the constexpr envelope kit
/// (src/static), the same formula proofs.cpp static_asserts.
constexpr Slot chain_delay(NodeKey i) { return i - 1; }
constexpr Slot chain_worst_delay(NodeKey n) {
  return static_cast<Slot>(envelope::chain_delay_bound(n));
}
constexpr double chain_average_delay(NodeKey n) {
  return static_cast<double>(n - 1) / 2.0;
}

}  // namespace streamcast::baseline
