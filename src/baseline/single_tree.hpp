// Single-tree baseline (§1): one complete d-ary tree rooted at S, every
// interior node forwarding each packet to all d children. O(log_d N) delay
// and O(1) buffers — but interior nodes need d times the upload bandwidth of
// the stream while the ~(1-1/d)N leaves upload nothing, the resource
// imbalance the paper's multi-tree construction eliminates.
#pragma once

#include <vector>

#include "src/net/topology.hpp"
#include "src/sim/protocol.hpp"

namespace streamcast::baseline {

using sim::NodeKey;
using sim::PacketId;
using sim::Slot;
using sim::Tx;

/// Topology for the single-tree strawman: receivers get send capacity d
/// (the over-provisioning the paper calls "not a reasonable requirement").
class BoostedCluster final : public net::Topology {
 public:
  BoostedCluster(NodeKey n_receivers, int d);

  NodeKey size() const override { return n_ + 1; }
  Slot latency(NodeKey, NodeKey) const override { return 1; }
  int send_capacity(NodeKey) const override { return d_; }
  int recv_capacity(NodeKey n) const override { return n == 0 ? 0 : 1; }

 private:
  NodeKey n_;
  int d_;
};

/// BFS-numbered single d-ary tree: node p's children are d*p+1 .. d*p+d
/// (wherever <= N), S = 0 the root.
class SingleTreeProtocol final : public sim::Protocol {
 public:
  SingleTreeProtocol(NodeKey n, int d);

  void transmit(Slot t, std::vector<Tx>& out) override;
  void deliver(Slot t, const Tx& tx) override;

 private:
  NodeKey n_;
  int d_;
  std::vector<PacketId> highest_;
};

/// Depth of node i in the BFS d-ary tree = its playback delay.
int single_tree_depth(NodeKey i, int d);
Slot single_tree_worst_delay(NodeKey n, int d);
double single_tree_average_delay(NodeKey n, int d);
/// Fraction of receivers that upload nothing (leaves).
double single_tree_leaf_fraction(NodeKey n, int d);

}  // namespace streamcast::baseline
