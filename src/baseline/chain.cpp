#include "src/baseline/chain.hpp"

#include <stdexcept>

namespace streamcast::baseline {

ChainProtocol::ChainProtocol(NodeKey n) : n_(n) {
  if (n < 1) throw std::invalid_argument("need at least one receiver");
  highest_.assign(static_cast<std::size_t>(n) + 1, -1);
}

void ChainProtocol::transmit(Slot t, std::vector<Tx>& out) {
  // S feeds node 1 with packet t; every node relays its newest packet to its
  // successor. A node that received packet p in slot t-1 has not yet sent it
  // (it sends exactly one packet per slot, pipelined).
  out.push_back(Tx{.from = 0, .to = 1, .packet = t, .tag = 0});
  for (NodeKey i = 1; i < n_; ++i) {
    const PacketId have = highest_[static_cast<std::size_t>(i)];
    if (have >= 0) {
      out.push_back(Tx{.from = i, .to = i + 1, .packet = have, .tag = 0});
    }
  }
}

void ChainProtocol::deliver(Slot t, const Tx& tx) {
  (void)t;
  highest_[static_cast<std::size_t>(tx.to)] = tx.packet;
}

}  // namespace streamcast::baseline
