#include "src/baseline/single_tree.hpp"

#include <stdexcept>

#include "src/static/envelopes.hpp"

namespace streamcast::baseline {

BoostedCluster::BoostedCluster(NodeKey n_receivers, int d)
    : n_(n_receivers), d_(d) {
  if (n_receivers < 1) throw std::invalid_argument("need >= 1 receiver");
  if (d < 1) throw std::invalid_argument("d < 1");
}

SingleTreeProtocol::SingleTreeProtocol(NodeKey n, int d) : n_(n), d_(d) {
  if (n < 1) throw std::invalid_argument("need >= 1 receiver");
  if (d < 1) throw std::invalid_argument("d < 1");
  highest_.assign(static_cast<std::size_t>(n) + 1, -1);
}

void SingleTreeProtocol::transmit(Slot t, std::vector<Tx>& out) {
  // Every node (S included) pushes its newest packet to all of its children
  // each slot — d sends per interior node per slot.
  for (NodeKey p = 0; p <= n_; ++p) {
    const PacketId have = p == 0 ? t : highest_[static_cast<std::size_t>(p)];
    if (have < 0) continue;
    for (int c = 0; c < d_; ++c) {
      const NodeKey child = static_cast<NodeKey>(d_) * p + 1 +
                            static_cast<NodeKey>(c);
      if (child > n_) break;
      out.push_back(Tx{.from = p, .to = child, .packet = have, .tag = 0});
    }
  }
}

void SingleTreeProtocol::deliver(Slot t, const Tx& tx) {
  (void)t;
  highest_[static_cast<std::size_t>(tx.to)] = tx.packet;
}

int single_tree_depth(NodeKey i, int d) {
  return envelope::single_tree_depth(i, d);
}

Slot single_tree_worst_delay(NodeKey n, int d) {
  return static_cast<Slot>(envelope::single_tree_delay_bound(n, d));
}

double single_tree_average_delay(NodeKey n, int d) {
  double sum = 0;
  for (NodeKey i = 1; i <= n; ++i) {
    sum += single_tree_depth(i, d) - 1;
  }
  return sum / static_cast<double>(n);
}

double single_tree_leaf_fraction(NodeKey n, int d) {
  NodeKey leaves = 0;
  for (NodeKey i = 1; i <= n; ++i) {
    if (static_cast<NodeKey>(d) * i + 1 > n) ++leaves;
  }
  return static_cast<double>(leaves) / static_cast<double>(n);
}

}  // namespace streamcast::baseline
