#include "src/rrd/protocol.hpp"

#include <algorithm>
#include <utility>

namespace streamcast::rrd {
namespace {

using sim::NodeKey;
using sim::kNoPacket;

/// Exclusive upper bound on the packet ids a tracker can hold.
PacketId holdings_end(const loss::SequenceTracker& tracker) {
  return tracker.ahead().empty() ? tracker.gap_free_prefix()
                                 : *tracker.ahead().rbegin() + 1;
}

}  // namespace

RandomRegularProtocol::RandomRegularProtocol(Digraph graph, int peer_budget)
    : graph_(std::move(graph)),
      peer_budget_(peer_budget),
      holds_(static_cast<std::size_t>(graph_.n) + 1),
      recv_used_(static_cast<std::size_t>(graph_.n) + 1, 0) {}

PacketId RandomRegularProtocol::oldest_useful(NodeKey from, NodeKey to,
                                              Slot t) const {
  const auto& target = holds_[static_cast<std::size_t>(to)];
  // The source holds {0..t}; a receiver holds whatever its tracker marked.
  const PacketId from_end =
      from == 0 ? static_cast<PacketId>(t) + 1
                : holdings_end(holds_[static_cast<std::size_t>(from)]);
  const auto* from_holds =
      from == 0 ? nullptr : &holds_[static_cast<std::size_t>(from)];
  for (PacketId p = target.gap_free_prefix(); p < from_end; ++p) {
    if (target.has(p)) continue;
    if (from_holds != nullptr && !from_holds->has(p)) continue;
    if (claimed_.contains({to, p})) continue;
    return p;
  }
  return kNoPacket;
}

PacketId RandomRegularProtocol::latest_useful(NodeKey from,
                                              NodeKey to) const {
  const auto& target = holds_[static_cast<std::size_t>(to)];
  const auto& sender = holds_[static_cast<std::size_t>(from)];
  for (PacketId p = holdings_end(sender) - 1; p >= target.gap_free_prefix();
       --p) {
    if (!sender.has(p) || target.has(p)) continue;
    if (claimed_.contains({to, p})) continue;
    return p;
  }
  return kNoPacket;
}

void RandomRegularProtocol::transmit(Slot t, std::vector<Tx>& out) {
  std::fill(recv_used_.begin(), recv_used_.end(), 0);
  claimed_.clear();

  const auto claim = [&](NodeKey from, NodeKey to, PacketId p) {
    out.push_back(Tx{from, to, p, /*tag=*/0, /*retransmit=*/false});
    claimed_.insert({to, p});
    ++recv_used_[static_cast<std::size_t>(to)];
  };

  // Repair push: the most deprived neighbor (smallest gap-free prefix, ties
  // by key) that still has download room gets the oldest packet it lacks.
  std::vector<std::pair<PacketId, NodeKey>> targets;
  const auto repair_push = [&](NodeKey from,
                               const std::vector<NodeKey>& neighbors,
                               int budget) {
    targets.clear();
    for (const NodeKey v : neighbors) {
      targets.emplace_back(
          holds_[static_cast<std::size_t>(v)].gap_free_prefix(), v);
    }
    std::sort(targets.begin(), targets.end());
    targets.erase(std::unique(targets.begin(), targets.end()),
                  targets.end());
    for (int used = 0; used < budget; ++used) {
      bool sent = false;
      for (const auto& [prefix, v] : targets) {
        if (recv_used_[static_cast<std::size_t>(v)] >= graph_.d) continue;
        const PacketId p = oldest_useful(from, v, t);
        if (p == kNoPacket) continue;
        claim(from, v, p);
        sent = true;
        break;
      }
      if (!sent) break;  // nothing useful left for any neighbor this slot
    }
  };

  // The source spends its whole capacity d on repair pushes: with entry
  // receivers near the live edge its "oldest useful" IS the fresh packet,
  // and when an entry lags the stream the source is the guaranteed holder.
  repair_push(0, graph_.source_out, graph_.d);

  for (NodeKey u = 1; u <= graph_.n; ++u) {
    const auto& nbrs = graph_.out[static_cast<std::size_t>(u - 1)];
    if (nbrs.empty()) continue;
    // Frontier push first: the newest packet u holds goes to a rotating
    // neighbor, so fresh copies multiply exponentially instead of the whole
    // swarm queueing behind the oldest gap. Without this the holders of
    // any not-yet-saturated packet form a thin nested frontier and most
    // uploads find nothing useful (measured: throughput decays to ~2/3 of
    // the stream rate at d >= 3 and windows never complete). This is the
    // latest-useful side of Kim–Srikant's policy; the rotation (t + u)
    // decorrelates senders without per-slot randomness.
    int used = 0;
    for (std::size_t i = 0; i < nbrs.size() && used < 1; ++i) {
      const NodeKey v = nbrs[(static_cast<std::size_t>(t) +
                              static_cast<std::size_t>(u) + i) %
                             nbrs.size()];
      if (recv_used_[static_cast<std::size_t>(v)] >= graph_.d) continue;
      const PacketId p = latest_useful(u, v);
      if (p == kNoPacket) continue;
      claim(u, v, p);
      ++used;
    }
    repair_push(u, nbrs, peer_budget_ - used);
  }
}

void RandomRegularProtocol::deliver(Slot /*t*/, const Tx& tx) {
  holds_[static_cast<std::size_t>(tx.to)].mark(tx.packet);
}

}  // namespace streamcast::rrd
