// Push scheduling over the random regular digraph (Kim–Srikant 1308.6807).
//
// Two-sided push policy, one upload each per slot: a *frontier* push sends
// the newest useful packet to a rotating out-neighbor (Kim–Srikant's
// latest-useful side — it multiplies fresh copies exponentially), and a
// *repair* push sends the most deprived out-neighbor — smallest gap-free
// stream prefix — the oldest packet it lacks (which is what bounds the
// playback-delay tail). Either side alone fails: latest-only leaves a
// heavy delay tail, oldest-only starves the frontier and the swarm's
// throughput collapses below the stream rate (see transmit()). The source
// paces the stream at rate 1 (packet p exists from slot p) and spends its
// capacity d on its entry receivers. A per-slot claim set keeps concurrent
// senders from double-targeting the same (receiver, packet) pair, so the
// overlay stays duplicate-free under the engine's forbid_duplicates check
// without any coordination beyond the shared omniscient state the other
// scheme protocols already assume (see HypercubeProtocol).
#pragma once

#include <set>
#include <utility>
#include <vector>

#include "src/loss/recovery.hpp"
#include "src/rrd/digraph.hpp"
#include "src/sim/protocol.hpp"

namespace streamcast::rrd {

using sim::PacketId;
using sim::Slot;
using sim::Tx;

class RandomRegularProtocol final : public sim::Protocol {
 public:
  /// `peer_budget` = receiver upload per slot; must match the topology's
  /// peer send capacity. 2 is the registry default: rate 1 against upload 1
  /// is the eps = 0 boundary of the Kim–Srikant rate-(1-eps) theorems, where
  /// any sender slot wasted on an already-satisfied neighborhood is
  /// unrecoverable (measured: the swarm falls behind and never completes a
  /// window beyond small N). One extra upload absorbs that waste.
  explicit RandomRegularProtocol(Digraph graph, int peer_budget = 2);

  void transmit(Slot t, std::vector<Tx>& out) override;
  void deliver(Slot t, const Tx& tx) override;

 private:
  /// Oldest packet the sender holds that `to` lacks and no one claimed this
  /// slot, or kNoPacket. `from` == 0 means the source, which holds exactly
  /// the packets released so far: {0..t}.
  PacketId oldest_useful(sim::NodeKey from, sim::NodeKey to, Slot t) const;
  /// Newest such packet (receivers only) — the frontier-spreading side of
  /// the policy; see transmit() for why both are needed.
  PacketId latest_useful(sim::NodeKey from, sim::NodeKey to) const;

  Digraph graph_;
  int peer_budget_;
  /// holds_[v] = packets receiver v has (index 0, the source, unused).
  std::vector<loss::SequenceTracker> holds_;

  // Per-slot scratch, reset at the top of transmit().
  std::vector<int> recv_used_;
  std::set<std::pair<sim::NodeKey, PacketId>> claimed_;
};

}  // namespace streamcast::rrd
