// Seeded random d-regular digraph overlay (Kim & Srikant, arXiv:1308.6807).
//
// The permutation model: the edge set is the union of d independent uniform
// random permutations pi_1..pi_d of the receivers {1..N}, giving every
// receiver out-degree and in-degree exactly d (multi-edges across
// permutations are allowed, as in the paper; self-loops are removed by
// rotating each permutation's fixed points among themselves). The source
// additionally seeds the swarm through d distinct entry receivers.
//
// Construction is a pure function of (n, d, seed) via util::Prng, so two
// builds with equal seeds are identical on every platform — the determinism
// contract the differential harness (tests/scheme_differential_test.cpp)
// locks down.
#pragma once

#include <cstdint>
#include <vector>

#include "src/sim/packet.hpp"

namespace streamcast::rrd {

using sim::NodeKey;

struct Digraph {
  NodeKey n = 0;
  int d = 0;
  /// Entry receivers the source injects fresh packets through: min(d, n)
  /// distinct keys.
  std::vector<NodeKey> source_out;
  /// out[u - 1] = u's out-neighbors, one per permutation, in permutation
  /// order (u in 1..n). Never contains u itself.
  std::vector<std::vector<NodeKey>> out;

  /// In-degree of receiver v from peer edges (excludes the source's seeds);
  /// exactly d by the permutation model — validated by tests.
  int in_degree(NodeKey v) const;
};

/// Builds the overlay for n >= 1 receivers, degree d >= 2.
/// Throws std::invalid_argument outside that range.
Digraph build_digraph(NodeKey n, int d, std::uint64_t seed);

/// The audit envelope on the Kim–Srikant O(log N) delay claim: with the
/// most-deprived-neighbor / oldest-useful-packet push policy the worst
/// playback delay across the measured grid stays within a small constant of
/// log2 N + d (EXPERIMENTS.md E35 records the measured margins). The
/// constants are generous so every seeded instance on the audited grid fits;
/// the differential harness re-checks the bound at 3+ seeds per cell.
sim::Slot delay_bound(NodeKey n, int d);

}  // namespace streamcast::rrd
