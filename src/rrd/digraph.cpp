#include "src/rrd/digraph.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "src/static/envelopes.hpp"
#include "src/util/prng.hpp"

namespace streamcast::rrd {
namespace {

/// Fisher–Yates permutation of {1..n}, then fixed points rotated among
/// themselves so no receiver ends up its own out-neighbor. With one lone
/// fixed point u, rotation is impossible; u instead swaps images with its
/// successor (mod n), which by construction is not a fixed point.
std::vector<NodeKey> derangement(NodeKey n, util::Prng& prng) {
  std::vector<NodeKey> pi(static_cast<std::size_t>(n));
  for (NodeKey i = 0; i < n; ++i) pi[static_cast<std::size_t>(i)] = i + 1;
  for (NodeKey i = n - 1; i > 0; --i) {
    const auto j = static_cast<std::size_t>(
        prng.below(static_cast<std::uint64_t>(i) + 1));
    std::swap(pi[static_cast<std::size_t>(i)], pi[j]);
  }
  std::vector<std::size_t> fixed;
  for (std::size_t i = 0; i < pi.size(); ++i) {
    if (pi[i] == static_cast<NodeKey>(i) + 1) fixed.push_back(i);
  }
  if (fixed.size() == 1 && n > 1) {
    const std::size_t u = fixed.front();
    const std::size_t v = (u + 1) % pi.size();
    std::swap(pi[u], pi[v]);
  } else if (fixed.size() > 1) {
    const NodeKey first = pi[fixed.front()];
    for (std::size_t i = 0; i + 1 < fixed.size(); ++i) {
      pi[fixed[i]] = pi[fixed[i + 1]];
    }
    pi[fixed.back()] = first;
  }
  return pi;
}

}  // namespace

int Digraph::in_degree(NodeKey v) const {
  int count = 0;
  for (const auto& targets : out) {
    count += static_cast<int>(std::count(targets.begin(), targets.end(), v));
  }
  return count;
}

Digraph build_digraph(NodeKey n, int d, std::uint64_t seed) {
  if (n < 1) throw std::invalid_argument("random-regular needs n >= 1");
  if (d < 2) {
    // d = 1 degenerates the permutation union into disjoint cycles, where
    // the stream crawls around a ring in Theta(N) slots — the O(log N)
    // envelope (and the paper's whp analysis) needs d >= 2.
    throw std::invalid_argument("random-regular needs d >= 2");
  }
  Digraph g;
  g.n = n;
  g.d = d;
  util::Prng prng(seed);
  g.out.resize(static_cast<std::size_t>(n));
  for (auto& targets : g.out) targets.reserve(static_cast<std::size_t>(d));
  // A lone receiver has no peers to relay to: the source feeds it directly
  // and the peer edge set stays empty.
  for (int k = 0; n > 1 && k < d; ++k) {
    const auto pi = derangement(n, prng);
    for (NodeKey u = 1; u <= n; ++u) {
      g.out[static_cast<std::size_t>(u - 1)].push_back(
          pi[static_cast<std::size_t>(u - 1)]);
    }
  }
  // The source's entry receivers: a seeded partial shuffle picking
  // min(d, n) distinct keys.
  std::vector<NodeKey> pool(static_cast<std::size_t>(n));
  for (NodeKey i = 0; i < n; ++i) pool[static_cast<std::size_t>(i)] = i + 1;
  const auto picks = static_cast<std::size_t>(std::min<NodeKey>(d, n));
  for (std::size_t i = 0; i < picks; ++i) {
    const auto j =
        i + static_cast<std::size_t>(prng.below(pool.size() - i));
    std::swap(pool[i], pool[j]);
    g.source_out.push_back(pool[i]);
  }
  return g;
}

sim::Slot delay_bound(NodeKey n, int d) {
  // Measured worst delays (EXPERIMENTS.md E35: 5 seeds x N up to 512 x
  // d in {2..5}) sit at ~log2(N) + 1 and shrink slightly with d; doubling
  // the log term plus a d + 4 margin absorbs unlucky digraph draws without
  // making the O(log N) claim vacuous. The formula lives in src/static so
  // proofs.cpp can static_assert its shape.
  return static_cast<sim::Slot>(envelope::rrd_delay_bound(n, d));
}

}  // namespace streamcast::rrd
