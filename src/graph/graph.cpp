#include "src/graph/graph.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace streamcast::graph {

Graph::Graph(Vertex n) : n_(n) {
  if (n < 1) throw std::invalid_argument("empty graph");
  if (n > 63) throw std::invalid_argument("bitmask solver caps at 63 vertices");
  adj_.resize(static_cast<std::size_t>(n));
}

void Graph::add_edge(Vertex a, Vertex b) {
  assert(a >= 0 && a < n_ && b >= 0 && b < n_ && a != b);
  if (has_edge(a, b)) return;
  adj_[static_cast<std::size_t>(a)].push_back(b);
  adj_[static_cast<std::size_t>(b)].push_back(a);
  ++edges_;
}

bool Graph::has_edge(Vertex a, Vertex b) const {
  const auto& na = adj_[static_cast<std::size_t>(a)];
  return std::find(na.begin(), na.end(), b) != na.end();
}

const std::vector<Vertex>& Graph::neighbors(Vertex v) const {
  return adj_[static_cast<std::size_t>(v)];
}

bool is_connected_dominating(const Graph& g, Vertex root,
                             std::uint64_t mask) {
  const std::uint64_t set = mask | (std::uint64_t{1} << root);
  // Connectivity of the induced subgraph, by DFS from root within the set.
  std::uint64_t visited = 0;
  std::vector<Vertex> stack{root};
  visited |= std::uint64_t{1} << root;
  while (!stack.empty()) {
    const Vertex v = stack.back();
    stack.pop_back();
    for (const Vertex w : g.neighbors(v)) {
      const std::uint64_t bit = std::uint64_t{1} << w;
      if ((set & bit) != 0 && (visited & bit) == 0) {
        visited |= bit;
        stack.push_back(w);
      }
    }
  }
  if (visited != set) return false;
  // Domination: every vertex is in the set or adjacent to it.
  for (Vertex v = 0; v < g.size(); ++v) {
    if ((set >> v) & 1) continue;
    bool dominated = false;
    for (const Vertex w : g.neighbors(v)) {
      if ((set >> w) & 1) {
        dominated = true;
        break;
      }
    }
    if (!dominated) return false;
  }
  return true;
}

std::vector<Vertex> tree_from_interior(const Graph& g, Vertex root,
                                       std::uint64_t mask) {
  assert(is_connected_dominating(g, root, mask));
  const std::uint64_t set = mask | (std::uint64_t{1} << root);
  std::vector<Vertex> parent(static_cast<std::size_t>(g.size()), -2);
  parent[static_cast<std::size_t>(root)] = -1;
  // BFS over the interior set first so interior nodes attach to interior
  // parents...
  std::vector<Vertex> queue{root};
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const Vertex v = queue[head];
    for (const Vertex w : g.neighbors(v)) {
      if (((set >> w) & 1) && parent[static_cast<std::size_t>(w)] == -2) {
        parent[static_cast<std::size_t>(w)] = v;
        queue.push_back(w);
      }
    }
  }
  // ...then hang every remaining vertex as a leaf off any set neighbor.
  for (Vertex v = 0; v < g.size(); ++v) {
    if (parent[static_cast<std::size_t>(v)] != -2) continue;
    for (const Vertex w : g.neighbors(v)) {
      if ((set >> w) & 1) {
        parent[static_cast<std::size_t>(v)] = w;
        break;
      }
    }
    assert(parent[static_cast<std::size_t>(v)] != -2);
  }
  return parent;
}

bool is_spanning_tree(const Graph& g, Vertex root,
                      const std::vector<Vertex>& parent) {
  if (parent.size() != static_cast<std::size_t>(g.size())) return false;
  if (parent[static_cast<std::size_t>(root)] != -1) return false;
  for (Vertex v = 0; v < g.size(); ++v) {
    if (v == root) continue;
    const Vertex p = parent[static_cast<std::size_t>(v)];
    if (p < 0 || p >= g.size() || !g.has_edge(v, p)) return false;
    // Walk to the root; cycles would loop forever, so cap the walk.
    Vertex cur = v;
    for (Vertex steps = 0; cur != root; ++steps) {
      if (steps > g.size()) return false;
      cur = parent[static_cast<std::size_t>(cur)];
      if (cur < 0) return false;
    }
  }
  return true;
}

std::uint64_t interior_mask(const std::vector<Vertex>& parent, Vertex root) {
  std::uint64_t mask = 0;
  for (std::size_t v = 0; v < parent.size(); ++v) {
    if (parent[v] >= 0 && parent[v] != root) {
      mask |= std::uint64_t{1} << parent[v];
    }
  }
  return mask;
}

}  // namespace streamcast::graph
