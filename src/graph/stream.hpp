// Streaming over two interior-disjoint spanning trees of an ARBITRARY
// graph — the application behind the appendix's existence problem ("can we
// construct two interior disjoint spanning trees using G, each rooted at a
// node S?").
//
// The stream splits into two descriptions: even packets travel down tree A,
// odd packets down tree B (rate 1/2 each). Interior-disjointness again
// means every non-root vertex forwards in at most one tree. Unlike the
// complete-graph forests of §2, a general spanning tree has unbounded
// fan-out, so a vertex with c children in its tree needs upload capacity
// ceil(c/2) packets/slot to keep up (it must copy each description packet c
// times every 2 slots), and every vertex may receive its two descriptions
// in the same slot (receive capacity 2). The paper's §2.2 remark covers
// this relaxation: "a node may send and receive more than one packet in a
// time slot ... The schemes we propose here work with either model." The
// required capacities are exactly what TwoTreeStreamTopology grants —
// nothing more — so the engine still proves the schedule feasible.
#pragma once

#include <deque>
#include <vector>

#include "src/graph/idt_solver.hpp"
#include "src/net/topology.hpp"
#include "src/sim/protocol.hpp"

namespace streamcast::graph {

using sim::PacketId;
using sim::Slot;
using sim::Tx;

/// Node keys are the graph's vertex ids; the root doubles as the source.
class TwoTreeStreamTopology final : public net::Topology {
 public:
  TwoTreeStreamTopology(const Graph& g, Vertex root,
                        const IdtWitness& trees);

  sim::NodeKey size() const override { return n_; }
  Slot latency(sim::NodeKey, sim::NodeKey) const override { return 1; }
  int send_capacity(sim::NodeKey v) const override;
  int recv_capacity(sim::NodeKey v) const override;

  /// Largest receiver upload capacity the trees demand — the cost a general
  /// graph pays over the complete-graph forests' uniform 1.
  int max_required_uplink() const;

 private:
  sim::NodeKey n_;
  Vertex root_;
  std::vector<int> send_cap_;
};

class TwoTreeStreamProtocol final : public sim::Protocol {
 public:
  /// `trees` must be a valid interior-disjoint pair for (g, root)
  /// (is_interior_disjoint_pair); throws otherwise.
  TwoTreeStreamProtocol(const Graph& g, Vertex root, IdtWitness trees);

  void transmit(Slot t, std::vector<Tx>& out) override;
  void deliver(Slot t, const Tx& tx) override;

 private:
  struct Pending {
    sim::NodeKey to = 0;
    PacketId packet = 0;
  };

  Vertex root_;
  std::vector<std::vector<Vertex>> kids_a_;  // children per vertex, tree A
  std::vector<std::vector<Vertex>> kids_b_;  // children per vertex, tree B
  std::vector<std::deque<Pending>> queue_;   // per-vertex FIFO of sends
  std::vector<int> capacity_;
};

}  // namespace streamcast::graph
