#include "src/graph/idt_heuristic.hpp"

#include <cassert>

namespace streamcast::graph {

namespace {

int popcount(std::uint64_t x) {
  int c = 0;
  while (x) {
    x &= x - 1;
    ++c;
  }
  return c;
}

/// Vertices dominated by (mask ∪ {root}): the set itself plus neighbors.
std::uint64_t dominated_by(const Graph& g, Vertex root, std::uint64_t mask) {
  std::uint64_t dom = mask | (std::uint64_t{1} << root);
  const std::uint64_t members = dom;
  for (Vertex v = 0; v < g.size(); ++v) {
    if ((members >> v) & 1) {
      for (const Vertex w : g.neighbors(v)) dom |= std::uint64_t{1} << w;
    }
  }
  return dom;
}

}  // namespace

std::optional<std::uint64_t> greedy_cds(const Graph& g, Vertex root,
                                        std::uint64_t allowed) {
  const std::uint64_t all =
      g.size() == 63 ? ~std::uint64_t{0}
                     : (std::uint64_t{1} << g.size()) - 1;
  allowed &= all & ~(std::uint64_t{1} << root);

  std::uint64_t mask = 0;
  std::uint64_t dominated = dominated_by(g, root, 0);
  // Frontier = allowed vertices adjacent to the current set (keeps the
  // induced subgraph connected as it grows).
  while ((dominated & all) != all) {
    Vertex best = -1;
    int best_gain = -1;
    for (Vertex v = 0; v < g.size(); ++v) {
      if (((allowed >> v) & 1) == 0 || ((mask >> v) & 1)) continue;
      // Must touch the current set (or the root) to stay connected.
      bool frontier = false;
      for (const Vertex w : g.neighbors(v)) {
        if (w == root || ((mask >> w) & 1)) {
          frontier = true;
          break;
        }
      }
      if (!frontier) continue;
      std::uint64_t newly = std::uint64_t{1} << v;
      for (const Vertex w : g.neighbors(v)) newly |= std::uint64_t{1} << w;
      const int gain = popcount(newly & ~dominated);
      if (gain > best_gain) {
        best_gain = gain;
        best = v;
      }
    }
    // No frontier candidate at all: the undominated region is unreachable
    // within `allowed`. Zero-gain candidates are still taken — they can be
    // the connectors that open a path toward undominated territory; the
    // mask grows every iteration, so the loop terminates.
    if (best < 0) return std::nullopt;
    mask |= std::uint64_t{1} << best;
    dominated |= dominated_by(g, root, mask);
  }

  // Prune to a minimal CDS (drop members whose removal keeps the property);
  // smaller interiors leave more room for the second tree.
  for (Vertex v = 0; v < g.size(); ++v) {
    const std::uint64_t bit = std::uint64_t{1} << v;
    if ((mask & bit) && is_connected_dominating(g, root, mask & ~bit)) {
      mask &= ~bit;
    }
  }
  assert(is_connected_dominating(g, root, mask));
  return mask;
}

std::optional<IdtWitness> greedy_two_idt(const Graph& g, Vertex root) {
  const std::uint64_t all =
      g.size() == 63 ? ~std::uint64_t{0}
                     : (std::uint64_t{1} << g.size()) - 1;
  const auto a = greedy_cds(g, root, all);
  if (!a) return std::nullopt;
  const auto b = greedy_cds(g, root, all & ~*a);
  if (!b) return std::nullopt;
  return IdtWitness{.tree_a = tree_from_interior(g, root, *a),
                    .tree_b = tree_from_interior(g, root, *b)};
}

}  // namespace streamcast::graph
