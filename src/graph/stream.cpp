#include "src/graph/stream.hpp"

#include <stdexcept>

#include "src/util/ints.hpp"

namespace streamcast::graph {

namespace {

std::vector<std::vector<Vertex>> children_of(const std::vector<Vertex>& parent) {
  std::vector<std::vector<Vertex>> kids(parent.size());
  for (std::size_t v = 0; v < parent.size(); ++v) {
    if (parent[v] >= 0) {
      kids[static_cast<std::size_t>(parent[v])].push_back(
          static_cast<Vertex>(v));
    }
  }
  return kids;
}

/// ceil(c/2) sends per slot sustain c copies of a description every 2
/// slots; the root carries both descriptions.
std::vector<int> required_capacity(const Graph& g, Vertex root,
                                   const IdtWitness& trees) {
  const auto kids_a = children_of(trees.tree_a);
  const auto kids_b = children_of(trees.tree_b);
  std::vector<int> cap(static_cast<std::size_t>(g.size()), 1);
  for (Vertex v = 0; v < g.size(); ++v) {
    const auto ca = static_cast<std::int64_t>(
        kids_a[static_cast<std::size_t>(v)].size());
    const auto cb = static_cast<std::int64_t>(
        kids_b[static_cast<std::size_t>(v)].size());
    const std::int64_t need =
        v == root ? util::ceil_div(ca + cb, 2)
                  : std::max(util::ceil_div(ca, 2), util::ceil_div(cb, 2));
    cap[static_cast<std::size_t>(v)] =
        static_cast<int>(std::max<std::int64_t>(need, 1));
  }
  return cap;
}

}  // namespace

TwoTreeStreamTopology::TwoTreeStreamTopology(const Graph& g, Vertex root,
                                             const IdtWitness& trees)
    : n_(g.size()), root_(root), send_cap_(required_capacity(g, root, trees)) {}

int TwoTreeStreamTopology::send_capacity(sim::NodeKey v) const {
  return send_cap_[static_cast<std::size_t>(v)];
}

int TwoTreeStreamTopology::recv_capacity(sim::NodeKey v) const {
  // Both descriptions can land in the same slot; the root receives nothing.
  return v == root_ ? 0 : 2;
}

int TwoTreeStreamTopology::max_required_uplink() const {
  int best = 0;
  for (sim::NodeKey v = 0; v < n_; ++v) {
    if (v == root_) continue;
    best = std::max(best, send_cap_[static_cast<std::size_t>(v)]);
  }
  return best;
}

TwoTreeStreamProtocol::TwoTreeStreamProtocol(const Graph& g, Vertex root,
                                             IdtWitness trees)
    : root_(root),
      kids_a_(children_of(trees.tree_a)),
      kids_b_(children_of(trees.tree_b)),
      queue_(static_cast<std::size_t>(g.size())),
      capacity_(required_capacity(g, root, trees)) {
  if (!is_interior_disjoint_pair(g, root, trees.tree_a, trees.tree_b)) {
    throw std::invalid_argument("not an interior-disjoint spanning pair");
  }
}

void TwoTreeStreamProtocol::transmit(Slot t, std::vector<Tx>& out) {
  // The root originates packet t: description t mod 2, copies queued for
  // that tree's root children.
  const auto& kids = (t % 2 == 0) ? kids_a_ : kids_b_;
  for (const Vertex child : kids[static_cast<std::size_t>(root_)]) {
    queue_[static_cast<std::size_t>(root_)].push_back(
        Pending{.to = child, .packet = t});
  }
  // Every vertex drains its FIFO up to its capacity.
  for (std::size_t v = 0; v < queue_.size(); ++v) {
    auto& q = queue_[v];
    for (int s = 0; s < capacity_[v] && !q.empty(); ++s) {
      const Pending p = q.front();
      q.pop_front();
      out.push_back(Tx{.from = static_cast<sim::NodeKey>(v),
                       .to = p.to,
                       .packet = p.packet,
                       .tag = static_cast<std::int32_t>(p.packet % 2)});
    }
  }
}

void TwoTreeStreamProtocol::deliver(Slot t, const Tx& tx) {
  (void)t;
  const auto& kids = (tx.packet % 2 == 0) ? kids_a_ : kids_b_;
  for (const Vertex child : kids[static_cast<std::size_t>(tx.to)]) {
    queue_[static_cast<std::size_t>(tx.to)].push_back(
        Pending{.to = child, .packet = tx.packet});
  }
}

}  // namespace streamcast::graph
