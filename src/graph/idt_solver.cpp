#include "src/graph/idt_solver.hpp"

#include <stdexcept>

namespace streamcast::graph {

namespace {

/// Connected component of root within (mask ∪ {root}), as a bitmask
/// including the root.
std::uint64_t root_component(const Graph& g, Vertex root,
                             std::uint64_t mask) {
  const std::uint64_t set = mask | (std::uint64_t{1} << root);
  std::uint64_t visited = std::uint64_t{1} << root;
  std::vector<Vertex> stack{root};
  while (!stack.empty()) {
    const Vertex v = stack.back();
    stack.pop_back();
    for (const Vertex w : g.neighbors(v)) {
      const std::uint64_t bit = std::uint64_t{1} << w;
      if ((set & bit) != 0 && (visited & bit) == 0) {
        visited |= bit;
        stack.push_back(w);
      }
    }
  }
  return visited;
}

}  // namespace

std::optional<IdtWitness> two_interior_disjoint_trees(const Graph& g,
                                                      Vertex root) {
  if (g.size() > 24) {
    throw std::invalid_argument(
        "exhaustive IDT solver limited to 24 vertices");
  }
  const std::uint64_t root_bit = std::uint64_t{1} << root;
  const std::uint64_t universe =
      (g.size() == 63 ? ~std::uint64_t{0}
                      : (std::uint64_t{1} << g.size()) - 1) &
      ~root_bit;

  // Enumerate candidate interior sets A (subsets of V \ {root}).
  for (std::uint64_t a = 0;; a = ((a | root_bit) + 1) & ~root_bit) {
    if (is_connected_dominating(g, root, a)) {
      // Does the complement contain a CDS? Take the root's component there.
      const std::uint64_t rest = universe & ~a;
      const std::uint64_t comp = root_component(g, root, rest) & ~root_bit;
      if (is_connected_dominating(g, root, comp)) {
        return IdtWitness{.tree_a = tree_from_interior(g, root, a),
                          .tree_b = tree_from_interior(g, root, comp)};
      }
    }
    if (a == universe) break;
  }
  return std::nullopt;
}

bool is_interior_disjoint_pair(const Graph& g, Vertex root,
                               const std::vector<Vertex>& tree_a,
                               const std::vector<Vertex>& tree_b) {
  if (!is_spanning_tree(g, root, tree_a)) return false;
  if (!is_spanning_tree(g, root, tree_b)) return false;
  return (interior_mask(tree_a, root) & interior_mask(tree_b, root)) == 0;
}

}  // namespace streamcast::graph
