// Minimal undirected graph for the Two Interior-Disjoint Tree problem
// (paper appendix, NP-completeness).
#pragma once

#include <cstdint>
#include <vector>

namespace streamcast::graph {

using Vertex = std::int32_t;

class Graph {
 public:
  explicit Graph(Vertex n);

  Vertex size() const { return n_; }
  void add_edge(Vertex a, Vertex b);
  bool has_edge(Vertex a, Vertex b) const;
  const std::vector<Vertex>& neighbors(Vertex v) const;
  std::size_t edges() const { return edges_; }

 private:
  Vertex n_;
  std::size_t edges_ = 0;
  std::vector<std::vector<Vertex>> adj_;
};

/// True iff the vertices with set bits in `mask` (plus `root`) induce a
/// connected subgraph that dominates every vertex of g. Such a set is
/// exactly the interior-node set of some spanning tree rooted at `root`
/// (BFS inside the set, then hang the remaining vertices as leaves).
bool is_connected_dominating(const Graph& g, Vertex root, std::uint64_t mask);

/// Spanning tree (parent array, parent[root] = -1) whose interior nodes are
/// a subset of `mask` ∪ {root}. Precondition: is_connected_dominating.
std::vector<Vertex> tree_from_interior(const Graph& g, Vertex root,
                                       std::uint64_t mask);

/// Checks that `parent` encodes a spanning tree of g rooted at `root` (every
/// parent edge exists, every vertex reaches root).
bool is_spanning_tree(const Graph& g, Vertex root,
                      const std::vector<Vertex>& parent);

/// Interior vertices (those with at least one child), root excluded.
std::uint64_t interior_mask(const std::vector<Vertex>& parent, Vertex root);

}  // namespace streamcast::graph
