// The paper's reduction from E4 Set Splitting to Two Interior-Disjoint
// Trees (appendix): a bipartite graph with one vertex per element (all
// adjacent to a root r) plus one vertex x_i per set R_i adjacent to R_i's
// four elements. The instance is splittable iff the reduced graph has two
// interior-disjoint spanning trees rooted at r.
#pragma once

#include "src/graph/graph.hpp"
#include "src/graph/set_splitting.hpp"

namespace streamcast::graph {

/// Vertex layout of the reduced graph: 0 = root r, 1..elements = element
/// vertices, elements+1 .. elements+sets = set vertices x_i.
struct ReducedInstance {
  Graph graph;
  Vertex root = 0;
  int elements = 0;
  int sets = 0;

  Vertex element_vertex(int e) const { return 1 + e; }
  Vertex set_vertex(int i) const { return 1 + elements + i; }
};

ReducedInstance reduce_to_idt(const SetSplittingInstance& inst);

/// Translates a splitting witness into the interior mask of the first tree
/// (V1's element vertices).
std::uint64_t interior_mask_from_splitting(const ReducedInstance& red,
                                           std::uint64_t v1);

/// Exact decision of Two Interior-Disjoint Trees specialized to reduced
/// graphs, independent of both the generic solver and the set-splitting
/// brute force. Uses the paper's leaf-normalization lemma: any set vertex
/// x_i in a tree's interior can be re-hung as a leaf (its children are
/// elements, all adjacent to the root), so it suffices to enumerate
/// element-vertex interior sets and test the connected-dominating property
/// on the actual graph. O(2^elements * (V+E)) — handles the unsplittable
/// complete C(7,4) instance the generic 2^(V-1) solver cannot.
bool reduced_has_two_idt(const ReducedInstance& red);

}  // namespace streamcast::graph
