#include "src/graph/reduction.hpp"

namespace streamcast::graph {

ReducedInstance reduce_to_idt(const SetSplittingInstance& inst) {
  const int n = 1 + inst.elements + static_cast<int>(inst.sets.size());
  ReducedInstance red{.graph = Graph(n),
                      .root = 0,
                      .elements = inst.elements,
                      .sets = static_cast<int>(inst.sets.size())};
  for (int e = 0; e < inst.elements; ++e) {
    red.graph.add_edge(red.root, red.element_vertex(e));
  }
  for (int i = 0; i < red.sets; ++i) {
    for (const int e : inst.sets[static_cast<std::size_t>(i)]) {
      red.graph.add_edge(red.set_vertex(i), red.element_vertex(e));
    }
  }
  return red;
}

bool reduced_has_two_idt(const ReducedInstance& red) {
  // Element vertices occupy bits 1..elements.
  const std::uint64_t all_elements =
      ((std::uint64_t{1} << (red.elements + 1)) - 1) & ~std::uint64_t{1};
  for (std::uint64_t a = 0;; a = ((a | ~all_elements) + 1) & all_elements) {
    if (is_connected_dominating(red.graph, red.root, a) &&
        is_connected_dominating(red.graph, red.root, all_elements & ~a)) {
      return true;
    }
    if (a == all_elements) break;
  }
  return false;
}

std::uint64_t interior_mask_from_splitting(const ReducedInstance& red,
                                           std::uint64_t v1) {
  std::uint64_t mask = 0;
  for (int e = 0; e < red.elements; ++e) {
    if ((v1 >> e) & 1) {
      mask |= std::uint64_t{1} << red.element_vertex(e);
    }
  }
  return mask;
}

}  // namespace streamcast::graph
