#include "src/graph/set_splitting.hpp"

#include <algorithm>
#include <stdexcept>

namespace streamcast::graph {

bool is_valid_splitting(const SetSplittingInstance& inst, std::uint64_t v1) {
  for (const auto& r : inst.sets) {
    bool in1 = false;
    bool in2 = false;
    for (const int e : r) {
      if ((v1 >> e) & 1) {
        in1 = true;
      } else {
        in2 = true;
      }
    }
    if (!in1 || !in2) return false;
  }
  return true;
}

std::optional<std::uint64_t> solve_set_splitting(
    const SetSplittingInstance& inst) {
  if (inst.elements < 1 || inst.elements > 24) {
    throw std::invalid_argument("brute-force splitter limited to 24 elements");
  }
  // Splitting is symmetric under swapping V1/V2, so pin element 0 into V1.
  const std::uint64_t half = std::uint64_t{1}
                             << (inst.elements - 1);
  for (std::uint64_t rest = 0; rest < half; ++rest) {
    const std::uint64_t v1 = (rest << 1) | 1;
    if (is_valid_splitting(inst, v1)) return v1;
  }
  return std::nullopt;
}

SetSplittingInstance random_instance(int elements, int sets,
                                     util::Prng& rng) {
  if (elements < 4) throw std::invalid_argument("E4 needs >= 4 elements");
  SetSplittingInstance inst;
  inst.elements = elements;
  inst.sets.reserve(static_cast<std::size_t>(sets));
  for (int i = 0; i < sets; ++i) {
    std::array<int, 4> r{};
    int filled = 0;
    while (filled < 4) {
      const int e = static_cast<int>(
          rng.below(static_cast<std::uint64_t>(elements)));
      if (std::find(r.begin(), r.begin() + filled, e) ==
          r.begin() + filled) {
        r[static_cast<std::size_t>(filled++)] = e;
      }
    }
    std::sort(r.begin(), r.end());
    inst.sets.push_back(r);
  }
  return inst;
}

}  // namespace streamcast::graph
