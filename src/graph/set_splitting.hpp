// E4 Set Splitting (Håstad): given elements V and 4-element sets R_i, split
// V into V1/V2 so every R_i meets both sides. The paper reduces this known
// NP-complete problem to Two Interior-Disjoint Trees.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/util/prng.hpp"

namespace streamcast::graph {

struct SetSplittingInstance {
  int elements = 0;                          // V = {0, ..., elements-1}
  std::vector<std::array<int, 4>> sets;      // each R_i: 4 distinct elements
};

/// Brute-force decision + witness: bitmask of V1 (element i in V1 iff bit i
/// set), or nullopt when unsplittable. Exhaustive over 2^(elements-1)
/// (element 0 pinned to V1 by symmetry).
std::optional<std::uint64_t> solve_set_splitting(
    const SetSplittingInstance& inst);

/// True iff the V1 mask splits every set.
bool is_valid_splitting(const SetSplittingInstance& inst, std::uint64_t v1);

/// Random instance with the given counts (sets drawn uniformly without
/// within-set repetition). elements must be >= 4.
SetSplittingInstance random_instance(int elements, int sets, util::Prng& rng);

}  // namespace streamcast::graph
