// Polynomial-time heuristic for the Two Interior-Disjoint Tree problem.
//
// The appendix proves the decision problem NP-complete on arbitrary graphs,
// so a practical overlay builder needs a heuristic. Ours is greedy CDS
// pairing: grow a connected dominating set A from the root (largest
// coverage gain first), prune it minimal, then try to grow a second CDS B
// inside V \ A \ {root}. A returned witness is always valid (sound); the
// heuristic may miss solvable instances (incomplete) — the bench measures
// how often, against the exact solver on small graphs.
#pragma once

#include <optional>

#include "src/graph/idt_solver.hpp"

namespace streamcast::graph {

std::optional<IdtWitness> greedy_two_idt(const Graph& g, Vertex root);

/// The greedy connected-dominating-set core: grows from `root` inside the
/// allowed vertex set (bitmask over vertices, root need not be set), prunes
/// to a minimal CDS, and returns the interior mask — or nullopt if even the
/// full allowed set does not contain a CDS.
std::optional<std::uint64_t> greedy_cds(const Graph& g, Vertex root,
                                        std::uint64_t allowed);

}  // namespace streamcast::graph
