// Exact solver for the Two Interior-Disjoint Tree problem (paper appendix):
// does an arbitrary graph G contain two spanning trees rooted at S whose
// interior nodes are disjoint (the root may be interior in both)?
//
// Key reduction used by the solver: a spanning tree rooted at S with
// interior set ⊆ A ∪ {S} exists iff A ∪ {S} is a connected dominating set.
// So the question becomes: do two *disjoint* vertex sets A, B (both avoiding
// S) exist such that both A ∪ {S} and B ∪ {S} are connected dominating sets?
//
// Exhaustive over subsets A of V \ {S}; for the complement side we use the
// component trick: X contains a CDS iff the connected component of S inside
// X ∪ {S} is itself dominating (any CDS inside X lies in that component,
// and supersets within the component stay connected and dominating).
// Complexity O(2^(n-1) * (V + E)) — the instances the NP-completeness
// experiment builds are small by design.
#pragma once

#include <optional>

#include "src/graph/graph.hpp"

namespace streamcast::graph {

struct IdtWitness {
  std::vector<Vertex> tree_a;  // parent arrays
  std::vector<Vertex> tree_b;
};

/// Returns a witness pair of interior-disjoint spanning trees rooted at
/// root, or nullopt when none exists.
std::optional<IdtWitness> two_interior_disjoint_trees(const Graph& g,
                                                      Vertex root);

/// Verifies a candidate pair: both spanning trees rooted at root, interiors
/// disjoint outside the root.
bool is_interior_disjoint_pair(const Graph& g, Vertex root,
                               const std::vector<Vertex>& tree_a,
                               const std::vector<Vertex>& tree_b);

}  // namespace streamcast::graph
