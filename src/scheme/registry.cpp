#include "src/scheme/registry.hpp"

#include <stdexcept>
#include <string>
#include <string_view>

#include "src/baseline/chain.hpp"
#include "src/baseline/single_tree.hpp"
#include "src/dyntree/forest.hpp"
#include "src/dyntree/protocol.hpp"
#include "src/hypercube/analysis.hpp"
#include "src/hypercube/protocol.hpp"
#include "src/loss/model.hpp"
#include "src/multitree/analysis.hpp"
#include "src/multitree/greedy.hpp"
#include "src/multitree/protocol.hpp"
#include "src/multitree/structured.hpp"
#include "src/policy/registry.hpp"
#include "src/rrd/digraph.hpp"
#include "src/rrd/protocol.hpp"
#include "src/supertree/analysis.hpp"

namespace streamcast::scheme {

namespace {

// --- multi-tree (§2.2) -----------------------------------------------------

Overlay build_multitree(const SessionConfig& config) {
  const core::NodeKey n = config.n;
  const int d = config.d;
  Overlay o;
  o.window = config.window;
  o.forest = std::make_unique<multitree::Forest>(
      config.scheme == Scheme::kMultiTreeGreedy
          ? multitree::build_greedy(n, d)
          : multitree::build_structured(n, d));
  if (o.window == 0) o.window = 2 * d * (o.forest->height() + 2);
  o.topology = std::make_unique<net::UniformCluster>(n, d);
  auto proto =
      std::make_unique<multitree::MultiTreeProtocol>(*o.forest, config.mode);
  // On lossy links a forward must wait for the actual (possibly repaired)
  // receipt, so the replayed deterministic schedule is unsound; keep the
  // cursor pump, which advances only on delivery. Adaptive startup decides
  // from observed arrivals, so it too runs the live pump rather than the
  // memoized replay (mirroring StreamingSession::replay_eligible).
  if (config.loss.model != loss::ErasureKind::kNone ||
      policy::startup_policy(config.startup.policy).caps.adaptive) {
    proto->use_periodic_cache(false);
  }
  o.protocol = std::move(proto);
  o.slack += multitree::worst_delay_bound(n, d) + 3 * d;
  return o;
}

Envelope envelope_multitree(const SessionConfig& config) {
  // Theorem 2's h*d delay/buffer; live modes shift the schedule by up to d.
  Envelope e;
  e.delay = multitree::worst_delay_bound(config.n, config.d);
  e.buffer = e.delay;
  if (config.mode != multitree::StreamMode::kPreRecorded) {
    e.delay += config.d;
    e.buffer += config.d;
  }
  return e;
}

Slot multicluster_bound_multitree(const SessionConfig& config) {
  return supertree::structural_bound(config.clusters, config.big_d,
                                     config.t_c, 1, config.d, config.n);
}

// --- hypercube (§3) --------------------------------------------------------

Overlay build_hypercube(const SessionConfig& config) {
  const core::NodeKey n = config.n;
  Overlay o;
  o.window = config.window;
  if (o.window == 0) o.window = 2 * hypercube::worst_delay(n) + 8;
  o.topology = std::make_unique<net::UniformCluster>(n, 1);
  o.protocol = std::make_unique<hypercube::HypercubeProtocol>(
      std::vector<std::vector<hypercube::Segment>>{
          hypercube::decompose_chain(n)});
  o.slack += hypercube::worst_delay(n);
  return o;
}

Envelope envelope_hypercube(const SessionConfig& config) {
  // Propositions 1-2: O(1) buffers, measured <= 3 on every grid.
  return {hypercube::worst_delay(config.n), 3};
}

Slot multicluster_bound_hypercube(const SessionConfig& config) {
  return supertree::structural_bound_hypercube(config.clusters, config.big_d,
                                               config.t_c, 1, config.n);
}

Overlay build_hypercube_grouped(const SessionConfig& config) {
  const core::NodeKey n = config.n;
  const int d = config.d;
  Overlay o;
  o.window = config.window;
  if (o.window == 0) o.window = 2 * hypercube::worst_delay_grouped(n, d) + 8;
  o.topology = std::make_unique<net::UniformCluster>(n, d);
  std::vector<std::vector<hypercube::Segment>> chains;
  for (auto& g : hypercube::decompose_grouped(n, d)) {
    chains.push_back(std::move(g.chain));
  }
  o.protocol =
      std::make_unique<hypercube::HypercubeProtocol>(std::move(chains));
  o.slack += hypercube::worst_delay_grouped(n, d);
  return o;
}

Envelope envelope_hypercube_grouped(const SessionConfig& config) {
  return {hypercube::worst_delay_grouped(config.n, config.d), 3};
}

// --- baselines (§1) --------------------------------------------------------

Overlay build_chain(const SessionConfig& config) {
  Overlay o;
  o.window = config.window;
  if (o.window == 0) o.window = 8;
  o.topology = std::make_unique<net::UniformCluster>(config.n, 1);
  o.protocol = std::make_unique<baseline::ChainProtocol>(config.n);
  o.slack += config.n;
  return o;
}

Envelope envelope_chain(const SessionConfig& config) {
  // Perfectly paced: play each packet the slot it arrives.
  return {baseline::chain_worst_delay(config.n), 1};
}

Overlay build_single_tree(const SessionConfig& config) {
  Overlay o;
  o.window = config.window;
  if (o.window == 0) o.window = 8;
  o.topology = std::make_unique<baseline::BoostedCluster>(config.n, config.d);
  o.protocol =
      std::make_unique<baseline::SingleTreeProtocol>(config.n, config.d);
  o.slack += baseline::single_tree_worst_delay(config.n, config.d) + 2;
  return o;
}

Envelope envelope_single_tree(const SessionConfig& config) {
  const Slot delay = baseline::single_tree_worst_delay(config.n, config.d);
  return {delay, delay};
}

// --- random regular digraph (related work: 1308.6807) ----------------------

Overlay build_random_regular(const SessionConfig& config) {
  Overlay o;
  o.window = config.window;
  const Slot bound = rrd::delay_bound(config.n, config.d);
  if (o.window == 0) o.window = 2 * bound + 16;
  // Kim–Srikant regime: in-degree d (download capacity d), upload a
  // constant factor above the stream rate — see RandomRegularProtocol on
  // why rate 1 against upload 1 (their eps = 0 boundary) cannot work.
  o.topology = std::make_unique<net::UniformCluster>(config.n, config.d, 1,
                                                     config.d, 2);
  o.protocol = std::make_unique<rrd::RandomRegularProtocol>(
      rrd::build_digraph(config.n, config.d, config.seed), 2);
  o.slack += bound + config.d;
  return o;
}

Envelope envelope_random_regular(const SessionConfig& config) {
  const Slot delay = rrd::delay_bound(config.n, config.d);
  // Rate-1 playback from the delay bound caps occupancy at delay + 1.
  return {delay, delay + 1};
}

// --- dynamic trees (related work: 1308.1971) --------------------------------

dyntree::DynamicForest static_dyntree_forest(const SessionConfig& config) {
  // The registry's static instance: n joins, then one rebalance sweep —
  // deterministic in (n, d, seed), so build and envelope reconstruct the
  // identical forest (same PRNG draw sequence).
  dyntree::DynamicForest forest(config.d, config.seed);
  for (core::NodeKey i = 0; i < config.n; ++i) forest.join();
  forest.rebalance();
  return forest;
}

Overlay build_dynamic_trees(const SessionConfig& config) {
  Overlay o;
  o.window = config.window;
  auto forest = static_dyntree_forest(config);
  const Slot bound = dyntree::schedule_bound(forest) + 2 * config.d;
  if (o.window == 0) o.window = 2 * bound + 16;
  o.topology =
      std::make_unique<net::UniformCluster>(config.n, config.d, 1, config.d);
  o.protocol =
      std::make_unique<dyntree::DynamicTreesProtocol>(std::move(forest));
  o.slack += bound + config.d;
  return o;
}

Envelope envelope_dynamic_trees(const SessionConfig& config) {
  const auto forest = static_dyntree_forest(config);
  // Structure-derived schedule bound plus the empirical round-robin margin
  // (DESIGN.md §12); buffers as for random-regular.
  const Slot delay = dyntree::schedule_bound(forest) + 2 * config.d;
  return {delay, delay + 1};
}

// --- the registry ----------------------------------------------------------

constexpr Capabilities kMultiTreeCaps{.live_modes = true,
                                      .memoized_schedule = true,
                                      .degree_sweep = true,
                                      .closed_form_replay = true};

const Descriptor kRegistry[] = {
    {.id = Scheme::kMultiTreeStructured,
     .name = "multi-tree/structured",
     .caps = kMultiTreeCaps,
     .build = build_multitree,
     .envelope = envelope_multitree},
    {.id = Scheme::kMultiTreeGreedy,
     .name = "multi-tree/greedy",
     .caps = {.live_modes = true,
              .multicluster = true,
              .memoized_schedule = true,
              .degree_sweep = true},
     .build = build_multitree,
     .envelope = envelope_multitree,
     .intra = supertree::IntraScheme::kMultiTree,
     .multicluster_bound = multicluster_bound_multitree},
    {.id = Scheme::kHypercube,
     .name = "hypercube",
     .caps = {.multicluster = true,
              .demand_driven = true,
              .bounded_recovery_policies = false},
     .build = build_hypercube,
     .envelope = envelope_hypercube,
     .intra = supertree::IntraScheme::kHypercube,
     .multicluster_bound = multicluster_bound_hypercube},
    {.id = Scheme::kHypercubeGrouped,
     .name = "hypercube/grouped",
     .caps = {.demand_driven = true,
              .degree_sweep = true,
              .bounded_recovery_policies = false},
     .build = build_hypercube_grouped,
     .envelope = envelope_hypercube_grouped},
    {.id = Scheme::kChain,
     .name = "chain",
     .caps = {.dense_links = true},
     .build = build_chain,
     .envelope = envelope_chain},
    {.id = Scheme::kSingleTree,
     .name = "single-tree",
     .caps = {.dense_links = true, .degree_sweep = true},
     .build = build_single_tree,
     .envelope = envelope_single_tree},
    {.id = Scheme::kRandomRegular,
     .name = "random-regular",
     .caps = {.degree_sweep = true},
     .build = build_random_regular,
     .envelope = envelope_random_regular},
    {.id = Scheme::kDynamicTrees,
     .name = "dynamic-trees",
     .caps = {.degree_sweep = true, .churn = true, .churn_backfill = true},
     .build = build_dynamic_trees,
     .envelope = envelope_dynamic_trees},
};

}  // namespace

std::span<const Descriptor> all() { return kRegistry; }

const Descriptor& descriptor(Scheme s) {
  for (const Descriptor& d : kRegistry) {
    if (d.id == s) return d;
  }
  throw std::invalid_argument("unregistered scheme");
}

audit::AuditOptions audit_envelope(const SessionConfig& config,
                                   PacketId window) {
  const Envelope e = descriptor(config.scheme).envelope(config);
  audit::AuditOptions o;
  o.window = window;
  o.buffer_bound = e.buffer;
  if (config.loss.model != loss::ErasureKind::kNone) {
    // Repairs may legitimately exceed the deterministic delay bound; the
    // buffer check keeps running with gap-backlog slack, and window
    // completeness is accounted in LossSummary instead of violated.
    o.delay_bound = -1;
    o.gap_backlog_slack = true;
    o.require_complete = false;
  } else {
    o.delay_bound = e.delay;
    o.require_complete = true;
  }
  return o;
}

}  // namespace streamcast::scheme

namespace streamcast::core {

const char* scheme_name(Scheme s) { return scheme::descriptor(s).name; }

Scheme parse_scheme(std::string_view name) {
  for (const scheme::Descriptor& d : scheme::all()) {
    if (name == d.name) return d.id;
  }
  throw std::invalid_argument("unknown scheme name: " + std::string(name));
}

std::string scheme_label(Scheme s, int clusters) {
  std::string label = scheme_name(s);
  if (clusters > 1) {
    label += " x" + std::to_string(clusters) + " clusters";
  }
  return label;
}

}  // namespace streamcast::core
