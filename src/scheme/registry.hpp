// Static scheme registry: one descriptor per overlay scheme of the paper.
//
// A descriptor bundles everything the run pipeline needs to execute a scheme
// — the overlay factory (topology + protocol + measurement window + horizon
// slack), the capability flags the session validates against, the §7 audit
// envelope (the delay/buffer bounds the paper proves), and the canonical
// name with its exact-inverse parser. Adding scheme #7 means adding one
// descriptor here; the session, the benches, the audit grid, and the parity
// suite all pick it up by iterating `all()`.
//
// Scheme dispatch is centralized in this directory by construction:
// tools/lint_determinism.py fails CI on a `case Scheme::` arm anywhere
// outside src/scheme/.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "src/audit/auditor.hpp"
#include "src/core/config.hpp"
#include "src/multitree/forest.hpp"
#include "src/net/topology.hpp"
#include "src/sim/protocol.hpp"
#include "src/supertree/protocol.hpp"

namespace streamcast::scheme {

using core::PacketId;
using core::Scheme;
using core::SessionConfig;
using core::Slot;

/// A built single-cluster overlay, ready to hand to the engine. The forest
/// (multi-tree schemes only) is owned here because the protocol references
/// it for the lifetime of the run.
struct Overlay {
  std::unique_ptr<net::Topology> topology;
  std::unique_ptr<multitree::Forest> forest;
  std::unique_ptr<sim::Protocol> protocol;
  /// Packets measured when SessionConfig::window == 0 left the choice to
  /// the scheme (enough for steady state).
  PacketId window = 0;
  /// Horizon slack beyond window + worst delay.
  Slot slack = 4;
};

/// What a scheme supports / how its schedule behaves. The session validates
/// configurations against these flags instead of switching on the enum, and
/// the parity suite asserts they match what the legacy dispatch allowed.
struct Capabilities {
  /// multitree::StreamMode changes the schedule (live modes). Schemes that
  /// stream pre-recorded data ignore the mode.
  bool live_modes = false;
  /// Runs under loss::RecoveryProtocol on a provisioned topology. Every
  /// current scheme does; a future scheme may opt out.
  bool lossy_links = true;
  /// Valid intra-cluster scheme for the §2.1 super-tree composition.
  bool multicluster = false;
  /// Eligible for the memoized periodic-schedule cache (DESIGN.md §8).
  bool memoized_schedule = false;
  /// Every packet id flows over every link (newest-only forwarders), so the
  /// recovery layer may treat per-link id gaps as losses.
  bool dense_links = false;
  /// Demand-driven exchanges stop offering a packet once its consumption
  /// slot passes; the recovery layer must sweep aged gaps on a timeout.
  bool demand_driven = false;
  /// The degree parameter d is meaningful (benches sweep it; schemes with
  /// d fixed at 1 run a single chain).
  bool degree_sweep = false;
  /// Lossless runs of this scheme can be replayed in closed form by
  /// scale::replay_structured (DESIGN.md §11): the schedule is d-periodic
  /// position arithmetic, so QoS aggregates need no per-slot simulation.
  bool closed_form_replay = false;
  /// The overlay adapts to membership churn mid-run (join/leave/swap rules
  /// mutate the structure while the stream keeps flowing); the churn
  /// benches pick it up as the adaptive competitor.
  bool churn = false;
  /// Delay-bounded recovery policies (policy caps.bounded_recovery, e.g.
  /// streaming-code) are sound: every window gap is link-visible as a
  /// failed transmission. Demand-driven offer schedules retire packets at
  /// their consumption slot, producing silent gaps only a feedback sweep
  /// closes, so they opt out and the session rejects the combination.
  bool bounded_recovery_policies = true;
  /// Churn-induced gaps can be repaired through a NACK backfill channel
  /// (loss::RecoveryProtocol::seat seats joiners at the live edge);
  /// bench/churn_realistic picks it up as the repaired competitor.
  bool churn_backfill = false;
};

/// The §7 audit envelope a scheme claims on reliable links: worst playback
/// delay and max buffer occupancy. -1 skips a check.
struct Envelope {
  Slot delay = -1;
  std::int64_t buffer = -1;
};

struct Descriptor {
  Scheme id;
  /// Canonical name; core::scheme_name/parse_scheme round-trip through it.
  const char* name;
  Capabilities caps;
  /// Builds the single-cluster overlay for a validated config.
  Overlay (*build)(const SessionConfig&);
  /// Reliable-link delay/buffer envelope (lossy adjustments are applied
  /// uniformly by audit_envelope()).
  Envelope (*envelope)(const SessionConfig&);
  /// Super-tree intra-cluster mapping; meaningful iff caps.multicluster.
  supertree::IntraScheme intra = supertree::IntraScheme::kMultiTree;
  /// Structural delay bound of the cross-cluster composition; null unless
  /// caps.multicluster.
  Slot (*multicluster_bound)(const SessionConfig&) = nullptr;
};

/// Every registered scheme, in core::Scheme enumerator order.
std::span<const Descriptor> all();

const Descriptor& descriptor(Scheme s);

/// The scheme's claimed QoS envelope packaged as auditor options, with the
/// uniform lossy-run adjustments (repairs may exceed the deterministic
/// delay bound; buffers keep gap-backlog slack; completeness is accounted
/// in LossSummary instead of violated).
audit::AuditOptions audit_envelope(const SessionConfig& config,
                                   PacketId window);

}  // namespace streamcast::scheme
