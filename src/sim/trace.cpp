#include "src/sim/trace.hpp"

namespace streamcast::sim {

std::vector<Delivery> Trace::received_by(NodeKey node) const {
  std::vector<Delivery> out;
  for (const auto& d : deliveries_) {
    if (d.tx.to == node) out.push_back(d);
  }
  return out;
}

std::vector<Delivery> Trace::sent_by(NodeKey node) const {
  std::vector<Delivery> out;
  for (const auto& d : deliveries_) {
    if (d.tx.from == node) out.push_back(d);
  }
  return out;
}

std::vector<Delivery> Trace::sent_in(Slot t) const {
  std::vector<Delivery> out;
  for (const auto& d : deliveries_) {
    if (d.sent == t) out.push_back(d);
  }
  return out;
}

}  // namespace streamcast::sim
