// The protocol interface every streaming scheme implements.
//
// The engine drives the world slot by slot: at slot t it first asks the
// protocol which transmissions start in t (the protocol sees node state as of
// the end of slot t-1), then completes every transmission whose arrival slot
// is t and reports each to the protocol via deliver().
#pragma once

#include <vector>

#include "src/sim/event.hpp"
#include "src/sim/packet.hpp"

namespace streamcast::sim {

class Protocol {
 public:
  virtual ~Protocol() = default;

  /// Appends all transmissions initiated in slot t to `out`. The engine
  /// validates them against the topology's capacity limits.
  virtual void transmit(Slot t, std::vector<Tx>& out) = 0;

  /// Notifies the protocol that `tx.to` received `tx.packet` in slot t.
  /// Called after all of slot t's transmit() output has been queued, so state
  /// updates here are visible from slot t+1 on — never retroactively.
  virtual void deliver(Slot t, const Tx& tx) = 0;
};

}  // namespace streamcast::sim
