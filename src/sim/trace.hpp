// Delivery trace: an ordered record of every completed transmission, used by
// the figure-reproduction benches (Figures 2 and 6 are per-slot schedule
// tables) and by tests that assert exact schedules.
#pragma once

#include <vector>

#include "src/sim/event.hpp"

namespace streamcast::sim {

class Trace {
 public:
  void record(const Delivery& d) { deliveries_.push_back(d); }

  const std::vector<Delivery>& all() const { return deliveries_; }

  /// Deliveries received by `node`, in receive-slot order.
  std::vector<Delivery> received_by(NodeKey node) const;

  /// Deliveries sent by `node`, in send-slot order.
  std::vector<Delivery> sent_by(NodeKey node) const;

  /// Deliveries whose transmission started in slot t.
  std::vector<Delivery> sent_in(Slot t) const;

 private:
  std::vector<Delivery> deliveries_;
};

}  // namespace streamcast::sim
