// Delivery trace: an ordered record of every completed transmission, used by
// the figure-reproduction benches (Figures 2 and 6 are per-slot schedule
// tables) and by tests that assert exact schedules.
//
// Trace is itself a DeliveryObserver, so `engine.add_observer(trace)` records
// every delivery — and, on lossy links, every erased transmission — without
// an adapter class.
#pragma once

#include <vector>

#include "src/sim/engine.hpp"
#include "src/sim/event.hpp"

namespace streamcast::sim {

class Trace final : public DeliveryObserver {
 public:
  void record(const Delivery& d) { deliveries_.push_back(d); }

  void on_delivery(const Delivery& d) override { record(d); }
  void on_drop(const Drop& d) override { drops_.push_back(d); }

  const std::vector<Delivery>& all() const { return deliveries_; }

  /// Every transmission the loss model erased, in send-slot order.
  const std::vector<Drop>& drops() const { return drops_; }

  /// Deliveries received by `node`, in receive-slot order.
  std::vector<Delivery> received_by(NodeKey node) const;

  /// Deliveries sent by `node`, in send-slot order.
  std::vector<Delivery> sent_by(NodeKey node) const;

  /// Deliveries whose transmission started in slot t.
  std::vector<Delivery> sent_in(Slot t) const;

 private:
  std::vector<Delivery> deliveries_;
  std::vector<Drop> drops_;
};

}  // namespace streamcast::sim
