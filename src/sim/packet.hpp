// Fundamental identifiers of the slot-synchronous streaming model (§2 of the
// paper): discrete time slots, stream packet sequence numbers, and node keys.
#pragma once

#include <cstdint>

namespace streamcast::sim {

/// Discrete time slot, t = 0, 1, 2, ... One slot is the playback time of a
/// single packet (§2.2).
using Slot = std::int64_t;

/// Position in the (potentially infinite) packet stream, 0-based.
using PacketId = std::int64_t;

/// Flat index of a node in the simulated world. Every scheme reserves key 0
/// for the stream source of its world; receivers are 1..N (plus whatever a
/// multi-cluster topology appends).
using NodeKey = std::int32_t;

inline constexpr NodeKey kNoNode = -1;
inline constexpr PacketId kNoPacket = -1;

/// Packet ids at or above this value are control traffic (FEC parity, repair
/// bookkeeping), not positions in the stream. Stream metrics ignore them;
/// the loss/recovery layer allocates ids from this space so control packets
/// never collide with data in the engine's duplicate-delivery keys.
inline constexpr PacketId kControlIdBase = PacketId{1} << 30;

}  // namespace streamcast::sim
