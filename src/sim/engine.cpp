#include "src/sim/engine.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

#include "src/loss/model.hpp"

namespace streamcast::sim {

namespace {

/// Bits reserved for the packet id in a (node, packet) delivery key. Node
/// keys occupy the bits above, so the two fields can never alias: distinct
/// pairs map to distinct keys for every packet id below 2^40 (range-checked)
/// and every node key below 2^24 (NodeKey is 31 usable bits, but 2^24 nodes
/// is already beyond any simulated world; asserted all the same).
constexpr int kPacketKeyBits = 40;
constexpr PacketId kMaxKeyPacket = PacketId{1} << kPacketKeyBits;
constexpr NodeKey kMaxKeyNode = NodeKey{1} << 24;

std::uint64_t delivery_key(NodeKey node, PacketId packet) {
  assert(node >= 0 && node < kMaxKeyNode);
  assert(packet >= 0 && packet < kMaxKeyPacket);
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(node))
          << kPacketKeyBits) |
         static_cast<std::uint64_t>(packet);
}

[[noreturn]] void violation(const std::string& what, Slot t, const Tx& tx) {
  throw ProtocolViolation(what + " (slot " + std::to_string(t) + ", " +
                          std::to_string(tx.from) + " -> " +
                          std::to_string(tx.to) + ", packet " +
                          std::to_string(tx.packet) + ")");
}

}  // namespace

Engine::Engine(const net::Topology& topology, Protocol& protocol,
               EngineOptions options)
    : topology_(topology), protocol_(protocol), options_(options) {
  send_used_.resize(static_cast<std::size_t>(topology_.size()));
  recv_used_.resize(static_cast<std::size_t>(topology_.size()));
  seen_bits_.resize(static_cast<std::size_t>(topology_.size()));
  ring_.resize(8);
  ring_mask_ = ring_.size() - 1;
}

void Engine::run_until(Slot horizon) {
  while (now_ < horizon) step();
}

void Engine::grow_ring(Slot max_latency) {
  const auto needed = std::bit_ceil(static_cast<std::size_t>(max_latency));
  std::vector<std::vector<Delivery>> next(needed);
  const std::size_t mask = needed - 1;
  for (auto& bucket : ring_) {
    for (Delivery& d : bucket) {
      next[static_cast<std::size_t>(d.received) & mask].push_back(
          std::move(d));
    }
  }
  ring_ = std::move(next);
  ring_mask_ = mask;
}

bool Engine::seen_before(NodeKey node, PacketId packet) {
  if (packet >= kControlIdBase) {
    return !seen_control_.insert(delivery_key(node, packet)).second;
  }
  auto& bits = seen_bits_[static_cast<std::size_t>(node)];
  const auto word = static_cast<std::size_t>(packet >> 6);
  if (word >= bits.size()) bits.resize(std::bit_ceil(word + 1), 0);
  const std::uint64_t mask = std::uint64_t{1} << (packet & 63);
  const bool seen = (bits[word] & mask) != 0;
  bits[word] |= mask;
  return seen;
}

void Engine::step() {
  const Slot t = now_;

  // Phase 1: collect and validate this slot's transmissions.
  tx_scratch_.clear();
  protocol_.transmit(t, tx_scratch_);
  for (const Tx& tx : tx_scratch_) {
    if (tx.from < 0 || tx.from >= topology_.size() || tx.to < 0 ||
        tx.to >= topology_.size()) {
      violation("node key out of range", t, tx);
    }
    if (tx.from == tx.to) violation("self transmission", t, tx);
    if (tx.packet < 0) violation("negative packet id", t, tx);
    auto& sender = send_used_[static_cast<std::size_t>(tx.from)];
    if (sender.epoch != t) {
      sender.epoch = t;
      sender.used = 0;
    }
    if (++sender.used > topology_.send_capacity(tx.from) && options_.enforce) {
      violation("send capacity exceeded", t, tx);
    }
    const Slot latency = topology_.latency(tx.from, tx.to);
    assert(latency >= 1);
    ++stats_.transmissions;
    if (tx.retransmit) ++stats_.retransmissions;
    const Slot arrive = t + latency - 1;
    if (loss_ != nullptr && loss_->erased(t, tx)) {
      ++stats_.drops;
      const Drop drop{.sent = t, .would_arrive = arrive, .tx = tx};
      for (DeliveryObserver* obs : observers_) obs->on_drop(drop);
      continue;
    }
    if (static_cast<std::size_t>(latency) > ring_.size()) grow_ring(latency);
    ring_[static_cast<std::size_t>(arrive) & ring_mask_].push_back(
        Delivery{.sent = t, .received = arrive, .tx = tx});
  }

  // Phase 2: complete arrivals scheduled for this slot.
  auto& bucket = ring_[static_cast<std::size_t>(t) & ring_mask_];
  if (!bucket.empty()) {
    for (const Delivery& d : bucket) {
      assert(d.received == t);
      auto& receiver = recv_used_[static_cast<std::size_t>(d.tx.to)];
      if (receiver.epoch != t) {
        receiver.epoch = t;
        receiver.used = 0;
      }
      if (++receiver.used > topology_.recv_capacity(d.tx.to) &&
          options_.enforce) {
        violation("receive capacity exceeded", t, d.tx);
      }
      if (seen_before(d.tx.to, d.tx.packet)) {
        ++stats_.duplicate_deliveries;
        if (options_.forbid_duplicates && options_.enforce) {
          violation("duplicate delivery", t, d.tx);
        }
      }
      ++stats_.deliveries;
      for (DeliveryObserver* obs : observers_) obs->on_delivery(d);
      protocol_.deliver(t, d.tx);
    }
    bucket.clear();
  }

  ++now_;
}

}  // namespace streamcast::sim
