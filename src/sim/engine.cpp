// streamcast: hot-path (lint: hot-path-alloc applies to this file)
#include "src/sim/engine.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace streamcast::sim {

namespace {

/// Bits reserved for the packet id in a (node, packet) delivery key. Node
/// keys occupy the bits above, so the two fields can never alias: distinct
/// pairs map to distinct keys for every packet id below 2^40 (range-checked)
/// and every node key below 2^24 (NodeKey is 31 usable bits, but 2^24 nodes
/// is already beyond any simulated world; asserted all the same).
constexpr int kPacketKeyBits = 40;
constexpr PacketId kMaxKeyPacket = PacketId{1} << kPacketKeyBits;
constexpr NodeKey kMaxKeyNode = NodeKey{1} << 24;

std::uint64_t delivery_key(NodeKey node, PacketId packet) {
  assert(node >= 0 && node < kMaxKeyNode);
  assert(packet >= 0 && packet < kMaxKeyPacket);
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(node))
          << kPacketKeyBits) |
         static_cast<std::uint64_t>(packet);
}

[[noreturn]] void violation(const std::string& what, Slot t, const Tx& tx) {
  throw ProtocolViolation(what + " (slot " + std::to_string(t) + ", " +
                          std::to_string(tx.from) + " -> " +
                          std::to_string(tx.to) + ", packet " +
                          std::to_string(tx.packet) + ")");
}

}  // namespace

Engine::Engine(const net::Topology& topology, Protocol& protocol,
               EngineOptions options)
    : topology_(topology),
      protocol_(protocol),
      options_(options),
      arena_(options.budget, "sim/ring-arena") {
  const auto n = static_cast<std::size_t>(topology_.size());
  charge("sim/capacity-epochs",
         2 * n * (sizeof(Slot) + sizeof(std::int32_t)));
  send_epoch_.assign(n, Slot{-1});
  send_count_.assign(n, 0);
  recv_epoch_.assign(n, Slot{-1});
  recv_count_.assign(n, 0);
  // Lay the duplicate bitmap out once when the caller knows the packet
  // range; otherwise start with one word per node and re-layout on demand.
  const std::size_t hint_words =
      options_.packet_window_hint > 0
          ? static_cast<std::size_t>((options_.packet_window_hint + 63) >> 6)
          : 1;
  seen_stride_ = std::bit_ceil(hint_words);
  charge("sim/seen-bitmaps", n * seen_stride_ * sizeof(std::uint64_t));
  seen_words_.assign(n * seen_stride_, 0);
  ring_.assign(8, util::ArenaVector<Delivery>(
                      util::ArenaAllocator<Delivery>(arena_)));
  ring_mask_ = ring_.size() - 1;
}

Engine::~Engine() {
  if (options_.budget != nullptr) options_.budget->release(charged_bytes_);
}

void Engine::charge(const char* component, std::size_t bytes) {
  if (options_.budget == nullptr) return;
  options_.budget->charge(component, bytes);
  charged_bytes_ += bytes;
}

void Engine::run_until(Slot horizon) {
  while (now_ < horizon) step();
}

void Engine::grow_ring(Slot max_latency) {
  const auto needed = std::bit_ceil(static_cast<std::size_t>(max_latency));
  // Bucket headers are O(ring size) and re-laid-out only on latency growth;
  // the Delivery payloads themselves move between arena-backed buckets.
  std::vector<util::ArenaVector<Delivery>> next(  // lint: allow(hot-path-alloc)
      needed,
      util::ArenaVector<Delivery>(util::ArenaAllocator<Delivery>(arena_)));
  const std::size_t mask = needed - 1;
  for (auto& bucket : ring_) {
    for (Delivery& d : bucket) {
      next[static_cast<std::size_t>(d.received) & mask].push_back(
          std::move(d));
    }
  }
  ring_ = std::move(next);
  ring_mask_ = mask;
  ++stats_.ring_relayouts;
}

void Engine::grow_seen(std::size_t word) {
  const std::size_t n = send_epoch_.size();
  const std::size_t stride = std::bit_ceil(word + 1);
  // Both layouts are live during the copy; charge the new one first (fail
  // fast before allocating), release the old one after the swap.
  charge("sim/seen-bitmaps", n * stride * sizeof(std::uint64_t));
  // lint: allow(hot-path-alloc) — one-shot flat bitmap re-layout
  std::vector<std::uint64_t> next(n * stride, 0);
  for (std::size_t node = 0; node < n; ++node) {
    std::copy_n(seen_words_.data() + node * seen_stride_, seen_stride_,
                next.data() + node * stride);
  }
  seen_words_ = std::move(next);
  if (options_.budget != nullptr) {
    const std::size_t old_bytes = n * seen_stride_ * sizeof(std::uint64_t);
    options_.budget->release(old_bytes);
    charged_bytes_ -= old_bytes;
  }
  seen_stride_ = stride;
  ++stats_.seen_relayouts;
}

bool Engine::seen_before(NodeKey node, PacketId packet) {
  if (packet >= kControlIdBase) {
    return !seen_control_.insert(delivery_key(node, packet)).second;
  }
  const auto word = static_cast<std::size_t>(packet >> 6);
  if (word >= seen_stride_) grow_seen(word);
  auto& bits =
      seen_words_[static_cast<std::size_t>(node) * seen_stride_ + word];
  const std::uint64_t mask = std::uint64_t{1} << (packet & 63);
  const bool seen = (bits & mask) != 0;
  bits |= mask;
  return seen;
}

void Engine::deliver_one(Slot t, const Delivery& d) {
  const auto to = static_cast<std::size_t>(d.tx.to);
  if (recv_epoch_[to] != t) {
    recv_epoch_[to] = t;
    recv_count_[to] = 0;
  }
  if (++recv_count_[to] > topology_.recv_capacity(d.tx.to) &&
      options_.enforce) {
    violation("receive capacity exceeded", t, d.tx);
  }
  if (seen_before(d.tx.to, d.tx.packet)) {
    ++stats_.duplicate_deliveries;
    if (options_.forbid_duplicates && options_.enforce) {
      violation("duplicate delivery", t, d.tx);
    }
  }
  ++stats_.deliveries;
  for (DeliveryObserver* obs : observers_) obs->on_delivery(d);
  protocol_.deliver(t, d.tx);
}

void Engine::post(const Delivery& d) {
  if (d.received >= now_) {
    // Ring invariant: size > (arrival distance from now), so co-resident
    // same-bucket deliveries always share an arrival slot.
    const Slot span = d.received - now_ + 1;
    if (static_cast<std::size_t>(span) > ring_.size()) grow_ring(span);
    ring_[static_cast<std::size_t>(d.received) & ring_mask_].push_back(d);
    return;
  }
  if (d.received != now_ - 1) {
    throw ProtocolViolation(
        "post: arrival slot " + std::to_string(d.received) +
        " is before the epoch boundary (now " + std::to_string(now_) + ")");
  }
  // Retroactive completion of the epoch's final slot: the receive-capacity
  // epoch stamps still carry slot now_-1 state, so charging and duplicate
  // detection behave exactly as if the delivery had been in that slot's
  // bucket (DESIGN.md §14 proves protocol-state equivalence).
  deliver_one(d.received, d);
}

void Engine::step() {
  const Slot t = now_;

  // Phase 1: collect and validate this slot's transmissions.
  tx_scratch_.clear();
  protocol_.transmit(t, tx_scratch_);
  for (const Tx& tx : tx_scratch_) {
    if (tx.from < 0 || tx.from >= topology_.size() || tx.to < 0 ||
        tx.to >= topology_.size()) {
      violation("node key out of range", t, tx);
    }
    if (tx.from == tx.to) violation("self transmission", t, tx);
    if (tx.packet < 0) violation("negative packet id", t, tx);
    const auto from = static_cast<std::size_t>(tx.from);
    if (send_epoch_[from] != t) {
      send_epoch_[from] = t;
      send_count_[from] = 0;
    }
    if (++send_count_[from] > topology_.send_capacity(tx.from) &&
        options_.enforce) {
      violation("send capacity exceeded", t, tx);
    }
    const Slot latency = topology_.latency(tx.from, tx.to);
    assert(latency >= 1);
    ++stats_.transmissions;
    if (tx.retransmit) ++stats_.retransmissions;
    const Slot arrive = t + latency - 1;
    if (loss_ != nullptr && loss_->erased(t, tx)) {
      ++stats_.drops;
      const Drop drop{.sent = t, .would_arrive = arrive, .tx = tx};
      for (DeliveryObserver* obs : observers_) obs->on_drop(drop);
      continue;
    }
    const Delivery d{.sent = t, .received = arrive, .tx = tx};
    // Sender-side accounting is complete; a router may now take custody of
    // a cross-shard delivery (it never enters the local ring).
    if (options_.router != nullptr && !options_.router->keep(d)) continue;
    if (static_cast<std::size_t>(latency) > ring_.size()) grow_ring(latency);
    ring_[static_cast<std::size_t>(arrive) & ring_mask_].push_back(d);
  }

  // Phase 2: complete arrivals scheduled for this slot.
  auto& bucket = ring_[static_cast<std::size_t>(t) & ring_mask_];
  if (!bucket.empty()) {
    for (const Delivery& d : bucket) {
      assert(d.received == t);
      deliver_one(t, d);
    }
    bucket.clear();
  }

  ++now_;
}

const EngineStats& Engine::stats() const {
  stats_.arena_bytes = arena_.bytes_served();
  stats_.arena_chunks = arena_.chunks();
  stats_.arena_allocations = arena_.allocations();
  return stats_;
}

}  // namespace streamcast::sim
