// Slot-synchronous simulation engine.
// streamcast: hot-path (lint: hot-path-alloc applies to this file)
//
// The engine owns time. Each slot it (1) collects the protocol's outgoing
// transmissions, charging them against per-node send capacity, (2) completes
// every transmission whose arrival slot is the current slot, charging receive
// capacity, and (3) reports completions to the protocol and to all attached
// observers (metrics recorders, traces).
//
// Constraint violations — over-capacity sends or receives, self-sends,
// out-of-range keys, duplicate deliveries — throw ProtocolViolation. The
// paper's correctness proofs (appendix) state exactly these properties; the
// engine turns them into machine-checked invariants for every scheme.
//
// Lossy links: an optional ErasureOracle (implemented by the loss layer's
// channel models) is consulted once per queued transmission. An erased
// transmission still charges the sender's capacity
// (the packet was sent) but never arrives; the drop is counted in
// EngineStats, reported to observers via on_drop, and otherwise invisible to
// the receiving side — exactly an erasure channel.
//
// Hot-path data structures (DESIGN.md §8, §11, §14): all per-node state
// lives in flat structure-of-arrays storage. Capacity counters are
// epoch-stamped (a counter is "zero" whenever its stamp is not the current
// slot), so a slot costs O(#transmissions), never O(N) counter fills; the
// epochs and counts are separate contiguous arrays, not an array of structs,
// so the phase-1 loop touches only the bytes it reads. Duplicate detection
// for stream packets uses one flat bitmap for ALL nodes — a power-of-two
// word stride per node — instead of N separately heap-allocated bitmap
// vectors; at N = 10^6 that removes a million 2-pointer indirections and
// their allocator metadata. Control-plane ids (>= kControlIdBase) are sparse
// and stay in a hash set. The in-flight ring's per-slot buckets live on a
// per-engine util::Arena — bump allocation, no heap locks, no per-bucket
// metadata — whose counters are surfaced in EngineStats (§14).
//
// Every O(N) allocation is charged to the optional util::BudgetLedger
// before it happens, so an oversized world fails fast with BudgetExceeded
// instead of OOM-ing the host (DESIGN.md §11).
//
// Sharded execution (DESIGN.md §14): an optional TxRouter lets a sharded
// multicluster run divert cross-shard transmissions out of the local ring
// (sender-side validation, capacity charges, loss consultation, and stats
// all happen first), and post() lets the owning shard inject them — into
// the ring for future slots, or via the late path for the final slot of the
// epoch that just ran.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/net/topology.hpp"
#include "src/sim/erasure.hpp"
#include "src/sim/protocol.hpp"
#include "src/util/arena.hpp"
#include "src/util/budget.hpp"

namespace streamcast::sim {

class ProtocolViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Observer of completed deliveries; metrics recorders implement this.
class DeliveryObserver {
 public:
  virtual ~DeliveryObserver() = default;
  virtual void on_delivery(const Delivery& d) = 0;
  /// Called when the loss model erases a transmission. Default: ignore, so
  /// loss-oblivious recorders keep working unchanged.
  virtual void on_drop(const Drop&) {}
};

/// Cross-shard transmission router (sharded multicluster execution,
/// DESIGN.md §14). Consulted in phase 1 for every validated, non-erased
/// transmission, after send capacity and stats are charged.
class TxRouter {
 public:
  virtual ~TxRouter() = default;
  /// True: the engine keeps the delivery in its local ring. False: the
  /// router took custody (a cross-shard mailbox, exchanged at the epoch
  /// barrier and re-injected via Engine::post on the owning shard).
  virtual bool keep(const Delivery& d) = 0;
};

struct EngineOptions {
  /// Reject delivering the same packet to the same node twice. All of the
  /// paper's schemes are duplicate-free; churn runs relax this.
  bool forbid_duplicates = true;
  /// Throw ProtocolViolation on capacity/duplicate violations. Audit tests
  /// switch this off so an injected violation reaches the observers and must
  /// be caught by the InvariantAuditor, proving the auditor is an independent
  /// checker rather than a mirror of the engine's own guards. Range, self-
  /// send and negative-id violations always throw: they are memory-safety
  /// guards, not schedule properties.
  bool enforce = true;
  /// Expected stream-packet id range. Sizes the duplicate bitmap up front so
  /// the run never pays a mid-run re-layout; 0 starts minimal and grows on
  /// demand (amortized O(1), exactly as before).
  PacketId packet_window_hint = 0;
  /// When non-null, every O(N) engine allocation is charged here before it
  /// happens (fail fast with BudgetExceeded, never OOM). Must outlive the
  /// engine.
  util::BudgetLedger* budget = nullptr;
  /// Cross-shard router; null = every transmission stays local (the serial
  /// pump). Must outlive the engine.
  TxRouter* router = nullptr;
};

struct EngineStats {
  std::int64_t transmissions = 0;
  std::int64_t duplicate_deliveries = 0;
  /// Transmissions that completed (reported to observers and the protocol).
  std::int64_t deliveries = 0;
  /// Transmissions erased by the loss model.
  std::int64_t drops = 0;
  /// Transmissions flagged Tx::retransmit (NACK repairs).
  std::int64_t retransmissions = 0;
  // --- allocation accounting (DESIGN.md §14) -------------------------------
  /// Bytes served by the engine's bump arena (ring buckets).
  std::int64_t arena_bytes = 0;
  /// Chunks the arena reserved from the system.
  std::int64_t arena_chunks = 0;
  /// Individual arena allocations (bucket growth events).
  std::int64_t arena_allocations = 0;
  /// In-flight ring re-layouts (a larger link latency appeared mid-run).
  std::int64_t ring_relayouts = 0;
  /// Duplicate-bitmap re-layouts (packet ids outgrew the window hint).
  std::int64_t seen_relayouts = 0;
};

class Engine {
 public:
  Engine(const net::Topology& topology, Protocol& protocol,
         EngineOptions options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Simulates slots [now, horizon). Callable repeatedly with increasing
  /// horizons.
  void run_until(Slot horizon);

  /// Next slot to simulate.
  Slot now() const { return now_; }

  void add_observer(DeliveryObserver& obs) { observers_.push_back(&obs); }

  /// Attaches (or clears, with nullptr) the link erasure oracle (the loss
  /// layer's channel models implement it). The engine does not own it; it
  /// must outlive the run.
  void set_loss_model(ErasureOracle* model) { loss_ = model; }

  /// Injects an externally-produced delivery (a cross-shard backbone packet
  /// exchanged at the epoch barrier, DESIGN.md §14). An arrival at now()-1 —
  /// the final slot of the epoch that just ran — is completed immediately
  /// through the same phase-2 path (capacity, duplicate check, observers,
  /// protocol); any arrival >= now() is ringed for its slot. Arrivals
  /// before now()-1 are a caller bug and throw.
  void post(const Delivery& d);

  const EngineStats& stats() const;

 private:
  void step();
  void deliver_one(Slot t, const Delivery& d);
  void grow_ring(Slot max_latency);
  void grow_seen(std::size_t word);
  bool seen_before(NodeKey node, PacketId packet);
  void charge(const char* component, std::size_t bytes);

  const net::Topology& topology_;
  Protocol& protocol_;
  EngineOptions options_;
  Slot now_ = 0;
  /// Bump arena for the ring buckets: same-lifetime churny allocations stay
  /// off the general-purpose heap (and off its locks, which matters once
  /// one engine runs per shard thread). Declared before the ring so the
  /// buckets' allocator outlives them.
  util::Arena arena_;
  /// In-flight deliveries, bucketed by arrival slot modulo the ring size.
  /// The ring always holds at least the largest link latency seen, so any
  /// two co-resident deliveries with the same bucket share an arrival slot —
  /// the per-slot std::map this replaces was the hottest lookup of every
  /// bench. Outer vector of bucket headers is O(ring size), tiny and
  /// re-laid-out only on latency growth.
  // lint: allow(hot-path-alloc) — O(ring size) headers, relaid on growth
  std::vector<util::ArenaVector<Delivery>> ring_;
  std::size_t ring_mask_ = 0;
  /// Delivered-packet bitmaps for stream ids (< kControlIdBase), all nodes
  /// in one flat allocation: bit j of node x is word x·stride + (j >> 6).
  /// The stride is a power of two, re-laid out on demand. One-shot
  /// budget-charged SoA array, released wholesale on re-layout.
  std::vector<std::uint64_t> seen_words_;  // lint: allow(hot-path-alloc)
  std::size_t seen_stride_ = 0;
  /// Sparse control-plane ids (>= kControlIdBase) keep the hash set; repair
  /// bookkeeping traffic is rare so this is off the hot path.
  std::unordered_set<std::uint64_t> seen_control_;
  std::vector<DeliveryObserver*> observers_;  // lint: allow(hot-path-alloc)
  ErasureOracle* loss_ = nullptr;
  /// Protocol::transmit's signature fixes the scratch type; cleared (not
  /// freed) each slot, so it allocates O(log peak) times per run.
  std::vector<Tx> tx_scratch_;  // lint: allow(hot-path-alloc)
  /// Per-node per-slot capacity counters, epoch-stamped and split into
  /// parallel epoch/count arrays (a stale epoch reads as count zero, so no
  /// per-slot reset pass is needed — DESIGN.md §8). One-shot SoA arrays,
  /// budget-charged at construction.
  std::vector<Slot> send_epoch_;           // lint: allow(hot-path-alloc)
  std::vector<std::int32_t> send_count_;   // lint: allow(hot-path-alloc)
  std::vector<Slot> recv_epoch_;           // lint: allow(hot-path-alloc)
  std::vector<std::int32_t> recv_count_;   // lint: allow(hot-path-alloc)
  /// Bytes currently charged to options_.budget (released on destruction).
  std::size_t charged_bytes_ = 0;
  /// Arena counters are folded in on stats() reads; mutable keeps the
  /// accessor const for the aggregation paths.
  mutable EngineStats stats_;
};

}  // namespace streamcast::sim
