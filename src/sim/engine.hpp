// Slot-synchronous simulation engine.
//
// The engine owns time. Each slot it (1) collects the protocol's outgoing
// transmissions, charging them against per-node send capacity, (2) completes
// every transmission whose arrival slot is the current slot, charging receive
// capacity, and (3) reports completions to the protocol and to all attached
// observers (metrics recorders, traces).
//
// Constraint violations — over-capacity sends or receives, self-sends,
// out-of-range keys, duplicate deliveries — throw ProtocolViolation. The
// paper's correctness proofs (appendix) state exactly these properties; the
// engine turns them into machine-checked invariants for every scheme.
#pragma once

#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/net/topology.hpp"
#include "src/sim/protocol.hpp"

namespace streamcast::sim {

class ProtocolViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Observer of completed deliveries; metrics recorders implement this.
class DeliveryObserver {
 public:
  virtual ~DeliveryObserver() = default;
  virtual void on_delivery(const Delivery& d) = 0;
};

struct EngineOptions {
  /// Reject delivering the same packet to the same node twice. All of the
  /// paper's schemes are duplicate-free; churn runs relax this.
  bool forbid_duplicates = true;
};

struct EngineStats {
  std::int64_t transmissions = 0;
  std::int64_t duplicate_deliveries = 0;
};

class Engine {
 public:
  Engine(const net::Topology& topology, Protocol& protocol,
         EngineOptions options = {});

  /// Simulates slots [now, horizon). Callable repeatedly with increasing
  /// horizons.
  void run_until(Slot horizon);

  /// Next slot to simulate.
  Slot now() const { return now_; }

  void add_observer(DeliveryObserver& obs) { observers_.push_back(&obs); }

  const EngineStats& stats() const { return stats_; }

 private:
  void step();

  const net::Topology& topology_;
  Protocol& protocol_;
  EngineOptions options_;
  Slot now_ = 0;
  std::map<Slot, std::vector<Delivery>> in_flight_;
  std::unordered_set<std::uint64_t> seen_;  // (node, packet) delivery keys
  std::vector<DeliveryObserver*> observers_;
  std::vector<Tx> tx_scratch_;
  std::vector<int> send_used_;
  std::vector<int> recv_used_;
  EngineStats stats_;
};

}  // namespace streamcast::sim
