// Erasure oracle the slot engine consults once per queued transmission.
//
// Only the interface lives here: the concrete channel models (Bernoulli,
// Gilbert–Elliott) are in src/loss, which sits *above* the simulation core
// in the module layering (tools/layers.toml). The engine sees erasures
// through this hook, so src/sim never includes src/loss.
#pragma once

#include "src/sim/event.hpp"

namespace streamcast::sim {

class ErasureOracle {
 public:
  virtual ~ErasureOracle() = default;

  /// True iff the transmission queued in slot t is erased in flight. Called
  /// exactly once per transmission, in schedule order — implementations may
  /// advance per-link channel state here.
  virtual bool erased(Slot t, const Tx& tx) = 0;
};

}  // namespace streamcast::sim
