// Transmission records exchanged between protocols and the slot engine.
#pragma once

#include "src/sim/packet.hpp"

namespace streamcast::sim {

/// One packet transmission initiated in a given slot. With link latency L
/// slots, a transmission sent in slot `sent` completes (the packet is
/// "received") in slot `sent + L - 1` and is forwardable by the receiver from
/// slot `sent + L` on. For the intra-cluster latency of 1 this matches the
/// paper's example: S sends packet 0 to node 1 in slot 0, and node 1 forwards
/// it from slot 1.
struct Tx {
  NodeKey from = kNoNode;
  NodeKey to = kNoNode;
  PacketId packet = kNoPacket;
  /// Protocol-defined stream tag (tree index k for the multi-tree scheme,
  /// cube index for the hypercube chain); purely informational.
  std::int32_t tag = 0;
  /// True for NACK-driven repair retransmissions issued by the recovery
  /// layer; the engine counts them separately in EngineStats.
  bool retransmit = false;

  friend bool operator==(const Tx&, const Tx&) = default;
};

/// A completed delivery as observed by the engine.
struct Delivery {
  Slot sent = 0;
  Slot received = 0;
  Tx tx;

  friend bool operator==(const Delivery&, const Delivery&) = default;
};

/// An erased transmission: the link loss model discarded it in flight. The
/// packet left `tx.from` in slot `sent` and would have been received in slot
/// `would_arrive`; `tx.to` never sees it.
struct Drop {
  Slot sent = 0;
  Slot would_arrive = 0;
  Tx tx;

  friend bool operator==(const Drop&, const Drop&) = default;
};

}  // namespace streamcast::sim
