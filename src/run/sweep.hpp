// Deterministic parallel sweep runner (DESIGN.md §8).
//
// Every paper artifact and the audit grid re-run the slot engine over large
// (scheme, N, d, T_c) grids. The tasks are embarrassingly parallel — one
// StreamingSession per grid point, no shared mutable state — so the runner
// executes them on a fixed-size std::jthread pool pulling indices from a
// shared atomic counter (work stealing over the task list) and merges the
// results in submission order. The merged output is byte-identical to a
// serial run at any thread count: each worker writes only its own task's
// result slot, every session owns its engine/PRNG/topology outright, and
// nothing about the output depends on scheduling order.
//
// Thread count: SweepOptions::threads, else the STREAMCAST_THREADS
// environment variable, else std::thread::hardware_concurrency().
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <vector>

#include "src/core/config.hpp"
#include "src/core/report.hpp"
#include "src/core/session.hpp"

namespace streamcast::run {

struct SweepOptions {
  /// Worker threads; 0 resolves via resolve_threads(0).
  int threads = 0;
};

/// Threads a request resolves to: `requested` if positive, else the
/// STREAMCAST_THREADS environment variable if it parses to a positive
/// integer, else std::thread::hardware_concurrency() (minimum 1).
int resolve_threads(int requested);

/// Invokes body(i) for every i in [0, count). With one resolved thread (or
/// count <= 1) the loop runs inline and the first exception propagates
/// immediately; otherwise a fixed pool of std::jthread workers drains a
/// shared atomic index queue, exceptions are captured per index, and after
/// the pool joins the lowest-index exception is rethrown (later indices may
/// already have run). Bodies must confine writes to index-owned state —
/// tools/lint_determinism.py flags default-by-reference captures here.
void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  SweepOptions options = {});

/// Outcome of one sweep task, in submission order.
struct TaskResult {
  core::QosReport qos;
  /// Populated when the task's LossConfig is active (run_lossy path).
  core::LossSummary loss;
  /// Set instead of the reports if the session threw.
  std::exception_ptr error;
};

/// Runs one StreamingSession per config — run_lossy() when the task's loss
/// model is active, run() otherwise — and returns results indexed by task.
std::vector<TaskResult> run_sweep(const std::vector<core::SessionConfig>& tasks,
                                  SweepOptions options = {});

/// Rethrows the first captured error in submission order, if any.
void require_all(const std::vector<TaskResult>& results);

}  // namespace streamcast::run
