#include "src/run/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>

#include "src/loss/model.hpp"

namespace streamcast::run {

int resolve_threads(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("STREAMCAST_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      return static_cast<int>(parsed);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  SweepOptions options) {
  const int threads = resolve_threads(options.threads);
  if (threads <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::exception_ptr> errors(count);
  const auto worker = [&next, &errors, &body, count] {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        body(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  };
  {
    // jthread joins on scope exit, so no task outlives this call.
    std::vector<std::jthread> pool;
    const std::size_t spawn =
        std::min(count, static_cast<std::size_t>(threads));
    pool.reserve(spawn);
    for (std::size_t w = 0; w < spawn; ++w) pool.emplace_back(worker);
  }
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

std::vector<TaskResult> run_sweep(const std::vector<core::SessionConfig>& tasks,
                                  SweepOptions options) {
  std::vector<TaskResult> results(tasks.size());
  parallel_for(
      tasks.size(),
      [&results, &tasks](std::size_t i) {
        TaskResult& r = results[i];
        try {
          core::StreamingSession session(tasks[i]);
          if (tasks[i].loss.model != loss::ErasureKind::kNone) {
            core::LossRunResult lossy = session.run_lossy();
            r.qos = lossy.qos;
            r.loss = lossy.loss;
          } else {
            r.qos = session.run();
          }
        } catch (...) {
          r.error = std::current_exception();
        }
      },
      options);
  return results;
}

void require_all(const std::vector<TaskResult>& results) {
  for (const TaskResult& r : results) {
    if (r.error) std::rethrow_exception(r.error);
  }
}

}  // namespace streamcast::run
