// Resilience/MDC tests: ancestor-failure propagation per tree, the
// single-tree contrast, and the structural guarantees interior-disjointness
// buys (one failure kills at most one description per viewer).
#include <gtest/gtest.h>

#include "src/multitree/greedy.hpp"
#include "src/multitree/resilience.hpp"
#include "src/multitree/structured.hpp"
#include "src/util/prng.hpp"

namespace streamcast::multitree {
namespace {

std::vector<bool> none(NodeKey n) {
  return std::vector<bool>(static_cast<std::size_t>(n) + 1, false);
}

TEST(Resilience, NoFailuresMeansFullQuality) {
  const Forest f = build_greedy(15, 3);
  const auto rx = descriptions_received(f, none(15));
  for (NodeKey x = 1; x <= 15; ++x) EXPECT_EQ(rx[static_cast<std::size_t>(x)], 3);
  const auto s = summarize_resilience(rx, none(15), 3);
  EXPECT_EQ(s.live, 15);
  EXPECT_EQ(s.fully_served, 15);
  EXPECT_DOUBLE_EQ(s.mean_quality, 1.0);
}

TEST(Resilience, SingleFailureKillsAtMostOneDescriptionEach) {
  // Interior-disjointness: a node forwards in exactly one tree, so its
  // failure costs every other viewer at most one description.
  const Forest f = build_greedy(40, 4);
  for (NodeKey victim = 1; victim <= 40; ++victim) {
    auto failed = none(40);
    failed[static_cast<std::size_t>(victim)] = true;
    const auto rx = descriptions_received(f, failed);
    for (NodeKey x = 1; x <= 40; ++x) {
      if (x == victim) {
        EXPECT_EQ(rx[static_cast<std::size_t>(x)], 0);
      } else {
        EXPECT_GE(rx[static_cast<std::size_t>(x)], 3) << "victim " << victim;
      }
    }
  }
}

TEST(Resilience, AllLeafFailureHurtsNobodyElse) {
  const Forest f = build_greedy(15, 3);
  auto failed = none(15);
  failed[14] = true;  // id 14 is in G_d: leaf in every tree
  const auto rx = descriptions_received(f, failed);
  for (NodeKey x = 1; x <= 15; ++x) {
    if (x == 14) continue;
    EXPECT_EQ(rx[static_cast<std::size_t>(x)], 3);
  }
}

TEST(Resilience, FailuresCascadeDownTheTree) {
  // In T_0 (identity layout, d = 3), node 1's children are 4,5,6 and node
  // 4's children are 13,14,15. Killing node 1 cuts T_0's description for
  // its whole subtree.
  const Forest f = build_greedy(15, 3);
  auto failed = none(15);
  failed[1] = true;
  const auto rx = descriptions_received(f, failed);
  for (const NodeKey x : {4, 5, 6, 13, 14, 15}) {
    EXPECT_EQ(rx[static_cast<std::size_t>(x)], 2) << "x=" << x;
  }
  // Nodes outside node 1's subtrees keep all three descriptions.
  EXPECT_EQ(rx[2], 3);
  EXPECT_EQ(rx[3], 3);
}

TEST(Resilience, SingleTreeLosesEverythingBelowAFailure) {
  // Binary tree over 14 nodes: killing node 1 starves its entire subtree.
  auto failed = none(14);
  failed[1] = true;
  const auto rx = single_tree_reception(14, 2, failed);
  for (const NodeKey x : {3, 4, 7, 8, 9, 10}) {
    EXPECT_EQ(rx[static_cast<std::size_t>(x)], 0) << "x=" << x;
  }
  EXPECT_EQ(rx[2], 1);
  EXPECT_EQ(rx[5], 1);
}

TEST(Resilience, MultiTreeStarvesFarFewerThanSingleTree) {
  // Mean quality is roughly conserved between the designs (the total
  // forwarding responsibility is the same); the multi-tree's win is in the
  // outage distribution — complete starvation needs all d ancestor paths
  // cut, so far fewer viewers go dark under identical failures.
  util::Prng rng(13);
  const NodeKey n = 120;
  const int d = 3;
  const Forest f = build_greedy(n, d);
  for (const NodeKey failures : {3, 8, 20}) {
    NodeKey multi_starved = 0;
    NodeKey single_starved = 0;
    double multi_quality = 0;
    double single_quality = 0;
    for (int trial = 0; trial < 10; ++trial) {
      const auto failed = random_failures(n, failures, rng);
      const auto multi = summarize_resilience(
          descriptions_received(f, failed), failed, d);
      const auto single = summarize_resilience(
          single_tree_reception(n, d, failed), failed, 1);
      multi_starved += multi.starved;
      single_starved += single.starved;
      multi_quality += multi.mean_quality;
      single_quality += single.mean_quality;
    }
    EXPECT_LT(multi_starved, single_starved) << "failures=" << failures;
    // Quality within 15% of each other — conserved, not improved.
    EXPECT_NEAR(multi_quality, single_quality,
                0.15 * (multi_quality + single_quality));
  }
}

TEST(Resilience, StructuredForestSameGuarantees) {
  const Forest f = build_structured(40, 3);
  util::Prng rng(77);
  const auto failed = random_failures(40, 5, rng);
  const auto rx = descriptions_received(f, failed);
  const auto s = summarize_resilience(rx, failed, 3);
  EXPECT_EQ(s.live, 35);
  EXPECT_EQ(s.live, s.fully_served + s.degraded + s.starved);
  EXPECT_GT(s.mean_quality, 0.5);
}

TEST(Resilience, RandomFailuresExactCount) {
  util::Prng rng(5);
  const auto failed = random_failures(50, 7, rng);
  int count = 0;
  for (const bool b : failed) count += b;
  EXPECT_EQ(count, 7);
  EXPECT_FALSE(failed[0]);
}

TEST(Resilience, RejectsMismatchedSizes) {
  const Forest f = build_greedy(10, 2);
  EXPECT_THROW(descriptions_received(f, std::vector<bool>(5)),
               std::invalid_argument);
  EXPECT_THROW(single_tree_reception(10, 2, std::vector<bool>(4)),
               std::invalid_argument);
}

}  // namespace
}  // namespace streamcast::multitree
