// Unit tests of the InvariantAuditor: every violation kind is produced from
// synthetic observer events, and an injected over-send on a real engine run
// (with engine enforcement off) is caught with a precise AuditReport.
#include <gtest/gtest.h>

#include "src/audit/auditor.hpp"
#include "src/audit/injector.hpp"
#include "src/baseline/chain.hpp"
#include "src/net/topology.hpp"
#include "src/sim/engine.hpp"

namespace streamcast {
namespace {

using audit::AuditOptions;
using audit::AuditReport;
using audit::InvariantAuditor;
using audit::ViolationKind;
using sim::Delivery;
using sim::Drop;
using sim::NodeKey;
using sim::PacketId;
using sim::Slot;
using sim::Tx;

Delivery make_delivery(NodeKey from, NodeKey to, PacketId p, Slot sent,
                       Slot received) {
  return Delivery{.sent = sent,
                  .received = received,
                  .tx = Tx{.from = from, .to = to, .packet = p}};
}

bool has_kind(const AuditReport& r, ViolationKind kind) {
  for (const auto& v : r.violations) {
    if (v.kind == kind) return true;
  }
  return false;
}

TEST(Auditor, CleanSyntheticStreamPasses) {
  net::UniformCluster topo(3, 1);
  InvariantAuditor auditor(topo, {.window = 2, .require_complete = true});
  // S streams two packets down a 0 -> 1 -> 2 -> 3 chain.
  for (PacketId p = 0; p < 2; ++p) {
    for (NodeKey x = 0; x < 3; ++x) {
      auditor.on_delivery(make_delivery(x, x + 1, p, p + x, p + x));
    }
  }
  const AuditReport& r = auditor.finalize();
  EXPECT_TRUE(r.ok()) << r.to_string();
  EXPECT_EQ(r.deliveries_audited, 6);
}

TEST(Auditor, RecvCapacityViolationDetected) {
  net::UniformCluster topo(3, 2);
  InvariantAuditor auditor(topo);
  auditor.on_delivery(make_delivery(0, 1, 0, 4, 4));
  auditor.on_delivery(make_delivery(2, 1, 1, 4, 4));  // second rx in slot 4
  const AuditReport& r = auditor.finalize();
  ASSERT_TRUE(has_kind(r, ViolationKind::kRecvCapacity)) << r.to_string();
  const auto& v = r.violations.front();
  EXPECT_EQ(v.slot, 4);
  EXPECT_EQ(v.node, 1);
  EXPECT_EQ(v.expected, 1);
  EXPECT_EQ(v.actual, 2);
}

TEST(Auditor, SendCapacityCountsDropsToo) {
  net::UniformCluster topo(3, 2);
  InvariantAuditor auditor(topo);
  // Node 1 (capacity 1) sends one delivered and one erased packet in slot 7:
  // the drop still consumed its upload slot.
  auditor.on_drop(Drop{.sent = 7,
                       .would_arrive = 7,
                       .tx = Tx{.from = 1, .to = 3, .packet = 5}});
  auditor.on_delivery(make_delivery(1, 2, 4, 7, 7));
  const AuditReport& r = auditor.finalize();
  ASSERT_TRUE(has_kind(r, ViolationKind::kSendCapacity)) << r.to_string();
  EXPECT_EQ(r.drops_audited, 1);
  const auto& v = r.violations.front();
  EXPECT_EQ(v.slot, 7);
  EXPECT_EQ(v.node, 1);
  EXPECT_EQ(v.expected, 1);
  EXPECT_EQ(v.actual, 2);
}

TEST(Auditor, SourceCapacityAllowsD) {
  net::UniformCluster topo(8, 3);  // source capacity d = 3
  InvariantAuditor auditor(topo);
  for (NodeKey child = 1; child <= 3; ++child) {
    auditor.on_delivery(make_delivery(0, child, child - 1, 0, 0));
  }
  EXPECT_TRUE(auditor.finalize().ok());
}

TEST(Auditor, LatencyPacingViolationDetected) {
  net::UniformCluster topo(3, 1, /*t_i=*/4);
  InvariantAuditor auditor(topo);
  // Link latency is 4 slots but this packet "arrived" after 2.
  auditor.on_delivery(make_delivery(1, 2, 0, 10, 11));
  const AuditReport& r = auditor.finalize();
  ASSERT_TRUE(has_kind(r, ViolationKind::kLatencyMismatch)) << r.to_string();
  const auto& v = r.violations.front();
  EXPECT_EQ(v.expected, 4);
  EXPECT_EQ(v.actual, 2);
  EXPECT_EQ(v.node, 2);
}

TEST(Auditor, DuplicateDeliveryDetectedAndRelaxable) {
  net::UniformCluster topo(3, 2);
  {
    InvariantAuditor auditor(topo);
    auditor.on_delivery(make_delivery(0, 1, 0, 0, 0));
    auditor.on_delivery(make_delivery(2, 1, 0, 3, 3));
    EXPECT_TRUE(
        has_kind(auditor.finalize(), ViolationKind::kDuplicateDelivery));
  }
  {
    InvariantAuditor auditor(topo, {.check_duplicates = false});
    auditor.on_delivery(make_delivery(0, 1, 0, 0, 0));
    auditor.on_delivery(make_delivery(2, 1, 0, 3, 3));
    EXPECT_TRUE(auditor.finalize().ok());
  }
}

TEST(Auditor, ScheduleCollisionOnOneLinkDetected) {
  net::UniformCluster topo(3, 3);
  InvariantAuditor auditor(topo);
  // Identical (from, to, packet) queued twice in slot 2; one copy erased.
  auditor.on_drop(Drop{.sent = 2,
                       .would_arrive = 2,
                       .tx = Tx{.from = 0, .to = 1, .packet = 9}});
  auditor.on_delivery(make_delivery(0, 1, 9, 2, 2));
  EXPECT_TRUE(
      has_kind(auditor.finalize(), ViolationKind::kScheduleCollision));
}

TEST(Auditor, DelayBoundViolationDetected) {
  net::UniformCluster topo(1, 1);
  InvariantAuditor auditor(
      topo, {.window = 2, .delay_bound = 1, .require_complete = true});
  auditor.on_delivery(make_delivery(0, 1, 0, 0, 0));
  auditor.on_delivery(make_delivery(0, 1, 1, 5, 5));  // a(1) = 4 > 1
  const AuditReport& r = auditor.finalize();
  ASSERT_TRUE(has_kind(r, ViolationKind::kDelayBound)) << r.to_string();
  EXPECT_EQ(r.violations.front().expected, 1);
  EXPECT_EQ(r.violations.front().actual, 4);
}

TEST(Auditor, BufferBoundViolationDetected) {
  net::UniformCluster topo(1, 4);
  // Packets arrive in reverse order, one per slot: by the time packet 0
  // lands (a = 3), all four sit in the buffer at once.
  InvariantAuditor auditor(
      topo, {.window = 4, .buffer_bound = 2, .require_complete = true});
  for (PacketId p = 0; p < 4; ++p) {
    auditor.on_delivery(make_delivery(0, 1, 3 - p, p, p));
  }
  const AuditReport& r = auditor.finalize();
  ASSERT_TRUE(has_kind(r, ViolationKind::kBufferBound)) << r.to_string();
  EXPECT_EQ(r.violations.front().actual, 4);
  EXPECT_EQ(r.violations.front().expected, 2);
}

TEST(Auditor, GapBacklogSlackCoversRecoveryPileup) {
  net::UniformCluster topo(1, 4);
  // Same reversed arrivals, but as a lossy run: the backlog of 4 is covered
  // by the a = 3 playback delay the open gap inflicted (allowed 2 + 3).
  InvariantAuditor auditor(topo, {.window = 4,
                                  .buffer_bound = 2,
                                  .gap_backlog_slack = true,
                                  .require_complete = true});
  for (PacketId p = 0; p < 4; ++p) {
    auditor.on_delivery(make_delivery(0, 1, 3 - p, p, p));
  }
  EXPECT_TRUE(auditor.finalize().ok());
}

TEST(Auditor, IncompleteWindowReportedOnlyWhenRequired) {
  net::UniformCluster topo(2, 1);
  {
    InvariantAuditor auditor(topo, {.window = 2, .require_complete = true});
    auditor.on_delivery(make_delivery(0, 1, 0, 0, 0));
    const AuditReport& r = auditor.finalize();
    // Node 1 got 1 of 2 packets; node 2 got none.
    EXPECT_EQ(r.violations.size(), 2u);
    EXPECT_TRUE(has_kind(r, ViolationKind::kIncompleteWindow));
  }
  {
    InvariantAuditor auditor(topo, {.window = 2, .require_complete = false});
    auditor.on_delivery(make_delivery(0, 1, 0, 0, 0));
    EXPECT_TRUE(auditor.finalize().ok());
  }
}

TEST(Auditor, ViolationCapSuppressesButCounts) {
  net::UniformCluster topo(3, 2);
  AuditOptions opts;
  opts.max_violations = 2;
  InvariantAuditor auditor(topo, opts);
  for (int i = 0; i < 5; ++i) {  // five duplicate deliveries
    auditor.on_delivery(make_delivery(0, 1, 0, i, i));
  }
  const AuditReport& r = auditor.finalize();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.violations.size(), 2u);
  EXPECT_EQ(r.suppressed, 2);  // 4 duplicates total, 2 stored
}

TEST(Auditor, ReportTextNamesKindSlotAndNode) {
  net::UniformCluster topo(3, 2);
  InvariantAuditor auditor(topo);
  auditor.on_delivery(make_delivery(0, 1, 0, 4, 4));
  auditor.on_delivery(make_delivery(2, 1, 1, 4, 4));
  const std::string text = auditor.finalize().to_string();
  EXPECT_NE(text.find("recv-capacity"), std::string::npos);
  EXPECT_NE(text.find("slot 4"), std::string::npos);
  EXPECT_NE(text.find("node 1"), std::string::npos);
  EXPECT_THROW(auditor.require_clean(), sim::ProtocolViolation);
}

// --- end-to-end: injected fault, engine enforcement off ---------------------

TEST(Auditor, InjectedOverSendCaughtOnRealEngine) {
  const NodeKey n = 5;
  net::UniformCluster topo(n, 1);
  baseline::ChainProtocol chain(n);
  audit::OverSendInjector inject(chain, /*at=*/2);
  InvariantAuditor auditor(topo, {.window = 4});
  sim::Engine engine(topo, inject, {.enforce = false});
  engine.add_observer(auditor);
  engine.run_until(12);
  ASSERT_TRUE(inject.fired());
  const AuditReport& r = auditor.finalize();
  ASSERT_FALSE(r.ok());
  ASSERT_TRUE(has_kind(r, ViolationKind::kSendCapacity)) << r.to_string();
  for (const auto& v : r.violations) {
    if (v.kind != ViolationKind::kSendCapacity) continue;
    EXPECT_EQ(v.slot, 2);
    EXPECT_EQ(v.node, 0);  // slot 2: the source's send to node 1 is first
    EXPECT_EQ(v.expected, 1);
    EXPECT_EQ(v.actual, 2);
    break;
  }
  // The byte-identical duplicate also collides on the link and arrives as a
  // duplicate delivery.
  EXPECT_TRUE(has_kind(r, ViolationKind::kScheduleCollision));
  EXPECT_TRUE(has_kind(r, ViolationKind::kDuplicateDelivery));
}

TEST(Auditor, SameRunWithoutInjectionIsClean) {
  const NodeKey n = 5;
  net::UniformCluster topo(n, 1);
  baseline::ChainProtocol chain(n);
  InvariantAuditor auditor(
      topo, {.window = 4,
             .delay_bound = baseline::chain_worst_delay(n),
             .buffer_bound = 1,
             .require_complete = true});
  sim::Engine engine(topo, chain);
  engine.add_observer(auditor);
  engine.run_until(16);
  const AuditReport& r = auditor.finalize();
  EXPECT_TRUE(r.ok()) << r.to_string();
  EXPECT_GT(r.deliveries_audited, 0);
}

}  // namespace
}  // namespace streamcast
