// Fluid-bound tests: the closed forms, their consistency with every scheme
// we simulate (no scheme beats a lower bound), and the optimality of
// Proposition 1 against the snowball limit.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/session.hpp"
#include "src/fluid/bounds.hpp"
#include "src/hypercube/analysis.hpp"
#include "src/multitree/analysis.hpp"

namespace streamcast::fluid {
namespace {

TEST(FluidRate, CapacityFormula) {
  // Rate-matched peers (u_p = 1) sustain rate ~1 regardless of N.
  EXPECT_DOUBLE_EQ(max_streaming_rate(100, 3.0, 1.0), 1.03);
  // Starved peers cap the rate below 1.
  EXPECT_LT(max_streaming_rate(100, 2.0, 0.5), 1.0);
  // Small swarms are source-limited.
  EXPECT_DOUBLE_EQ(max_streaming_rate(1, 0.5, 10.0), 0.5);
}

TEST(FluidDelay, SnowballClosedForm) {
  // d = 1: holders 1, 3, 7, 15, ... -> smallest t with 2^t - 1 >= N.
  EXPECT_EQ(min_worst_delay(1, 1), 1);
  EXPECT_EQ(min_worst_delay(3, 1), 2);
  EXPECT_EQ(min_worst_delay(7, 1), 3);
  EXPECT_EQ(min_worst_delay(8, 1), 4);
  EXPECT_EQ(min_worst_delay(1023, 1), 10);
  // d = 3: holders 3, 9, 21, 45, ...
  EXPECT_EQ(min_worst_delay(3, 3), 1);
  EXPECT_EQ(min_worst_delay(9, 3), 2);
  EXPECT_EQ(min_worst_delay(10, 3), 3);
}

TEST(FluidDelay, PropositionOneIsOptimal) {
  // The special-N hypercube scheme achieves the unicast-source fluid
  // minimum exactly: k+1 elapsed slots (start index k) at N = 2^k - 1.
  for (int k = 2; k <= 12; ++k) {
    const NodeKey n = (NodeKey{1} << k) - 1;
    EXPECT_EQ(hypercube::measured_worst_delay(n) + 1,
              min_worst_delay_unicast_source(n))
        << "k=" << k;
    // And never below the dedicated-source universal bound.
    EXPECT_GE(hypercube::measured_worst_delay(n) + 1, min_worst_delay(n, 1));
  }
}

TEST(FluidDelay, UnicastSourceVariant) {
  EXPECT_EQ(min_worst_delay_unicast_source(1), 1);
  EXPECT_EQ(min_worst_delay_unicast_source(2), 2);
  EXPECT_EQ(min_worst_delay_unicast_source(3), 3);
  EXPECT_EQ(min_worst_delay_unicast_source(4), 3);
  EXPECT_EQ(min_worst_delay_unicast_source(1023), 11);
  // Always at least the dedicated-source bound at d = 1.
  for (const NodeKey n : {2, 9, 100, 5000}) {
    EXPECT_GE(min_worst_delay_unicast_source(n), min_worst_delay(n, 1));
  }
}

TEST(FluidDelay, NoSchemeBeatsTheLowerBound) {
  for (const NodeKey n : {10, 50, 200, 500}) {
    for (const int d : {2, 3}) {
      const auto mt =
          core::StreamingSession(
              core::SessionConfig{.scheme = core::Scheme::kMultiTreeGreedy,
                                  .n = n,
                                  .d = d})
              .run();
      // The measured start index corresponds to an elapsed delay of +1.
      EXPECT_GE(mt.worst_delay + 1, min_worst_delay(n, d))
          << "n=" << n << " d=" << d;
      EXPECT_GE(mt.average_delay + 1.0, min_average_delay(n, d));
    }
    const auto hc = core::StreamingSession(
                        core::SessionConfig{
                            .scheme = core::Scheme::kHypercube, .n = n, .d = 1})
                        .run();
    EXPECT_GE(hc.worst_delay + 1, min_worst_delay(n, 1));
    EXPECT_GE(hc.average_delay + 1.0, min_average_delay(n, 1));
  }
}

TEST(FluidDelay, AverageBelowWorst) {
  for (const NodeKey n : {5, 100, 4096}) {
    for (const int d : {1, 2, 4}) {
      EXPECT_LE(min_average_delay(n, d),
                static_cast<double>(min_worst_delay(n, d)));
      EXPECT_GE(min_average_delay(n, d), 1.0);
    }
  }
}

TEST(FluidDelay, MultiTreeGapIsTheDOverLogDFactor) {
  // The multi-tree bound h*d exceeds the fluid minimum by roughly
  // d / log2(d) for large N — the price of O(d) neighbors and in-order
  // round-robin forwarding.
  const NodeKey n = 100'000;
  for (const int d : {2, 4, 8}) {
    const double ratio =
        static_cast<double>(multitree::worst_delay_bound(n, d)) /
        static_cast<double>(min_worst_delay(n, d));
    const double predicted = d / std::log2(static_cast<double>(d));
    EXPECT_NEAR(ratio, predicted, 0.45 * predicted) << "d=" << d;
  }
}

TEST(FluidMisc, SubstreamMinimumAndErrors) {
  EXPECT_EQ(min_substreams_for_unit_uplink(3), 3);
  EXPECT_THROW(min_worst_delay(0, 1), std::invalid_argument);
  EXPECT_THROW(min_worst_delay(5, 0), std::invalid_argument);
  EXPECT_THROW(min_average_delay(0, 2), std::invalid_argument);
  EXPECT_THROW(max_streaming_rate(0, 1, 1), std::invalid_argument);
}

}  // namespace
}  // namespace streamcast::fluid
