#include <gtest/gtest.h>

#include "src/multitree/greedy.hpp"
#include "src/multitree/serialize.hpp"
#include "src/multitree/structured.hpp"
#include "src/multitree/validate.hpp"

namespace streamcast::multitree {
namespace {

TEST(Serialize, RoundTripIdentity) {
  for (const int d : {1, 2, 3, 5}) {
    for (const NodeKey n : {1, 7, 15, 16, 40}) {
      const Forest original = build_greedy(n, d);
      const Forest restored =
          forest_from_string(forest_to_string(original));
      EXPECT_EQ(restored.n(), original.n());
      EXPECT_EQ(restored.d(), original.d());
      for (int k = 0; k < d; ++k) {
        EXPECT_EQ(restored.tree(k), original.tree(k))
            << "n=" << n << " d=" << d << " k=" << k;
      }
      EXPECT_TRUE(validate_forest(restored).ok);
    }
  }
}

TEST(Serialize, StructuredRoundTripToo) {
  const Forest original = build_structured(27, 3);
  const Forest restored = forest_from_string(forest_to_string(original));
  for (int k = 0; k < 3; ++k) {
    EXPECT_EQ(restored.tree(k), original.tree(k));
  }
}

TEST(Serialize, OutputIsDeterministic) {
  const Forest f = build_greedy(15, 3);
  EXPECT_EQ(forest_to_string(f), forest_to_string(f));
  EXPECT_NE(forest_to_string(f).find("streamcast-forest v1\nn 15 d 3\n"),
            std::string::npos);
}

TEST(Serialize, RejectsBadHeader) {
  EXPECT_THROW(forest_from_string("nonsense\n"), std::runtime_error);
  EXPECT_THROW(forest_from_string("streamcast-forest v1\nq 5 d 2\n"),
               std::runtime_error);
  EXPECT_THROW(forest_from_string("streamcast-forest v1\nn 0 d 2\n"),
               std::runtime_error);
}

TEST(Serialize, RejectsTruncatedAndCorruptTrees) {
  const Forest f = build_greedy(6, 2);
  std::string text = forest_to_string(f);
  // Truncate the last tree.
  EXPECT_THROW(forest_from_string(text.substr(0, text.size() - 4)),
               std::runtime_error);
  // Duplicate a node id (breaks the permutation).
  std::string corrupt = text;
  const auto pos = corrupt.rfind(" 5");
  ASSERT_NE(pos, std::string::npos);
  corrupt.replace(pos, 2, " 1");
  EXPECT_THROW(forest_from_string(corrupt), std::runtime_error);
}

}  // namespace
}  // namespace streamcast::multitree
