// Loss model tests: seeded determinism, empirical rates against the closed
// forms, factory behavior, parameter validation.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "src/loss/model.hpp"

namespace streamcast::loss {
namespace {

Tx tx(sim::NodeKey from, sim::NodeKey to, sim::PacketId p) {
  return Tx{.from = from, .to = to, .packet = p, .tag = 0};
}

TEST(BernoulliLoss, FixedSeedIsDeterministic) {
  BernoulliLoss a(0.3, 42);
  BernoulliLoss b(0.3, 42);
  for (int i = 0; i < 10000; ++i) {
    const Tx t = tx(i % 7, (i % 7) + 1, i);
    EXPECT_EQ(a.erased(i, t), b.erased(i, t)) << "trial " << i;
  }
}

TEST(BernoulliLoss, DifferentSeedsDiffer) {
  BernoulliLoss a(0.5, 1);
  BernoulliLoss b(0.5, 2);
  int differ = 0;
  for (int i = 0; i < 1000; ++i) {
    const Tx t = tx(0, 1, i);
    if (a.erased(i, t) != b.erased(i, t)) ++differ;
  }
  EXPECT_GT(differ, 0);
}

TEST(BernoulliLoss, EmpiricalRateMatchesParameter) {
  const double p = 0.1;
  BernoulliLoss model(p, 7);
  const int trials = 1'000'000;
  int drops = 0;
  for (int i = 0; i < trials; ++i) {
    if (model.erased(i, tx(0, 1, i))) ++drops;
  }
  const double empirical = static_cast<double>(drops) / trials;
  // sigma = sqrt(p (1-p) / n) ~= 3e-4; 0.002 is > 6 sigma.
  EXPECT_NEAR(empirical, p, 0.002);
}

TEST(BernoulliLoss, ZeroRateNeverErases) {
  BernoulliLoss model(0.0, 9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_FALSE(model.erased(i, tx(0, 1, i)));
  }
}

TEST(BernoulliLoss, UnitRateAlwaysErases) {
  BernoulliLoss model(1.0, 9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_TRUE(model.erased(i, tx(0, 1, i)));
  }
}

TEST(BernoulliLoss, InvalidRateThrows) {
  EXPECT_THROW(BernoulliLoss(-0.1, 0), std::invalid_argument);
  EXPECT_THROW(BernoulliLoss(1.1, 0), std::invalid_argument);
}

TEST(GilbertElliottLoss, StationaryRateClosedForm) {
  GilbertElliottLoss::Params params{
      .p_enter = 0.05, .p_recover = 0.5, .loss_good = 0.0, .loss_bad = 1.0};
  GilbertElliottLoss model(params, 0);
  const double pi_bad = 0.05 / (0.05 + 0.5);
  EXPECT_DOUBLE_EQ(model.stationary_loss_rate(), pi_bad);
  EXPECT_DOUBLE_EQ(model.mean_burst_length(), 2.0);
}

TEST(GilbertElliottLoss, EmpiricalRateMatchesStationary) {
  GilbertElliottLoss::Params params{
      .p_enter = 0.05, .p_recover = 0.5, .loss_good = 0.0, .loss_bad = 1.0};
  GilbertElliottLoss model(params, 123);
  const int trials = 1'000'000;
  int drops = 0;
  for (int i = 0; i < trials; ++i) {
    if (model.erased(i, tx(0, 1, i))) ++drops;  // one link: one Markov chain
  }
  const double empirical = static_cast<double>(drops) / trials;
  // The chain is positively correlated, so the variance is larger than the
  // i.i.d. case; 0.01 is still a comfortable margin at 10^6 trials.
  EXPECT_NEAR(empirical, model.stationary_loss_rate(), 0.01);
}

TEST(GilbertElliottLoss, ErasuresComeInBursts) {
  // With loss_bad = 1 and loss_good = 0, erasures are exactly the bad-state
  // sojourns: mean run length must be near 1 / p_recover.
  GilbertElliottLoss::Params params{
      .p_enter = 0.02, .p_recover = 0.25, .loss_good = 0.0, .loss_bad = 1.0};
  GilbertElliottLoss model(params, 77);
  int bursts = 0;
  int burst_drops = 0;
  bool in_burst = false;
  for (int i = 0; i < 1'000'000; ++i) {
    const bool erased = model.erased(i, tx(0, 1, i));
    if (erased) {
      ++burst_drops;
      if (!in_burst) ++bursts;
    }
    in_burst = erased;
  }
  ASSERT_GT(bursts, 0);
  const double mean_burst = static_cast<double>(burst_drops) / bursts;
  EXPECT_NEAR(mean_burst, model.mean_burst_length(), 0.25);
}

TEST(GilbertElliottLoss, PerLinkChainsAreIndependentAndDeterministic) {
  GilbertElliottLoss::Params params{
      .p_enter = 0.1, .p_recover = 0.3, .loss_good = 0.0, .loss_bad = 1.0};
  GilbertElliottLoss a(params, 5);
  GilbertElliottLoss b(params, 5);
  // Interleaving link (0,1) with traffic on link (2,3) must not change what
  // link (0,1) sees, and identical seeds reproduce exactly.
  std::vector<bool> with_interleave;
  for (int i = 0; i < 2000; ++i) {
    with_interleave.push_back(a.erased(i, tx(0, 1, i)));
    a.erased(i, tx(2, 3, i));
  }
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(b.erased(i, tx(0, 1, i)),
              with_interleave[static_cast<std::size_t>(i)])
        << "trial " << i;
  }
}

TEST(GilbertElliottLoss, InvalidParamsThrow) {
  GilbertElliottLoss::Params p;
  p.p_recover = 0.0;  // bad state would be absorbing
  EXPECT_THROW(GilbertElliottLoss(p, 0), std::invalid_argument);
  p = {};
  p.p_enter = -0.5;
  EXPECT_THROW(GilbertElliottLoss(p, 0), std::invalid_argument);
  p = {};
  p.loss_bad = 2.0;
  EXPECT_THROW(GilbertElliottLoss(p, 0), std::invalid_argument);
}

TEST(MakeModel, FactoryDispatch) {
  EXPECT_EQ(make_model(ErasureKind::kNone, 0.5, {}, 0), nullptr);
  auto bern = make_model(ErasureKind::kBernoulli, 0.25, {}, 1);
  ASSERT_NE(bern, nullptr);
  EXPECT_NE(dynamic_cast<BernoulliLoss*>(bern.get()), nullptr);
  auto ge = make_model(ErasureKind::kGilbertElliott, 0.0,
                       {.p_enter = 0.1, .p_recover = 0.4}, 1);
  ASSERT_NE(ge, nullptr);
  EXPECT_NE(dynamic_cast<GilbertElliottLoss*>(ge.get()), nullptr);
}

}  // namespace
}  // namespace streamcast::loss
