// Graph/NP-completeness tests: the CDS characterization, the exact two
// interior-disjoint tree solver, the E4 Set Splitting brute force, and the
// paper's reduction (equivalence checked on random instances).
#include <gtest/gtest.h>

#include "src/graph/graph.hpp"
#include "src/graph/idt_solver.hpp"
#include "src/graph/reduction.hpp"
#include "src/graph/set_splitting.hpp"
#include "src/util/prng.hpp"

namespace streamcast::graph {
namespace {

Graph path(Vertex n) {
  Graph g(n);
  for (Vertex v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

Graph complete(Vertex n) {
  Graph g(n);
  for (Vertex a = 0; a < n; ++a) {
    for (Vertex b = a + 1; b < n; ++b) g.add_edge(a, b);
  }
  return g;
}

Graph star(Vertex n) {
  Graph g(n);
  for (Vertex v = 1; v < n; ++v) g.add_edge(0, v);
  return g;
}

Graph cycle(Vertex n) {
  Graph g = path(n);
  g.add_edge(n - 1, 0);
  return g;
}

TEST(GraphBasics, EdgesAndNeighbors) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 1);  // dedup
  g.add_edge(1, 2);
  EXPECT_EQ(g.edges(), 2u);
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.neighbors(1).size(), 2u);
}

TEST(ConnectedDominating, PathCases) {
  const Graph g = path(5);  // 0-1-2-3-4
  // {1,2,3} ∪ {0}: connected (0-1-2-3) and dominates 4 via 3.
  EXPECT_TRUE(is_connected_dominating(g, 0, 0b01110));
  // {1,3}: 3 is disconnected from the root component {0,1}.
  EXPECT_FALSE(is_connected_dominating(g, 0, 0b01010));
  // {1,2}: vertex 4 undominated.
  EXPECT_FALSE(is_connected_dominating(g, 0, 0b00110));
  // Empty set: root alone dominates only 1.
  EXPECT_FALSE(is_connected_dominating(g, 0, 0));
}

TEST(ConnectedDominating, CompleteGraphEmptySetSuffices) {
  EXPECT_TRUE(is_connected_dominating(complete(6), 0, 0));
}

TEST(TreeFromInterior, BuildsValidSpanningTree) {
  const Graph g = path(5);
  const auto parent = tree_from_interior(g, 0, 0b01110);
  EXPECT_TRUE(is_spanning_tree(g, 0, parent));
  // Interior = nodes with children ⊆ {0,1,2,3}.
  EXPECT_EQ(interior_mask(parent, 0) & ~0b01110ull, 0u);
}

TEST(IsSpanningTree, RejectsForests) {
  const Graph g = path(4);
  std::vector<Vertex> bad{-1, 0, 3, 2};  // 2 and 3 point at each other
  EXPECT_FALSE(is_spanning_tree(g, 0, bad));
}

TEST(IdtSolver, CompleteGraphHasTwoTrees) {
  const auto witness = two_interior_disjoint_trees(complete(6), 0);
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(is_interior_disjoint_pair(complete(6), 0, witness->tree_a,
                                        witness->tree_b));
}

TEST(IdtSolver, PathHasNone) {
  // Any spanning tree of a path is the path itself: interiors necessarily
  // overlap.
  EXPECT_FALSE(two_interior_disjoint_trees(path(5), 0).has_value());
}

TEST(IdtSolver, StarHasTwoTrivially) {
  // Both trees are the star itself: only the root is interior.
  const Graph g = star(6);
  const auto witness = two_interior_disjoint_trees(g, 0);
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(interior_mask(witness->tree_a, 0), 0u);
  EXPECT_EQ(interior_mask(witness->tree_b, 0), 0u);
}

TEST(IdtSolver, CycleNeedsBothDirections) {
  // On a cycle, the two trees are the two arcs from the root; for n >= 5
  // their interiors overlap — no solution. n = 4: arcs {1}, {3} work
  // (2 is dominated by both 1 and 3).
  EXPECT_TRUE(two_interior_disjoint_trees(cycle(4), 0).has_value());
  EXPECT_FALSE(two_interior_disjoint_trees(cycle(6), 0).has_value());
}

TEST(SetSplitting, ValidAndInvalidWitness) {
  SetSplittingInstance inst{.elements = 5, .sets = {{0, 1, 2, 3}}};
  EXPECT_TRUE(is_valid_splitting(inst, 0b00001));   // {0} vs {1,2,3,4}
  EXPECT_FALSE(is_valid_splitting(inst, 0b01111));  // R_0 fully in V1
}

TEST(SetSplitting, SolvableInstance) {
  SetSplittingInstance inst{.elements = 4, .sets = {{0, 1, 2, 3}}};
  const auto v1 = solve_set_splitting(inst);
  ASSERT_TRUE(v1.has_value());
  EXPECT_TRUE(is_valid_splitting(inst, *v1));
}

TEST(SetSplitting, UnsplittableViaPigeonhole) {
  // All C(4,4)=1 subsets over exactly 4 elements with every 4-subset...
  // take 5 elements and all five 4-element subsets: any split with a side
  // of size <= 1 leaves the complementary 4-set unsplit; size-2 sides work?
  // {a,b} vs 3: the 4-set avoiding a... every 4-set contains at least one
  // of any 2 elements (complement has size 1). So it IS splittable; build a
  // genuinely unsplittable instance instead: duplicate elements are not
  // allowed, so force monochromatic pressure by chaining 4-sets over 4
  // elements only — a single set {0,1,2,3} is splittable; instead verify
  // the solver's "no witness" path with an instance made unsplittable by
  // exhausting both polarities of a pair via shared triples.
  SetSplittingInstance inst{.elements = 6,
                            .sets = {
                                {0, 1, 2, 3},
                                {0, 1, 2, 4},
                                {0, 1, 2, 5},
                                {0, 3, 4, 5},
                                {1, 3, 4, 5},
                                {2, 3, 4, 5},
                                {0, 1, 4, 5},
                                {0, 2, 4, 5},
                                {1, 2, 3, 4},
                                {1, 2, 3, 5},
                                {0, 1, 3, 4},
                                {0, 2, 3, 5},
                            }};
  const auto v1 = solve_set_splitting(inst);
  if (v1) {
    EXPECT_TRUE(is_valid_splitting(inst, *v1));
  }
  // Either way, the solver's answer must agree with exhaustive checking.
  bool any = false;
  for (std::uint64_t mask = 0; mask < (1u << 6); ++mask) {
    if (is_valid_splitting(inst, mask)) any = true;
  }
  EXPECT_EQ(v1.has_value(), any);
}

TEST(Reduction, BuildsBipartiteShape) {
  SetSplittingInstance inst{.elements = 5, .sets = {{0, 1, 2, 3},
                                                    {1, 2, 3, 4}}};
  const ReducedInstance red = reduce_to_idt(inst);
  EXPECT_EQ(red.graph.size(), 1 + 5 + 2);
  // Root adjacent to all elements, not to set vertices.
  for (int e = 0; e < 5; ++e) {
    EXPECT_TRUE(red.graph.has_edge(red.root, red.element_vertex(e)));
  }
  EXPECT_FALSE(red.graph.has_edge(red.root, red.set_vertex(0)));
  // x_0 adjacent to exactly its four elements.
  EXPECT_EQ(red.graph.neighbors(red.set_vertex(0)).size(), 4u);
  EXPECT_TRUE(red.graph.has_edge(red.set_vertex(1), red.element_vertex(4)));
}

TEST(Reduction, SplittingWitnessYieldsDisjointTrees) {
  SetSplittingInstance inst{.elements = 6, .sets = {{0, 1, 2, 3},
                                                    {2, 3, 4, 5},
                                                    {0, 2, 4, 5}}};
  const auto v1 = solve_set_splitting(inst);
  ASSERT_TRUE(v1.has_value());
  const ReducedInstance red = reduce_to_idt(inst);
  const std::uint64_t a = interior_mask_from_splitting(red, *v1);
  const std::uint64_t full =
      ((std::uint64_t{1} << (red.elements + 1)) - 2);  // all element bits
  const std::uint64_t b = full & ~a;
  EXPECT_TRUE(is_connected_dominating(red.graph, red.root, a));
  EXPECT_TRUE(is_connected_dominating(red.graph, red.root, b));
  const auto ta = tree_from_interior(red.graph, red.root, a);
  const auto tb = tree_from_interior(red.graph, red.root, b);
  EXPECT_TRUE(is_interior_disjoint_pair(red.graph, red.root, ta, tb));
}

TEST(Reduction, EquivalenceOnRandomInstances) {
  // The heart of the NP-completeness experiment: splittable iff the reduced
  // graph has two interior-disjoint trees. Three independent computations
  // must agree: the set-splitting brute force, the generic IDT solver
  // (2^(V-1) over the reduced graph), and the structure-aware decision.
  // Note every E4 instance on <= 7 elements is splittable (a 4-set cannot
  // fit inside a <= 3-element side), so random small instances exercise the
  // positive direction; the negative direction is the complete C(7,4)
  // instance below.
  util::Prng rng(424242);
  for (int trial = 0; trial < 40; ++trial) {
    const int elements = 4 + static_cast<int>(rng.below(3));  // 4..6
    const int sets = 2 + static_cast<int>(rng.below(7));      // 2..8
    const auto inst = random_instance(elements, sets, rng);
    const bool split = solve_set_splitting(inst).has_value();
    const ReducedInstance red = reduce_to_idt(inst);
    const bool idt =
        two_interior_disjoint_trees(red.graph, red.root).has_value();
    EXPECT_EQ(split, idt) << "trial " << trial;
    EXPECT_EQ(split, reduced_has_two_idt(red)) << "trial " << trial;
    EXPECT_TRUE(split);  // <= 7 elements: always splittable
  }
}

TEST(Reduction, UnsplittableCompleteSevenInstance) {
  // All C(7,4) = 35 four-element subsets of 7 elements: every 2-coloring
  // has a side of size >= 4, whose 4-subsets are all in the instance —
  // unsplittable. The reduced graph (43 vertices) must have no two
  // interior-disjoint trees; decided with the structure-aware solver.
  SetSplittingInstance inst;
  inst.elements = 7;
  for (int a = 0; a < 7; ++a) {
    for (int b = a + 1; b < 7; ++b) {
      for (int c = b + 1; c < 7; ++c) {
        for (int e = c + 1; e < 7; ++e) {
          inst.sets.push_back({a, b, c, e});
        }
      }
    }
  }
  ASSERT_EQ(inst.sets.size(), 35u);
  EXPECT_FALSE(solve_set_splitting(inst).has_value());
  const ReducedInstance red = reduce_to_idt(inst);
  EXPECT_EQ(red.graph.size(), 43);
  EXPECT_FALSE(reduced_has_two_idt(red));
}

TEST(Solver, SizeLimits) {
  EXPECT_THROW(two_interior_disjoint_trees(complete(25), 0),
               std::invalid_argument);
  SetSplittingInstance inst{.elements = 30, .sets = {}};
  EXPECT_THROW(solve_set_splitting(inst), std::invalid_argument);
  EXPECT_THROW(Graph(0), std::invalid_argument);
  EXPECT_THROW(Graph(64), std::invalid_argument);
}

}  // namespace
}  // namespace streamcast::graph
