// Hypercube scheme tests: pairing arithmetic, the Figure 5 doubling
// invariant, Propositions 1-2, Theorem 4, and full-engine simulations over a
// sweep of N (special and arbitrary) and the d-group variant.
#include <gtest/gtest.h>

#include <cmath>

#include "src/hypercube/analysis.hpp"
#include "src/hypercube/arbitrary.hpp"
#include "src/hypercube/cube.hpp"
#include "src/hypercube/grouped.hpp"
#include "src/hypercube/protocol.hpp"
#include "src/hypercube/special.hpp"
#include "src/metrics/buffers.hpp"
#include "src/metrics/delay.hpp"
#include "src/metrics/neighbors.hpp"
#include "src/net/topology.hpp"
#include "src/sim/engine.hpp"

namespace streamcast::hypercube {
namespace {

using metrics::DelayRecorder;

TEST(CubeArithmetic, PartnersAndDimensions) {
  EXPECT_EQ(dimension_of(0, 3), 0);
  EXPECT_EQ(dimension_of(4, 3), 1);
  EXPECT_EQ(dimension_of(5, 3), 2);
  EXPECT_EQ(partner(0b000, 0), 0b001u);
  EXPECT_EQ(partner(0b101, 1), 0b111u);
  EXPECT_EQ(partner(0b101, 2), 0b001u);
}

TEST(CubeArithmetic, PaperFigure7Pairing) {
  // k = 3: along dimension 0 we pair ids {0,2,4,6} with {1,3,5,7}.
  const auto dim0 = pairs_along(3, 0);
  EXPECT_EQ(dim0, (std::vector<std::pair<Vertex, Vertex>>{
                      {0, 1}, {2, 3}, {4, 5}, {6, 7}}));
  const auto dim1 = pairs_along(3, 1);
  EXPECT_EQ(dim1, (std::vector<std::pair<Vertex, Vertex>>{
                      {0, 2}, {1, 3}, {4, 6}, {5, 7}}));
  const auto dim2 = pairs_along(3, 2);
  EXPECT_EQ(dim2, (std::vector<std::pair<Vertex, Vertex>>{
                      {0, 4}, {1, 5}, {2, 6}, {3, 7}}));
}

TEST(CubeArithmetic, SpecialNDetection) {
  EXPECT_TRUE(is_special_n(1));
  EXPECT_TRUE(is_special_n(3));
  EXPECT_TRUE(is_special_n(7));
  EXPECT_TRUE(is_special_n(1023));
  EXPECT_FALSE(is_special_n(2));
  EXPECT_FALSE(is_special_n(8));
  EXPECT_FALSE(is_special_n(6));
}

TEST(Decomposition, SpecialNIsOneSegment) {
  const auto chain = decompose_chain(7);
  ASSERT_EQ(chain.size(), 1u);
  EXPECT_EQ(chain[0].k, 3);
  EXPECT_EQ(chain[0].start, 0);
  EXPECT_EQ(chain[0].first, 1);
}

TEST(Decomposition, GreedyHalving) {
  // N = 20: 15 (k=4) + 3 (k=2) + 1 (k=1) + 1 (k=1).
  const auto chain = decompose_chain(20);
  ASSERT_EQ(chain.size(), 4u);
  EXPECT_EQ(chain[0].k, 4);
  EXPECT_EQ(chain[1].k, 2);
  EXPECT_EQ(chain[2].k, 1);
  EXPECT_EQ(chain[3].k, 1);
  // Starts accumulate the upstream dimensions.
  EXPECT_EQ(chain[0].start, 0);
  EXPECT_EQ(chain[1].start, 4);
  EXPECT_EQ(chain[2].start, 6);
  EXPECT_EQ(chain[3].start, 7);
  // Keys are consecutive.
  EXPECT_EQ(chain[0].first, 1);
  EXPECT_EQ(chain[1].first, 16);
  EXPECT_EQ(chain[2].first, 19);
  EXPECT_EQ(chain[3].first, 20);
}

TEST(Decomposition, CoversAllNodesExactlyOnce) {
  for (NodeKey n = 1; n <= 600; ++n) {
    const auto chain = decompose_chain(n);
    NodeKey covered = 0;
    NodeKey expect_first = 1;
    for (const auto& seg : chain) {
      EXPECT_EQ(seg.first, expect_first);
      covered += seg.receivers();
      expect_first += seg.receivers();
    }
    EXPECT_EQ(covered, n) << "n=" << n;
  }
}

TEST(Decomposition, GroupedEvenSplit) {
  const auto groups = decompose_grouped(10, 3);
  ASSERT_EQ(groups.size(), 3u);
  NodeKey total = 0;
  for (const auto& g : groups) {
    NodeKey size = 0;
    for (const auto& seg : g.chain) size += seg.receivers();
    EXPECT_GE(size, 3);
    EXPECT_LE(size, 4);
    total += size;
  }
  EXPECT_EQ(total, 10);
}

TEST(Decomposition, GroupedMoreGroupsThanNodes) {
  const auto groups = decompose_grouped(2, 5);
  EXPECT_EQ(groups.size(), 2u);
}

TEST(ExpectedHolders, MatchesFigureFivePattern) {
  // k = 3 at the end of slot 3: packet 3 held by 1, packet 2 by 2, packet 1
  // by 4, packet 0 by all 7 (then consumed).
  EXPECT_EQ(expected_holders(3, 3, 3), 1);
  EXPECT_EQ(expected_holders(3, 2, 3), 2);
  EXPECT_EQ(expected_holders(3, 1, 3), 4);
  EXPECT_EQ(expected_holders(3, 0, 3), 7);
  EXPECT_EQ(expected_holders(3, 5, 3), 0);  // not yet injected
}

// ---------------------------------------------------------------------------
// Engine simulations.
// ---------------------------------------------------------------------------

struct SimResult {
  DelayRecorder delays;
  metrics::NeighborRecorder neighbors;
  std::size_t max_buffered;
};

SimResult simulate(NodeKey n, int groups, sim::PacketId window) {
  net::UniformCluster topo(n, std::max(groups, 1));
  std::vector<std::vector<Segment>> chains;
  if (groups <= 1) {
    chains.push_back(decompose_chain(n));
  } else {
    for (auto& g : decompose_grouped(n, groups)) {
      chains.push_back(std::move(g.chain));
    }
  }
  HypercubeProtocol proto(std::move(chains));
  sim::Engine engine(topo, proto);
  SimResult result{DelayRecorder(n + 1, window),
                   metrics::NeighborRecorder(n + 1), 0};
  engine.add_observer(result.delays);
  engine.add_observer(result.neighbors);
  const Slot horizon =
      window + (groups <= 1 ? worst_delay(n) : worst_delay_grouped(n, groups)) +
      4;
  engine.run_until(horizon);
  result.max_buffered = proto.max_buffered();
  return result;
}

TEST(SpecialCube, DoublingInvariantHoldsExactly) {
  for (const int k : {1, 2, 3, 4, 5, 6}) {
    const NodeKey n = cube_receivers(k);
    const sim::PacketId window = 4 * k + 8;
    const auto res = simulate(n, 1, window);
    for (sim::PacketId m = 0; m < window / 2; ++m) {
      for (Slot t = m; t <= m + k; ++t) {
        std::int64_t holders = 0;
        for (NodeKey x = 1; x <= n; ++x) {
          const Slot a = res.delays.arrival(x, m);
          if (a != metrics::kNeverArrived && a <= t) ++holders;
        }
        EXPECT_EQ(holders, expected_holders(k, m, t))
            << "k=" << k << " m=" << m << " t=" << t;
      }
    }
  }
}

TEST(SpecialCube, PropositionOneDelayBufferNeighbors) {
  for (const int k : {1, 2, 3, 4, 5, 6, 7, 8}) {
    const NodeKey n = cube_receivers(k);
    const auto res = simulate(n, 1, 4 * k + 8);
    for (NodeKey x = 1; x <= n; ++x) {
      ASSERT_TRUE(res.delays.complete(x)) << "k=" << k << " x=" << x;
    }
    // Every node can start playback by slot k; the worst member needs
    // exactly k (for k = 1 the single node streams directly: delay 0).
    EXPECT_EQ(res.delays.worst_delay(1, n), measured_worst_delay(n));
    EXPECT_LE(res.delays.worst_delay(1, n), special_playback_delay(k));
    // O(1) buffers: at most 2 packets stored (Proposition 1).
    EXPECT_LE(res.max_buffered, 2u) << "k=" << k;
    // Each node talks to exactly its k cube neighbors.
    EXPECT_EQ(res.neighbors.max_count(1, n),
              static_cast<std::size_t>(special_neighbor_count(k)));
  }
}

TEST(ArbitraryN, DelaysMatchSegmentFormula) {
  for (const NodeKey n : {2, 4, 5, 6, 9, 10, 20, 33, 57, 100, 200}) {
    const auto chain = decompose_chain(n);
    const auto res = simulate(n, 1, 3 * worst_delay(n) + 12);
    for (const Segment& seg : chain) {
      Slot worst_in_seg = 0;
      for (NodeKey x = seg.first; x < seg.first + seg.receivers(); ++x) {
        ASSERT_TRUE(res.delays.complete(x)) << "n=" << n << " x=" << x;
        // No member needs to start later than the synchronized schedule.
        EXPECT_LE(*res.delays.playback_delay(x), seg.playback_delay())
            << "n=" << n << " x=" << x;
        worst_in_seg = std::max(worst_in_seg, *res.delays.playback_delay(x));
      }
      // And the worst member needs exactly worst_member_delay().
      EXPECT_EQ(worst_in_seg, seg.worst_member_delay()) << "n=" << n;
    }
    EXPECT_EQ(res.delays.worst_delay(1, n), measured_worst_delay(n));
  }
}

TEST(ArbitraryN, PropositionTwoBounds) {
  for (const NodeKey n : {2, 6, 10, 20, 45, 100, 300, 500}) {
    const auto res = simulate(n, 1, 2 * worst_delay(n) + 12);
    // O(1) buffers.
    EXPECT_LE(res.max_buffered, 2u) << "n=" << n;
    // Neighbor count within the closed-form O(log N) bound.
    EXPECT_LE(res.neighbors.max_count(1, n),
              static_cast<std::size_t>(neighbor_bound(n)))
        << "n=" << n;
    // Worst delay O(log^2 N): start_last + k_last <= (log2(N)+1)^2.
    const double lg = std::log2(static_cast<double>(n)) + 1;
    EXPECT_LE(static_cast<double>(res.delays.worst_delay(1, n)), lg * lg)
        << "n=" << n;
  }
}

TEST(ArbitraryN, TheoremFourAverageDelay) {
  for (NodeKey n = 2; n <= 2048; n = n * 2 + 1) {
    EXPECT_LE(average_delay(n), theorem4_bound(n)) << "n=" << n;
  }
  // Dense sweep of the closed form (no simulation needed: the simulation
  // matches the formula per DelaysMatchSegmentFormula).
  for (NodeKey n = 2; n <= 5000; ++n) {
    EXPECT_LE(average_delay(n), theorem4_bound(n)) << "n=" << n;
  }
}

TEST(ArbitraryN, MeasuredAverageAtMostClosedForm) {
  // The closed form averages the *synchronized* per-segment starts
  // (Theorem 4's quantity); individually-feasible starts can only be
  // earlier, and by at most one slot per node.
  for (const NodeKey n : {5, 12, 37, 90}) {
    const auto res = simulate(n, 1, 3 * worst_delay(n) + 12);
    const double measured = res.delays.average_delay(1, n);
    EXPECT_LE(measured, average_delay(n)) << "n=" << n;
    EXPECT_GE(measured, average_delay(n) - 1.0) << "n=" << n;
  }
}

TEST(Grouped, BoundsScaleWithNOverD) {
  for (const NodeKey n : {10, 30, 100, 250}) {
    for (const int d : {2, 3, 4}) {
      const auto res = simulate(n, d, 3 * worst_delay_grouped(n, d) + 12);
      EXPECT_EQ(res.delays.worst_delay(1, n),
                measured_worst_delay_grouped(n, d))
          << "n=" << n << " d=" << d;
      EXPECT_LE(res.delays.worst_delay(1, n), worst_delay_grouped(n, d));
      EXPECT_LE(res.max_buffered, 2u);
      // Grouped delay is never worse than the single chain's.
      EXPECT_LE(worst_delay_grouped(n, d), worst_delay(n));
    }
  }
}

TEST(Grouped, AverageDelayFormula) {
  for (const NodeKey n : {10, 64, 100}) {
    for (const int d : {2, 3}) {
      const auto res = simulate(n, d, 3 * worst_delay_grouped(n, d) + 12);
      const double measured = res.delays.average_delay(1, n);
      EXPECT_LE(measured, average_delay_grouped(n, d));
      EXPECT_GE(measured, average_delay_grouped(n, d) - 1.0);
    }
  }
}

TEST(Protocol, FailedNodesShadowTheirRegion) {
  // A crashed vertex neither sends nor receives: live nodes lose some
  // packets (the region the crash would have relayed), and the crashed
  // node receives nothing at all.
  const NodeKey n = 15;  // k = 4
  net::UniformCluster topo(n, 1);
  HypercubeProtocol proto({decompose_chain(n)});
  proto.fail_node(3);
  sim::Engine engine(topo, proto);
  const sim::PacketId window = 20;
  DelayRecorder rec(n + 1, window);
  engine.add_observer(rec);
  engine.run_until(window + 12);
  // Crashed node: zero arrivals.
  for (sim::PacketId j = 0; j < window; ++j) {
    EXPECT_EQ(rec.arrival(3, j), metrics::kNeverArrived);
  }
  // Live nodes: most packets arrive, but not all (node 3 relays in every
  // packet's doubling pattern at some age).
  NodeKey incomplete = 0;
  sim::PacketId total_got = 0;
  for (NodeKey x = 1; x <= n; ++x) {
    if (x == 3) continue;
    sim::PacketId got = 0;
    for (sim::PacketId j = 0; j < window; ++j) {
      if (rec.arrival(x, j) != metrics::kNeverArrived) ++got;
    }
    total_got += got;
    if (got < window) ++incomplete;
  }
  EXPECT_GT(incomplete, 0);
  // Coverage stays high: one crash shadows subcube fractions, not the swarm.
  EXPECT_GT(total_got, 14 * window * 3 / 4);
}

TEST(Protocol, RejectsBadConfigurations) {
  EXPECT_THROW(HypercubeProtocol({}), std::invalid_argument);
  EXPECT_THROW(HypercubeProtocol(std::vector<std::vector<Segment>>{{}}),
               std::invalid_argument);
  EXPECT_THROW(
      HypercubeProtocol({{Segment{.k = 0, .start = 0, .first = 1}}}),
      std::invalid_argument);
}

TEST(Analysis, WorstDelaySpecialIsK) {
  EXPECT_EQ(worst_delay(7), 3);
  EXPECT_EQ(worst_delay(1023), 10);
}

TEST(Analysis, NeighborBoundGrowsLogarithmically) {
  EXPECT_LE(neighbor_bound(1'000'000), 3 * 20);
  EXPECT_GE(neighbor_bound(7), 3);
}

}  // namespace
}  // namespace streamcast::hypercube
