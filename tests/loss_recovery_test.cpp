// Recovery subsystem tests: sequence tracking, NACK repair, FEC decode,
// the zero-loss bit-identical regression, the gap-free-prefix invariant
// under heavy loss, and the playback-continuity metrics.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <utility>
#include <vector>

#include "src/core/session.hpp"
#include "src/loss/model.hpp"
#include "src/loss/recovery.hpp"
#include "src/metrics/continuity.hpp"
#include "src/net/topology.hpp"
#include "src/sim/engine.hpp"

namespace streamcast {
namespace {

using loss::RecoveryMode;
using loss::RecoveryOptions;
using loss::RecoveryProtocol;
using loss::SequenceTracker;
using sim::Delivery;
using sim::NodeKey;
using sim::PacketId;
using sim::Slot;
using sim::Tx;

Tx tx(NodeKey from, NodeKey to, PacketId p) {
  return Tx{.from = from, .to = to, .packet = p, .tag = 0};
}

/// Scripted inner protocol: replays (slot, Tx) and records deliveries.
class Scripted final : public sim::Protocol {
 public:
  void at(Slot t, Tx t_x) { script_.emplace_back(t, t_x); }

  void transmit(Slot t, std::vector<Tx>& out) override {
    for (const auto& [slot, item] : script_) {
      if (slot == t) out.push_back(item);
    }
  }
  void deliver(Slot t, const Tx& t_x) override {
    delivered.push_back(Delivery{.sent = -1, .received = t, .tx = t_x});
  }

  std::vector<Delivery> delivered;

 private:
  std::vector<std::pair<Slot, Tx>> script_;
};

/// Deterministic loss: erases the nth transmission of each listed packet id.
class DropSpecific final : public loss::LossModel {
 public:
  /// Erase the first `times` transmissions carrying packet id `p`.
  void drop(PacketId p, int times = 1) { budget_[p] = times; }

  bool erased(Slot, const Tx& t_x) override {
    auto it = budget_.find(t_x.packet);
    if (it == budget_.end() || it->second == 0) return false;
    --it->second;
    return true;
  }

 private:
  std::map<PacketId, int> budget_;
};

TEST(SequenceTracker, PrefixAndAhead) {
  SequenceTracker tr;
  EXPECT_EQ(tr.gap_free_prefix(), 0);
  tr.mark(0);
  tr.mark(1);
  EXPECT_EQ(tr.gap_free_prefix(), 2);
  tr.mark(3);
  tr.mark(5);
  EXPECT_EQ(tr.gap_free_prefix(), 2);
  EXPECT_TRUE(tr.has(3));
  EXPECT_FALSE(tr.has(2));
  EXPECT_EQ(tr.ahead().size(), 2u);
  tr.mark(2);  // closes the gap; prefix swallows 3, stops at 4
  EXPECT_EQ(tr.gap_free_prefix(), 4);
  tr.mark(4);
  EXPECT_EQ(tr.gap_free_prefix(), 6);
  EXPECT_TRUE(tr.ahead().empty());
  tr.mark(1);  // idempotent below the prefix
  EXPECT_EQ(tr.gap_free_prefix(), 6);
}

TEST(RecoveryProtocol, NackRepairsSingleDropInOrder) {
  net::UniformCluster base(2, 1);
  net::ProvisionedTopology topo(base, 1, 1);
  Scripted inner;
  for (Slot t = 0; t < 5; ++t) inner.at(t, tx(0, 1, t));
  RecoveryProtocol recovery(topo, inner,
                            RecoveryOptions{.mode = RecoveryMode::kNack});
  DropSpecific model;
  model.drop(1);
  sim::Engine engine(topo, recovery);
  engine.set_loss_model(&model);
  engine.add_observer(recovery);
  engine.run_until(12);

  EXPECT_EQ(engine.stats().drops, 1);
  EXPECT_EQ(engine.stats().retransmissions, 1);
  EXPECT_EQ(recovery.stats().retransmissions, 1);
  EXPECT_EQ(recovery.stats().nacks, 1);
  EXPECT_EQ(recovery.gap_free_prefix(1), 5);
  EXPECT_TRUE(recovery.all_gap_free(1, 1, 5));
  // The wrapped protocol saw its lossless delivery order.
  ASSERT_EQ(inner.delivered.size(), 5u);
  for (PacketId p = 0; p < 5; ++p) {
    EXPECT_EQ(inner.delivered[static_cast<std::size_t>(p)].tx.packet, p);
  }
}

TEST(RecoveryProtocol, LostRepairIsRenacked) {
  net::UniformCluster base(2, 1);
  net::ProvisionedTopology topo(base, 1, 1);
  Scripted inner;
  for (Slot t = 0; t < 5; ++t) inner.at(t, tx(0, 1, t));
  RecoveryProtocol recovery(topo, inner,
                            RecoveryOptions{.mode = RecoveryMode::kNack});
  DropSpecific model;
  model.drop(1, /*times=*/2);  // the data packet AND its first repair
  sim::Engine engine(topo, recovery);
  engine.set_loss_model(&model);
  engine.add_observer(recovery);
  engine.run_until(20);

  EXPECT_EQ(engine.stats().drops, 2);
  EXPECT_EQ(recovery.stats().retransmissions, 2);
  EXPECT_EQ(recovery.stats().nacks, 2);
  EXPECT_EQ(recovery.gap_free_prefix(1), 5);
}

TEST(RecoveryProtocol, FecDecodesSingleLossWithoutRoundTrip) {
  net::UniformCluster base(2, 1);
  net::ProvisionedTopology topo(base, 1, 1);
  Scripted inner;
  for (Slot t = 0; t < 8; ++t) inner.at(t, tx(0, 1, t));
  RecoveryProtocol recovery(
      topo, inner,
      RecoveryOptions{.mode = RecoveryMode::kFec, .fec_window = 4});
  DropSpecific model;
  model.drop(1);
  sim::Engine engine(topo, recovery);
  engine.set_loss_model(&model);
  engine.add_observer(recovery);
  engine.run_until(12);

  EXPECT_EQ(recovery.stats().fec_decodes, 1);
  EXPECT_EQ(recovery.stats().parity_transmissions, 2);  // two full windows
  EXPECT_EQ(recovery.stats().retransmissions, 0);
  EXPECT_EQ(recovery.gap_free_prefix(1), 8);
  // In-order hand-off held packets 2, 3 until the decode closed the gap.
  ASSERT_EQ(inner.delivered.size(), 8u);
  for (PacketId p = 0; p < 8; ++p) {
    EXPECT_EQ(inner.delivered[static_cast<std::size_t>(p)].tx.packet, p);
  }
}

TEST(RecoveryProtocol, LostParityLeavesWindowUnprotected) {
  net::UniformCluster base(2, 1);
  net::ProvisionedTopology topo(base, 1, 1);
  Scripted inner;
  for (Slot t = 0; t < 4; ++t) inner.at(t, tx(0, 1, t));
  RecoveryProtocol recovery(
      topo, inner,
      RecoveryOptions{.mode = RecoveryMode::kFec, .fec_window = 4});
  DropSpecific model;
  model.drop(1);
  model.drop(sim::kControlIdBase);  // the parity of window [0, 4)
  sim::Engine engine(topo, recovery);
  engine.set_loss_model(&model);
  engine.add_observer(recovery);
  engine.run_until(12);

  EXPECT_EQ(recovery.stats().fec_decodes, 0);
  EXPECT_EQ(recovery.gap_free_prefix(1), 1);  // the gap never closes
}

TEST(RecoveryProtocol, ZeroLossSchedulePassesThroughUntouched) {
  net::UniformCluster base(2, 1);
  net::ProvisionedTopology topo(base, 1, 1);
  Scripted inner;
  for (Slot t = 0; t < 6; ++t) inner.at(t, tx(0, 1, t));
  RecoveryProtocol recovery(topo, inner,
                            RecoveryOptions{.mode = RecoveryMode::kNack});
  sim::Engine engine(topo, recovery);
  engine.add_observer(recovery);
  engine.run_until(8);

  const auto& rs = recovery.stats();
  EXPECT_EQ(rs.data_transmissions, 6);
  EXPECT_EQ(rs.retransmissions, 0);
  EXPECT_EQ(rs.suppressed_causal, 0);
  EXPECT_EQ(rs.suppressed_redundant, 0);
  EXPECT_EQ(rs.nacks, 0);
  ASSERT_EQ(inner.delivered.size(), 6u);
  for (PacketId p = 0; p < 6; ++p) {
    EXPECT_EQ(inner.delivered[static_cast<std::size_t>(p)].tx.packet, p);
    EXPECT_EQ(inner.delivered[static_cast<std::size_t>(p)].received, p);
  }
}

// --- session-level: the zero-loss bit-identical regression ----------------

void expect_identical_reports(const core::QosReport& plain,
                              const core::QosReport& lossy) {
  EXPECT_EQ(plain.scheme, lossy.scheme);
  EXPECT_EQ(plain.n, lossy.n);
  EXPECT_EQ(plain.d, lossy.d);
  EXPECT_EQ(plain.worst_delay, lossy.worst_delay);
  EXPECT_EQ(plain.average_delay, lossy.average_delay);
  EXPECT_EQ(plain.max_buffer, lossy.max_buffer);
  EXPECT_EQ(plain.average_buffer, lossy.average_buffer);
  EXPECT_EQ(plain.max_neighbors, lossy.max_neighbors);
  EXPECT_EQ(plain.average_neighbors, lossy.average_neighbors);
  EXPECT_EQ(plain.transmissions, lossy.transmissions);
  EXPECT_EQ(lossy.drops, 0);
  EXPECT_EQ(lossy.retransmissions, 0);
}

TEST(LossySession, ZeroLossRateIsBitIdenticalAcrossSchemes) {
  const struct {
    core::Scheme scheme;
    NodeKey n;
    int d;
  } cases[] = {
      {core::Scheme::kMultiTreeGreedy, 20, 2},
      {core::Scheme::kMultiTreeStructured, 13, 2},
      {core::Scheme::kHypercube, 15, 1},
      {core::Scheme::kHypercubeGrouped, 14, 2},
      {core::Scheme::kChain, 6, 1},
      {core::Scheme::kSingleTree, 7, 2},
  };
  for (const auto& c : cases) {
    core::SessionConfig cfg{.scheme = c.scheme, .n = c.n, .d = c.d};
    const core::QosReport plain = core::StreamingSession(cfg).run();
    cfg.loss.model = loss::ErasureKind::kBernoulli;
    cfg.loss.rate = 0.0;
    const core::LossRunResult lossy = core::StreamingSession(cfg).run_lossy();
    SCOPED_TRACE(plain.scheme);
    expect_identical_reports(plain, lossy.qos);
    EXPECT_TRUE(lossy.loss.all_gap_free);
    EXPECT_EQ(lossy.loss.incomplete_nodes, 0);
    EXPECT_EQ(lossy.loss.drain_slots, 0);
    // Playback at the measured playback delay never stalls on a reliable
    // run — the paper's delay definition, restated as a continuity metric.
    EXPECT_EQ(lossy.loss.stalls, 0);
    EXPECT_EQ(lossy.loss.stall_slots, 0);
    EXPECT_EQ(lossy.loss.undecodable, 0);
  }
}

TEST(LossySession, EveryReceiverReachesGapFreePrefixUnderHeavyLoss) {
  const struct {
    core::Scheme scheme;
    NodeKey n;
    int d;
    double rate;
  } cases[] = {
      {core::Scheme::kMultiTreeGreedy, 30, 2, 0.2},
      {core::Scheme::kHypercube, 15, 1, 0.1},
      {core::Scheme::kChain, 8, 1, 0.2},
      {core::Scheme::kSingleTree, 10, 2, 0.1},
  };
  for (const auto& c : cases) {
    core::SessionConfig cfg{.scheme = c.scheme, .n = c.n, .d = c.d};
    cfg.loss.model = loss::ErasureKind::kBernoulli;
    cfg.loss.rate = c.rate;
    cfg.loss.seed = 17;
    const core::LossRunResult r = core::StreamingSession(cfg).run_lossy();
    SCOPED_TRACE(r.qos.scheme);
    EXPECT_TRUE(r.loss.all_gap_free);
    EXPECT_EQ(r.loss.incomplete_nodes, 0);
    EXPECT_GT(r.loss.drops, 0);
    EXPECT_GT(r.loss.retransmissions, 0);
  }
}

TEST(LossySession, GilbertElliottBurstsAreRepaired) {
  core::SessionConfig cfg{.scheme = core::Scheme::kMultiTreeGreedy,
                          .n = 20,
                          .d = 2};
  cfg.loss.model = loss::ErasureKind::kGilbertElliott;
  cfg.loss.ge = {.p_enter = 0.02, .p_recover = 0.25, .loss_good = 0.0,
                 .loss_bad = 1.0};
  cfg.loss.seed = 3;
  const core::LossRunResult r = core::StreamingSession(cfg).run_lossy();
  EXPECT_TRUE(r.loss.all_gap_free);
  EXPECT_EQ(r.loss.incomplete_nodes, 0);
  EXPECT_GT(r.loss.drops, 0);
}

TEST(LossySession, DeterministicAcrossRuns) {
  core::SessionConfig cfg{.scheme = core::Scheme::kMultiTreeGreedy,
                          .n = 15,
                          .d = 2};
  cfg.loss.model = loss::ErasureKind::kBernoulli;
  cfg.loss.rate = 0.1;
  cfg.loss.seed = 99;
  const core::LossRunResult a = core::StreamingSession(cfg).run_lossy();
  const core::LossRunResult b = core::StreamingSession(cfg).run_lossy();
  EXPECT_EQ(a.qos.worst_delay, b.qos.worst_delay);
  EXPECT_EQ(a.qos.transmissions, b.qos.transmissions);
  EXPECT_EQ(a.loss.drops, b.loss.drops);
  EXPECT_EQ(a.loss.retransmissions, b.loss.retransmissions);
  EXPECT_EQ(a.loss.stall_slots, b.loss.stall_slots);
}

TEST(LossySession, MultiClusterWithLossRejected) {
  core::SessionConfig cfg{.scheme = core::Scheme::kMultiTreeGreedy,
                          .n = 5,
                          .d = 2,
                          .clusters = 2};
  cfg.loss.model = loss::ErasureKind::kBernoulli;
  cfg.loss.rate = 0.1;
  EXPECT_THROW(core::StreamingSession{cfg}, std::invalid_argument);
}

// --- playback-continuity metrics ------------------------------------------

TEST(ContinuityRecorder, StallsGapsAndFinish) {
  metrics::ContinuityRecorder rec(2, 5);
  auto arrive = [&](PacketId p, Slot at) {
    rec.on_delivery(Delivery{.sent = at, .received = at, .tx = tx(0, 1, p)});
  };
  arrive(0, 2);
  arrive(1, 3);
  arrive(2, 10);
  // packet 3 never arrives
  arrive(4, 11);

  const auto r = rec.report(1, /*playback_start=*/5, /*horizon=*/20);
  EXPECT_EQ(r.stalls, 1);        // one wait, for packet 2
  EXPECT_EQ(r.stall_slots, 3);   // slots 7, 8, 9
  EXPECT_EQ(r.undecodable, 1);   // packet 3
  ASSERT_EQ(r.gap_lengths.size(), 1u);
  EXPECT_EQ(r.gap_lengths[0], 1);
  EXPECT_EQ(r.finish_slot, 12);
}

TEST(ContinuityRecorder, NoStallWhenEverythingArrivedBeforeStart) {
  metrics::ContinuityRecorder rec(2, 4);
  for (PacketId p = 0; p < 4; ++p) {
    rec.on_delivery(Delivery{.sent = p, .received = p, .tx = tx(0, 1, p)});
  }
  const auto r = rec.report(1, /*playback_start=*/4, /*horizon=*/100);
  EXPECT_EQ(r.stalls, 0);
  EXPECT_EQ(r.stall_slots, 0);
  EXPECT_EQ(r.undecodable, 0);
  EXPECT_TRUE(r.gap_lengths.empty());
  EXPECT_EQ(r.finish_slot, 8);
}

TEST(ContinuityRecorder, TrailingGapAndAdjacentStalls) {
  metrics::ContinuityRecorder rec(2, 4);
  auto arrive = [&](PacketId p, Slot at) {
    rec.on_delivery(Delivery{.sent = at, .received = at, .tx = tx(0, 1, p)});
  };
  arrive(0, 5);
  arrive(1, 7);
  // packets 2 and 3 never arrive: one trailing gap of length 2
  const auto r = rec.report(1, /*playback_start=*/0, /*horizon=*/50);
  EXPECT_EQ(r.stalls, 2);       // waits for packet 0 and again for packet 1
  EXPECT_EQ(r.stall_slots, 6);  // 5 slots for packet 0, 1 more for packet 1
  EXPECT_EQ(r.undecodable, 2);
  ASSERT_EQ(r.gap_lengths.size(), 1u);
  EXPECT_EQ(r.gap_lengths[0], 2);
}

TEST(ContinuityRecorder, CountsRepairTrafficForOverhead) {
  metrics::ContinuityRecorder rec(2, 8);
  for (PacketId p = 0; p < 4; ++p) {
    rec.on_delivery(Delivery{.sent = p, .received = p, .tx = tx(0, 1, p)});
  }
  Tx repair = tx(0, 1, 4);
  repair.retransmit = true;
  rec.on_delivery(Delivery{.sent = 5, .received = 5, .tx = repair});
  rec.on_delivery(
      Delivery{.sent = 6, .received = 6, .tx = tx(0, 1, sim::kControlIdBase)});
  EXPECT_EQ(rec.data_deliveries(), 4);
  EXPECT_EQ(rec.repair_deliveries(), 1);
  EXPECT_EQ(rec.parity_deliveries(), 1);
  EXPECT_DOUBLE_EQ(rec.redundancy_overhead(), 0.5);
}

}  // namespace
}  // namespace streamcast
