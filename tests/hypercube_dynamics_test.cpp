// Hypercube dynamics tests (the paper's §4 future work, built): prefix
// stability, the power-of-two reseating cliff, and membership invariants.
#include <gtest/gtest.h>

#include "src/hypercube/dynamics.hpp"
#include "src/util/prng.hpp"

namespace streamcast::hypercube {
namespace {

TEST(HypercubeDynamics, PrefixStableAwayFromPowers) {
  // 20 -> 21: leading 15-cube unchanged; only tail cubes reshuffle.
  const NodeKey changed = roles_changed(20, 21);
  EXPECT_LE(changed, 5);  // tail is 3+1+1 nodes
  // Ranks 1..15 (the k=4 cube) must be untouched.
  const auto before = decompose_chain(20);
  const auto after = decompose_chain(21);
  for (NodeKey rank = 1; rank <= 15; ++rank) {
    EXPECT_EQ(HypercubeMembership::role_of(before, rank),
              HypercubeMembership::role_of(after, rank));
  }
}

TEST(HypercubeDynamics, PowerOfTwoCliffReseatsEveryone) {
  // 30 -> 31: k1 jumps from 4 to 5; every one of the 30 shared ranks gets a
  // new (cube, vertex) role.
  EXPECT_EQ(roles_changed(30, 31), 30);
  // And back down across the cliff: 31 -> 30.
  EXPECT_EQ(roles_changed(31, 30), 30);
}

TEST(HypercubeDynamics, DisruptionIsTailSizedOnAverage) {
  // Average disruption of +1 events across a window between powers of two
  // stays far below N.
  std::int64_t total = 0;
  int events = 0;
  for (NodeKey n = 33; n < 63; ++n) {
    total += roles_changed(n, n + 1);
    ++events;
  }
  EXPECT_LT(total / events, 16);  // tail-sized, not N-sized
}

TEST(HypercubeDynamics, MembershipAddRemoveRoundTrip) {
  HypercubeMembership m(20);
  EXPECT_EQ(m.n(), 20);
  const PeerId p = m.add();
  EXPECT_EQ(m.n(), 21);
  EXPECT_EQ(m.rank_of(p), 21);
  m.remove(p);
  EXPECT_EQ(m.n(), 20);
  EXPECT_EQ(m.rank_of(p), -1);
  EXPECT_EQ(m.stats().operations, 2);
  EXPECT_EQ(m.stats().rank_moves, 0);  // removed the last rank
}

TEST(HypercubeDynamics, InteriorRemovalRelabelsLastPeer) {
  HypercubeMembership m(10);
  const PeerId victim = m.peer_at(3);
  const PeerId last = m.peer_at(10);
  m.remove(victim);
  EXPECT_EQ(m.peer_at(3), last);
  EXPECT_EQ(m.stats().rank_moves, 1);
}

TEST(HypercubeDynamics, FullReseatsCountedAtCliffs) {
  HypercubeMembership m(31);
  m.add();  // 31 -> 32: k1 4->... 31 is 2^5-1: adding crosses to k1=5
  EXPECT_EQ(m.stats().full_reseats, 0);  // 31->32 keeps k1 = floor(log2(33)) = 5
  HypercubeMembership cliff(30);
  cliff.add();  // 30 -> 31: k1 jumps 4 -> 5
  EXPECT_EQ(cliff.stats().full_reseats, 1);
  EXPECT_EQ(cliff.stats().role_moves, 30);
}

TEST(HypercubeDynamics, RandomSoakConservesMembership) {
  util::Prng rng(404);
  HypercubeMembership m(25);
  std::vector<PeerId> alive;
  for (NodeKey r = 1; r <= 25; ++r) alive.push_back(m.peer_at(r));
  for (int op = 0; op < 200; ++op) {
    if (m.n() > 2 && rng.chance(0.5)) {
      const auto idx = static_cast<std::size_t>(rng.below(alive.size()));
      m.remove(alive[idx]);
    } else {
      alive.push_back(m.add());
    }
    alive.clear();
    for (NodeKey r = 1; r <= m.n(); ++r) {
      const PeerId p = m.peer_at(r);
      ASSERT_NE(p, kNoPeer);
      alive.push_back(p);
    }
    // Chain covers exactly n ranks.
    NodeKey covered = 0;
    for (const auto& seg : m.chain()) covered += seg.receivers();
    ASSERT_EQ(covered, m.n());
  }
  EXPECT_GT(m.stats().role_moves, 0);
}

TEST(HypercubeDynamics, RemoveErrors) {
  HypercubeMembership m(2);
  EXPECT_THROW(m.remove(999), std::invalid_argument);
  m.remove(m.peer_at(2));
  EXPECT_THROW(m.remove(m.peer_at(1)), std::logic_error);
}

}  // namespace
}  // namespace streamcast::hypercube
