// Streaming on arbitrary graphs over an interior-disjoint tree pair: the
// engine proves the schedule feasible under the exact capacities the trees
// demand, every vertex receives the full stream, and the capacity cost over
// the complete-graph schemes is visible.
#include <gtest/gtest.h>

#include "src/graph/idt_heuristic.hpp"
#include "src/graph/idt_solver.hpp"
#include "src/graph/stream.hpp"
#include "src/metrics/delay.hpp"
#include "src/sim/engine.hpp"
#include "src/util/prng.hpp"

namespace streamcast::graph {
namespace {

Graph complete(Vertex n) {
  Graph g(n);
  for (Vertex a = 0; a < n; ++a) {
    for (Vertex b = a + 1; b < n; ++b) g.add_edge(a, b);
  }
  return g;
}

Graph random_connected(Vertex n, double p, util::Prng& rng) {
  Graph g(n);
  for (Vertex a = 0; a < n; ++a) {
    for (Vertex b = a + 1; b < n; ++b) {
      if (rng.chance(p)) g.add_edge(a, b);
    }
  }
  for (Vertex v = 1; v < n; ++v) {
    if (g.neighbors(v).empty()) g.add_edge(0, v);
  }
  return g;
}

/// Runs the stream and returns worst delay; asserts completeness.
sim::Slot stream_and_measure(const Graph& g, Vertex root,
                             const IdtWitness& trees,
                             sim::PacketId window = 24,
                             sim::Slot horizon = 400) {
  TwoTreeStreamTopology topo(g, root, trees);
  TwoTreeStreamProtocol proto(g, root, trees);
  sim::Engine engine(topo, proto);
  metrics::DelayRecorder rec(g.size(), window);
  engine.add_observer(rec);
  engine.run_until(horizon);
  sim::Slot worst = 0;
  for (Vertex v = 0; v < g.size(); ++v) {
    if (v == root) continue;
    EXPECT_TRUE(rec.complete(v)) << "vertex " << v;
    worst = std::max(worst, *rec.playback_delay(v));
  }
  return worst;
}

TEST(TwoTreeStream, CompleteGraphStreamsFast) {
  const Graph g = complete(8);
  const auto trees = two_interior_disjoint_trees(g, 0);
  ASSERT_TRUE(trees.has_value());
  const sim::Slot worst = stream_and_measure(g, 0, *trees);
  EXPECT_LE(worst, 16);
}

TEST(TwoTreeStream, StarNeedsRootFanOutOnly) {
  Graph g(7);
  for (Vertex v = 1; v < 7; ++v) g.add_edge(0, v);
  const auto trees = two_interior_disjoint_trees(g, 0);
  ASSERT_TRUE(trees.has_value());
  TwoTreeStreamTopology topo(g, 0, *trees);
  // No receiver forwards anything: uniform unit uplink.
  EXPECT_EQ(topo.max_required_uplink(), 1);
  stream_and_measure(g, 0, *trees);
}

TEST(TwoTreeStream, RandomGraphsViaHeuristicTrees) {
  util::Prng rng(606);
  int streamed = 0;
  for (int trial = 0; trial < 12; ++trial) {
    const auto n = static_cast<Vertex>(8 + rng.below(20));
    const Graph g = random_connected(n, 0.35, rng);
    const auto trees = greedy_two_idt(g, 0);
    if (!trees) continue;
    stream_and_measure(g, 0, *trees, /*window=*/20, /*horizon=*/600);
    ++streamed;
  }
  EXPECT_GE(streamed, 6);
}

TEST(TwoTreeStream, CapacityReflectsFanOut) {
  // A deliberately lopsided pair: vertex 1 interior with 4 children in tree
  // A needs uplink ceil(4/2) = 2.
  Graph g(6);
  g.add_edge(0, 1);
  for (Vertex v = 2; v < 6; ++v) {
    g.add_edge(1, v);
    g.add_edge(0, v);
  }
  // Tree A: 0 -> 1 -> {2,3,4,5}; tree B: 0 -> {1..5} directly (star).
  IdtWitness trees;
  trees.tree_a = {-1, 0, 1, 1, 1, 1};
  trees.tree_b = {-1, 0, 0, 0, 0, 0};
  ASSERT_TRUE(is_interior_disjoint_pair(g, 0, trees.tree_a, trees.tree_b));
  TwoTreeStreamTopology topo(g, 0, trees);
  EXPECT_EQ(topo.send_capacity(1), 2);
  EXPECT_EQ(topo.max_required_uplink(), 2);
  const sim::Slot worst = stream_and_measure(g, 0, trees);
  EXPECT_LE(worst, 12);
}

TEST(TwoTreeStream, RejectsOverlappingInteriors) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(0, 3);
  IdtWitness bad;
  bad.tree_a = {-1, 0, 1, 2};
  bad.tree_b = {-1, 0, 1, 0};  // vertex 1 interior in both
  EXPECT_THROW(TwoTreeStreamProtocol(g, 0, bad), std::invalid_argument);
}

}  // namespace
}  // namespace streamcast::graph
